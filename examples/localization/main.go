// Acoustic source localization, the paper's §2 motivating application:
// a field of synchronized sensors registers the arrival time of a sound;
// TDOA multilateration pinpoints the source. Sensors with clock skew or
// degraded power report arrival times whose hyperbolas miss the true
// intersection and wreck the fix. The in-network outlier detection prunes
// those readings first — in the network, before the costly solver runs —
// and the fix recovers.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"innet/internal/core"
	"innet/internal/locate"
)

func main() {
	const (
		sensors   = 12
		nOutliers = 3 // as many as we expect corrupted
		trueX     = 6.0
		trueY     = -9.0
		emitTime  = 0.25
	)
	rng := rand.New(rand.NewPCG(11, 13))

	// Sensors on a ring around the area of interest.
	field := make([]sensor, sensors)
	for i := range field {
		angle := 2 * math.Pi * float64(i) / sensors
		field[i] = sensor{
			id: core.NodeID(i + 1),
			x:  40 * math.Cos(angle),
			y:  40 * math.Sin(angle),
		}
	}

	// Every sensor registers the event; three scattered sensors suffer
	// clock skew or echo-path errors of tens of milliseconds (tens of
	// meters of implied range error).
	corruptedIdx := map[int]bool{0: true, 4: true, 8: true}
	arrivals := make([]float64, sensors)
	for i, s := range field {
		arrivals[i] = locate.ArrivalTime(trueX, trueY, emitTime, s.x, s.y, locate.SpeedOfSound)
		arrivals[i] += rng.NormFloat64() * 20e-6 // 20 µs honest jitter
		if corruptedIdx[i] {
			arrivals[i] += 0.1 + rng.Float64()*0.15
		}
	}

	// Localize with everything, corrupted sensors included.
	dirty := observations(field, arrivals, nil)
	dirtyFix, err := locate.Multilaterate(dirty, locate.SpeedOfSound)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true source           (%.2f, %.2f)\n", trueX, trueY)
	fmt.Printf("fix with all sensors  (%.2f, %.2f)  error %.2f m, residual %.2f ms\n",
		dirtyFix.X, dirtyFix.Y, dirtyFix.PositionError(trueX, trueY), dirtyFix.Residual*1e3)

	// In-network cleansing on wavefront consistency: each sensor's data
	// point embeds its position with its implied range behind the first
	// arrival, (x, y, c·(t−t_min)). A true wavefront makes that third
	// coordinate 1-Lipschitz in position — nearby sensors hear nearby
	// ranges — so a skewed clock separates geometrically from every
	// honest neighbor and ranks as an outlier under the k-NN heuristic.
	// (A least-squares residual would not work here: the corrupted
	// arrivals drag the first-pass fix toward themselves and mask.)
	net := core.NewSyncNetwork()
	for _, s := range field {
		det, err := core.NewDetector(core.Config{Node: s.id, Ranker: core.KNN{K: 2}, N: nOutliers})
		if err != nil {
			log.Fatal(err)
		}
		net.Add(det)
	}
	for i := range field { // ring links: single-hop neighbors only
		a, b := field[i].id, field[(i+1)%sensors].id
		net.Connect(a, b)
	}
	tMin := arrivals[0]
	for _, t := range arrivals {
		if t < tMin {
			tMin = t
		}
	}
	for i, s := range field {
		lag := (arrivals[i] - tMin) * locate.SpeedOfSound
		net.Observe(s.id, 0, s.x, s.y, lag)
	}
	if _, err := net.Settle(100000); err != nil {
		log.Fatal(err)
	}

	flagged := map[core.NodeID]bool{}
	fmt.Println("\nin-network outlier detection flags:")
	for _, p := range net.Detector(field[0].id).Estimate() {
		flagged[p.ID.Origin] = true
		fmt.Printf("  sensor %2d (hears the wavefront %.1f m behind the first arrival)\n", p.ID.Origin, p.Value[2])
	}

	clean := observations(field, arrivals, flagged)
	cleanFix, err := locate.Multilaterate(clean, locate.SpeedOfSound)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfix after cleansing   (%.2f, %.2f)  error %.2f m, residual %.2f ms\n",
		cleanFix.X, cleanFix.Y, cleanFix.PositionError(trueX, trueY), cleanFix.Residual*1e3)
	fmt.Printf("improvement           %.1f× closer\n",
		dirtyFix.PositionError(trueX, trueY)/cleanFix.PositionError(trueX, trueY))

	correct := 0
	for id := range flagged {
		if corruptedIdx[int(id)-1] {
			correct++
		}
	}
	fmt.Printf("cleansing precision   %d/%d flags are truly corrupted sensors\n", correct, len(flagged))
}

// sensor is one acoustic sensor's identity and position.
type sensor struct {
	id   core.NodeID
	x, y float64
}

func observations(field []sensor, arrivals []float64, exclude map[core.NodeID]bool) []locate.Observation {
	var obs []locate.Observation
	for i, s := range field {
		if exclude[s.id] {
			continue
		}
		obs = append(obs, locate.Observation{X: s.x, Y: s.y, Arrival: arrivals[i]})
	}
	return obs
}
