// Environmental monitoring over a 53-sensor lab: the workload the paper
// evaluates on. A synthetic Intel-lab-equivalent temperature stream runs
// through the global in-network detection algorithm on the reference
// (lossless, synchronous) runtime, round by round with a sliding window,
// and the detected outliers are scored against the injected ground-truth
// sensor faults.
package main

import (
	"fmt"
	"log"
	"time"

	"innet/internal/core"
	"innet/internal/dataset"
	"innet/internal/wsn"
)

func main() {
	const (
		n       = 4  // outliers reported per round
		w       = 10 // sliding window, samples
		seed    = 7
		rounds  = 20
		periodS = 31
	)
	period := periodS * time.Second

	stream, err := dataset.Generate(dataset.Config{
		Nodes:     53,
		Seed:      seed,
		Period:    period,
		Duration:  time.Duration(rounds) * period,
		SpikeProb: 0.004,
		StuckProb: 0.001,
	})
	if err != nil {
		log.Fatal(err)
	}
	topo := wsn.NewTopology(stream.Positions(), wsn.DefaultRadio().Range)
	fmt.Printf("lab layout: %d sensors, mean diameter %d hops, median degree %d\n",
		len(stream.Nodes()), topo.Diameter(), topo.MedianDegree())
	fmt.Printf("stream: %d epochs, %d injected faults, %d missing readings\n\n",
		stream.Epochs(), stream.FaultCount(), stream.MissingCount())

	// One detector per sensor on the reference synchronous network.
	net := core.NewSyncNetwork()
	ranker := core.KNN{K: 4}
	for _, id := range topo.Nodes() {
		det, err := core.NewDetector(core.Config{
			Node:   id,
			Ranker: ranker,
			N:      n,
			Window: time.Duration(w)*period - period/2,
		})
		if err != nil {
			log.Fatal(err)
		}
		net.Add(det)
	}
	for _, a := range topo.Nodes() {
		for _, b := range topo.Neighbors(a) {
			if a < b {
				net.Connect(a, b)
			}
		}
	}

	// Stream the data round by round; after each round every sensor
	// holds the same converged estimate (Theorems 1–2).
	var detected = map[core.PointID]bool{}
	for epoch := 0; epoch < stream.Epochs(); epoch++ {
		at := time.Duration(epoch) * period
		net.AdvanceTo(at)
		for _, id := range topo.Nodes() {
			s, ok := stream.At(id, epoch)
			if !ok {
				continue
			}
			net.Observe(id, at, s.Features(1)...)
		}
		if _, err := net.Settle(1_000_000); err != nil {
			log.Fatal(err)
		}
		for _, p := range net.Detector(topo.Nodes()[0]).Estimate() {
			if !detected[p.ID] {
				detected[p.ID] = true
				s, _ := stream.At(p.ID.Origin, int(p.ID.Seq))
				marker := " "
				if s.Fault != dataset.FaultNone {
					marker = "*"
				}
				fmt.Printf("round %2d: outlier %s sensor %2d epoch %3d temp %6.2f°C fault=%s%s\n",
					epoch, p.ID, p.ID.Origin, p.ID.Seq, s.Temp, s.Fault, marker)
			}
		}
	}

	// Score the detections against the injected faults over the run.
	truePos, falsePos := 0, 0
	for id := range detected {
		s, ok := stream.At(id.Origin, int(id.Seq))
		if ok && s.Fault != dataset.FaultNone {
			truePos++
		} else {
			falsePos++
		}
	}
	faults := 0
	for _, id := range stream.Nodes() {
		for _, s := range stream.Samples(id) {
			if s.Fault != dataset.FaultNone {
				faults++
			}
		}
	}
	fmt.Printf("\ndetected %d distinct outliers: %d injected faults flagged (of %d injected), %d clean-but-extreme readings\n",
		len(detected), truePos, faults, falsePos)
	fmt.Printf("communication: %d points moved in total (%.1f per sensor-round)\n",
		net.PointsSent(), float64(net.PointsSent())/float64(53*stream.Epochs()))
}
