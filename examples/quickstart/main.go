// Quickstart walks through the paper's §5.1 example with the library API:
// two sensors holding one-dimensional readings run the global in-network
// outlier detection algorithm (R = distance to nearest neighbor, n = 1)
// and converge on the true outlier after exchanging only four points —
// against ten for naive centralization.
package main

import (
	"fmt"
	"log"

	"innet/internal/core"
)

func main() {
	const (
		a = 20 // D_i = {0.5, 3, 6, 10, 11, ..., a}
		b = 5  // D_j = {4, 5, 7, 8, 9, a+1, ..., a+b}
	)

	// Two detectors: R = nearest-neighbor distance, report n = 1 outlier.
	pi, err := core.NewDetector(core.Config{Node: 1, Ranker: core.NN(), N: 1})
	if err != nil {
		log.Fatal(err)
	}
	pj, err := core.NewDetector(core.Config{Node: 2, Ranker: core.NN(), N: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Load each sensor's initial dataset (one batch = one data event).
	var di, dj [][]float64
	di = append(di, []float64{0.5}, []float64{3}, []float64{6})
	for v := 10; v <= a; v++ {
		di = append(di, []float64{float64(v)})
	}
	dj = append(dj, []float64{4}, []float64{5}, []float64{7}, []float64{8}, []float64{9})
	for v := a + 1; v <= a+b; v++ {
		dj = append(dj, []float64{float64(v)})
	}
	pi.ObserveBatch(0, di...)
	pj.ObserveBatch(0, dj...)

	fmt.Printf("p_i holds %d points, initial estimate %v\n", pi.Holdings().Len(), values(pi.Estimate()))
	fmt.Printf("p_j holds %d points, initial estimate %v\n\n", pj.Holdings().Len(), values(pj.Estimate()))

	// Run the paper's synchronous schedule, starting with p_i: each
	// outbound packet M is delivered to the tagged recipient, whose
	// reaction becomes the next packet.
	totalSent := 0
	out := pi.AddNeighbor(2)
	for step := 1; out != nil; step++ {
		fmt.Printf("step %d: sensor %d sends %d point(s): %v\n",
			step, out.From, out.PointCount(), values(out.For(peerOf(out.From))))
		totalSent += out.PointCount()
		if out.From == 1 {
			out = pj.Receive(1, out.For(2))
		} else {
			out = pi.Receive(2, out.For(1))
		}
	}

	fmt.Printf("\nconverged: p_i estimates %v, p_j estimates %v\n",
		values(pi.Estimate()), values(pj.Estimate()))
	fmt.Printf("points exchanged: %d (centralizing would move min{a-6, b+5} = %d)\n",
		totalSent, min(a-6, b+5))
}

func peerOf(id core.NodeID) core.NodeID {
	if id == 1 {
		return 2
	}
	return 1
}

func values(pts []core.Point) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Value[0]
	}
	return out
}
