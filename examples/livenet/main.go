// Livenet runs the algorithm the way a deployment would: one goroutine
// per sensor on an in-memory broadcast mesh, streaming data with a
// sliding window, surviving a sensor joining mid-run and a link failure —
// the paper's dynamic-data and dynamic-topology claims, live.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"sync"
	"time"

	"innet/internal/core"
	"innet/internal/peer"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const (
		initialPeers = 9
		n            = 2
	)
	mesh := peer.NewMesh()
	peers := make(map[core.NodeID]*peer.Peer)
	var wg sync.WaitGroup

	spawn := func(id core.NodeID) *peer.Peer {
		tr, err := mesh.Attach(id)
		if err != nil {
			log.Fatal(err)
		}
		p, err := peer.New(peer.Config{
			Detector: core.Config{
				Node:   id,
				Ranker: core.KNN{K: 2},
				N:      n,
				Window: time.Hour,
			},
			Transport: tr,
		})
		if err != nil {
			log.Fatal(err)
		}
		peers[id] = p
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Run(ctx)
		}()
		return p
	}

	link := func(a, b core.NodeID) {
		if err := mesh.Connect(a, b); err != nil {
			log.Fatal(err)
		}
		must(peers[a].AddNeighbor(ctx, b))
		must(peers[b].AddNeighbor(ctx, a))
	}

	// A 3×3 grid of sensors.
	for i := 1; i <= initialPeers; i++ {
		spawn(core.NodeID(i))
	}
	for i := 1; i <= initialPeers; i++ {
		if i%3 != 0 {
			link(core.NodeID(i), core.NodeID(i+1))
		}
		if i+3 <= initialPeers {
			link(core.NodeID(i), core.NodeID(i+3))
		}
	}
	fmt.Printf("started %d live sensor goroutines on a 3×3 mesh\n", initialPeers)

	// Stream three rounds of readings; one sensor misbehaves.
	rng := rand.New(rand.NewPCG(5, 5))
	for round := 0; round < 3; round++ {
		for id := core.NodeID(1); id <= initialPeers; id++ {
			v := 20 + rng.NormFloat64()
			if id == 7 && round == 2 {
				v = 55.3 // stuck-at-rail fault
			}
			must(peers[id].Observe(ctx, time.Duration(round)*time.Minute, v))
		}
	}
	waitQuiet(ctx, mesh)

	est := peers[1].Estimate()
	fmt.Printf("after 3 rounds every sensor agrees on the outliers: %s\n", describe(est))

	// A new sensor joins mid-run with suspicious data.
	fmt.Println("\nsensor 10 joins the mesh with its own readings…")
	p10 := spawn(10)
	link(10, 9)
	must(p10.Observe(ctx, 2*time.Minute, 19.5))
	must(p10.Observe(ctx, 2*time.Minute, -40.0)) // frozen battery fault
	waitQuiet(ctx, mesh)

	for _, id := range []core.NodeID{1, 5, 10} {
		fmt.Printf("  sensor %2d sees: %s\n", id, describe(peers[id].Estimate()))
	}

	// A link fails; the mesh stays connected and the answer survives.
	fmt.Println("\nlink 5—6 fails…")
	mesh.Disconnect(5, 6)
	must(peers[5].RemoveNeighbor(ctx, 6))
	must(peers[6].RemoveNeighbor(ctx, 5))
	must(peers[3].Observe(ctx, 3*time.Minute, 20.4)) // fresh data still flows
	waitQuiet(ctx, mesh)
	fmt.Printf("  sensor  6 still sees: %s\n", describe(peers[6].Estimate()))

	cancel()
	wg.Wait()
	fmt.Println("\nall goroutines drained; bye")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func waitQuiet(ctx context.Context, mesh *peer.Mesh) {
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := mesh.WaitQuiescent(wctx); err != nil {
		log.Fatal("network did not settle: ", err)
	}
}

func describe(pts []core.Point) string {
	if len(pts) == 0 {
		return "(none)"
	}
	out := ""
	for i, p := range pts {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("sensor %d reading %.1f°C", p.ID.Origin, p.Value[0])
	}
	return out
}
