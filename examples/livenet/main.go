// Livenet runs the algorithm the way a deployment would — through the
// streaming ingestion layer that backs the innetd daemon: a managed
// fleet of one-goroutine-per-sensor peers on a multi-hop mesh, fed live
// readings with a sliding window, surviving a sensor joining mid-run and
// another powering down — the paper's dynamic-data and dynamic-topology
// claims, live.
//
// Every error propagates to main and the fleet shuts down cleanly on all
// paths: no goroutine outlives the run.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"innet/internal/core"
	"innet/internal/ingest"
)

const (
	initialPeers = 9
	gridCols     = 3
)

// gridTopology links a joining sensor to its 3×3 grid neighbors that are
// already attached (sensor 10, the latecomer, hangs off sensor 9) —
// the same multi-hop mesh the raw-peer version of this example built by
// hand, now expressed as an ingest topology policy.
func gridTopology(joining core.NodeID, existing []core.NodeID) []core.NodeID {
	wanted := map[core.NodeID]bool{}
	if joining > initialPeers {
		wanted[initialPeers] = true // latecomers attach at the grid's edge
	} else {
		i := int(joining)
		if i%gridCols != 1 {
			wanted[core.NodeID(i-1)] = true
		}
		if i%gridCols != 0 {
			wanted[core.NodeID(i+1)] = true
		}
		wanted[core.NodeID(i-gridCols)] = true
		wanted[core.NodeID(i+gridCols)] = true
	}
	var out []core.NodeID
	for _, id := range existing {
		if wanted[id] {
			out = append(out, id)
		}
	}
	return out
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	svc, err := ingest.New(ingest.Config{
		Detector: core.Config{
			Ranker: core.KNN{K: 2},
			N:      2,
			Window: time.Hour,
		},
		AutoJoin: true, // sensor 10 attaches on first contact below
		Topology: gridTopology,
	})
	if err != nil {
		return err
	}
	defer svc.Close() // every goroutine is reaped on all return paths

	for i := 1; i <= initialPeers; i++ {
		if err := svc.Join(core.NodeID(i)); err != nil {
			return fmt.Errorf("join sensor %d: %w", i, err)
		}
	}
	fmt.Printf("started %d live sensor goroutines on a 3×3 mesh behind the ingest layer\n", initialPeers)

	// Stream three rounds of readings; one sensor misbehaves.
	rng := rand.New(rand.NewPCG(5, 5))
	for round := 0; round < 3; round++ {
		for id := core.NodeID(1); id <= initialPeers; id++ {
			v := 20 + rng.NormFloat64()
			if id == 7 && round == 2 {
				v = 55.3 // stuck-at-rail fault
			}
			if err := svc.Ingest(ingest.Reading{
				Sensor: id,
				At:     time.Duration(round) * time.Minute,
				Values: []float64{v},
			}); err != nil {
				return fmt.Errorf("ingest round %d sensor %d: %w", round, id, err)
			}
		}
	}
	if err := svc.Flush(ctx); err != nil {
		return fmt.Errorf("network did not settle: %w", err)
	}
	if err := printEstimate(svc, 1, "after 3 rounds every sensor agrees on the outliers"); err != nil {
		return err
	}

	// A new sensor joins mid-run with suspicious data.
	fmt.Println("\nsensor 10 joins the mesh with its own readings…")
	for _, v := range []float64{19.5, -40.0} { // second reading: frozen battery fault
		if err := svc.Ingest(ingest.Reading{Sensor: 10, At: 2 * time.Minute, Values: []float64{v}}); err != nil {
			return fmt.Errorf("ingest sensor 10: %w", err)
		}
	}
	if err := svc.Flush(ctx); err != nil {
		return fmt.Errorf("network did not settle: %w", err)
	}
	for _, id := range []core.NodeID{1, 5, 10} {
		if err := printEstimate(svc, id, fmt.Sprintf("  sensor %2d sees", id)); err != nil {
			return err
		}
	}

	// A sensor powers down; the mesh stays connected and the answer
	// survives — its points age out of the windows, as §5.3 prescribes.
	fmt.Println("\nsensor 5 powers down…")
	if err := svc.Leave(5); err != nil {
		return fmt.Errorf("leave sensor 5: %w", err)
	}
	if err := svc.Ingest(ingest.Reading{Sensor: 3, At: 3 * time.Minute, Values: []float64{20.4}}); err != nil {
		return fmt.Errorf("ingest after leave: %w", err) // fresh data still flows
	}
	if err := svc.Flush(ctx); err != nil {
		return fmt.Errorf("network did not settle: %w", err)
	}
	if err := printEstimate(svc, 6, "  sensor  6 still sees"); err != nil {
		return err
	}

	// Surface the ingest accounting the daemon exports on /metrics —
	// above all the queue-drop counters, which say whether the
	// latest-wins policy ever had to shed (it should not have, at this
	// leisurely rate).
	stats := svc.Stats()
	fmt.Printf("\ningest: %d accepted, %d observed in %d batches, %d dropped, %d stale\n",
		stats.Accepted, stats.Observed, stats.Batches, stats.Dropped, stats.Stale)
	for _, sn := range svc.SensorStats() {
		if sn.Drops > 0 {
			fmt.Printf("  sensor %2d shed %d readings\n", sn.ID, sn.Drops)
		}
	}

	if err := svc.Close(); err != nil {
		return err
	}
	fmt.Println("\nall goroutines drained; bye")
	return nil
}

func printEstimate(svc *ingest.Service, id core.NodeID, label string) error {
	est, err := svc.Estimate(id)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s\n", label, describe(est))
	return nil
}

func describe(pts []core.Point) string {
	if len(pts) == 0 {
		return "(none)"
	}
	out := ""
	for i, p := range pts {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("sensor %d reading %.1f°C", p.ID.Origin, p.Value[0])
	}
	return out
}
