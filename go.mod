module innet

go 1.24
