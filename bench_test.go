// Package innet's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (§7) at a reduced-but-faithful scale, plus
// the ablations DESIGN.md calls out. `go test -bench=. -benchmem` runs
// everything; cmd/expfig regenerates the same figures at full paper
// scale. Each benchmark reports the series it produced via b.Log and the
// headline numbers via b.ReportMetric, so the bench output doubles as the
// reproduction record.
package innet

import (
	"testing"
	"time"

	"innet/internal/core"
	"innet/internal/dataset"
	"innet/internal/runner"
	"innet/internal/wsn"
)

// benchSession memoizes experiment cells across the figure benchmarks in
// one `go test -bench` process (Figs. 4–6 share runs; the centralized
// curves are shared by Figs. 7–9).
var benchSession = runner.NewSession()

func benchScale() runner.Scale { return runner.QuickScale() }

// logFigure dumps the regenerated series into the benchmark log.
func logFigure(b *testing.B, fig runner.Figure, metric func(runner.SeriesPoint) float64, name string) {
	b.Helper()
	b.Log("\n" + fig.TSV(metric, name))
}

// BenchmarkFig4EnergyVsWindowGlobal regenerates Figure 4: average TX and
// RX energy per node per sampling period vs w for Centralized, Global-NN
// and Global-KNN (n=4, k=4).
func BenchmarkFig4EnergyVsWindowGlobal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchSession.Fig4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logFigure(b, fig, runner.MetricTx, "tx_J_per_round")
		logFigure(b, fig, runner.MetricRx, "rx_J_per_round")
		// Headline: at the largest window, Global-NN vs Centralized.
		last := len(fig.Series[0].Points) - 1
		b.ReportMetric(fig.Series[0].Points[last].TxJ, "centralTxJ/round")
		b.ReportMetric(fig.Series[1].Points[last].TxJ, "globalNNTxJ/round")
	}
}

// BenchmarkFig5EnergyRangeGlobal regenerates Figure 5: avg/min/max total
// energy consumed per node vs w.
func BenchmarkFig5EnergyRangeGlobal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchSession.Fig5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logFigure(b, fig, runner.MetricAvgJ, "avg_total_J")
		logFigure(b, fig, runner.MetricMinJ, "min_total_J")
		logFigure(b, fig, runner.MetricMaxJ, "max_total_J")
	}
}

// BenchmarkFig6NormalizedEnergy regenerates Figure 6: min/avg/max node
// energy normalized by the average, at w ∈ {10, 20, 40}.
func BenchmarkFig6NormalizedEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchSession.Fig6(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logFigure(b, fig, runner.MetricMaxJ, "normalized_max")
		// Headline: the centralized max/avg imbalance at w=10.
		for _, s := range fig.Series {
			if s.Label == "Centralized" && len(s.Points) > 0 {
				b.ReportMetric(s.Points[0].MaxJ, "centralMaxOverAvg")
			}
		}
	}
}

// BenchmarkFig7EnergyVsWindowSemiNN regenerates Figure 7: semi-global NN
// detection for ε ∈ {1,2,3} vs the centralized baseline.
func BenchmarkFig7EnergyVsWindowSemiNN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchSession.Fig7(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logFigure(b, fig, runner.MetricTx, "tx_J_per_round")
		logFigure(b, fig, runner.MetricRx, "rx_J_per_round")
	}
}

// BenchmarkFig8EnergyVsWindowSemiKNN regenerates Figure 8: the same sweep
// with the KNN ranking function.
func BenchmarkFig8EnergyVsWindowSemiKNN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchSession.Fig8(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logFigure(b, fig, runner.MetricTx, "tx_J_per_round")
		logFigure(b, fig, runner.MetricRx, "rx_J_per_round")
	}
}

// BenchmarkFig9EnergyVsOutliers regenerates Figure 9: energy vs the
// number of reported outliers n (w=20, k=4), semi-global KNN vs
// centralized.
func BenchmarkFig9EnergyVsOutliers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchSession.Fig9(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logFigure(b, fig, runner.MetricTx, "tx_J_per_round")
		logFigure(b, fig, runner.MetricRx, "rx_J_per_round")
	}
}

// BenchmarkAccuracyTable regenerates the §7.1 accuracy claim (the paper
// reports ≈99% for the distributed algorithms).
func BenchmarkAccuracyTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchSession.AccuracyTable(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logFigure(b, fig, runner.MetricAccuracy, "accuracy")
		for _, s := range fig.Series {
			if s.Label == "Global-NN" {
				b.ReportMetric(s.Points[0].Accuracy, "globalNNaccuracy")
			}
		}
	}
}

// BenchmarkScaleComparison regenerates the 32- vs 53-node observation:
// the distributed advantage grows with network size.
func BenchmarkScaleComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchSession.ScaleComparison(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		logFigure(b, fig, runner.MetricTx, "tx_J_per_round")
		var ratios []float64
		central, global := fig.Series[0], fig.Series[1]
		for j := range central.Points {
			ratios = append(ratios, central.Points[j].TxJ/global.Points[j].TxJ)
		}
		if len(ratios) == 2 {
			b.ReportMetric(ratios[0], "advantage32")
			b.ReportMetric(ratios[1], "advantage53")
		}
	}
}

// BenchmarkExample51Communication reproduces the §5.1 worked example's
// communication count: 4 points distributed vs min{a-6, b+5} = 10
// centralized.
func BenchmarkExample51Communication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pi, err := core.NewDetector(core.Config{Node: 1, Ranker: core.NN(), N: 1})
		if err != nil {
			b.Fatal(err)
		}
		pj, err := core.NewDetector(core.Config{Node: 2, Ranker: core.NN(), N: 1})
		if err != nil {
			b.Fatal(err)
		}
		var di, dj [][]float64
		di = append(di, []float64{0.5}, []float64{3}, []float64{6})
		for v := 10; v <= 20; v++ {
			di = append(di, []float64{float64(v)})
		}
		dj = append(dj, []float64{4}, []float64{5}, []float64{7}, []float64{8}, []float64{9})
		for v := 21; v <= 25; v++ {
			dj = append(dj, []float64{float64(v)})
		}
		pi.ObserveBatch(0, di...)
		pj.ObserveBatch(0, dj...)
		sent := 0
		out := pi.AddNeighbor(2)
		for out != nil {
			sent += out.PointCount()
			if out.From == 1 {
				out = pj.Receive(1, out.For(2))
			} else {
				out = pi.Receive(2, out.For(1))
			}
		}
		if i == 0 {
			b.ReportMetric(float64(sent), "pointsSent")
			b.ReportMetric(10, "centralizedCost")
		}
	}
}

// --- Ablations -----------------------------------------------------------

// ablationNetwork builds a 53-node synchronous network with the given
// detector options and streams `rounds` epochs through it, returning the
// total points sent and the final-round exact-agreement fraction.
func ablationNetwork(b *testing.B, mutate func(*core.Config), rounds int) (points int, accuracy float64) {
	b.Helper()
	stream, err := dataset.Generate(dataset.Config{
		Nodes:    53,
		Seed:     1,
		Period:   31 * time.Second,
		Duration: time.Duration(rounds) * 31 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	topo := wsn.NewTopology(stream.Positions(), wsn.DefaultRadio().Range)
	net := core.NewSyncNetwork()
	cfg := core.Config{Ranker: core.NN(), N: 4, Window: 10*31*time.Second - 15*time.Second}
	mutate(&cfg)
	for _, id := range topo.Nodes() {
		c := cfg
		c.Node = id
		det, err := core.NewDetector(c)
		if err != nil {
			b.Fatal(err)
		}
		net.Add(det)
	}
	for _, x := range topo.Nodes() {
		for _, y := range topo.Neighbors(x) {
			if x < y {
				net.Connect(x, y)
			}
		}
	}
	for epoch := 0; epoch < stream.Epochs(); epoch++ {
		at := time.Duration(epoch) * stream.Period()
		net.AdvanceTo(at)
		for _, id := range topo.Nodes() {
			s, ok := stream.At(id, epoch)
			if !ok {
				continue
			}
			net.Observe(id, at, s.Features(1)...)
		}
		if _, err := net.Settle(10_000_000); err != nil {
			b.Fatal(err)
		}
	}
	truth := net.GlobalOutliers(core.NN(), 4)
	exact := 0
	for _, id := range net.Nodes() {
		if samePointIDs(truth, net.Detector(id).Estimate()) {
			exact++
		}
	}
	return net.PointsSent(), float64(exact) / float64(len(net.Nodes()))
}

func samePointIDs(a, b []core.Point) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[core.PointID]bool, len(a))
	for _, p := range a {
		set[p.ID] = true
	}
	for _, p := range b {
		if !set[p.ID] {
			return false
		}
	}
	return true
}

// BenchmarkAblationLedgerPolicy quantifies recording received duplicates
// in the D(j→i) ledger (the paper's Algorithm 1 does not): the extra
// bookkeeping suppresses some redundant retransmissions on cyclic
// topologies.
func BenchmarkAblationLedgerPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paperPts, paperAcc := ablationNetwork(b, func(*core.Config) {}, 14)
		trackPts, trackAcc := ablationNetwork(b, func(c *core.Config) { c.TrackRedundant = true }, 14)
		b.ReportMetric(float64(paperPts), "paperPoints")
		b.ReportMetric(float64(trackPts), "trackedPoints")
		b.ReportMetric(paperAcc, "paperAccuracy")
		b.ReportMetric(trackAcc, "trackedAccuracy")
		b.Logf("ledger policy: paper %d points (acc %.3f) vs tracked %d points (acc %.3f)",
			paperPts, paperAcc, trackPts, trackAcc)
	}
}

// BenchmarkAblationNoFixedPoint removes the Eq. (2) fixed-point closure,
// sending only the naive On(P) ∪ [P|On(P)]: cheaper per event but the
// network quiesces with sensors disagreeing (Lemma 3 is violated), which
// is exactly what the closure buys.
func BenchmarkAblationNoFixedPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fullPts, fullAcc := ablationNetwork(b, func(*core.Config) {}, 14)
		naivePts, naiveAcc := ablationNetwork(b, func(c *core.Config) { c.DisableFixedPoint = true }, 14)
		b.ReportMetric(float64(fullPts), "fixedPointPoints")
		b.ReportMetric(float64(naivePts), "naivePoints")
		b.ReportMetric(fullAcc, "fixedPointAccuracy")
		b.ReportMetric(naiveAcc, "naiveAccuracy")
		b.Logf("fixed point: full %d points (acc %.3f) vs naive %d points (acc %.3f)",
			fullPts, fullAcc, naivePts, naiveAcc)
	}
}

// BenchmarkAblationUnicast compares the paper's recipient-tagged single
// broadcast against sending each neighbor its own frame, on the full
// radio simulation: the tagged broadcast pays for one transmission where
// the unicast variant pays degree-many.
func BenchmarkAblationUnicast(b *testing.B) {
	run := func(perNeighbor bool) runner.Result {
		cfg := runner.Config{
			Algo:              runner.AlgoGlobal,
			Ranker:            runner.RankNN,
			N:                 4,
			WindowSamples:     10,
			Nodes:             53,
			Period:            31 * time.Second,
			Duration:          400 * time.Second,
			Seeds:             []uint64{1},
			PerNeighborFrames: perNeighbor,
		}
		res, err := runner.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	for i := 0; i < b.N; i++ {
		tagged := run(false)
		unicast := run(true)
		b.ReportMetric(tagged.AvgTxJPerRound, "taggedTxJ/round")
		b.ReportMetric(unicast.AvgTxJPerRound, "unicastTxJ/round")
		b.Logf("broadcast tagging: tagged %.5f J vs per-neighbor %.5f J TX per node-round (%.2fx)",
			tagged.AvgTxJPerRound, unicast.AvgTxJPerRound, unicast.AvgTxJPerRound/tagged.AvgTxJPerRound)
	}
}

// BenchmarkSimulatorThroughput measures raw discrete-event simulator
// speed: one 53-node centralized round.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := runner.Config{
		Algo:          runner.AlgoCentralized,
		Ranker:        runner.RankNN,
		N:             4,
		WindowSamples: 10,
		Nodes:         53,
		Period:        31 * time.Second,
		Duration:      155 * time.Second,
		Seeds:         []uint64{1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runner.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SimEvents, "simEvents")
	}
}
