package wsn

import (
	"testing"
	"time"

	"innet/internal/core"
)

func TestBroadcastReachesOnlyNeighbors(t *testing.T) {
	s, apps := lineSim(Config{}, 4)
	s.Node(2).SendBroadcast([]byte{0xAB})
	s.Run(time.Second)
	if len(apps[0].frames) != 1 || len(apps[2].frames) != 1 {
		t.Fatalf("adjacent nodes must hear the broadcast: %d/%d",
			len(apps[0].frames), len(apps[2].frames))
	}
	if len(apps[3].frames) != 0 {
		t.Fatal("node 4 is out of range and must hear nothing")
	}
	if len(apps[1].frames) != 0 {
		t.Fatal("a sender must not hear its own broadcast")
	}
}

func TestBroadcastEnergyAccounting(t *testing.T) {
	s, _ := lineSim(Config{}, 3)
	payload := make([]byte, 82) // 82+18 = 100 bytes = 800 bits
	s.Node(2).SendBroadcast(payload)
	s.Run(time.Second)

	radio := s.cfg.Radio
	air := radio.airtime(len(payload))
	wantTx := radio.TxPower * air.Seconds()
	if got := s.Node(2).Energy().TxJ; !almost(got, wantTx) {
		t.Fatalf("sender TxJ = %v, want %v", got, wantTx)
	}
	wantRx := radio.RxPower * air.Seconds()
	for _, id := range []core.NodeID{1, 3} {
		if got := s.Node(id).Energy().RxJ; !almost(got, wantRx) {
			t.Fatalf("node %d RxJ = %v, want %v", id, got, wantRx)
		}
	}
	if s.Node(2).Energy().RxJ != 0 {
		t.Fatal("sender must not charge receive energy for its own frame")
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}

func TestIdleEnergy(t *testing.T) {
	e := Energy{TxJ: 1, RxJ: 2, TxTime: time.Second, RxTime: time.Second}
	total := e.TotalAt(10*time.Second, 0.001)
	want := 1 + 2 + 0.001*8
	if !almost(total, want) {
		t.Fatalf("TotalAt = %v, want %v", total, want)
	}
	// Active time beyond elapsed clamps instead of going negative.
	if e.TotalAt(time.Second, 0.001) != 3 {
		t.Fatal("idle time must clamp at zero")
	}
}

func TestUnicastDeliveredAndAcked(t *testing.T) {
	s, apps := lineSim(Config{}, 2)
	var result *UnicastResult
	s.Node(1).SendUnicast(2, []byte{1, 2, 3}, func(r UnicastResult) { result = &r })
	s.Run(time.Second)
	if len(apps[1].frames) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(apps[1].frames))
	}
	if result == nil || !result.OK || result.Attempts != 1 {
		t.Fatalf("unicast result = %+v, want first-attempt success", result)
	}
	if apps[1].frames[0].Kind != FrameUnicast {
		t.Fatal("delivered frame must be the unicast, not the ack")
	}
}

func TestUnicastToDeadNodeFails(t *testing.T) {
	s, _ := lineSim(Config{}, 2)
	s.Node(2).Fail()
	var result *UnicastResult
	s.Node(1).SendUnicast(2, []byte{1}, func(r UnicastResult) { result = &r })
	s.Run(10 * time.Second)
	if result == nil || result.OK {
		t.Fatalf("unicast to a dead node must fail: %+v", result)
	}
	if result.Attempts != macMaxRetries {
		t.Fatalf("attempts = %d, want all %d retries", result.Attempts, macMaxRetries)
	}
	if got := s.Node(1).Counters().UnicastFails; got != 1 {
		t.Fatalf("UnicastFails = %d, want 1", got)
	}
}

func TestUnicastRetriesThroughLoss(t *testing.T) {
	// 40% loss: first attempts will often fail but five tries nearly
	// always succeed; with a fixed seed the outcome is reproducible.
	s, apps := lineSim(Config{Seed: 7, LossProb: 0.4}, 2)
	delivered := 0
	for i := 0; i < 20; i++ {
		s.Node(1).SendUnicast(2, []byte{byte(i)}, func(r UnicastResult) {
			if r.OK {
				delivered++
			}
		})
	}
	s.Run(time.Minute)
	if delivered < 18 {
		t.Fatalf("only %d/20 delivered through 40%% loss", delivered)
	}
	// At-least-once semantics: a frame whose every ack died is delivered
	// to the app yet reported failed to the sender, so the app may see
	// slightly more than the acked count — but never duplicates.
	if got := len(apps[1].frames); got < delivered || got > 20 {
		t.Fatalf("app saw %d frames for %d acked deliveries of 20 sends",
			got, delivered)
	}
	if s.Node(1).Counters().MACRetries == 0 {
		t.Fatal("40% loss must force retransmissions")
	}
}

func TestHiddenTerminalCollision(t *testing.T) {
	// With carrier sensing at 2× the 6.77 m data range, two mutually
	// decodable senders can never be hidden from each other. The
	// remaining hidden-terminal case is an interferer beyond data range
	// but inside interference range of the receiver, and beyond sense
	// range of the sender:
	//
	//	interferer B (-6.9) … receiver R (0) … sender A (+6.7)
	//
	// A–B = 13.6 m > 13.54 m sense range, so B transmits concurrently;
	// B–R = 6.9 m is undecodable but interfering; A–R = 6.7 m would
	// decode, but A is not ≥2× closer than B, so capture fails.
	s := NewSim(Config{})
	recvApp := &collectApp{}
	s.AddNode(1, Point2{X: 0}, recvApp)
	s.AddNode(2, Point2{X: 6.7}, &collectApp{})
	s.AddNode(3, Point2{X: -6.9}, &collectApp{})
	payload := make([]byte, 50)
	s.At(0, func() { s.Node(2).SendBroadcast(payload) })
	s.At(0, func() { s.Node(3).SendBroadcast(payload) })
	s.Run(time.Second)
	if len(recvApp.frames) != 0 {
		t.Fatalf("receiver decoded %d frames through interference", len(recvApp.frames))
	}
	if s.Node(1).Counters().Collisions == 0 {
		t.Fatal("collision not counted")
	}
	// Energy was still burned listening to noise.
	if s.Node(1).Energy().RxJ == 0 {
		t.Fatal("collided receptions still cost receive energy")
	}
}

func TestCaptureEffect(t *testing.T) {
	// Same geometry, but the sender is much closer than the interferer:
	// receiver R at 0, sender A at 2 m, interferer B at -6 m… B must be
	// beyond A's sense range: impossible at these scales, so use a
	// custom radio with a short sense range to isolate capture.
	s := NewSim(Config{Radio: RadioConfig{Range: 6.77, SenseRange: 6.78}})
	recvApp := &collectApp{}
	s.AddNode(1, Point2{X: 0}, recvApp)
	s.AddNode(2, Point2{X: 2}, &collectApp{})  // strong sender
	s.AddNode(3, Point2{X: -6}, &collectApp{}) // weak concurrent sender, hidden from 2
	payload := make([]byte, 50)
	s.At(0, func() { s.Node(2).SendBroadcast(payload) })
	s.At(0, func() { s.Node(3).SendBroadcast(payload) })
	s.Run(time.Second)
	// 2 m vs 6 m is a 3× distance (≈9.5 dB) advantage: captured.
	if len(recvApp.frames) != 1 {
		t.Fatalf("capture failed: receiver decoded %d frames", len(recvApp.frames))
	}
	if recvApp.frames[0].Src != 2 {
		t.Fatalf("captured the weaker frame, src=%d", recvApp.frames[0].Src)
	}
}

func TestCSMADefersToBusyMedium(t *testing.T) {
	// Node 2 starts a long transmission; node 1 (in range) wants to send
	// during it and must defer — so node 3 eventually receives both
	// frames rather than a collision.
	s, apps := lineSim(Config{}, 3)
	long := make([]byte, 200)
	s.At(0, func() { s.Node(2).SendBroadcast(long) })
	s.At(time.Millisecond, func() { s.Node(1).SendBroadcast([]byte{9}) })
	s.Run(time.Second)
	// Node 2 hears node 1's deferred frame after finishing its own.
	if len(apps[1].frames) != 1 {
		t.Fatalf("node 2 got %d frames, want 1 (deferred, not collided)", len(apps[1].frames))
	}
	if got := s.Node(2).Counters().Collisions; got != 0 {
		t.Fatalf("CSMA should have prevented collisions, got %d", got)
	}
}

func TestSimultaneousInRangeSendersSerialize(t *testing.T) {
	// Two in-range nodes asked to transmit at the same instant: carrier
	// sense is instantaneous in the model, so whichever event runs
	// first occupies the medium and the other defers. Both frames must
	// arrive intact — CSMA makes overlap between mutually audible
	// radios impossible (the half-duplex guard only matters for hidden
	// terminals).
	s, apps := lineSim(Config{}, 2)
	long := make([]byte, 200)
	s.At(0, func() { s.Node(1).SendBroadcast(long) })
	s.At(0, func() { s.Node(2).SendBroadcast(long) })
	s.Run(time.Second)
	if len(apps[0].frames) != 1 || len(apps[1].frames) != 1 {
		t.Fatalf("CSMA serialization failed: %d/%d frames decoded",
			len(apps[0].frames), len(apps[1].frames))
	}
	if s.Node(1).Counters().Collisions+s.Node(2).Counters().Collisions != 0 {
		t.Fatal("in-range senders must not collide")
	}
}

func TestRandomLossDropsFrames(t *testing.T) {
	s, apps := lineSim(Config{Seed: 3, LossProb: 1.0}, 2)
	s.Node(1).SendBroadcast([]byte{1})
	s.Run(time.Second)
	if len(apps[1].frames) != 0 {
		t.Fatal("frame survived 100% loss")
	}
	if s.Node(2).Counters().Losses != 1 {
		t.Fatalf("loss not counted: %+v", s.Node(2).Counters())
	}
}

func TestFailedNodeIsSilent(t *testing.T) {
	s, apps := lineSim(Config{}, 2)
	s.Node(1).Fail()
	s.Node(1).SendBroadcast([]byte{1})
	s.Node(2).SendBroadcast([]byte{2})
	s.Run(time.Second)
	if len(apps[1].frames) != 0 {
		t.Fatal("dead node transmitted")
	}
	if len(apps[0].frames) != 0 {
		t.Fatal("dead node received")
	}
	if !s.Node(1).Down() {
		t.Fatal("Down() must report failure")
	}
}

func TestQueueLenReportsBacklog(t *testing.T) {
	s, _ := lineSim(Config{}, 2)
	for i := 0; i < 10; i++ {
		s.Node(1).SendBroadcast(make([]byte, 100))
	}
	if s.Node(1).QueueLen() == 0 {
		t.Fatal("queue must hold the backlog while the first frame is on air")
	}
	s.Run(time.Minute)
	if s.Node(1).QueueLen() != 0 {
		t.Fatal("queue must drain")
	}
}
