package wsn

import (
	"encoding/binary"
	"time"

	"innet/internal/core"
)

// Flooder implements a simple sequenced network-wide flood: every node
// rebroadcasts each flood exactly once (deduplicated on origin and
// sequence number) after a small random jitter to decorrelate the
// rebroadcast storm. The centralized baseline's sink uses it to return
// the computed outliers to all sensors, as §7.1 describes.
type Flooder struct {
	node    *Node
	deliver func(orig core.NodeID, payload []byte)
	seq     uint32
	seen    map[dataKey]bool

	// Rebroadcasts counts forwarded floods, for traffic accounting.
	Rebroadcasts int
}

// NewFlooder attaches a flooder to the node; deliver fires once per
// distinct flood received (not for the node's own floods).
func NewFlooder(n *Node, deliver func(orig core.NodeID, payload []byte)) *Flooder {
	return &Flooder{node: n, deliver: deliver, seen: make(map[dataKey]bool)}
}

// Flood disseminates payload to the whole connected network.
func (fl *Flooder) Flood(payload []byte) {
	fl.seq++
	fl.seen[dataKey{orig: fl.node.ID, seq: fl.seq}] = true
	fl.node.SendBroadcast(encodeFlood(fl.node.ID, fl.seq, payload))
}

// HandleFrame processes flood payloads; it reports whether the frame was
// consumed.
func (fl *Flooder) HandleFrame(f *Frame) bool {
	if len(f.Payload) == 0 || f.Payload[0] != payloadFlood {
		return false
	}
	orig, seq, payload, ok := decodeFlood(f.Payload)
	if !ok {
		return true
	}
	key := dataKey{orig: orig, seq: seq}
	if fl.seen[key] {
		return true
	}
	fl.seen[key] = true
	fl.deliver(orig, payload)
	// Rebroadcast once, with enough jitter that the co-receivers of the
	// same flood (often hidden from one another) do not collide.
	raw := append([]byte(nil), f.Payload...)
	fl.Rebroadcasts++
	fl.node.Sim().After(Clock(fl.node.Sim().Rand().Int64N(int64(150*time.Millisecond))), func() {
		fl.node.SendBroadcast(raw)
	})
	return true
}

func encodeFlood(orig core.NodeID, seq uint32, payload []byte) []byte {
	buf := make([]byte, 0, 9+len(payload))
	buf = append(buf, payloadFlood)
	buf = binary.BigEndian.AppendUint16(buf, uint16(orig))
	buf = binary.BigEndian.AppendUint32(buf, seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(payload)))
	return append(buf, payload...)
}

func decodeFlood(buf []byte) (orig core.NodeID, seq uint32, payload []byte, ok bool) {
	if len(buf) < 9 {
		return 0, 0, nil, false
	}
	orig = core.NodeID(binary.BigEndian.Uint16(buf[1:]))
	seq = binary.BigEndian.Uint32(buf[3:])
	n := int(binary.BigEndian.Uint16(buf[7:]))
	if len(buf) != 9+n {
		return 0, 0, nil, false
	}
	return orig, seq, buf[9:], true
}
