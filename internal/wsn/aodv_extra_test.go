package wsn

import (
	"testing"
	"time"

	"innet/internal/core"
)

func TestAODVBestEffortDelivery(t *testing.T) {
	s, apps := routedLine(Config{}, 4)
	for i := 0; i < 5; i++ {
		apps[0].router.SendBestEffort(4, []byte{byte(i)})
	}
	s.Run(time.Minute)
	if got := len(apps[3].got); got != 5 {
		t.Fatalf("best-effort delivered %d/5", got)
	}
	// No end-to-end acks flow back for best-effort data: the only
	// routed traffic at the destination is the five deliveries.
	if apps[3].router.Stats().DataDelivered != 5 {
		t.Fatalf("destination delivered %d", apps[3].router.Stats().DataDelivered)
	}
}

func TestAODVBestEffortToSelf(t *testing.T) {
	s, apps := routedLine(Config{}, 2)
	apps[0].router.SendBestEffort(1, []byte("me"))
	s.Run(time.Second)
	if len(apps[0].got) != 1 {
		t.Fatal("self best-effort must deliver locally")
	}
}

// TestAODVIntermediateCachedReply: after a route 1→4 exists, node 2 holds
// a cached route to 4 and may answer node 1's re-discovery directly.
func TestAODVIntermediateCachedReply(t *testing.T) {
	s, apps := routedLine(Config{}, 4)
	apps[0].router.Send(4, []byte("warm"), nil)
	s.Run(30 * time.Second)
	if len(apps[3].got) != 1 {
		t.Fatal("warm-up delivery failed")
	}
	// New traffic reuses routes without a fresh flood reaching node 4.
	rreqsAt4 := apps[3].router.Stats().RREQsSent
	apps[0].router.Send(4, []byte("again"), nil)
	s.Run(s.Now() + 30*time.Second)
	if len(apps[3].got) != 2 {
		t.Fatal("second delivery failed")
	}
	if apps[3].router.Stats().RREQsSent != rreqsAt4 {
		t.Fatal("destination should not have needed new discovery")
	}
}

// TestAODVDataToUnknownNeighborRecovery: an intermediate node whose route
// entry vanished re-discovers instead of dropping silently forever (the
// originator's retry then completes delivery).
func TestAODVEndToEndRetryHeals(t *testing.T) {
	s, apps := routedLine(Config{Seed: 21, LossProb: 0.25}, 3)
	delivered := false
	apps[0].router.Send(3, []byte("x"), func(ok bool) { delivered = ok })
	s.Run(5 * time.Minute)
	if !delivered {
		t.Fatal("end-to-end retry did not heal a 25% lossy path")
	}
}

func TestFloodValidatesFrames(t *testing.T) {
	s := NewSim(Config{})
	delivered := 0
	node := s.AddNode(1, Point2{}, appFunc{})
	fl := NewFlooder(node, func(core.NodeID, []byte) { delivered++ })
	// Truncated and oversized flood frames must be ignored.
	if fl.HandleFrame(&Frame{Payload: []byte{payloadFlood, 1, 2}}) != true {
		t.Fatal("flood type byte must be consumed")
	}
	if fl.HandleFrame(&Frame{Payload: []byte{0x77}}) {
		t.Fatal("non-flood payload must not be consumed")
	}
	if delivered != 0 {
		t.Fatal("malformed flood delivered")
	}
}

func TestRouterIgnoresGarbage(t *testing.T) {
	s, apps := routedLine(Config{}, 2)
	r := apps[0].router
	for _, payload := range [][]byte{
		nil,
		{},
		{payloadRREQ, 1, 2},          // truncated RREQ
		{payloadRREP},                // truncated RREP
		{payloadRERR, 9},             // truncated RERR
		{payloadData, 0, 2, 0, 1, 5}, // truncated DATA
		{0x63, 1, 2, 3},              // unknown type
	} {
		r.HandleFrame(&Frame{Kind: FrameBroadcast, Src: 2, Payload: payload})
	}
	s.Run(time.Second)
	if len(apps[0].got) != 0 {
		t.Fatal("garbage delivered")
	}
}

// TestEnergyMonotonicity: a busier network never reports less energy.
func TestEnergyMonotonicity(t *testing.T) {
	run := func(frames int) float64 {
		s, _ := lineSim(Config{Seed: 3}, 3)
		for i := 0; i < frames; i++ {
			s.Node(1).SendBroadcast(make([]byte, 40))
		}
		s.Run(time.Minute)
		var total float64
		for _, n := range s.Nodes() {
			total += n.Energy().TotalAt(time.Minute, s.cfg.Radio.IdlePower)
		}
		return total
	}
	if run(20) <= run(2) {
		t.Fatal("more traffic must cost more energy")
	}
}

// TestFailDuringTraffic: failing a node mid-run must not panic the
// scheduler or deliver frames to the dead node.
func TestFailDuringTraffic(t *testing.T) {
	s, apps := lineSim(Config{Seed: 4}, 3)
	for i := 0; i < 30; i++ {
		s.Node(1).SendBroadcast(make([]byte, 60))
		s.Node(3).SendBroadcast(make([]byte, 60))
	}
	s.After(5*time.Millisecond, func() { s.Node(2).Fail() })
	s.Run(time.Minute)
	frames := len(apps[1].frames)
	s.Run(2 * time.Minute)
	if len(apps[1].frames) != frames {
		t.Fatal("dead node kept receiving")
	}
}
