package wsn

import (
	"sort"

	"innet/internal/core"
)

// Topology is a static view of which nodes can hear which, derived from
// positions and radio range. The runner uses it for ground truth (hop
// distances for semi-global outliers) and for configuring detectors'
// initial neighbor lists.
type Topology struct {
	ids []core.NodeID
	adj map[core.NodeID][]core.NodeID
}

// NewTopology computes the disc-graph topology of the given positions at
// the given radio range.
func NewTopology(positions map[core.NodeID]Point2, radioRange float64) *Topology {
	t := &Topology{adj: make(map[core.NodeID][]core.NodeID, len(positions))}
	for id := range positions {
		t.ids = append(t.ids, id)
	}
	sort.Slice(t.ids, func(i, j int) bool { return t.ids[i] < t.ids[j] })
	for _, a := range t.ids {
		for _, b := range t.ids {
			if a != b && positions[a].Dist(positions[b]) <= radioRange {
				t.adj[a] = append(t.adj[a], b)
			}
		}
	}
	return t
}

// Nodes returns all node IDs, sorted.
func (t *Topology) Nodes() []core.NodeID {
	out := make([]core.NodeID, len(t.ids))
	copy(out, t.ids)
	return out
}

// Neighbors returns the sorted immediate neighbors of id.
func (t *Topology) Neighbors(id core.NodeID) []core.NodeID {
	out := make([]core.NodeID, len(t.adj[id]))
	copy(out, t.adj[id])
	return out
}

// Degree returns the number of immediate neighbors of id.
func (t *Topology) Degree(id core.NodeID) int { return len(t.adj[id]) }

// HopDistances returns BFS hop distances from src; unreachable nodes are
// absent.
func (t *Topology) HopDistances(src core.NodeID) map[core.NodeID]int {
	dist := map[core.NodeID]int{src: 0}
	frontier := []core.NodeID{src}
	for len(frontier) > 0 {
		var next []core.NodeID
		for _, u := range frontier {
			for _, v := range t.adj[u] {
				if _, seen := dist[v]; !seen {
					dist[v] = dist[u] + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// Connected reports whether every node can reach every other.
func (t *Topology) Connected() bool {
	if len(t.ids) <= 1 {
		return true
	}
	return len(t.HopDistances(t.ids[0])) == len(t.ids)
}

// Diameter returns the longest shortest-path length in hops, or -1 if
// the graph is disconnected or empty.
func (t *Topology) Diameter() int {
	if len(t.ids) == 0 {
		return -1
	}
	max := 0
	for _, src := range t.ids {
		dist := t.HopDistances(src)
		if len(dist) != len(t.ids) {
			return -1
		}
		for _, d := range dist {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// MedianDegree returns the median node degree, a density summary used in
// experiment reports.
func (t *Topology) MedianDegree() int {
	if len(t.ids) == 0 {
		return 0
	}
	degs := make([]int, len(t.ids))
	for i, id := range t.ids {
		degs[i] = len(t.adj[id])
	}
	sort.Ints(degs)
	return degs[len(degs)/2]
}
