package wsn

import (
	"testing"
	"time"

	"innet/internal/core"
)

// routedApp wires a Router into a node and records delivered payloads.
type routedApp struct {
	router *Router
	got    [][]byte
	from   []core.NodeID
}

func (a *routedApp) Start(*Node) {}

func (a *routedApp) Receive(n *Node, f *Frame) {
	a.router.HandleFrame(f)
}

// routedLine builds nodes 1..n on a line (5 m spacing) each running an
// AODV router.
func routedLine(cfg Config, n int) (*Sim, []*routedApp) {
	s := NewSim(cfg)
	apps := make([]*routedApp, n)
	for i := 0; i < n; i++ {
		app := &routedApp{}
		node := s.AddNode(core.NodeID(i+1), Point2{X: float64(i) * 5}, app)
		app.router = NewRouter(node, func(src core.NodeID, payload []byte) {
			app.got = append(app.got, append([]byte(nil), payload...))
			app.from = append(app.from, src)
		})
		apps[i] = app
	}
	return s, apps
}

func TestAODVSingleHop(t *testing.T) {
	s, apps := routedLine(Config{}, 2)
	acked := false
	apps[0].router.Send(2, []byte("hello"), func(ok bool) { acked = ok })
	s.Run(time.Minute)
	if len(apps[1].got) != 1 || string(apps[1].got[0]) != "hello" {
		t.Fatalf("delivery failed: %q", apps[1].got)
	}
	if apps[1].from[0] != 1 {
		t.Fatalf("wrong source %d", apps[1].from[0])
	}
	if !acked {
		t.Fatal("end-to-end ack not received")
	}
}

func TestAODVMultiHop(t *testing.T) {
	s, apps := routedLine(Config{}, 5)
	acked := false
	apps[0].router.Send(5, []byte("far"), func(ok bool) { acked = ok })
	s.Run(time.Minute)
	if len(apps[4].got) != 1 || string(apps[4].got[0]) != "far" {
		t.Fatalf("multi-hop delivery failed: %q", apps[4].got)
	}
	if !acked {
		t.Fatal("end-to-end ack not received across 4 hops")
	}
	// Intermediate nodes forwarded but did not deliver.
	for i := 1; i < 4; i++ {
		if len(apps[i].got) != 0 {
			t.Fatalf("intermediate node %d delivered a payload", i+1)
		}
	}
	if apps[1].router.Stats().DataForwarded == 0 {
		t.Fatal("intermediate node did not forward")
	}
}

func TestAODVSendToSelf(t *testing.T) {
	s, apps := routedLine(Config{}, 2)
	acked := false
	apps[0].router.Send(1, []byte("me"), func(ok bool) { acked = ok })
	s.Run(time.Second)
	if len(apps[0].got) != 1 || !acked {
		t.Fatal("self-send must deliver locally and ack immediately")
	}
}

func TestAODVRouteReuse(t *testing.T) {
	s, apps := routedLine(Config{}, 4)
	for i := 0; i < 5; i++ {
		apps[0].router.Send(4, []byte{byte(i)}, nil)
	}
	s.Run(time.Minute)
	if len(apps[3].got) != 5 {
		t.Fatalf("delivered %d/5", len(apps[3].got))
	}
	// One discovery should cover all five sends.
	if got := apps[0].router.Stats().RREQsSent; got > 2 {
		t.Fatalf("route not reused: %d RREQ floods", got)
	}
}

func TestAODVUnreachableFails(t *testing.T) {
	s, apps := routedLine(Config{}, 4)
	s.Node(3).Fail() // cut the line: 4 unreachable from 1
	result := make(chan bool, 1)
	done := false
	apps[0].router.Send(4, []byte("x"), func(ok bool) { done = true; result <- ok })
	s.Run(5 * time.Minute)
	if !done {
		t.Fatal("send callback never fired")
	}
	if ok := <-result; ok {
		t.Fatal("send to an unreachable node reported success")
	}
	if len(apps[3].got) != 0 {
		t.Fatal("payload crossed a dead node")
	}
}

func TestAODVReroutesAroundFailure(t *testing.T) {
	// Diamond: 1 at (0,0); 2 at (5,3) and 3 at (5,-3) are both in range
	// of 1 and 4; 4 at (10,0). 2 and 3 are 6 m apart (in range), 1–4 is
	// 10 m (out of range).
	s := NewSim(Config{Seed: 5})
	apps := make(map[core.NodeID]*routedApp)
	add := func(id core.NodeID, pos Point2) {
		app := &routedApp{}
		node := s.AddNode(id, pos, app)
		app.router = NewRouter(node, func(src core.NodeID, payload []byte) {
			app.got = append(app.got, append([]byte(nil), payload...))
		})
		apps[id] = app
	}
	add(1, Point2{0, 0})
	add(2, Point2{5, 3})
	add(3, Point2{5, -3})
	add(4, Point2{10, 0})

	apps[1].router.Send(4, []byte("a"), nil)
	s.Run(30 * time.Second)
	if len(apps[4].got) != 1 {
		t.Fatalf("initial delivery failed: %d", len(apps[4].got))
	}

	// Kill whichever relay carried the route, then send again: AODV
	// must fail over to the surviving relay (possibly via the
	// end-to-end retry).
	relay := core.NodeID(2)
	if apps[3].router.Stats().DataForwarded > 0 {
		relay = 3
	}
	s.Node(relay).Fail()
	acked := false
	apps[1].router.Send(4, []byte("b"), func(ok bool) { acked = ok })
	s.Run(s.Now() + 5*time.Minute)
	if len(apps[4].got) != 2 {
		t.Fatalf("rerouted delivery failed: got %d payloads", len(apps[4].got))
	}
	if !acked {
		t.Fatal("rerouted send not acknowledged")
	}
}

func TestAODVLossyLink(t *testing.T) {
	s, apps := routedLine(Config{Seed: 11, LossProb: 0.15}, 4)
	delivered := 0
	for i := 0; i < 10; i++ {
		apps[0].router.Send(4, []byte{byte(i)}, func(ok bool) {
			if ok {
				delivered++
			}
		})
	}
	s.Run(10 * time.Minute)
	if delivered < 8 {
		t.Fatalf("only %d/10 acked over a 15%% lossy path", delivered)
	}
	if got := len(apps[3].got); got < delivered {
		t.Fatalf("acked %d but delivered %d", delivered, got)
	}
}

func TestAODVStatsProgress(t *testing.T) {
	s, apps := routedLine(Config{}, 3)
	apps[0].router.Send(3, []byte("s"), nil)
	s.Run(time.Minute)
	st := apps[0].router.Stats()
	if st.RREQsSent == 0 || st.DataForwarded == 0 {
		t.Fatalf("stats did not move: %+v", st)
	}
	if apps[2].router.Stats().DataDelivered != 1 {
		t.Fatalf("destination stats: %+v", apps[2].router.Stats())
	}
}

func TestFloodReachesEveryNode(t *testing.T) {
	s := NewSim(Config{Seed: 2})
	const n = 7
	type floodApp struct {
		fl  *Flooder
		got [][]byte
	}
	apps := make([]*floodApp, n)
	for i := 0; i < n; i++ {
		app := &floodApp{}
		node := s.AddNode(core.NodeID(i+1), Point2{X: float64(i) * 5}, appFunc{
			receive: func(nd *Node, f *Frame) { app.fl.HandleFrame(f) },
		})
		app.fl = NewFlooder(node, func(orig core.NodeID, payload []byte) {
			app.got = append(app.got, append([]byte(nil), payload...))
		})
		apps[i] = app
	}
	apps[0].fl.Flood([]byte("to-all"))
	s.Run(time.Minute)
	for i := 1; i < n; i++ {
		if len(apps[i].got) != 1 || string(apps[i].got[0]) != "to-all" {
			t.Fatalf("node %d got %q", i+1, apps[i].got)
		}
	}
	if len(apps[0].got) != 0 {
		t.Fatal("originator must not deliver its own flood")
	}
	// Flooding the same sequence twice is deduplicated.
	apps[0].fl.Flood([]byte("second"))
	s.Run(s.Now() + time.Minute)
	for i := 1; i < n; i++ {
		if len(apps[i].got) != 2 {
			t.Fatalf("node %d got %d floods, want 2", i+1, len(apps[i].got))
		}
	}
}

// appFunc adapts plain functions to the App interface.
type appFunc struct {
	start   func(*Node)
	receive func(*Node, *Frame)
}

func (a appFunc) Start(n *Node) {
	if a.start != nil {
		a.start(n)
	}
}

func (a appFunc) Receive(n *Node, f *Frame) {
	if a.receive != nil {
		a.receive(n, f)
	}
}
