package wsn

import (
	"encoding/binary"
	"time"

	"innet/internal/core"
)

// Payload type bytes multiplexing protocols over link frames.
const (
	payloadRREQ byte = 1 + iota
	payloadRREP
	payloadRERR
	payloadData
	payloadE2EAck
	payloadFlood
	payloadDataNoE2E
	// PayloadPoints tags the distributed algorithm's point packets
	// (encoded core.Outbound).
	PayloadPoints byte = 16
	// PayloadPointsAck acknowledges receipt of a tagged group in a
	// PayloadPoints packet (the paper's "message reliability assurance
	// mechanisms" on single-hop links).
	PayloadPointsAck byte = 17
)

const (
	aodvMaxTTL        = 32
	aodvRREQRetries   = 3
	aodvRREQTimeout   = 1500 * time.Millisecond
	aodvE2ERetries    = 2
	aodvE2ETimeout    = 4 * time.Second
	aodvMaxQueuedSend = 512
)

// routeEntry is one AODV forwarding-table row.
type routeEntry struct {
	nextHop core.NodeID
	hops    int
	seqNo   uint32
	valid   bool
}

type rreqKey struct {
	orig core.NodeID
	id   uint32
}

type dataKey struct {
	orig core.NodeID
	seq  uint32
}

// pendingSend is an application payload waiting for a route or an
// end-to-end acknowledgment.
type pendingSend struct {
	dst      core.NodeID
	seq      uint32
	payload  []byte
	onResult func(bool)
	retries  int
	timerGen uint64
}

// RouterStats counts routing-layer activity.
type RouterStats struct {
	RREQsSent     int
	RREPsSent     int
	RERRsSent     int
	DataForwarded int
	DataDelivered int
	DataFailed    int
}

// Router implements compact AODV (RFC 3561 in spirit): on-demand route
// discovery via RREQ floods, reverse-path RREPs with destination sequence
// numbers, RERRs on next-hop failure, hop-by-hop acknowledged unicast
// forwarding, and an end-to-end acknowledgment with bounded retry, as the
// paper's centralized baseline requires.
type Router struct {
	node    *Node
	deliver func(src core.NodeID, payload []byte)

	seqNo   uint32
	rreqID  uint32
	dataSeq uint32

	routes     map[core.NodeID]*routeEntry
	seenRREQ   map[rreqKey]bool
	seenData   map[dataKey]bool
	waiting    map[core.NodeID][]*pendingSend // buffered until a route exists
	pendingE2E map[uint32]*pendingSend
	discovery  map[core.NodeID]int // outstanding RREQ attempts per destination

	stats RouterStats
}

// NewRouter attaches a router to the node. deliver is invoked for every
// application payload that reaches this node as its final destination.
func NewRouter(n *Node, deliver func(src core.NodeID, payload []byte)) *Router {
	return &Router{
		node:       n,
		deliver:    deliver,
		routes:     make(map[core.NodeID]*routeEntry),
		seenRREQ:   make(map[rreqKey]bool),
		seenData:   make(map[dataKey]bool),
		waiting:    make(map[core.NodeID][]*pendingSend),
		pendingE2E: make(map[uint32]*pendingSend),
		discovery:  make(map[core.NodeID]int),
	}
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() RouterStats { return r.stats }

// Send routes payload to dst with end-to-end acknowledgment. onResult, if
// non-nil, fires exactly once: true when the destination acknowledged,
// false when discovery or delivery ultimately failed.
func (r *Router) Send(dst core.NodeID, payload []byte, onResult func(bool)) {
	if dst == r.node.ID {
		r.deliver(r.node.ID, payload)
		if onResult != nil {
			onResult(true)
		}
		return
	}
	r.dataSeq++
	ps := &pendingSend{dst: dst, seq: r.dataSeq, payload: payload, onResult: onResult}
	r.pendingE2E[ps.seq] = ps
	r.dispatch(ps)
}

// SendBestEffort routes payload to dst relying on hop-by-hop link
// acknowledgments only: no end-to-end ack, no end-to-end retry. Periodic
// traffic whose next round supersedes this one (the baseline's window
// shipments) must use this — end-to-end retries of superseded data only
// amplify congestion.
func (r *Router) SendBestEffort(dst core.NodeID, payload []byte) {
	if dst == r.node.ID {
		r.deliver(r.node.ID, payload)
		return
	}
	r.dataSeq++
	if route, ok := r.routes[dst]; ok && route.valid {
		r.forwardRaw(payloadDataNoE2E, r.node.ID, dst, r.dataSeq, aodvMaxTTL, payload)
		return
	}
	if len(r.waiting[dst]) >= aodvMaxQueuedSend {
		r.stats.DataFailed++
		return
	}
	r.waiting[dst] = append(r.waiting[dst], &pendingSend{dst: dst, seq: r.dataSeq, payload: payload, retries: -1})
	r.discover(dst, 0)
}

// dispatch forwards ps if a route exists, otherwise starts discovery.
func (r *Router) dispatch(ps *pendingSend) {
	if route, ok := r.routes[ps.dst]; ok && route.valid {
		r.forwardData(r.node.ID, ps.dst, ps.seq, aodvMaxTTL, ps.payload)
		r.armE2ETimer(ps)
		return
	}
	if len(r.waiting[ps.dst]) >= aodvMaxQueuedSend {
		r.fail(ps)
		return
	}
	r.waiting[ps.dst] = append(r.waiting[ps.dst], ps)
	r.discover(ps.dst, 0)
}

func (r *Router) fail(ps *pendingSend) {
	delete(r.pendingE2E, ps.seq)
	r.stats.DataFailed++
	if ps.onResult != nil {
		cb := ps.onResult
		ps.onResult = nil
		cb(false)
	}
}

// discover floods a route request for dst, retrying a bounded number of
// times before failing everything queued for it.
func (r *Router) discover(dst core.NodeID, attempt int) {
	if route, ok := r.routes[dst]; ok && route.valid {
		return
	}
	if attempt >= aodvRREQRetries {
		queued := r.waiting[dst]
		delete(r.waiting, dst)
		delete(r.discovery, dst)
		for _, ps := range queued {
			r.fail(ps)
		}
		return
	}
	if pending, ok := r.discovery[dst]; ok && pending > attempt {
		return // a newer discovery round is already out
	}
	r.discovery[dst] = attempt + 1
	r.rreqID++
	r.seqNo++
	r.seenRREQ[rreqKey{orig: r.node.ID, id: r.rreqID}] = true
	r.stats.RREQsSent++
	r.node.SendBroadcast(encodeRREQ(r.rreqID, r.node.ID, r.seqNo, dst, r.routes[dst].knownSeq(), 0))
	r.node.Sim().After(aodvRREQTimeout, func() {
		if len(r.waiting[dst]) > 0 {
			r.discover(dst, attempt+1)
		}
	})
}

func (e *routeEntry) knownSeq() uint32 {
	if e == nil {
		return 0
	}
	return e.seqNo
}

// learnRoute installs or refreshes a route following AODV's sequence
// number and hop count rules, then flushes any sends waiting for it.
func (r *Router) learnRoute(dst, nextHop core.NodeID, hops int, seqNo uint32) {
	if dst == r.node.ID {
		return
	}
	cur, ok := r.routes[dst]
	if ok && cur.valid && (cur.seqNo > seqNo || (cur.seqNo == seqNo && cur.hops <= hops)) {
		return
	}
	r.routes[dst] = &routeEntry{nextHop: nextHop, hops: hops, seqNo: seqNo, valid: true}
	queued := r.waiting[dst]
	delete(r.waiting, dst)
	delete(r.discovery, dst)
	for _, ps := range queued {
		if ps.retries < 0 { // best-effort: no end-to-end machinery
			r.forwardRaw(payloadDataNoE2E, r.node.ID, ps.dst, ps.seq, aodvMaxTTL, ps.payload)
			continue
		}
		r.forwardData(r.node.ID, ps.dst, ps.seq, aodvMaxTTL, ps.payload)
		r.armE2ETimer(ps)
	}
}

// forwardData sends one routed hop of an end-to-end-acknowledged data
// packet.
func (r *Router) forwardData(orig, dst core.NodeID, seq uint32, ttl int, payload []byte) {
	r.forwardRaw(payloadData, orig, dst, seq, ttl, payload)
}

// forwardRaw sends one routed hop of a data packet of the given kind.
func (r *Router) forwardRaw(kind byte, orig, dst core.NodeID, seq uint32, ttl int, payload []byte) {
	route, ok := r.routes[dst]
	if !ok || !route.valid {
		// No route at an intermediate hop: try to re-discover; the
		// originator's end-to-end retry (or next periodic shipment)
		// covers the lost packet.
		r.discover(dst, 0)
		return
	}
	if ttl <= 0 {
		return
	}
	next := route.nextHop
	buf := encodeData(kind, orig, dst, seq, uint8(ttl-1), payload)
	r.stats.DataForwarded++
	r.node.SendUnicast(next, buf, func(res UnicastResult) {
		if !res.OK {
			r.linkBroken(next, dst)
		}
	})
}

// linkBroken invalidates every route through the dead next hop and
// broadcasts a route error.
func (r *Router) linkBroken(next core.NodeID, dst core.NodeID) {
	broken := false
	for d, route := range r.routes {
		if route.nextHop == next && route.valid {
			route.valid = false
			broken = true
			_ = d
		}
	}
	if broken {
		r.seqNo++
		r.stats.RERRsSent++
		r.node.SendBroadcast(encodeRERR(dst))
	}
}

func (r *Router) armE2ETimer(ps *pendingSend) {
	ps.timerGen++
	gen := ps.timerGen
	r.node.Sim().After(aodvE2ETimeout+Clock(r.node.Sim().Rand().Int64N(int64(time.Second))), func() {
		cur, ok := r.pendingE2E[ps.seq]
		if !ok || cur != ps || ps.timerGen != gen {
			return
		}
		if ps.retries >= aodvE2ERetries {
			r.fail(ps)
			return
		}
		ps.retries++
		r.dispatch(ps)
	})
}

// HandleFrame processes routing-protocol payloads; it reports whether the
// frame was consumed.
func (r *Router) HandleFrame(f *Frame) bool {
	if len(f.Payload) == 0 {
		return false
	}
	switch f.Payload[0] {
	case payloadRREQ:
		r.handleRREQ(f)
	case payloadRREP:
		r.handleRREP(f)
	case payloadRERR:
		r.handleRERR(f)
	case payloadData, payloadDataNoE2E:
		r.handleData(f)
	case payloadE2EAck:
		r.handleE2EAck(f)
	default:
		return false
	}
	return true
}

func (r *Router) handleRREQ(f *Frame) {
	id, orig, origSeq, dst, dstSeq, hops, ok := decodeRREQ(f.Payload)
	if !ok || orig == r.node.ID {
		return
	}
	key := rreqKey{orig: orig, id: id}
	if r.seenRREQ[key] {
		return
	}
	r.seenRREQ[key] = true
	// Reverse route to the originator through the broadcaster.
	r.learnRoute(orig, f.Src, int(hops)+1, origSeq)

	if dst == r.node.ID {
		r.seqNo++
		if r.seqNo < dstSeq {
			r.seqNo = dstSeq
		}
		r.sendRREP(orig, dst, r.seqNo, 0)
		return
	}
	if route, okR := r.routes[dst]; okR && route.valid && route.seqNo >= dstSeq {
		// Intermediate reply from a fresh-enough cached route.
		r.sendRREP(orig, dst, route.seqNo, route.hops)
		return
	}
	if hops+1 < aodvMaxTTL {
		r.node.SendBroadcast(encodeRREQ(id, orig, origSeq, dst, dstSeq, hops+1))
	}
}

func (r *Router) sendRREP(orig, dst core.NodeID, dstSeq uint32, hops int) {
	route, ok := r.routes[orig]
	if !ok || !route.valid {
		return
	}
	r.stats.RREPsSent++
	r.node.SendUnicast(route.nextHop, encodeRREP(orig, dst, dstSeq, uint8(hops)), nil)
}

func (r *Router) handleRREP(f *Frame) {
	orig, dst, dstSeq, hops, ok := decodeRREP(f.Payload)
	if !ok {
		return
	}
	// Forward route to the replied-for destination via the sender.
	r.learnRoute(dst, f.Src, int(hops)+1, dstSeq)
	if orig == r.node.ID {
		return
	}
	if route, okR := r.routes[orig]; okR && route.valid {
		r.node.SendUnicast(route.nextHop, encodeRREP(orig, dst, dstSeq, hops+1), nil)
	}
}

func (r *Router) handleRERR(f *Frame) {
	dst, ok := decodeRERR(f.Payload)
	if !ok {
		return
	}
	if route, okR := r.routes[dst]; okR && route.valid && route.nextHop == f.Src {
		route.valid = false
	}
}

func (r *Router) handleData(f *Frame) {
	orig, dst, seq, ttl, payload, ok := decodeData(f.Payload)
	if !ok {
		return
	}
	// Refresh the reverse route: data arriving from f.Src means orig is
	// reachable through it (used by the end-to-end ack).
	if orig != r.node.ID {
		if _, okR := r.routes[orig]; !okR || !r.routes[orig].valid {
			r.learnRoute(orig, f.Src, aodvMaxTTL, 0)
		}
	}
	if dst == r.node.ID {
		key := dataKey{orig: orig, seq: seq}
		if !r.seenData[key] {
			r.seenData[key] = true
			r.stats.DataDelivered++
			r.deliver(orig, payload)
		}
		if f.Payload[0] == payloadData {
			// Acknowledge even duplicates: the first ack may have died.
			r.sendE2EAck(orig, seq)
		}
		return
	}
	r.forwardRaw(f.Payload[0], orig, dst, seq, int(ttl), payload)
}

func (r *Router) sendE2EAck(orig core.NodeID, seq uint32) {
	route, ok := r.routes[orig]
	if !ok || !route.valid {
		r.discover(orig, 0)
		return
	}
	buf := encodeData(payloadE2EAck, r.node.ID, orig, seq, aodvMaxTTL, nil)
	r.node.SendUnicast(route.nextHop, buf, nil)
}

func (r *Router) handleE2EAck(f *Frame) {
	orig, dst, seq, ttl, _, ok := decodeData(f.Payload)
	if !ok {
		return
	}
	if dst != r.node.ID {
		if route, okR := r.routes[dst]; okR && route.valid && ttl > 0 {
			buf := encodeData(payloadE2EAck, orig, dst, seq, ttl-1, nil)
			r.node.SendUnicast(route.nextHop, buf, nil)
		}
		return
	}
	if ps, okP := r.pendingE2E[seq]; okP {
		delete(r.pendingE2E, seq)
		if ps.onResult != nil {
			cb := ps.onResult
			ps.onResult = nil
			cb(true)
		}
	}
}

// Wire encodings. All integers big-endian.

func encodeRREQ(id uint32, orig core.NodeID, origSeq uint32, dst core.NodeID, dstSeq uint32, hops uint8) []byte {
	buf := make([]byte, 0, 14)
	buf = append(buf, payloadRREQ)
	buf = binary.BigEndian.AppendUint32(buf, id)
	buf = binary.BigEndian.AppendUint16(buf, uint16(orig))
	buf = binary.BigEndian.AppendUint32(buf, origSeq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(dst))
	buf = binary.BigEndian.AppendUint32(buf, dstSeq)
	return append(buf, hops)
}

func decodeRREQ(buf []byte) (id uint32, orig core.NodeID, origSeq uint32, dst core.NodeID, dstSeq uint32, hops uint8, ok bool) {
	if len(buf) != 18 {
		return 0, 0, 0, 0, 0, 0, false
	}
	id = binary.BigEndian.Uint32(buf[1:])
	orig = core.NodeID(binary.BigEndian.Uint16(buf[5:]))
	origSeq = binary.BigEndian.Uint32(buf[7:])
	dst = core.NodeID(binary.BigEndian.Uint16(buf[11:]))
	dstSeq = binary.BigEndian.Uint32(buf[13:])
	hops = buf[17]
	return id, orig, origSeq, dst, dstSeq, hops, true
}

func encodeRREP(orig, dst core.NodeID, dstSeq uint32, hops uint8) []byte {
	buf := make([]byte, 0, 10)
	buf = append(buf, payloadRREP)
	buf = binary.BigEndian.AppendUint16(buf, uint16(orig))
	buf = binary.BigEndian.AppendUint16(buf, uint16(dst))
	buf = binary.BigEndian.AppendUint32(buf, dstSeq)
	return append(buf, hops)
}

func decodeRREP(buf []byte) (orig, dst core.NodeID, dstSeq uint32, hops uint8, ok bool) {
	if len(buf) != 10 {
		return 0, 0, 0, 0, false
	}
	orig = core.NodeID(binary.BigEndian.Uint16(buf[1:]))
	dst = core.NodeID(binary.BigEndian.Uint16(buf[3:]))
	dstSeq = binary.BigEndian.Uint32(buf[5:])
	hops = buf[9]
	return orig, dst, dstSeq, hops, true
}

func encodeRERR(dst core.NodeID) []byte {
	buf := make([]byte, 0, 3)
	buf = append(buf, payloadRERR)
	return binary.BigEndian.AppendUint16(buf, uint16(dst))
}

func decodeRERR(buf []byte) (dst core.NodeID, ok bool) {
	if len(buf) != 3 {
		return 0, false
	}
	return core.NodeID(binary.BigEndian.Uint16(buf[1:])), true
}

func encodeData(kind byte, orig, dst core.NodeID, seq uint32, ttl uint8, payload []byte) []byte {
	buf := make([]byte, 0, 12+len(payload))
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint16(buf, uint16(orig))
	buf = binary.BigEndian.AppendUint16(buf, uint16(dst))
	buf = binary.BigEndian.AppendUint32(buf, seq)
	buf = append(buf, ttl)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(payload)))
	return append(buf, payload...)
}

func decodeData(buf []byte) (orig, dst core.NodeID, seq uint32, ttl uint8, payload []byte, ok bool) {
	if len(buf) < 12 {
		return 0, 0, 0, 0, nil, false
	}
	orig = core.NodeID(binary.BigEndian.Uint16(buf[1:]))
	dst = core.NodeID(binary.BigEndian.Uint16(buf[3:]))
	seq = binary.BigEndian.Uint32(buf[5:])
	ttl = buf[9]
	n := int(binary.BigEndian.Uint16(buf[10:]))
	if len(buf) != 12+n {
		return 0, 0, 0, 0, nil, false
	}
	return orig, dst, seq, ttl, buf[12:], true
}
