package wsn

import (
	"testing"

	"innet/internal/core"
)

func linePositions(n int, spacing float64) map[core.NodeID]Point2 {
	pos := make(map[core.NodeID]Point2, n)
	for i := 0; i < n; i++ {
		pos[core.NodeID(i+1)] = Point2{X: float64(i) * spacing}
	}
	return pos
}

func TestTopologyDiscGraph(t *testing.T) {
	topo := NewTopology(linePositions(5, 5), 6.77)
	if got := topo.Neighbors(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	if got := topo.Neighbors(3); len(got) != 2 {
		t.Fatalf("Neighbors(3) = %v", got)
	}
	if topo.Degree(2) != 2 {
		t.Fatalf("Degree(2) = %d", topo.Degree(2))
	}
}

func TestTopologyHopDistances(t *testing.T) {
	topo := NewTopology(linePositions(5, 5), 6.77)
	dist := topo.HopDistances(1)
	for id := core.NodeID(1); id <= 5; id++ {
		if dist[id] != int(id)-1 {
			t.Fatalf("dist[%d] = %d", id, dist[id])
		}
	}
}

func TestTopologyConnectedAndDiameter(t *testing.T) {
	topo := NewTopology(linePositions(5, 5), 6.77)
	if !topo.Connected() {
		t.Fatal("line must be connected")
	}
	if got := topo.Diameter(); got != 4 {
		t.Fatalf("Diameter = %d, want 4", got)
	}
	// Too short a range splits the graph.
	sparse := NewTopology(linePositions(5, 5), 3)
	if sparse.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if sparse.Diameter() != -1 {
		t.Fatal("disconnected diameter must be -1")
	}
}

func TestTopologyTrivialCases(t *testing.T) {
	empty := NewTopology(nil, 5)
	if !empty.Connected() || empty.Diameter() != -1 || empty.MedianDegree() != 0 {
		t.Fatal("empty topology invariants")
	}
	single := NewTopology(map[core.NodeID]Point2{7: {}}, 5)
	if !single.Connected() || single.Diameter() != 0 {
		t.Fatal("singleton topology invariants")
	}
}

func TestTopologyMedianDegree(t *testing.T) {
	topo := NewTopology(linePositions(5, 5), 6.77)
	if got := topo.MedianDegree(); got != 2 {
		t.Fatalf("MedianDegree = %d, want 2", got)
	}
}

func TestTopologyNodesSorted(t *testing.T) {
	pos := map[core.NodeID]Point2{9: {}, 3: {X: 1}, 7: {X: 2}}
	topo := NewTopology(pos, 10)
	ids := topo.Nodes()
	if ids[0] != 3 || ids[1] != 7 || ids[2] != 9 {
		t.Fatalf("Nodes() = %v, want sorted", ids)
	}
}
