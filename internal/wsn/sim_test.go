package wsn

import (
	"testing"
	"time"

	"innet/internal/core"
)

// collectApp records every frame delivered to it.
type collectApp struct {
	started int
	frames  []*Frame
	onFrame func(n *Node, f *Frame)
}

func (a *collectApp) Start(*Node) { a.started++ }

func (a *collectApp) Receive(n *Node, f *Frame) {
	a.frames = append(a.frames, f)
	if a.onFrame != nil {
		a.onFrame(n, f)
	}
}

// lineSim builds nodes 1..n spaced 5 m apart on a line: adjacent nodes
// are inside the default 6.77 m range, two-apart nodes are not.
func lineSim(cfg Config, n int) (*Sim, []*collectApp) {
	s := NewSim(cfg)
	apps := make([]*collectApp, n)
	for i := 0; i < n; i++ {
		apps[i] = &collectApp{}
		s.AddNode(core.NodeID(i+1), Point2{X: float64(i) * 5}, apps[i])
	}
	return s, apps
}

func TestEventOrdering(t *testing.T) {
	s := NewSim(Config{})
	var order []int
	s.At(2*time.Second, func() { order = append(order, 2) })
	s.At(1*time.Second, func() { order = append(order, 1) })
	s.At(1*time.Second, func() { order = append(order, 11) }) // same time: FIFO
	s.At(3*time.Second, func() { order = append(order, 3) })
	s.Run(10 * time.Second)
	want := []int{1, 11, 2, 3}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("clock = %v, want advance to horizon", s.Now())
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	s := NewSim(Config{})
	fired := false
	s.At(5*time.Second, func() { fired = true })
	s.Run(2 * time.Second)
	if fired {
		t.Fatal("event beyond the horizon ran")
	}
	s.Run(5 * time.Second) // inclusive
	if !fired {
		t.Fatal("event at the horizon must run")
	}
}

func TestAtClampsToPast(t *testing.T) {
	s := NewSim(Config{})
	var at Clock
	s.At(time.Second, func() {
		s.At(0, func() { at = s.Now() }) // scheduling in the past
	})
	s.Run(time.Minute)
	if at != time.Second {
		t.Fatalf("past event ran at %v, want clamped to now", at)
	}
}

func TestRunUntilIdleCap(t *testing.T) {
	s := NewSim(Config{})
	var loop func()
	count := 0
	loop = func() {
		count++
		s.After(time.Millisecond, loop)
	}
	s.After(0, loop)
	if s.RunUntilIdle(100) {
		t.Fatal("self-perpetuating schedule cannot drain")
	}
	if count != 100 {
		t.Fatalf("ran %d events, want exactly the cap", count)
	}
}

func TestAirtime(t *testing.T) {
	radio := DefaultRadio()
	// 100-byte payload + 18 overhead = 944 bits at 250 kbit/s.
	bits := 944.0
	want := time.Duration(bits / 250000.0 * 1e9)
	if got := radio.airtime(100); got != want {
		t.Fatalf("airtime = %v, want %v", got, want)
	}
	slow := RadioConfig{BitRate: 38400}
	slow.applyDefaults()
	if got := slow.airtime(100); got != time.Duration(bits/38400.0*1e9) {
		t.Fatalf("Mica2 airtime = %v", got)
	}
}

func TestRadioDefaultsApplied(t *testing.T) {
	s := NewSim(Config{})
	if s.cfg.Radio.TxPower != 0.0159 || s.cfg.Radio.BitRate != 250000 {
		t.Fatalf("defaults not applied: %+v", s.cfg.Radio)
	}
	if s.cfg.Radio.SenseRange != 2*s.cfg.Radio.Range {
		t.Fatalf("sense range default: %+v", s.cfg.Radio)
	}
	// Partial override keeps other defaults.
	s2 := NewSim(Config{Radio: RadioConfig{Range: 10}})
	if s2.cfg.Radio.Range != 10 || s2.cfg.Radio.RxPower != 0.021 {
		t.Fatalf("partial override broke defaults: %+v", s2.cfg.Radio)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	s := NewSim(Config{})
	s.AddNode(1, Point2{}, &collectApp{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode must panic")
		}
	}()
	s.AddNode(1, Point2{}, &collectApp{})
}

func TestStartStaggersApps(t *testing.T) {
	s, apps := lineSim(Config{}, 3)
	s.Start()
	s.Run(time.Second)
	for i, a := range apps {
		if a.started != 1 {
			t.Fatalf("app %d started %d times", i, a.started)
		}
	}
}

// TestDeterminism runs an identical traffic pattern twice and requires
// bit-identical energy and event counts.
func TestDeterminism(t *testing.T) {
	run := func() (int, Energy) {
		s, _ := lineSim(Config{Seed: 99, LossProb: 0.2}, 5)
		s.Start()
		for i := 0; i < 20; i++ {
			node := s.Nodes()[i%5]
			s.At(Clock(i)*100*time.Millisecond, func() {
				node.SendBroadcast(make([]byte, 30))
			})
		}
		s.Run(10 * time.Second)
		return s.Events(), s.Nodes()[2].Energy()
	}
	e1, en1 := run()
	e2, en2 := run()
	if e1 != e2 || en1 != en2 {
		t.Fatalf("non-deterministic: %d/%+v vs %d/%+v", e1, en1, e2, en2)
	}
}

func TestPoint2Dist(t *testing.T) {
	a := Point2{X: 0, Y: 0}
	b := Point2{X: 3, Y: 4}
	if a.Dist(b) != 5 {
		t.Fatalf("Dist = %v", a.Dist(b))
	}
}
