package wsn

import (
	"time"

	"innet/internal/core"
)

// BroadcastAddr is the MAC destination meaning "all neighbors".
const BroadcastAddr core.NodeID = 0xFFFF

// FrameKind distinguishes link-layer frame types.
type FrameKind uint8

// Frame kinds. MAC acknowledgments are link-layer only and never reach
// applications.
const (
	FrameBroadcast FrameKind = iota + 1
	FrameUnicast
	FrameAck
)

// Frame is one link-layer transmission.
type Frame struct {
	Kind    FrameKind
	Src     core.NodeID
	Dst     core.NodeID // BroadcastAddr for broadcast frames
	Seq     uint32
	Payload []byte
}

// size returns the frame's payload size in bytes; the PHY/MAC overhead is
// added by the radio model.
func (f *Frame) size() int {
	if f.Kind == FrameAck {
		return 0 // an ack is pure framing
	}
	return len(f.Payload)
}

// App is a node-resident application: a protocol endpoint driven by the
// simulator. Implementations must perform all work synchronously inside
// the callbacks (the simulator is single-threaded) and may schedule
// future work via Node.Sim().After.
type App interface {
	// Start runs once when the node boots.
	Start(n *Node)
	// Receive delivers a successfully decoded frame addressed to this
	// node (unicast to its ID, or broadcast).
	Receive(n *Node, f *Frame)
}

// UnicastResult reports the fate of an acknowledged unicast.
type UnicastResult struct {
	OK       bool
	Attempts int
}

// Energy is a node's cumulative energy ledger, in joules and radio-active
// time. Idle energy is derived at reporting time from the complement of
// the active time.
type Energy struct {
	TxJ    float64
	RxJ    float64
	TxTime Clock
	RxTime Clock
}

// TotalAt returns total energy consumed by elapsed, charging the idle
// power for all non-active time.
func (e Energy) TotalAt(elapsed Clock, idlePower float64) float64 {
	active := e.TxTime + e.RxTime
	if active > elapsed {
		active = elapsed
	}
	return e.TxJ + e.RxJ + idlePower*(elapsed-active).Seconds()
}

// Counters tracks per-node MAC statistics.
type Counters struct {
	FramesSent      int // frames put on air (including retransmissions)
	FramesDelivered int
	FramesReceived  int // frames successfully received (any kind)
	Collisions      int // receptions lost to overlap
	Losses          int // receptions lost to random loss
	MACRetries      int
	UnicastFails    int
}

// reception is one in-flight frame arriving at a node.
type reception struct {
	frame   *Frame
	from    *Node
	end     Clock
	dist    float64 // sender distance, for the capture effect
	corrupt bool
}

// captureRatio is the distance factor at which the closer of two
// overlapping transmissions survives (capture effect): free-space power
// goes with 1/d², so a 2× distance advantage is ≈6 dB of SIR — enough
// for a real receiver to hold onto the stronger frame.
const captureRatio = 2.0

// interferer is an audible-but-undecodable transmission overlapping this
// node: anything received while it is active must out-power it to
// survive.
type interferer struct {
	end  Clock
	dist float64
}

// outFrame is one queued transmission.
type outFrame struct {
	frame    *Frame
	attempts int
	onResult func(UnicastResult) // non-nil only for acknowledged unicast
}

const (
	macMaxRetries = 5
	// macSIFS is the ack turnaround after a data frame ends.
	macSIFS = time.Millisecond
	// macDIFS is how long contenders must observe an idle medium before
	// transmitting. It exceeds SIFS plus the ack airtime (≈3.8 ms), so
	// the acknowledgment window after every data frame is protected
	// from the contenders that deferred during the frame — the same
	// SIFS/DIFS separation 802.11 uses.
	macDIFS        = 6 * time.Millisecond
	macAckTimeout  = 25 * time.Millisecond
	csmaBackoffMax = 8 * time.Millisecond
)

// Node is one simulated sensor: a position, a radio with CSMA MAC, an
// energy meter and an application.
type Node struct {
	ID  core.NodeID
	Pos Point2

	sim *Sim
	app App

	down bool

	// MAC state.
	queue        []outFrame
	transmitting bool
	carrierUntil Clock
	txUntil      Clock
	nextSeq      uint32
	receptions   []*reception
	interference []interferer
	awaitingAck  *outFrame
	ackDeadline  uint64 // timer generation for ack timeouts
	dedup        map[core.NodeID]uint32

	energy   Energy
	counters Counters
}

func newNode(s *Sim, id core.NodeID, pos Point2, app App) *Node {
	return &Node{ID: id, Pos: pos, sim: s, app: app, dedup: make(map[core.NodeID]uint32)}
}

// Sim returns the owning simulator, for scheduling and randomness.
func (n *Node) Sim() *Sim { return n.sim }

// Energy returns the node's cumulative energy ledger.
func (n *Node) Energy() Energy { return n.energy }

// Counters returns the node's MAC statistics.
func (n *Node) Counters() Counters { return n.counters }

// Down reports whether the node has failed.
func (n *Node) Down() bool { return n.down }

// Fail takes the node off the air: it stops transmitting, receiving and
// consuming energy. Queued frames are dropped.
func (n *Node) Fail() {
	n.down = true
	n.queue = nil
	n.receptions = nil
	n.awaitingAck = nil
}

// QueueLen returns the number of frames waiting for the medium, a
// congestion signal.
func (n *Node) QueueLen() int { return len(n.queue) }

// SendBroadcast queues an unacknowledged broadcast of payload to all
// neighbors (the paper's single-hop packet M).
func (n *Node) SendBroadcast(payload []byte) {
	if n.down {
		return
	}
	n.nextSeq++
	n.enqueue(outFrame{frame: &Frame{
		Kind:    FrameBroadcast,
		Src:     n.ID,
		Dst:     BroadcastAddr,
		Seq:     n.nextSeq,
		Payload: payload,
	}})
}

// SendUnicast queues an acknowledged unicast to dst. onResult, if
// non-nil, fires exactly once with the outcome after the MAC either gets
// an acknowledgment or exhausts its retries.
func (n *Node) SendUnicast(dst core.NodeID, payload []byte, onResult func(UnicastResult)) {
	if n.down {
		if onResult != nil {
			onResult(UnicastResult{})
		}
		return
	}
	n.nextSeq++
	n.enqueue(outFrame{
		frame: &Frame{
			Kind:    FrameUnicast,
			Src:     n.ID,
			Dst:     dst,
			Seq:     n.nextSeq,
			Payload: payload,
		},
		onResult: onResult,
	})
}

func (n *Node) enqueue(of outFrame) {
	n.queue = append(n.queue, of)
	n.kick()
}

// kick tries to start the next transmission if the MAC is idle.
// Link-layer acks bypass the stop-and-wait gate: a node waiting for its
// own data to be acknowledged must still acknowledge others immediately,
// or two nodes with crossing traffic deadlock each other into retry
// exhaustion.
func (n *Node) kick() {
	if n.down || n.transmitting || len(n.queue) == 0 {
		return
	}
	if n.awaitingAck != nil && n.queue[0].frame.Kind != FrameAck {
		return
	}
	now := n.sim.Now()
	// Carrier sense: the medium must have been observed idle for DIFS
	// since the last transmission ended; retry after it frees, with a
	// random backoff to break synchronization. Acks are exempt (SIFS
	// turnaround). A radio that has never heard a carrier
	// (carrierUntil == 0) has trivially satisfied the idle requirement.
	if idleAt := n.carrierUntil + macDIFS; n.carrierUntil > 0 && idleAt > now &&
		n.queue[0].frame.Kind != FrameAck {
		n.sim.After(idleAt-now+n.backoff(), n.kick)
		return
	}
	of := n.queue[0]
	n.queue = n.queue[1:]
	n.transmit(of)
}

func (n *Node) backoff() Clock {
	return Clock(1 + n.sim.Rand().Int64N(int64(csmaBackoffMax)))
}

// transmit puts a frame on the air: energy is charged, the medium is
// occupied for the airtime at the sender and every in-range node, and
// receptions are scheduled with collision bookkeeping.
func (n *Node) transmit(of outFrame) {
	radio := n.sim.cfg.Radio
	air := radio.airtime(of.frame.size())
	now := n.sim.Now()
	end := now + air

	n.transmitting = true
	n.txUntil = end
	if n.carrierUntil < end {
		n.carrierUntil = end
	}
	// Half-duplex: starting to transmit deafens any reception in
	// progress (possible when an ack preempts, since acks skip carrier
	// sensing).
	for _, rx := range n.receptions {
		if rx.end > now {
			n.corruptReception(rx)
		}
	}
	n.energy.TxJ += radio.TxPower * air.Seconds()
	n.energy.TxTime += air
	n.counters.FramesSent++

	for _, nb := range n.sim.neighborsOf(n) {
		nb.beginReception(of.frame, n, end, air)
	}
	for _, far := range n.sim.sensersOf(n) {
		far.interfere(n, end)
	}

	n.sim.At(end, func() {
		n.transmitting = false
		switch {
		case of.frame.Kind == FrameUnicast:
			n.armAckTimer(of)
		default:
			n.kick()
		}
	})
}

// beginReception registers an incoming frame at this node, accounting for
// half-duplex deafness, collisions with other ongoing receptions, and
// promiscuous receive energy.
func (n *Node) beginReception(f *Frame, from *Node, end Clock, air Clock) {
	if n.down {
		return
	}
	now := n.sim.Now()
	if n.carrierUntil < end {
		n.carrierUntil = end
	}

	// Half-duplex: a transmitting radio hears nothing, and spends no
	// extra receive energy.
	if n.txUntil > now {
		return
	}

	n.energy.RxJ += n.sim.cfg.Radio.RxPower * air.Seconds()
	n.energy.RxTime += air

	rx := &reception{frame: f, from: from, end: end, dist: n.Pos.Dist(from.Pos)}
	for _, other := range n.receptions {
		if other.end <= now {
			continue
		}
		// Overlap: the much-closer transmission captures the receiver;
		// otherwise both are lost.
		switch {
		case rx.dist*captureRatio <= other.dist:
			n.corruptReception(other)
		case other.dist*captureRatio <= rx.dist:
			n.corruptReception(rx)
		default:
			n.corruptReception(other)
			n.corruptReception(rx)
		}
	}
	// Ongoing out-of-range interference kills the reception unless the
	// sender clearly out-powers it.
	for _, itf := range n.interference {
		if itf.end > now && rx.dist*captureRatio > itf.dist {
			n.corruptReception(rx)
		}
	}
	n.receptions = append(n.receptions, rx)
	n.sim.At(end, func() { n.finishReception(rx) })
}

func (n *Node) corruptReception(rx *reception) {
	if rx.corrupt {
		return
	}
	rx.corrupt = true
	n.counters.Collisions++
}

// interfere registers a transmission audible but not decodable here: the
// carrier looks busy for its duration and any reception (present or
// starting within it) from a sender not clearly stronger than the
// interferer is corrupted.
func (n *Node) interfere(from *Node, end Clock) {
	if n.down {
		return
	}
	now := n.sim.Now()
	if n.carrierUntil < end {
		n.carrierUntil = end
	}
	dist := n.Pos.Dist(from.Pos)
	for _, rx := range n.receptions {
		if rx.end > now && rx.dist*captureRatio > dist {
			n.corruptReception(rx)
		}
	}
	// Record for receptions that begin during this interference,
	// compacting expired entries in place.
	active := n.interference[:0]
	for _, itf := range n.interference {
		if itf.end > now {
			active = append(active, itf)
		}
	}
	n.interference = append(active, interferer{end: end, dist: dist})
}

func (n *Node) finishReception(rx *reception) {
	// Drop the record.
	for i, r := range n.receptions {
		if r == rx {
			n.receptions = append(n.receptions[:i], n.receptions[i+1:]...)
			break
		}
	}
	if n.down {
		return
	}
	if rx.corrupt {
		return
	}
	if n.sim.cfg.LossProb > 0 && n.sim.rng.Float64() < n.sim.cfg.LossProb {
		n.counters.Losses++
		return
	}

	f := rx.frame
	switch f.Kind {
	case FrameAck:
		if f.Dst == n.ID {
			n.handleAck(f)
		}
	case FrameUnicast:
		if f.Dst != n.ID {
			return // promiscuous overhearing costs energy but is ignored
		}
		n.sendAck(f)
		if !n.dedupAccept(f) {
			return // retransmission of a frame we already delivered
		}
		n.counters.FramesReceived++
		n.app.Receive(n, f)
	case FrameBroadcast:
		n.counters.FramesReceived++
		n.app.Receive(n, f)
	}
}

// dedupAccept tracks the last delivered unicast sequence per source so a
// retransmission whose ack was lost is not delivered twice.
func (n *Node) dedupAccept(f *Frame) bool {
	if last, ok := n.dedup[f.Src]; ok && last == f.Seq {
		return false
	}
	n.dedup[f.Src] = f.Seq
	return true
}

// sendAck replies with a link-layer ack one SIFS after the data frame
// ends. Acks bypass both the transmit queue and carrier sensing (the
// 802.15.4 turnaround): the medium was just held by the data frame, so
// the sender is silent and waiting.
func (n *Node) sendAck(data *Frame) {
	ack := &Frame{Kind: FrameAck, Src: n.ID, Dst: data.Src, Seq: data.Seq}
	n.sim.After(macSIFS, func() {
		if n.down || n.transmitting {
			return // the data sender's retry recovers this rare race
		}
		n.transmit(outFrame{frame: ack})
	})
}

func (n *Node) armAckTimer(of outFrame) {
	n.awaitingAck = &of
	n.ackDeadline++
	gen := n.ackDeadline
	n.sim.After(macAckTimeout+n.backoff(), func() {
		if n.down || n.awaitingAck == nil || n.ackDeadline != gen {
			return
		}
		// Timed out.
		pending := *n.awaitingAck
		n.awaitingAck = nil
		if pending.attempts+1 >= macMaxRetries {
			n.counters.UnicastFails++
			if pending.onResult != nil {
				pending.onResult(UnicastResult{OK: false, Attempts: pending.attempts + 1})
			}
			n.kick()
			return
		}
		pending.attempts++
		n.counters.MACRetries++
		n.queue = append([]outFrame{pending}, n.queue...)
		// Back off increasingly before retrying so persistent
		// contention does not snowball.
		n.sim.After(Clock(pending.attempts)*n.backoff(), n.kick)
	})
}

func (n *Node) handleAck(ack *Frame) {
	pending := n.awaitingAck
	if pending == nil || pending.frame.Seq != ack.Seq || pending.frame.Dst != ack.Src {
		return
	}
	n.awaitingAck = nil
	n.ackDeadline++
	n.counters.FramesDelivered++
	if pending.onResult != nil {
		pending.onResult(UnicastResult{OK: true, Attempts: pending.attempts + 1})
	}
	n.kick()
}
