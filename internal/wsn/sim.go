// Package wsn is a discrete-event wireless sensor network simulator, the
// stand-in for the SENSE simulator the paper evaluates on. It models:
//
//   - a broadcast radio medium with free-space disc propagation,
//     promiscuous listening, half-duplex radios, CSMA carrier sensing,
//     collisions (including hidden-terminal collisions) and per-link
//     random loss;
//   - the Crossbow-mote energy model the paper configures (0.0159 W
//     transmit, 0.021 W receive, 3 µW idle at 3 V, 38.4 kbit/s);
//   - a link-layer MAC with a transmit queue, broadcast frames, and
//     acknowledged unicast frames with bounded retransmission;
//   - AODV routing (RREQ flood, RREP reverse path, RERR, sequence
//     numbers) plus end-to-end acknowledgment, used by the centralized
//     baseline; and
//   - a network-wide flood primitive for sink-to-all dissemination.
//
// The simulator is fully deterministic for a given seed: events are
// heap-ordered by (time, sequence number) and all randomness flows from
// one seeded PCG.
package wsn

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"innet/internal/core"
)

// Clock is simulated time since the start of the run.
type Clock = time.Duration

// event is one scheduled callback.
type event struct {
	at  Clock
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, insertion sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }
func (h *eventHeap) pop() event   { return heap.Pop(h).(event) }
func (h *eventHeap) push(e event) { heap.Push(h, e) }
func (h eventHeap) empty() bool   { return len(h) == 0 }

// Config parameterizes a simulation run.
type Config struct {
	// Seed drives all randomness in the run.
	Seed uint64

	// Radio is the radio and energy model; zero fields take the
	// Crossbow defaults (DefaultRadio).
	Radio RadioConfig

	// LossProb is the probability that an otherwise successful frame
	// reception is dropped (fading, CRC failure). Collisions are
	// modeled separately and come on top.
	LossProb float64
}

// RadioConfig captures the PHY parameters the paper configures for the
// Crossbow motes.
type RadioConfig struct {
	// TxPower, RxPower, IdlePower are drawn in watts (paper §7.1:
	// 0.0159 / 0.021 / 3e-6 at 3 V).
	TxPower   float64
	RxPower   float64
	IdlePower float64
	// BitRate is the radio bit rate in bits per second. The default is
	// the MicaZ's 250 kbit/s 802.15.4 radio (the Crossbow mote family
	// the paper's power constants describe also includes the 38.4
	// kbit/s Mica2; at that rate the paper's own w=10 traffic volume
	// would exceed the channel capacity of a sampling round).
	BitRate float64
	// Range is the transmission radius in meters (paper: ≈6.77 m
	// on-ground effective range).
	Range float64
	// SenseRange is the carrier-sense and interference radius: real
	// receivers detect energy (and suffer interference) well beyond
	// the distance at which they can decode. Defaults to 2×Range,
	// which is what suppresses hidden-terminal collisions between
	// two-hop neighbors.
	SenseRange float64
	// FrameOverhead is the PHY+MAC framing cost in bytes added to
	// every payload (preamble, sync, header, CRC).
	FrameOverhead int
}

// DefaultRadio returns the paper's Crossbow mote configuration.
func DefaultRadio() RadioConfig {
	return RadioConfig{
		TxPower:       0.0159,
		RxPower:       0.021,
		IdlePower:     3e-6,
		BitRate:       250_000,
		Range:         6.77,
		FrameOverhead: 18,
	}
}

func (rc *RadioConfig) applyDefaults() {
	def := DefaultRadio()
	if rc.TxPower == 0 {
		rc.TxPower = def.TxPower
	}
	if rc.RxPower == 0 {
		rc.RxPower = def.RxPower
	}
	if rc.IdlePower == 0 {
		rc.IdlePower = def.IdlePower
	}
	if rc.BitRate == 0 {
		rc.BitRate = def.BitRate
	}
	if rc.Range == 0 {
		rc.Range = def.Range
	}
	if rc.SenseRange == 0 {
		rc.SenseRange = 2 * rc.Range
	}
	if rc.FrameOverhead == 0 {
		rc.FrameOverhead = def.FrameOverhead
	}
}

// airtime returns how long a frame with the given payload size occupies
// the medium.
func (rc RadioConfig) airtime(payloadBytes int) Clock {
	bits := float64(payloadBytes+rc.FrameOverhead) * 8
	return Clock(bits / rc.BitRate * float64(time.Second))
}

// Sim is a deterministic discrete-event simulation of one sensor network.
type Sim struct {
	cfg   Config
	now   Clock
	seq   uint64
	queue eventHeap
	rng   *rand.Rand

	nodes  map[core.NodeID]*Node
	order  []core.NodeID // insertion order, for deterministic iteration
	events int
}

// NewSim builds an empty simulation.
func NewSim(cfg Config) *Sim {
	cfg.Radio.applyDefaults()
	return &Sim{
		cfg:   cfg,
		rng:   rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xda3e39cb94b95bdb)),
		nodes: make(map[core.NodeID]*Node),
	}
}

// Now returns the current simulated time.
func (s *Sim) Now() Clock { return s.now }

// Rand returns the simulation's deterministic randomness source.
// Callbacks must draw randomness only from here.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Events returns the number of events executed so far.
func (s *Sim) Events() int { return s.events }

// At schedules fn at the absolute simulated time t (clamped to now).
func (s *Sim) At(t Clock, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.queue.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current time.
func (s *Sim) After(d Clock, fn func()) { s.At(s.now+d, fn) }

// Run executes events until the queue empties or simulated time reaches
// until; events scheduled at exactly until still run.
func (s *Sim) Run(until Clock) {
	for !s.queue.empty() && s.queue.peek().at <= until {
		e := s.queue.pop()
		s.now = e.at
		s.events++
		e.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// RunUntilIdle executes all pending events regardless of time, up to the
// given safety cap, and reports whether the queue drained.
func (s *Sim) RunUntilIdle(maxEvents int) bool {
	for i := 0; i < maxEvents; i++ {
		if s.queue.empty() {
			return true
		}
		e := s.queue.pop()
		s.now = e.at
		s.events++
		e.fn()
	}
	return s.queue.empty()
}

// AddNode places a sensor at pos running the given application. Node IDs
// must be unique.
func (s *Sim) AddNode(id core.NodeID, pos Point2, app App) *Node {
	if _, dup := s.nodes[id]; dup {
		panic(fmt.Sprintf("wsn: duplicate node %d", id))
	}
	n := newNode(s, id, pos, app)
	s.nodes[id] = n
	s.order = append(s.order, id)
	return n
}

// Node returns the node with the given ID, or nil.
func (s *Sim) Node(id core.NodeID) *Node { return s.nodes[id] }

// Nodes returns all nodes in insertion order.
func (s *Sim) Nodes() []*Node {
	out := make([]*Node, len(s.order))
	for i, id := range s.order {
		out[i] = s.nodes[id]
	}
	return out
}

// Start invokes every application's Start callback at time zero with a
// small random stagger, as deployed motes boot asynchronously.
func (s *Sim) Start() {
	for _, id := range s.order {
		n := s.nodes[id]
		s.At(Clock(s.rng.Int64N(int64(50*time.Millisecond))), func() { n.app.Start(n) })
	}
}

// neighborsOf returns the alive nodes within decoding range of n, in
// insertion order.
func (s *Sim) neighborsOf(n *Node) []*Node {
	var out []*Node
	for _, id := range s.order {
		other := s.nodes[id]
		if other == n || other.down {
			continue
		}
		if n.Pos.Dist(other.Pos) <= s.cfg.Radio.Range {
			out = append(out, other)
		}
	}
	return out
}

// sensersOf returns the alive nodes within carrier-sense (interference)
// range but beyond decoding range of n.
func (s *Sim) sensersOf(n *Node) []*Node {
	var out []*Node
	for _, id := range s.order {
		other := s.nodes[id]
		if other == n || other.down {
			continue
		}
		d := n.Pos.Dist(other.Pos)
		if d > s.cfg.Radio.Range && d <= s.cfg.Radio.SenseRange {
			out = append(out, other)
		}
	}
	return out
}

// Point2 is a position on the simulated terrain, in meters.
type Point2 struct {
	X, Y float64
}

// Dist returns the Euclidean distance to q.
func (p Point2) Dist(q Point2) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}
