// Package locate implements time-difference-of-arrival (TDOA) acoustic
// source localization, the paper's §2 motivating application: a set of
// synchronized sensors register the arrival time of a sound; pairwise
// arrival-time differences constrain the source to hyperbolas whose
// intersection pinpoints it. Faulty sensors (clock skew, power
// degradation, echoes) produce arrival times whose hyperbolas miss the
// true intersection — exactly the data the in-network outlier detection
// prunes before this (expensive) solver runs.
package locate

import (
	"errors"
	"fmt"
	"math"
)

// SpeedOfSound is the propagation speed used by the examples, in m/s.
const SpeedOfSound = 343.0

// Observation is one sensor's registration of the acoustic event.
type Observation struct {
	X, Y    float64 // sensor position, meters
	Arrival float64 // arrival time, seconds
}

// Result is a localization fix.
type Result struct {
	X, Y float64
	// EmitTime is the estimated emission time of the event.
	EmitTime float64
	// Residual is the root-mean-square arrival-time residual in
	// seconds; large residuals mean inconsistent observations.
	Residual float64
	// Iterations is how many Gauss-Newton steps were taken.
	Iterations int
}

// Multilaterate solves for the source position (and emission time) that
// best explains the observations, by Gauss-Newton least squares on the
// arrival-time model  t_i = t0 + dist(source, sensor_i)/c.
// At least three observations are required for a 2-D fix.
func Multilaterate(obs []Observation, c float64) (Result, error) {
	if len(obs) < 3 {
		return Result{}, fmt.Errorf("locate: need at least 3 observations, got %d", len(obs))
	}
	if c <= 0 {
		return Result{}, errors.New("locate: propagation speed must be positive")
	}

	// Initial guess: centroid of the sensors, emission at the earliest
	// arrival minus a nominal propagation delay.
	var x, y, tMin float64
	tMin = math.Inf(1)
	for _, o := range obs {
		x += o.X
		y += o.Y
		if o.Arrival < tMin {
			tMin = o.Arrival
		}
	}
	x /= float64(len(obs))
	y /= float64(len(obs))
	t0 := tMin - 0.01

	const (
		maxIter = 100
		tol     = 1e-12
	)
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		// Residuals and Jacobian of r_i = t0 + d_i/c - t_i over
		// parameters (x, y, t0).
		var jtj [3][3]float64
		var jtr [3]float64
		for _, o := range obs {
			dx := x - o.X
			dy := y - o.Y
			d := math.Hypot(dx, dy)
			if d < 1e-9 {
				d = 1e-9
			}
			r := t0 + d/c - o.Arrival
			j := [3]float64{dx / (d * c), dy / (d * c), 1}
			for a := 0; a < 3; a++ {
				for b := 0; b < 3; b++ {
					jtj[a][b] += j[a] * j[b]
				}
				jtr[a] += j[a] * r
			}
		}
		// Levenberg damping keeps the step sane when the geometry is
		// poor (nearly collinear sensors).
		for a := 0; a < 3; a++ {
			jtj[a][a] *= 1 + 1e-9
		}
		step, ok := solve3(jtj, jtr)
		if !ok {
			return Result{}, errors.New("locate: degenerate sensor geometry")
		}
		x -= step[0]
		y -= step[1]
		t0 -= step[2]
		if step[0]*step[0]+step[1]*step[1]+step[2]*step[2] < tol {
			break
		}
	}

	var sum float64
	for _, o := range obs {
		d := math.Hypot(x-o.X, y-o.Y)
		r := t0 + d/c - o.Arrival
		sum += r * r
	}
	return Result{
		X:          x,
		Y:          y,
		EmitTime:   t0,
		Residual:   math.Sqrt(sum / float64(len(obs))),
		Iterations: iter + 1,
	}, nil
}

// solve3 solves the 3×3 system A·x = b by Gaussian elimination with
// partial pivoting.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, bool) {
	m := [3][4]float64{}
	for i := 0; i < 3; i++ {
		copy(m[i][:3], a[i][:])
		m[i][3] = b[i]
	}
	for col := 0; col < 3; col++ {
		pivot := col
		for row := col + 1; row < 3; row++ {
			if math.Abs(m[row][col]) > math.Abs(m[pivot][col]) {
				pivot = row
			}
		}
		m[col], m[pivot] = m[pivot], m[col]
		if math.Abs(m[col][col]) < 1e-18 {
			return [3]float64{}, false
		}
		for row := 0; row < 3; row++ {
			if row == col {
				continue
			}
			f := m[row][col] / m[col][col]
			for k := col; k < 4; k++ {
				m[row][k] -= f * m[col][k]
			}
		}
	}
	var x [3]float64
	for i := 0; i < 3; i++ {
		x[i] = m[i][3] / m[i][i]
	}
	return x, true
}

// ArrivalTime returns the ideal arrival time at a sensor for a source at
// (sx, sy) emitting at t0.
func ArrivalTime(sx, sy, t0, sensorX, sensorY, c float64) float64 {
	return t0 + math.Hypot(sx-sensorX, sy-sensorY)/c
}

// PositionError returns the distance between the fix and the true source.
func (r Result) PositionError(trueX, trueY float64) float64 {
	return math.Hypot(r.X-trueX, r.Y-trueY)
}
