package locate

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// ring places n sensors on a circle of the given radius.
func ring(n int, radius float64) [][2]float64 {
	out := make([][2]float64, n)
	for i := range out {
		a := 2 * math.Pi * float64(i) / float64(n)
		out[i] = [2]float64{radius * math.Cos(a), radius * math.Sin(a)}
	}
	return out
}

func observationsFor(sensors [][2]float64, sx, sy, t0 float64) []Observation {
	obs := make([]Observation, len(sensors))
	for i, s := range sensors {
		obs[i] = Observation{
			X: s[0], Y: s[1],
			Arrival: ArrivalTime(sx, sy, t0, s[0], s[1], SpeedOfSound),
		}
	}
	return obs
}

func TestMultilaterateExact(t *testing.T) {
	sensors := ring(6, 30)
	obs := observationsFor(sensors, 4, -7, 0.5)
	res, err := Multilaterate(obs, SpeedOfSound)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.PositionError(4, -7); e > 1e-5 {
		t.Fatalf("position error %v m on clean data", e)
	}
	if math.Abs(res.EmitTime-0.5) > 1e-6 {
		t.Fatalf("emit time %v, want 0.5", res.EmitTime)
	}
	if res.Residual > 1e-9 {
		t.Fatalf("residual %v on exact data", res.Residual)
	}
}

func TestMultilaterateNoisy(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	sensors := ring(8, 25)
	obs := observationsFor(sensors, -3, 9, 0.1)
	for i := range obs {
		obs[i].Arrival += rng.NormFloat64() * 1e-4 // 0.1 ms timing noise
	}
	res, err := Multilaterate(obs, SpeedOfSound)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.PositionError(-3, 9); e > 0.5 {
		t.Fatalf("position error %v m with mild noise", e)
	}
}

func TestMultilaterateCorruptedSensorRuinsFix(t *testing.T) {
	sensors := ring(6, 25)
	obs := observationsFor(sensors, 0, 0, 0)
	clean, err := Multilaterate(obs, SpeedOfSound)
	if err != nil {
		t.Fatal(err)
	}
	// One sensor with 50 ms of clock skew (17 m of range error).
	obs[2].Arrival += 0.05
	dirty, err := Multilaterate(obs, SpeedOfSound)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.PositionError(0, 0) < 4*clean.PositionError(0, 0)+1 {
		t.Fatalf("corruption should ruin the fix: clean %v m, dirty %v m",
			clean.PositionError(0, 0), dirty.PositionError(0, 0))
	}
	if dirty.Residual < 100*clean.Residual {
		t.Fatalf("residual must expose the corruption: %v vs %v",
			dirty.Residual, clean.Residual)
	}
}

func TestMultilaterateValidation(t *testing.T) {
	if _, err := Multilaterate(nil, SpeedOfSound); err == nil {
		t.Fatal("too few observations must fail")
	}
	obs := observationsFor(ring(3, 10), 1, 1, 0)
	if _, err := Multilaterate(obs, 0); err == nil {
		t.Fatal("non-positive speed must fail")
	}
}

func TestMultilaterateDegenerateGeometry(t *testing.T) {
	// Perfectly collinear sensors cannot resolve the side of the line;
	// the solver must either converge to a mirror fix or report
	// degeneracy, never NaN.
	obs := []Observation{
		{X: 0, Y: 0, Arrival: ArrivalTime(5, 7, 0, 0, 0, SpeedOfSound)},
		{X: 10, Y: 0, Arrival: ArrivalTime(5, 7, 0, 10, 0, SpeedOfSound)},
		{X: 20, Y: 0, Arrival: ArrivalTime(5, 7, 0, 20, 0, SpeedOfSound)},
	}
	res, err := Multilaterate(obs, SpeedOfSound)
	if err != nil {
		return // acceptable: reported degeneracy
	}
	if math.IsNaN(res.X) || math.IsNaN(res.Y) {
		t.Fatal("NaN fix on degenerate geometry")
	}
	// Mirror solutions (5, ±7) both explain collinear data.
	if math.Abs(res.X-5) > 0.5 || math.Abs(math.Abs(res.Y)-7) > 0.5 {
		t.Fatalf("fix (%v, %v) explains nothing", res.X, res.Y)
	}
}

// Property: the solver recovers random interior sources from clean data.
func TestMultilaterateRecoversRandomSources(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed))
		sensors := ring(5+rng.IntN(5), 20+rng.Float64()*20)
		sx := (rng.Float64() - 0.5) * 20
		sy := (rng.Float64() - 0.5) * 20
		t0 := rng.Float64()
		res, err := Multilaterate(observationsFor(sensors, sx, sy, t0), SpeedOfSound)
		if err != nil {
			return false
		}
		return res.PositionError(sx, sy) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSolve3(t *testing.T) {
	// A known system: x=1, y=2, z=3.
	a := [3][3]float64{{2, 1, 1}, {1, 3, 2}, {1, 0, 0}}
	b := [3]float64{7, 13, 1}
	x, ok := solve3(a, b)
	if !ok {
		t.Fatal("solvable system reported singular")
	}
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(x[i]-want) > 1e-12 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want)
		}
	}
	// Singular matrix.
	if _, ok := solve3([3][3]float64{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}}, b); ok {
		t.Fatal("singular system must be reported")
	}
}
