package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"innet/internal/core"
)

// The differential property the package doc pins: for any operation
// sequence, Mem (the reference) and File load identical State — at every
// checkpoint, and again after File is closed and reopened (Mem, being
// the same process, stands in for the never-restarted reference).
func TestDifferentialStoreOps(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			mem := NewMem()
			file := openFile(t, dir, rng.Intn(2) == 0)
			defer func() { file.Close() }()

			both := func(op func(s Store) error) {
				t.Helper()
				if err := op(mem); err != nil {
					t.Fatalf("mem op: %v", err)
				}
				if err := op(file); err != nil {
					t.Fatalf("file op: %v", err)
				}
			}
			check := func(step int) {
				t.Helper()
				ms, fs := mustLoad(t, mem), mustLoad(t, file)
				if !reflect.DeepEqual(ms, fs) {
					t.Fatalf("step %d: states diverge\nmem:  %+v\nfile: %+v", step, ms, fs)
				}
			}

			nextSeq := map[core.NodeID]uint32{}
			randRecs := func() []Record {
				n := 1 + rng.Intn(5)
				out := make([]Record, n)
				for i := range out {
					sensor := core.NodeID(1 + rng.Intn(4))
					out[i] = Record{
						Sensor: sensor,
						Seq:    nextSeq[sensor],
						Birth:  time.Duration(rng.Intn(100_000)) * time.Millisecond,
						Values: []float64{rng.NormFloat64(), rng.NormFloat64()},
					}
					nextSeq[sensor]++
				}
				return out
			}

			for step := 0; step < 60; step++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4: // append readings, the hot path
					recs := randRecs()
					both(func(s Store) error { return s.AppendReadings(recs) })
				case 5, 6: // identity updates
					ids := []Identity{{
						Sensor:  core.NodeID(1 + rng.Intn(4)),
						NextSeq: uint32(rng.Intn(200)),
						Latest:  time.Duration(rng.Intn(100_000)) * time.Millisecond,
					}}
					both(func(s Store) error { return s.PutIdentities(ids) })
				case 7: // compact down to the current state (as the service does)
					st := mustLoad(t, mem)
					both(func(s Store) error { return s.Compact(st.Records, st.Identities) })
				case 8: // close/reopen the file store mid-sequence
					if err := file.Close(); err != nil {
						t.Fatalf("step %d: close: %v", step, err)
					}
					file = openFile(t, dir, rng.Intn(2) == 0)
				case 9:
					both(func(s Store) error { return s.Sync() })
				}
				if step%7 == 0 {
					check(step)
				}
			}
			check(60)

			// Final close/reopen: the state must survive verbatim.
			if err := file.Close(); err != nil {
				t.Fatalf("final close: %v", err)
			}
			file = openFile(t, dir, false)
			check(61)
		})
	}
}
