// Package store is the durability layer under the streaming system: it
// persists the two kinds of state a restart used to lose — the readings
// that make up each shard's sliding windows, and the coordinator's
// per-sensor identity counters (next sequence number, newest timestamp) —
// so daemons restart warm instead of empty.
//
// The package deliberately exposes one narrow interface, Store, with two
// implementations held to the same contract:
//
//   - Mem, the factored-out form of the pre-durability behavior: state
//     lives in process memory and Load returns exactly what was appended.
//     It exists so the persistent implementation can be differentially
//     tested against it — every operation sequence must leave both stores
//     loading identical State.
//   - File, a stdlib-only append-only write-ahead log plus a periodically
//     rewritten snapshot file. Appends go to the WAL (CRC-framed records,
//     optionally fsynced); Compact atomically rewrites the snapshot from
//     the live state and truncates the WAL. Replay = snapshot + WAL, with
//     the WAL's torn tail (a crash mid-append) truncated to the longest
//     valid prefix.
//
// The invariant the differential and crash-recovery tests pin is
// replay ≡ in-memory: a process that appends, crashes at any byte
// boundary, and reloads must see exactly the records that were durably
// framed at the crash point, in append order, and nothing else. Readings
// carry full point identity (sensor, seq, birth, values), so re-delivery
// after an unclean compaction is idempotent — the detector dedups by
// PointID — which is what lets the snapshot rotation stay simple (rename
// then truncate, no atomic multi-file commit needed).
package store

import (
	"slices"
	"sync"
	"time"

	"innet/internal/core"
)

// Record is one durable shard-side reading with its full point identity:
// what the ingest layer fed into a detector, in detector order. Replaying
// records through the same front door reproduces the same windows.
type Record struct {
	Sensor core.NodeID
	Seq    uint32
	Birth  time.Duration
	Values []float64
}

// Point converts the record back to the core point it persisted.
func (r Record) Point() core.Point {
	return core.NewPoint(r.Sensor, r.Seq, r.Birth, r.Values...)
}

// RecordOf converts a minted point to its durable form.
func RecordOf(p core.Point) Record {
	return Record{Sensor: p.ID.Origin, Seq: p.ID.Seq, Birth: p.Birth, Values: p.Value}
}

// Identity is one sensor's identity-assignment state: the next sequence
// number to mint and the newest data timestamp seen (the staleness-gate
// clock). The coordinator persists these so a restart continues the
// identity stream instead of re-minting in-window PointIDs; shards
// persist them at compaction so a warm restart restores sequence floors
// even for sensors whose high-seq points already aged out of the window.
type Identity struct {
	Sensor  core.NodeID
	NextSeq uint32
	Latest  time.Duration
}

// State is everything a replay recovers: window records in append order
// (per-sensor order is what seq reproduction rides on) and the merged
// identity floors.
type State struct {
	Records    []Record
	Identities []Identity // sorted by sensor
}

// Metrics counts the store's durability work for /metrics.
type Metrics struct {
	WALBytes    uint64 // bytes appended to the WAL
	WALRecords  uint64 // records appended to the WAL
	Fsyncs      uint64 // fsync calls issued
	Compacts    uint64 // snapshot rewrites
	Truncated   uint64 // torn-tail bytes discarded at open
	SnapCorrupt uint64 // snapshot files discarded as corrupt at Load
}

// Store persists shard window records and identity state. All methods
// are safe for concurrent use. Implementations must guarantee that after
// Compact the WAL is empty and Load reproduces exactly the compacted
// state; between compactions Load reproduces snapshot + appended suffix.
type Store interface {
	// AppendReadings appends window records to the log.
	AppendReadings(recs []Record) error
	// PutIdentities appends identity-floor updates to the log. Per
	// sensor, Load keeps the component-wise maximum across all updates.
	PutIdentities(ids []Identity) error
	// Compact atomically replaces the persisted state with exactly the
	// given records and identities and discards the log — the periodic
	// snapshot that bounds replay work and drops aged-out records.
	Compact(recs []Record, ids []Identity) error
	// Load returns the full recovered state.
	Load() (State, error)
	// Sync forces buffered appends to durable storage.
	Sync() error
	// Metrics snapshots the durability counters.
	Metrics() Metrics
	// Close syncs and releases the store.
	Close() error
}

// mergeIdentity folds one identity update into the per-sensor maxima.
func mergeIdentity(into map[core.NodeID]Identity, id Identity) {
	cur := into[id.Sensor]
	cur.Sensor = id.Sensor
	if id.NextSeq > cur.NextSeq {
		cur.NextSeq = id.NextSeq
	}
	if id.Latest > cur.Latest {
		cur.Latest = id.Latest
	}
	into[id.Sensor] = cur
}

// finishState normalizes a replayed state: duplicate records (the same
// PointID re-appended by a warm replay that crashed before compacting)
// collapse to their first occurrence, and identity floors are raised to
// cover every record, then sorted. Both implementations funnel through
// this so their Load results are comparable byte for byte.
func finishState(recs []Record, ids map[core.NodeID]Identity) State {
	type key struct {
		sensor core.NodeID
		seq    uint32
	}
	seen := make(map[key]bool, len(recs))
	out := make([]Record, 0, len(recs))
	for _, r := range recs {
		k := key{r.Sensor, r.Seq}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
		mergeIdentity(ids, Identity{Sensor: r.Sensor, NextSeq: r.Seq + 1, Latest: r.Birth})
	}
	st := State{Records: out, Identities: make([]Identity, 0, len(ids))}
	for _, id := range ids {
		st.Identities = append(st.Identities, id)
	}
	slices.SortFunc(st.Identities, func(a, b Identity) int {
		return int(a.Sensor) - int(b.Sensor)
	})
	return st
}

// Mem is the in-memory Store: the pre-durability behavior factored
// behind the interface. Nothing survives the process; Load returns what
// this instance was handed. It is the differential-testing reference and
// the ephemeral default.
type Mem struct {
	mu      sync.Mutex
	records []Record
	ids     map[core.NodeID]Identity
	metrics Metrics
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{ids: make(map[core.NodeID]Identity)}
}

// AppendReadings implements Store.
func (m *Mem) AppendReadings(recs []Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range recs {
		m.records = append(m.records, cloneRecord(r))
		m.metrics.WALRecords++
		m.metrics.WALBytes += uint64(walRecordSize(len(r.Values)))
	}
	return nil
}

// PutIdentities implements Store.
func (m *Mem) PutIdentities(ids []Identity) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, id := range ids {
		mergeIdentity(m.ids, id)
		m.metrics.WALRecords++
		m.metrics.WALBytes += uint64(walIdentitySize)
	}
	return nil
}

// Compact implements Store.
func (m *Mem) Compact(recs []Record, ids []Identity) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.records = make([]Record, 0, len(recs))
	for _, r := range recs {
		m.records = append(m.records, cloneRecord(r))
	}
	m.ids = make(map[core.NodeID]Identity, len(ids))
	for _, id := range ids {
		mergeIdentity(m.ids, id)
	}
	m.metrics.Compacts++
	return nil
}

// Load implements Store.
func (m *Mem) Load() (State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	recs := make([]Record, 0, len(m.records))
	for _, r := range m.records {
		recs = append(recs, cloneRecord(r))
	}
	ids := make(map[core.NodeID]Identity, len(m.ids))
	for k, v := range m.ids {
		ids[k] = v
	}
	return finishState(recs, ids), nil
}

// Sync implements Store (a no-op in memory).
func (m *Mem) Sync() error { return nil }

// SetTiming accepts a durability-timing observer for interface symmetry
// with File; memory operations are not worth timing, so it is dropped.
func (m *Mem) SetTiming(func(op string, d time.Duration)) {}

// Metrics implements Store.
func (m *Mem) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.metrics
}

// Close implements Store (a no-op in memory).
func (m *Mem) Close() error { return nil }

func cloneRecord(r Record) Record {
	v := make([]float64, len(r.Values))
	copy(v, r.Values)
	r.Values = v
	return r
}
