package store_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"innet/internal/baseline"
	"innet/internal/core"
	"innet/internal/ingest"
	"innet/internal/store"
)

// newService builds an ingest fleet over the given store (tight
// CompactEvery so the trace exercises background compaction too).
func newService(t *testing.T, st store.Store) *ingest.Service {
	t.Helper()
	svc, err := ingest.New(ingest.Config{
		Detector: core.Config{
			Ranker: core.KNN{K: 2},
			N:      2,
			Window: 10 * time.Minute,
		},
		AutoJoin:     true,
		CompactEvery: 64,
		Store:        st,
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// pointKey sorts and compares snapshots by full identity + payload.
func pointKey(p core.Point) string {
	return fmt.Sprintf("%d#%d@%d%v", p.ID.Origin, p.ID.Seq, p.Birth, p.Value)
}

func snapshotKeys(t *testing.T, svc *ingest.Service, ctx context.Context) []string {
	t.Helper()
	pts, err := svc.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = pointKey(p)
	}
	sort.Strings(out)
	return out
}

// checkpointEqual asserts both fleets hold identical windows (contents,
// seqs, births, values) and serve the same baseline answer over them.
func checkpointEqual(t *testing.T, ctx context.Context, ref, dut *ingest.Service, label string) {
	t.Helper()
	for _, s := range []*ingest.Service{ref, dut} {
		if err := s.Flush(ctx); err != nil {
			t.Fatalf("%s: flush: %v", label, err)
		}
	}
	rk, dk := snapshotKeys(t, ref, ctx), snapshotKeys(t, dut, ctx)
	if len(rk) != len(dk) {
		t.Fatalf("%s: window sizes diverge: ref %d, dut %d", label, len(rk), len(dk))
	}
	for i := range rk {
		if rk[i] != dk[i] {
			t.Fatalf("%s: window diverges at %d: ref %s, dut %s", label, i, rk[i], dk[i])
		}
	}
	refPts, _ := ref.Snapshot(ctx)
	dutPts, _ := dut.Snapshot(ctx)
	ranker := core.KNN{K: 2}
	refAns := baseline.Compute(ranker, 2, refPts)
	dutAns := baseline.Compute(ranker, 2, dutPts)
	if len(refAns) != len(dutAns) {
		t.Fatalf("%s: answers diverge: ref %v, dut %v", label, refAns, dutAns)
	}
	for i := range refAns {
		if refAns[i].ID != dutAns[i].ID {
			t.Fatalf("%s: answer %d diverges: ref %v, dut %v", label, i, refAns[i].ID, dutAns[i].ID)
		}
	}
}

// The service-level differential property: the same random trace fed
// through an in-memory-backed fleet and a WAL-backed fleet leaves
// identical window contents, sequence numbers and baseline answers at
// every checkpoint — and the WAL-backed fleet still agrees after being
// torn down and warm-restarted from disk, twice, with the trace
// continuing across the restarts (so post-restart identity minting is
// exercised, not just replay).
func TestDifferentialServiceTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-restart trace")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rng := rand.New(rand.NewSource(11))
	dir := t.TempDir()

	ref := newService(t, store.NewMem()) // never restarted: the reference
	defer ref.Close()
	fileStore, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	dut := newService(t, fileStore)

	at := time.Duration(0)
	feed := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			at += time.Duration(rng.Intn(400)) * time.Millisecond
			r := ingest.Reading{
				Sensor: core.NodeID(1 + rng.Intn(5)),
				At:     at,
				Values: []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3},
			}
			if err := ref.Ingest(r); err != nil {
				t.Fatalf("ref ingest: %v", err)
			}
			if err := dut.Ingest(r); err != nil {
				t.Fatalf("dut ingest: %v", err)
			}
		}
	}

	feed(120)
	checkpointEqual(t, ctx, ref, dut, "pre-restart")

	for round := 0; round < 2; round++ {
		// Tear the WAL-backed fleet down (no graceful compact on the
		// first round: restart replays the raw log).
		if round == 1 {
			if err := dut.CompactStore(ctx); err != nil {
				t.Fatal(err)
			}
		}
		if err := dut.Close(); err != nil {
			t.Fatal(err)
		}
		if err := fileStore.Close(); err != nil {
			t.Fatal(err)
		}
		if fileStore, err = store.Open(store.Config{Dir: dir}); err != nil {
			t.Fatal(err)
		}
		dut = newService(t, fileStore)
		restored, err := dut.Warm(ctx)
		if err != nil {
			t.Fatalf("round %d: warm: %v", round, err)
		}
		if restored == 0 {
			t.Fatalf("round %d: warm restored nothing", round)
		}
		checkpointEqual(t, ctx, ref, dut, fmt.Sprintf("post-restart-%d", round))

		// Keep the trace going: the restarted fleet must mint the same
		// identities the never-restarted one does.
		feed(80)
		checkpointEqual(t, ctx, ref, dut, fmt.Sprintf("post-restart-%d-continued", round))
	}

	dut.Close()
	fileStore.Close()
}
