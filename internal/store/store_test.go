package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"innet/internal/core"
)

func rec(sensor uint16, seq uint32, birthMS int64, values ...float64) Record {
	return Record{
		Sensor: core.NodeID(sensor),
		Seq:    seq,
		Birth:  time.Duration(birthMS) * time.Millisecond,
		Values: values,
	}
}

func mustLoad(t *testing.T, s Store) State {
	t.Helper()
	st, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return st
}

func openFile(t *testing.T, dir string, fsync bool) *File {
	t.Helper()
	f, err := Open(Config{Dir: dir, Fsync: fsync})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return f
}

// Both implementations: append → Load returns the records in append
// order with identity floors raised to cover them.
func TestRoundtrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(t *testing.T) Store
	}{
		{"mem", func(t *testing.T) Store { return NewMem() }},
		{"file", func(t *testing.T) Store { return openFile(t, t.TempDir(), false) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mk(t)
			defer s.Close()
			recs := []Record{
				rec(1, 0, 1000, 1.5),
				rec(2, 0, 2000, -3, 4),
				rec(1, 1, 3000, 2.5),
			}
			if err := s.AppendReadings(recs); err != nil {
				t.Fatalf("AppendReadings: %v", err)
			}
			if err := s.PutIdentities([]Identity{{Sensor: 7, NextSeq: 42, Latest: time.Minute}}); err != nil {
				t.Fatalf("PutIdentities: %v", err)
			}
			st := mustLoad(t, s)
			if !reflect.DeepEqual(st.Records, recs) {
				t.Errorf("Records = %+v, want %+v", st.Records, recs)
			}
			want := []Identity{
				{Sensor: 1, NextSeq: 2, Latest: 3000 * time.Millisecond},
				{Sensor: 2, NextSeq: 1, Latest: 2000 * time.Millisecond},
				{Sensor: 7, NextSeq: 42, Latest: time.Minute},
			}
			if !reflect.DeepEqual(st.Identities, want) {
				t.Errorf("Identities = %+v, want %+v", st.Identities, want)
			}
		})
	}
}

// Identity floors never regress: later lower updates are absorbed into
// the component-wise maximum.
func TestIdentityFloorsMonotonic(t *testing.T) {
	s := NewMem()
	s.PutIdentities([]Identity{{Sensor: 1, NextSeq: 10, Latest: 10 * time.Second}})
	s.PutIdentities([]Identity{{Sensor: 1, NextSeq: 3, Latest: 20 * time.Second}})
	st := mustLoad(t, s)
	want := []Identity{{Sensor: 1, NextSeq: 10, Latest: 20 * time.Second}}
	if !reflect.DeepEqual(st.Identities, want) {
		t.Errorf("Identities = %+v, want %+v", st.Identities, want)
	}
}

// Duplicate (sensor, seq) records — a warm replay that crashed before
// compacting — collapse to their first occurrence.
func TestLoadDedupsReplayedRecords(t *testing.T) {
	s := NewMem()
	s.AppendReadings([]Record{rec(1, 0, 1000, 5)})
	s.AppendReadings([]Record{rec(1, 0, 1000, 5), rec(1, 1, 2000, 6)})
	st := mustLoad(t, s)
	want := []Record{rec(1, 0, 1000, 5), rec(1, 1, 2000, 6)}
	if !reflect.DeepEqual(st.Records, want) {
		t.Errorf("Records = %+v, want %+v", st.Records, want)
	}
}

// Close/reopen: the file store recovers exactly what was appended, and
// appends after reopen extend the same log.
func TestFileReopen(t *testing.T) {
	dir := t.TempDir()
	f := openFile(t, dir, false)
	f.AppendReadings([]Record{rec(1, 0, 1000, 1), rec(2, 0, 1500, 2)})
	before := mustLoad(t, f)
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	f = openFile(t, dir, false)
	defer f.Close()
	after := mustLoad(t, f)
	if !reflect.DeepEqual(before, after) {
		t.Errorf("reopened state = %+v, want %+v", after, before)
	}
	f.AppendReadings([]Record{rec(1, 1, 2000, 3)})
	st := mustLoad(t, f)
	if len(st.Records) != 3 {
		t.Errorf("after reopen+append: %d records, want 3", len(st.Records))
	}
}

// Compact replaces the state and empties the WAL; a subsequent reopen
// loads snapshot + nothing.
func TestFileCompact(t *testing.T) {
	dir := t.TempDir()
	f := openFile(t, dir, false)
	f.AppendReadings([]Record{rec(1, 0, 1000, 1), rec(1, 1, 2000, 2), rec(2, 0, 1000, 9)})
	keep := []Record{rec(1, 1, 2000, 2), rec(2, 0, 1000, 9)}
	ids := []Identity{{Sensor: 1, NextSeq: 2, Latest: 2 * time.Second}}
	if err := f.Compact(keep, ids); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Errorf("wal.log size = %v (err %v), want 0", fi.Size(), err)
	}
	st := mustLoad(t, f)
	if !reflect.DeepEqual(st.Records, keep) {
		t.Errorf("Records = %+v, want %+v", st.Records, keep)
	}
	f.Close()

	f = openFile(t, dir, false)
	defer f.Close()
	st = mustLoad(t, f)
	if !reflect.DeepEqual(st.Records, keep) {
		t.Errorf("reopened Records = %+v, want %+v", st.Records, keep)
	}
	// Aged-out sensor 1#0 must still be covered by the identity floor.
	if st.Identities[0].NextSeq != 2 {
		t.Errorf("sensor 1 NextSeq = %d, want 2", st.Identities[0].NextSeq)
	}
}

// Appends after a compact land on top of the snapshot.
func TestFileAppendAfterCompact(t *testing.T) {
	dir := t.TempDir()
	f := openFile(t, dir, false)
	defer f.Close()
	f.AppendReadings([]Record{rec(1, 0, 1000, 1)})
	f.Compact([]Record{rec(1, 0, 1000, 1)}, nil)
	f.AppendReadings([]Record{rec(1, 1, 2000, 2)})
	st := mustLoad(t, f)
	want := []Record{rec(1, 0, 1000, 1), rec(1, 1, 2000, 2)}
	if !reflect.DeepEqual(st.Records, want) {
		t.Errorf("Records = %+v, want %+v", st.Records, want)
	}
}

// The fsync policy is observable: Fsync on syncs every append batch.
func TestFileFsyncMetrics(t *testing.T) {
	f := openFile(t, t.TempDir(), true)
	defer f.Close()
	f.AppendReadings([]Record{rec(1, 0, 1000, 1)})
	f.AppendReadings([]Record{rec(1, 1, 2000, 2)})
	if got := f.Metrics().Fsyncs; got < 2 {
		t.Errorf("Fsyncs = %d, want ≥ 2 with Fsync on", got)
	}

	g := openFile(t, t.TempDir(), false)
	defer g.Close()
	g.AppendReadings([]Record{rec(1, 0, 1000, 1)})
	if got := g.Metrics().Fsyncs; got != 0 {
		t.Errorf("Fsyncs = %d, want 0 with Fsync off", got)
	}
}

// WAL byte/record counters track appends.
func TestMetricsCounters(t *testing.T) {
	f := openFile(t, t.TempDir(), false)
	defer f.Close()
	f.AppendReadings([]Record{rec(1, 0, 1000, 1, 2, 3)})
	f.PutIdentities([]Identity{{Sensor: 1, NextSeq: 1, Latest: time.Second}})
	m := f.Metrics()
	if m.WALRecords != 2 {
		t.Errorf("WALRecords = %d, want 2", m.WALRecords)
	}
	wantBytes := uint64(walRecordSize(3) + walIdentitySize)
	if m.WALBytes != wantBytes {
		t.Errorf("WALBytes = %d, want %d", m.WALBytes, wantBytes)
	}
	fi, err := os.Stat(filepath.Join(f.Dir(), "wal.log"))
	if err != nil || uint64(fi.Size()) != wantBytes {
		t.Errorf("wal.log size = %v (err %v), want %d", fi.Size(), err, wantBytes)
	}
}
