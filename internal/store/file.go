package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"innet/internal/core"
)

// On-disk layout inside the data directory:
//
//	wal.log       append-only CRC-framed record log
//	snapshot.dat  last Compact's full state, rewritten atomically
//
// WAL frame (multi-byte integers big-endian):
//
//	frame    := length:uint32  body  crc:uint32
//	body     := kind:uint8 payload            (length = len(body))
//	reading  := kind=1 sensor:uint16 seq:uint32 birthNs:int64
//	            dim:uint8 value:float64*dim
//	identity := kind=2 sensor:uint16 nextSeq:uint32 latestNs:int64
//
// The CRC (IEEE, over the body) makes a torn or bit-rotten tail
// detectable: replay stops at the first frame whose length is impossible
// or whose CRC disagrees, truncates the file there, and resumes
// appending from that offset — the longest valid prefix wins.
//
// The snapshot file is one frame of kind=3 whose payload is
// recordCount:uint32 reading-payload* identCount:uint32
// identity-payload*, preceded by a 8-byte magic. It is written to a
// temp file, fsynced, and renamed into place, so a crash mid-Compact
// leaves either the old snapshot or the new one, never a torn mix; the
// WAL truncation that follows the rename may be lost to a crash, in
// which case replay re-applies a WAL suffix that duplicates snapshot
// contents — harmless, because records carry their identities and
// finishState dedups.

const (
	walName      = "wal.log"
	snapName     = "snapshot.dat"
	snapTempName = "snapshot.tmp"

	kindReading  = 1
	kindIdentity = 2

	frameOverhead = 4 + 4 // length + crc
	// maxFrameBody rejects absurd lengths fast during replay: the
	// largest legal body is a reading at the wire format's 255-feature
	// cap, far under this.
	maxFrameBody = 1 << 16
)

var snapMagic = [8]byte{'I', 'N', 'S', 'N', 'A', 'P', '0', '1'}

// walRecordSize returns the framed size of a reading with the given
// feature dimension.
func walRecordSize(dim int) int { return frameOverhead + 1 + 2 + 4 + 8 + 1 + 8*dim }

// walIdentitySize is the framed size of an identity update.
const walIdentitySize = frameOverhead + 1 + 2 + 4 + 8

// Config parameterizes a file store.
type Config struct {
	// Dir is the data directory; created if missing. Required.
	Dir string
	// Fsync, when set, fsyncs the WAL after every append batch. Off,
	// appends are flushed to the OS on every call but reach the platters
	// only at Compact/Sync/Close — a crash of the whole machine can then
	// lose the unsynced suffix, a crash of the process alone cannot.
	Fsync bool
}

// File is the persistent Store: an append-only WAL plus a snapshot file.
type File struct {
	cfg Config

	mu      sync.Mutex
	wal     *os.File
	w       *bufio.Writer
	closed  bool
	metrics Metrics
	timing  func(op string, d time.Duration)
}

// SetTiming installs a duration observer for the store's durability
// operations: op is "append" (WAL write+flush), "fsync" (any fsync —
// WAL, snapshot file, or directory), or "compact" (a whole snapshot
// rewrite). The daemons route these into latency histograms; a nil fn
// clears the hook. Not part of the Store interface so wrapper stores in
// tests stay source-compatible.
func (f *File) SetTiming(fn func(op string, d time.Duration)) {
	f.mu.Lock()
	f.timing = fn
	f.mu.Unlock()
}

// observe times one op; every call site holds f.mu, which also guards
// the timing field.
func (f *File) observe(op string, start time.Time) {
	if f.timing != nil {
		f.timing(op, time.Since(start))
	}
}

// Open creates or recovers a file store in cfg.Dir. The WAL's torn tail,
// if any, is truncated immediately so subsequent appends extend the
// longest valid prefix.
func Open(cfg Config) (*File, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f := &File{cfg: cfg}
	path := filepath.Join(cfg.Dir, walName)
	wal, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	valid, _, _, err := scanWAL(wal)
	if err != nil {
		wal.Close()
		return nil, err
	}
	size, err := wal.Seek(0, io.SeekEnd)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if valid < size {
		if err := wal.Truncate(valid); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: truncate torn tail: %w", err)
		}
		f.metrics.Truncated += uint64(size - valid)
		if _, err := wal.Seek(valid, io.SeekStart); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	f.wal = wal
	f.w = bufio.NewWriterSize(wal, 64*1024)
	return f, nil
}

// Dir returns the store's data directory.
func (f *File) Dir() string { return f.cfg.Dir }

func appendFrame(buf []byte, body []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
}

func appendReadingBody(buf []byte, r Record) []byte {
	buf = append(buf, kindReading)
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.Sensor))
	buf = binary.BigEndian.AppendUint32(buf, r.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Birth))
	buf = append(buf, uint8(len(r.Values)))
	for _, v := range r.Values {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func appendIdentityBody(buf []byte, id Identity) []byte {
	buf = append(buf, kindIdentity)
	buf = binary.BigEndian.AppendUint16(buf, uint16(id.Sensor))
	buf = binary.BigEndian.AppendUint32(buf, id.NextSeq)
	return binary.BigEndian.AppendUint64(buf, uint64(id.Latest))
}

var errBadBody = errors.New("store: bad record body")

func parseReadingBody(body []byte) (Record, error) {
	// body[0] is the kind, already inspected by the caller.
	if len(body) < 1+2+4+8+1 {
		return Record{}, errBadBody
	}
	var r Record
	r.Sensor = core.NodeID(binary.BigEndian.Uint16(body[1:]))
	r.Seq = binary.BigEndian.Uint32(body[3:])
	r.Birth = time.Duration(binary.BigEndian.Uint64(body[7:]))
	dim := int(body[15])
	body = body[16:]
	if len(body) != 8*dim {
		return Record{}, errBadBody
	}
	r.Values = make([]float64, dim)
	for i := range r.Values {
		r.Values[i] = math.Float64frombits(binary.BigEndian.Uint64(body[8*i:]))
	}
	return r, nil
}

func parseIdentityBody(body []byte) (Identity, error) {
	if len(body) != 1+2+4+8 {
		return Identity{}, errBadBody
	}
	return Identity{
		Sensor:  core.NodeID(binary.BigEndian.Uint16(body[1:])),
		NextSeq: binary.BigEndian.Uint32(body[3:]),
		Latest:  time.Duration(binary.BigEndian.Uint64(body[7:])),
	}, nil
}

// scanWAL replays the log from the start, returning the byte offset of
// the longest valid prefix and the records and identities it carries. A
// frame with an impossible length, a short tail, a CRC mismatch, or an
// unparseable body ends the scan — everything at and after it is torn.
func scanWAL(r io.ReadSeeker) (valid int64, recs []Record, ids []Identity, err error) {
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return 0, nil, nil, fmt.Errorf("store: %w", err)
	}
	br := bufio.NewReaderSize(r, 64*1024)
	var header [4]byte
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			return valid, recs, ids, nil // clean EOF or torn length
		}
		n := binary.BigEndian.Uint32(header[:])
		if n == 0 || n > maxFrameBody {
			return valid, recs, ids, nil
		}
		body := make([]byte, n+4)
		if _, err := io.ReadFull(br, body); err != nil {
			return valid, recs, ids, nil
		}
		crc := binary.BigEndian.Uint32(body[n:])
		body = body[:n]
		if crc32.ChecksumIEEE(body) != crc {
			return valid, recs, ids, nil
		}
		switch body[0] {
		case kindReading:
			rec, err := parseReadingBody(body)
			if err != nil {
				return valid, recs, ids, nil
			}
			recs = append(recs, rec)
		case kindIdentity:
			id, err := parseIdentityBody(body)
			if err != nil {
				return valid, recs, ids, nil
			}
			ids = append(ids, id)
		default:
			return valid, recs, ids, nil
		}
		valid += int64(len(header)) + int64(n) + 4
	}
}

// append writes framed bodies and applies the fsync policy.
func (f *File) append(frames []byte, n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("store: closed")
	}
	start := time.Now()
	if _, err := f.w.Write(frames); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	// Flush to the OS on every call: a process crash then loses nothing,
	// only a machine crash can eat the un-fsynced suffix.
	if err := f.w.Flush(); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	f.observe("append", start)
	f.metrics.WALBytes += uint64(len(frames))
	f.metrics.WALRecords += uint64(n)
	if f.cfg.Fsync {
		syncStart := time.Now()
		if err := f.wal.Sync(); err != nil {
			return fmt.Errorf("store: fsync: %w", err)
		}
		f.observe("fsync", syncStart)
		f.metrics.Fsyncs++
	}
	return nil
}

// AppendReadings implements Store.
func (f *File) AppendReadings(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var frames []byte
	for _, r := range recs {
		if len(r.Values) > 255 {
			return fmt.Errorf("store: %d features exceeds the record format", len(r.Values))
		}
		frames = appendFrame(frames, appendReadingBody(nil, r))
	}
	return f.append(frames, len(recs))
}

// PutIdentities implements Store.
func (f *File) PutIdentities(ids []Identity) error {
	if len(ids) == 0 {
		return nil
	}
	var frames []byte
	for _, id := range ids {
		frames = appendFrame(frames, appendIdentityBody(nil, id))
	}
	return f.append(frames, len(ids))
}

// Compact implements Store: write the snapshot to a temp file, fsync,
// rename over the old one, then truncate the WAL.
func (f *File) Compact(recs []Record, ids []Identity) error {
	body := make([]byte, 0, 64+len(recs)*32)
	body = binary.BigEndian.AppendUint32(body, uint32(len(recs)))
	for _, r := range recs {
		if len(r.Values) > 255 {
			return fmt.Errorf("store: %d features exceeds the record format", len(r.Values))
		}
		body = appendReadingBody(body, r)
	}
	body = binary.BigEndian.AppendUint32(body, uint32(len(ids)))
	for _, id := range ids {
		body = appendIdentityBody(body, id)
	}
	buf := append([]byte{}, snapMagic[:]...)
	buf = appendFrame(buf, body)

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("store: closed")
	}
	compactStart := time.Now()
	tmp := filepath.Join(f.cfg.Dir, snapTempName)
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	syncStart := time.Now()
	if err := syncFile(tmp); err != nil {
		return err
	}
	f.observe("fsync", syncStart)
	f.metrics.Fsyncs++
	if err := os.Rename(tmp, filepath.Join(f.cfg.Dir, snapName)); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	syncStart = time.Now()
	if err := syncDir(f.cfg.Dir); err != nil {
		return err
	}
	f.observe("fsync", syncStart)
	f.metrics.Fsyncs++
	// The snapshot now covers everything: drop the log.
	f.w.Reset(f.wal)
	if err := f.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncate wal: %w", err)
	}
	if _, err := f.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	syncStart = time.Now()
	if err := f.wal.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	f.observe("fsync", syncStart)
	f.metrics.Fsyncs++
	f.metrics.Compacts++
	f.observe("compact", compactStart)
	return nil
}

func syncFile(path string) error {
	fd, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer fd.Close()
	if err := fd.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", path, err)
	}
	return nil
}

func syncDir(dir string) error {
	fd, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer fd.Close()
	if err := fd.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", dir, err)
	}
	return nil
}

// loadSnapshot parses snapshot.dat. A missing file is an empty state; a
// file that exists but fails its CRC or framing is dropped (the WAL
// suffix is still replayed) and reported as corrupt — a half-written
// temp never gets renamed, so corruption here means the disk, not a
// crash, damaged the file, and the caller counts it so operators can
// tell it apart from a fresh start.
func (f *File) loadSnapshot() (recs []Record, ids []Identity, corrupt bool) {
	buf, err := os.ReadFile(filepath.Join(f.cfg.Dir, snapName))
	if err != nil {
		return nil, nil, !os.IsNotExist(err)
	}
	if len(buf) < len(snapMagic)+frameOverhead {
		return nil, nil, true
	}
	if [8]byte(buf[:8]) != snapMagic {
		return nil, nil, true
	}
	buf = buf[8:]
	n := binary.BigEndian.Uint32(buf)
	if int(n)+frameOverhead != len(buf) {
		return nil, nil, true
	}
	body := buf[4 : 4+n]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(buf[4+n:]) {
		return nil, nil, true
	}
	count := binary.BigEndian.Uint32(body)
	body = body[4:]
	for i := uint32(0); i < count; i++ {
		if len(body) < 16 {
			return nil, nil, true
		}
		size := 16 + 8*int(body[15])
		if len(body) < size {
			return nil, nil, true
		}
		rec, err := parseReadingBody(body[:size])
		if err != nil {
			return nil, nil, true
		}
		recs = append(recs, rec)
		body = body[size:]
	}
	if len(body) < 4 {
		return nil, nil, true
	}
	count = binary.BigEndian.Uint32(body)
	body = body[4:]
	for i := uint32(0); i < count; i++ {
		if len(body) < 15 {
			return nil, nil, true
		}
		id, err := parseIdentityBody(body[:15])
		if err != nil {
			return nil, nil, true
		}
		ids = append(ids, id)
		body = body[15:]
	}
	if len(body) != 0 {
		return nil, nil, true
	}
	return recs, ids, false
}

// Load implements Store: snapshot first, then the WAL suffix.
func (f *File) Load() (State, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return State{}, errors.New("store: closed")
	}
	if err := f.w.Flush(); err != nil {
		return State{}, fmt.Errorf("store: %w", err)
	}
	pos, err := f.wal.Seek(0, io.SeekCurrent)
	if err != nil {
		return State{}, fmt.Errorf("store: %w", err)
	}
	_, walRecs, walIDs, err := scanWAL(f.wal)
	if err != nil {
		return State{}, err
	}
	if _, err := f.wal.Seek(pos, io.SeekStart); err != nil {
		return State{}, fmt.Errorf("store: %w", err)
	}
	recs, snapIDs, corrupt := f.loadSnapshot()
	if corrupt {
		f.metrics.SnapCorrupt++
	}
	ids := make(map[core.NodeID]Identity, len(snapIDs)+len(walIDs))
	for _, id := range snapIDs {
		mergeIdentity(ids, id)
	}
	for _, id := range walIDs {
		mergeIdentity(ids, id)
	}
	return finishState(append(recs, walRecs...), ids), nil
}

// Sync implements Store.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	if err := f.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := f.wal.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	f.metrics.Fsyncs++
	return nil
}

// Metrics implements Store.
func (f *File) Metrics() Metrics {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.metrics
}

// Close implements Store: flush, fsync, release. Idempotent.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	err := f.w.Flush()
	if serr := f.wal.Sync(); err == nil {
		err = serr
		f.metrics.Fsyncs++
	}
	if cerr := f.wal.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}
