package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeWAL plants raw bytes as a directory's WAL, simulating the state
// a crash left on disk.
func writeWAL(t *testing.T, dir string, data []byte) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// The crash-recovery sweep: a WAL cut at EVERY byte offset of its last
// record must recover exactly the preceding records — the longest valid
// prefix — and keep accepting appends afterwards. This is the on-disk
// half of the replay ≡ in-memory invariant: no torn tail may corrupt,
// drop, or duplicate surviving data.
func TestTornTailEveryByteOffset(t *testing.T) {
	base := t.TempDir()
	f := openFile(t, base, false)
	full := []Record{
		rec(1, 0, 1000, 1),
		rec(2, 0, 1500, 2, 3),
		rec(1, 1, 2000, 4),
	}
	if err := f.AppendReadings(full); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(base, walName))
	if err != nil {
		t.Fatal(err)
	}
	lastStart := len(data) - walRecordSize(1)
	if wantLen := walRecordSize(1)*2 + walRecordSize(2); len(data) != wantLen {
		t.Fatalf("wal is %d bytes, want %d — frame layout changed, update the sweep", len(data), wantLen)
	}
	survivors := full[:2]

	for cut := lastStart; cut <= len(data); cut++ {
		dir := filepath.Join(t.TempDir(), "d")
		writeWAL(t, dir, data[:cut])
		g := openFile(t, dir, false)

		wantTrunc := uint64(cut - lastStart)
		if cut == lastStart || cut == len(data) {
			wantTrunc = 0 // clean boundary: nothing torn
		}
		if got := g.Metrics().Truncated; got != wantTrunc {
			t.Errorf("cut %d: Truncated = %d, want %d", cut, got, wantTrunc)
		}

		st := mustLoad(t, g)
		want := survivors
		if cut == len(data) {
			want = full
		}
		if !reflect.DeepEqual(st.Records, want) {
			t.Fatalf("cut %d: Records = %+v, want %+v", cut, st.Records, want)
		}

		// Recovery is not read-only: the store must keep working.
		if err := g.AppendReadings([]Record{rec(3, 0, 2500, 9)}); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := g.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		h := openFile(t, dir, false)
		st = mustLoad(t, h)
		if got := len(st.Records); got != len(want)+1 {
			t.Fatalf("cut %d: %d records after append+reopen, want %d", cut, got, len(want)+1)
		}
		if got := h.Metrics().Truncated; got != 0 {
			t.Errorf("cut %d: second open truncated %d bytes — first open left a torn tail", cut, got)
		}
		h.Close()
	}
}

// A CRC hit in the middle of the log ends replay there: everything from
// the flipped frame on is discarded, the prefix survives.
func TestMidFileCorruptionKeepsPrefix(t *testing.T) {
	base := t.TempDir()
	f := openFile(t, base, false)
	f.AppendReadings([]Record{rec(1, 0, 1000, 1), rec(2, 0, 1500, 2), rec(3, 0, 2000, 3)})
	f.Close()
	path := filepath.Join(base, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside the second frame.
	data[walRecordSize(1)+10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	g := openFile(t, base, false)
	defer g.Close()
	st := mustLoad(t, g)
	want := []Record{rec(1, 0, 1000, 1)}
	if !reflect.DeepEqual(st.Records, want) {
		t.Errorf("Records = %+v, want %+v (prefix before the corrupt frame)", st.Records, want)
	}
	if got, want := g.Metrics().Truncated, uint64(2*walRecordSize(1)); got != want {
		t.Errorf("Truncated = %d, want %d", got, want)
	}
}

// A corrupt snapshot is treated as absent — the WAL still replays — and
// a crash between snapshot rename and WAL truncate (snapshot AND a WAL
// that duplicates it) loads without duplicates.
func TestSnapshotCorruptionAndDuplicateWAL(t *testing.T) {
	base := t.TempDir()
	f := openFile(t, base, false)
	recs := []Record{rec(1, 0, 1000, 1), rec(1, 1, 2000, 2)}
	f.AppendReadings(recs)
	f.Compact(recs, nil)
	// Crash-between-rename-and-truncate: re-append what the snapshot
	// already holds.
	f.AppendReadings(recs)
	st := mustLoad(t, f)
	if !reflect.DeepEqual(st.Records, recs) {
		t.Errorf("duplicate WAL suffix: Records = %+v, want %+v", st.Records, recs)
	}
	if got := f.Metrics().SnapCorrupt; got != 0 {
		t.Errorf("SnapCorrupt = %d on a healthy snapshot, want 0", got)
	}
	f.Close()

	// Now corrupt the snapshot: the WAL copy must still recover the data.
	snap := filepath.Join(base, snapName)
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	g := openFile(t, base, false)
	defer g.Close()
	st = mustLoad(t, g)
	if !reflect.DeepEqual(st.Records, recs) {
		t.Errorf("corrupt snapshot: Records = %+v, want %+v (from the WAL)", st.Records, recs)
	}
	// The dropped snapshot must be visible to operators, not silent: a
	// corruption event is counted, distinguishing it from a fresh start.
	if got := g.Metrics().SnapCorrupt; got != 1 {
		t.Errorf("SnapCorrupt = %d after loading a corrupt snapshot, want 1", got)
	}
}
