package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"innet/internal/core"
)

// buildWALBytes frames the given records the way AppendReadings does,
// without touching disk — seed material for the fuzzer.
func buildWALBytes(recs []Record, ids []Identity) []byte {
	var out []byte
	for _, r := range recs {
		out = appendFrame(out, appendReadingBody(nil, r))
	}
	for _, id := range ids {
		out = appendFrame(out, appendIdentityBody(nil, id))
	}
	return out
}

// FuzzWALReplay throws arbitrary bytes at the WAL recovery path and
// checks the invariants torn-tail truncation promises: Open never
// errors on corrupt data, Load's identity floors cover every recovered
// record, the store accepts appends afterwards, and a close/reopen
// round-trips the recovered state exactly.
func FuzzWALReplay(f *testing.F) {
	valid := buildWALBytes(
		[]Record{rec(1, 0, 1000, 1.5), rec(2, 0, 1500, -3, 4), rec(1, 1, 2000, 2.5)},
		[]Identity{{Sensor: 7, NextSeq: 42, Latest: time.Minute}},
	)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0xff // CRC break in the first frame
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // absurd length
	f.Add(buildWALBytes(nil, []Identity{{Sensor: 1, NextSeq: 1, Latest: 1}})[:walIdentitySize-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		g, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("Open on arbitrary bytes: %v", err)
		}
		st, err := g.Load()
		if err != nil {
			t.Fatalf("Load after recovery: %v", err)
		}
		floors := make(map[core.NodeID]Identity, len(st.Identities))
		for i, id := range st.Identities {
			if i > 0 && st.Identities[i-1].Sensor >= id.Sensor {
				t.Fatalf("identities not strictly sorted: %+v", st.Identities)
			}
			floors[core.NodeID(id.Sensor)] = id
		}
		seen := map[[2]uint64]bool{}
		for _, r := range st.Records {
			key := [2]uint64{uint64(r.Sensor), uint64(r.Seq)}
			if seen[key] {
				t.Fatalf("duplicate record %d#%d survived recovery", r.Sensor, r.Seq)
			}
			seen[key] = true
			fl, ok := floors[core.NodeID(r.Sensor)]
			if !ok || fl.NextSeq <= r.Seq || fl.Latest < r.Birth {
				t.Fatalf("identity floor %+v does not cover record %+v", fl, r)
			}
		}

		// Recovery must leave a writable store whose state round-trips.
		if err := g.AppendReadings([]Record{rec(999, 0, 5000, 1)}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		after, err := g.Load()
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Close(); err != nil {
			t.Fatal(err)
		}
		h, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer h.Close()
		if h.Metrics().Truncated != 0 {
			t.Fatal("second open still found a torn tail")
		}
		reloaded, err := h.Load()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(after, reloaded) {
			t.Fatalf("state did not survive reopen:\nbefore: %+v\nafter:  %+v", after, reloaded)
		}
	})
}
