package runner

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestRunParallelMatchesSequential checks the engine's core guarantee:
// fanning seeds across workers changes wall-clock, never results. The
// same multi-seed cell is run strictly sequentially (Workers=1) and
// maximally fanned out; every aggregated metric must agree bit-for-bit,
// because seeds share no state and aggregation is ordered.
func TestRunParallelMatchesSequential(t *testing.T) {
	cfg := quickCfg(AlgoGlobal)
	cfg.Seeds = []uint64{1, 2, 3, 4}

	cfg.Workers = 1
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Workers is scheduling-only and the sole permitted difference.
	seq.Config.Workers, par.Config.Workers = 0, 0
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel run diverged from sequential:\nseq %+v\npar %+v", seq, par)
	}
}

// TestSessionSingleFlight hammers one session with concurrent requests
// for overlapping figures and checks that each distinct cell ran exactly
// once (the Figs. 4–6 sharing contract, now under concurrency).
func TestSessionSingleFlight(t *testing.T) {
	s := NewSession()
	var mu sync.Mutex
	ran := make(map[string]int)
	s.Observer = func(cfg Config, _ Result) {
		mu.Lock()
		ran[cacheKey(cfg)]++
		mu.Unlock()
	}
	scale := microScale()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Fig4(scale); err != nil {
				t.Error(err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Fig5(scale); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if len(ran) == 0 {
		t.Fatal("no cells ran")
	}
	for key, n := range ran {
		if n != 1 {
			t.Fatalf("cell %s ran %d times; single-flight must collapse duplicates", key, n)
		}
	}
}

// TestFigureOutputDeterministicUnderParallelism regenerates the same
// figure with two independent sessions and requires identical TSV bytes:
// same seeds ⇒ same series, regardless of goroutine scheduling.
func TestFigureOutputDeterministicUnderParallelism(t *testing.T) {
	render := func() string {
		s := NewSession()
		fig, err := s.Fig4(microScale())
		if err != nil {
			t.Fatal(err)
		}
		return fig.TSV(MetricTx, "tx") + fig.TSV(MetricRx, "rx")
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("nondeterministic figure output:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestDefaultWorkersResize exercises pool resizing around live runs.
func TestDefaultWorkersResize(t *testing.T) {
	DefaultWorkers(2)
	defer DefaultWorkers(0) // no-op; documents intent
	cfg := quickCfg(AlgoGlobal)
	cfg.Seeds = []uint64{1, 2}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	DefaultWorkers(8)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRunSeedErrorSurfaces keeps error plumbing intact across the pool:
// a failing seed must fail the whole Run, with the earliest seed named
// and a zero Result returned.
func TestRunSeedErrorSurfaces(t *testing.T) {
	cfg := quickCfg(AlgoGlobal)
	cfg.Ranker = "bogus" // every seed fails at ranker construction
	cfg.Seeds = []uint64{7, 8}
	res, err := Run(cfg)
	if err == nil {
		t.Fatal("Run with an unknown ranker must fail")
	}
	if !strings.Contains(err.Error(), "seed 7") {
		t.Fatalf("error must name the earliest failing seed: %v", err)
	}
	if !reflect.DeepEqual(res, Result{}) {
		t.Fatalf("failed Run must return a zero Result, got %+v", res)
	}
}

// TestWorkersExcludedFromCacheKey: two configs differing only in Workers
// must hit the same memoized cell.
func TestWorkersExcludedFromCacheKey(t *testing.T) {
	a := quickCfg(AlgoGlobal)
	b := a
	b.Workers = 3
	a.applyDefaults()
	b.applyDefaults()
	if cacheKey(a) != cacheKey(b) {
		t.Fatal("Workers leaked into the cell cache key")
	}
}
