package runner

import (
	"testing"
	"time"
)

// quickCfg is a small-but-real experiment cell for tests. The window
// stays inside the paper's sweep domain (w ≥ 10), where the distributed
// algorithm's cost advantage holds.
func quickCfg(algo Algorithm) Config {
	return Config{
		Algo:          algo,
		Ranker:        RankNN,
		N:             2,
		WindowSamples: 10,
		HopLimit:      1,
		Nodes:         12,
		Period:        10 * time.Second,
		Duration:      300 * time.Second,
		Seeds:         []uint64{1},
		AccuracyEvery: 3,
	}
}

func TestRunGlobalSmoke(t *testing.T) {
	res, err := Run(quickCfg(AlgoGlobal))
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgTxJPerRound <= 0 || res.AvgRxJPerRound <= 0 {
		t.Fatalf("no energy recorded: %+v", res)
	}
	if res.Accuracy < 0.6 {
		t.Fatalf("global accuracy %v implausibly low", res.Accuracy)
	}
	if res.PointsSent == 0 {
		t.Fatal("distributed run sent no points")
	}
	if res.MinTotalJ > res.AvgTotalJ || res.AvgTotalJ > res.MaxTotalJ {
		t.Fatalf("energy ordering violated: %+v", res)
	}
}

func TestRunSemiGlobalSmoke(t *testing.T) {
	res, err := Run(quickCfg(AlgoSemiGlobal))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.5 {
		t.Fatalf("semi-global accuracy %v implausibly low", res.Accuracy)
	}
}

func TestRunCentralizedSmoke(t *testing.T) {
	res, err := Run(quickCfg(AlgoCentralized))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.5 {
		t.Fatalf("centralized accuracy %v implausibly low", res.Accuracy)
	}
	// The sink's relaying must make the busiest node far hotter than
	// the mean (§8: the sink area carries the whole network's traffic;
	// the imbalance grows with network size — ≈3× at 53 nodes, ≈2× at
	// this 12-node scale).
	if res.SinkFrames < 1.5*res.FramesSent/float64(res.Config.Nodes) {
		t.Fatalf("no sink hot spot: max %v vs mean %v",
			res.SinkFrames, res.FramesSent/float64(res.Config.Nodes))
	}
}

func TestCentralizedCostsMoreThanGlobal(t *testing.T) {
	global, err := Run(quickCfg(AlgoGlobal))
	if err != nil {
		t.Fatal(err)
	}
	central, err := Run(quickCfg(AlgoCentralized))
	if err != nil {
		t.Fatal(err)
	}
	if central.AvgTxJPerRound <= global.AvgTxJPerRound {
		t.Fatalf("paper's headline result inverted: centralized TX %v <= global TX %v",
			central.AvgTxJPerRound, global.AvgTxJPerRound)
	}
}

func TestMakeRanker(t *testing.T) {
	if _, err := MakeRanker("bogus", 1); err == nil {
		t.Fatal("unknown ranker must fail")
	}
	r, err := MakeRanker(RankKNN, 0)
	if err != nil || r.Name() != "KNN4" {
		t.Fatalf("KNN default k: %v %v", r, err)
	}
	r, err = MakeRanker(RankNN, 9)
	if err != nil || r.Name() != "NN" {
		t.Fatalf("NN: %v %v", r, err)
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgoCentralized.String() != "Centralized" || AlgoGlobal.String() != "Global" ||
		AlgoSemiGlobal.String() != "Semi-global" {
		t.Fatal("algorithm names")
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm must format")
	}
}

// TestLifetimeImbalance checks §8's closing argument: under the
// centralized protocol the hottest (sink-region) node exhausts its
// battery while the median node has spent only a small fraction of its
// own — far smaller than under the distributed algorithm.
func TestLifetimeImbalance(t *testing.T) {
	central, err := Run(quickCfg(AlgoCentralized))
	if err != nil {
		t.Fatal(err)
	}
	global, err := Run(quickCfg(AlgoGlobal))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("median battery used at first death: centralized %.2f, global %.2f",
		central.MedianTxAtDeath, global.MedianTxAtDeath)
	if central.MedianTxAtDeath >= global.MedianTxAtDeath {
		t.Fatalf("centralization must waste the network: centralized %.2f >= global %.2f",
			central.MedianTxAtDeath, global.MedianTxAtDeath)
	}
}
