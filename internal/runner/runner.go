// Package runner orchestrates the paper's experiments: it assembles the
// simulated network (internal/wsn) with a generated Intel-lab-equivalent
// stream (internal/dataset), runs the distributed algorithms
// (internal/protocol) or the centralized baseline (internal/baseline)
// over it, and collects the metrics §7.1 defines:
//
//  1. detection accuracy (fraction of sensor-rounds whose estimate equals
//     the centrally computed ground truth),
//  2. average TX / RX energy per node per sampling period, and
//  3. the average, minimum and maximum total energy consumed by a node.
//
// The per-figure sweeps live in figures.go.
package runner

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"innet/internal/baseline"
	"innet/internal/core"
	"innet/internal/dataset"
	"innet/internal/protocol"
	"innet/internal/wsn"
)

// Algorithm selects which protocol the network runs.
type Algorithm int

// Algorithms under test.
const (
	AlgoCentralized Algorithm = iota + 1
	AlgoGlobal
	AlgoSemiGlobal
)

func (a Algorithm) String() string {
	switch a {
	case AlgoCentralized:
		return "Centralized"
	case AlgoGlobal:
		return "Global"
	case AlgoSemiGlobal:
		return "Semi-global"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// RankerKind names the outlier ranking functions of the evaluation.
type RankerKind string

// Ranking functions used in §7 (NN and KNN).
const (
	RankNN  RankerKind = "nn"
	RankKNN RankerKind = "knn"
)

// MakeRanker instantiates the ranking function.
func MakeRanker(kind RankerKind, k int) (core.Ranker, error) {
	switch kind {
	case RankNN:
		return core.NN(), nil
	case RankKNN:
		if k < 1 {
			k = 4
		}
		return core.KNN{K: k}, nil
	default:
		return nil, fmt.Errorf("runner: unknown ranker %q", kind)
	}
}

// Config is one experiment cell: an algorithm, its parameters, and the
// simulation scale.
type Config struct {
	Algo          Algorithm
	Ranker        RankerKind
	K             int // neighbors for KNN (paper: 4)
	N             int // outliers to report (paper: 4 default)
	WindowSamples int // the paper's w, in samples
	HopLimit      int // the paper's epsilon, semi-global only

	Nodes    int           // network size (paper: 53, also 32)
	Period   time.Duration // sampling period
	Duration time.Duration // simulated run length (paper: 1000 s)

	Seeds    []uint64 // one run per seed, metrics averaged (paper: 4)
	LossProb float64  // radio loss probability

	LocationWeight float64 // coordinate feature scale (paper: raw, 1.0)

	// AccuracyEvery measures accuracy on every k-th round (ground truth
	// is expensive at scale); 0 disables accuracy measurement.
	AccuracyEvery int

	// WarmupRounds excludes the first rounds from energy and accuracy
	// averages: the initial reconciliation (every sensor learning the
	// network's first windows, routes being discovered) takes the
	// 53-node network roughly ten rounds and is a deployment one-off,
	// not the steady state the paper plots. Defaults to 10.
	WarmupRounds int

	// PerNeighborFrames selects the ablation where each neighbor's
	// group is transmitted as its own frame instead of the paper's
	// recipient-tagged single broadcast.
	PerNeighborFrames bool

	// Workers bounds how many seed simulations of this Run execute
	// concurrently. Zero (the default) draws slots from the shared
	// process-wide pool sized runtime.GOMAXPROCS (see DefaultWorkers);
	// a positive value gives this Run a private pool of that size.
	// Results are independent of the setting: each seed's simulation is
	// self-contained and deterministic, and aggregation always proceeds
	// in seed order.
	Workers int
}

func (c *Config) applyDefaults() {
	if c.Ranker == "" {
		c.Ranker = RankNN
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.N == 0 {
		c.N = 4
	}
	if c.WindowSamples == 0 {
		c.WindowSamples = 20
	}
	if c.Nodes == 0 {
		c.Nodes = 53
	}
	if c.Period == 0 {
		// The Intel lab motes reported on 31-second epochs.
		c.Period = 31 * time.Second
	}
	if c.Duration == 0 {
		c.Duration = 1000 * time.Second
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{1, 2, 3, 4}
	}
	if c.LocationWeight == 0 {
		c.LocationWeight = 1
	}
	if c.WarmupRounds == 0 {
		c.WarmupRounds = 10
	}
}

// Result aggregates one experiment cell across its seeds.
type Result struct {
	Config Config

	// AvgTxJPerRound / AvgRxJPerRound: energy per node per sampling
	// period, averaged over nodes, rounds and seeds (the y-axes of
	// Figs. 4, 7, 8, 9).
	AvgTxJPerRound float64
	AvgRxJPerRound float64

	// AvgTotalJ / MinTotalJ / MaxTotalJ: total energy consumed by a
	// node over the run including idle draw (Figs. 5, 6).
	AvgTotalJ float64
	MinTotalJ float64
	MaxTotalJ float64

	// Accuracy is the fraction of measured sensor-rounds whose estimate
	// matched ground truth exactly (§7.1 reports ≈0.99).
	Accuracy float64

	// Traffic totals across the run (averaged over seeds).
	FramesSent    float64
	PointsSent    float64
	SinkFrames    float64 // frames transmitted by the busiest node
	MeanDegree    float64
	SimEvents     float64
	AccuracyCount int // sensor-round comparisons behind Accuracy

	// Lifetime imbalance (§8): when the hottest-transmitting node has
	// exhausted a battery, MedianTxAtDeath is the fraction of that same
	// battery the median node has used. The paper's closing argument is
	// that centralization drives this toward zero ("the nodes near the
	// collecting point will die ... when many remaining nodes will use
	// just 2% of their energy").
	MaxTxJ          float64
	MedianTxJ       float64
	MedianTxAtDeath float64
}

// Run executes the experiment cell, fanning the seeds out across the
// worker pool (see Config.Workers), and averages over them. The result is
// identical to a sequential run: seeds share no state and the averages
// accumulate in seed order regardless of completion order.
func Run(cfg Config) (Result, error) {
	cfg.applyDefaults()
	sem := sharedSlots()
	if cfg.Workers > 0 {
		sem = make(chan struct{}, cfg.Workers)
	}
	results := make([]Result, len(cfg.Seeds))
	errs := make([]error, len(cfg.Seeds))
	var wg sync.WaitGroup
	for i, seed := range cfg.Seeds {
		wg.Add(1)
		go func(i int, seed uint64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = runSeed(cfg, seed)
		}(i, seed)
	}
	wg.Wait()

	agg := Result{Config: cfg, MinTotalJ: 0, MaxTotalJ: 0}
	for i := range cfg.Seeds {
		if errs[i] != nil {
			return Result{}, fmt.Errorf("seed %d: %w", cfg.Seeds[i], errs[i])
		}
		one := results[i]
		agg.AvgTxJPerRound += one.AvgTxJPerRound
		agg.AvgRxJPerRound += one.AvgRxJPerRound
		agg.AvgTotalJ += one.AvgTotalJ
		agg.MinTotalJ += one.MinTotalJ
		agg.MaxTotalJ += one.MaxTotalJ
		agg.Accuracy += one.Accuracy
		agg.FramesSent += one.FramesSent
		agg.PointsSent += one.PointsSent
		agg.SinkFrames += one.SinkFrames
		agg.MeanDegree += one.MeanDegree
		agg.SimEvents += one.SimEvents
		agg.AccuracyCount += one.AccuracyCount
		agg.MaxTxJ += one.MaxTxJ
		agg.MedianTxJ += one.MedianTxJ
		agg.MedianTxAtDeath += one.MedianTxAtDeath
	}
	n := float64(len(cfg.Seeds))
	agg.AvgTxJPerRound /= n
	agg.AvgRxJPerRound /= n
	agg.AvgTotalJ /= n
	agg.MinTotalJ /= n
	agg.MaxTotalJ /= n
	agg.Accuracy /= n
	agg.FramesSent /= n
	agg.PointsSent /= n
	agg.SinkFrames /= n
	agg.MeanDegree /= n
	agg.SimEvents /= n
	agg.MaxTxJ /= n
	agg.MedianTxJ /= n
	agg.MedianTxAtDeath /= n
	return agg, nil
}

// seedRun holds the per-seed network under measurement.
type seedRun struct {
	cfg    Config
	stream *dataset.Stream
	topo   *wsn.Topology
	sim    *wsn.Sim
	ranker core.Ranker

	distApps map[core.NodeID]*protocol.App
	centApps map[core.NodeID]*baseline.App
	sink     core.NodeID
}

func runSeed(cfg Config, seed uint64) (Result, error) {
	run, err := buildSeedRun(cfg, seed)
	if err != nil {
		return Result{}, err
	}
	return run.execute()
}

// buildSeedRun assembles the simulated network for one seed without
// running it.
func buildSeedRun(cfg Config, seed uint64) (*seedRun, error) {
	ranker, err := MakeRanker(cfg.Ranker, cfg.K)
	if err != nil {
		return nil, err
	}
	stream, err := dataset.Generate(dataset.Config{
		Nodes:    cfg.Nodes,
		Seed:     seed,
		Period:   cfg.Period,
		Duration: cfg.Duration,
	})
	if err != nil {
		return nil, err
	}
	radio := wsn.DefaultRadio()
	topo := wsn.NewTopology(stream.Positions(), radio.Range)
	if !topo.Connected() {
		return nil, fmt.Errorf("runner: generated topology disconnected")
	}
	sim := wsn.NewSim(wsn.Config{Seed: seed ^ 0xabcd, LossProb: cfg.LossProb})

	run := &seedRun{cfg: cfg, stream: stream, topo: topo, sim: sim, ranker: ranker}
	// A window of w samples: births are epoch-aligned, so evicting at
	// w·period − period/2 keeps exactly epochs (t−w, t].
	window := time.Duration(cfg.WindowSamples)*cfg.Period - cfg.Period/2

	switch cfg.Algo {
	case AlgoGlobal, AlgoSemiGlobal:
		run.distApps = make(map[core.NodeID]*protocol.App, cfg.Nodes)
		hop := 0
		if cfg.Algo == AlgoSemiGlobal {
			hop = cfg.HopLimit
			if hop == 0 {
				hop = 1
			}
		}
		for _, id := range topo.Nodes() {
			app, err := protocol.New(id, protocol.Config{
				Detector: core.Config{
					Ranker:   ranker,
					N:        cfg.N,
					Window:   window,
					HopLimit: hop,
				},
				Stream:            stream,
				Topology:          topo,
				LocationWeight:    cfg.LocationWeight,
				PerNeighborFrames: cfg.PerNeighborFrames,
			})
			if err != nil {
				return nil, err
			}
			run.distApps[id] = app
			sim.AddNode(id, stream.Positions()[id], app)
		}
	case AlgoCentralized:
		run.centApps = make(map[core.NodeID]*baseline.App, cfg.Nodes)
		run.sink = centralNode(stream.Positions(), topo) // the lab's gateway sat mid-floor
		for _, id := range topo.Nodes() {
			app, err := baseline.New(baseline.Config{
				Sink:           run.sink,
				Ranker:         ranker,
				N:              cfg.N,
				WindowSamples:  cfg.WindowSamples,
				Stream:         stream,
				LocationWeight: cfg.LocationWeight,
			})
			if err != nil {
				return nil, err
			}
			run.centApps[id] = app
			sim.AddNode(id, stream.Positions()[id], app)
		}
	default:
		return nil, fmt.Errorf("runner: unknown algorithm %v", cfg.Algo)
	}

	return run, nil
}

// centralNode picks the node nearest the layout centroid as the sink.
func centralNode(positions map[core.NodeID]wsn.Point2, topo *wsn.Topology) core.NodeID {
	var cx, cy float64
	for _, p := range positions {
		cx += p.X
		cy += p.Y
	}
	cx /= float64(len(positions))
	cy /= float64(len(positions))
	best := topo.Nodes()[0]
	bestD := positions[best].Dist(wsn.Point2{X: cx, Y: cy})
	for _, id := range topo.Nodes() {
		if d := positions[id].Dist(wsn.Point2{X: cx, Y: cy}); d < bestD {
			best, bestD = id, d
		}
	}
	return best
}

// execute runs the rounds and gathers metrics.
func (r *seedRun) execute() (Result, error) {
	cfg := r.cfg
	r.sim.Start()

	rounds := r.stream.Epochs()
	type snap struct{ tx, rx float64 }
	prev := make(map[core.NodeID]snap, cfg.Nodes)
	var txSum, rxSum float64
	samples := 0
	accHits, accTotal := 0, 0

	for epoch := 0; epoch < rounds; epoch++ {
		horizon := time.Duration(epoch+1) * cfg.Period
		r.sim.Run(horizon)

		for _, node := range r.sim.Nodes() {
			e := node.Energy()
			p := prev[node.ID]
			if epoch >= cfg.WarmupRounds {
				txSum += e.TxJ - p.tx
				rxSum += e.RxJ - p.rx
				samples++
			}
			prev[node.ID] = snap{tx: e.TxJ, rx: e.RxJ}
		}

		if cfg.AccuracyEvery > 0 && epoch >= cfg.WarmupRounds &&
			(epoch%cfg.AccuracyEvery == 0 || epoch == rounds-1) {
			hits, total := r.measureAccuracy(epoch)
			accHits += hits
			accTotal += total
		}
	}
	// Drain residual traffic without advancing the measured horizon.
	r.sim.Run(cfg.Duration + 5*time.Second)

	res := Result{Config: cfg}
	if samples > 0 {
		res.AvgTxJPerRound = txSum / float64(samples)
		res.AvgRxJPerRound = rxSum / float64(samples)
	}

	radio := wsn.DefaultRadio()
	first := true
	txByNode := make([]float64, 0, cfg.Nodes)
	for _, node := range r.sim.Nodes() {
		total := node.Energy().TotalAt(cfg.Duration, radio.IdlePower)
		res.AvgTotalJ += total
		if first || total < res.MinTotalJ {
			res.MinTotalJ = total
		}
		if first || total > res.MaxTotalJ {
			res.MaxTotalJ = total
		}
		first = false
		frames := float64(node.Counters().FramesSent)
		res.FramesSent += frames
		if frames > res.SinkFrames {
			res.SinkFrames = frames
		}
		txByNode = append(txByNode, node.Energy().TxJ)
	}
	res.AvgTotalJ /= float64(cfg.Nodes)
	sort.Float64s(txByNode)
	res.MedianTxJ = txByNode[len(txByNode)/2]
	res.MaxTxJ = txByNode[len(txByNode)-1]
	if res.MaxTxJ > 0 {
		// §8's lifetime argument: transmission drains the battery of
		// the hottest node first; at that moment the median node has
		// spent this fraction of the same budget.
		res.MedianTxAtDeath = res.MedianTxJ / res.MaxTxJ
	}
	if accTotal > 0 {
		res.Accuracy = float64(accHits) / float64(accTotal)
		res.AccuracyCount = accTotal
	}
	for _, id := range r.topo.Nodes() {
		res.MeanDegree += float64(r.topo.Degree(id))
	}
	res.MeanDegree /= float64(cfg.Nodes)
	res.SimEvents = float64(r.sim.Events())
	if r.distApps != nil {
		for _, app := range r.distApps {
			res.PointsSent += float64(app.Detector().Stats().PointsSent)
		}
	}
	return res, nil
}

// windowSet rebuilds the ground-truth window contents of one sensor at
// the end of the given epoch, directly from the stream.
func (r *seedRun) windowSet(id core.NodeID, epoch int) []core.Point {
	lo := epoch - r.cfg.WindowSamples + 1
	if lo < 0 {
		lo = 0
	}
	var pts []core.Point
	for e := lo; e <= epoch; e++ {
		s, ok := r.stream.At(id, e)
		if !ok {
			continue
		}
		pts = append(pts, core.NewPoint(id, uint32(e), time.Duration(e)*r.cfg.Period,
			s.Features(r.cfg.LocationWeight)...))
	}
	return pts
}

// measureAccuracy compares every sensor's current answer with the
// centrally computed ground truth for the end of the given epoch.
func (r *seedRun) measureAccuracy(epoch int) (hits, total int) {
	switch r.cfg.Algo {
	case AlgoGlobal:
		union := core.NewSet()
		for _, id := range r.topo.Nodes() {
			for _, p := range r.windowSet(id, epoch) {
				union.Add(p)
			}
		}
		truth := idSet(core.TopN(r.ranker, union, r.cfg.N))
		for _, id := range r.topo.Nodes() {
			total++
			if sameIDSet(truth, idSet(r.distApps[id].Detector().Estimate())) {
				hits++
			}
		}
	case AlgoSemiGlobal:
		hop := r.cfg.HopLimit
		if hop == 0 {
			hop = 1
		}
		for _, id := range r.topo.Nodes() {
			dist := r.topo.HopDistances(id)
			union := core.NewSet()
			for other, d := range dist {
				if d <= hop {
					for _, p := range r.windowSet(other, epoch) {
						union.Add(p)
					}
				}
			}
			truth := idSet(core.TopN(r.ranker, union, r.cfg.N))
			total++
			if sameIDSet(truth, idSet(r.distApps[id].Detector().Estimate())) {
				hits++
			}
		}
	case AlgoCentralized:
		union := core.NewSet()
		for _, id := range r.topo.Nodes() {
			for _, p := range r.windowSet(id, epoch) {
				union.Add(p)
			}
		}
		truth := idSet(core.TopN(r.ranker, union, r.cfg.N))
		for _, id := range r.topo.Nodes() {
			res, at := r.centApps[id].LastResult()
			total++
			// The sink computes from data shipped during the round, so
			// a result exists and is recent.
			if at > 0 && sameIDSet(truth, idSet(res)) {
				hits++
			}
		}
	}
	return hits, total
}

func idSet(pts []core.Point) map[core.PointID]bool {
	out := make(map[core.PointID]bool, len(pts))
	for _, p := range pts {
		out[p.ID] = true
	}
	return out
}

func sameIDSet(a, b map[core.PointID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}
