package runner

import (
	"strings"
	"testing"
	"time"
)

// microScale is a tiny-but-complete sweep for testing the figure layer.
func microScale() Scale {
	return Scale{
		Nodes:         9,
		Period:        10 * time.Second,
		Duration:      120 * time.Second,
		Seeds:         []uint64{1},
		AccuracyEvery: 4,
		Windows:       []int{5, 8},
		Outliers:      []int{1, 2},
	}
}

func TestFig4SeriesShape(t *testing.T) {
	s := NewSession()
	fig, err := s.Fig4(microScale())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig4" || len(fig.Series) != 3 {
		t.Fatalf("fig4 shape: %s with %d series", fig.ID, len(fig.Series))
	}
	labels := map[string]bool{}
	for _, ser := range fig.Series {
		labels[ser.Label] = true
		if len(ser.Points) != 2 {
			t.Fatalf("series %s has %d points, want one per window", ser.Label, len(ser.Points))
		}
		for _, p := range ser.Points {
			if p.TxJ <= 0 || p.RxJ <= 0 {
				t.Fatalf("series %s has empty energy at w=%g", ser.Label, p.X)
			}
		}
	}
	for _, want := range []string{"Centralized", "Global-NN", "Global-KNN"} {
		if !labels[want] {
			t.Fatalf("missing series %q", want)
		}
	}
}

func TestSessionMemoizesAcrossFigures(t *testing.T) {
	s := NewSession()
	calls := 0
	s.Observer = func(Config, Result) { calls++ }
	scale := microScale()
	if _, err := s.Fig4(scale); err != nil {
		t.Fatal(err)
	}
	after4 := calls
	// Fig5 and Fig6 reuse Fig4's runs entirely.
	if _, err := s.Fig5(scale); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fig6(scale); err != nil {
		t.Fatal(err)
	}
	if calls != after4 {
		t.Fatalf("figs 5/6 re-ran %d cells; expected full cache reuse", calls-after4)
	}
}

func TestFig6Normalization(t *testing.T) {
	s := NewSession()
	scale := microScale()
	scale.Windows = []int{10, 20} // fig6 keeps only w ∈ {10,20,40}
	fig, err := s.Fig6(scale)
	if err != nil {
		t.Fatal(err)
	}
	for _, ser := range fig.Series {
		for _, p := range ser.Points {
			if p.AvgJ != 1 {
				t.Fatalf("normalized avg must be 1, got %v", p.AvgJ)
			}
			if p.MinJ > 1 || p.MaxJ < 1 {
				t.Fatalf("normalized min/max out of order: %v/%v", p.MinJ, p.MaxJ)
			}
		}
	}
}

func TestAccuracyTableSeries(t *testing.T) {
	s := NewSession()
	fig, err := s.AccuracyTable(microScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("accuracy table has %d rows", len(fig.Series))
	}
	for _, ser := range fig.Series {
		if len(ser.Points) != 1 {
			t.Fatalf("row %s has %d cells", ser.Label, len(ser.Points))
		}
		if acc := ser.Points[0].Accuracy; acc < 0 || acc > 1 {
			t.Fatalf("row %s accuracy %v out of range", ser.Label, acc)
		}
	}
}

func TestTSVRendering(t *testing.T) {
	fig := Figure{
		ID:     "t",
		Title:  "test",
		XLabel: "w",
		Series: []Series{
			{Label: "A", Points: []SeriesPoint{{X: 1, TxJ: 0.5}, {X: 2, TxJ: 0.25}}},
			{Label: "B", Points: []SeriesPoint{{X: 2, TxJ: 1.5}}},
		},
	}
	tsv := fig.TSV(MetricTx, "tx")
	lines := strings.Split(strings.TrimSpace(tsv), "\n")
	if len(lines) != 4 {
		t.Fatalf("TSV lines = %d: %q", len(lines), tsv)
	}
	if !strings.HasPrefix(lines[1], "w\tA\tB") {
		t.Fatalf("header = %q", lines[1])
	}
	if lines[2] != "1\t0.5\t" {
		t.Fatalf("row 1 = %q (missing cell must be empty)", lines[2])
	}
	if lines[3] != "2\t0.25\t1.5" {
		t.Fatalf("row 2 = %q", lines[3])
	}
}

func TestCacheKeyDistinguishesConfigs(t *testing.T) {
	base := Config{Algo: AlgoGlobal, Ranker: RankNN}
	base.applyDefaults()
	keys := map[string]string{}
	variants := map[string]func(Config) Config{
		"base":     func(c Config) Config { return c },
		"knn":      func(c Config) Config { c.Ranker = RankKNN; return c },
		"w":        func(c Config) Config { c.WindowSamples = 33; return c },
		"n":        func(c Config) Config { c.N = 7; return c },
		"hop":      func(c Config) Config { c.HopLimit = 2; return c },
		"algo":     func(c Config) Config { c.Algo = AlgoCentralized; return c },
		"loss":     func(c Config) Config { c.LossProb = 0.5; return c },
		"nodes":    func(c Config) Config { c.Nodes = 32; return c },
		"unicast":  func(c Config) Config { c.PerNeighborFrames = true; return c },
		"duration": func(c Config) Config { c.Duration = 123 * time.Second; return c },
	}
	for name, mutate := range variants {
		key := cacheKey(mutate(base))
		if prev, dup := keys[key]; dup {
			t.Fatalf("configs %q and %q collide on cache key %q", name, prev, key)
		}
		keys[key] = name
	}
}

func TestScaleBaseAppliesKnobs(t *testing.T) {
	scale := microScale()
	cfg := scale.base(AlgoGlobal)
	if cfg.Nodes != 9 || cfg.Period != 10*time.Second || len(cfg.Seeds) != 1 {
		t.Fatalf("base config did not inherit scale: %+v", cfg)
	}
}
