package runner

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Scale bundles the simulation-scale knobs shared by every figure, so the
// full paper-scale regeneration (cmd/expfig) and the quick benchmark
// regeneration (bench_test.go) run the same code.
type Scale struct {
	Nodes         int
	Period        time.Duration
	Duration      time.Duration
	Seeds         []uint64
	LossProb      float64
	AccuracyEvery int
	// Windows is the sliding-window sweep (the paper uses 10..40 in
	// steps of 5).
	Windows []int
	// Outliers is the n sweep of Fig. 9 (the paper uses 1..8).
	Outliers []int
}

// PaperScale reproduces the paper's setup: 53 sensors, 1000 s of
// simulated time, four seeds. The sampling period is 15 s rather than
// the Intel lab's 31 s so the run spans 66 epochs and the full w ∈
// [10, 40] sweep differentiates — at 31 s the paper's own 1000 s runs
// hold at most 33 samples, so a 40-sample window can never fill (which
// may explain their missing Global-KNN w=40 data point).
func PaperScale() Scale {
	return Scale{
		Nodes:         53,
		Period:        15 * time.Second,
		Duration:      1000 * time.Second,
		Seeds:         []uint64{1, 2, 3, 4},
		AccuracyEvery: 5,
		Windows:       []int{10, 15, 20, 25, 30, 35, 40},
		Outliers:      []int{1, 2, 3, 4, 5, 6, 7, 8},
	}
}

// QuickScale is a reduced setup for benchmarks and CI: same network and
// sampling cadence as PaperScale, one seed, coarser sweeps, and a run
// just long enough (50 epochs) that even the 40-sample window turns
// over.
func QuickScale() Scale {
	return Scale{
		Nodes:         53,
		Period:        15 * time.Second,
		Duration:      750 * time.Second,
		Seeds:         []uint64{1},
		AccuracyEvery: 4,
		Windows:       []int{10, 20, 40},
		Outliers:      []int{1, 4, 8},
	}
}

func (s Scale) base(algo Algorithm) Config {
	return Config{
		Algo:          algo,
		Nodes:         s.Nodes,
		Period:        s.Period,
		Duration:      s.Duration,
		Seeds:         s.Seeds,
		LossProb:      s.LossProb,
		AccuracyEvery: s.AccuracyEvery,
	}
}

// SeriesPoint is one x-position of one curve, carrying every metric the
// paper plots so a single sweep feeds several figures.
type SeriesPoint struct {
	X        float64
	TxJ      float64 // avg TX J per node per round
	RxJ      float64 // avg RX J per node per round
	AvgJ     float64 // total J per node over the run
	MinJ     float64
	MaxJ     float64
	Accuracy float64
}

// Series is one labeled curve.
type Series struct {
	Label  string
	Points []SeriesPoint
}

// Figure is a regenerated table/figure: a set of curves over one x-axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Series []Series
}

// TSV renders the figure as tab-separated columns: one row per x value,
// one column group per series.
func (f Figure) TSV(metric func(SeriesPoint) float64, metricName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s (%s)\n", f.ID, f.Title, metricName)
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		b.WriteString("\t" + s.Label)
	}
	b.WriteByte('\n')

	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.6g", metric(p))
				}
			}
			b.WriteString("\t" + cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Session memoizes experiment cells across figures (Figs. 4–6 share the
// same runs; the centralized curve is shared by Figs. 7–9). It is safe
// for concurrent use: the figure builders fan their sweep cells out in
// parallel, and a cell requested by several figures at once is executed
// exactly once (per-cell single-flight) with every requester blocking on
// the same run.
type Session struct {
	mu    sync.Mutex
	cache map[string]*sessionCell

	// Observer, if set, is called after every cell completes (progress
	// reporting in cmd/expfig). Calls are serialized, one per distinct
	// cell, but their order follows completion and is not deterministic
	// under parallel execution. Set it before the first figure request.
	Observer func(cfg Config, res Result)
	obsMu    sync.Mutex
}

// sessionCell is the single-flight slot for one experiment cell.
type sessionCell struct {
	once sync.Once
	res  Result
	err  error
}

// NewSession returns an empty memoizing session.
func NewSession() *Session {
	return &Session{cache: make(map[string]*sessionCell)}
}

// cacheKey identifies a cell by every field that affects its results;
// Workers is deliberately absent (it only shapes scheduling).
func cacheKey(cfg Config) string {
	return fmt.Sprintf("%v|%s|k%d|n%d|w%d|h%d|%d|%v|%v|%v|%v|%v|acc%d|wu%d|u%t",
		cfg.Algo, cfg.Ranker, cfg.K, cfg.N, cfg.WindowSamples, cfg.HopLimit,
		cfg.Nodes, cfg.Period, cfg.Duration, cfg.Seeds, cfg.LossProb,
		cfg.LocationWeight, cfg.AccuracyEvery, cfg.WarmupRounds, cfg.PerNeighborFrames)
}

func (s *Session) run(cfg Config) (Result, error) {
	cfg.applyDefaults()
	key := cacheKey(cfg)
	s.mu.Lock()
	cell, ok := s.cache[key]
	if !ok {
		cell = &sessionCell{}
		s.cache[key] = cell
	}
	s.mu.Unlock()
	cell.once.Do(func() {
		cell.res, cell.err = Run(cfg)
		if cell.err == nil && s.Observer != nil {
			s.obsMu.Lock()
			s.Observer(cfg, cell.res)
			s.obsMu.Unlock()
		}
	})
	return cell.res, cell.err
}

func point(x float64, res Result) SeriesPoint {
	return SeriesPoint{
		X:        x,
		TxJ:      res.AvgTxJPerRound,
		RxJ:      res.AvgRxJPerRound,
		AvgJ:     res.AvgTotalJ,
		MinJ:     res.MinTotalJ,
		MaxJ:     res.MaxTotalJ,
		Accuracy: res.Accuracy,
	}
}

// windowSweep runs one algorithm configuration across the window sweep,
// all cells concurrently. The series is assembled in window order, so the
// output is independent of scheduling.
func (s *Session) windowSweep(scale Scale, label string, mutate func(*Config)) (Series, error) {
	points := make([]SeriesPoint, len(scale.Windows))
	err := forEachIndex(len(scale.Windows), func(i int) error {
		w := scale.Windows[i]
		cfg := scale.base(AlgoGlobal)
		mutate(&cfg)
		cfg.WindowSamples = w
		res, err := s.run(cfg)
		if err != nil {
			return fmt.Errorf("%s w=%d: %w", label, w, err)
		}
		points[i] = point(float64(w), res)
		return nil
	})
	if err != nil {
		return Series{}, err
	}
	return Series{Label: label, Points: points}, nil
}

// globalSweepSeries returns the three curves of Figs. 4–6: Centralized,
// Global-NN and Global-KNN with n=4, k=4. The curves — and their cells —
// compute concurrently.
func (s *Session) globalSweepSeries(scale Scale) ([]Series, error) {
	specs := []struct {
		label  string
		mutate func(*Config)
	}{
		{"Centralized", func(c *Config) { c.Algo = AlgoCentralized; c.Ranker = RankNN; c.N = 4 }},
		{"Global-NN", func(c *Config) { c.Algo = AlgoGlobal; c.Ranker = RankNN; c.N = 4 }},
		{"Global-KNN", func(c *Config) { c.Algo = AlgoGlobal; c.Ranker = RankKNN; c.K = 4; c.N = 4 }},
	}
	out := make([]Series, len(specs))
	err := forEachIndex(len(specs), func(i int) error {
		series, err := s.windowSweep(scale, specs[i].label, specs[i].mutate)
		if err != nil {
			return err
		}
		out[i] = series
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig4 regenerates Figure 4: average TX and RX energy per node per
// sampling period vs w (n=4, k=4) for global outlier detection.
func (s *Session) Fig4(scale Scale) (Figure, error) {
	series, err := s.globalSweepSeries(scale)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig4",
		Title:  "Avg TX/RX energy per node per round vs w (global, n=4, k=4)",
		XLabel: "w",
		Series: series,
	}, nil
}

// Fig5 regenerates Figure 5: average, minimum and maximum total energy
// consumed by a node vs w for global outlier detection.
func (s *Session) Fig5(scale Scale) (Figure, error) {
	series, err := s.globalSweepSeries(scale)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig5",
		Title:  "Avg/min/max total energy per node vs w (global)",
		XLabel: "w",
		Series: series,
	}, nil
}

// Fig6 regenerates Figure 6: min/avg/max energy normalized by the
// average, at w ∈ {10, 20, 40}.
func (s *Session) Fig6(scale Scale) (Figure, error) {
	series, err := s.globalSweepSeries(scale)
	if err != nil {
		return Figure{}, err
	}
	var out []Series
	for _, ser := range series {
		norm := Series{Label: ser.Label}
		for _, p := range ser.Points {
			w := int(p.X)
			if w != 10 && w != 20 && w != 40 {
				continue
			}
			if p.AvgJ > 0 {
				p.MinJ /= p.AvgJ
				p.MaxJ /= p.AvgJ
				p.AvgJ = 1
			}
			norm.Points = append(norm.Points, p)
		}
		out = append(out, norm)
	}
	return Figure{
		ID:     "fig6",
		Title:  "Normalized min/avg/max node energy (global), w ∈ {10,20,40}",
		XLabel: "w",
		Series: out,
	}, nil
}

// semiSweep returns the centralized curve plus semi-global curves for
// ε ∈ {1,2,3} with the given ranker, across the window sweep; all four
// curves compute concurrently.
func (s *Session) semiSweep(scale Scale, ranker RankerKind) ([]Series, error) {
	out := make([]Series, 4)
	err := forEachIndex(4, func(i int) error {
		var (
			series Series
			err    error
		)
		if i == 0 {
			series, err = s.windowSweep(scale, "Centralized",
				func(c *Config) { c.Algo = AlgoCentralized; c.Ranker = RankNN; c.N = 4 })
		} else {
			eps := i
			series, err = s.windowSweep(scale, fmt.Sprintf("Semi-global, epsilon=%d", eps),
				func(c *Config) {
					c.Algo = AlgoSemiGlobal
					c.Ranker = ranker
					c.K = 4
					c.N = 4
					c.HopLimit = eps
				})
		}
		if err != nil {
			return err
		}
		out[i] = series
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig7 regenerates Figure 7: TX/RX energy per round vs w for semi-global
// NN detection, ε ∈ {1,2,3}, against the centralized baseline.
func (s *Session) Fig7(scale Scale) (Figure, error) {
	series, err := s.semiSweep(scale, RankNN)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig7",
		Title:  "Avg TX/RX energy per node per round vs w (semi-global NN, n=4)",
		XLabel: "w",
		Series: series,
	}, nil
}

// Fig8 regenerates Figure 8: the same sweep with KNN (k=4).
func (s *Session) Fig8(scale Scale) (Figure, error) {
	series, err := s.semiSweep(scale, RankKNN)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig8",
		Title:  "Avg TX/RX energy per node per round vs w (semi-global KNN, n=4, k=4)",
		XLabel: "w",
		Series: series,
	}, nil
}

// Fig9 regenerates Figure 9: TX/RX energy per round vs the number of
// reported outliers n (w=20, k=4) for semi-global KNN detection.
func (s *Session) Fig9(scale Scale) (Figure, error) {
	nSweep := func(label string, mutate func(*Config)) (Series, error) {
		points := make([]SeriesPoint, len(scale.Outliers))
		err := forEachIndex(len(scale.Outliers), func(i int) error {
			n := scale.Outliers[i]
			cfg := scale.base(AlgoGlobal)
			mutate(&cfg)
			cfg.N = n
			cfg.WindowSamples = 20
			res, err := s.run(cfg)
			if err != nil {
				return fmt.Errorf("%s n=%d: %w", label, n, err)
			}
			points[i] = point(float64(n), res)
			return nil
		})
		if err != nil {
			return Series{}, err
		}
		return Series{Label: label, Points: points}, nil
	}
	series := make([]Series, 4)
	err := forEachIndex(4, func(i int) error {
		var (
			ser Series
			err error
		)
		if i == 0 {
			ser, err = nSweep("Centralized", func(c *Config) { c.Algo = AlgoCentralized; c.Ranker = RankNN })
		} else {
			eps := i
			ser, err = nSweep(fmt.Sprintf("Semi-global, epsilon=%d", eps), func(c *Config) {
				c.Algo = AlgoSemiGlobal
				c.Ranker = RankKNN
				c.K = 4
				c.HopLimit = eps
			})
		}
		if err != nil {
			return err
		}
		series[i] = ser
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig9",
		Title:  "Avg TX/RX energy per node per round vs n (semi-global KNN, w=20, k=4)",
		XLabel: "n",
		Series: series,
	}, nil
}

// AccuracyTable regenerates the §7.1 accuracy claim: the fraction of
// sensor-rounds whose estimate equals ground truth, per algorithm, at
// w=20, n=4.
func (s *Session) AccuracyTable(scale Scale) (Figure, error) {
	specs := []struct {
		label  string
		mutate func(*Config)
	}{
		{"Global-NN", func(c *Config) { c.Algo = AlgoGlobal; c.Ranker = RankNN }},
		{"Global-KNN", func(c *Config) { c.Algo = AlgoGlobal; c.Ranker = RankKNN; c.K = 4 }},
		{"Semi-global NN eps=2", func(c *Config) { c.Algo = AlgoSemiGlobal; c.Ranker = RankNN; c.HopLimit = 2 }},
		{"Centralized", func(c *Config) { c.Algo = AlgoCentralized; c.Ranker = RankNN }},
	}
	fig := Figure{
		ID:     "accuracy",
		Title:  "Detection accuracy (§7.1 reports ≈0.99 for the distributed algorithms)",
		XLabel: "w",
	}
	fig.Series = make([]Series, len(specs))
	err := forEachIndex(len(specs), func(i int) error {
		cfg := scale.base(AlgoGlobal)
		specs[i].mutate(&cfg)
		cfg.N = 4
		cfg.WindowSamples = 20
		res, err := s.run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", specs[i].label, err)
		}
		fig.Series[i] = Series{
			Label:  specs[i].label,
			Points: []SeriesPoint{point(20, res)},
		}
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	return fig, nil
}

// ScaleComparison regenerates the §7.1 network-size observation: the
// distributed algorithm's advantage over centralization grows from the
// 32-node to the 53-node network.
func (s *Session) ScaleComparison(scale Scale) (Figure, error) {
	fig := Figure{
		ID:     "scale",
		Title:  "Distributed advantage vs network size (TX J per node per round, w=20, n=4)",
		XLabel: "nodes",
	}
	labels := []string{"Centralized", "Global-NN"}
	sizes := []int{32, 53}
	fig.Series = make([]Series, len(labels))
	for i, label := range labels {
		fig.Series[i] = Series{Label: label, Points: make([]SeriesPoint, len(sizes))}
	}
	err := forEachIndex(len(labels)*len(sizes), func(i int) error {
		label, nodes := labels[i/len(sizes)], sizes[i%len(sizes)]
		cfg := scale.base(AlgoGlobal)
		cfg.Nodes = nodes
		cfg.N = 4
		cfg.WindowSamples = 20
		cfg.Ranker = RankNN
		if label == "Centralized" {
			cfg.Algo = AlgoCentralized
		}
		res, err := s.run(cfg)
		if err != nil {
			return fmt.Errorf("%s nodes=%d: %w", label, nodes, err)
		}
		fig.Series[i/len(sizes)].Points[i%len(sizes)] = point(float64(nodes), res)
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	return fig, nil
}

// Metrics available for Figure.TSV rendering.
var (
	MetricTx       = func(p SeriesPoint) float64 { return p.TxJ }
	MetricRx       = func(p SeriesPoint) float64 { return p.RxJ }
	MetricAvgJ     = func(p SeriesPoint) float64 { return p.AvgJ }
	MetricMinJ     = func(p SeriesPoint) float64 { return p.MinJ }
	MetricMaxJ     = func(p SeriesPoint) float64 { return p.MaxJ }
	MetricAccuracy = func(p SeriesPoint) float64 { return p.Accuracy }
)
