package runner

import (
	"runtime"
	"sync"
)

// The experiment engine runs one simulation per (cell, seed) pair, and a
// figure session fans many cells out at once. Cell goroutines are cheap
// coordinators; only seed simulations do CPU work, so the pool bounds the
// number of simulations executing at any moment process-wide. That keeps
// total parallelism at the worker count no matter how many figures or
// sweeps are in flight, instead of multiplying per-call limits.
var seedPool struct {
	mu   sync.Mutex
	size int
	sem  chan struct{}
}

// sharedSlots returns the process-wide simulation pool, sized
// GOMAXPROCS by default.
func sharedSlots() chan struct{} {
	seedPool.mu.Lock()
	defer seedPool.mu.Unlock()
	if seedPool.sem == nil {
		seedPool.size = runtime.GOMAXPROCS(0)
		seedPool.sem = make(chan struct{}, seedPool.size)
	}
	return seedPool.sem
}

// DefaultWorkers resizes the shared pool used by Run when Config.Workers
// is zero (the -workers flag of cmd/expfig and cmd/innetsim). n < 1 keeps
// the current size. Runs already in flight finish under the pool they
// started with.
func DefaultWorkers(n int) {
	if n < 1 {
		return
	}
	seedPool.mu.Lock()
	defer seedPool.mu.Unlock()
	if seedPool.sem == nil || seedPool.size != n {
		seedPool.size = n
		seedPool.sem = make(chan struct{}, n)
	}
}

// forEachIndex runs fn(0..n-1) on its own goroutines and returns the
// lowest-index error, making fan-out failures deterministic. It is the
// coordination layer for sweeps: the goroutines it spawns do no
// simulation work themselves and are throttled transitively by the seed
// pool inside Run.
func forEachIndex(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
