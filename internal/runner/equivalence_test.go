package runner

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"innet/internal/baseline"
	"innet/internal/core"
	"innet/internal/wsn"
)

// randomConnectedNetwork builds a SyncNetwork over a random geometric
// topology: positions uniform in a square, radio links within range,
// retried with a widening radius until connected.
func randomConnectedNetwork(t *testing.T, r *rand.Rand, nodes int, det core.Config) (*core.SyncNetwork, *wsn.Topology) {
	t.Helper()
	for radius := 0.35; ; radius += 0.1 {
		positions := make(map[core.NodeID]wsn.Point2, nodes)
		for i := 0; i < nodes; i++ {
			positions[core.NodeID(i+1)] = wsn.Point2{X: r.Float64(), Y: r.Float64()}
		}
		topo := wsn.NewTopology(positions, radius)
		if !topo.Connected() {
			if radius > 2 {
				t.Fatal("could not draw a connected topology")
			}
			continue
		}
		net := core.NewSyncNetwork()
		for _, id := range topo.Nodes() {
			cfg := det
			cfg.Node = id
			d, err := core.NewDetector(cfg)
			if err != nil {
				t.Fatal(err)
			}
			net.Add(d)
		}
		for _, a := range topo.Nodes() {
			for _, b := range topo.Neighbors(a) {
				if a < b {
					net.Connect(a, b)
				}
			}
		}
		return net, topo
	}
}

// TestGlobalEquivalentToCentralizedBaseline is the paper's core
// correctness claim (§5, Lemma 3) as a property test: for random
// topologies, random data, and sliding-window eviction, once the network
// quiesces every sensor's in-network global outlier estimate equals the
// centralized baseline's answer over the union of the current windows.
func TestGlobalEquivalentToCentralizedBaseline(t *testing.T) {
	const (
		epochs = 12
		period = 10 * time.Second
		window = 5*10*time.Second - 5*time.Second // last 5 epochs
	)
	rankers := []core.Ranker{core.NN(), core.KNN{K: 4}}
	for seed := uint64(1); seed <= 6; seed++ {
		for ri, ranker := range rankers {
			t.Run(fmt.Sprintf("seed%d/%s", seed, ranker.Name()), func(t *testing.T) {
				r := rand.New(rand.NewPCG(seed, uint64(ri)^0xfeed))
				nodes := 6 + r.IntN(10)
				n := 1 + r.IntN(4)
				net, topo := randomConnectedNetwork(t, r, nodes, core.Config{
					Ranker: ranker,
					N:      n,
					Window: window,
				})
				for e := 0; e < epochs; e++ {
					at := time.Duration(e) * period
					net.AdvanceTo(at)
					for _, id := range topo.Nodes() {
						// A heavy-tailed value makes real outliers.
						v := r.NormFloat64()
						if r.IntN(12) == 0 {
							v += 40
						}
						net.Observe(id, at, v, r.Float64(), r.Float64())
					}
					if _, err := net.Settle(1_000_000); err != nil {
						t.Fatal(err)
					}
				}

				// The centralized baseline's answer over every sensor's
				// current window.
				windows := make([][]core.Point, 0, nodes)
				for _, id := range net.Nodes() {
					windows = append(windows, net.Detector(id).OwnPoints().Points())
				}
				truth := baseline.Compute(ranker, n, windows...)
				truthIDs := core.NewSet(truth...)

				for _, id := range net.Nodes() {
					est := core.NewSet(net.Detector(id).Estimate()...)
					if !est.EqualIDs(truthIDs) {
						t.Fatalf("node %d estimates %v; centralized baseline %v (nodes=%d n=%d)",
							id, est, truthIDs, nodes, n)
					}
				}
			})
		}
	}
}
