// Package dataset generates sensor data streams equivalent to the Intel
// Berkeley Research Lab traces the paper evaluates on (the original
// download is unavailable offline; DESIGN.md documents the substitution).
// The generated streams keep the properties the detection workload
// exercises:
//
//   - the paper's schema per reading: sensor ID, epoch, timestamp,
//     temperature, and the sensor's x/y coordinates (which enter the
//     ranking function as features);
//   - spatial correlation: a smooth temperature field over a 53-node,
//     lab-like layout on a 50 m × 50 m terrain, connected at the paper's
//     6.77 m radio range;
//   - temporal correlation: a diurnal drift plus per-sensor AR(1) noise;
//   - rare ground-truth anomalies: transient spikes and stuck-at-rail
//     faults, the classic failure modes of the Intel deployment; and
//   - missing readings, imputed with the sliding-window mean exactly as
//     §7.1 describes.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"innet/internal/core"
	"innet/internal/wsn"
)

// FaultKind labels the ground-truth anomaly class of a sample.
type FaultKind uint8

// Fault kinds.
const (
	FaultNone FaultKind = iota
	FaultSpike
	FaultStuck
)

func (f FaultKind) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultSpike:
		return "spike"
	case FaultStuck:
		return "stuck"
	default:
		return fmt.Sprintf("fault(%d)", uint8(f))
	}
}

// Sample is one sensor reading in the Intel lab schema.
type Sample struct {
	Node  core.NodeID
	Epoch uint32
	At    time.Duration
	Temp  float64
	X, Y  float64
	// Missing marks a reading that was lost in collection and imputed
	// with the sliding-window mean (§7.1).
	Missing bool
	// Fault is the injected ground-truth anomaly class, FaultNone for
	// clean readings.
	Fault FaultKind
}

// Features returns the feature vector the ranking functions consume:
// temperature plus the location coordinates weighted by locWeight (the
// paper feeds coordinates in directly, locWeight = 1).
func (s Sample) Features(locWeight float64) []float64 {
	return []float64{s.Temp, s.X * locWeight, s.Y * locWeight}
}

// Config parameterizes stream generation. The zero value of any field
// takes the defaults of the paper's setup.
type Config struct {
	Nodes    int           // sensor count; default 53
	Seed     uint64        // PRNG seed
	Period   time.Duration // sampling period; default 15 s
	Duration time.Duration // stream length; default 1000 s (paper run)

	MissingProb float64 // P(reading lost); default 0.03
	SpikeProb   float64 // P(transient spike per reading); default 0.008
	StuckProb   float64 // P(entering a stuck-at run per reading); default 0.0015

	Terrain    float64 // terrain edge in meters; default 50
	RadioRange float64 // connectivity check range; default 6.77

	// ImputeWindow is how many preceding readings the missing-value
	// imputation averages over; default 5.
	ImputeWindow int
}

func (c *Config) applyDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 53
	}
	if c.Period == 0 {
		c.Period = 15 * time.Second
	}
	if c.Duration == 0 {
		c.Duration = 1000 * time.Second
	}
	if c.MissingProb == 0 {
		c.MissingProb = 0.03
	}
	if c.SpikeProb == 0 {
		c.SpikeProb = 0.008
	}
	if c.StuckProb == 0 {
		c.StuckProb = 0.0015
	}
	if c.Terrain == 0 {
		c.Terrain = 50
	}
	if c.RadioRange == 0 {
		c.RadioRange = 6.77
	}
	if c.ImputeWindow == 0 {
		c.ImputeWindow = 5
	}
}

func (c Config) validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("dataset: Nodes must be positive, got %d", c.Nodes)
	}
	if c.Period <= 0 || c.Duration <= 0 {
		return errors.New("dataset: Period and Duration must be positive")
	}
	for name, p := range map[string]float64{
		"MissingProb": c.MissingProb, "SpikeProb": c.SpikeProb, "StuckProb": c.StuckProb,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("dataset: %s out of [0,1]: %v", name, p)
		}
	}
	return nil
}

// Stream is a generated set of per-sensor sample series over a fixed
// layout.
type Stream struct {
	cfg       Config
	positions map[core.NodeID]wsn.Point2
	byNode    map[core.NodeID][]Sample
	epochs    int
}

// Generate builds the full stream for the given configuration. The same
// configuration always yields the same stream.
func Generate(cfg Config) (*Stream, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5851f42d4c957f2d))
	positions := LabLayout(cfg.Nodes, cfg.Terrain, rng)

	st := &Stream{
		cfg:       cfg,
		positions: positions,
		byNode:    make(map[core.NodeID][]Sample, cfg.Nodes),
		epochs:    int(cfg.Duration/cfg.Period) + 1,
	}

	// Per-node state for the temporal model.
	type nodeState struct {
		ar1        float64
		stuckLeft  int
		stuckValue float64
	}
	states := make(map[core.NodeID]*nodeState, cfg.Nodes)
	ids := st.Nodes()
	for _, id := range ids {
		states[id] = &nodeState{ar1: rng.NormFloat64() * 0.2}
	}
	phase := rng.Float64() * 86400

	for epoch := 0; epoch < st.epochs; epoch++ {
		at := time.Duration(epoch) * cfg.Period
		tSec := at.Seconds()
		diurnal := 19 + 3*math.Sin(2*math.Pi*(tSec+phase)/86400)
		for _, id := range ids {
			state := states[id]
			pos := positions[id]
			state.ar1 = 0.95*state.ar1 + 0.08*rng.NormFloat64()

			s := Sample{
				Node:  id,
				Epoch: uint32(epoch),
				At:    at,
				X:     pos.X,
				Y:     pos.Y,
				Temp:  diurnal + spatialField(pos) + state.ar1,
			}

			// Fault injection.
			switch {
			case state.stuckLeft > 0:
				state.stuckLeft--
				s.Temp = state.stuckValue
				s.Fault = FaultStuck
			case rng.Float64() < cfg.StuckProb:
				state.stuckLeft = 2 + rng.IntN(6)
				state.stuckValue = 45 + rng.Float64()*10 // sensor rail
				s.Temp = state.stuckValue
				s.Fault = FaultStuck
			case rng.Float64() < cfg.SpikeProb:
				mag := 4 + rng.Float64()*8
				if rng.Float64() < 0.5 {
					mag = -mag
				}
				s.Temp += mag
				s.Fault = FaultSpike
			}

			// Collection loss + sliding-window-mean imputation (§7.1).
			if rng.Float64() < cfg.MissingProb {
				s.Missing = true
				s.Fault = FaultNone
				s.Temp = st.imputed(id, cfg.ImputeWindow, diurnal+spatialField(pos))
			}

			st.byNode[id] = append(st.byNode[id], s)
		}
	}
	return st, nil
}

// imputed returns the mean of the last w readings of the node, falling
// back to the model baseline when the stream has no history yet.
func (st *Stream) imputed(id core.NodeID, w int, fallback float64) float64 {
	hist := st.byNode[id]
	if len(hist) == 0 {
		return fallback
	}
	if len(hist) > w {
		hist = hist[len(hist)-w:]
	}
	var sum float64
	for _, s := range hist {
		sum += s.Temp
	}
	return sum / float64(len(hist))
}

// spatialField is the smooth spatially correlated temperature offset:
// nearby sensors read similar values, far corners differ by a few
// degrees, as in the lab traces.
func spatialField(p wsn.Point2) float64 {
	return 0.06*p.X + 0.03*p.Y + 1.2*math.Sin(p.X/12)*math.Cos(p.Y/9)
}

// Nodes returns the sensor IDs, sorted.
func (st *Stream) Nodes() []core.NodeID {
	ids := make([]core.NodeID, 0, len(st.positions))
	for id := range st.positions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Positions returns a copy of the sensor layout.
func (st *Stream) Positions() map[core.NodeID]wsn.Point2 {
	out := make(map[core.NodeID]wsn.Point2, len(st.positions))
	for id, p := range st.positions {
		out[id] = p
	}
	return out
}

// Epochs returns the number of sampling rounds in the stream.
func (st *Stream) Epochs() int { return st.epochs }

// Period returns the sampling period.
func (st *Stream) Period() time.Duration { return st.cfg.Period }

// Samples returns the full series of one sensor (read-only).
func (st *Stream) Samples(id core.NodeID) []Sample { return st.byNode[id] }

// At returns one sensor's reading at the given epoch.
func (st *Stream) At(id core.NodeID, epoch int) (Sample, bool) {
	series := st.byNode[id]
	if epoch < 0 || epoch >= len(series) {
		return Sample{}, false
	}
	return series[epoch], true
}

// FaultCount returns the number of injected anomalous readings.
func (st *Stream) FaultCount() int {
	count := 0
	for _, series := range st.byNode {
		for _, s := range series {
			if s.Fault != FaultNone {
				count++
			}
		}
	}
	return count
}

// MissingCount returns the number of lost-and-imputed readings.
func (st *Stream) MissingCount() int {
	count := 0
	for _, series := range st.byNode {
		for _, s := range series {
			if s.Missing {
				count++
			}
		}
	}
	return count
}

// LabLayout places n sensors in a lab-like serpentine grid over a
// terrain×terrain area: 5 m aisles (inside the 6.77 m radio range) with
// a little deterministic jitter, so the disc graph at the paper's range
// is always connected and multi-hop, like the Intel lab's 53-mote floor
// plan. The layout is deterministic for a given rng state.
func LabLayout(n int, terrain float64, rng *rand.Rand) map[core.NodeID]wsn.Point2 {
	const spacing = 5.0
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	width := float64(cols-1) * spacing
	height := float64(rows-1) * spacing
	offX := (terrain - width) / 2
	offY := (terrain - height) / 2

	out := make(map[core.NodeID]wsn.Point2, n)
	for i := 0; i < n; i++ {
		row := i / cols
		col := i % cols
		if row%2 == 1 {
			col = cols - 1 - col // serpentine, like lab aisles
		}
		// Jitter small enough that adjacent nodes stay in range:
		// worst case √((5+1.2)² + 1.2²) ≈ 6.3 < 6.77.
		jx := (rng.Float64() - 0.5) * 1.2
		jy := (rng.Float64() - 0.5) * 1.2
		out[core.NodeID(i+1)] = wsn.Point2{
			X: offX + float64(col)*spacing + jx,
			Y: offY + float64(row)*spacing + jy,
		}
	}
	return out
}
