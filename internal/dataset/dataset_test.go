package dataset

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"innet/internal/wsn"
)

func TestGenerateDefaults(t *testing.T) {
	st, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st.Nodes()); got != 53 {
		t.Fatalf("nodes = %d, want 53", got)
	}
	wantEpochs := int(1000/15) + 1
	if st.Epochs() != wantEpochs {
		t.Fatalf("epochs = %d, want %d", st.Epochs(), wantEpochs)
	}
	for _, id := range st.Nodes() {
		if got := len(st.Samples(id)); got != wantEpochs {
			t.Fatalf("node %d has %d samples", id, got)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Nodes: -1}); err == nil {
		t.Fatal("negative Nodes must fail")
	}
	if _, err := Generate(Config{MissingProb: 1.5}); err == nil {
		t.Fatal("probability out of range must fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range a.Nodes() {
		sa, sb := a.Samples(id), b.Samples(id)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("node %d epoch %d differs: %+v vs %+v", id, i, sa[i], sb[i])
			}
		}
	}
	c, err := Generate(Config{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if c.Samples(1)[5].Temp == a.Samples(1)[5].Temp {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestLayoutConnectedAtPaperRange(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed))
		pos := LabLayout(53, 50, rng)
		topo := wsn.NewTopology(pos, 6.77)
		if !topo.Connected() {
			t.Fatalf("seed %d: layout disconnected at 6.77 m", seed)
		}
		if topo.Diameter() < 3 {
			t.Fatalf("seed %d: diameter %d too small to be multi-hop", seed, topo.Diameter())
		}
		// Everything inside the terrain.
		for id, p := range pos {
			if p.X < 0 || p.X > 50 || p.Y < 0 || p.Y > 50 {
				t.Fatalf("node %d at %+v escapes the 50 m terrain", id, p)
			}
		}
	}
}

func TestSpatialCorrelation(t *testing.T) {
	st, err := Generate(Config{Seed: 7, SpikeProb: 1e-12, StuckProb: 1e-12, MissingProb: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	pos := st.Positions()
	ids := st.Nodes()
	// Average |ΔT| between 5 m neighbors must be well below the
	// average |ΔT| between far-apart pairs.
	var nearSum, farSum float64
	var nearN, farN int
	for _, a := range ids {
		for _, b := range ids {
			if a >= b {
				continue
			}
			d := pos[a].Dist(pos[b])
			dt := math.Abs(st.Samples(a)[10].Temp - st.Samples(b)[10].Temp)
			if d < 8 {
				nearSum += dt
				nearN++
			} else if d > 30 {
				farSum += dt
				farN++
			}
		}
	}
	if nearN == 0 || farN == 0 {
		t.Fatal("degenerate layout")
	}
	if nearSum/float64(nearN) >= farSum/float64(farN) {
		t.Fatalf("no spatial correlation: near %v, far %v",
			nearSum/float64(nearN), farSum/float64(farN))
	}
}

func TestTemporalCorrelation(t *testing.T) {
	st, err := Generate(Config{Seed: 9, SpikeProb: 1e-12, StuckProb: 1e-12, MissingProb: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	series := st.Samples(5)
	var stepSum float64
	for i := 1; i < len(series); i++ {
		stepSum += math.Abs(series[i].Temp - series[i-1].Temp)
	}
	avgStep := stepSum / float64(len(series)-1)
	if avgStep > 0.5 {
		t.Fatalf("consecutive readings jump by %v°C on average; stream is not smooth", avgStep)
	}
}

func TestFaultInjection(t *testing.T) {
	st, err := Generate(Config{Seed: 11, SpikeProb: 0.05, StuckProb: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if st.FaultCount() == 0 {
		t.Fatal("no faults injected at elevated rates")
	}
	spikes, stucks := 0, 0
	for _, id := range st.Nodes() {
		for _, s := range st.Samples(id) {
			switch s.Fault {
			case FaultSpike:
				spikes++
				if math.Abs(s.Temp) < 1 {
					t.Fatalf("spike with near-zero magnitude: %+v", s)
				}
			case FaultStuck:
				stucks++
				if s.Temp < 40 {
					t.Fatalf("stuck-at fault not at rail: %+v", s)
				}
			}
		}
	}
	if spikes == 0 || stucks == 0 {
		t.Fatalf("fault mix missing a class: %d spikes, %d stuck", spikes, stucks)
	}
}

func TestMissingImputation(t *testing.T) {
	st, err := Generate(Config{Seed: 13, MissingProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if st.MissingCount() == 0 {
		t.Fatal("no readings went missing at 20%")
	}
	for _, id := range st.Nodes() {
		series := st.Samples(id)
		for i, s := range series {
			if !s.Missing || i < 5 {
				continue
			}
			// The imputed value is the window mean of the previous
			// five stored readings.
			var want float64
			for _, prev := range series[i-5 : i] {
				want += prev.Temp
			}
			want /= 5
			if math.Abs(s.Temp-want) > 1e-9 {
				t.Fatalf("node %d epoch %d: imputed %v, want window mean %v",
					id, i, s.Temp, want)
			}
		}
	}
}

func TestFeatures(t *testing.T) {
	s := Sample{Temp: 20, X: 3, Y: 4}
	got := s.Features(0.5)
	if got[0] != 20 || got[1] != 1.5 || got[2] != 2 {
		t.Fatalf("Features = %v", got)
	}
}

func TestAtBounds(t *testing.T) {
	st, err := Generate(Config{Seed: 1, Nodes: 3, Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.At(1, 0); !ok {
		t.Fatal("epoch 0 must exist")
	}
	if _, ok := st.At(1, st.Epochs()); ok {
		t.Fatal("epoch past the end must not exist")
	}
	if _, ok := st.At(1, -1); ok {
		t.Fatal("negative epoch must not exist")
	}
}

func TestFaultKindString(t *testing.T) {
	if FaultNone.String() != "none" || FaultSpike.String() != "spike" || FaultStuck.String() != "stuck" {
		t.Fatal("FaultKind strings")
	}
	if FaultKind(9).String() == "" {
		t.Fatal("unknown kind must still format")
	}
}

// Property: generated temperatures stay within physical bounds for any
// seed (no runaway AR(1) or fault arithmetic).
func TestTemperatureBounds(t *testing.T) {
	f := func(seed uint64) bool {
		st, err := Generate(Config{Seed: seed, Nodes: 10, Duration: 5 * time.Minute})
		if err != nil {
			return false
		}
		for _, id := range st.Nodes() {
			for _, s := range st.Samples(id) {
				if s.Temp < -20 || s.Temp > 70 || math.IsNaN(s.Temp) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
