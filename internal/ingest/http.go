package ingest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"innet/internal/core"
)

// HTTP wire types. Timestamps travel as integer milliseconds of data
// time, matching the wire codec's birth encoding.

// WireReading is one reading in a POST /v1/observations batch.
type WireReading struct {
	Sensor uint16    `json:"sensor"`
	AtMS   int64     `json:"at_ms"`
	Values []float64 `json:"values"`
}

// WireBatch is the POST /v1/observations request body.
type WireBatch struct {
	Readings []WireReading `json:"readings"`
}

// WireRejection explains one reading the batch endpoint did not admit.
type WireRejection struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// WireBatchResult is the POST /v1/observations response body.
type WireBatchResult struct {
	Accepted int             `json:"accepted"`
	Rejected []WireRejection `json:"rejected,omitempty"`
}

// WireOutlier is one estimated outlier on the query endpoint.
type WireOutlier struct {
	Sensor uint16    `json:"sensor"`
	Seq    uint32    `json:"seq"`
	AtMS   int64     `json:"at_ms"`
	Values []float64 `json:"values"`
}

// WireEstimate is the GET /v1/outliers response body: the estimate as
// seen by one sensor (after a quiescent exchange all sensors running the
// global algorithm agree). With ?window=1 it also carries the fleet's
// window union — the exact dataset the estimate ranks — so an external
// evaluator can recompute the answer it should have gotten.
type WireEstimate struct {
	Sensor   uint16        `json:"sensor"`
	Outliers []WireOutlier `json:"outliers"`
	Window   []WireOutlier `json:"window,omitempty"`
}

// wirePoints converts core points to their wire form.
func wirePoints(pts []core.Point) []WireOutlier {
	out := make([]WireOutlier, 0, len(pts))
	for _, p := range pts {
		out = append(out, WireOutlier{
			Sensor: uint16(p.ID.Origin),
			Seq:    p.ID.Seq,
			AtMS:   p.Birth.Milliseconds(),
			Values: p.Value,
		})
	}
	return out
}

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/observations   ingest a JSON batch of readings
//	GET    /v1/outliers       current estimate (?sensor=ID, default lowest;
//	                          &window=1 adds the fleet's window union)
//	POST   /v1/flush          barrier: block until ingested == observed
//	                          and the mesh is quiescent
//	GET    /v1/sensors        attached sensor IDs and queue depths
//	POST   /v1/sensors/{id}   join a sensor explicitly
//	DELETE /v1/sensors/{id}   leave (detach) a sensor
//	GET    /healthz           liveness + fleet size
//	GET    /metrics           counters in Prometheus text format
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/observations", s.handleObservations)
	mux.HandleFunc("GET /v1/outliers", s.handleOutliers)
	mux.HandleFunc("POST /v1/flush", s.handleFlush)
	mux.HandleFunc("GET /v1/sensors", s.handleSensors)
	mux.HandleFunc("POST /v1/sensors/{id}", s.handleJoin)
	mux.HandleFunc("DELETE /v1/sensors/{id}", s.handleLeave)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/traces", s.traces.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Service) handleObservations(w http.ResponseWriter, r *http.Request) {
	var batch WireBatch
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		s.malformed.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("ingest: bad batch: %w", err))
		return
	}
	result := WireBatchResult{}
	for i, wr := range batch.Readings {
		err := s.Ingest(Reading{
			Sensor: core.NodeID(wr.Sensor),
			At:     time.Duration(wr.AtMS) * time.Millisecond,
			Values: wr.Values,
		})
		if err != nil {
			result.Rejected = append(result.Rejected, WireRejection{Index: i, Error: err.Error()})
			continue
		}
		result.Accepted++
	}
	status := http.StatusAccepted
	if result.Accepted == 0 && len(result.Rejected) > 0 {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, result)
}

func (s *Service) handleOutliers(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		elapsed := time.Since(start)
		s.obs.queryLat.Observe(elapsed.Seconds())
		if s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery {
			s.cfg.Logger.Warn("slow query",
				"query", "GET /v1/outliers?"+r.URL.RawQuery,
				"elapsed", elapsed.Round(time.Microsecond), "threshold", s.cfg.SlowQuery)
		}
	}()
	var id core.NodeID
	if q := r.URL.Query().Get("sensor"); q != "" {
		n, err := strconv.ParseUint(q, 10, 16)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("ingest: bad sensor %q", q))
			return
		}
		id = core.NodeID(n)
	} else {
		ids := s.Sensors()
		if len(ids) == 0 {
			writeError(w, http.StatusNotFound, errors.New("ingest: no sensors attached"))
			return
		}
		id = ids[0]
	}
	est, err := s.Estimate(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	resp := WireEstimate{Sensor: uint16(id), Outliers: wirePoints(est)}
	if r.URL.Query().Get("window") == "1" {
		win, err := s.Snapshot(r.Context())
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		resp.Window = wirePoints(win)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFlush blocks until every reading accepted before the call has
// been observed and the mesh has converged — the ingestion barrier the
// load harness's exactness checkpoints freeze the daemon with before
// comparing its answer to the centralized baseline.
func (s *Service) handleFlush(w http.ResponseWriter, r *http.Request) {
	if err := s.Flush(r.Context()); err != nil {
		status := http.StatusServiceUnavailable
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, err)
		return
	}
	st := s.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"flushed":  true,
		"observed": st.Observed,
		"pending":  st.Pending,
	})
}

func (s *Service) handleSensors(w http.ResponseWriter, _ *http.Request) {
	type sensorInfo struct {
		ID    uint16 `json:"id"`
		Queue int    `json:"queue"`
		Drops uint64 `json:"drops"`
	}
	stats := s.SensorStats()
	out := make([]sensorInfo, 0, len(stats))
	for _, st := range stats {
		out = append(out, sensorInfo{ID: uint16(st.ID), Queue: st.Queue, Drops: st.Drops})
	}
	writeJSON(w, http.StatusOK, map[string]any{"sensors": out})
}

func pathSensorID(r *http.Request) (core.NodeID, error) {
	n, err := strconv.ParseUint(r.PathValue("id"), 10, 16)
	if err != nil {
		return 0, fmt.Errorf("ingest: bad sensor id %q", r.PathValue("id"))
	}
	return core.NodeID(n), nil
}

func (s *Service) handleJoin(w http.ResponseWriter, r *http.Request) {
	id, err := pathSensorID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch err := s.Join(id); {
	case err == nil:
		writeJSON(w, http.StatusCreated, map[string]any{"joined": uint16(id)})
	case errors.Is(err, ErrAlreadyJoined):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Service) handleLeave(w http.ResponseWriter, r *http.Request) {
	id, err := pathSensorID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.Leave(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"left": uint16(id)})
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"sensors": len(s.Sensors()),
	})
}

// handleMetrics serves the obs registry built in New: the same counter
// and gauge series the retired hand-rolled writer printed (names, label
// spellings, and integer formatting preserved) plus the latency
// histograms, now with # HELP/# TYPE metadata.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.obs.reg.Handler().ServeHTTP(w, r)
}
