// Package ingest is the streaming front door of the system: it accepts
// live observations, validates and routes them by sensor ID into a
// managed fleet of peer.Peers, and serves the resulting outlier estimates
// — the daemon engine behind cmd/innetd. Where internal/dataset replays
// pre-generated streams and internal/protocol drives the discrete-event
// simulator, this package ingests data that arrives from outside the
// process, at whatever rate and order the outside chooses.
//
// # Data path
//
// A Reading (sensor ID, timestamp, feature vector) enters through
// Service.Ingest — called by the HTTP batch endpoint ([Service.Handler])
// and the UDP line-protocol listener ([Service.ServeUDP]) — and flows:
//
//	Ingest → validate → per-sensor bounded queue → feeder goroutine
//	       → Peer.ObserveBatch (one ranking pass per drained burst)
//	       → broadcast on the in-memory mesh → neighbors converge
//
// Each sensor owns one queue and one feeder goroutine on top of the
// peer's own event goroutine. The feeder drains whatever has accumulated
// (up to Config.MaxBatch) into a single batch-observe event, so a sensor
// that falls behind catches up with one ranking pass instead of one per
// queued reading.
//
// # Backpressure and drop policy
//
// Queues are bounded (Config.QueueDepth). When a producer finds a queue
// full, the oldest queued reading is dropped to make room — latest wins.
// The rationale: under a sliding window the newest data is the data that
// will survive longest, and the detector tolerates gaps by design (the
// paper's loss model), so shedding the stalest backlog degrades answers
// the least. Drops are counted per service (Stats.Dropped) and surfaced
// through /metrics; ingestion itself never blocks on a slow detector.
//
// # Timestamps
//
// Time is data time, not wall time: a sensor's clock advances to the
// newest timestamp it has ingested, and window eviction follows that
// clock. Readings may arrive out of order within the window — points
// carry their own birth timestamps, so eviction order is unaffected.
// A reading older than (newest seen for that sensor − Window) would be
// evicted by the very next advance; it is rejected up front as stale and
// counted in Stats.Stale.
//
// # Join and leave
//
// Sensors attach dynamically: Join builds a peer, attaches it to the
// mesh, links it to the neighbors chosen by Config.Topology (default:
// every existing sensor, a clique) and delivers link-up events on both
// ends. Unknown sensor IDs auto-join on first contact when
// Config.AutoJoin is set, otherwise they are rejected and counted.
// Leave detaches the peer — remaining sensors receive link-down events,
// and the departed sensor's points age out of their windows as §5.3 of
// the paper prescribes — then reaps both goroutines. Close does this for
// the whole fleet at once via context cancellation.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"innet/internal/core"
	"innet/internal/obs"
	"innet/internal/peer"
	"innet/internal/store"
)

// Validation errors returned by Service.Ingest (and surfaced per reading
// by the HTTP endpoint).
var (
	ErrClosed        = errors.New("ingest: service closed")
	ErrUnknownSensor = errors.New("ingest: unknown sensor (auto-join disabled)")
	ErrStale         = errors.New("ingest: reading older than the sliding window")
	ErrBadReading    = errors.New("ingest: malformed reading")
	ErrAlreadyJoined = errors.New("ingest: sensor already joined")
	ErrFleetFull     = errors.New("ingest: sensor limit reached")
)

// Reading is one observation as it arrives from the outside world.
//
// Seq/HasSeq optionally pin the reading's point identity instead of
// letting the sensor's detector assign the next sequence number. The
// cluster coordinator stamps every reading before fanning it out so
// replica shards mint identical PointIDs for the same datum (see
// core.Observation); direct HTTP/UDP ingestion leaves them zero.
type Reading struct {
	Sensor core.NodeID
	At     time.Duration // data-time timestamp (offset from stream epoch)
	Values []float64     // feature vector, e.g. temperature [, x, y]

	Seq    uint32
	HasSeq bool

	// Trace, when nonzero, is the distributed trace ID the reading
	// arrived under (a coordinator-stamped READINGS frame); the spans the
	// reading's queue wait and batch observe emit carry it. Direct
	// HTTP/UDP ingestion leaves it zero.
	Trace uint64
}

// Validate checks the reading's shape (ID, timestamp, feature vector)
// without consulting any service state. The cluster coordinator applies
// the same gate before routing, so a reading rejected here is rejected
// identically by every front door.
func (r Reading) Validate() error {
	switch {
	case r.Sensor == 0:
		return fmt.Errorf("%w: sensor id 0 is reserved", ErrBadReading)
	case r.At < 0:
		return fmt.Errorf("%w: negative timestamp %v", ErrBadReading, r.At)
	case len(r.Values) == 0:
		return fmt.Errorf("%w: empty feature vector", ErrBadReading)
	case len(r.Values) > 255:
		return fmt.Errorf("%w: %d features exceeds the wire format's 255", ErrBadReading, len(r.Values))
	}
	for _, v := range r.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite feature %v", ErrBadReading, v)
		}
	}
	return nil
}

// Config parameterizes a Service.
type Config struct {
	// Detector is the per-sensor detector configuration; Node is
	// overwritten with each sensor's ID. Ranker and N are required.
	Detector core.Config

	// QueueDepth bounds each sensor's ingest queue; when full, the
	// oldest queued reading is dropped (latest wins). Default 256.
	QueueDepth int

	// MaxBatch caps how many queued readings one feeder pass drains
	// into a single batch-observe event. Default 64.
	MaxBatch int

	// AutoJoin makes readings for unknown sensor IDs attach the sensor
	// on first contact instead of being rejected.
	AutoJoin bool

	// MaxSensors caps the fleet size; Join — including auto-join —
	// beyond it returns ErrFleetFull. The cap is what stands between
	// unauthenticated input and unbounded goroutines (each sensor costs
	// two goroutines, a detector, and O(fleet) mesh links under the
	// default clique topology). Default 1024.
	MaxSensors int

	// Topology picks which existing sensors a joining sensor links to.
	// Nil links to every existing sensor (a clique), which makes every
	// estimate global. innetd keeps the default; embedders (see
	// examples/livenet) can shape multi-hop meshes.
	Topology func(joining core.NodeID, existing []core.NodeID) []core.NodeID

	// Store, when set, makes the fleet's windows durable: every reading
	// a detector mints is appended to it (in detector order, with its
	// assigned identity), and Warm replays the persisted state so a
	// restarted daemon serves exact answers over the data it held when
	// it went down. Nil — the default — keeps today's purely in-memory
	// behavior. The Service uses the store but does not own it; the
	// caller closes it after Close.
	Store store.Store

	// CompactEvery bounds WAL growth: after this many appended records
	// the service compacts the store down to the current window union
	// (plus identity floors) in the background. Default 8192.
	CompactEvery int

	// SlowQuery, when positive, logs every GET /v1/outliers that takes
	// at least this long through Logger. Zero disables the slow-query
	// log.
	SlowQuery time.Duration

	// Logger receives structured service events (slow queries, shard
	// control actions). Nil discards.
	Logger *slog.Logger

	// TraceSink, when set, receives every recorded span as one JSON line
	// (the -trace-file flag); the in-memory /debug/traces ring records
	// them regardless. Note the sink takes span recording off the
	// zero-allocation path — it is an opt-in debugging aid.
	TraceSink io.Writer

	// SpanCapacity bounds the /debug/traces flight-recorder ring.
	// Default 2048.
	SpanCapacity int
}

func (c *Config) applyDefaults() {
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.MaxSensors == 0 {
		c.MaxSensors = 1024
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = 8192
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.SpanCapacity < 1 {
		c.SpanCapacity = 2048
	}
}

// Stats is a snapshot of the service counters.
type Stats struct {
	Accepted  uint64 // readings admitted to a queue
	Observed  uint64 // readings fed into a detector
	Batches   uint64 // batch-observe events (ranking passes)
	Dropped   uint64 // readings shed by the latest-wins policy
	Stale     uint64 // readings rejected as older than the window
	Malformed uint64 // payloads/lines/readings that failed to parse
	Unknown   uint64 // readings rejected for unknown sensor IDs
	Joins     uint64 // sensors attached (initial + dynamic)
	Leaves    uint64 // sensors detached
	Sensors   int    // currently attached sensors
	Pending   int64  // accepted but not yet observed (0 after Flush)
}

// queued is one admitted observation plus its enqueue instant, so the
// feeder can observe how long the reading waited in the queue, and the
// trace ID it arrived under (0 for untraced front doors).
type queued struct {
	obs   core.Observation
	enq   time.Time
	trace uint64
}

// sensor is one attached sensor: its peer, its bounded queue, and its
// feeder goroutine's lifecycle handles.
type sensor struct {
	id    core.NodeID
	peer  *peer.Peer
	queue chan queued

	latest   atomic.Int64  // newest ingested timestamp, nanoseconds
	drops    atomic.Uint64 // readings this sensor shed (latest-wins + leave drain)
	nextSeq  atomic.Uint64 // 1 + highest seq minted for this sensor (0 = none); identity floor for compaction
	stop     chan struct{}
	feedDone chan struct{}
	runDone  chan struct{}
}

// Service owns the fleet: the mesh, one sensor record per attached ID,
// and the shared counters. All methods are safe for concurrent use.
type Service struct {
	cfg    Config
	mesh   *peer.Mesh
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.RWMutex // guards sensors and closed; Ingest enqueues under RLock
	sensors map[core.NodeID]*sensor
	closed  bool

	pending atomic.Int64 // accepted but not yet observed (Flush watches this)

	// Durability state (all zero-valued and inert when cfg.Store is nil).
	walSince   atomic.Uint64 // records appended since the last compaction
	compacting atomic.Bool   // single-flight guard for background compaction
	walErrors  atomic.Uint64 // failed store appends (the fleet keeps serving)
	replayed   atomic.Uint64 // records restored by Warm

	// appendMu serializes store appends with CompactStore's window-union
	// snapshot → Compact sequence. While a compaction is snapshotting,
	// concurrently persisted records are also recorded in compactTail so
	// they can be folded into the compacted state: without that, a record
	// appended (and acknowledged) between the snapshot and the truncation
	// would be durably lost until the next compaction.
	appendMu    sync.Mutex
	compactTail []store.Record // records persisted since the in-flight snapshot began
	tailing     bool           // a CompactStore snapshot is in flight
	compactMu   sync.Mutex     // serializes whole CompactStore calls

	accepted, observed, batches atomic.Uint64
	dropped, stale, malformed   atomic.Uint64
	unknown, joins, leaves      atomic.Uint64

	obs    *serviceObs   // metrics registry + latency histograms, built in New
	traces *obs.TraceLog // /debug/traces flight-recorder ring of spans
}

// New validates cfg and returns a running (but empty) service. Sensors
// attach via Join or, with cfg.AutoJoin, on first contact.
func New(cfg Config) (*Service, error) {
	cfg.applyDefaults()
	probe := cfg.Detector
	probe.Node = 1
	if _, err := core.NewDetector(probe); err != nil {
		return nil, err
	}
	if cfg.QueueDepth < 1 || cfg.MaxBatch < 1 || cfg.MaxSensors < 1 {
		return nil, errors.New("ingest: QueueDepth, MaxBatch and MaxSensors must be positive")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		mesh:    peer.NewMesh(),
		ctx:     ctx,
		cancel:  cancel,
		sensors: make(map[core.NodeID]*sensor),
	}
	s.obs = newServiceObs(s)
	s.traces = obs.NewTraceLog(cfg.SpanCapacity)
	if cfg.TraceSink != nil {
		s.traces.SetSink(cfg.TraceSink)
	}
	// Stores that expose SetTiming (the file store does, the in-memory
	// reference does not bother) feed the WAL duration histograms.
	if st, ok := cfg.Store.(interface {
		SetTiming(func(op string, d time.Duration))
	}); ok {
		st.SetTiming(s.obs.storeTiming)
	}
	return s, nil
}

// Join attaches a sensor: a peer on the mesh, linked to the sensors the
// topology selects, with its queue and feeder running. Joining an
// attached sensor or a closed service is an error.
func (s *Service) Join(id core.NodeID) error {
	if id == 0 {
		return fmt.Errorf("%w: sensor id 0 is reserved", ErrBadReading)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if _, dup := s.sensors[id]; dup {
		s.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrAlreadyJoined, id)
	}
	if len(s.sensors) >= s.cfg.MaxSensors {
		s.mu.Unlock()
		return fmt.Errorf("%w: %d sensors attached", ErrFleetFull, len(s.sensors))
	}
	existing := make([]core.NodeID, 0, len(s.sensors))
	for other := range s.sensors {
		existing = append(existing, other)
	}
	sort.Slice(existing, func(i, j int) bool { return existing[i] < existing[j] })

	tr, err := s.mesh.Attach(id)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	det := s.cfg.Detector
	det.Node = id
	p, err := peer.New(peer.Config{Detector: det, Transport: tr})
	if err != nil {
		s.mesh.Detach(id)
		s.mu.Unlock()
		return err
	}
	sn := &sensor{
		id:       id,
		peer:     p,
		queue:    make(chan queued, s.cfg.QueueDepth),
		stop:     make(chan struct{}),
		feedDone: make(chan struct{}),
		runDone:  make(chan struct{}),
	}
	s.sensors[id] = sn
	neighbors := existing
	if s.cfg.Topology != nil {
		neighbors = s.cfg.Topology(id, existing)
	}
	s.mu.Unlock()

	go func() {
		defer close(sn.runDone)
		_ = p.Run(s.ctx)
	}()
	go s.feed(sn)

	for _, nb := range neighbors {
		s.mu.RLock()
		other, ok := s.sensors[nb]
		s.mu.RUnlock()
		if !ok {
			continue // left while we were joining; fine
		}
		if err := s.mesh.Connect(id, nb); err != nil {
			continue
		}
		if err := p.AddNeighbor(s.ctx, nb); err != nil {
			return err
		}
		if err := other.peer.AddNeighbor(s.ctx, id); err != nil {
			return err
		}
	}
	s.joins.Add(1)
	return nil
}

// Leave detaches a sensor: its queue is drained, its goroutines reaped,
// and every remaining neighbor receives a link-down event. Points the
// fleet already received from the departed sensor stay held and age out
// of the sliding windows (§5.3); they are not eagerly purged.
func (s *Service) Leave(id core.NodeID) error {
	s.mu.Lock()
	sn, ok := s.sensors[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("ingest: sensor %d not joined", id)
	}
	delete(s.sensors, id)
	s.mu.Unlock()
	// From here no new Ingest can reach sn: lookups go through the map,
	// and in-flight enqueues finished before the write lock was granted.

	neighbors := s.mesh.Neighbors(id)

	close(sn.stop)
	<-sn.feedDone
drain: // shed whatever the feeder left behind
	for {
		select {
		case <-sn.queue:
			s.pending.Add(-1)
			s.dropped.Add(1)
			sn.drops.Add(1)
		default:
			break drain
		}
	}

	s.mesh.Detach(id) // closes the inbox → Run returns nil
	<-sn.runDone
	for _, nb := range neighbors {
		s.mu.RLock()
		other, ok := s.sensors[nb]
		s.mu.RUnlock()
		if ok {
			_ = other.peer.RemoveNeighbor(s.ctx, id)
		}
	}
	s.leaves.Add(1)
	return nil
}

// Ingest validates one reading and routes it to its sensor's queue,
// auto-joining unknown sensors when configured. It never blocks on a
// slow detector: a full queue sheds its oldest reading instead.
func (s *Service) Ingest(r Reading) error {
	if err := r.Validate(); err != nil {
		s.malformed.Add(1)
		return err
	}
	for {
		s.mu.RLock()
		if s.closed {
			s.mu.RUnlock()
			return ErrClosed
		}
		sn, ok := s.sensors[r.Sensor]
		if !ok {
			s.mu.RUnlock()
			if !s.cfg.AutoJoin {
				s.unknown.Add(1)
				return fmt.Errorf("%w: sensor %d", ErrUnknownSensor, r.Sensor)
			}
			// A concurrent Ingest may join the sensor first; losing
			// that race is success, so retry the lookup.
			if err := s.Join(r.Sensor); err != nil && !errors.Is(err, ErrAlreadyJoined) {
				return err
			}
			continue
		}
		err := s.enqueue(sn, r)
		s.mu.RUnlock()
		return err
	}
}

// enqueue admits the reading under the service read lock (which excludes
// Leave/Close), applying the staleness gate and the latest-wins policy.
func (s *Service) enqueue(sn *sensor, r Reading) error {
	if w := s.cfg.Detector.Window; w > 0 {
		if latest := time.Duration(sn.latest.Load()); r.At < latest-w {
			s.stale.Add(1)
			return fmt.Errorf("%w: %v is older than %v − %v", ErrStale, r.At, latest, w)
		}
	}
	for prev := sn.latest.Load(); int64(r.At) > prev; prev = sn.latest.Load() {
		if sn.latest.CompareAndSwap(prev, int64(r.At)) {
			break
		}
	}
	item := queued{
		obs:   core.Observation{Birth: r.At, Value: r.Values, Seq: r.Seq, Assigned: r.HasSeq},
		enq:   time.Now(),
		trace: r.Trace,
	}
	// Count the reading as pending before the send, not after: once the
	// send lands the feeder may drain and observe it at any moment, and
	// an increment that trails the send lets a concurrent Flush read
	// pending == 0 with this reading still queued and unobserved — an
	// early return that breaks the barrier the exactness checkpoints
	// (and the cluster snapshot protocol) stand on. Every exit below
	// either sends the observation or sheds a previously-counted one, so
	// the counter stays conserved.
	s.pending.Add(1)
	for {
		select {
		case sn.queue <- item:
			s.accepted.Add(1)
			return nil
		default:
		}
		select {
		case <-sn.queue: // full: shed the oldest queued reading
			s.pending.Add(-1)
			s.dropped.Add(1)
			sn.drops.Add(1)
		default:
		}
	}
}

// feed is the per-sensor consumer: it drains bursts from the queue and
// feeds each as one batch-observe event.
func (s *Service) feed(sn *sensor) {
	defer close(sn.feedDone)
	for {
		var first queued
		select {
		case <-s.ctx.Done():
			return
		case <-sn.stop:
			return
		case first = <-sn.queue:
		}
		drained := time.Now()
		s.obs.queueLat.Observe(drained.Sub(first.enq).Seconds())
		batch := append(make([]core.Observation, 0, s.cfg.MaxBatch), first.obs)
		trace := first.trace
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case q := <-sn.queue:
				s.obs.queueLat.Observe(drained.Sub(q.enq).Seconds())
				batch = append(batch, q.obs)
				if trace == 0 {
					trace = q.trace
				}
			default:
				break drain
			}
		}
		// One enqueue→drain span per batch, carrying the first traced
		// reading's ID: per-reading spans would flood the ring under
		// burst, and the batch is the unit the detector observes anyway.
		s.traces.Record(obs.Span{
			Trace:  trace,
			Op:     obs.OpEnqueue,
			Points: int32(len(batch)),
			Start:  first.enq,
			Dur:    drained.Sub(first.enq),
		})
		now := time.Duration(sn.latest.Load())
		for _, o := range batch {
			if o.Birth > now {
				now = o.Birth
			}
		}
		var err error
		if s.cfg.Store == nil {
			err = sn.peer.ObserveBatch(s.ctx, now, batch)
		} else {
			var minted []core.Point
			minted, err = sn.peer.ObserveBatchMinted(s.ctx, now, batch)
			if err == nil {
				s.persist(sn, trace, minted)
			}
		}
		s.obs.observeDur.Observe(time.Since(drained).Seconds())
		s.traces.Record(obs.Span{
			Trace:  trace,
			Op:     obs.OpObserve,
			Points: int32(len(batch)),
			Start:  drained,
			Dur:    time.Since(drained),
		})
		s.pending.Add(-int64(len(batch)))
		if err != nil {
			return // service shutting down
		}
		s.observed.Add(uint64(len(batch)))
		s.batches.Add(1)
	}
}

// persist appends one observed batch's minted points to the store and
// triggers a background compaction when the WAL has grown enough. A
// failed append is counted, not fatal: the fleet keeps serving from
// memory and the gap closes at the next successful compaction.
func (s *Service) persist(sn *sensor, trace uint64, minted []core.Point) {
	if len(minted) == 0 {
		return
	}
	recs := make([]store.Record, len(minted))
	for i, p := range minted {
		recs[i] = store.RecordOf(p)
		for floor := sn.nextSeq.Load(); uint64(p.ID.Seq)+1 > floor; floor = sn.nextSeq.Load() {
			if sn.nextSeq.CompareAndSwap(floor, uint64(p.ID.Seq)+1) {
				break
			}
		}
	}
	appendStart := time.Now()
	s.appendMu.Lock()
	if s.tailing {
		// A compaction is snapshotting: this batch may miss the snapshot,
		// so hand it to CompactStore to fold into the compacted state.
		s.compactTail = append(s.compactTail, recs...)
	}
	err := s.cfg.Store.AppendReadings(recs)
	s.appendMu.Unlock()
	span := obs.Span{
		Trace:  trace,
		Op:     obs.OpWALAppend,
		Points: int32(len(recs)),
		Start:  appendStart,
		Dur:    time.Since(appendStart),
	}
	if err != nil {
		span.Err = err.Error()
	}
	s.traces.Record(span)
	if err != nil {
		s.walErrors.Add(1)
		return
	}
	if s.walSince.Add(uint64(len(recs))) >= uint64(s.cfg.CompactEvery) {
		s.compactAsync()
	}
}

// compactAsync rewrites the store snapshot from the live window union in
// a background goroutine, single-flight.
func (s *Service) compactAsync() {
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		_ = s.CompactStore(s.ctx)
	}()
}

// CompactStore snapshots the current window union and identity floors
// into the store and truncates its WAL. It is called automatically as
// the WAL grows; callers (Warm, tests) may also invoke it directly.
//
// Compaction must not lose records that persist() appends while the
// snapshot is being taken: a record minted after a sensor's holdings
// were read is absent from the snapshot, yet Compact truncates the WAL
// frames that held it. So the snapshot window is bracketed — persist()
// records every batch appended while it is open (compactTail), and the
// tail is folded into the compacted state under appendMu, which also
// blocks appends for the duration of the Compact itself. Every record
// acknowledged before the truncation is therefore either in the window
// snapshot or in the tail; duplicates collapse at Load (records carry
// their identities).
func (s *Service) CompactStore(ctx context.Context) error {
	if s.cfg.Store == nil {
		return nil
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.appendMu.Lock()
	s.compactTail = nil
	s.tailing = true
	s.appendMu.Unlock()
	pts, err := s.Snapshot(ctx)
	if err != nil {
		s.appendMu.Lock()
		s.compactTail = nil
		s.tailing = false
		s.appendMu.Unlock()
		return err
	}
	recs := make([]store.Record, len(pts))
	for i, p := range pts {
		recs[i] = store.RecordOf(p)
	}
	s.mu.RLock()
	ids := make([]store.Identity, 0, len(s.sensors))
	for id, sn := range s.sensors {
		next := sn.nextSeq.Load()
		latest := time.Duration(sn.latest.Load())
		if next == 0 && latest == 0 {
			continue
		}
		ids = append(ids, store.Identity{Sensor: id, NextSeq: uint32(next), Latest: latest})
	}
	s.mu.RUnlock()
	s.appendMu.Lock()
	recs = append(recs, s.compactTail...)
	s.compactTail = nil
	s.tailing = false
	err = s.cfg.Store.Compact(recs, ids)
	s.appendMu.Unlock()
	if err != nil {
		s.walErrors.Add(1)
		return err
	}
	// Reset only on success so a failed compaction retries at the next
	// append instead of a full CompactEvery later.
	s.walSince.Store(0)
	return nil
}

// Warm replays the store's persisted state into a freshly started fleet:
// sensors are joined, surviving window records are re-ingested with
// their original identities (per-sensor order preserved, so unassigned
// future readings mint the same sequence numbers a never-restarted
// process would), identity floors are reserved past aged-out points, and
// the store is compacted down to what actually survived. It returns the
// number of records restored. Call it once, after New and before serving
// traffic; with no store (or an empty one) it is a no-op.
func (s *Service) Warm(ctx context.Context) (int, error) {
	if s.cfg.Store == nil {
		return 0, nil
	}
	st, err := s.cfg.Store.Load()
	if err != nil {
		return 0, fmt.Errorf("ingest: warm: %w", err)
	}
	// Records older than their sensor's window have already been evicted
	// everywhere; re-ingesting them would only bounce off the staleness
	// gate (polluting the stale counter) or, worse, resurrect data the
	// pre-crash fleet no longer held. Identity floors still cover them.
	cutoff := make(map[core.NodeID]time.Duration)
	if w := s.cfg.Detector.Window; w > 0 {
		for _, r := range st.Records {
			if c, ok := cutoff[r.Sensor]; !ok || r.Birth-w > c {
				cutoff[r.Sensor] = r.Birth - w
			}
		}
	}
	restored := 0
	sinceFlush := 0
	for _, r := range st.Records {
		if c, ok := cutoff[r.Sensor]; ok && r.Birth < c {
			continue
		}
		if err := s.ensureJoined(r.Sensor); err != nil {
			return restored, fmt.Errorf("ingest: warm: %w", err)
		}
		err := s.Ingest(Reading{Sensor: r.Sensor, At: r.Birth, Values: r.Values, Seq: r.Seq, HasSeq: true})
		if err != nil {
			return restored, fmt.Errorf("ingest: warm: replay %d#%d: %w", r.Sensor, r.Seq, err)
		}
		restored++
		// Flush well below the queue depth: replay must never trip the
		// latest-wins shedding that live bursts are allowed to.
		if sinceFlush++; sinceFlush >= s.cfg.QueueDepth/2 {
			if err := s.Flush(ctx); err != nil {
				return restored, fmt.Errorf("ingest: warm: %w", err)
			}
			sinceFlush = 0
		}
	}
	for _, id := range st.Identities {
		if err := s.ensureJoined(id.Sensor); err != nil {
			return restored, fmt.Errorf("ingest: warm: %w", err)
		}
		s.mu.RLock()
		sn := s.sensors[id.Sensor]
		s.mu.RUnlock()
		if sn == nil {
			continue // left while warming; nothing to floor
		}
		if err := sn.peer.ReserveSeq(ctx, id.NextSeq); err != nil {
			return restored, fmt.Errorf("ingest: warm: %w", err)
		}
		for floor := sn.nextSeq.Load(); uint64(id.NextSeq) > floor; floor = sn.nextSeq.Load() {
			if sn.nextSeq.CompareAndSwap(floor, uint64(id.NextSeq)) {
				break
			}
		}
		// Restore the staleness gate so a reading the pre-crash fleet
		// would have rejected stays rejected after the restart.
		for prev := sn.latest.Load(); int64(id.Latest) > prev; prev = sn.latest.Load() {
			if sn.latest.CompareAndSwap(prev, int64(id.Latest)) {
				break
			}
		}
	}
	if err := s.Flush(ctx); err != nil {
		return restored, fmt.Errorf("ingest: warm: %w", err)
	}
	// Replay re-appended every restored record; compacting now collapses
	// the duplication and bounds WAL growth across repeated restarts.
	if err := s.CompactStore(ctx); err != nil {
		return restored, fmt.Errorf("ingest: warm: %w", err)
	}
	s.replayed.Store(uint64(restored))
	return restored, nil
}

// ensureJoined attaches the sensor if it is not already attached.
func (s *Service) ensureJoined(id core.NodeID) error {
	s.mu.RLock()
	_, ok := s.sensors[id]
	s.mu.RUnlock()
	if ok {
		return nil
	}
	if err := s.Join(id); err != nil && !errors.Is(err, ErrAlreadyJoined) {
		return err
	}
	return nil
}

// StoreMetrics reports the durability counters: the store's own plus the
// service-side append-failure and replay counts. ok is false when the
// service runs without a store.
func (s *Service) StoreMetrics() (m store.Metrics, walErrors, replayed uint64, ok bool) {
	if s.cfg.Store == nil {
		return store.Metrics{}, 0, 0, false
	}
	return s.cfg.Store.Metrics(), s.walErrors.Load(), s.replayed.Load(), true
}

// Flush blocks until every reading ingested so far has been observed by
// its detector and the mesh is quiescent — i.e. the fleet's estimates
// have converged on the data ingested before the call.
func (s *Service) Flush(ctx context.Context) error {
	for s.pending.Load() != 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.ctx.Done():
			return ErrClosed
		case <-time.After(200 * time.Microsecond):
		}
	}
	return s.mesh.WaitQuiescent(ctx)
}

// Estimate returns the current outlier estimate as seen by the given
// sensor, or an error if it is not attached.
func (s *Service) Estimate(id core.NodeID) ([]core.Point, error) {
	s.mu.RLock()
	sn, ok := s.sensors[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ingest: sensor %d not joined", id)
	}
	return sn.peer.Estimate(), nil
}

// Snapshot returns the union of every attached sensor's sliding window,
// deduplicated by point ID and sorted. After Flush it is exactly the data
// the fleet's estimates are computed over; the cluster shard server
// serves it to the coordinator, whose merge over shard snapshots then
// equals the centralized answer over the union of all windows.
func (s *Service) Snapshot(ctx context.Context) ([]core.Point, error) {
	s.mu.RLock()
	fleet := make([]*sensor, 0, len(s.sensors))
	for _, sn := range s.sensors {
		fleet = append(fleet, sn)
	}
	s.mu.RUnlock()
	union := core.NewSet()
	for _, sn := range fleet {
		held, err := sn.peer.Holdings(ctx)
		if err != nil {
			return nil, err
		}
		held.ForEach(func(p core.Point) { union.AddMinHop(p) })
	}
	return union.Points(), nil
}

// HoldingsOf returns one attached sensor's sliding window (its own
// points plus everything it has received), sorted. Unlike Snapshot it
// costs one event-loop round trip instead of one per sensor, which is
// what the cluster handoff path wants when moving a single sensor.
func (s *Service) HoldingsOf(ctx context.Context, id core.NodeID) ([]core.Point, error) {
	s.mu.RLock()
	sn, ok := s.sensors[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ingest: sensor %d not joined", id)
	}
	held, err := sn.peer.Holdings(ctx)
	if err != nil {
		return nil, err
	}
	return held.Points(), nil
}

// Traces returns the service's span flight recorder — the ring the
// daemon serves at /debug/traces. The shard-control server records its
// session and exchange spans here too, so one endpoint shows a shard's
// whole view of a distributed query.
func (s *Service) Traces() *obs.TraceLog { return s.traces }

// DetectorConfig returns the per-sensor detector configuration template
// (Node is assigned per sensor at join). The cluster shard server uses
// it to answer coordinator merge rounds with exactly the ranker and N
// the fleet ranks with.
func (s *Service) DetectorConfig() core.Config { return s.cfg.Detector }

// SensorStat is one attached sensor's queue state.
type SensorStat struct {
	ID    core.NodeID
	Queue int    // readings currently queued
	Drops uint64 // readings shed by the latest-wins policy
}

// SensorStats snapshots per-sensor queue depth and drop counters, sorted
// by sensor ID. The HTTP API surfaces these on /v1/sensors and /metrics.
func (s *Service) SensorStats() []SensorStat {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SensorStat, 0, len(s.sensors))
	for id, sn := range s.sensors {
		out = append(out, SensorStat{ID: id, Queue: len(sn.queue), Drops: sn.drops.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Sensors returns the attached sensor IDs, sorted.
func (s *Service) Sensors() []core.NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]core.NodeID, 0, len(s.sensors))
	for id := range s.sensors {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// QueueDepth reports how many readings are queued for the given sensor.
func (s *Service) QueueDepth(id core.NodeID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if sn, ok := s.sensors[id]; ok {
		return len(sn.queue)
	}
	return 0
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	n := len(s.sensors)
	s.mu.RUnlock()
	return Stats{
		Accepted:  s.accepted.Load(),
		Observed:  s.observed.Load(),
		Batches:   s.batches.Load(),
		Dropped:   s.dropped.Load(),
		Stale:     s.stale.Load(),
		Malformed: s.malformed.Load(),
		Unknown:   s.unknown.Load(),
		Joins:     s.joins.Load(),
		Leaves:    s.leaves.Load(),
		Sensors:   n,
		Pending:   s.pending.Load(),
	}
}

// Close stops the fleet: ingestion is refused, every peer and feeder
// goroutine exits via context cancellation, and Close returns once all
// of them have. It is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	fleet := make([]*sensor, 0, len(s.sensors))
	for _, sn := range s.sensors {
		fleet = append(fleet, sn)
	}
	s.mu.Unlock()

	s.cancel()
	for _, sn := range fleet {
		<-sn.feedDone
		<-sn.runDone
	}
	return nil
}
