package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func startHTTP(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := newService(t, cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func doJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("%s %s: decode response: %v", method, url, err)
	}
	return resp.StatusCode, decoded
}

func TestHTTPObservationsBatch(t *testing.T) {
	cfg := testConfig()
	cfg.AutoJoin = true
	s, srv := startHTTP(t, cfg)

	// A mixed batch: four good readings (one the planted outlier), one
	// malformed (empty values).
	status, body := doJSON(t, "POST", srv.URL+"/v1/observations", `{"readings":[
		{"sensor":1,"at_ms":1000,"values":[20.0]},
		{"sensor":2,"at_ms":1000,"values":[20.2]},
		{"sensor":3,"at_ms":1000,"values":[55.3]},
		{"sensor":4,"at_ms":1000,"values":[19.9]},
		{"sensor":5,"at_ms":1000,"values":[]}
	]}`)
	if status != http.StatusAccepted {
		t.Fatalf("status %d, want 202", status)
	}
	if got := body["accepted"].(float64); got != 4 {
		t.Fatalf("accepted = %v, want 4", got)
	}
	rejected := body["rejected"].([]any)
	if len(rejected) != 1 || rejected[0].(map[string]any)["index"].(float64) != 4 {
		t.Fatalf("rejected = %v, want index 4", rejected)
	}
	mustFlush(t, s)

	status, est := doJSON(t, "GET", srv.URL+"/v1/outliers?sensor=2", "")
	if status != http.StatusOK {
		t.Fatalf("outliers status %d, want 200", status)
	}
	outliers := est["outliers"].([]any)
	if len(outliers) != 1 {
		t.Fatalf("outliers = %v, want exactly the planted fault", outliers)
	}
	if o := outliers[0].(map[string]any); o["sensor"].(float64) != 3 || o["values"].([]any)[0].(float64) != 55.3 {
		t.Fatalf("outlier = %v, want sensor 3 value 55.3", o)
	}

	// Default sensor selection: lowest attached ID answers.
	if status, est = doJSON(t, "GET", srv.URL+"/v1/outliers", ""); status != http.StatusOK || est["sensor"].(float64) != 1 {
		t.Fatalf("default outliers: status %d body %v, want sensor 1", status, est)
	}
}

func TestHTTPMalformedBody(t *testing.T) {
	s, srv := startHTTP(t, testConfig())
	status, _ := doJSON(t, "POST", srv.URL+"/v1/observations", `{"readings": [{]`)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
	if got := s.Stats().Malformed; got != 1 {
		t.Fatalf("Malformed = %d, want 1", got)
	}
	// A batch that is entirely rejected is a client error too.
	status, _ = doJSON(t, "POST", srv.URL+"/v1/observations", `{"readings":[{"sensor":7,"at_ms":0,"values":[1]}]}`)
	if status != http.StatusBadRequest { // AutoJoin off: unknown sensor
		t.Fatalf("all-rejected batch status %d, want 400", status)
	}
}

func TestHTTPJoinLeave(t *testing.T) {
	_, srv := startHTTP(t, testConfig())

	if status, _ := doJSON(t, "POST", srv.URL+"/v1/sensors/12", ""); status != http.StatusCreated {
		t.Fatalf("join status %d, want 201", status)
	}
	if status, _ := doJSON(t, "POST", srv.URL+"/v1/sensors/12", ""); status != http.StatusConflict {
		t.Fatalf("dup join status %d, want 409", status)
	}
	status, body := doJSON(t, "GET", srv.URL+"/v1/sensors", "")
	if status != http.StatusOK || len(body["sensors"].([]any)) != 1 {
		t.Fatalf("sensors listing: status %d body %v", status, body)
	}
	if status, _ := doJSON(t, "DELETE", srv.URL+"/v1/sensors/12", ""); status != http.StatusOK {
		t.Fatalf("leave status %d, want 200", status)
	}
	if status, _ := doJSON(t, "DELETE", srv.URL+"/v1/sensors/12", ""); status != http.StatusNotFound {
		t.Fatalf("dup leave status %d, want 404", status)
	}
	if status, _ := doJSON(t, "POST", srv.URL+"/v1/sensors/notanumber", ""); status != http.StatusBadRequest {
		t.Fatalf("bad id join status %d, want 400", status)
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	cfg := testConfig()
	cfg.AutoJoin = true
	s, srv := startHTTP(t, cfg)
	if err := s.Ingest(Reading{Sensor: 1, At: at(1), Values: []float64{20}}); err != nil {
		t.Fatal(err)
	}
	mustFlush(t, s)

	status, health := doJSON(t, "GET", srv.URL+"/healthz", "")
	if status != http.StatusOK || health["status"] != "ok" || health["sensors"].(float64) != 1 {
		t.Fatalf("healthz: status %d body %v", status, health)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{
		"innetd_readings_accepted_total 1",
		"innetd_readings_observed_total 1",
		"innetd_sensors 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q in:\n%s", want, metrics)
		}
	}
}

// TestUDPLineProtocol drives the firehose path end to end: a burst of
// good lines (with a planted outlier), malformed lines that must be
// counted and skipped, and a clean listener shutdown.
func TestUDPLineProtocol(t *testing.T) {
	cfg := testConfig()
	cfg.AutoJoin = true
	s := newService(t, cfg)

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.ServeUDP(pc) }()

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var lines []string
	for i := 1; i <= 5; i++ {
		lines = append(lines, fmt.Sprintf("%d 60000 %0.1f", i, 20+float64(i)*0.1))
	}
	lines = append(lines,
		"7 61000 55.3",    // the outlier
		"",                // blank: ignored
		"banana 1000 2.0", // malformed sensor
		"3 notatime 2.0",  // malformed timestamp
		"3 62000 carrot",  // malformed value
		"3",               // too few fields
	)
	if _, err := conn.Write([]byte(strings.Join(lines, "\n"))); err != nil {
		t.Fatal(err)
	}

	// UDP delivery is asynchronous: wait for the readings to land.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Observed < 6 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: stats %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	mustFlush(t, s)

	if got := s.Stats().Malformed; got != 4 {
		t.Errorf("Malformed = %d, want 4", got)
	}
	est, err := s.Estimate(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 1 || est[0].Value[0] != 55.3 {
		t.Fatalf("estimate %v, want the 55.3 outlier", est)
	}

	if err := pc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveDone:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("ServeUDP returned %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeUDP did not return after the socket closed")
	}
}

// TestServeUDPReturnsOnServiceClose pins the documented shutdown path:
// closing the service must end ServeUDP even when the socket is quiet.
func TestServeUDPReturnsOnServiceClose(t *testing.T) {
	s := newService(t, testConfig())
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.ServeUDP(pc) }()

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveDone:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("ServeUDP returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeUDP did not return after the service closed")
	}
}
