package ingest

import (
	"context"
	"sync"
	"testing"
	"time"

	"innet/internal/core"
)

// TestIngestFlushBarrierUnderConcurrency is the -race stress pin for the
// enqueue path, which mutates per-sensor queues under the service READ
// lock: concurrent Ingest, Flush, Snapshot, stats scrapes and sensor
// churn all run at once against deliberately tiny queues so the
// latest-wins shedding fires constantly. It asserts the two invariants
// the load harness's exactness checkpoints stand on:
//
//   - the barrier: whenever Flush returns, every reading accepted
//     before the call has been either observed or shed — there is no
//     window where a reading sits queued while pending reads 0 (the
//     lost-update this test was written against: enqueue used to
//     increment pending only after the queue send, so a concurrent
//     Flush could return with readings still in flight);
//   - conservation: after the fleet quiesces, accepted == observed +
//     dropped and pending == 0, i.e. the latest-wins drop counters
//     account for every shed reading even when Ingest, the feeders and
//     Leave's drain race on the same queues.
func TestIngestFlushBarrierUnderConcurrency(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	svc, err := New(Config{
		Detector:   core.Config{Ranker: core.KNN{K: 2}, N: 3, Window: time.Hour},
		AutoJoin:   true,
		QueueDepth: 2, // force constant shedding
		MaxBatch:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const (
		producers = 4
		perProd   = 1500
		sensors   = 3
	)
	var prodWG, wg sync.WaitGroup
	stop := make(chan struct{})

	// Producers: monotone data time per sensor so the staleness gate
	// stays open; values are unremarkable, throughput is the point.
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for i := 0; i < perProd; i++ {
				r := Reading{
					Sensor: core.NodeID(1 + (p*perProd+i)%sensors),
					At:     time.Duration(p*perProd+i) * time.Millisecond,
					Values: []float64{20 + float64(i%7)},
				}
				if err := svc.Ingest(r); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(p)
	}

	// The barrier check: every Flush return must leave no pending work
	// behind relative to what was accepted before the call. Dropped and
	// observed only grow, so accepted-before ≤ observed-after +
	// dropped-after is the strongest raceable form of the invariant.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			before := svc.Stats()
			if err := svc.Flush(ctx); err != nil {
				return
			}
			after := svc.Stats()
			if before.Accepted > after.Observed+after.Dropped {
				t.Errorf("Flush returned early: accepted %d before the call, only %d observed + %d dropped after",
					before.Accepted, after.Observed, after.Dropped)
				return
			}
		}
	}()

	// Readers: snapshots and stats scrapes racing the enqueue path. The
	// pending gauge must never read negative — with the pre-fix ordering
	// (increment after the queue send) a feeder could observe and
	// decrement a reading before its producer had counted it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if p := svc.Stats().Pending; p < 0 {
				t.Errorf("pending gauge went negative: %d", p)
				return
			}
			_, _ = svc.Snapshot(ctx)
			_ = svc.SensorStats()
			_ = svc.QueueDepth(1)
		}
	}()

	// Churn: one sensor joins and leaves repeatedly, exercising Leave's
	// queue drain against concurrent Ingest to the same ID.
	wg.Add(1)
	go func() {
		defer wg.Done()
		churn := core.NodeID(sensors + 1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = svc.Ingest(Reading{Sensor: churn, At: time.Hour, Values: []float64{21}})
			_ = svc.Leave(churn)
		}
	}()

	// Wait for the producers, then stop the background load.
	prodWG.Wait()
	close(stop)
	wg.Wait()

	// Quiesce and check conservation.
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Pending != 0 {
		t.Fatalf("pending = %d after final Flush, want 0", st.Pending)
	}
	if st.Accepted != st.Observed+st.Dropped {
		t.Fatalf("counter conservation broken: accepted %d != observed %d + dropped %d",
			st.Accepted, st.Observed, st.Dropped)
	}
	if st.Dropped == 0 {
		t.Fatal("stress produced no drops; QueueDepth too large for the test to bite")
	}
	// The per-sensor drop counters must sum to the service total.
	var perSensor uint64
	for _, sn := range svc.SensorStats() {
		perSensor += sn.Drops
	}
	if perSensor > st.Dropped {
		t.Fatalf("per-sensor drops %d exceed service total %d", perSensor, st.Dropped)
	}
}
