package ingest

import (
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// scrapeText fetches the service's /metrics page as text.
func scrapeText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// sampleLines returns the non-comment lines of an exposition page.
func sampleLines(body string) []string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out
}

// TestMetricsGolden pins the registry-backed /metrics page against the
// retired hand-rolled writer: every legacy series key must still exist
// with its legacy spelling (integer values without a decimal point,
// %q-quoted label values), in the legacy family order, with no WAL
// series when no store is attached — plus the histogram families this
// layer added.
func TestMetricsGolden(t *testing.T) {
	cfg := testConfig()
	cfg.AutoJoin = true
	s, srv := startHTTP(t, cfg)
	for _, r := range []Reading{
		{Sensor: 1, At: at(1), Values: []float64{20.0}},
		{Sensor: 2, At: at(1), Values: []float64{20.2}},
		{Sensor: 1, At: at(2), Values: []float64{20.1}},
	} {
		if err := s.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	mustFlush(t, s)
	body := scrapeText(t, srv.URL)

	// Exact lines: deterministic counters and gauges, byte for byte.
	for _, want := range []string{
		`innetd_readings_accepted_total 3`,
		`innetd_readings_observed_total 3`,
		`innetd_readings_dropped_total 0`,
		`innetd_readings_stale_total 0`,
		`innetd_readings_malformed_total 0`,
		`innetd_readings_unknown_sensor_total 0`,
		`innetd_sensor_joins_total 2`,
		`innetd_sensor_leaves_total 0`,
		`innetd_sensors 2`,
		`innetd_readings_pending 0`,
		`innetd_sensor_queue_depth{sensor="1"} 0`,
		`innetd_sensor_queue_depth{sensor="2"} 0`,
		`innetd_sensor_queue_drops_total{sensor="1"} 0`,
		`innetd_sensor_queue_drops_total{sensor="2"} 0`,
		`innetd_queue_latency_seconds_count 3`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("metrics missing exact line %q in:\n%s", want, body)
		}
	}

	// Histogram metadata for the new families.
	for _, want := range []string{
		"# TYPE innetd_queue_latency_seconds histogram",
		"# TYPE innetd_observe_batch_seconds histogram",
		"# TYPE innetd_query_latency_seconds histogram",
		`innetd_queue_latency_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// No store attached: the WAL families must be absent, exactly like
	// the legacy writer's conditional block.
	if strings.Contains(body, "innetd_wal_") {
		t.Error("WAL series present without a store")
	}

	// Family order matches the legacy writer (first sample of each).
	order := []string{
		"innetd_readings_accepted_total",
		"innetd_readings_observed_total",
		"innetd_observe_batches_total",
		"innetd_readings_dropped_total",
		"innetd_readings_stale_total",
		"innetd_readings_malformed_total",
		"innetd_readings_unknown_sensor_total",
		"innetd_sensor_joins_total",
		"innetd_sensor_leaves_total",
		"innetd_sensors",
		"innetd_readings_pending",
		"innetd_sensor_queue_depth",
		"innetd_sensor_queue_drops_total",
		"innetd_queue_latency_seconds",
		"innetd_observe_batch_seconds",
		"innetd_query_latency_seconds",
	}
	lines := sampleLines(body)
	firstAt := func(name string) int {
		for i, line := range lines {
			if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") ||
				strings.HasPrefix(line, name+"_bucket") {
				return i
			}
		}
		return -1
	}
	prev := -1
	for _, name := range order {
		i := firstAt(name)
		if i < 0 {
			t.Errorf("family %s missing", name)
			continue
		}
		if i < prev {
			t.Errorf("family %s out of legacy order (at line %d, previous family at %d)", name, i, prev)
		}
		prev = i
	}

	// The query histogram only moves when a query is served.
	if !strings.Contains(body, "innetd_query_latency_seconds_count 0") {
		t.Error("query latency observed before any query")
	}
	resp, err := http.Get(srv.URL + "/v1/outliers")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if body = scrapeText(t, srv.URL); !strings.Contains(body, "innetd_query_latency_seconds_count 1") {
		t.Error("query latency not observed after one query")
	}
}

// A -slow-query threshold of one nanosecond flags every query. The
// log line lands after the response is written (deferred), so poll.
func TestSlowQueryLog(t *testing.T) {
	var buf lockedBuffer
	cfg := testConfig()
	cfg.AutoJoin = true
	cfg.SlowQuery = time.Nanosecond
	cfg.Logger = slog.New(slog.NewTextHandler(&buf, nil))
	_, srv := startHTTP(t, cfg)
	resp, err := http.Get(srv.URL + "/v1/outliers?sensor=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		logged := buf.String()
		if logged != "" {
			if !strings.Contains(logged, "slow query") || !strings.Contains(logged, "sensor=1") {
				t.Fatalf("slow-query log = %q, want the query string flagged", logged)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no slow-query log record within the deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// lockedBuffer is a goroutine-safe strings.Builder for log capture.
type lockedBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
