package ingest

import (
	"strconv"
	"sync/atomic"
	"time"

	"innet/internal/obs"
)

// serviceObs is the daemon's metrics surface: one obs.Registry whose
// counter and gauge series are closures over the service's existing
// atomics (so the hot path keeps its plain atomic increments — the
// registry only reads at scrape time) plus the latency histograms the
// hot paths observe into directly. Registration order reproduces the
// series order of the retired hand-rolled /metrics writer so existing
// dashboards and the smoke scripts' greps keep working.
type serviceObs struct {
	reg *obs.Registry

	queueLat   *obs.Histogram // enqueue → feeder drain, per reading
	observeDur *obs.Histogram // one ObserveBatch ranking pass
	queryLat   *obs.Histogram // GET /v1/outliers service time

	// WAL durations; nil without a store, like the legacy WAL counters.
	walAppend  *obs.Histogram
	walFsync   *obs.Histogram
	walCompact *obs.Histogram
}

func newServiceObs(s *Service) *serviceObs {
	r := obs.NewRegistry()
	m := &serviceObs{reg: r}

	counter := func(name, help string, v *atomic.Uint64) {
		r.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter("innetd_readings_accepted_total", "Readings admitted to a sensor queue.", &s.accepted)
	counter("innetd_readings_observed_total", "Readings fed into a detector.", &s.observed)
	counter("innetd_observe_batches_total", "Batch-observe events (ranking passes).", &s.batches)
	counter("innetd_readings_dropped_total", "Readings shed by the latest-wins policy.", &s.dropped)
	counter("innetd_readings_stale_total", "Readings rejected as older than the sliding window.", &s.stale)
	counter("innetd_readings_malformed_total", "Payloads, lines, or readings that failed to parse.", &s.malformed)
	counter("innetd_readings_unknown_sensor_total", "Readings rejected for unknown sensor IDs.", &s.unknown)
	counter("innetd_sensor_joins_total", "Sensors attached (initial + dynamic).", &s.joins)
	counter("innetd_sensor_leaves_total", "Sensors detached.", &s.leaves)
	r.GaugeFunc("innetd_sensors", "Currently attached sensors.", func() float64 {
		s.mu.RLock()
		n := len(s.sensors)
		s.mu.RUnlock()
		return float64(n)
	})
	r.GaugeFunc("innetd_readings_pending", "Readings accepted but not yet observed.", func() float64 {
		return float64(s.pending.Load())
	})

	// Durability series, registered only when a store is attached so the
	// e2e suites can assert their presence (and absence) by flag.
	if s.cfg.Store != nil {
		walCounter := func(name, help string, read func() uint64) {
			r.CounterFunc(name, help, func() float64 { return float64(read()) })
		}
		walCounter("innetd_wal_bytes_total", "Bytes appended to the WAL.", func() uint64 {
			m, _, _, _ := s.StoreMetrics()
			return m.WALBytes
		})
		walCounter("innetd_wal_records_total", "Records appended to the WAL.", func() uint64 {
			m, _, _, _ := s.StoreMetrics()
			return m.WALRecords
		})
		walCounter("innetd_wal_fsyncs_total", "Fsync calls issued by the store.", func() uint64 {
			m, _, _, _ := s.StoreMetrics()
			return m.Fsyncs
		})
		walCounter("innetd_wal_compactions_total", "Snapshot rewrites.", func() uint64 {
			m, _, _, _ := s.StoreMetrics()
			return m.Compacts
		})
		walCounter("innetd_wal_truncated_bytes_total", "Torn-tail bytes discarded at open.", func() uint64 {
			m, _, _, _ := s.StoreMetrics()
			return m.Truncated
		})
		walCounter("innetd_snapshot_corrupt_total", "Snapshot files discarded as corrupt at load.", func() uint64 {
			m, _, _, _ := s.StoreMetrics()
			return m.SnapCorrupt
		})
		walCounter("innetd_wal_append_errors_total", "Failed store appends (the fleet keeps serving).", func() uint64 {
			_, walErrs, _, _ := s.StoreMetrics()
			return walErrs
		})
		r.GaugeFunc("innetd_replayed_records", "Records restored by the last warm start.", func() float64 {
			_, _, replayed, _ := s.StoreMetrics()
			return float64(replayed)
		})
	}

	// Per-sensor queue state: depth now, drops since attach. The drop
	// total above says whether shedding happened; these say where.
	r.LabeledGaugeFunc("innetd_sensor_queue_depth", "Readings currently queued, per sensor.",
		func(emit func(string, float64)) {
			for _, sn := range s.SensorStats() {
				emit(obs.Label("sensor", strconv.Itoa(int(sn.ID))), float64(sn.Queue))
			}
		})
	r.LabeledCounterFunc("innetd_sensor_queue_drops_total", "Readings shed by the latest-wins policy, per sensor.",
		func(emit func(string, float64)) {
			for _, sn := range s.SensorStats() {
				emit(obs.Label("sensor", strconv.Itoa(int(sn.ID))), float64(sn.Drops))
			}
		})

	b := obs.LatencyBuckets()
	m.queueLat = r.Histogram("innetd_queue_latency_seconds",
		"Time a reading waits between enqueue and its feeder draining it.", b)
	m.observeDur = r.Histogram("innetd_observe_batch_seconds",
		"Duration of one batch-observe ranking pass.", b)
	m.queryLat = r.Histogram("innetd_query_latency_seconds",
		"Service time of GET /v1/outliers.", b)
	if s.cfg.Store != nil {
		m.walAppend = r.Histogram("innetd_wal_append_seconds",
			"WAL write+flush duration per append batch.", b)
		m.walFsync = r.Histogram("innetd_wal_fsync_seconds",
			"Duration of one fsync (WAL, snapshot, or directory).", b)
		m.walCompact = r.Histogram("innetd_wal_compact_seconds",
			"Duration of one whole snapshot rewrite.", b)
	}
	// Registered last so existing exposition order is undisturbed.
	obs.RegisterBuildInfo(r)
	return m
}

// storeTiming routes the store's durability-op durations into the WAL
// histograms; installed on stores that expose SetTiming.
func (m *serviceObs) storeTiming(op string, d time.Duration) {
	switch op {
	case "append":
		m.walAppend.Observe(d.Seconds())
	case "fsync":
		m.walFsync.Observe(d.Seconds())
	case "compact":
		m.walCompact.Observe(d.Seconds())
	}
}
