package ingest_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"innet/internal/core"
	"innet/internal/ingest"
)

// Example shows the daemon path from the client's seat: stand up the
// ingest service behind its HTTP API (exactly what cmd/innetd serves),
// POST a batch of observations, and query the converged outlier estimate.
func Example() {
	svc, err := ingest.New(ingest.Config{
		Detector: core.Config{Ranker: core.NN(), N: 1, Window: time.Hour},
		AutoJoin: true,
	})
	if err != nil {
		panic(err)
	}
	defer svc.Close()

	daemon := httptest.NewServer(svc.Handler())
	defer daemon.Close()

	resp, err := http.Post(daemon.URL+"/v1/observations", "application/json",
		strings.NewReader(`{"readings":[
			{"sensor":1,"at_ms":60000,"values":[20.0]},
			{"sensor":2,"at_ms":60000,"values":[20.3]},
			{"sensor":3,"at_ms":61000,"values":[55.3]}
		]}`))
	if err != nil {
		panic(err)
	}
	resp.Body.Close()

	// Wait until every posted reading has been detected on and the
	// fleet's estimates have converged.
	if err := svc.Flush(context.Background()); err != nil {
		panic(err)
	}

	estimate, err := http.Get(daemon.URL + "/v1/outliers?sensor=1")
	if err != nil {
		panic(err)
	}
	defer estimate.Body.Close()
	body, err := io.ReadAll(estimate.Body)
	if err != nil {
		panic(err)
	}
	fmt.Print(string(body))
	// Output: {"sensor":1,"outliers":[{"sensor":3,"seq":0,"at_ms":61000,"values":[55.3]}]}
}
