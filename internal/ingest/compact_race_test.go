package ingest

import (
	"context"
	"sync"
	"testing"
	"time"

	"innet/internal/core"
	"innet/internal/store"
)

// gateStore wraps a Store and blocks inside Compact until released, so a
// test can interleave appends with an in-flight compaction at exactly the
// point the snapshot→truncate race used to lose acknowledged records.
type gateStore struct {
	store.Store
	entered chan struct{} // signaled (non-blocking) when Compact is entered
	release chan struct{} // Compact proceeds once this is closed
}

func (g *gateStore) Compact(recs []store.Record, ids []store.Identity) error {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.release
	return g.Store.Compact(recs, ids)
}

func newStoreService(t *testing.T, st store.Store) *Service {
	t.Helper()
	svc, err := New(Config{
		Detector: core.Config{Ranker: core.KNN{K: 2}, N: 2, Window: 10 * time.Minute},
		AutoJoin: true,
		// Manual compaction only: the test drives CompactStore itself.
		CompactEvery: 1 << 30,
		Store:        st,
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// A record persisted (and acknowledged) while CompactStore is mid-flight
// must survive the compaction: it is either folded into the compacted
// state or appended after the truncation, never erased by it.
func TestCompactStoreKeepsRecordsPersistedDuringCompaction(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	mem := store.NewMem()
	gs := &gateStore{Store: mem, entered: make(chan struct{}, 1), release: make(chan struct{})}
	svc := newStoreService(t, gs)
	defer svc.Close()

	if err := svc.Ingest(Reading{Sensor: 1, At: time.Second, Values: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	compErr := make(chan error, 1)
	go func() { compErr <- svc.CompactStore(ctx) }()
	select {
	case <-gs.entered:
	case <-ctx.Done():
		t.Fatal("CompactStore never reached Compact")
	}

	// The compaction now holds its snapshot (reading 1#0 only) and is
	// blocked inside Compact. Ingest a second reading: its persist must
	// not be allowed to land in the log the compaction will truncate.
	if err := svc.Ingest(Reading{Sensor: 1, At: 2 * time.Second, Values: []float64{2}}); err != nil {
		t.Fatal(err)
	}
	// Give the feeder time to mint and attempt the store append.
	time.Sleep(100 * time.Millisecond)
	close(gs.release)
	if err := <-compErr; err != nil {
		t.Fatalf("CompactStore: %v", err)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	st, err := gs.Load()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range st.Records {
		if r.Sensor == 1 && r.Seq == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("record 1#1 persisted during compaction was lost; surviving records: %+v", st.Records)
	}
}

// Hammering ingest concurrently with repeated compactions must leave
// every in-window point recoverable from the store: nothing acknowledged
// may fall into the gap between a compaction's snapshot and its WAL
// truncation (window large, so no point ever evicts).
func TestCompactStoreConcurrentIngestNoLoss(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	mem := store.NewMem()
	svc := newStoreService(t, mem)
	defer svc.Close()

	const readings = 300
	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan struct{})
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < readings; i++ {
			r := Reading{
				Sensor: core.NodeID(1 + i%3),
				At:     time.Duration(i/3) * time.Millisecond,
				Values: []float64{float64(i)},
			}
			if err := svc.Ingest(r); err != nil {
				t.Errorf("ingest %d: %v", i, err)
				return
			}
		}
	}()
	for {
		if err := svc.CompactStore(ctx); err != nil {
			t.Fatalf("CompactStore: %v", err)
		}
		select {
		case <-done:
			wg.Wait()
			if err := svc.Flush(ctx); err != nil {
				t.Fatal(err)
			}
			window, err := svc.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			st, err := mem.Load()
			if err != nil {
				t.Fatal(err)
			}
			durable := make(map[core.PointID]bool, len(st.Records))
			for _, r := range st.Records {
				durable[r.Point().ID] = true
			}
			for _, p := range window {
				if !durable[p.ID] {
					t.Errorf("in-window point %v missing from the store after concurrent compactions", p.ID)
				}
			}
			return
		default:
		}
	}
}
