package ingest

import (
	"bytes"
	"fmt"
	"net"
	"strconv"
	"sync/atomic"
	"time"

	"innet/internal/core"
)

// UDP line protocol: the firehose path for constrained emitters (motes,
// shell scripts, netcat). A datagram carries one reading per line:
//
//	<sensor> <at_ms> <v1> [v2 ...]\n
//
// e.g. "7 120000 55.3" — sensor 7, data time 120 s, temperature 55.3.
// Fields are ASCII separated by spaces or tabs; blank lines are ignored;
// a line that fails to parse is dropped and counted (Stats.Malformed)
// without affecting the rest of the datagram, exactly like a corrupted
// radio frame. There are no acknowledgements: delivery is best-effort by
// design, matching the paper's loss model — the HTTP endpoint is the
// path that reports per-reading acceptance.

// maxUDPPayload bounds one datagram; readings are tiny, so this fits
// hundreds of lines.
const maxUDPPayload = 64 * 1024

// ServeUDP reads line-protocol datagrams from conn and ingests each
// parsed reading, until conn is closed or the service closes (a watcher
// forces the blocked read out via a read deadline, so Close really does
// end the loop on a quiet socket). It always returns a non-nil error:
// net.ErrClosed after the socket closed, ErrClosed after the service did.
func (s *Service) ServeUDP(conn net.PacketConn) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-s.ctx.Done():
			_ = conn.SetReadDeadline(time.Now())
		case <-done:
		}
	}()

	buf := make([]byte, maxUDPPayload)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if s.ctx.Err() != nil {
				return ErrClosed
			}
			return err
		}
		s.ingestLines(trimTruncated(buf, n, &s.malformed))
	}
}

// trimTruncated handles the kernel's truncation sentinel on a
// line-protocol read: a datagram that fills the buffer exactly may have
// lost its tail, leaving a final line cut mid-field that could still
// parse — as the wrong reading. Drop everything past the last complete
// line and count one malformed payload; complete lines ahead of the cut
// are preserved, like the rest of a datagram with one corrupt line.
func trimTruncated(buf []byte, n int, malformed *atomic.Uint64) []byte {
	payload := buf[:n]
	if n < len(buf) {
		return payload
	}
	malformed.Add(1)
	if i := bytes.LastIndexByte(payload, '\n'); i >= 0 {
		return payload[:i]
	}
	return nil
}

// ingestLines parses one datagram's worth of line protocol.
func (s *Service) ingestLines(payload []byte) {
	for _, line := range bytes.Split(payload, []byte{'\n'}) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		r, err := ParseLine(line)
		if err != nil {
			s.malformed.Add(1)
			continue
		}
		_ = s.Ingest(r) // rejections are counted by Ingest; UDP has no reply
	}
}

// ParseLine decodes one line-protocol reading,
// "<sensor> <at_ms> <v1> [v2 ...]". It is exported so other front doors
// (the cluster coordinator's UDP listener) accept the same wire format.
func ParseLine(line []byte) (Reading, error) {
	fields := bytes.Fields(line)
	if len(fields) < 3 {
		return Reading{}, fmt.Errorf("%w: want at least 3 fields, got %d", ErrBadReading, len(fields))
	}
	sensor, err := strconv.ParseUint(string(fields[0]), 10, 16)
	if err != nil {
		return Reading{}, fmt.Errorf("%w: sensor %q", ErrBadReading, fields[0])
	}
	atMS, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil {
		return Reading{}, fmt.Errorf("%w: timestamp %q", ErrBadReading, fields[1])
	}
	values := make([]float64, 0, len(fields)-2)
	for _, f := range fields[2:] {
		v, err := strconv.ParseFloat(string(f), 64)
		if err != nil {
			return Reading{}, fmt.Errorf("%w: value %q", ErrBadReading, f)
		}
		values = append(values, v)
	}
	return Reading{
		Sensor: core.NodeID(sensor),
		At:     time.Duration(atMS) * time.Millisecond,
		Values: values,
	}, nil
}
