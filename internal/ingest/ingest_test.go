package ingest

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"innet/internal/core"
)

func testConfig() Config {
	return Config{
		Detector: core.Config{
			Ranker: core.NN(),
			N:      1,
			Window: time.Hour,
		},
	}
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func mustFlush(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Flush(ctx); err != nil {
		t.Fatal("flush:", err)
	}
}

func at(sec int) time.Duration { return time.Duration(sec) * time.Second }

func TestIngestMalformedReadings(t *testing.T) {
	s := newService(t, testConfig())
	for name, r := range map[string]Reading{
		"sensor-zero":  {Sensor: 0, At: 0, Values: []float64{1}},
		"negative-ts":  {Sensor: 1, At: -time.Second, Values: []float64{1}},
		"empty-vector": {Sensor: 1, At: 0},
		"nan":          {Sensor: 1, At: 0, Values: []float64{math.NaN()}},
		"inf":          {Sensor: 1, At: 0, Values: []float64{math.Inf(1)}},
		"too-wide":     {Sensor: 1, At: 0, Values: make([]float64, 256)},
	} {
		if err := s.Ingest(r); !errors.Is(err, ErrBadReading) {
			t.Errorf("%s: got %v, want ErrBadReading", name, err)
		}
	}
	if got := s.Stats().Malformed; got != 6 {
		t.Errorf("Malformed = %d, want 6", got)
	}
	if got := s.Stats().Accepted; got != 0 {
		t.Errorf("Accepted = %d, want 0", got)
	}
}

func TestIngestUnknownSensorRejected(t *testing.T) {
	s := newService(t, testConfig()) // AutoJoin off
	err := s.Ingest(Reading{Sensor: 9, At: 0, Values: []float64{20}})
	if !errors.Is(err, ErrUnknownSensor) {
		t.Fatalf("got %v, want ErrUnknownSensor", err)
	}
	if got := s.Stats().Unknown; got != 1 {
		t.Errorf("Unknown = %d, want 1", got)
	}
}

// TestJoinThenBurst is the dynamic-join path under fire: many goroutines
// burst readings at sensors that do not exist yet, racing the auto-join.
// Every reading must be accepted, every sensor attached exactly once, and
// the planted outlier must surface everywhere.
func TestJoinThenBurst(t *testing.T) {
	cfg := testConfig()
	cfg.AutoJoin = true
	s := newService(t, cfg)

	const sensors, perSensor = 8, 25
	var wg sync.WaitGroup
	for id := core.NodeID(1); id <= sensors; id++ {
		for i := 0; i < perSensor; i++ {
			wg.Add(1)
			go func(id core.NodeID, i int) {
				defer wg.Done()
				v := 20.0 + float64(i)*0.01
				if id == 3 && i == 7 {
					v = 55.3 // the planted fault
				}
				if err := s.Ingest(Reading{Sensor: id, At: at(i), Values: []float64{v}}); err != nil {
					t.Error(err)
				}
			}(id, i)
		}
	}
	wg.Wait()
	mustFlush(t, s)

	st := s.Stats()
	if st.Accepted != sensors*perSensor || st.Observed != sensors*perSensor {
		t.Fatalf("accepted=%d observed=%d, want both %d", st.Accepted, st.Observed, sensors*perSensor)
	}
	if st.Joins != sensors || st.Sensors != sensors {
		t.Fatalf("joins=%d sensors=%d, want both %d", st.Joins, st.Sensors, sensors)
	}
	// Batch-observe fast path: bursts coalesce, so ranking passes stay
	// well under one per reading.
	if st.Batches >= st.Observed {
		t.Errorf("batches=%d not below observed=%d; batching never coalesced", st.Batches, st.Observed)
	}
	for _, id := range s.Sensors() {
		est, err := s.Estimate(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(est) != 1 || est[0].Value[0] != 55.3 {
			t.Fatalf("sensor %d estimate %v, want the 55.3 outlier", id, est)
		}
	}
}

// TestBackpressureLatestWins pins the documented drop policy: with the
// feeder stalled, a full queue sheds its oldest reading for each new one,
// so the queue always holds the newest QueueDepth readings.
func TestBackpressureLatestWins(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 4
	s := newService(t, cfg)
	if err := s.Join(1); err != nil {
		t.Fatal(err)
	}

	s.mu.RLock()
	sn := s.sensors[1]
	s.mu.RUnlock()
	close(sn.stop) // stall the consumer
	<-sn.feedDone

	const total = 10
	for i := 0; i < total; i++ {
		if err := s.Ingest(Reading{Sensor: 1, At: at(i), Values: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}

	st := s.Stats()
	if st.Accepted != total {
		t.Errorf("Accepted = %d, want %d (ingestion never blocks)", st.Accepted, total)
	}
	if st.Dropped != uint64(total-cfg.QueueDepth) {
		t.Errorf("Dropped = %d, want %d", st.Dropped, total-cfg.QueueDepth)
	}
	if got := s.pending.Load(); got != int64(cfg.QueueDepth) {
		t.Errorf("pending = %d, want %d", got, cfg.QueueDepth)
	}
	// The survivors are the newest readings, oldest-first.
	for want := total - cfg.QueueDepth; want < total; want++ {
		got := <-sn.queue
		if got.obs.Value[0] != float64(want) {
			t.Fatalf("queue yielded value %v, want %d (latest-wins order)", got.obs.Value[0], want)
		}
		s.pending.Add(-1) // keep Close/Flush accounting honest
	}
}

func TestOutOfOrderAndStaleTimestamps(t *testing.T) {
	cfg := testConfig()
	cfg.Detector.Window = time.Minute
	s := newService(t, cfg)
	if err := s.Join(1); err != nil {
		t.Fatal(err)
	}

	ingest := func(sec int) error {
		return s.Ingest(Reading{Sensor: 1, At: at(sec), Values: []float64{float64(sec)}})
	}
	if err := ingest(100); err != nil {
		t.Fatal(err)
	}
	if err := ingest(70); err != nil { // out of order but inside the window
		t.Fatalf("in-window out-of-order reading rejected: %v", err)
	}
	if err := ingest(10); !errors.Is(err, ErrStale) { // 10s < 100s − 60s
		t.Fatalf("got %v, want ErrStale", err)
	}
	mustFlush(t, s)

	st := s.Stats()
	if st.Observed != 2 || st.Stale != 1 {
		t.Fatalf("observed=%d stale=%d, want 2 and 1", st.Observed, st.Stale)
	}
}

func TestLeaveDetachesSensor(t *testing.T) {
	s := newService(t, testConfig())
	for id := core.NodeID(1); id <= 3; id++ {
		if err := s.Join(id); err != nil {
			t.Fatal(err)
		}
		if err := s.Ingest(Reading{Sensor: id, At: at(1), Values: []float64{20 + float64(id)*0.1}}); err != nil {
			t.Fatal(err)
		}
	}
	mustFlush(t, s)

	if err := s.Leave(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Leave(2); err == nil {
		t.Fatal("second Leave succeeded, want error")
	}
	if got := s.Sensors(); len(got) != 2 {
		t.Fatalf("Sensors() = %v, want 2 entries", got)
	}
	if err := s.Ingest(Reading{Sensor: 2, At: at(2), Values: []float64{20}}); !errors.Is(err, ErrUnknownSensor) {
		t.Fatalf("ingest to departed sensor: got %v, want ErrUnknownSensor", err)
	}
	// The survivors keep working: fresh data still flows and converges.
	if err := s.Ingest(Reading{Sensor: 1, At: at(3), Values: []float64{48}}); err != nil {
		t.Fatal(err)
	}
	mustFlush(t, s)
	est, err := s.Estimate(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 1 || est[0].Value[0] != 48 {
		t.Fatalf("sensor 3 estimate %v, want the 48 outlier", est)
	}
}

func TestEstimatesConvergeAcrossFleet(t *testing.T) {
	s := newService(t, testConfig())
	const fleet = 5
	for id := core.NodeID(1); id <= fleet; id++ {
		if err := s.Join(id); err != nil {
			t.Fatal(err)
		}
	}
	for id := core.NodeID(1); id <= fleet; id++ {
		v := 19.5 + float64(id)*0.2
		if id == 3 {
			v = -40 // frozen battery
		}
		if err := s.Ingest(Reading{Sensor: id, At: at(int(id)), Values: []float64{v}}); err != nil {
			t.Fatal(err)
		}
	}
	mustFlush(t, s)

	first, err := s.Estimate(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 || first[0].Value[0] != -40 {
		t.Fatalf("estimate %v, want the -40 outlier", first)
	}
	for id := core.NodeID(2); id <= fleet; id++ {
		est, err := s.Estimate(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(est) != len(first) || est[0].ID != first[0].ID {
			t.Fatalf("sensor %d estimate %v disagrees with sensor 1's %v", id, est, first)
		}
	}
}

// TestMaxSensorsCapsFleet pins the guard against unauthenticated input
// minting unbounded sensors: joins beyond the cap — explicit or
// auto-join — are rejected, and leaving frees a slot.
func TestMaxSensorsCapsFleet(t *testing.T) {
	cfg := testConfig()
	cfg.AutoJoin = true
	cfg.MaxSensors = 2
	s := newService(t, cfg)

	for id := core.NodeID(1); id <= 2; id++ {
		if err := s.Ingest(Reading{Sensor: id, At: 0, Values: []float64{20}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Ingest(Reading{Sensor: 3, At: 0, Values: []float64{20}}); !errors.Is(err, ErrFleetFull) {
		t.Fatalf("auto-join over cap: got %v, want ErrFleetFull", err)
	}
	if err := s.Join(3); !errors.Is(err, ErrFleetFull) {
		t.Fatalf("explicit join over cap: got %v, want ErrFleetFull", err)
	}
	mustFlush(t, s)
	if err := s.Leave(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Join(3); err != nil {
		t.Fatalf("join after leave freed a slot: %v", err)
	}
}

func TestCloseRefusesFurtherWork(t *testing.T) {
	s := newService(t, testConfig())
	if err := s.Join(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close:", err)
	}
	if err := s.Ingest(Reading{Sensor: 1, At: 0, Values: []float64{1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close: got %v, want ErrClosed", err)
	}
	if err := s.Join(2); !errors.Is(err, ErrClosed) {
		t.Fatalf("join after close: got %v, want ErrClosed", err)
	}
}
