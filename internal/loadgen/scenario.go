// Package loadgen is the load harness: a config-driven generator and
// evaluator that fires synthetic sensor fleets at a live innetd or
// innet-coord cluster over the UDP line protocol and records what the
// system did with them — readings/sec/shard, enqueue-drop rate, query
// latency percentiles per merge mode, per-round merge payload — into a
// BENCH_innetload_<scenario>.json. Scenarios are JSON files selecting a
// reading regime (steady, drift, burst outliers, diurnal cycles) and
// overlays (node churn, simulated radio loss, adversarial collusion),
// all driven by one seeded PRNG so a scenario replays bit-identically.
//
// The harness separates the fleet it simulates from the sensors the
// target sees: NodeID is uint16 and a clique mesh is O(n²) links, so a
// million-sensor fleet is multiplexed onto a bounded set of attached
// physical IDs (virtual sensor v emits as physical ID 1 + v mod
// Attached). The target's per-sensor state stays small while the
// harness sweeps a fleet of any size through it.
//
// Exactness checkpoints are the harness's correctness teeth: between
// firing segments it freezes ingestion (the Flush barrier), fetches the
// window the target computed its answer over, recomputes the answer
// centrally with baseline.Compute, and diffs — per merge mode. A run
// whose checkpoints all match is a run where the distributed answer was
// exact at every freeze point, drops, churn and loss included.
package loadgen

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"innet/internal/core"
)

// FleetConfig shapes the simulated fleet.
type FleetConfig struct {
	// Sensors is the virtual fleet size (10^3–10^6).
	Sensors int `json:"sensors"`
	// Attached is how many physical sensor IDs the fleet is multiplexed
	// onto at the target; bounded by the uint16 ID space and the
	// target's MaxSensors. Default min(Sensors, 24).
	Attached int `json:"attached"`
	// Dims is the feature-vector dimension. Dim 1 is the reading value;
	// extra dims are stable per-virtual-sensor grid coordinates, like
	// the paper's (temperature, x, y) deployments. Default 1.
	Dims int `json:"dims"`
}

// TrafficConfig shapes the firehose.
type TrafficConfig struct {
	// DurationS is total firing wall time, split evenly across
	// checkpoint segments. Required.
	DurationS float64 `json:"duration_s"`
	// StepMS is the data-time advance between a virtual sensor's
	// consecutive readings. Default 1000.
	StepMS int64 `json:"step_ms"`
	// Rate paces the firehose to this many readings/sec overall;
	// 0 fires as fast as the target's socket accepts writes.
	Rate float64 `json:"rate"`
	// Senders is the bounded concurrent UDP sender count. Default 4.
	Senders int `json:"senders"`
	// LinesPerDatagram batches readings per datagram. Default 32.
	LinesPerDatagram int `json:"lines_per_datagram"`
}

// RegimeConfig selects how the fleet's base readings evolve.
type RegimeConfig struct {
	// Kind: "steady", "drift", "diurnal" or "adversarial".
	Kind string `json:"kind"`
	// Base is the nominal reading value. Noise is the per-reading
	// Gaussian sigma around the regime curve.
	Base  float64 `json:"base"`
	Noise float64 `json:"noise"`
	// DriftPerStep moves half the fleet up and half down each step
	// (kind "drift") — a slow calibration walk.
	DriftPerStep float64 `json:"drift_per_step"`
	// Amplitude/PeriodS shape the sinusoid (kind "diurnal"); each
	// virtual sensor gets a phase offset proportional to its index.
	Amplitude float64 `json:"amplitude"`
	PeriodS   float64 `json:"period_s"`
	// Fraction of the fleet colludes at Base+Magnitude (kind
	// "adversarial"): identical extreme readings that support each
	// other, the gamed-rank pressure case — a lone honest fault must
	// still outrank the colluders' mutual support.
	Magnitude float64 `json:"magnitude"`
	Fraction  float64 `json:"fraction"`
}

// BurstConfig injects outliers: with probability Rate a reading is
// replaced by Base+Offset (plus a small jitter so injected points stay
// distinct). These are the points a correct detector must rank.
type BurstConfig struct {
	Rate   float64 `json:"rate"`
	Offset float64 `json:"offset"`
}

// ChurnConfig takes virtual sensors offline: each step a live sensor
// goes down with probability DownRate, staying down for a uniform
// number of steps in [MinDownSteps, MaxDownSteps].
type ChurnConfig struct {
	DownRate     float64 `json:"down_rate"`
	MinDownSteps int     `json:"min_down_steps"`
	MaxDownSteps int     `json:"max_down_steps"`
}

// LossConfig simulates radio loss: a generated reading is silently
// never sent with probability Rate — the paper's loss model, applied
// harness-side so the expected answer is still computable.
type LossConfig struct {
	Rate float64 `json:"rate"`
}

// DetectorConfig mirrors the detector flags the target daemon runs
// with; the harness needs them to recompute expected answers at
// exactness checkpoints.
type DetectorConfig struct {
	Ranker  string  `json:"ranker"` // nn | knn | kthnn | db
	K       int     `json:"k"`
	Eps     float64 `json:"eps"`
	N       int     `json:"n"`
	WindowS float64 `json:"window_s"`
}

// QueryConfig shapes the latency probers.
type QueryConfig struct {
	// IntervalMS between probes per mode. Default 250.
	IntervalMS int `json:"interval_ms"`
	// Modes to probe: "compact" and/or "full" against a coordinator,
	// "single" against a plain innetd. Defaults by target kind.
	Modes []string `json:"modes"`
}

// CheckpointConfig counts exactness checkpoints, spread evenly through
// the run (0 disables them — the million-scale throughput scenarios).
type CheckpointConfig struct {
	Count int `json:"count"`
}

// Scenario is one load-matrix entry, loaded from a JSON file.
type Scenario struct {
	Name        string           `json:"name"`
	Seed        uint64           `json:"seed"`
	Fleet       FleetConfig      `json:"fleet"`
	Traffic     TrafficConfig    `json:"traffic"`
	Regime      RegimeConfig     `json:"regime"`
	Burst       *BurstConfig     `json:"burst,omitempty"`
	Churn       *ChurnConfig     `json:"churn,omitempty"`
	Loss        *LossConfig      `json:"loss,omitempty"`
	Detector    DetectorConfig   `json:"detector"`
	Queries     QueryConfig      `json:"queries"`
	Checkpoints CheckpointConfig `json:"checkpoints"`
}

// Load reads, validates and defaults a scenario file. Unknown fields
// are errors: a typoed overlay key must not silently run a different
// scenario than the matrix claims.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	sc := &Scenario{}
	if err := dec.Decode(sc); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	return sc, nil
}

// Validate checks the scenario and fills defaults in place.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return errors.New("name is required")
	}
	if sc.Fleet.Sensors < 1 {
		return errors.New("fleet.sensors must be positive")
	}
	if sc.Fleet.Attached == 0 {
		sc.Fleet.Attached = min(sc.Fleet.Sensors, 24)
	}
	if sc.Fleet.Attached < 1 || sc.Fleet.Attached > 60000 {
		return fmt.Errorf("fleet.attached %d outside [1, 60000] (sensor IDs are uint16)", sc.Fleet.Attached)
	}
	if sc.Fleet.Dims == 0 {
		sc.Fleet.Dims = 1
	}
	if sc.Fleet.Dims < 1 || sc.Fleet.Dims > 255 {
		return fmt.Errorf("fleet.dims %d outside [1, 255]", sc.Fleet.Dims)
	}
	if sc.Traffic.DurationS <= 0 {
		return errors.New("traffic.duration_s must be positive")
	}
	if sc.Traffic.StepMS == 0 {
		sc.Traffic.StepMS = 1000
	}
	if sc.Traffic.StepMS < 0 {
		return errors.New("traffic.step_ms must be positive")
	}
	if sc.Traffic.Rate < 0 {
		return errors.New("traffic.rate must be >= 0")
	}
	if sc.Traffic.Senders == 0 {
		sc.Traffic.Senders = 4
	}
	if sc.Traffic.Senders < 1 || sc.Traffic.Senders > 256 {
		return fmt.Errorf("traffic.senders %d outside [1, 256]", sc.Traffic.Senders)
	}
	if sc.Traffic.LinesPerDatagram == 0 {
		sc.Traffic.LinesPerDatagram = 32
	}
	if sc.Traffic.LinesPerDatagram < 1 || sc.Traffic.LinesPerDatagram > 1000 {
		return fmt.Errorf("traffic.lines_per_datagram %d outside [1, 1000]", sc.Traffic.LinesPerDatagram)
	}
	switch sc.Regime.Kind {
	case "steady", "drift", "diurnal", "adversarial":
	case "":
		sc.Regime.Kind = "steady"
	default:
		return fmt.Errorf("regime.kind %q (want steady, drift, diurnal or adversarial)", sc.Regime.Kind)
	}
	if sc.Regime.Kind == "diurnal" && sc.Regime.PeriodS <= 0 {
		return errors.New("regime.period_s must be positive for the diurnal regime")
	}
	if sc.Regime.Kind == "adversarial" && (sc.Regime.Fraction < 0 || sc.Regime.Fraction > 1) {
		return errors.New("regime.fraction must be in [0, 1]")
	}
	if sc.Burst != nil {
		if sc.Burst.Rate < 0 || sc.Burst.Rate > 1 {
			return errors.New("burst.rate must be in [0, 1]")
		}
		if sc.Burst.Offset == 0 {
			return errors.New("burst.offset must be nonzero — a zero-offset burst is not an outlier")
		}
	}
	if sc.Churn != nil {
		if sc.Churn.DownRate < 0 || sc.Churn.DownRate > 1 {
			return errors.New("churn.down_rate must be in [0, 1]")
		}
		if sc.Churn.MinDownSteps < 1 {
			sc.Churn.MinDownSteps = 1
		}
		if sc.Churn.MaxDownSteps < sc.Churn.MinDownSteps {
			sc.Churn.MaxDownSteps = sc.Churn.MinDownSteps
		}
	}
	if sc.Loss != nil && (sc.Loss.Rate < 0 || sc.Loss.Rate > 1) {
		return errors.New("loss.rate must be in [0, 1]")
	}
	if _, err := sc.Ranker(); err != nil {
		return err
	}
	if sc.Detector.N < 1 {
		return errors.New("detector.n must be positive")
	}
	if sc.Queries.IntervalMS == 0 {
		sc.Queries.IntervalMS = 250
	}
	if sc.Queries.IntervalMS < 1 {
		return errors.New("queries.interval_ms must be positive")
	}
	for _, m := range sc.Queries.Modes {
		switch m {
		case "compact", "full", "single":
		default:
			return fmt.Errorf("queries.modes entry %q (want compact, full or single)", m)
		}
	}
	if sc.Checkpoints.Count < 0 {
		return errors.New("checkpoints.count must be >= 0")
	}
	return nil
}

// Ranker builds the core ranker the scenario's detector config names —
// the same mapping the daemons' -ranker flag applies, so the harness's
// baseline recomputation ranks exactly like the target.
func (sc *Scenario) Ranker() (core.Ranker, error) {
	switch sc.Detector.Ranker {
	case "nn", "":
		return core.NN(), nil
	case "knn":
		if sc.Detector.K < 1 {
			return nil, errors.New("detector.k must be positive for knn")
		}
		return core.KNN{K: sc.Detector.K}, nil
	case "kthnn":
		if sc.Detector.K < 1 {
			return nil, errors.New("detector.k must be positive for kthnn")
		}
		return core.KthNN{K: sc.Detector.K}, nil
	case "db":
		if sc.Detector.Eps <= 0 {
			return nil, errors.New("detector.eps must be positive for db")
		}
		return core.CountWithin{Alpha: sc.Detector.Eps}, nil
	default:
		return nil, fmt.Errorf("detector.ranker %q (want nn, knn, kthnn or db)", sc.Detector.Ranker)
	}
}

// Window returns the detector window as a duration (0 = unwindowed).
func (sc *Scenario) Window() time.Duration {
	return time.Duration(sc.Detector.WindowS * float64(time.Second))
}
