package loadgen

import (
	"math"
	"reflect"
	"testing"
	"time"

	"innet/internal/baseline"
	"innet/internal/core"
)

// churnLossScenario is the regime tests' workhorse: every overlay on at
// once, so determinism is proven for the full draw chain.
func churnLossScenario(seed uint64) *Scenario {
	sc := &Scenario{
		Name:     "regime-test",
		Seed:     seed,
		Fleet:    FleetConfig{Sensors: 200},
		Traffic:  TrafficConfig{DurationS: 1, StepMS: 100},
		Regime:   RegimeConfig{Kind: "diurnal", Base: 20, Noise: 0.4, Amplitude: 3, PeriodS: 60},
		Burst:    &BurstConfig{Rate: 0.01, Offset: 100},
		Churn:    &ChurnConfig{DownRate: 0.02, MinDownSteps: 2, MaxDownSteps: 5},
		Loss:     &LossConfig{Rate: 0.1},
		Detector: DetectorConfig{Ranker: "knn", K: 2, N: 3, WindowS: 600},
	}
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	return sc
}

func TestTraceDeterministicUnderSeed(t *testing.T) {
	const n = 5000
	a, b := NewTrace(churnLossScenario(42)), NewTrace(churnLossScenario(42))
	for i := 0; i < n; i++ {
		ea, eb := a.Next(), b.Next()
		if !reflect.DeepEqual(ea, eb) {
			t.Fatalf("event %d diverged under the same seed:\n%+v\n%+v", i, ea, eb)
		}
	}

	// A different seed must actually change the stream.
	c := NewTrace(churnLossScenario(43))
	a = NewTrace(churnLossScenario(42))
	same := true
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(a.Next(), c.Next()) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical traces")
	}
}

// TestTraceGolden pins a prefix of the seed-7 stream. If this breaks,
// the generator changed behavior: every recorded BENCH artifact's
// scenario+seed no longer replays the trace it was measured under —
// bump scenario seeds or treat old artifacts as incomparable.
func TestTraceGolden(t *testing.T) {
	sc := &Scenario{
		Name:     "golden",
		Seed:     7,
		Fleet:    FleetConfig{Sensors: 4, Attached: 2},
		Traffic:  TrafficConfig{DurationS: 1, StepMS: 500},
		Regime:   RegimeConfig{Kind: "steady", Base: 10, Noise: 1},
		Detector: DetectorConfig{Ranker: "nn", N: 1},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	tr := NewTrace(sc)
	var got []Event
	for i := 0; i < 6; i++ {
		got = append(got, tr.Next())
	}
	// Structure is fixed by construction; pin it exactly.
	for i, ev := range got {
		wantSensor := core.NodeID(1 + (i%4)%2)
		wantStep := i / 4
		wantAt := time.Duration(wantStep) * 500 * time.Millisecond
		if ev.Sensor != wantSensor || ev.Virtual != i%4 || ev.Step != wantStep || ev.At != wantAt {
			t.Errorf("event %d = %+v, want sensor=%d virtual=%d step=%d at=%v",
				i, ev, wantSensor, i%4, wantStep, wantAt)
		}
		if len(ev.Values) != 1 {
			t.Fatalf("event %d has %d values, want 1", i, len(ev.Values))
		}
	}
	// Values are Base + Noise*NormFloat64 off PCG(7, 7^mix): pin the
	// realized draws so any change to seeding or draw order is loud.
	want := []float64{
		got[0].Values[0], got[1].Values[0], got[2].Values[0],
		got[3].Values[0], got[4].Values[0], got[5].Values[0],
	}
	replay := NewTrace(sc)
	for i := 0; i < 6; i++ {
		if v := replay.Next().Values[0]; v != want[i] {
			t.Fatalf("replayed value %d = %v, want %v", i, v, want[i])
		}
		if math.Abs(want[i]-10) > 6 {
			t.Errorf("value %d = %v implausibly far from Base 10 at sigma 1", i, want[i])
		}
	}
}

// TestBurstsRankedOutliers is the harness's self-check: the points the
// burst overlay injects must be exactly the points the centralized
// baseline ranks as the top outliers — otherwise checkpoint mismatches
// could be the harness's fault rather than the target's.
func TestBurstsRankedOutliers(t *testing.T) {
	sc := &Scenario{
		Name:     "burst-rank",
		Seed:     11,
		Fleet:    FleetConfig{Sensors: 300},
		Traffic:  TrafficConfig{DurationS: 1, StepMS: 100},
		Regime:   RegimeConfig{Kind: "steady", Base: 20, Noise: 0.5},
		Burst:    &BurstConfig{Rate: 0.004, Offset: 200},
		Detector: DetectorConfig{Ranker: "knn", K: 2, N: 1, WindowS: 600},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	tr := NewTrace(sc)
	var pts []core.Point
	burstKeys := map[core.PointID]bool{}
	for i := 0; i < 2*sc.Fleet.Sensors; i++ { // two full sweeps
		ev := tr.Next()
		if ev.Down || ev.Lost {
			continue
		}
		p := core.NewPoint(ev.Sensor, uint32(i), ev.At, ev.Values...)
		pts = append(pts, p)
		if ev.Burst {
			burstKeys[p.ID] = true
		}
	}
	if len(burstKeys) == 0 {
		t.Fatal("no bursts drawn; raise rate or sweeps")
	}

	ranker, err := sc.Ranker()
	if err != nil {
		t.Fatal(err)
	}
	top := baseline.Compute(ranker, len(burstKeys), pts)
	if len(top) != len(burstKeys) {
		t.Fatalf("baseline returned %d outliers, want %d", len(top), len(burstKeys))
	}
	for _, p := range top {
		if !burstKeys[p.ID] {
			t.Errorf("top-%d outlier %v (value %v) is not an injected burst",
				len(burstKeys), p.ID, p.Value)
		}
	}
}

func TestChurnAndLossFractions(t *testing.T) {
	sc := churnLossScenario(99)
	tr := NewTrace(sc)
	const sweeps = 100
	var generated, down, lost int
	for i := 0; i < sweeps*sc.Fleet.Sensors; i++ {
		ev := tr.Next()
		generated++
		switch {
		case ev.Down:
			down++
		case ev.Lost:
			lost++
		}
	}
	// DownRate 0.02 with mean downtime 3.5 steps → steady-state down
	// fraction ≈ rate*mean/(1+rate*mean) ≈ 6.5%; allow a wide band.
	downFrac := float64(down) / float64(generated)
	if downFrac < 0.02 || downFrac > 0.15 {
		t.Errorf("down fraction = %.3f, want within [0.02, 0.15]", downFrac)
	}
	lossFrac := float64(lost) / float64(generated-down)
	if lossFrac < 0.05 || lossFrac > 0.15 {
		t.Errorf("loss fraction = %.3f, want near 0.10 within [0.05, 0.15]", lossFrac)
	}
}

func TestAdversarialColluders(t *testing.T) {
	sc := &Scenario{
		Name:     "adv",
		Seed:     3,
		Fleet:    FleetConfig{Sensors: 100},
		Traffic:  TrafficConfig{DurationS: 1},
		Regime:   RegimeConfig{Kind: "adversarial", Base: 20, Noise: 0.5, Magnitude: 50, Fraction: 0.05},
		Detector: DetectorConfig{Ranker: "nn", N: 1},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	tr := NewTrace(sc)
	for i := 0; i < sc.Fleet.Sensors; i++ {
		ev := tr.Next()
		if ev.Virtual < 5 {
			if ev.Values[0] != 70 {
				t.Errorf("colluder %d reads %v, want exactly Base+Magnitude = 70", ev.Virtual, ev.Values[0])
			}
		} else if math.Abs(ev.Values[0]-20) > 5 {
			t.Errorf("honest sensor %d reads %v, implausible for Base 20 sigma 0.5", ev.Virtual, ev.Values[0])
		}
	}
}

func TestAuxDimsStablePerSensor(t *testing.T) {
	sc := &Scenario{
		Name:     "dims",
		Seed:     5,
		Fleet:    FleetConfig{Sensors: 9, Dims: 3},
		Traffic:  TrafficConfig{DurationS: 1},
		Regime:   RegimeConfig{Kind: "steady", Base: 20, Noise: 1},
		Detector: DetectorConfig{Ranker: "nn", N: 1},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	tr := NewTrace(sc)
	pos := map[int][2]float64{}
	for i := 0; i < 3*sc.Fleet.Sensors; i++ {
		ev := tr.Next()
		if len(ev.Values) != 3 {
			t.Fatalf("event has %d dims, want 3", len(ev.Values))
		}
		xy := [2]float64{ev.Values[1], ev.Values[2]}
		if prev, ok := pos[ev.Virtual]; ok && prev != xy {
			t.Fatalf("sensor %d moved: %v -> %v", ev.Virtual, prev, xy)
		}
		pos[ev.Virtual] = xy
	}
	seen := map[[2]float64]bool{}
	for _, xy := range pos {
		if seen[xy] {
			t.Fatalf("grid position %v assigned twice", xy)
		}
		seen[xy] = true
	}
}
