package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"innet/internal/ingest"
)

// fakeTarget is a minimal innetd stand-in for checkpoint tests: static
// metrics (so the barrier sees a stable counter immediately), a no-op
// flush, and a canned /v1/outliers answer.
type fakeTarget struct {
	window      []ingest.WireOutlier
	outliers    []ingest.WireOutlier
	failWindow  bool // 500 every ?window=1 fetch
	windowCalls int
}

func (f *fakeTarget) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("innetd_readings_accepted_total 42\n"))
	})
	mux.HandleFunc("POST /v1/flush", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"flushed":true}`))
	})
	mux.HandleFunc("GET /v1/outliers", func(w http.ResponseWriter, r *http.Request) {
		withWindow := r.URL.Query().Get("window") == "1"
		if withWindow {
			f.windowCalls++
			if f.failWindow {
				http.Error(w, "shard restarting", http.StatusInternalServerError)
				return
			}
		}
		reply := map[string]any{"outliers": f.outliers}
		if withWindow {
			reply["window"] = f.window
		}
		json.NewEncoder(w).Encode(reply)
	})
	return mux
}

// checkpointScenario is the smallest valid detector spec: NN ranker,
// one outlier.
func checkpointScenario() *Scenario {
	return &Scenario{Detector: DetectorConfig{Ranker: "nn", N: 1}}
}

// testWindow is three 1-D points where NN ranking makes sensor 3's
// point the unambiguous outlier.
func testWindow() []ingest.WireOutlier {
	return []ingest.WireOutlier{
		{Sensor: 1, Seq: 0, AtMS: 1000, Values: []float64{0.0}},
		{Sensor: 2, Seq: 0, AtMS: 2000, Values: []float64{0.1}},
		{Sensor: 3, Seq: 0, AtMS: 3000, Values: []float64{10.0}},
	}
}

func runCheckpoint(t *testing.T, f *fakeTarget) (CheckpointReport, error) {
	t.Helper()
	srv := httptest.NewServer(f.handler())
	t.Cleanup(srv.Close)
	target := Target{HTTP: srv.URL, Shards: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return target.checkpoint(ctx, checkpointScenario(), []string{"single"}, 1.0)
}

// A served answer that disagrees with the baseline over the served
// window is genuine inexactness: Match false, no fetch error.
func TestCheckpointInexactness(t *testing.T) {
	f := &fakeTarget{
		window:   testWindow(),
		outliers: testWindow()[:1], // sensor 1 is not the outlier
	}
	cp, err := runCheckpoint(t, f)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if cp.Match {
		t.Error("Match = true for an answer that disagrees with the baseline")
	}
	if cp.FetchError != "" {
		t.Errorf("FetchError = %q for a successful fetch", cp.FetchError)
	}
	if cp.Modes["single"] {
		t.Error(`Modes["single"] = true, want false`)
	}
}

// A matching answer: Match true, no fetch error.
func TestCheckpointExact(t *testing.T) {
	f := &fakeTarget{
		window:   testWindow(),
		outliers: testWindow()[2:], // sensor 3, the NN outlier
	}
	cp, err := runCheckpoint(t, f)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if !cp.Match {
		t.Error("Match = false for the baseline answer")
	}
	if cp.FetchError != "" {
		t.Errorf("FetchError = %q, want empty", cp.FetchError)
	}
}

// A window fetch that fails (after retries) is an infrastructure error:
// the checkpoint reports FetchError and an error, and must NOT claim
// inexactness — nothing was compared.
func TestCheckpointFetchFailureIsNotMismatch(t *testing.T) {
	f := &fakeTarget{failWindow: true}
	cp, err := runCheckpoint(t, f)
	if err == nil {
		t.Fatal("checkpoint returned nil error for an unreachable window fetch")
	}
	if !strings.Contains(err.Error(), "window fetch") {
		t.Errorf("error %q does not identify the window fetch", err)
	}
	if cp.FetchError == "" {
		t.Error("FetchError empty for a failed fetch")
	}
	if !cp.Match {
		t.Error("Match = false for a failed fetch: fetch failures must not count as inexactness")
	}
	if f.windowCalls < 2 {
		t.Errorf("window fetch attempted %d times, want retries", f.windowCalls)
	}
}
