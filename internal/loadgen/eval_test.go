package loadgen

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"innet/internal/ingest"
)

// fakeTarget is a minimal innetd stand-in for checkpoint tests: static
// metrics (so the barrier sees a stable counter immediately), a no-op
// flush, and a canned /v1/outliers answer.
type fakeTarget struct {
	window      []ingest.WireOutlier
	outliers    []ingest.WireOutlier
	failWindow  bool // 500 every ?window=1 fetch
	windowCalls int
}

func (f *fakeTarget) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("innetd_readings_accepted_total 42\n"))
	})
	mux.HandleFunc("POST /v1/flush", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"flushed":true}`))
	})
	mux.HandleFunc("GET /v1/outliers", func(w http.ResponseWriter, r *http.Request) {
		withWindow := r.URL.Query().Get("window") == "1"
		if withWindow {
			f.windowCalls++
			if f.failWindow {
				http.Error(w, "shard restarting", http.StatusInternalServerError)
				return
			}
		}
		reply := map[string]any{"outliers": f.outliers}
		if withWindow {
			reply["window"] = f.window
		}
		json.NewEncoder(w).Encode(reply)
	})
	return mux
}

// checkpointScenario is the smallest valid detector spec: NN ranker,
// one outlier.
func checkpointScenario() *Scenario {
	return &Scenario{Detector: DetectorConfig{Ranker: "nn", N: 1}}
}

// testWindow is three 1-D points where NN ranking makes sensor 3's
// point the unambiguous outlier.
func testWindow() []ingest.WireOutlier {
	return []ingest.WireOutlier{
		{Sensor: 1, Seq: 0, AtMS: 1000, Values: []float64{0.0}},
		{Sensor: 2, Seq: 0, AtMS: 2000, Values: []float64{0.1}},
		{Sensor: 3, Seq: 0, AtMS: 3000, Values: []float64{10.0}},
	}
}

func runCheckpoint(t *testing.T, f *fakeTarget) (CheckpointReport, error) {
	t.Helper()
	srv := httptest.NewServer(f.handler())
	t.Cleanup(srv.Close)
	target := Target{HTTP: srv.URL, Shards: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return target.checkpoint(ctx, checkpointScenario(), []string{"single"}, 1.0)
}

// A served answer that disagrees with the baseline over the served
// window is genuine inexactness: Match false, no fetch error.
func TestCheckpointInexactness(t *testing.T) {
	f := &fakeTarget{
		window:   testWindow(),
		outliers: testWindow()[:1], // sensor 1 is not the outlier
	}
	cp, err := runCheckpoint(t, f)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if cp.Match {
		t.Error("Match = true for an answer that disagrees with the baseline")
	}
	if cp.FetchError != "" {
		t.Errorf("FetchError = %q for a successful fetch", cp.FetchError)
	}
	if cp.Modes["single"] {
		t.Error(`Modes["single"] = true, want false`)
	}
}

// A matching answer: Match true, no fetch error.
func TestCheckpointExact(t *testing.T) {
	f := &fakeTarget{
		window:   testWindow(),
		outliers: testWindow()[2:], // sensor 3, the NN outlier
	}
	cp, err := runCheckpoint(t, f)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if !cp.Match {
		t.Error("Match = false for the baseline answer")
	}
	if cp.FetchError != "" {
		t.Errorf("FetchError = %q, want empty", cp.FetchError)
	}
}

// goldenExposition is a hand-checked slice of real innetd/innet-coord
// /metrics output: HELP/TYPE comments, a plain counter, a labeled
// counter, a plain histogram, and a two-child histogram vec.
const goldenExposition = `# HELP innetd_readings_accepted_total Readings passing validation.
# TYPE innetd_readings_accepted_total counter
innetd_readings_accepted_total 100
# HELP innetd_sensor_queue_drops_total Oldest-reading drops per sensor queue.
# TYPE innetd_sensor_queue_drops_total counter
innetd_sensor_queue_drops_total{sensor="1"} 3
innetd_sensor_queue_drops_total{sensor="2"} 4
# HELP innetd_queue_latency_seconds Reading wait between enqueue and observe drain.
# TYPE innetd_queue_latency_seconds histogram
innetd_queue_latency_seconds_bucket{le="0.001"} 5
innetd_queue_latency_seconds_bucket{le="0.01"} 9
innetd_queue_latency_seconds_bucket{le="+Inf"} 10
innetd_queue_latency_seconds_sum 0.5
innetd_queue_latency_seconds_count 10
# HELP innetcoord_query_latency_seconds Merged-estimate service time.
# TYPE innetcoord_query_latency_seconds histogram
innetcoord_query_latency_seconds_bucket{mode="compact",le="0.01"} 2
innetcoord_query_latency_seconds_bucket{mode="compact",le="+Inf"} 2
innetcoord_query_latency_seconds_sum{mode="compact"} 0.004
innetcoord_query_latency_seconds_count{mode="compact"} 2
innetcoord_query_latency_seconds_bucket{mode="full",le="0.01"} 0
innetcoord_query_latency_seconds_bucket{mode="full",le="+Inf"} 1
innetcoord_query_latency_seconds_sum{mode="full"} 0.2
innetcoord_query_latency_seconds_count{mode="full"} 1
`

// The scraper must skip comments, keep the flat counter view the
// barrier and the delta math rely on, and reassemble histogram families
// (splitting vec children by their non-le labels).
func TestParseExpositionGolden(t *testing.T) {
	ex := parseExposition(goldenExposition)

	if got := ex.flat["innetd_readings_accepted_total"]; got != 100 {
		t.Errorf("flat accepted = %v, want 100", got)
	}
	if got := ex.flat["innetd_sensor_queue_drops_total"]; got != 7 {
		t.Errorf("flat drops (summed across sensors) = %v, want 7", got)
	}

	q := ex.hists["innetd_queue_latency_seconds"]
	if q == nil {
		t.Fatal("plain histogram not parsed")
	}
	if q.count != 10 || q.sum != 0.5 {
		t.Errorf("queue hist count/sum = %v/%v, want 10/0.5", q.count, q.sum)
	}
	if q.buckets[0.001] != 5 || q.buckets[0.01] != 9 || q.buckets[math.Inf(1)] != 10 {
		t.Errorf("queue hist buckets = %v", q.buckets)
	}

	compact := ex.hists[`innetcoord_query_latency_seconds{mode="compact"}`]
	full := ex.hists[`innetcoord_query_latency_seconds{mode="full"}`]
	if compact == nil || full == nil {
		t.Fatalf("vec children not split by mode label: keys %v", ex.hists)
	}
	if compact.count != 2 || full.count != 1 {
		t.Errorf("vec child counts = %v/%v, want 2/1", compact.count, full.count)
	}
}

// Quantile interpolation, checked against hand-computed ranks: the
// median of the golden queue histogram lands exactly on the first
// bucket's bound, p90 on the second's, and anything in the +Inf bucket
// clamps to the highest finite bound.
func TestHistogramQuantile(t *testing.T) {
	q := parseExposition(goldenExposition).hists["innetd_queue_latency_seconds"]
	check := func(p, want float64) {
		t.Helper()
		if got := q.quantile(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("quantile(%v) = %v, want %v", p, got, want)
		}
	}
	check(0.50, 0.001)
	check(0.90, 0.01)
	check(0.95, 0.01) // rank 9.5 is in the +Inf bucket → highest finite bound
}

// The before/after delta must isolate the run's own observations and
// drop families that saw none.
func TestServerHistogramDeltas(t *testing.T) {
	before := parseExposition(goldenExposition).hists
	afterText := strings.ReplaceAll(goldenExposition, "innetd_queue_latency_seconds_bucket{le=\"+Inf\"} 10", "innetd_queue_latency_seconds_bucket{le=\"+Inf\"} 14")
	afterText = strings.ReplaceAll(afterText, "innetd_queue_latency_seconds_bucket{le=\"0.01\"} 9", "innetd_queue_latency_seconds_bucket{le=\"0.01\"} 13")
	afterText = strings.ReplaceAll(afterText, "innetd_queue_latency_seconds_count 10", "innetd_queue_latency_seconds_count 14")
	afterText = strings.ReplaceAll(afterText, "innetd_queue_latency_seconds_sum 0.5", "innetd_queue_latency_seconds_sum 0.52")
	after := parseExposition(afterText).hists

	deltas := serverHistogramDeltas(before, after)
	d, ok := deltas["innetd_queue_latency_seconds"]
	if !ok {
		t.Fatal("queue histogram missing from deltas")
	}
	if d.Count != 4 {
		t.Errorf("delta count = %v, want 4", d.Count)
	}
	// All 4 new observations fell in the (0.001, 0.01] bucket.
	if want := 5.5; math.Abs(d.P50MS-want) > 1e-9 {
		t.Errorf("delta p50 = %vms, want %vms", d.P50MS, want)
	}
	if _, ok := deltas[`innetcoord_query_latency_seconds{mode="compact"}`]; ok {
		t.Error("family with no new observations must be dropped from deltas")
	}
}

// A window fetch that fails (after retries) is an infrastructure error:
// the checkpoint reports FetchError and an error, and must NOT claim
// inexactness — nothing was compared.
func TestCheckpointFetchFailureIsNotMismatch(t *testing.T) {
	f := &fakeTarget{failWindow: true}
	cp, err := runCheckpoint(t, f)
	if err == nil {
		t.Fatal("checkpoint returned nil error for an unreachable window fetch")
	}
	if !strings.Contains(err.Error(), "window fetch") {
		t.Errorf("error %q does not identify the window fetch", err)
	}
	if cp.FetchError == "" {
		t.Error("FetchError empty for a failed fetch")
	}
	if !cp.Match {
		t.Error("Match = false for a failed fetch: fetch failures must not count as inexactness")
	}
	if f.windowCalls < 2 {
		t.Errorf("window fetch attempted %d times, want retries", f.windowCalls)
	}
}
