package loadgen

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// FireStats counts what the firehose did, harness-side. Sent is lines
// written to the socket; the target's own accepted/observed counters
// (scraped separately) say what survived the trip.
type FireStats struct {
	Generated uint64 // events produced, down sensors included
	Sent      uint64 // lines written to the UDP socket
	Lost      uint64 // readings suppressed by simulated radio loss
	Down      uint64 // events skipped because the sensor was churned out
	Bursts    uint64 // injected outliers actually sent
	Datagrams uint64 // datagrams written
}

// Firehose drives one scenario's trace at a UDP line-protocol listener:
// a single generator packs events into datagrams (the trace must be
// consumed in order to stay deterministic) and a bounded pool of sender
// goroutines, each with its own socket, writes them — the gource-style
// concurrency split: generation is cheap and ordered, the syscalls are
// the parallel part.
type Firehose struct {
	sc     *Scenario
	trace  *Trace
	target string

	generated, sent, lost atomic.Uint64
	down, bursts, grams   atomic.Uint64
}

// NewFirehose readies a firehose for target ("host:port").
func NewFirehose(sc *Scenario, target string) *Firehose {
	return &Firehose{sc: sc, trace: NewTrace(sc), target: target}
}

// Stats snapshots the harness-side counters.
func (f *Firehose) Stats() FireStats {
	return FireStats{
		Generated: f.generated.Load(),
		Sent:      f.sent.Load(),
		Lost:      f.lost.Load(),
		Down:      f.down.Load(),
		Bursts:    f.bursts.Load(),
		Datagrams: f.grams.Load(),
	}
}

// Run fires the trace for one segment of wall time d, then drains the
// sender pool and returns — so when Run returns, every generated
// datagram has been written to the socket and a Flush barrier on the
// target covers the whole segment. Run may be called repeatedly; the
// trace continues where the previous segment stopped.
func (f *Firehose) Run(ctx context.Context, d time.Duration) error {
	work := make(chan []byte, 2*f.sc.Traffic.Senders)
	var wg sync.WaitGroup
	sendErr := make(chan error, f.sc.Traffic.Senders)
	for i := 0; i < f.sc.Traffic.Senders; i++ {
		conn, err := net.Dial("udp", f.target)
		if err != nil {
			close(work)
			wg.Wait()
			return fmt.Errorf("loadgen: dial %s: %w", f.target, err)
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			for buf := range work {
				if _, err := conn.Write(buf); err != nil {
					select {
					case sendErr <- err:
					default:
					}
					return
				}
				f.grams.Add(1)
			}
		}(conn)
	}

	start := time.Now()
	deadline := start.Add(d)
	var paced uint64 // lines subject to pacing so far this segment
	buf := make([]byte, 0, 64*1024)
	lines := 0
	flush := func() bool {
		if lines == 0 {
			return true
		}
		out := make([]byte, len(buf))
		copy(out, buf)
		select {
		case work <- out:
		case <-ctx.Done():
			return false
		}
		buf, lines = buf[:0], 0
		return true
	}

loop:
	for time.Now().Before(deadline) {
		select {
		case <-ctx.Done():
			break loop
		case err := <-sendErr:
			close(work)
			wg.Wait()
			return fmt.Errorf("loadgen: send: %w", err)
		default:
		}
		ev := f.trace.Next()
		f.generated.Add(1)
		switch {
		case ev.Down:
			f.down.Add(1)
			continue
		case ev.Lost:
			f.lost.Add(1)
			continue
		}
		buf = appendLine(buf, ev)
		lines++
		f.sent.Add(1)
		if ev.Burst {
			f.bursts.Add(1)
		}
		if lines >= f.sc.Traffic.LinesPerDatagram {
			if !flush() {
				break loop
			}
			// Pacing: sleep whatever keeps sent-so-far under Rate.
			if r := f.sc.Traffic.Rate; r > 0 {
				paced += uint64(f.sc.Traffic.LinesPerDatagram)
				ahead := time.Duration(float64(paced)/r*float64(time.Second)) - time.Since(start)
				if ahead > 0 {
					select {
					case <-time.After(ahead):
					case <-ctx.Done():
						break loop
					}
				}
			}
		}
	}
	flush()
	close(work)
	wg.Wait()
	select {
	case err := <-sendErr:
		return fmt.Errorf("loadgen: send: %w", err)
	default:
	}
	return ctx.Err()
}

// appendLine formats one event as a line-protocol reading,
// "<sensor> <at_ms> <v1> [v2 ...]\n". FormatFloat with -1 precision
// round-trips exactly, so the target parses the same float64 the
// regime generated — checkpoint comparisons are bit-exact.
func appendLine(buf []byte, ev Event) []byte {
	buf = strconv.AppendUint(buf, uint64(ev.Sensor), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, ev.At.Milliseconds(), 10)
	for _, v := range ev.Values {
		buf = append(buf, ' ')
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	}
	return append(buf, '\n')
}
