package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// LatencyStats summarizes one probe mode's query latency distribution.
type LatencyStats struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// ModeReport is one probe mode's share of the run: latency plus the
// merge cost the coordinator reported per query.
type ModeReport struct {
	Latency                 LatencyStats `json:"latency"`
	AvgRounds               float64      `json:"avg_rounds"`
	AvgPayloadBytes         float64      `json:"avg_payload_bytes"`
	AvgPayloadBytesPerRound float64      `json:"avg_payload_bytes_per_round"`
}

// CheckpointReport is one exactness checkpoint: whether every queried
// mode's answer matched baseline.Compute over the target's own window.
type CheckpointReport struct {
	AtS          float64         `json:"at_s"`          // data-time offset of the checkpoint
	WindowPoints int             `json:"window_points"` // size of the frozen window union
	Expected     []string        `json:"expected"`      // baseline answer, "origin/seq" keys
	Modes        map[string]bool `json:"modes"`         // mode → served answer matched
	Match        bool            `json:"match"`
	// FetchError records an infrastructure failure (a query that could
	// not be fetched after retries) as distinct from inexactness: a
	// checkpoint that could not read the target says nothing about
	// whether the target's answers were exact, so Match is left true and
	// the checkpoint surfaces as an error instead.
	FetchError string `json:"fetch_error,omitempty"`
}

// ServerHistogram summarizes one server-side latency histogram over the
// run: the before/after bucket delta of a family scraped from the
// daemons' /metrics, with quantiles interpolated the way PromQL's
// histogram_quantile does. Unlike the prober latencies — measured from
// the outside, per mode — these are the targets' own measurements:
// ingest queue wait, observe-batch time, WAL fsyncs, per-mode merge
// service time.
type ServerHistogram struct {
	Count float64 `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// IngestReport is the target-side view of the segment, scraped from the
// ingesting daemons' metrics (summed across shards for a cluster).
type IngestReport struct {
	Accepted  float64 `json:"accepted"`
	Observed  float64 `json:"observed"`
	Dropped   float64 `json:"dropped"`
	Malformed float64 `json:"malformed"`
	Stale     float64 `json:"stale"`

	ReadingsPerSec         float64 `json:"readings_per_sec"`
	ReadingsPerSecPerShard float64 `json:"readings_per_sec_per_shard"`
	EnqueueDropRate        float64 `json:"enqueue_drop_rate"` // dropped / accepted
}

// Report is the full result of one scenario run — the BENCH artifact.
type Report struct {
	Scenario    string  `json:"scenario"`
	Seed        uint64  `json:"seed"`
	Cluster     bool    `json:"cluster"`
	Shards      int     `json:"shards"`
	Sensors     int     `json:"sensors"`  // virtual fleet size
	Attached    int     `json:"attached"` // physical sensors multiplexed onto
	WallSeconds float64 `json:"wall_seconds"`

	Fire   FireStats             `json:"fire"`
	Ingest IngestReport          `json:"ingest"`
	Modes  map[string]ModeReport `json:"modes"`
	// Server holds the daemons' own latency histograms over the run,
	// keyed by family and labels, e.g.
	// innetcoord_query_latency_seconds{mode="compact"}.
	Server      map[string]ServerHistogram `json:"server_histograms,omitempty"`
	Checkpoints []CheckpointReport         `json:"checkpoints"`

	CheckpointsOK bool `json:"checkpoints_ok"`
}

// Path returns the conventional artifact name for the report inside dir:
// BENCH_innetload_<scenario>.json.
func (r *Report) Path(dir string) string {
	return filepath.Join(dir, "BENCH_innetload_"+r.Scenario+".json")
}

// Write stores the report under its conventional name in dir and
// returns the path written.
func (r *Report) Write(dir string) (string, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("loadgen: write report: %w", err)
	}
	path := r.Path(dir)
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("loadgen: write report: %w", err)
	}
	return path, nil
}
