package loadgen

import (
	"math"
	"math/rand/v2"
	"time"

	"innet/internal/core"
)

// Event is one generated reading of the virtual fleet, before the wire.
type Event struct {
	Sensor  core.NodeID // physical ID the virtual sensor emits as
	Virtual int         // virtual sensor index in [0, Fleet.Sensors)
	Step    int         // sweep number; data time = Step * StepMS
	At      time.Duration
	Values  []float64
	Down    bool // churn: sensor offline, nothing is generated
	Lost    bool // radio loss: generated but never sent
	Burst   bool // injected outlier the detector must rank
}

// Trace generates the scenario's event stream: one Event per virtual
// sensor per step, in fixed order (step-major, virtual index within),
// every random draw from one seeded PCG — so a (scenario, seed) pair
// replays bit-identically, which is what lets exactness checkpoints
// and the golden regime tests trust the harness itself. Next is an
// infinite stream; the firehose stops consuming at the wall deadline.
// Not safe for concurrent use: one goroutine generates, senders fan
// out downstream.
type Trace struct {
	sc  *Scenario
	rng *rand.Rand

	step int
	idx  int

	downUntil []int // churn: first step the virtual sensor is back up
	gridSide  int   // side of the placement grid for aux dims
}

// traceSeedMix separates the trace PRNG stream from other consumers of
// the same scenario seed (splitmix64's first golden-gamma constant).
const traceSeedMix = 0x9e3779b97f4a7c15

// NewTrace builds the scenario's deterministic event stream.
func NewTrace(sc *Scenario) *Trace {
	t := &Trace{
		sc:        sc,
		rng:       rand.New(rand.NewPCG(sc.Seed, sc.Seed^traceSeedMix)),
		downUntil: make([]int, sc.Fleet.Sensors),
		gridSide:  int(math.Ceil(math.Sqrt(float64(sc.Fleet.Sensors)))),
	}
	if t.gridSide < 1 {
		t.gridSide = 1
	}
	return t
}

// Next returns the next event of the stream.
func (t *Trace) Next() Event {
	sc := t.sc
	v, step := t.idx, t.step
	t.idx++
	if t.idx == sc.Fleet.Sensors {
		t.idx, t.step = 0, t.step+1
	}

	ev := Event{
		Sensor:  core.NodeID(1 + v%sc.Fleet.Attached),
		Virtual: v,
		Step:    step,
		At:      time.Duration(int64(step)*sc.Traffic.StepMS) * time.Millisecond,
	}

	// Churn first: a down sensor generates nothing, and consumes no
	// value/burst/loss draws — its silence is part of the trace.
	if sc.Churn != nil {
		if t.downUntil[v] > step {
			ev.Down = true
			return ev
		}
		if t.rng.Float64() < sc.Churn.DownRate {
			span := sc.Churn.MaxDownSteps - sc.Churn.MinDownSteps + 1
			t.downUntil[v] = step + sc.Churn.MinDownSteps + t.rng.IntN(span)
			ev.Down = true
			return ev
		}
	}

	ev.Values = make([]float64, 0, sc.Fleet.Dims)
	ev.Values = append(ev.Values, t.value(v, step))

	// Burst overlay: replace the regime value with a far-out one. The
	// jitter keeps concurrent bursts distinct without bringing them
	// close enough to support each other.
	if sc.Burst != nil && t.rng.Float64() < sc.Burst.Rate {
		ev.Burst = true
		ev.Values[0] = sc.Regime.Base + sc.Burst.Offset + sc.Burst.Offset*0.01*t.rng.Float64()
	}

	// Aux dims: a stable position on a unit-spaced grid, scaled down so
	// value distance dominates — the paper's (reading, x, y) shape.
	for d := 1; d < sc.Fleet.Dims; d++ {
		switch d {
		case 1:
			ev.Values = append(ev.Values, 0.01*float64(v%t.gridSide))
		case 2:
			ev.Values = append(ev.Values, 0.01*float64(v/t.gridSide))
		default:
			ev.Values = append(ev.Values, 0)
		}
	}

	// Radio loss last: the reading exists — the fleet just never hears
	// it. Drawn after the value so loss does not perturb the regime.
	if sc.Loss != nil && t.rng.Float64() < sc.Loss.Rate {
		ev.Lost = true
	}
	return ev
}

// value computes the regime curve for virtual sensor v at step.
func (t *Trace) value(v, step int) float64 {
	r := t.sc.Regime
	noise := r.Noise * t.rng.NormFloat64()
	switch r.Kind {
	case "drift":
		dir := 1.0
		if v%2 == 1 {
			dir = -1
		}
		return r.Base + dir*r.DriftPerStep*float64(step) + noise
	case "diurnal":
		periodMS := r.PeriodS * 1000
		phase := float64(v) / float64(t.sc.Fleet.Sensors) // stagger the fleet
		x := 2 * math.Pi * (float64(int64(step)*t.sc.Traffic.StepMS)/periodMS + phase)
		return r.Base + r.Amplitude*math.Sin(x) + noise
	case "adversarial":
		if float64(v) < r.Fraction*float64(t.sc.Fleet.Sensors) {
			// The colluders: identical extreme readings, no noise —
			// maximal mutual support at maximal distance from Base.
			return r.Base + r.Magnitude
		}
		return r.Base + noise
	default: // steady
		return r.Base + noise
	}
}
