package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"innet/internal/baseline"
	"innet/internal/core"
	"innet/internal/ingest"
)

// Target is the system under load.
type Target struct {
	HTTP      string   // base URL of the front door (innetd or innet-coord)
	UDP       string   // host:port of its line-protocol listener
	ShardHTTP []string // shard innetd HTTP bases (cluster throughput/drop scrape)
	Cluster   bool     // true: coordinator; false: single innetd
	Shards    int
}

// httpClient bounds every evaluator request; merge queries against a
// loaded cluster can take a full query timeout.
var httpClient = &http.Client{Timeout: 10 * time.Second}

// DetectTarget probes httpURL and classifies it: a coordinator's
// /healthz reports shard counts, an innetd's reports sensors only.
func DetectTarget(httpURL, udp string, shardHTTP []string) (Target, error) {
	resp, err := httpClient.Get(httpURL + "/healthz")
	if err != nil {
		return Target{}, fmt.Errorf("loadgen: probe %s: %w", httpURL, err)
	}
	defer resp.Body.Close()
	var health struct {
		ShardsTotal *int `json:"shards_total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return Target{}, fmt.Errorf("loadgen: probe %s: %w", httpURL, err)
	}
	t := Target{HTTP: httpURL, UDP: udp, ShardHTTP: shardHTTP, Shards: 1}
	if health.ShardsTotal != nil {
		t.Cluster = true
		t.Shards = *health.ShardsTotal
	}
	return t, nil
}

// queryURL builds the outlier query for one probe mode.
func (t Target) queryURL(mode string, window bool) string {
	u := t.HTTP + "/v1/outliers"
	var q []string
	if t.Cluster && (mode == "compact" || mode == "full") {
		q = append(q, "merge="+mode)
	}
	if window {
		q = append(q, "window=1")
	}
	if len(q) > 0 {
		u += "?" + strings.Join(q, "&")
	}
	return u
}

// outlierReply is the union of the innetd and coordinator responses.
type outlierReply struct {
	Outliers     []ingest.WireOutlier `json:"outliers"`
	Window       []ingest.WireOutlier `json:"window"`
	MergeMode    string               `json:"merge_mode"`
	Rounds       int                  `json:"rounds"`
	PayloadBytes int                  `json:"payload_bytes"`
	Degraded     bool                 `json:"degraded"`
}

func getJSON(ctx context.Context, url string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("loadgen: GET %s: %s: %s", url, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// scrapeBody fetches one /metrics page as text.
func scrapeBody(ctx context.Context, base string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// scrapeMetrics fetches and parses a Prometheus-text /metrics page into
// name → value. Labeled series are summed under their base name, so
// innetd_sensor_queue_drops_total{sensor="7"} aggregates across the
// fleet.
func scrapeMetrics(ctx context.Context, base string) (map[string]float64, error) {
	body, err := scrapeBody(ctx, base)
	if err != nil {
		return nil, err
	}
	return parseExposition(body).flat, nil
}

// histogram is one scraped (or differenced) Prometheus histogram family
// child: cumulative bucket counts keyed by upper bound, plus the running
// sum and count.
type histogram struct {
	buckets map[float64]float64 // le → cumulative observation count
	sum     float64
	count   float64
}

func newHistogram() *histogram { return &histogram{buckets: make(map[float64]float64)} }

// add folds another scrape of the same family into h (summing a
// cluster's per-shard histograms, like ingestTotals sums counters).
func (h *histogram) add(o *histogram) {
	for le, c := range o.buckets {
		h.buckets[le] += c
	}
	h.sum += o.sum
	h.count += o.count
}

// sub returns h minus a previous scrape of the same family: the
// histogram of only the observations made between the two scrapes.
// before may be nil (everything is new).
func (h *histogram) sub(before *histogram) *histogram {
	d := newHistogram()
	for le, c := range h.buckets {
		d.buckets[le] = c
		if before != nil {
			d.buckets[le] -= before.buckets[le]
		}
	}
	d.sum, d.count = h.sum, h.count
	if before != nil {
		d.sum -= before.sum
		d.count -= before.count
	}
	return d
}

// quantile interpolates the qth quantile (0 < q < 1) from the cumulative
// buckets, the way PromQL's histogram_quantile does: linear within the
// bucket the rank lands in, the highest finite bound for the +Inf
// bucket. Returns 0 for an empty histogram. Units are the histogram's
// own (seconds for the latency families).
func (h *histogram) quantile(q float64) float64 {
	bounds := make([]float64, 0, len(h.buckets))
	for b := range h.buckets {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds) // +Inf sorts last
	if len(bounds) == 0 {
		return 0
	}
	total := h.buckets[bounds[len(bounds)-1]]
	if total <= 0 {
		return 0
	}
	target := q * total
	prevBound, prevCount := 0.0, 0.0
	for _, b := range bounds {
		c := h.buckets[b]
		if c >= target {
			if math.IsInf(b, +1) || c == prevCount {
				return prevBound
			}
			return prevBound + (b-prevBound)*(target-prevCount)/(c-prevCount)
		}
		prevBound, prevCount = b, c
	}
	return prevBound
}

// exposition is one parsed /metrics page: the flat name → summed-value
// view the counter deltas and the barrier use, plus every histogram
// family keyed by base name and remaining labels (the le label
// stripped), e.g. `innetcoord_query_latency_seconds{mode="compact"}`.
type exposition struct {
	flat  map[string]float64
	hists map[string]*histogram
}

// parseExposition parses Prometheus text format. # HELP and other
// comments are skipped; # TYPE lines are read just enough to know which
// families are histograms, so their _bucket/_sum/_count series can be
// reassembled instead of flattened.
func parseExposition(body string) exposition {
	ex := exposition{flat: make(map[string]float64), hists: make(map[string]*histogram)}
	lines := strings.Split(body, "\n")
	histType := make(map[string]bool)
	for _, line := range lines {
		if name, ok := strings.CutPrefix(strings.TrimSpace(line), "# TYPE "); ok {
			if base, kind, ok := strings.Cut(name, " "); ok && strings.TrimSpace(kind) == "histogram" {
				histType[base] = true
			}
		}
	}
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, ok := parseSeries(line)
		if !ok {
			continue
		}
		ex.flat[name] += value

		base, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, s); b != name && histType[b] {
				base, suffix = b, s
				break
			}
		}
		if suffix == "" {
			continue
		}
		le := math.NaN()
		rest := make([]string, 0, len(labels))
		for _, l := range labels {
			if k, v, _ := strings.Cut(l, "="); k == "le" {
				if f, err := strconv.ParseFloat(strings.Trim(v, `"`), 64); err == nil {
					le = f
				}
				continue
			}
			rest = append(rest, l)
		}
		key := base
		if len(rest) > 0 {
			key += "{" + strings.Join(rest, ",") + "}"
		}
		h := ex.hists[key]
		if h == nil {
			h = newHistogram()
			ex.hists[key] = h
		}
		switch suffix {
		case "_bucket":
			if !math.IsNaN(le) {
				h.buckets[le] += value
			}
		case "_sum":
			h.sum += value
		case "_count":
			h.count += value
		}
	}
	return ex
}

// parseSeries splits one sample line into name, raw `key="value"` label
// pairs, and value.
func parseSeries(line string) (name string, labels []string, value float64, ok bool) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", nil, 0, false
		}
		name = rest[:i]
		if body := rest[i+1 : j]; body != "" {
			labels = strings.Split(body, ",")
		}
		rest = rest[j+1:]
	} else if name, rest, ok = strings.Cut(rest, " "); !ok {
		return "", nil, 0, false
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", nil, 0, false
	}
	return name, labels, f, true
}

// serverHistograms scrapes every daemon the run touches — the shards
// plus the coordinator for a cluster, the single innetd otherwise — and
// merges same-keyed histogram families across them.
func (t Target) serverHistograms(ctx context.Context) (map[string]*histogram, error) {
	bases := []string{t.HTTP}
	if t.Cluster {
		bases = append(append([]string{}, t.ShardHTTP...), t.HTTP)
	}
	out := make(map[string]*histogram)
	for _, base := range bases {
		body, err := scrapeBody(ctx, base)
		if err != nil {
			return nil, err
		}
		for key, h := range parseExposition(body).hists {
			if out[key] == nil {
				out[key] = newHistogram()
			}
			out[key].add(h)
		}
	}
	return out, nil
}

// serverHistogramDeltas folds a before/after scrape pair into the
// report's server-side latency view: one ServerHistogram per family
// that observed anything during the run.
func serverHistogramDeltas(before, after map[string]*histogram) map[string]ServerHistogram {
	out := make(map[string]ServerHistogram)
	for key, h := range after {
		d := h.sub(before[key])
		if d.count <= 0 {
			continue
		}
		out[key] = ServerHistogram{
			Count: d.count,
			P50MS: d.quantile(0.50) * 1000,
			P95MS: d.quantile(0.95) * 1000,
			P99MS: d.quantile(0.99) * 1000,
		}
	}
	return out
}

// ingestTotals sums the ingest-side counters the throughput and drop
// figures come from: the shards' metrics for a cluster, the daemon's
// own for a single innetd.
func (t Target) ingestTotals(ctx context.Context) (map[string]float64, error) {
	bases := t.ShardHTTP
	if !t.Cluster {
		bases = []string{t.HTTP}
	}
	sum := make(map[string]float64)
	for _, base := range bases {
		m, err := scrapeMetrics(ctx, base)
		if err != nil {
			return nil, err
		}
		for k, v := range m {
			sum[k] += v
		}
	}
	return sum, nil
}

// prober hammers one query mode at a fixed interval, recording latency
// and the per-query merge cost the response reports.
type prober struct {
	mode string
	url  string

	mu        sync.Mutex
	latencies []float64 // milliseconds
	errors    int
	rounds    int
	payload   int
	queries   int
}

func (p *prober) run(ctx context.Context, interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		var reply outlierReply
		start := time.Now()
		err := getJSON(ctx, p.url, &reply)
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		p.mu.Lock()
		if err != nil {
			if ctx.Err() != nil {
				p.mu.Unlock()
				return
			}
			p.errors++
		} else {
			p.latencies = append(p.latencies, ms)
			p.queries++
			p.rounds += reply.Rounds
			p.payload += reply.PayloadBytes
		}
		p.mu.Unlock()
	}
}

// percentile returns the pth percentile (0 < p ≤ 100) of sorted samples
// by nearest-rank; 0 when empty.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// snapshot folds a prober's samples into the report form.
func (p *prober) snapshot() ModeReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	lat := append([]float64(nil), p.latencies...)
	sort.Float64s(lat)
	mr := ModeReport{
		Latency: LatencyStats{
			Count:  len(lat),
			Errors: p.errors,
			P50MS:  percentile(lat, 50),
			P95MS:  percentile(lat, 95),
			P99MS:  percentile(lat, 99),
		},
	}
	if len(lat) > 0 {
		mr.Latency.MaxMS = lat[len(lat)-1]
	}
	if p.queries > 0 {
		mr.AvgRounds = float64(p.rounds) / float64(p.queries)
		mr.AvgPayloadBytes = float64(p.payload) / float64(p.queries)
	}
	if p.rounds > 0 {
		mr.AvgPayloadBytesPerRound = float64(p.payload) / float64(p.rounds)
	}
	return mr
}

// barrier freezes the target's ingestion pipeline: first the in-flight
// datagrams (poll the accepted/routed counter until it stops moving —
// the firehose has already drained, but the kernel socket buffer and
// the listener goroutine lag it), then the per-sensor queues and the
// mesh (POST /v1/flush on every ingesting daemon). After barrier
// returns, the target's windows hold exactly the readings that survived
// the segment, and a window fetch is comparable against
// baseline.Compute.
func (t Target) barrier(ctx context.Context) error {
	counter := "innetd_readings_accepted_total"
	base := []string{t.HTTP}
	if t.Cluster {
		counter = "innetcoord_readings_routed_total"
	}
	prev := -1.0
	for stable := 0; stable < 2; {
		if err := ctx.Err(); err != nil {
			return err
		}
		m, err := scrapeMetrics(ctx, t.HTTP)
		if err != nil {
			return err
		}
		cur := m[counter]
		if cur == prev {
			stable++
		} else {
			stable, prev = 0, cur
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(150 * time.Millisecond):
		}
	}
	if t.Cluster {
		base = t.ShardHTTP
	}
	for _, b := range base {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, b+"/v1/flush", nil)
		if err != nil {
			return err
		}
		resp, err := httpClient.Do(req)
		if err != nil {
			return fmt.Errorf("loadgen: flush %s: %w", b, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("loadgen: flush %s: %s", b, resp.Status)
		}
	}
	return nil
}

// pointKey identifies a point across the wire and the local
// recomputation.
type pointKey struct {
	Sensor uint16
	Seq    uint32
}

func wireToPoints(ws []ingest.WireOutlier) []core.Point {
	pts := make([]core.Point, 0, len(ws))
	for _, w := range ws {
		pts = append(pts, core.NewPoint(core.NodeID(w.Sensor), w.Seq,
			time.Duration(w.AtMS)*time.Millisecond, w.Values...))
	}
	return pts
}

func keySet(ws []ingest.WireOutlier) map[pointKey]bool {
	out := make(map[pointKey]bool, len(ws))
	for _, w := range ws {
		out[pointKey{w.Sensor, w.Seq}] = true
	}
	return out
}

// getJSONRetry is getJSON with a short retry ladder: a checkpoint fetch
// that hits a transient hiccup (connection reset during a restart drill,
// one lost UDP merge round) must not masquerade as an exactness verdict.
func getJSONRetry(ctx context.Context, url string, into any) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(attempt) * 200 * time.Millisecond):
			}
		}
		if err = getJSON(ctx, url, into); err == nil {
			return nil
		}
	}
	return err
}

// checkpoint runs one exactness checkpoint: barrier, fetch the window
// the target computed over, recompute the answer with baseline.Compute,
// and diff every probe mode's served answer against it.
//
// Failure taxonomy matters here: a fetch that errors out after retries
// is an infrastructure failure — it is recorded in cp.FetchError and
// returned as an error, and never folded into cp.Match, which reports
// only genuine inexactness (a served answer that disagrees with the
// baseline over the window the target itself handed us).
func (t Target) checkpoint(ctx context.Context, sc *Scenario, modes []string, atS float64) (CheckpointReport, error) {
	cp := CheckpointReport{AtS: atS, Modes: map[string]bool{}, Match: true}
	if err := t.barrier(ctx); err != nil {
		cp.FetchError = err.Error()
		return cp, err
	}

	// The window union, from the authoritative full path.
	var full outlierReply
	mode := "full"
	if !t.Cluster {
		mode = "single"
	}
	if err := getJSONRetry(ctx, t.queryURL(mode, true), &full); err != nil {
		err = fmt.Errorf("loadgen: checkpoint window fetch: %w", err)
		cp.FetchError = err.Error()
		return cp, err
	}
	cp.WindowPoints = len(full.Window)

	// The centralized ground truth over the same window.
	ranker, err := sc.Ranker()
	if err != nil {
		return cp, err
	}
	expected := baseline.Compute(ranker, sc.Detector.N, wireToPoints(full.Window))
	want := make(map[pointKey]bool, len(expected))
	for _, p := range expected {
		want[pointKey{uint16(p.ID.Origin), p.ID.Seq}] = true
		cp.Expected = append(cp.Expected, fmt.Sprintf("%d/%d", p.ID.Origin, p.ID.Seq))
	}
	sort.Strings(cp.Expected)

	sameSet := func(got map[pointKey]bool) bool {
		if len(got) != len(want) {
			return false
		}
		for k := range got {
			if !want[k] {
				return false
			}
		}
		return true
	}

	for _, m := range modes {
		var reply outlierReply
		if err := getJSONRetry(ctx, t.queryURL(m, false), &reply); err != nil {
			err = fmt.Errorf("loadgen: checkpoint query %s: %w", m, err)
			cp.FetchError = err.Error()
			return cp, err
		}
		ok := sameSet(keySet(reply.Outliers))
		cp.Modes[m] = ok
		if !ok {
			cp.Match = false
		}
	}
	// The full window fetch above already carried its own answer; hold
	// it to the same standard even when "full" is not a probe mode.
	if !sameSet(keySet(full.Outliers)) {
		cp.Match = false
		cp.Modes[mode+"(window-fetch)"] = false
	}
	return cp, nil
}
