package loadgen

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Runner drives one scenario end to end: fire the trace at the target
// in segments, freeze the pipeline at each segment boundary for an
// exactness checkpoint, probe query latency throughout, and fold the
// target's own counters into a Report.
type Runner struct {
	Scenario *Scenario
	Target   Target
	Logf     func(format string, args ...any) // optional progress log
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// modes returns the probe modes that make sense for the target: a
// single innetd has exactly one query path, a coordinator has no
// "single" one.
func (r *Runner) modes() []string {
	var out []string
	for _, m := range r.Scenario.Queries.Modes {
		switch {
		case r.Target.Cluster && m == "single":
			r.logf("loadgen: dropping probe mode %q: target is a cluster", m)
		case !r.Target.Cluster && m != "single":
			r.logf("loadgen: probe mode %q collapses to the single query path", m)
			out = append(out, m)
		default:
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		if r.Target.Cluster {
			out = []string{"compact", "full"}
		} else {
			out = []string{"single"}
		}
	}
	return out
}

// Run executes the scenario and returns its report. A checkpoint
// mismatch is reported in Report.CheckpointsOK, not as an error — the
// caller decides whether exactness failure fails the run.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	sc := r.Scenario
	modes := r.modes()

	before, err := r.Target.ingestTotals(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: initial scrape: %w", err)
	}
	histBefore, err := r.Target.serverHistograms(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: initial histogram scrape: %w", err)
	}

	// Probers run for the whole load phase, checkpoints included — a
	// frozen pipeline still answers queries, and those samples are the
	// interesting ones.
	probeCtx, stopProbes := context.WithCancel(ctx)
	defer stopProbes()
	probers := make([]*prober, 0, len(modes))
	var probeWG sync.WaitGroup
	for _, m := range modes {
		p := &prober{mode: m, url: r.Target.queryURL(m, false)}
		probers = append(probers, p)
		probeWG.Add(1)
		go func() {
			defer probeWG.Done()
			p.run(probeCtx, time.Duration(sc.Queries.IntervalMS)*time.Millisecond)
		}()
	}

	fire := NewFirehose(sc, r.Target.UDP)
	total := time.Duration(sc.Traffic.DurationS * float64(time.Second))
	segments := sc.Checkpoints.Count
	if segments < 1 {
		segments = 1
	}

	report := &Report{
		Scenario: sc.Name,
		Seed:     sc.Seed,
		Cluster:  r.Target.Cluster,
		Shards:   r.Target.Shards,
		Sensors:  sc.Fleet.Sensors,
		Attached: sc.Fleet.Attached,
		Modes:    map[string]ModeReport{},
	}

	start := time.Now()
	var fired time.Duration
	for seg := 0; seg < segments; seg++ {
		d := total/time.Duration(segments) + time.Duration(seg%2) // spread rounding
		segStart := time.Now()
		if err := fire.Run(ctx, d); err != nil {
			return nil, err
		}
		fired += time.Since(segStart)
		if sc.Checkpoints.Count > 0 {
			r.logf("loadgen: checkpoint %d/%d (%.1fs fired)", seg+1, segments, fired.Seconds())
			cp, err := r.Target.checkpoint(ctx, sc, modes, fired.Seconds())
			if err != nil {
				return nil, fmt.Errorf("loadgen: checkpoint %d: %w", seg+1, err)
			}
			report.Checkpoints = append(report.Checkpoints, cp)
			r.logf("loadgen: checkpoint %d/%d: window=%d match=%v",
				seg+1, segments, cp.WindowPoints, cp.Match)
		}
	}
	// No checkpoints requested: still barrier once so the final scrape
	// counts every reading the firehose sent.
	if sc.Checkpoints.Count == 0 {
		if err := r.Target.barrier(ctx); err != nil {
			return nil, fmt.Errorf("loadgen: final barrier: %w", err)
		}
	}
	report.WallSeconds = time.Since(start).Seconds()

	stopProbes()
	probeWG.Wait()
	for _, p := range probers {
		report.Modes[p.mode] = p.snapshot()
	}

	after, err := r.Target.ingestTotals(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: final scrape: %w", err)
	}
	histAfter, err := r.Target.serverHistograms(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: final histogram scrape: %w", err)
	}
	report.Server = serverHistogramDeltas(histBefore, histAfter)
	delta := func(name string) float64 { return after[name] - before[name] }
	ing := IngestReport{
		Accepted:  delta("innetd_readings_accepted_total"),
		Observed:  delta("innetd_readings_observed_total"),
		Dropped:   delta("innetd_readings_dropped_total"),
		Malformed: delta("innetd_readings_malformed_total"),
		Stale:     delta("innetd_readings_stale_total"),
	}
	if fired > 0 {
		ing.ReadingsPerSec = ing.Observed / fired.Seconds()
		ing.ReadingsPerSecPerShard = ing.ReadingsPerSec / float64(r.Target.Shards)
	}
	if ing.Accepted > 0 {
		ing.EnqueueDropRate = ing.Dropped / ing.Accepted
	}
	report.Ingest = ing
	report.Fire = fire.Stats()

	report.CheckpointsOK = true
	for _, cp := range report.Checkpoints {
		if !cp.Match {
			report.CheckpointsOK = false
		}
	}
	return report, nil
}
