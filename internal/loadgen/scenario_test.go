package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"innet/internal/core"
)

func writeScenario(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadScenarioDefaults(t *testing.T) {
	sc, err := Load(writeScenario(t, `{
		"name": "minimal",
		"fleet": {"sensors": 1000},
		"traffic": {"duration_s": 2},
		"regime": {"base": 20, "noise": 0.5},
		"detector": {"ranker": "knn", "k": 2, "n": 3, "window_s": 600}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Fleet.Attached != 24 {
		t.Errorf("attached default = %d, want 24", sc.Fleet.Attached)
	}
	if sc.Fleet.Dims != 1 {
		t.Errorf("dims default = %d, want 1", sc.Fleet.Dims)
	}
	if sc.Traffic.StepMS != 1000 || sc.Traffic.Senders != 4 || sc.Traffic.LinesPerDatagram != 32 {
		t.Errorf("traffic defaults = %+v", sc.Traffic)
	}
	if sc.Regime.Kind != "steady" {
		t.Errorf("regime kind default = %q, want steady", sc.Regime.Kind)
	}
	if sc.Queries.IntervalMS != 250 {
		t.Errorf("queries interval default = %d, want 250", sc.Queries.IntervalMS)
	}
	if _, err := sc.Ranker(); err != nil {
		t.Errorf("ranker: %v", err)
	}
}

func TestLoadScenarioSmallFleetAttached(t *testing.T) {
	sc, err := Load(writeScenario(t, `{
		"name": "tiny",
		"fleet": {"sensors": 5},
		"traffic": {"duration_s": 1},
		"regime": {"base": 20},
		"detector": {"n": 1}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Fleet.Attached != 5 {
		t.Errorf("attached = %d, want min(sensors, 24) = 5", sc.Fleet.Attached)
	}
}

func TestLoadScenarioUnknownFieldRejected(t *testing.T) {
	_, err := Load(writeScenario(t, `{
		"name": "typo",
		"fleet": {"sensors": 10},
		"traffic": {"duration_s": 1},
		"regime": {"base": 20},
		"detector": {"n": 1},
		"bursts": {"rate": 0.1, "offset": 50}
	}`))
	if err == nil || !strings.Contains(err.Error(), "bursts") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Name:     "v",
			Fleet:    FleetConfig{Sensors: 100},
			Traffic:  TrafficConfig{DurationS: 1},
			Regime:   RegimeConfig{Base: 20},
			Detector: DetectorConfig{Ranker: "nn", N: 1},
		}
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"no name", func(s *Scenario) { s.Name = "" }, "name"},
		{"no sensors", func(s *Scenario) { s.Fleet.Sensors = 0 }, "sensors"},
		{"attached over uint16", func(s *Scenario) { s.Fleet.Attached = 70000 }, "attached"},
		{"no duration", func(s *Scenario) { s.Traffic.DurationS = 0 }, "duration"},
		{"bad regime", func(s *Scenario) { s.Regime.Kind = "chaotic" }, "regime.kind"},
		{"diurnal no period", func(s *Scenario) { s.Regime.Kind = "diurnal" }, "period"},
		{"zero burst offset", func(s *Scenario) { s.Burst = &BurstConfig{Rate: 0.1} }, "offset"},
		{"churn rate", func(s *Scenario) { s.Churn = &ChurnConfig{DownRate: 1.5} }, "down_rate"},
		{"loss rate", func(s *Scenario) { s.Loss = &LossConfig{Rate: -0.1} }, "loss.rate"},
		{"knn no k", func(s *Scenario) { s.Detector = DetectorConfig{Ranker: "knn", N: 1} }, "detector.k"},
		{"db no eps", func(s *Scenario) { s.Detector = DetectorConfig{Ranker: "db", N: 1} }, "detector.eps"},
		{"no n", func(s *Scenario) { s.Detector.N = 0 }, "detector.n"},
		{"bad mode", func(s *Scenario) { s.Queries.Modes = []string{"turbo"} }, "modes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base()
			tc.mut(sc)
			err := sc.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

func TestRankerMapping(t *testing.T) {
	sc := &Scenario{Detector: DetectorConfig{Ranker: "kthnn", K: 3}}
	r, err := sc.Ranker()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(core.KthNN); !ok {
		t.Fatalf("kthnn ranker = %T", r)
	}
	sc.Detector = DetectorConfig{Ranker: "db", Eps: 1.5}
	r, err = sc.Ranker()
	if err != nil {
		t.Fatal(err)
	}
	cw, ok := r.(core.CountWithin)
	if !ok || cw.Alpha != 1.5 {
		t.Fatalf("db ranker = %#v", r)
	}
}
