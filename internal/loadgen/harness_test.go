package loadgen

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"innet/internal/core"
	"innet/internal/ingest"
)

// TestHarnessEndToEnd runs the whole loop in-process: a real
// ingest.Service behind a real UDP socket and HTTP server, a scenario
// with churn, loss and bursts, two exactness checkpoints, and the
// BENCH artifact written and re-parsed. This is the harness's own
// integration proof; the shell smoke script repeats it against real
// daemon processes.
func TestHarnessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skips the 2s live-fire harness run")
	}

	svc, err := ingest.New(ingest.Config{
		Detector: core.Config{Ranker: core.KNN{K: 2}, N: 2, Window: time.Hour},
		AutoJoin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go svc.ServeUDP(conn)

	sc := &Scenario{
		Name:        "e2e",
		Seed:        1234,
		Fleet:       FleetConfig{Sensors: 60, Attached: 6},
		Traffic:     TrafficConfig{DurationS: 2, StepMS: 50, Rate: 2000, Senders: 2, LinesPerDatagram: 8},
		Regime:      RegimeConfig{Kind: "steady", Base: 20, Noise: 0.3},
		Burst:       &BurstConfig{Rate: 0.005, Offset: 80},
		Churn:       &ChurnConfig{DownRate: 0.01, MinDownSteps: 2, MaxDownSteps: 4},
		Loss:        &LossConfig{Rate: 0.05},
		Detector:    DetectorConfig{Ranker: "knn", K: 2, N: 2, WindowS: 3600},
		Queries:     QueryConfig{IntervalMS: 50, Modes: []string{"single"}},
		Checkpoints: CheckpointConfig{Count: 2},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}

	target, err := DetectTarget(ts.URL, conn.LocalAddr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if target.Cluster {
		t.Fatal("single innetd misclassified as a cluster")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	runner := &Runner{Scenario: sc, Target: target, Logf: t.Logf}
	report, err := runner.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if len(report.Checkpoints) != 2 {
		t.Fatalf("checkpoints = %d, want 2", len(report.Checkpoints))
	}
	if !report.CheckpointsOK {
		t.Errorf("exactness checkpoints failed: %+v", report.Checkpoints)
	}
	for i, cp := range report.Checkpoints {
		if cp.WindowPoints == 0 {
			t.Errorf("checkpoint %d saw an empty window", i)
		}
	}
	if report.Fire.Sent == 0 || report.Fire.Datagrams == 0 {
		t.Errorf("firehose sent nothing: %+v", report.Fire)
	}
	if report.Fire.Lost == 0 || report.Fire.Down == 0 {
		t.Errorf("loss/churn overlays never triggered: %+v", report.Fire)
	}
	if report.Ingest.Observed == 0 {
		t.Errorf("target observed nothing: %+v", report.Ingest)
	}
	// Barrier guarantee: everything accepted was observed by report time.
	if report.Ingest.Observed+report.Ingest.Dropped < report.Ingest.Accepted {
		t.Errorf("accepted %v > observed %v + dropped %v after final barrier",
			report.Ingest.Accepted, report.Ingest.Observed, report.Ingest.Dropped)
	}
	mr, ok := report.Modes["single"]
	if !ok || mr.Latency.Count == 0 {
		t.Errorf("no latency samples: %+v", report.Modes)
	}
	if mr.Latency.P50MS > mr.Latency.P99MS {
		t.Errorf("p50 %.2f > p99 %.2f", mr.Latency.P50MS, mr.Latency.P99MS)
	}

	dir := t.TempDir()
	path, err := report.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := dir + "/BENCH_innetload_e2e.json"; path != want {
		t.Errorf("artifact path = %q, want %q", path, want)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if back.Scenario != "e2e" || back.Ingest.ReadingsPerSec <= 0 || !back.CheckpointsOK {
		t.Errorf("artifact round-trip lost fields: %+v", back)
	}
}
