// Package protocol adapts the core outlier detector to the simulated
// radio: it is the firmware of a sensor running the paper's distributed
// algorithm. Every sampling period the node reads its sensor (a dataset
// stream), advances the sliding window, and broadcasts whatever the
// detector decides its neighbors need; every received packet M is
// dispatched into the detector and the reaction broadcast in turn. All
// communication is single-hop broadcast, exactly as the paper requires.
package protocol

import (
	"fmt"
	"time"

	"innet/internal/core"
	"innet/internal/dataset"
	"innet/internal/wsn"
)

// Config parameterizes one node's distributed-detection firmware.
type Config struct {
	// Detector configures the embedded algorithm; its Node field is
	// overwritten with the host node's ID.
	Detector core.Config

	// Stream supplies the sensor readings.
	Stream *dataset.Stream

	// Topology provides the initial neighbor lists (the paper assumes
	// each sensor accurately maintains Γ_i; neighbor discovery beacons
	// are out of scope for both the paper and this reproduction).
	Topology *wsn.Topology

	// LocationWeight scales the coordinate features (1 = the paper's
	// raw coordinates).
	LocationWeight float64

	// PerNeighborFrames disables the paper's recipient-tagged broadcast
	// (design point: one transmission serves all neighbors) and sends
	// each neighbor's group as its own frame. Exists for the ablation
	// benchmark quantifying the tagged-broadcast saving.
	PerNeighborFrames bool
}

// App is the distributed-detection firmware for one node. It implements
// wsn.App.
type App struct {
	cfg Config
	det *core.Detector
	arq *arq
}

var _ wsn.App = (*App)(nil)

// New builds the firmware for the node with the given ID.
func New(id core.NodeID, cfg Config) (*App, error) {
	if cfg.Stream == nil || cfg.Topology == nil {
		return nil, fmt.Errorf("protocol: Stream and Topology are required")
	}
	if cfg.LocationWeight == 0 {
		cfg.LocationWeight = 1
	}
	dcfg := cfg.Detector
	dcfg.Node = id
	det, err := core.NewDetector(dcfg)
	if err != nil {
		return nil, err
	}
	return &App{cfg: cfg, det: det, arq: newARQ()}, nil
}

// Detector exposes the embedded detector for measurement (estimates,
// stats). Callers must treat it as read-only.
func (a *App) Detector() *core.Detector { return a.det }

// Start implements wsn.App: configure the neighborhood, then sample on
// every epoch of the stream.
func (a *App) Start(n *wsn.Node) {
	for _, j := range a.cfg.Topology.Neighbors(n.ID) {
		a.send(n, a.det.AddNeighbor(j))
	}
	a.send(n, a.det.Start())
	a.scheduleEpoch(n, 0)
}

func (a *App) scheduleEpoch(n *wsn.Node, epoch int) {
	if epoch >= a.cfg.Stream.Epochs() {
		return
	}
	period := a.cfg.Stream.Period()
	at := time.Duration(epoch) * period
	// Small per-node jitter decorrelates the sampling broadcasts.
	jitter := wsn.Clock(n.Sim().Rand().Int64N(int64(period / 10)))
	n.Sim().At(at+jitter, func() {
		a.sample(n, epoch)
		a.scheduleEpoch(n, epoch+1)
	})
}

// sample advances the window and feeds one reading into the detector as
// a single data-change event. Births are stamped with the logical epoch
// boundary rather than the jittered transmission instant, so every
// sensor's sliding window covers exactly the same sample epochs (the
// paper assumes "sensor clocks are synchronized sufficiently well"; the
// jitter exists only on the radio).
func (a *App) sample(n *wsn.Node, epoch int) {
	if n.Down() {
		return
	}
	logical := time.Duration(epoch) * a.cfg.Stream.Period()
	s, ok := a.cfg.Stream.At(n.ID, epoch)
	if !ok {
		a.send(n, a.det.AdvanceTo(logical))
		return
	}
	p := core.NewPoint(n.ID, uint32(epoch), logical, s.Features(a.cfg.LocationWeight)...)
	a.send(n, a.det.StepObserve(logical, p))
}

// Receive implements wsn.App: packets M go through the reliability layer
// into the detector; acks clear pending retransmissions.
func (a *App) Receive(n *wsn.Node, f *wsn.Frame) {
	if len(f.Payload) == 0 {
		return
	}
	switch f.Payload[0] {
	case wsn.PayloadPoints:
		a.handlePoints(n, f)
	case wsn.PayloadPointsAck:
		a.handleAck(n, f)
	}
}

// responseJitterMax spreads reaction broadcasts in time. Every receiver
// of a packet reacts at the same instant, and receivers of the same
// broadcast are often hidden from each other (out of mutual carrier-sense
// range), so un-jittered reactions collide catastrophically at the
// original sender. A few airtimes of random delay decorrelates the storm,
// the same remedy mote MACs apply to broadcast traffic.
const responseJitterMax = 250 * time.Millisecond

// send transmits a detector reaction, if any, through the reliability
// layer.
func (a *App) send(n *wsn.Node, out *core.Outbound) {
	a.sendReliable(n, out)
}
