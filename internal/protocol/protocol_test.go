package protocol

import (
	"testing"
	"time"

	"innet/internal/core"
	"innet/internal/dataset"
	"innet/internal/wsn"
)

// testbed assembles a small simulated network running the distributed
// protocol over a generated stream.
func testbed(t *testing.T, nodes int, detCfg core.Config, simCfg wsn.Config) (*wsn.Sim, *dataset.Stream, *wsn.Topology, map[core.NodeID]*App) {
	t.Helper()
	stream, err := dataset.Generate(dataset.Config{
		Nodes:    nodes,
		Seed:     3,
		Period:   10 * time.Second,
		Duration: 100 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo := wsn.NewTopology(stream.Positions(), wsn.DefaultRadio().Range)
	if !topo.Connected() {
		t.Fatal("testbed topology disconnected")
	}
	sim := wsn.NewSim(simCfg)
	apps := make(map[core.NodeID]*App, nodes)
	for _, id := range topo.Nodes() {
		app, err := New(id, Config{
			Detector: detCfg,
			Stream:   stream,
			Topology: topo,
		})
		if err != nil {
			t.Fatal(err)
		}
		apps[id] = app
		sim.AddNode(id, stream.Positions()[id], app)
	}
	return sim, stream, topo, apps
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, Config{}); err == nil {
		t.Fatal("missing stream/topology must fail")
	}
	stream, err := dataset.Generate(dataset.Config{Nodes: 2, Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	topo := wsn.NewTopology(stream.Positions(), 100)
	if _, err := New(1, Config{Stream: stream, Topology: topo}); err == nil {
		t.Fatal("invalid detector config must fail")
	}
	if _, err := New(1, Config{
		Detector: core.Config{Ranker: core.NN(), N: 1},
		Stream:   stream,
		Topology: topo,
	}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestConvergesOverRadio runs the full stack — detector, ARQ, CSMA radio —
// and checks every sensor converges to the true global outliers by the
// end of each late round.
func TestConvergesOverRadio(t *testing.T) {
	sim, stream, topo, apps := testbed(t, 9,
		core.Config{Ranker: core.NN(), N: 2, Window: 5*10*time.Second - 5*time.Second},
		wsn.Config{Seed: 1})
	sim.Start()

	period := stream.Period()
	for epoch := 0; epoch < stream.Epochs(); epoch++ {
		sim.Run(time.Duration(epoch+1) * period)
		if epoch < 6 {
			continue
		}
		// Ground truth over the window epochs (epoch-4 .. epoch).
		union := core.NewSet()
		for _, id := range topo.Nodes() {
			for e := epoch - 4; e <= epoch; e++ {
				s, ok := stream.At(id, e)
				if !ok {
					continue
				}
				union.Add(core.NewPoint(id, uint32(e), time.Duration(e)*period, s.Features(1)...))
			}
		}
		truth := core.TopN(core.NN(), union, 2)
		for _, id := range topo.Nodes() {
			got := apps[id].Detector().Estimate()
			if !samePointSet(truth, got) {
				t.Fatalf("epoch %d node %d: got %v want %v", epoch, id, pids(got), pids(truth))
			}
		}
	}
}

// TestSurvivesLoss injects 2% random frame loss; the ARQ layer must keep
// accuracy high (the paper reports ≈99% with drops present).
func TestSurvivesLoss(t *testing.T) {
	sim, stream, topo, apps := testbed(t, 9,
		core.Config{Ranker: core.NN(), N: 2, Window: 5*10*time.Second - 5*time.Second},
		wsn.Config{Seed: 2, LossProb: 0.02})
	sim.Start()

	period := stream.Period()
	hits, total := 0, 0
	for epoch := 0; epoch < stream.Epochs(); epoch++ {
		sim.Run(time.Duration(epoch+1) * period)
		if epoch < 6 {
			continue
		}
		union := core.NewSet()
		for _, id := range topo.Nodes() {
			for e := epoch - 4; e <= epoch; e++ {
				s, ok := stream.At(id, e)
				if !ok {
					continue
				}
				union.Add(core.NewPoint(id, uint32(e), time.Duration(e)*period, s.Features(1)...))
			}
		}
		truth := core.TopN(core.NN(), union, 2)
		for _, id := range topo.Nodes() {
			total++
			if samePointSet(truth, apps[id].Detector().Estimate()) {
				hits++
			}
		}
	}
	if total == 0 {
		t.Fatal("nothing measured")
	}
	acc := float64(hits) / float64(total)
	t.Logf("accuracy under 2%% loss: %.3f (%d/%d)", acc, hits, total)
	if acc < 0.9 {
		t.Fatalf("accuracy %.3f under mild loss; ARQ is not doing its job", acc)
	}
}

// TestNodeFailureMidRun fails a sensor mid-run; the survivors keep
// converging on the remaining (and eventually window-evicted) data.
func TestNodeFailureMidRun(t *testing.T) {
	sim, _, topo, apps := testbed(t, 9,
		core.Config{Ranker: core.NN(), N: 2, Window: 3*10*time.Second - 5*time.Second},
		wsn.Config{Seed: 3})
	// Fail a non-articulation sensor (corner of the 3×3 grid) at 45 s.
	ids := topo.Nodes()
	dead := ids[len(ids)-1]
	sim.After(45*time.Second, func() { sim.Node(dead).Fail() })
	sim.Start()
	sim.Run(100 * time.Second)

	// After the window rolled past the failure, no live sensor should
	// hold any point of the dead sensor anymore (§5.3 age-out).
	for _, id := range ids {
		if id == dead {
			continue
		}
		apps[id].Detector().Holdings().ForEach(func(p core.Point) {
			if p.ID.Origin == dead && p.Birth < 45*time.Second {
				t.Errorf("node %d still holds stale point %v of the failed sensor", id, p.ID)
			}
		})
	}
}

func TestFragmentSplitsLargePackets(t *testing.T) {
	r := []core.Point{}
	for i := 0; i < 15; i++ {
		r = append(r, core.NewPoint(1, uint32(i), 0, float64(i)))
	}
	out := &core.Outbound{From: 1, Groups: []core.Group{
		{To: 2, Points: r[:10]},
		{To: 3, Points: r[10:]},
	}}
	frags := fragment(out, 6)
	if len(frags) != 3 {
		t.Fatalf("15 points at 6/frame → %d frags, want 3", len(frags))
	}
	seen := 0
	for _, f := range frags {
		if got := f.PointCount(); got > 6 {
			t.Fatalf("fragment carries %d points", got)
		}
		seen += f.PointCount()
		if f.From != 1 {
			t.Fatal("fragment lost its source")
		}
	}
	if seen != 15 {
		t.Fatalf("fragments carry %d points, want 15", seen)
	}
	// Small packets pass through untouched.
	small := &core.Outbound{From: 1, Groups: []core.Group{{To: 2, Points: r[:3]}}}
	if got := fragment(small, 6); len(got) != 1 || got[0] != small {
		t.Fatal("small packet must not be copied")
	}
}

func samePointSet(a, b []core.Point) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[core.PointID]bool, len(a))
	for _, p := range a {
		set[p.ID] = true
	}
	for _, p := range b {
		if !set[p.ID] {
			return false
		}
	}
	return true
}

func pids(pts []core.Point) []string {
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = p.ID.String()
	}
	return out
}
