package protocol

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"innet/internal/core"
)

func ctlPoints() []core.Point {
	return []core.Point{
		core.NewPoint(3, 17, 42*time.Second, 55.3, 1, 2),
		core.NewPoint(9, 0, 0, -40),
	}
}

func TestFrameRoundTrip(t *testing.T) {
	body, err := HandoffBody{Sensor: 7, Points: ctlPoints()}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	in := Frame{Kind: FrameHandoff, Flags: FlagResponse | FlagTransfer, ReqID: 0xdeadbeef, Body: body}
	out, err := DecodeFrame(EncodeFrame(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.Flags != in.Flags || out.ReqID != in.ReqID {
		t.Fatalf("header mismatch: got %+v, want %+v", out, in)
	}
	if !out.Response() {
		t.Fatal("Response() false on a response frame")
	}
	if !bytes.Equal(out.Body, in.Body) {
		t.Fatal("body mismatch")
	}
}

func TestFrameRejectsForeignDatagrams(t *testing.T) {
	cases := [][]byte{
		nil,
		{frameMagic},
		[]byte("GET / HTTP/1.1\r\n"),
		append([]byte{frameMagic, 0x7f, 1, 0}, make([]byte, 4)...), // wrong version
	}
	for i, buf := range cases {
		if _, err := DecodeFrame(buf); !errors.Is(err, ErrNotControlFrame) {
			t.Fatalf("case %d: got %v, want ErrNotControlFrame", i, err)
		}
	}
	// Right magic, nonsense kind: malformed, not foreign.
	bad := EncodeFrame(Frame{Kind: FrameKind(99)})
	if _, err := DecodeFrame(bad); err == nil || errors.Is(err, ErrNotControlFrame) {
		t.Fatalf("unknown kind: got %v, want a malformed-frame error", err)
	}
}

func TestAssignRoundTrip(t *testing.T) {
	in := AssignBody{MapVersion: 12, ShardIndex: 1, ShardCount: 3,
		Sensors: []core.NodeID{2, 5, 8, 11},
		Evict:   []core.NodeID{3, 9}}
	buf, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeAssign(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.MapVersion != in.MapVersion || out.ShardIndex != in.ShardIndex ||
		out.ShardCount != in.ShardCount || len(out.Sensors) != len(in.Sensors) ||
		len(out.Evict) != len(in.Evict) {
		t.Fatalf("got %+v, want %+v", out, in)
	}
	for i := range in.Sensors {
		if out.Sensors[i] != in.Sensors[i] {
			t.Fatalf("sensor %d: got %d, want %d", i, out.Sensors[i], in.Sensors[i])
		}
	}
	for i := range in.Evict {
		if out.Evict[i] != in.Evict[i] {
			t.Fatalf("evict %d: got %d, want %d", i, out.Evict[i], in.Evict[i])
		}
	}
	if _, err := DecodeAssign(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated ASSIGN decoded")
	}
	if _, err := DecodeAssign(append(buf, 0)); err == nil {
		t.Fatal("ASSIGN with trailing bytes decoded")
	}
}

func TestHandoffEstimateReadingsRoundTrip(t *testing.T) {
	pts := ctlPoints()

	hb, err := HandoffBody{Sensor: 3, Frag: 2, FragCount: 5, Points: pts}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHandoff(hb)
	if err != nil {
		t.Fatal(err)
	}
	if h.Sensor != 3 || h.Frag != 2 || h.FragCount != 5 ||
		len(h.Points) != 2 || h.Points[0].ID != pts[0].ID {
		t.Fatalf("handoff mismatch: %+v", h)
	}

	eb, err := EstimateBody{Frag: 1, FragCount: 4, Points: pts}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	e, err := DecodeEstimate(eb)
	if err != nil {
		t.Fatal(err)
	}
	if e.Frag != 1 || e.FragCount != 4 || len(e.Points) != 2 {
		t.Fatalf("estimate mismatch: %+v", e)
	}
	if e.Points[1].Value[0] != -40 {
		t.Fatalf("estimate point values lost: %+v", e.Points[1])
	}

	rb, err := ReadingsBody{Points: pts}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := DecodeReadings(rb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Points) != 2 || rd.Points[0].Birth != 42*time.Second {
		t.Fatalf("readings mismatch: %+v", rd)
	}
	if _, err := DecodeReadings(rb[:3]); err == nil {
		t.Fatal("truncated READINGS decoded")
	}
}

func TestLedgerSufficientRoundTrip(t *testing.T) {
	pts := ctlPoints()

	lb, err := LedgerBody{Session: 0xfeedface00112233, Points: pts}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	l, err := DecodeLedger(lb)
	if err != nil {
		t.Fatal(err)
	}
	if l.Session != 0xfeedface00112233 || len(l.Points) != 2 || l.Points[0].ID != pts[0].ID {
		t.Fatalf("ledger mismatch: %+v", l)
	}
	if _, err := DecodeLedger(lb[:5]); err == nil {
		t.Fatal("truncated LEDGER decoded")
	}

	// Request shape: no points, Frag 0/1.
	req, err := SufficientBody{Session: 7, Round: 3, FragCount: 1}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rq, err := DecodeSufficient(req)
	if err != nil {
		t.Fatal(err)
	}
	if rq.Session != 7 || rq.Round != 3 || len(rq.Points) != 0 {
		t.Fatalf("sufficient request mismatch: %+v", rq)
	}

	// Response shape: fragmented points.
	sb, err := SufficientBody{Session: 7, Round: 3, Frag: 1, FragCount: 2, Points: pts}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s, err := DecodeSufficient(sb)
	if err != nil {
		t.Fatal(err)
	}
	if s.Session != 7 || s.Round != 3 || s.Frag != 1 || s.FragCount != 2 ||
		len(s.Points) != 2 || s.Points[1].Value[0] != -40 {
		t.Fatalf("sufficient response mismatch: %+v", s)
	}
	if _, err := DecodeSufficient(sb[:13]); err == nil {
		t.Fatal("truncated SUFFICIENT decoded")
	}
}

func TestHealthAckRoundTrip(t *testing.T) {
	h, err := DecodeHealth(HealthBody{MapVersion: 9, Sensors: 1024}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if h.MapVersion != 9 || h.Sensors != 1024 {
		t.Fatalf("health mismatch: %+v", h)
	}
	a, err := DecodeAck(AckBody{Count: 1 << 40}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != 1<<40 {
		t.Fatalf("ack mismatch: %+v", a)
	}
	if _, err := DecodeHealth([]byte{1, 2}); err == nil {
		t.Fatal("truncated HEALTH decoded")
	}
	if _, err := DecodeAck([]byte{1}); err == nil {
		t.Fatal("truncated ACK decoded")
	}
}

// TestFrameDecodeNeverPanics feeds the decoder random mutations of a
// valid frame — the control listener shares a socket with whatever the
// network throws at it.
func TestFrameDecodeNeverPanics(t *testing.T) {
	body, _ := AssignBody{MapVersion: 1, Sensors: []core.NodeID{1, 2, 3}}.Encode()
	valid := EncodeFrame(Frame{Kind: FrameAssign, ReqID: 1, Body: body})
	for cut := 0; cut <= len(valid); cut++ {
		f, err := DecodeFrame(valid[:cut])
		if err != nil {
			continue
		}
		// Header decoded: body decoding must also stay panic-free.
		_, _ = DecodeAssign(f.Body)
		_, _ = DecodeHandoff(f.Body)
		_, _ = DecodeEstimate(f.Body)
		_, _ = DecodeReadings(f.Body)
		_, _ = DecodeHealth(f.Body)
		_, _ = DecodeAck(f.Body)
		_, _ = DecodeLedger(f.Body)
		_, _ = DecodeSufficient(f.Body)
	}
}

// TestFrameTraceRoundTrip pins the optional-trace-field contract: a
// nonzero Trace travels (and forces FlagTraced), an explicitly flagged
// zero trace travels as eight zero bytes (the capability echo), and the
// decoded body excludes the trace prefix.
func TestFrameTraceRoundTrip(t *testing.T) {
	body, err := LedgerBody{Session: 5, Points: ctlPoints()}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	in := Frame{Kind: FrameLedger, ReqID: 7, Trace: 0xabad1dea00c0ffee, Body: body}
	out, err := DecodeFrame(EncodeFrame(in))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Traced() || out.Trace != in.Trace {
		t.Fatalf("trace lost: got %+v", out)
	}
	if out.Kind != in.Kind || out.ReqID != in.ReqID || !bytes.Equal(out.Body, body) {
		t.Fatalf("traced frame corrupted header or body: %+v", out)
	}

	// Zero trace + explicit flag: the "I speak tracing" echo.
	echo, err := DecodeFrame(EncodeFrame(Frame{Kind: FrameHealth, Flags: FlagTraced, ReqID: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !echo.Traced() || echo.Trace != 0 || len(echo.Body) != 0 {
		t.Fatalf("flagged zero-trace frame mangled: %+v", echo)
	}
}

// TestFrameUntracedBytesIdentical pins backward compatibility at the
// byte level: a frame without FlagTraced must encode exactly as it did
// before the field existed — no length change, no flag bit — so legacy
// peers see an unchanged wire format.
func TestFrameUntracedBytesIdentical(t *testing.T) {
	body := HealthBody{MapVersion: 3, Sensors: 9}.Encode()
	enc := EncodeFrame(Frame{Kind: FrameHealth, Flags: FlagResponse, ReqID: 0x01020304, Body: body})
	legacy := append([]byte{frameMagic, frameVersion, byte(FrameHealth), FlagResponse, 1, 2, 3, 4}, body...)
	if !bytes.Equal(enc, legacy) {
		t.Fatalf("untraced frame encoding changed:\n got %x\nwant %x", enc, legacy)
	}
}

// TestFrameTracedTruncated: a flagged frame whose body cannot hold the
// trace field is malformed, not silently un-traced.
func TestFrameTracedTruncated(t *testing.T) {
	enc := EncodeFrame(Frame{Kind: FrameHealth, ReqID: 2, Trace: 42})
	for cut := len(enc) - 8; cut < len(enc); cut++ {
		if _, err := DecodeFrame(enc[:cut]); !errors.Is(err, core.ErrTruncated) {
			t.Fatalf("cut %d: got %v, want ErrTruncated", cut, err)
		}
	}
}

// TestHealthExtendedRoundTrip pins the two accepted HEALTH encodings:
// the legacy 10-byte body and the 12-byte extended body carrying the
// merge-session occupancy a tracing-aware shard reports.
func TestHealthExtendedRoundTrip(t *testing.T) {
	in := HealthBody{MapVersion: 11, Sensors: 300, Sessions: 6}
	h, err := DecodeHealth(in.EncodeExtended())
	if err != nil {
		t.Fatal(err)
	}
	if h != in {
		t.Fatalf("extended health mismatch: got %+v, want %+v", h, in)
	}
	// Legacy encoding drops Sessions; both sides must agree it is zero.
	h, err = DecodeHealth(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if h.MapVersion != 11 || h.Sensors != 300 || h.Sessions != 0 {
		t.Fatalf("legacy health mismatch: %+v", h)
	}
	if _, err := DecodeHealth(in.EncodeExtended()[:11]); err == nil {
		t.Fatal("11-byte HEALTH decoded")
	}
}
