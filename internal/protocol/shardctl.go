package protocol

// Shard-control wire format: the coordinator⇄shard companion to the
// detector's tagged-broadcast packets (core.EncodeOutbound). Where the
// detector wire carries the paper's algorithm between sensors, these
// frames carry the cluster-control plane between the coordinator process
// and its detector shard processes, over the same UDP substrate the live
// peers use (peer.UDPTransport datagrams).
//
//	frame := magic:'C' ver:0x01 kind:uint8 flags:uint8 reqID:uint32 [trace:uint64] body
//
// Multi-byte integers are big-endian, matching the detector wire. Every
// request carries a caller-chosen reqID; the response echoes it with
// FlagResponse set, which is all the correlation a UDP request/response
// exchange needs. The trace field is present exactly when FlagTraced is
// set (see FlagTraced for the compatibility contract). Bodies reuse
// core.EncodePoints wherever points travel, so the point codec —
// including its fuzz harness — is shared.
//
// Kinds:
//
//	ASSIGN    coordinator → shard   shard-map epoch: version, the shard's
//	                                slot, the sensors it owns, and the
//	                                sensors moved away from it (detach)
//	HANDOFF   coordinator → shard   without FlagTransfer: "return sensor
//	                                s's window points" (rejoin resync);
//	                                with FlagTransfer: "here are sensor
//	                                s's points, adopt them"
//	ESTIMATE  coordinator → shard   window-snapshot query; the response
//	                                may span several fragments, each its
//	                                own frame echoing the reqID
//	HEALTH    coordinator → shard   liveness probe; response reports the
//	                                shard's map version and fleet size
//	READINGS  coordinator → shard   routed ingest batch with
//	                                coordinator-assigned point identities
//	ACK       shard → coordinator   count acknowledgment for READINGS,
//	                                HANDOFF transfers and LEDGER deliveries
//	LEDGER    coordinator → shard   compact-merge candidate delivery: the
//	                                coordinator's sufficient-set delta for
//	                                one merge session, recorded in the
//	                                link's shared ledger (ACK response)
//	SUFFICIENT coordinator → shard  compact-merge round query: "compute
//	                                your Eq. (2) sufficient delta for
//	                                session S, round R"; the response may
//	                                span several fragments, each echoing
//	                                the reqID, and is replayed verbatim on
//	                                a retried round

import (
	"encoding/binary"
	"errors"
	"fmt"

	"innet/internal/core"
)

// FrameKind discriminates shard-control frames.
type FrameKind uint8

// Shard-control frame kinds.
const (
	FrameAssign     FrameKind = 1
	FrameHandoff    FrameKind = 2
	FrameEstimate   FrameKind = 3
	FrameHealth     FrameKind = 4
	FrameReadings   FrameKind = 5
	FrameAck        FrameKind = 6
	FrameLedger     FrameKind = 7
	FrameSufficient FrameKind = 8
)

// String implements fmt.Stringer.
func (k FrameKind) String() string {
	switch k {
	case FrameAssign:
		return "ASSIGN"
	case FrameHandoff:
		return "HANDOFF"
	case FrameEstimate:
		return "ESTIMATE"
	case FrameHealth:
		return "HEALTH"
	case FrameReadings:
		return "READINGS"
	case FrameAck:
		return "ACK"
	case FrameLedger:
		return "LEDGER"
	case FrameSufficient:
		return "SUFFICIENT"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// MetricLabel returns the frame kind as a lowercase label value for the
// shard-control RPC latency histogram. Unlike String, the fallback is a
// fixed word: metric label cardinality must stay bounded even if a
// corrupt frame carries an unknown kind byte.
func (k FrameKind) MetricLabel() string {
	switch k {
	case FrameAssign:
		return "assign"
	case FrameHandoff:
		return "handoff"
	case FrameEstimate:
		return "estimate"
	case FrameHealth:
		return "health"
	case FrameReadings:
		return "readings"
	case FrameAck:
		return "ack"
	case FrameLedger:
		return "ledger"
	case FrameSufficient:
		return "sufficient"
	default:
		return "unknown"
	}
}

// Frame flags.
const (
	// FlagResponse marks a frame answering the request with the same reqID.
	FlagResponse = 1 << 0
	// FlagTransfer turns a HANDOFF from a window request into a window
	// delivery.
	FlagTransfer = 1 << 1
	// FlagUnknownSession marks a LEDGER/SUFFICIENT response refusing a
	// merge session the shard does not hold. Sessions are only created
	// by a round-0 SUFFICIENT, so a mid-exchange eviction (or shard
	// restart) surfaces as an explicit refusal instead of a silently
	// recreated session with an empty ledger — the coordinator must
	// abandon the compact session and fall back to the full-window
	// path, because its own ledger already counts points the shard
	// would no longer know about.
	FlagUnknownSession = 1 << 2
	// FlagTraced marks a frame that carries a 64-bit trace ID between
	// the fixed header and the body. The field is optional by flag, not
	// by version bump: an unflagged frame is byte-identical to the
	// pre-tracing format, so a stamping coordinator and a legacy shard
	// (or vice versa) interoperate — the side that does not understand
	// tracing simply never sets the flag, and the exchange proceeds
	// untraced. A tracing-aware responder echoes the flag and the ID so
	// the requester learns the peer participates.
	FlagTraced = 1 << 3
)

const (
	frameMagic   = 'C'
	frameVersion = 0x01
	frameHeader  = 2 + 1 + 1 + 4
)

// ErrNotControlFrame reports a datagram that is not a shard-control frame
// at all (wrong magic/version), as opposed to a malformed one.
var ErrNotControlFrame = errors.New("protocol: not a shard-control frame")

// Frame is one decoded shard-control frame.
type Frame struct {
	Kind  FrameKind
	Flags uint8
	ReqID uint32
	// Trace is the query-scoped trace ID, present on the wire only when
	// FlagTraced is set (EncodeFrame sets the flag whenever Trace is
	// nonzero). Zero means untraced.
	Trace uint64
	Body  []byte
}

// Response reports whether FlagResponse is set.
func (f Frame) Response() bool { return f.Flags&FlagResponse != 0 }

// Traced reports whether FlagTraced is set.
func (f Frame) Traced() bool { return f.Flags&FlagTraced != 0 }

// EncodeFrame serializes a shard-control frame. A nonzero Trace forces
// FlagTraced; a zero Trace with FlagTraced set is encoded as flagged
// (the 8 trace bytes ride along as zeros), which responders use to echo
// "I speak tracing" even on probes they answer without a query trace.
func EncodeFrame(f Frame) []byte {
	if f.Trace != 0 {
		f.Flags |= FlagTraced
	}
	n := frameHeader
	if f.Flags&FlagTraced != 0 {
		n += 8
	}
	buf := make([]byte, 0, n+len(f.Body))
	buf = append(buf, frameMagic, frameVersion, uint8(f.Kind), f.Flags)
	buf = binary.BigEndian.AppendUint32(buf, f.ReqID)
	if f.Flags&FlagTraced != 0 {
		buf = binary.BigEndian.AppendUint64(buf, f.Trace)
	}
	return append(buf, f.Body...)
}

// DecodeFrame parses a datagram produced by EncodeFrame. The body is a
// sub-slice of buf, not a copy. A frame flagged FlagTraced must carry
// the full 8-byte trace ID; a truncated trace field is a decode error,
// never a silent fallthrough into misparsing the body.
func DecodeFrame(buf []byte) (Frame, error) {
	if len(buf) < frameHeader {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrNotControlFrame, len(buf))
	}
	if buf[0] != frameMagic || buf[1] != frameVersion {
		return Frame{}, ErrNotControlFrame
	}
	f := Frame{
		Kind:  FrameKind(buf[2]),
		Flags: buf[3],
		ReqID: binary.BigEndian.Uint32(buf[4:]),
		Body:  buf[frameHeader:],
	}
	if f.Kind < FrameAssign || f.Kind > FrameSufficient {
		return Frame{}, fmt.Errorf("protocol: unknown shard-control kind %d", buf[2])
	}
	if f.Flags&FlagTraced != 0 {
		if len(f.Body) < 8 {
			return Frame{}, fmt.Errorf("protocol: traced frame truncated at %d trace bytes: %w", len(f.Body), core.ErrTruncated)
		}
		f.Trace = binary.BigEndian.Uint64(f.Body)
		f.Body = f.Body[8:]
	}
	return f, nil
}

// AssignBody is the ASSIGN request payload: one epoch of the coordinator's
// shard map as it concerns the receiving shard — the sensors it owns,
// and the sensors the coordinator explicitly moved away from it (Evict).
// Eviction is an explicit list rather than "anything not in Sensors" so
// that a sensor auto-joining concurrently with an in-flight ASSIGN is
// never detached by a stale snapshot. The response body is AckBody
// carrying the map version the shard now follows.
type AssignBody struct {
	MapVersion uint64
	ShardIndex uint16 // the receiver's slot in the sorted shard list
	ShardCount uint16
	Sensors    []core.NodeID // sensors the receiver owns (primary or replica)
	Evict      []core.NodeID // sensors the receiver must detach
}

func appendIDs(buf []byte, ids []core.NodeID) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(ids)))
	for _, id := range ids {
		buf = binary.BigEndian.AppendUint16(buf, uint16(id))
	}
	return buf
}

func parseIDs(buf []byte) ([]core.NodeID, []byte, error) {
	if len(buf) < 2 {
		return nil, nil, core.ErrTruncated
	}
	count := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < 2*count {
		return nil, nil, core.ErrTruncated
	}
	ids := make([]core.NodeID, count)
	for i := range ids {
		ids[i] = core.NodeID(binary.BigEndian.Uint16(buf[2*i:]))
	}
	return ids, buf[2*count:], nil
}

// Encode serializes the ASSIGN body.
func (b AssignBody) Encode() ([]byte, error) {
	if len(b.Sensors) > 65535 || len(b.Evict) > 65535 {
		return nil, fmt.Errorf("protocol: %d+%d sensors exceed the ASSIGN format", len(b.Sensors), len(b.Evict))
	}
	buf := make([]byte, 0, 8+2+2+2+2*len(b.Sensors)+2+2*len(b.Evict))
	buf = binary.BigEndian.AppendUint64(buf, b.MapVersion)
	buf = binary.BigEndian.AppendUint16(buf, b.ShardIndex)
	buf = binary.BigEndian.AppendUint16(buf, b.ShardCount)
	buf = appendIDs(buf, b.Sensors)
	buf = appendIDs(buf, b.Evict)
	return buf, nil
}

// DecodeAssign parses an ASSIGN body.
func DecodeAssign(buf []byte) (AssignBody, error) {
	if len(buf) < 8+2+2 {
		return AssignBody{}, core.ErrTruncated
	}
	b := AssignBody{
		MapVersion: binary.BigEndian.Uint64(buf),
		ShardIndex: binary.BigEndian.Uint16(buf[8:]),
		ShardCount: binary.BigEndian.Uint16(buf[10:]),
	}
	var err error
	buf = buf[12:]
	if b.Sensors, buf, err = parseIDs(buf); err != nil {
		return AssignBody{}, fmt.Errorf("protocol: ASSIGN sensors: %w", err)
	}
	if b.Evict, buf, err = parseIDs(buf); err != nil {
		return AssignBody{}, fmt.Errorf("protocol: ASSIGN evictions: %w", err)
	}
	if len(buf) != 0 {
		return AssignBody{}, fmt.Errorf("protocol: %d trailing bytes after ASSIGN", len(buf))
	}
	return b, nil
}

// HandoffBody is the HANDOFF payload: the sensor changing hands and — on
// FlagTransfer frames and on responses to window requests — its window
// points, identities preserved. Like ESTIMATE, a window response may
// span several fragments (a dense sensor's window does not fit one
// datagram); FragCount rides on every fragment so the requester can
// size reassembly from whichever arrives first. Requests and transfers
// use Frag 0/1.
type HandoffBody struct {
	Sensor    core.NodeID
	Frag      uint16
	FragCount uint16
	Points    []core.Point
}

// Encode serializes the HANDOFF body.
func (b HandoffBody) Encode() ([]byte, error) {
	pts, err := core.EncodePoints(b.Points)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 6+len(pts))
	buf = binary.BigEndian.AppendUint16(buf, uint16(b.Sensor))
	buf = binary.BigEndian.AppendUint16(buf, b.Frag)
	buf = binary.BigEndian.AppendUint16(buf, b.FragCount)
	return append(buf, pts...), nil
}

// DecodeHandoff parses a HANDOFF body.
func DecodeHandoff(buf []byte) (HandoffBody, error) {
	if len(buf) < 6 {
		return HandoffBody{}, core.ErrTruncated
	}
	b := HandoffBody{
		Sensor:    core.NodeID(binary.BigEndian.Uint16(buf)),
		Frag:      binary.BigEndian.Uint16(buf[2:]),
		FragCount: binary.BigEndian.Uint16(buf[4:]),
	}
	pts, err := core.DecodePoints(buf[6:])
	if err != nil {
		return HandoffBody{}, err
	}
	b.Points = pts
	return b, nil
}

// EstimateBody is the ESTIMATE response payload: one fragment of the
// shard's window snapshot. FragCount is repeated on every fragment so the
// querier can size its reassembly from whichever fragment arrives first;
// the request body is empty.
type EstimateBody struct {
	Frag      uint16
	FragCount uint16
	Points    []core.Point
}

// Encode serializes the ESTIMATE body.
func (b EstimateBody) Encode() ([]byte, error) {
	pts, err := core.EncodePoints(b.Points)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 4+len(pts))
	buf = binary.BigEndian.AppendUint16(buf, b.Frag)
	buf = binary.BigEndian.AppendUint16(buf, b.FragCount)
	return append(buf, pts...), nil
}

// DecodeEstimate parses an ESTIMATE body.
func DecodeEstimate(buf []byte) (EstimateBody, error) {
	if len(buf) < 4 {
		return EstimateBody{}, core.ErrTruncated
	}
	b := EstimateBody{
		Frag:      binary.BigEndian.Uint16(buf),
		FragCount: binary.BigEndian.Uint16(buf[2:]),
	}
	pts, err := core.DecodePoints(buf[4:])
	if err != nil {
		return EstimateBody{}, err
	}
	b.Points = pts
	return b, nil
}

// HealthBody is the HEALTH response payload (the request body is empty).
// Sessions — the shard's live merge-session count, surfaced so the
// coordinator's /debug/status can report cache occupancy per shard —
// rides in an optional trailing field: legacy shards encode 10 bytes,
// tracing-aware shards answering a traced probe append it, and
// DecodeHealth accepts both lengths so either end may be the old one.
type HealthBody struct {
	MapVersion uint64 // shard-map epoch the shard last adopted
	Sensors    uint16 // sensors currently attached
	Sessions   uint16 // live merge sessions (extended form only)
}

// Encode serializes the HEALTH body in the legacy 10-byte form.
func (b HealthBody) Encode() []byte {
	buf := make([]byte, 0, 10)
	buf = binary.BigEndian.AppendUint64(buf, b.MapVersion)
	return binary.BigEndian.AppendUint16(buf, b.Sensors)
}

// EncodeExtended serializes the HEALTH body with the trailing Sessions
// field. Only sent in response to a probe that proved the requester is
// tracing-aware (FlagTraced): a legacy coordinator's strict decoder
// would reject the longer body and count the probe as a miss.
func (b HealthBody) EncodeExtended() []byte {
	return binary.BigEndian.AppendUint16(b.Encode(), b.Sessions)
}

// DecodeHealth parses a HEALTH body, legacy or extended.
func DecodeHealth(buf []byte) (HealthBody, error) {
	if len(buf) != 10 && len(buf) != 12 {
		return HealthBody{}, core.ErrTruncated
	}
	b := HealthBody{
		MapVersion: binary.BigEndian.Uint64(buf),
		Sensors:    binary.BigEndian.Uint16(buf[8:]),
	}
	if len(buf) == 12 {
		b.Sessions = binary.BigEndian.Uint16(buf[10:])
	}
	return b, nil
}

// ReadingsBody is the READINGS payload: a routed ingest batch. Each point
// carries the coordinator-assigned identity (origin sensor, sequence
// number), its data-time birth, and the feature vector; the hop field is
// unused and must be zero.
type ReadingsBody struct {
	Points []core.Point
}

// Encode serializes the READINGS body.
func (b ReadingsBody) Encode() ([]byte, error) {
	return core.EncodePoints(b.Points)
}

// DecodeReadings parses a READINGS body.
func DecodeReadings(buf []byte) (ReadingsBody, error) {
	pts, err := core.DecodePoints(buf)
	if err != nil {
		return ReadingsBody{}, err
	}
	return ReadingsBody{Points: pts}, nil
}

// LedgerBody is the LEDGER payload: one chunk of the coordinator's
// sufficient-set delta for a compact-merge session, to be recorded in
// the shard's shared ledger for that session. Sessions are identified by
// a coordinator-chosen 64-bit ID so a retried or reordered chunk lands
// in the right exchange; delivery is idempotent (ledgers deduplicate by
// PointID). The response is an AckBody carrying how many points were
// previously unknown to the session.
type LedgerBody struct {
	Session uint64
	Points  []core.Point
}

// Encode serializes the LEDGER body.
func (b LedgerBody) Encode() ([]byte, error) {
	pts, err := core.EncodePoints(b.Points)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 8+len(pts))
	buf = binary.BigEndian.AppendUint64(buf, b.Session)
	return append(buf, pts...), nil
}

// DecodeLedger parses a LEDGER body.
func DecodeLedger(buf []byte) (LedgerBody, error) {
	if len(buf) < 8 {
		return LedgerBody{}, core.ErrTruncated
	}
	b := LedgerBody{Session: binary.BigEndian.Uint64(buf)}
	pts, err := core.DecodePoints(buf[8:])
	if err != nil {
		return LedgerBody{}, err
	}
	b.Points = pts
	return b, nil
}

// SufficientBody is the SUFFICIENT payload, both directions. The request
// names a merge session and a round (Frag 0/1, no points); the response
// carries the shard's Eq. (2) sufficient delta for that round, split
// over however many fragments the byte budget requires, FragCount
// repeated on each so the querier can size reassembly from whichever
// arrives first. Rounds are idempotent: a shard replays a cached round's
// delta on retry instead of recomputing, so a lost response cannot make
// the exchange double-count.
type SufficientBody struct {
	Session   uint64
	Round     uint16
	Frag      uint16
	FragCount uint16
	Points    []core.Point
}

// Encode serializes the SUFFICIENT body.
func (b SufficientBody) Encode() ([]byte, error) {
	pts, err := core.EncodePoints(b.Points)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 14+len(pts))
	buf = binary.BigEndian.AppendUint64(buf, b.Session)
	buf = binary.BigEndian.AppendUint16(buf, b.Round)
	buf = binary.BigEndian.AppendUint16(buf, b.Frag)
	buf = binary.BigEndian.AppendUint16(buf, b.FragCount)
	return append(buf, pts...), nil
}

// DecodeSufficient parses a SUFFICIENT body.
func DecodeSufficient(buf []byte) (SufficientBody, error) {
	if len(buf) < 14 {
		return SufficientBody{}, core.ErrTruncated
	}
	b := SufficientBody{
		Session:   binary.BigEndian.Uint64(buf),
		Round:     binary.BigEndian.Uint16(buf[8:]),
		Frag:      binary.BigEndian.Uint16(buf[10:]),
		FragCount: binary.BigEndian.Uint16(buf[12:]),
	}
	pts, err := core.DecodePoints(buf[14:])
	if err != nil {
		return SufficientBody{}, err
	}
	b.Points = pts
	return b, nil
}

// AckBody is the generic count acknowledgment: readings accepted, points
// adopted, or the map version adopted by an ASSIGN.
type AckBody struct {
	Count uint64
}

// Encode serializes the ACK body.
func (b AckBody) Encode() []byte {
	return binary.BigEndian.AppendUint64(make([]byte, 0, 8), b.Count)
}

// DecodeAck parses an ACK body.
func DecodeAck(buf []byte) (AckBody, error) {
	if len(buf) != 8 {
		return AckBody{}, core.ErrTruncated
	}
	return AckBody{Count: binary.BigEndian.Uint64(buf)}, nil
}
