package protocol

import (
	"encoding/binary"
	"time"

	"innet/internal/core"
	"innet/internal/wsn"
)

// The paper assumes reliable single-hop delivery ("very simple node
// failure detection and message reliability assurance mechanisms"). This
// file supplies that mechanism: every broadcast packet M carries a
// sequence number; each neighbor that finds a group tagged for itself
// replies with a tiny acknowledgment; the sender rebroadcasts the still
// unacknowledged groups a bounded number of times. Receivers deduplicate
// on (sender, sequence, my-group) so retransmissions are acknowledged but
// not re-processed.

const (
	arqRetries    = 3
	arqTimeout    = 1200 * time.Millisecond
	arqAckJitter  = 80 * time.Millisecond
	arqSendJitter = int64(responseJitterMax)

	// maxPointsPerFrame fragments large reactions into mote-sized
	// frames: long frames monopolize the medium and lose whole batches
	// to one collision, while fragments retransmit independently.
	maxPointsPerFrame = 6
)

// pendingPacket tracks the groups of one broadcast still awaiting acks.
type pendingPacket struct {
	groups map[core.NodeID][]core.Point
	tries  int
}

// arq is the per-node reliability layer.
type arq struct {
	seq       uint32
	pending   map[uint32]*pendingPacket
	processed map[ackKey]bool
}

type ackKey struct {
	from core.NodeID
	seq  uint32
}

func newARQ() *arq {
	return &arq{
		pending:   make(map[uint32]*pendingPacket),
		processed: make(map[ackKey]bool),
	}
}

// sendReliable fragments the packet M into mote-sized frames, each with
// a fresh sequence number and its own retransmission timer. In the
// per-neighbor ablation mode the recipient tagging is forgone and every
// neighbor's group becomes its own frame sequence.
func (a *App) sendReliable(n *wsn.Node, out *core.Outbound) {
	if out == nil || n.Down() {
		return
	}
	var frags []*core.Outbound
	if a.cfg.PerNeighborFrames {
		for _, g := range out.Groups {
			single := &core.Outbound{From: out.From, Groups: []core.Group{g}}
			frags = append(frags, fragment(single, maxPointsPerFrame)...)
		}
	} else {
		frags = fragment(out, maxPointsPerFrame)
	}
	for _, frag := range frags {
		a.arq.seq++
		seq := a.arq.seq
		pp := &pendingPacket{groups: make(map[core.NodeID][]core.Point, len(frag.Groups))}
		for _, g := range frag.Groups {
			pp.groups[g.To] = g.Points
		}
		a.arq.pending[seq] = pp
		a.broadcastPending(n, seq)
	}
}

// fragment splits a packet into pieces carrying at most maxPoints points
// each, preserving recipient tagging.
func fragment(out *core.Outbound, maxPoints int) []*core.Outbound {
	if out.PointCount() <= maxPoints {
		return []*core.Outbound{out}
	}
	var frags []*core.Outbound
	cur := &core.Outbound{From: out.From}
	count := 0
	flush := func() {
		if len(cur.Groups) > 0 {
			frags = append(frags, cur)
		}
		cur = &core.Outbound{From: out.From}
		count = 0
	}
	for _, g := range out.Groups {
		pts := g.Points
		for len(pts) > 0 {
			room := maxPoints - count
			if room == 0 {
				flush()
				room = maxPoints
			}
			take := len(pts)
			if take > room {
				take = room
			}
			cur.Groups = append(cur.Groups, core.Group{To: g.To, Points: pts[:take]})
			pts = pts[take:]
			count += take
		}
	}
	flush()
	return frags
}

// broadcastPending (re)broadcasts whatever groups of packet seq are still
// unacknowledged, then schedules the next retransmission check.
func (a *App) broadcastPending(n *wsn.Node, seq uint32) {
	pp, ok := a.arq.pending[seq]
	if !ok || n.Down() {
		return
	}
	if len(pp.groups) == 0 {
		delete(a.arq.pending, seq)
		return
	}
	if pp.tries > arqRetries {
		// Give up: the algorithm tolerates drops (§4.2); the stale
		// ledger entries age out with the sliding window.
		delete(a.arq.pending, seq)
		return
	}
	pp.tries++

	out := &core.Outbound{From: n.ID}
	for _, j := range sortedKeys(pp.groups) {
		out.Groups = append(out.Groups, core.Group{To: j, Points: pp.groups[j]})
	}
	buf, err := core.EncodeOutbound(out)
	if err != nil {
		delete(a.arq.pending, seq)
		return
	}
	payload := make([]byte, 0, 5+len(buf))
	payload = append(payload, wsn.PayloadPoints)
	payload = binary.BigEndian.AppendUint32(payload, seq)
	payload = append(payload, buf...)

	jitter := wsn.Clock(n.Sim().Rand().Int64N(arqSendJitter))
	n.Sim().After(jitter, func() { n.SendBroadcast(payload) })
	n.Sim().After(jitter+arqTimeout, func() { a.broadcastPending(n, seq) })
}

// handlePoints processes an incoming PayloadPoints frame: acknowledge the
// group tagged for us (every time — the previous ack may have died) and
// feed the points to the detector once.
func (a *App) handlePoints(n *wsn.Node, f *wsn.Frame) {
	if len(f.Payload) < 5 {
		return
	}
	seq := binary.BigEndian.Uint32(f.Payload[1:])
	out, err := core.DecodeOutbound(f.Payload[5:])
	if err != nil {
		return // corrupted packets are dropped, as on a real mote
	}
	pts := out.For(n.ID)
	if len(pts) == 0 {
		return // not tagged for us: receipt is not an event (§5.2)
	}
	a.sendAck(n, out.From, seq)
	key := ackKey{from: out.From, seq: seq}
	if a.arq.processed[key] {
		return // duplicate retransmission
	}
	a.arq.processed[key] = true
	a.send(n, a.det.Receive(out.From, pts))
}

func (a *App) sendAck(n *wsn.Node, to core.NodeID, seq uint32) {
	payload := make([]byte, 0, 7)
	payload = append(payload, wsn.PayloadPointsAck)
	payload = binary.BigEndian.AppendUint32(payload, seq)
	payload = binary.BigEndian.AppendUint16(payload, uint16(to))
	jitter := wsn.Clock(n.Sim().Rand().Int64N(int64(arqAckJitter)))
	n.Sim().After(jitter, func() {
		if !n.Down() {
			n.SendBroadcast(payload)
		}
	})
}

// handleAck clears the acknowledged group from the pending packet.
func (a *App) handleAck(n *wsn.Node, f *wsn.Frame) {
	if len(f.Payload) != 7 {
		return
	}
	seq := binary.BigEndian.Uint32(f.Payload[1:])
	target := core.NodeID(binary.BigEndian.Uint16(f.Payload[5:]))
	if target != n.ID {
		return // an ack for some other sender's packet
	}
	if pp, ok := a.arq.pending[seq]; ok {
		delete(pp.groups, f.Src)
		if len(pp.groups) == 0 {
			delete(a.arq.pending, seq)
		}
	}
}

func sortedKeys(m map[core.NodeID][]core.Point) []core.NodeID {
	out := make([]core.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
