// Package baseline implements the centralized comparison algorithm of
// §7.1: every sampling period each sensor ships its entire sliding-window
// contents to a central sink over AODV multi-hop unicast (with link-layer
// and end-to-end acknowledgments); the sink unions the windows, computes
// On(D) with the same ranking function, and floods the result back to all
// sensors. Energy cost is therefore dominated by relaying toward the
// sink, which is what the paper's figures compare against.
package baseline

import (
	"fmt"
	"time"

	"innet/internal/core"
	"innet/internal/dataset"
	"innet/internal/wsn"
)

// MaxPointsPerPacket bounds how many points one routed data packet
// carries, reflecting mote-class frame size limits.
const MaxPointsPerPacket = 2

// Config parameterizes the centralized protocol.
type Config struct {
	// Sink is the collecting node's ID.
	Sink core.NodeID
	// Ranker and N define the outlier computation at the sink.
	Ranker core.Ranker
	N      int
	// WindowSamples is the sliding window length w, in samples.
	WindowSamples int
	// Stream supplies sensor readings.
	Stream *dataset.Stream
	// LocationWeight scales coordinate features (1 = paper's raw).
	LocationWeight float64
}

// App is the centralized-baseline firmware for one node (sensors and the
// sink run the same code; the sink additionally aggregates and floods).
type App struct {
	cfg     Config
	router  *wsn.Router
	flooder *wsn.Flooder

	window []core.Point // local sliding window (all nodes)

	// Sink state: latest points per origin.
	collected map[core.PointID]core.Point

	// Every node: the last result flood received (sink: last computed).
	lastResult []core.Point
	resultAt   time.Duration
}

var _ wsn.App = (*App)(nil)

// New builds the centralized firmware for one node.
func New(cfg Config) (*App, error) {
	if cfg.Stream == nil {
		return nil, fmt.Errorf("baseline: Stream is required")
	}
	if cfg.Ranker == nil || cfg.N < 1 {
		return nil, fmt.Errorf("baseline: Ranker and positive N are required")
	}
	if cfg.WindowSamples < 1 {
		return nil, fmt.Errorf("baseline: WindowSamples must be positive, got %d", cfg.WindowSamples)
	}
	if cfg.LocationWeight == 0 {
		cfg.LocationWeight = 1
	}
	return &App{cfg: cfg, collected: make(map[core.PointID]core.Point)}, nil
}

// Compute is the sink's centralized outlier computation as a pure
// function: On(D) with the given ranker over the union of the collected
// windows, deduplicated by point ID. This is the ground truth the paper
// measures the distributed algorithms against, and the equivalence
// property tests call it directly.
func Compute(r core.Ranker, n int, windows ...[]core.Point) []core.Point {
	set := core.NewSet()
	for _, w := range windows {
		for _, p := range w {
			set.Add(p)
		}
	}
	return core.TopN(r, set, n)
}

// LastResult returns the most recent outlier set this node knows (the
// flooded answer), and when it was computed.
func (a *App) LastResult() ([]core.Point, time.Duration) {
	out := make([]core.Point, len(a.lastResult))
	copy(out, a.lastResult)
	return out, a.resultAt
}

// Router exposes routing statistics for measurement.
func (a *App) Router() *wsn.Router { return a.router }

// Start implements wsn.App.
func (a *App) Start(n *wsn.Node) {
	a.router = wsn.NewRouter(n, func(src core.NodeID, payload []byte) { a.deliver(n, src, payload) })
	a.flooder = wsn.NewFlooder(n, func(orig core.NodeID, payload []byte) { a.handleResult(n, payload) })
	a.scheduleEpoch(n, 0)
	if n.ID == a.cfg.Sink {
		a.scheduleSinkRound(n, 0)
	}
}

func (a *App) scheduleEpoch(n *wsn.Node, epoch int) {
	if epoch >= a.cfg.Stream.Epochs() {
		return
	}
	period := a.cfg.Stream.Period()
	at := time.Duration(epoch) * period
	jitter := wsn.Clock(n.Sim().Rand().Int64N(int64(period / 10)))
	n.Sim().At(at+jitter, func() {
		a.sample(n, epoch)
		a.scheduleEpoch(n, epoch+1)
	})
}

// sample takes a reading, maintains the local window (exactly the last w
// samples, epoch-aligned births), and ships the whole window to the sink
// (§7.1: "all nodes periodically sent their sliding window contents to a
// central node").
func (a *App) sample(n *wsn.Node, epoch int) {
	if n.Down() {
		return
	}
	logical := time.Duration(epoch) * a.cfg.Stream.Period()
	s, ok := a.cfg.Stream.At(n.ID, epoch)
	if !ok {
		return
	}
	a.window = append(a.window, core.NewPoint(n.ID, uint32(epoch), logical, s.Features(a.cfg.LocationWeight)...))
	if len(a.window) > a.cfg.WindowSamples {
		a.window = a.window[len(a.window)-a.cfg.WindowSamples:]
	}

	if n.ID == a.cfg.Sink {
		// The sink's own window goes straight into the collection.
		for _, p := range a.window {
			a.collected[p.ID] = p
		}
		return
	}
	for start := 0; start < len(a.window); start += MaxPointsPerPacket {
		end := start + MaxPointsPerPacket
		if end > len(a.window) {
			end = len(a.window)
		}
		buf, err := core.EncodePoints(a.window[start:end])
		if err != nil {
			continue
		}
		// One chunk per round carries the paper's end-to-end
		// acknowledgment; the rest go best-effort over the hop-by-hop
		// reliable links. End-to-end retrying every chunk only
		// amplifies congestion — next round re-ships the window anyway.
		if start == 0 {
			a.router.Send(a.cfg.Sink, buf, nil)
		} else {
			a.router.SendBestEffort(a.cfg.Sink, buf)
		}
	}
}

// deliver handles routed point shipments arriving at the sink.
func (a *App) deliver(n *wsn.Node, src core.NodeID, payload []byte) {
	if n.ID != a.cfg.Sink {
		return
	}
	pts, err := core.DecodePoints(payload)
	if err != nil {
		return
	}
	for _, p := range pts {
		a.collected[p.ID] = p
	}
}

// scheduleSinkRound makes the sink compute and flood the outliers near
// the end of every sampling period.
func (a *App) scheduleSinkRound(n *wsn.Node, epoch int) {
	if epoch >= a.cfg.Stream.Epochs() {
		return
	}
	period := a.cfg.Stream.Period()
	at := time.Duration(epoch)*period + period*9/10
	n.Sim().At(at, func() {
		a.sinkCompute(n, epoch)
		a.scheduleSinkRound(n, epoch+1)
	})
}

func (a *App) sinkCompute(n *wsn.Node, epoch int) {
	if n.Down() {
		return
	}
	now := n.Sim().Now()
	// Evict the collection with the same epoch-aligned window rule the
	// sensors apply: keep epochs (epoch-w, epoch].
	minEpoch := epoch - a.cfg.WindowSamples + 1
	for id := range a.collected {
		if int(id.Seq) < minEpoch {
			delete(a.collected, id)
		}
	}
	collected := make([]core.Point, 0, len(a.collected))
	for _, p := range a.collected {
		collected = append(collected, p)
	}
	outliers := Compute(a.cfg.Ranker, a.cfg.N, collected)
	a.lastResult = outliers
	a.resultAt = now

	buf, err := core.EncodePoints(outliers)
	if err != nil {
		return
	}
	a.flooder.Flood(buf)
}

// handleResult stores a flooded outlier set at a sensor.
func (a *App) handleResult(n *wsn.Node, payload []byte) {
	pts, err := core.DecodePoints(payload)
	if err != nil {
		return
	}
	a.lastResult = pts
	a.resultAt = n.Sim().Now()
}

// Receive implements wsn.App: frames go to the router, then the flooder.
// Boot is staggered across nodes, so a frame can arrive before this
// node's own Start has built its protocol stack; a real mote's radio
// simply is not listening yet.
func (a *App) Receive(n *wsn.Node, f *wsn.Frame) {
	if a.router == nil {
		return
	}
	if a.router.HandleFrame(f) {
		return
	}
	a.flooder.HandleFrame(f)
}
