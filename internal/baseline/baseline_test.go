package baseline

import (
	"testing"
	"time"

	"innet/internal/core"
	"innet/internal/dataset"
	"innet/internal/wsn"
)

func centralTestbed(t *testing.T, nodes, w int, simCfg wsn.Config) (*wsn.Sim, *dataset.Stream, *wsn.Topology, map[core.NodeID]*App, core.NodeID) {
	t.Helper()
	stream, err := dataset.Generate(dataset.Config{
		Nodes:    nodes,
		Seed:     5,
		Period:   10 * time.Second,
		Duration: 100 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo := wsn.NewTopology(stream.Positions(), wsn.DefaultRadio().Range)
	sink := topo.Nodes()[len(topo.Nodes())/2]
	sim := wsn.NewSim(simCfg)
	apps := make(map[core.NodeID]*App, nodes)
	for _, id := range topo.Nodes() {
		app, err := New(Config{
			Sink:          sink,
			Ranker:        core.NN(),
			N:             2,
			WindowSamples: w,
			Stream:        stream,
		})
		if err != nil {
			t.Fatal(err)
		}
		apps[id] = app
		sim.AddNode(id, stream.Positions()[id], app)
	}
	return sim, stream, topo, apps, sink
}

func TestNewValidation(t *testing.T) {
	stream, err := dataset.Generate(dataset.Config{Nodes: 2, Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing stream must fail")
	}
	if _, err := New(Config{Stream: stream}); err == nil {
		t.Fatal("missing ranker must fail")
	}
	if _, err := New(Config{Stream: stream, Ranker: core.NN(), N: 1}); err == nil {
		t.Fatal("missing window must fail")
	}
	if _, err := New(Config{Stream: stream, Ranker: core.NN(), N: 1, WindowSamples: 5}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestSinkComputesAndFloodsResult runs the full centralized pipeline:
// shipments over AODV, sink-side window maintenance, outlier computation,
// and result flooding back to every sensor.
func TestSinkComputesAndFloodsResult(t *testing.T) {
	sim, stream, topo, apps, sink := centralTestbed(t, 9, 5, wsn.Config{Seed: 1})
	sim.Start()
	period := stream.Period()

	for epoch := 0; epoch < stream.Epochs(); epoch++ {
		sim.Run(time.Duration(epoch+1) * period)
		if epoch < 3 {
			continue
		}
		union := core.NewSet()
		for _, id := range topo.Nodes() {
			for e := epoch - 4; e <= epoch; e++ {
				s, ok := stream.At(id, e)
				if !ok {
					continue
				}
				union.Add(core.NewPoint(id, uint32(e), time.Duration(e)*period, s.Features(1)...))
			}
		}
		truth := core.TopN(core.NN(), union, 2)
		for _, id := range topo.Nodes() {
			res, at := apps[id].LastResult()
			if at == 0 {
				t.Fatalf("epoch %d node %d never received a result", epoch, id)
			}
			if !sameIDs(truth, res) {
				t.Fatalf("epoch %d node %d result %v, want %v (sink %d)",
					epoch, id, pids(res), pids(truth), sink)
			}
		}
	}
}

// TestSinkHotSpot verifies the centralized design's Achilles heel the
// paper hammers in §8: traffic concentrates around the sink.
func TestSinkHotSpot(t *testing.T) {
	sim, stream, _, _, sink := centralTestbed(t, 16, 8, wsn.Config{Seed: 2})
	sim.Start()
	sim.Run(stream.Period() * time.Duration(stream.Epochs()+1))

	var total, max int
	var hottest core.NodeID
	for _, node := range sim.Nodes() {
		sent := node.Counters().FramesSent
		total += sent
		if sent > max {
			max = sent
			hottest = node.ID
		}
	}
	mean := float64(total) / 16
	if float64(max) < 1.5*mean {
		t.Fatalf("no hot spot: max %d vs mean %.0f", max, mean)
	}
	_ = hottest
	// §8's claim is about the sink REGION: the average node within one
	// hop of the sink must be noticeably hotter than the network mean.
	topo := wsn.NewTopology(stream.Positions(), wsn.DefaultRadio().Range)
	regionTotal, regionN := 0, 0
	for _, node := range sim.Nodes() {
		if d, ok := topo.HopDistances(sink)[node.ID]; ok && d <= 1 {
			regionTotal += node.Counters().FramesSent
			regionN++
		}
	}
	regionMean := float64(regionTotal) / float64(regionN)
	if regionMean < 1.3*mean {
		t.Fatalf("sink region mean %.0f not above network mean %.0f", regionMean, mean)
	}
}

// TestLossTolerance: with random loss the MAC retries keep the sink fed.
func TestLossTolerance(t *testing.T) {
	sim, stream, topo, apps, _ := centralTestbed(t, 9, 5, wsn.Config{Seed: 3, LossProb: 0.03})
	sim.Start()
	period := stream.Period()
	hits, total := 0, 0
	for epoch := 0; epoch < stream.Epochs(); epoch++ {
		sim.Run(time.Duration(epoch+1) * period)
		if epoch < 3 {
			continue
		}
		union := core.NewSet()
		for _, id := range topo.Nodes() {
			for e := epoch - 4; e <= epoch; e++ {
				s, ok := stream.At(id, e)
				if !ok {
					continue
				}
				union.Add(core.NewPoint(id, uint32(e), time.Duration(e)*period, s.Features(1)...))
			}
		}
		truth := core.TopN(core.NN(), union, 2)
		for _, id := range topo.Nodes() {
			total++
			res, _ := apps[id].LastResult()
			if sameIDs(truth, res) {
				hits++
			}
		}
	}
	acc := float64(hits) / float64(total)
	t.Logf("centralized accuracy under 3%% loss: %.3f", acc)
	if acc < 0.8 {
		t.Fatalf("accuracy %.3f too low under mild loss", acc)
	}
}

func sameIDs(a, b []core.Point) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[core.PointID]bool, len(a))
	for _, p := range a {
		set[p.ID] = true
	}
	for _, p := range b {
		if !set[p.ID] {
			return false
		}
	}
	return true
}

func pids(pts []core.Point) []string {
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = p.ID.String()
	}
	return out
}
