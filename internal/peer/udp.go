package peer

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
)

// UDPTransport carries the algorithm's broadcast packets over UDP
// datagrams — the real-deployment transport. Every peer binds one socket
// and unicasts each "broadcast" to its current single-hop neighbor list
// (radio broadcast emulated over an IP network; on a real mote network
// the MAC layer does this in one transmission).
//
// Datagrams carry the encoded core packet as-is: the recipient identifies
// the sender from the payload's From field, so no extra framing is
// needed. Packets that fail to decode are dropped by the peer, exactly
// like corrupted radio frames.
type UDPTransport struct {
	conn  *net.UDPConn
	inbox chan Packet

	mu        sync.Mutex
	neighbors map[string]*net.UDPAddr
	closed    bool

	readerDone chan struct{}
}

var _ Transport = (*UDPTransport)(nil)

// NewUDPTransport binds listenAddr (e.g. "127.0.0.1:0") and starts
// receiving. Close releases the socket and closes the inbox.
func NewUDPTransport(listenAddr string) (*UDPTransport, error) {
	addr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("peer: resolve %q: %w", listenAddr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("peer: listen %q: %w", listenAddr, err)
	}
	t := &UDPTransport{
		conn:       conn,
		inbox:      make(chan Packet, 1024),
		neighbors:  make(map[string]*net.UDPAddr),
		readerDone: make(chan struct{}),
	}
	go t.readLoop()
	return t, nil
}

// Addr returns the bound local address (useful with port 0).
func (t *UDPTransport) Addr() string { return t.conn.LocalAddr().String() }

// AddNeighbor starts delivering broadcasts to the peer at addr.
func (t *UDPTransport) AddNeighbor(addr string) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("peer: resolve neighbor %q: %w", addr, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return errors.New("peer: transport closed")
	}
	t.neighbors[udpAddr.String()] = udpAddr
	return nil
}

// RemoveNeighbor stops delivering to addr.
func (t *UDPTransport) RemoveNeighbor(addr string) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.neighbors, udpAddr.String())
}

// Broadcast implements Transport: one datagram per current neighbor.
func (t *UDPTransport) Broadcast(ctx context.Context, p Packet) error {
	t.mu.Lock()
	targets := make([]*net.UDPAddr, 0, len(t.neighbors))
	for _, a := range t.neighbors {
		targets = append(targets, a)
	}
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return errors.New("peer: transport closed")
	}
	var firstErr error
	for _, target := range targets {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := t.conn.WriteToUDP(p.Payload, target); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Inbox implements Transport.
func (t *UDPTransport) Inbox() <-chan Packet { return t.inbox }

// Close releases the socket; the inbox closes once the reader drains,
// which terminates the peer's Run loop.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	<-t.readerDone
	close(t.inbox)
	return err
}

func (t *UDPTransport) readLoop() {
	defer close(t.readerDone)
	buf := make([]byte, 64*1024)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		payload := make([]byte, n)
		copy(payload, buf[:n])
		select {
		case t.inbox <- Packet{Payload: payload}:
		default:
			// Inbox overflow: drop, like a saturated radio. The
			// algorithm tolerates loss (stale knowledge ages out).
		}
	}
}
