package peer

import (
	"context"
	"testing"
	"time"

	"innet/internal/core"
)

func TestPeerStats(t *testing.T) {
	c := startCluster(t, core.Config{Ranker: core.NN(), N: 1}, 2, lineEdges(2))
	defer c.stop()
	ctx := context.Background()
	if err := c.peers[1].Observe(ctx, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.peers[1].Observe(ctx, 0, 100); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	stats, err := c.peers[1].Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 || stats.PointsSent == 0 {
		t.Fatalf("stats did not move: %+v", stats)
	}
	recv, err := c.peers[2].Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if recv.PointsReceived == 0 {
		t.Fatalf("receiver stats: %+v", recv)
	}
}

func TestPeerID(t *testing.T) {
	mesh := NewMesh()
	tr, err := mesh.Attach(9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Detector: core.Config{Node: 9, Ranker: core.NN(), N: 1}, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() != 9 {
		t.Fatalf("ID() = %d", p.ID())
	}
}

func TestPeerRunTwiceFails(t *testing.T) {
	mesh := NewMesh()
	tr, err := mesh.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Detector: core.Config{Node: 1, Ranker: core.NN(), N: 1}, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled Run must return the context error")
	}
	if err := p.Run(context.Background()); err == nil {
		t.Fatal("second Run must fail")
	}
}

func TestPeerCommandAfterCancel(t *testing.T) {
	mesh := NewMesh()
	tr, err := mesh.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Detector: core.Config{Node: 1, Ranker: core.NN(), N: 1}, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = p.Run(ctx)
	}()
	cancel()
	<-done
	// A command against a dead peer fails via its own context rather
	// than hanging.
	cctx, ccancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer ccancel()
	if err := p.Observe(cctx, 0, 1); err == nil {
		t.Fatal("command against a stopped peer must time out")
	}
}

func TestMeshDetachClosesInbox(t *testing.T) {
	mesh := NewMesh()
	tr, err := mesh.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Detector: core.Config{Node: 1, Ranker: core.NN(), N: 1}, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	mesh.Detach(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v on detach, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer did not exit after detach")
	}
}

func TestMeshNeighbors(t *testing.T) {
	mesh := NewMesh()
	for id := core.NodeID(1); id <= 3; id++ {
		if _, err := mesh.Attach(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := mesh.Connect(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := mesh.Connect(1, 3); err != nil {
		t.Fatal(err)
	}
	if got := mesh.Neighbors(1); len(got) != 2 {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	mesh.Disconnect(1, 2)
	if got := mesh.Neighbors(1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("after disconnect: %v", got)
	}
}
