package peer_test

import (
	"context"
	"fmt"
	"sync"
	"time"

	"innet/internal/core"
	"innet/internal/peer"
)

// ExamplePeer shows the whole embedding lifecycle: build peers on an
// in-memory mesh, run each in its own goroutine, feed observations, wait
// for the network to settle, read the converged estimate, and shut down
// by canceling the context.
func ExamplePeer() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	mesh := peer.NewMesh()
	var wg sync.WaitGroup
	spawn := func(id core.NodeID) *peer.Peer {
		tr, err := mesh.Attach(id)
		if err != nil {
			panic(err)
		}
		p, err := peer.New(peer.Config{
			Detector:  core.Config{Node: id, Ranker: core.NN(), N: 1},
			Transport: tr,
		})
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Run(ctx) // returns when ctx is canceled
		}()
		return p
	}

	p1, p2 := spawn(1), spawn(2)
	if err := mesh.Connect(1, 2); err != nil {
		panic(err)
	}
	_ = p1.AddNeighbor(ctx, 2) // link-up events on both ends
	_ = p2.AddNeighbor(ctx, 1)

	_ = p1.Observe(ctx, 0, 20.0)
	_ = p1.Observe(ctx, 0, 20.2)
	_ = p2.Observe(ctx, 0, 48.0) // the faulty reading

	_ = mesh.WaitQuiescent(ctx) // the algorithm has converged
	for _, pt := range p1.Estimate() {
		fmt.Printf("sensor 1 sees the outlier: sensor %d read %.1f\n", pt.ID.Origin, pt.Value[0])
	}

	cancel()
	wg.Wait()
	// Output: sensor 1 sees the outlier: sensor 2 read 48.0
}

// ExamplePeer_ObserveBatch feeds a burst of readings as one event — the
// batch-observe fast path the streaming ingestion layer uses: one ranking
// pass for the whole burst, with per-reading timestamps preserved.
func ExamplePeer_ObserveBatch() {
	ctx := context.Background()
	mesh := peer.NewMesh()
	tr, err := mesh.Attach(1)
	if err != nil {
		panic(err)
	}
	p, err := peer.New(peer.Config{
		Detector:  core.Config{Node: 1, Ranker: core.NN(), N: 1, Window: time.Hour},
		Transport: tr,
	})
	if err != nil {
		panic(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()

	_ = p.ObserveBatch(ctx, 3*time.Second, []core.Observation{
		{Birth: 1 * time.Second, Value: []float64{19.9}},
		{Birth: 2 * time.Second, Value: []float64{55.3}},
		{Birth: 3 * time.Second, Value: []float64{20.1}},
	})
	for _, pt := range p.Estimate() {
		fmt.Printf("outlier: %.1f at t=%s\n", pt.Value[0], pt.Birth)
	}

	mesh.Detach(1) // closing the transport ends Run cleanly
	fmt.Println("run returned:", <-done)
	// Output:
	// outlier: 55.3 at t=2s
	// run returned: <nil>
}
