// Package peer is the live, concurrent runtime for the in-network outlier
// detection algorithm: one goroutine per sensor, exchanging the paper's
// tagged broadcast packets over a pluggable transport. It is the form a
// real deployment embeds — the discrete-event simulator exists to measure
// energy, this package exists to run.
//
// The core.Detector is single-threaded by design; Peer serializes all
// events (samples, packets, clock ticks, neighbor changes) through one
// goroutine, so the algorithm code is shared unmodified with the
// simulator and the test harness.
//
// # Lifecycle
//
// A peer moves through four stages; every event method is safe from any
// goroutine once Run is started:
//
//	New(cfg)                        build: validate config, wrap a Detector
//	  │
//	  ▼
//	go p.Run(ctx)                   run: the one goroutine that owns the
//	  │                             detector; drains the transport inbox and
//	  │                             the command queue
//	  ▼
//	Observe / ObserveBatch /        feed: each call is serialized through
//	AdvanceTo / AddNeighbor /       the event loop and returns once the
//	RemoveNeighbor / Estimate       detector has reacted (and any broadcast
//	  │                             is handed to the transport)
//	  ▼
//	cancel ctx, or close the        close: Run returns ctx.Err() on cancel,
//	transport (mesh Detach /        or nil when the transport closes the
//	UDPTransport.Close)             inbox; after that the peer is inert
//
// There is no separate Close method: the peer owns no resources beyond
// its goroutine, so stopping Run — by context or by closing the transport
// it reads from — is the whole shutdown story. Callers that need to know
// the goroutine exited wait on Run's return (see ExamplePeer).
//
// Peers are usually not driven by hand: internal/ingest runs a managed
// fleet of them behind the innetd daemon's HTTP/UDP front door, and the
// examples directory shows both styles.
package peer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"innet/internal/core"
)

// Packet is one broadcast on the transport.
type Packet struct {
	From    core.NodeID
	Payload []byte
}

// Transport connects a peer to its single-hop neighborhood.
type Transport interface {
	// Broadcast sends the packet to all current neighbors.
	Broadcast(ctx context.Context, p Packet) error
	// Inbox returns the channel of packets addressed to this peer's
	// neighborhood (the mesh closes it when the peer is removed).
	Inbox() <-chan Packet
}

// PacketDoner is optionally implemented by transports that track
// in-flight packets: the peer calls PacketDone after it has fully
// processed (and reacted to) each inbox packet.
type PacketDoner interface {
	PacketDone()
}

// Config parameterizes one live peer.
type Config struct {
	// Detector configures the embedded algorithm (Node included).
	Detector core.Config
	// Transport connects the peer to its neighborhood. Required.
	Transport Transport
}

// Peer runs one sensor's detector in its own goroutine.
type Peer struct {
	cfg Config
	det *core.Detector

	commands chan func(*core.Detector) *core.Outbound

	mu       sync.Mutex
	estimate []core.Point

	wg      sync.WaitGroup
	started bool
}

// New builds a peer. Call Run to start it.
func New(cfg Config) (*Peer, error) {
	if cfg.Transport == nil {
		return nil, errors.New("peer: Transport is required")
	}
	det, err := core.NewDetector(cfg.Detector)
	if err != nil {
		return nil, err
	}
	return &Peer{
		cfg:      cfg,
		det:      det,
		commands: make(chan func(*core.Detector) *core.Outbound),
	}, nil
}

// ID returns the peer's node ID.
func (p *Peer) ID() core.NodeID { return p.cfg.Detector.Node }

// Run processes events until ctx is canceled. It must be called exactly
// once; it blocks, so callers usually run it in a goroutine of their own.
func (p *Peer) Run(ctx context.Context) error {
	if p.started {
		return errors.New("peer: Run called twice")
	}
	p.started = true

	inbox := p.cfg.Transport.Inbox()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case cmd := <-p.commands:
			p.dispatch(ctx, cmd(p.det))
		case pkt, ok := <-inbox:
			if !ok {
				return nil // removed from the mesh
			}
			p.handlePacket(ctx, pkt)
		}
	}
}

func (p *Peer) handlePacket(ctx context.Context, pkt Packet) {
	if doner, ok := p.cfg.Transport.(PacketDoner); ok {
		defer doner.PacketDone()
	}
	out, err := core.DecodeOutbound(pkt.Payload)
	if err != nil {
		return // corrupt packet: drop, as a mote would
	}
	pts := out.For(p.det.Node())
	if len(pts) == 0 {
		return // not tagged for us: not an event (§5.2)
	}
	p.dispatch(ctx, p.det.Receive(out.From, pts))
}

// dispatch publishes the detector's reaction and refreshes the cached
// estimate.
func (p *Peer) dispatch(ctx context.Context, out *core.Outbound) {
	est := p.det.Estimate()
	p.mu.Lock()
	p.estimate = est
	p.mu.Unlock()

	if out == nil {
		return
	}
	payload, err := core.EncodeOutbound(out)
	if err != nil {
		return
	}
	// Broadcast without holding the detector loop hostage on a slow
	// transport is unnecessary here: mesh transports are buffered, and
	// blocking preserves event ordering.
	_ = p.cfg.Transport.Broadcast(ctx, Packet{From: p.det.Node(), Payload: payload})
}

// do runs fn on the detector goroutine and returns once it is processed.
func (p *Peer) do(ctx context.Context, fn func(*core.Detector) *core.Outbound) error {
	done := make(chan struct{})
	wrapped := func(d *core.Detector) *core.Outbound {
		defer close(done)
		return fn(d)
	}
	select {
	case p.commands <- wrapped:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Observe feeds a new sample into the peer.
func (p *Peer) Observe(ctx context.Context, birth time.Duration, value ...float64) error {
	return p.do(ctx, func(d *core.Detector) *core.Outbound {
		_, out := d.Observe(birth, value...)
		return out
	})
}

// ObserveBatch feeds a burst of readings as one data-change event: the
// clock advances to now, expired window contents leave, and all readings
// land under a single ranking pass (core.Detector.StepObserveBatch). The
// ingestion layer uses this so a sensor that falls behind catches up in
// one event instead of one per queued reading.
func (p *Peer) ObserveBatch(ctx context.Context, now time.Duration, obs []core.Observation) error {
	return p.do(ctx, func(d *core.Detector) *core.Outbound {
		_, out := d.StepObserveBatch(now, obs)
		return out
	})
}

// ObserveBatchMinted is ObserveBatch returning the points the detector
// minted for the batch — identities included, whether assigned by the
// caller or by the detector's own sequence counter. The ingestion layer
// uses it when a durability store is attached: the minted points are
// exactly what must be replayed to rebuild this window, so they are what
// the write-ahead log records. The result rides a buffered channel for
// the same reason Holdings does: a caller that gives up on ctx must not
// race the event loop's late write.
func (p *Peer) ObserveBatchMinted(ctx context.Context, now time.Duration, obs []core.Observation) ([]core.Point, error) {
	res := make(chan []core.Point, 1)
	err := p.do(ctx, func(d *core.Detector) *core.Outbound {
		pts, out := d.StepObserveBatch(now, obs)
		res <- pts
		return out
	})
	if err != nil {
		return nil, err
	}
	return <-res, nil
}

// ReserveSeq raises the detector's sequence floor (see
// core.Detector.ReserveSeq); warm restarts call it after replay so
// re-minted identities cannot collide with aged-out ones.
func (p *Peer) ReserveSeq(ctx context.Context, seq uint32) error {
	return p.do(ctx, func(d *core.Detector) *core.Outbound {
		d.ReserveSeq(seq)
		return nil
	})
}

// AdvanceTo moves the peer's clock, evicting expired window contents.
func (p *Peer) AdvanceTo(ctx context.Context, now time.Duration) error {
	return p.do(ctx, func(d *core.Detector) *core.Outbound { return d.AdvanceTo(now) })
}

// AddNeighbor delivers a link-up event.
func (p *Peer) AddNeighbor(ctx context.Context, j core.NodeID) error {
	return p.do(ctx, func(d *core.Detector) *core.Outbound { return d.AddNeighbor(j) })
}

// RemoveNeighbor delivers a link-down event.
func (p *Peer) RemoveNeighbor(ctx context.Context, j core.NodeID) error {
	return p.do(ctx, func(d *core.Detector) *core.Outbound { return d.RemoveNeighbor(j) })
}

// Holdings snapshots the peer's full sliding window P_i (own and
// received points) via the event loop, so the copy is consistent. The
// cluster shard server serves window snapshots from this for the
// coordinator's estimate merge and for sensor handoff. The result rides
// a buffered channel rather than a captured variable: when ctx expires
// after the command was enqueued, the event loop still runs the closure
// later, and a plain capture would make that write race the caller's
// return.
func (p *Peer) Holdings(ctx context.Context) (*core.Set, error) {
	res := make(chan *core.Set, 1)
	err := p.do(ctx, func(d *core.Detector) *core.Outbound {
		res <- d.Holdings()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return <-res, nil
}

// Estimate returns the latest published outlier estimate. It is safe to
// call from any goroutine.
func (p *Peer) Estimate() []core.Point {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]core.Point, len(p.estimate))
	copy(out, p.estimate)
	return out
}

// Stats snapshots the detector counters via the event loop (so it is
// consistent, not torn). The buffered-channel shape mirrors Holdings:
// a closure run after the caller gave up must not write a variable the
// caller already read.
func (p *Peer) Stats(ctx context.Context) (core.Stats, error) {
	res := make(chan core.Stats, 1)
	err := p.do(ctx, func(d *core.Detector) *core.Outbound {
		res <- d.Stats()
		return nil
	})
	if err != nil {
		return core.Stats{}, err
	}
	return <-res, nil
}

var _ fmt.Stringer = PeerState{}

// PeerState is a diagnostic snapshot.
type PeerState struct {
	ID       core.NodeID
	Estimate []core.Point
}

// String implements fmt.Stringer.
func (s PeerState) String() string {
	return fmt.Sprintf("peer %d: %d outliers", s.ID, len(s.Estimate))
}
