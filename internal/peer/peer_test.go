package peer

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"innet/internal/core"
)

// cluster spins up n live peers on a mesh with the given edges, runs
// them, and returns a stop function.
type cluster struct {
	mesh  *Mesh
	peers map[core.NodeID]*Peer
	stop  func()
}

func startCluster(t *testing.T, cfg core.Config, n int, edges [][2]core.NodeID) *cluster {
	t.Helper()
	mesh := NewMesh()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	c := &cluster{mesh: mesh, peers: make(map[core.NodeID]*Peer, n)}
	for i := 1; i <= n; i++ {
		id := core.NodeID(i)
		tr, err := mesh.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		pc := cfg
		pc.Node = id
		p, err := New(Config{Detector: pc, Transport: tr})
		if err != nil {
			t.Fatal(err)
		}
		c.peers[id] = p
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Run(ctx)
		}()
	}
	for _, e := range edges {
		if err := mesh.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		// Link-up events on both ends.
		if err := c.peers[e[0]].AddNeighbor(ctx, e[1]); err != nil {
			t.Fatal(err)
		}
		if err := c.peers[e[1]].AddNeighbor(ctx, e[0]); err != nil {
			t.Fatal(err)
		}
	}
	c.stop = func() {
		cancel()
		wg.Wait()
	}
	return c
}

// settle waits until the mesh is quiescent.
func (c *cluster) settle(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.mesh.WaitQuiescent(ctx); err != nil {
		t.Fatalf("network did not quiesce: %v", err)
	}
}

func lineEdges(n int) [][2]core.NodeID {
	var edges [][2]core.NodeID
	for i := 1; i < n; i++ {
		edges = append(edges, [2]core.NodeID{core.NodeID(i), core.NodeID(i + 1)})
	}
	return edges
}

func TestLivePeersConvergeGlobally(t *testing.T) {
	const n = 8
	c := startCluster(t, core.Config{Ranker: core.NN(), N: 2}, n, lineEdges(n))
	defer c.stop()

	ctx := context.Background()
	rng := rand.New(rand.NewPCG(1, 2))
	union := core.NewSet()
	for i := 1; i <= n; i++ {
		p := c.peers[core.NodeID(i)]
		for s := 0; s < 5; s++ {
			v := []float64{rng.Float64() * 100, rng.Float64() * 100}
			if err := p.Observe(ctx, 0, v...); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.settle(t)

	// Recover the ground truth from each peer's own points via stats:
	// rebuild the union from the observations we made is equivalent —
	// instead compare all peers agree and their estimate is stable.
	first := c.peers[1].Estimate()
	if len(first) != 2 {
		t.Fatalf("estimate size %d", len(first))
	}
	for i := 2; i <= n; i++ {
		got := c.peers[core.NodeID(i)].Estimate()
		if !samePointIDs(first, got) {
			t.Fatalf("peer %d disagrees: %v vs %v", i, ids(got), ids(first))
		}
	}
	_ = union
}

func samePointIDs(a, b []core.Point) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[core.PointID]bool, len(a))
	for _, p := range a {
		set[p.ID] = true
	}
	for _, p := range b {
		if !set[p.ID] {
			return false
		}
	}
	return true
}

func ids(pts []core.Point) []string {
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = p.ID.String()
	}
	return out
}

func TestLivePeersMatchSyncGroundTruth(t *testing.T) {
	const n = 6
	edges := append(lineEdges(n), [2]core.NodeID{1, 4}, [2]core.NodeID{2, 6})
	c := startCluster(t, core.Config{Ranker: core.KNN{K: 2}, N: 3}, n, edges)
	defer c.stop()

	ctx := context.Background()
	rng := rand.New(rand.NewPCG(7, 7))
	union := core.NewSet()
	for i := 1; i <= n; i++ {
		for s := 0; s < 6; s++ {
			v := []float64{rng.Float64() * 50, rng.Float64() * 50}
			if err := c.peers[core.NodeID(i)].Observe(ctx, 0, v...); err != nil {
				t.Fatal(err)
			}
			union.Add(core.NewPoint(core.NodeID(i), uint32(s), 0, v...))
		}
	}
	c.settle(t)

	truth := core.TopN(core.KNN{K: 2}, union, 3)
	for i := 1; i <= n; i++ {
		got := c.peers[core.NodeID(i)].Estimate()
		if !samePointIDs(truth, got) {
			t.Fatalf("peer %d: %v, want %v", i, ids(got), ids(truth))
		}
	}
}

func TestLivePeerDynamicUpdateAndChurn(t *testing.T) {
	const n = 5
	c := startCluster(t, core.Config{Ranker: core.NN(), N: 1}, n, lineEdges(n))
	defer c.stop()

	ctx := context.Background()
	for i := 1; i <= n; i++ {
		for s := 0; s < 3; s++ {
			if err := c.peers[core.NodeID(i)].Observe(ctx, 0, float64(10*i+s)); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.settle(t)

	// Inject an extreme outlier at the tail.
	if err := c.peers[n].Observe(ctx, 0, 1e6); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	for i := 1; i <= n; i++ {
		got := c.peers[core.NodeID(i)].Estimate()
		if len(got) != 1 || got[0].Value[0] != 1e6 {
			t.Fatalf("peer %d missed the update: %v", i, ids(got))
		}
	}

	// Cut and re-add a redundant link; the network must stay converged.
	c.mesh.Disconnect(2, 3)
	if err := c.peers[2].RemoveNeighbor(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.peers[3].RemoveNeighbor(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.mesh.Connect(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.peers[2].AddNeighbor(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.peers[3].AddNeighbor(ctx, 2); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	for i := 1; i <= n; i++ {
		got := c.peers[core.NodeID(i)].Estimate()
		if len(got) != 1 || got[0].Value[0] != 1e6 {
			t.Fatalf("peer %d lost the answer after churn: %v", i, ids(got))
		}
	}
}

func TestLivePeerSlidingWindow(t *testing.T) {
	const n = 3
	c := startCluster(t, core.Config{Ranker: core.NN(), N: 1, Window: 10 * time.Second}, n, lineEdges(n))
	defer c.stop()

	ctx := context.Background()
	// Old outlier, then fresh normals.
	if err := c.peers[1].Observe(ctx, 0, 9999); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		for s := 0; s < 3; s++ {
			if err := c.peers[core.NodeID(i)].Observe(ctx, 8*time.Second, float64(i*3+s)); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.settle(t)
	if got := c.peers[2].Estimate(); len(got) == 0 || got[0].Value[0] != 9999 {
		t.Fatalf("outlier not detected before expiry: %v", ids(got))
	}

	// Advance clocks: the outlier expires everywhere.
	for i := 1; i <= n; i++ {
		if err := c.peers[core.NodeID(i)].AdvanceTo(ctx, 15*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	c.settle(t)
	for i := 1; i <= n; i++ {
		for _, p := range c.peers[core.NodeID(i)].Estimate() {
			if p.Value[0] == 9999 {
				t.Fatalf("peer %d still reports the expired outlier", i)
			}
		}
	}
}

func TestLivePeerLossyMeshStillAgrees(t *testing.T) {
	// Loss on a mesh without retransmission can leave ledgers out of
	// sync; with a cyclic topology most data still arrives. Agreement
	// (not exactness) is the property asserted, plus eventual repair
	// when a fresh event retriggers exchange.
	const n = 5
	edges := append(lineEdges(n), [2]core.NodeID{1, 3}, [2]core.NodeID{2, 4}, [2]core.NodeID{3, 5})
	mesh := NewMesh()
	rng := rand.New(rand.NewPCG(3, 3))
	var mu sync.Mutex
	mesh.SetLossFunc(func(from, to core.NodeID) bool {
		mu.Lock()
		defer mu.Unlock()
		return rng.Float64() < 0.05
	})
	_ = edges
	_ = mesh
	// Construction above exercises SetLossFunc; full lossy-convergence
	// behaviour is covered by the simulator tests where retransmission
	// exists. Here we only verify the mesh drops packets.
	tr1, err := mesh.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.Attach(2); err != nil {
		t.Fatal(err)
	}
	if err := mesh.Connect(1, 2); err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for i := 0; i < 2000; i++ {
		if err := tr1.Broadcast(context.Background(), Packet{From: 1, Payload: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	mesh.mu.Lock()
	inflight := mesh.inFlight
	mesh.mu.Unlock()
	dropped = 2000 - inflight
	if dropped == 0 {
		t.Fatal("loss function never dropped")
	}
	if dropped > 400 {
		t.Fatalf("dropped %d of 2000 at 5%%", dropped)
	}
}

func TestPeerValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing transport must fail")
	}
	mesh := NewMesh()
	tr, err := mesh.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Detector: core.Config{Node: 1}, Transport: tr}); err == nil {
		t.Fatal("invalid detector config must fail")
	}
}

func TestMeshValidation(t *testing.T) {
	mesh := NewMesh()
	if _, err := mesh.Attach(1); err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.Attach(1); err == nil {
		t.Fatal("duplicate attach must fail")
	}
	if err := mesh.Connect(1, 1); err == nil {
		t.Fatal("self link must fail")
	}
	if err := mesh.Connect(1, 9); err == nil {
		t.Fatal("unknown node must fail")
	}
	mesh.Detach(9) // no-op
	mesh.Detach(1)
	if _, err := mesh.Attach(1); err != nil {
		t.Fatal("re-attach after detach must work")
	}
}

func TestPeerStateString(t *testing.T) {
	s := PeerState{ID: 3, Estimate: []core.Point{core.NewPoint(1, 1, 0, 1)}}
	if s.String() != fmt.Sprintf("peer %d: %d outliers", 3, 1) {
		t.Fatalf("String = %q", s.String())
	}
}
