package peer

import (
	"context"
	"testing"
	"time"
)

// TestDetachDuringBroadcast pins the fix for a shutdown crash: Broadcast
// captures target inboxes outside the mesh lock, so Detach closing an
// inbox mid-send used to panic the sender with "send on closed channel".
// The worst case is a sender blocked on a full inbox at the moment of
// Detach; now Detach waits for the send, which completes as soon as the
// consumer drains one slot.
func TestDetachDuringBroadcast(t *testing.T) {
	mesh := NewMesh()
	ta, err := mesh.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := mesh.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := mesh.Connect(1, 2); err != nil {
		t.Fatal(err)
	}

	// Fill node 2's inbox to capacity so the next send blocks.
	ctx := context.Background()
	pkt := Packet{From: 1, Payload: []byte("x")}
	for i := 0; i < cap(tb.Inbox()); i++ {
		if err := ta.Broadcast(ctx, pkt); err != nil {
			t.Fatal(err)
		}
	}

	sendDone := make(chan struct{})
	go func() {
		defer close(sendDone)
		_ = ta.Broadcast(ctx, pkt) // blocks on the full inbox
	}()
	detachDone := make(chan struct{})
	go func() {
		defer close(detachDone)
		time.Sleep(10 * time.Millisecond) // let the send block first
		mesh.Detach(2)
	}()

	done := tb.(PacketDoner)
	<-tb.Inbox() // drain one slot: the blocked send completes, then Detach closes
	done.PacketDone()
	for _, ch := range []chan struct{}{sendDone, detachDone} {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatal("send/detach did not finish")
		}
	}

	// The inbox must drain fully and then report closed.
	got := 0
	for range tb.Inbox() {
		got++
		done.PacketDone()
	}
	if got != cap(tb.Inbox()) {
		t.Fatalf("drained %d packets after detach, want %d", got, cap(tb.Inbox()))
	}

	// Broadcasts to a departed node are dropped, not delivered, and do
	// not count as in flight (quiescence still settles).
	if err := ta.Broadcast(ctx, pkt); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := mesh.WaitQuiescent(wctx); err != nil {
		t.Fatalf("mesh never quiescent after detach: %v", err)
	}
}
