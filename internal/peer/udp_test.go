package peer

import (
	"context"
	"sync"
	"testing"
	"time"

	"innet/internal/core"
)

// udpPair spins up two live peers talking over loopback UDP.
func udpPair(t *testing.T) (a, b *Peer, ta, tb *UDPTransport, stop func()) {
	t.Helper()
	var err error
	ta, err = NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tb, err = NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.AddNeighbor(tb.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddNeighbor(ta.Addr()); err != nil {
		t.Fatal(err)
	}
	mk := func(id core.NodeID, tr Transport) *Peer {
		p, err := New(Config{
			Detector:  core.Config{Node: id, Ranker: core.NN(), N: 1},
			Transport: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b = mk(1, ta), mk(2, tb)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, p := range []*Peer{a, b} {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Run(ctx)
		}()
	}
	stop = func() {
		cancel()
		wg.Wait()
		_ = ta.Close()
		_ = tb.Close()
	}
	return a, b, ta, tb, stop
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met before deadline")
}

func TestUDPPeersConverge(t *testing.T) {
	a, b, _, _, stop := udpPair(t)
	defer stop()

	ctx := context.Background()
	if err := a.AddNeighbor(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddNeighbor(ctx, 1); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 2, 3} {
		if err := a.Observe(ctx, 0, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []float64{4, 5, 100} {
		if err := b.Observe(ctx, 0, v); err != nil {
			t.Fatal(err)
		}
	}

	want := core.PointID{Origin: 2, Seq: 2} // the 100 reading
	waitFor(t, 5*time.Second, func() bool {
		ea, eb := a.Estimate(), b.Estimate()
		return len(ea) == 1 && len(eb) == 1 && ea[0].ID == want && eb[0].ID == want
	})
}

func TestUDPTransportNeighborManagement(t *testing.T) {
	tr, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.AddNeighbor("not an address"); err == nil {
		t.Fatal("bad neighbor address must fail")
	}
	if err := tr.AddNeighbor("127.0.0.1:9"); err != nil {
		t.Fatal(err)
	}
	tr.RemoveNeighbor("127.0.0.1:9")
	// Broadcast with no neighbors is a no-op.
	if err := tr.Broadcast(context.Background(), Packet{Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPTransportCloseTerminatesPeer(t *testing.T) {
	tr, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Detector:  core.Config{Node: 1, Ranker: core.NN(), N: 1},
		Transport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Run(context.Background()) }()
	time.Sleep(20 * time.Millisecond)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v on closed inbox, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer did not terminate after transport close")
	}
	if err := tr.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	if err := tr.Broadcast(context.Background(), Packet{}); err == nil {
		t.Fatal("broadcast after close must fail")
	}
	if err := tr.AddNeighbor("127.0.0.1:9"); err == nil {
		t.Fatal("add neighbor after close must fail")
	}
}

func TestUDPDropsGarbageDatagrams(t *testing.T) {
	a, b, ta, _, stop := udpPair(t)
	defer stop()
	ctx := context.Background()
	if err := a.AddNeighbor(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddNeighbor(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Spray garbage at b through a's socket; the peer must survive.
	for i := 0; i < 50; i++ {
		if err := ta.Broadcast(ctx, Packet{Payload: []byte{0xFF, 0x00, byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []float64{1, 2, 1000} {
		if err := a.Observe(ctx, 0, v); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		eb := b.Estimate()
		return len(eb) == 1 && eb[0].Value[0] == 1000
	})
}
