package peer

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"innet/internal/core"
)

// Mesh is an in-memory single-hop broadcast fabric for live peers: an
// undirected neighbor graph where Broadcast delivers a packet to every
// current neighbor's inbox. It tracks in-flight packets so tests and
// coordinators can wait for network quiescence.
type Mesh struct {
	mu       sync.Mutex
	cond     *sync.Cond
	ports    map[core.NodeID]*port
	adj      map[core.NodeID]map[core.NodeID]bool
	inFlight int
	delay    func(from, to core.NodeID) bool // true = drop (loss injection)
}

// NewMesh returns an empty fabric.
func NewMesh() *Mesh {
	m := &Mesh{
		ports: make(map[core.NodeID]*port),
		adj:   make(map[core.NodeID]map[core.NodeID]bool),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// SetLossFunc installs a per-delivery drop predicate (nil disables loss).
// It must be set before traffic flows.
func (m *Mesh) SetLossFunc(drop func(from, to core.NodeID) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.delay = drop
}

// port is one peer's attachment to the mesh. sendMu serializes senders
// against Detach's close of the inbox: a broadcast captures target ports
// outside the mesh lock, so without it a concurrent Detach could close
// the channel mid-send and panic the sender.
type port struct {
	mesh *Mesh
	id   core.NodeID
	in   chan Packet

	sendMu sync.Mutex
	closed bool
}

var _ Transport = (*port)(nil)

// Attach registers a node and returns its transport. The inbox buffer
// must absorb bursts: peers consume serially while many neighbors may
// broadcast at once.
func (m *Mesh) Attach(id core.NodeID) (Transport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.ports[id]; dup {
		return nil, fmt.Errorf("peer: node %d already attached", id)
	}
	t := &port{mesh: m, id: id, in: make(chan Packet, 4096)}
	m.ports[id] = t
	m.adj[id] = make(map[core.NodeID]bool)
	return t, nil
}

// Detach removes a node, cutting its links and closing its inbox (which
// ends the attached peer's Run loop). It waits for sends already in
// progress to that inbox to finish, so it must not be called while the
// node's own consumer is stopped AND its inbox is full — the normal
// sequence (detach while the peer still drains, as ingest.Leave does)
// cannot block.
func (m *Mesh) Detach(id core.NodeID) {
	m.mu.Lock()
	t, ok := m.ports[id]
	if !ok {
		m.mu.Unlock()
		return
	}
	delete(m.ports, id)
	for other := range m.adj[id] {
		delete(m.adj[other], id)
	}
	delete(m.adj, id)
	m.mu.Unlock()

	t.sendMu.Lock()
	t.closed = true
	close(t.in)
	t.sendMu.Unlock()
}

// Connect establishes the undirected link a—b.
func (m *Mesh) Connect(a, b core.NodeID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if a == b {
		return errors.New("peer: self link")
	}
	if _, ok := m.ports[a]; !ok {
		return fmt.Errorf("peer: unknown node %d", a)
	}
	if _, ok := m.ports[b]; !ok {
		return fmt.Errorf("peer: unknown node %d", b)
	}
	m.adj[a][b] = true
	m.adj[b][a] = true
	return nil
}

// Disconnect removes the undirected link a—b.
func (m *Mesh) Disconnect(a, b core.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.adj[a]; ok {
		delete(m.adj[a], b)
	}
	if _, ok := m.adj[b]; ok {
		delete(m.adj[b], a)
	}
}

// Neighbors returns the current neighbors of id.
func (m *Mesh) Neighbors(id core.NodeID) []core.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]core.NodeID, 0, len(m.adj[id]))
	for other := range m.adj[id] {
		out = append(out, other)
	}
	return out
}

// Broadcast implements Transport for a port. Each delivery holds the
// target's sendMu so a concurrent Detach cannot close the inbox under
// the send; a target that detached after being selected is skipped, like
// a receiver that left radio range mid-transmission.
func (t *port) Broadcast(ctx context.Context, p Packet) error {
	m := t.mesh
	m.mu.Lock()
	targets := make([]*port, 0, len(m.adj[t.id]))
	for other := range m.adj[t.id] {
		if m.delay != nil && m.delay(t.id, other) {
			continue
		}
		targets = append(targets, m.ports[other])
	}
	m.inFlight += len(targets)
	m.mu.Unlock()

	for _, target := range targets {
		target.sendMu.Lock()
		delivered := false
		if !target.closed {
			select {
			case target.in <- p:
				delivered = true
			case <-ctx.Done():
			}
		}
		target.sendMu.Unlock()
		if !delivered {
			m.mu.Lock()
			m.inFlight--
			m.cond.Broadcast()
			m.mu.Unlock()
		}
	}
	return nil
}

// Inbox implements Transport for a port.
func (t *port) Inbox() <-chan Packet { return t.in }

// PacketDone implements the peer runtime's completion hook: a packet
// counts as in flight until the receiving peer has fully reacted to it
// (including broadcasting its own response), so quiescence really means
// the distributed computation has settled.
func (t *port) PacketDone() {
	t.mesh.mu.Lock()
	t.mesh.inFlight--
	t.mesh.cond.Broadcast()
	t.mesh.mu.Unlock()
}

// WaitQuiescent blocks until no packets are in flight (sent but not yet
// consumed) or the context expires. Combined with idle peers this means
// the algorithm has converged.
func (m *Mesh) WaitQuiescent(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		m.mu.Lock()
		for m.inFlight != 0 {
			m.cond.Wait()
		}
		m.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
