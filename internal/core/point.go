// Package core implements the in-network outlier detection algorithms of
// Branch, Giannella, Szymanski, Wolff and Kargupta, "In-Network Outlier
// Detection in Wireless Sensor Networks" (ICDCS 2006, extended journal
// version arXiv:0909.0685).
//
// The package provides:
//
//   - ranking functions R(x, D) satisfying the paper's anti-monotonicity
//     and smoothness axioms (Ranker and its implementations),
//   - top-n outlier computation On(D) with a deterministic tie-break
//     total order (TopN),
//   - smallest support sets [P|x] (Ranker.Support, SupportOf),
//   - the sufficient-set fixed point of Eq. (2) (Sufficient),
//   - the global detector state machine, Algorithm 1 (Detector),
//   - the semi-global, hop-bounded detector, Algorithm 2 (Detector with
//     HopLimit > 0), and
//   - a compact wire format for the tagged multi-recipient packets the
//     paper broadcasts (EncodeOutbound, DecodeInbound).
//
// Detector is a pure state machine: event methods return the points that
// must be transmitted and perform no I/O, so the same implementation is
// driven by the discrete-event simulator (internal/protocol), the live
// goroutine runtime (internal/peer), and the synchronous test harness.
package core

import (
	"fmt"
	"math"
	"time"
)

// NodeID identifies a sensor in the network.
type NodeID uint16

// PointID uniquely identifies a sampled data point network-wide: the
// sensor that sampled it and the per-sensor sequence number (the "epoch"
// in the Intel lab dataset's terms). Two points with the same PointID
// carry the same "rest" fields in the paper's terminology; they may differ
// only in their hop field.
type PointID struct {
	Origin NodeID
	Seq    uint32
}

// String implements fmt.Stringer.
func (id PointID) String() string {
	return fmt.Sprintf("%d#%d", id.Origin, id.Seq)
}

// Point is one sensed data observation. Value holds the feature vector the
// ranking function R operates on (for the paper's evaluation: temperature
// and the x, y coordinates of the sensor). Hop is the number of network
// hops the point has traveled, used only by the semi-global algorithm
// (Algorithm 2); it is zero at birth. Birth is the sample timestamp used
// for sliding-window eviction.
type Point struct {
	ID    PointID
	Value []float64
	Hop   uint8
	Birth time.Duration
}

// NewPoint builds a point sampled by origin with sequence number seq at
// time birth. The value slice is copied.
func NewPoint(origin NodeID, seq uint32, birth time.Duration, value ...float64) Point {
	v := make([]float64, len(value))
	copy(v, value)
	return Point{
		ID:    PointID{Origin: origin, Seq: seq},
		Value: v,
		Birth: birth,
	}
}

// Clone returns a deep copy of p (the feature vector is copied).
func (p Point) Clone() Point {
	v := make([]float64, len(p.Value))
	copy(v, p.Value)
	p.Value = v
	return p
}

// Dist returns the Euclidean distance between the feature vectors of p
// and q. Vectors of different lengths compare over the shorter prefix with
// the excess coordinates of the longer vector treated as zero, which keeps
// Dist total; in practice all points in one deployment share a dimension.
func (p Point) Dist(q Point) float64 {
	return math.Sqrt(p.dist2(q))
}

// dist2 returns the squared Euclidean distance, the form the hot
// selection loops use: ordering by dist2 equals ordering by Dist and
// skips the square root.
func (p Point) dist2(q Point) float64 {
	a, b := p.Value, q.Value
	if len(a) > len(b) {
		a, b = b, a
	}
	var sum float64
	for i, av := range a {
		d := av - b[i]
		sum += d * d
	}
	for _, bv := range b[len(a):] {
		sum += bv * bv
	}
	return sum
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("{%s h%d %v}", p.ID, p.Hop, p.Value)
}

// Less is the fixed total linear order ≺ on the data space used as the
// paper's tie-breaking mechanism. Points are ordered by their feature
// vector lexicographically, then by origin, then by sequence number. The
// order is total on any set of points and, combined with rank values,
// makes R(., Q) injective as §4.1 assumes.
func Less(a, b Point) bool {
	na, nb := len(a.Value), len(b.Value)
	n := na
	if nb < n {
		n = nb
	}
	for i := 0; i < n; i++ {
		if a.Value[i] != b.Value[i] {
			return a.Value[i] < b.Value[i]
		}
	}
	if na != nb {
		return na < nb
	}
	if a.ID.Origin != b.ID.Origin {
		return a.ID.Origin < b.ID.Origin
	}
	return a.ID.Seq < b.ID.Seq
}

// idLess orders PointIDs; used for deterministic iteration over sets.
func idLess(a, b PointID) bool {
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	return a.Seq < b.Seq
}

// idCompare is idLess as a three-way comparison for slices.SortFunc.
func idCompare(a, b PointID) int {
	switch {
	case idLess(a, b):
		return -1
	case idLess(b, a):
		return 1
	default:
		return 0
	}
}
