package core

import (
	"bytes"
	"testing"
	"time"
)

// fuzzSeedPackets returns representative valid encodings used to seed the
// fuzz corpus (alongside the files under testdata/fuzz/FuzzWire).
func fuzzSeedPackets(t interface{ Fatal(...any) }) [][]byte {
	packets := []*Outbound{
		{From: 1},
		{From: 7, Groups: []Group{{To: 2}}},
		{From: 3, Groups: []Group{
			{To: 4, Points: []Point{
				NewPoint(3, 0, 0, 21.5, 1.25, 9),
				{ID: PointID{Origin: 3, Seq: 9}, Hop: 2, Birth: 31 * time.Second,
					Value: []float64{-1e9, 0.125}},
			}},
			{To: 9, Points: []Point{NewPoint(5, 4096, 12345*time.Millisecond)}},
		}},
	}
	var out [][]byte
	for _, p := range packets {
		buf, err := EncodeOutbound(p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, buf)
	}
	pts, err := EncodePoints([]Point{NewPoint(1, 2, 3*time.Second, 4, 5)})
	if err != nil {
		t.Fatal(err)
	}
	return append(out, pts)
}

// FuzzWire fuzzes both wire decoders with arbitrary bytes and checks the
// round-trip law on everything that parses: a successfully decoded packet
// must re-encode, and the re-encoding must reproduce the input bytes
// exactly (the format has no redundant representations — every field is
// fixed-width and floats travel as raw bits). Decoders must reject or
// accept, never panic, and never read past the buffer.
func FuzzWire(f *testing.F) {
	for _, seed := range fuzzSeedPackets(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 1, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if out, err := DecodeOutbound(data); err == nil {
			buf, err := EncodeOutbound(out)
			if err != nil {
				t.Fatalf("decoded packet failed to re-encode: %v", err)
			}
			if !bytes.Equal(buf, data) {
				t.Fatalf("packet round-trip not identity:\nin  %x\nout %x", data, buf)
			}
			if out.EncodedSize() != len(data) {
				t.Fatalf("EncodedSize %d, wire size %d", out.EncodedSize(), len(data))
			}
		}
		if pts, err := DecodePoints(data); err == nil {
			buf, err := EncodePoints(pts)
			if err != nil {
				t.Fatalf("decoded point list failed to re-encode: %v", err)
			}
			if !bytes.Equal(buf, data) {
				t.Fatalf("point list round-trip not identity:\nin  %x\nout %x", data, buf)
			}
		}
	})
}

// TestWireSeedCorpusRoundTrips keeps the seed corpus meaningful under
// plain `go test` (fuzzing engines are not run in CI's test step).
func TestWireSeedCorpusRoundTrips(t *testing.T) {
	for i, seed := range fuzzSeedPackets(t) {
		if _, errA := DecodeOutbound(seed); errA != nil {
			if _, errB := DecodePoints(seed); errB != nil {
				t.Fatalf("seed %d decodes as neither packet (%v) nor point list (%v)",
					i, errA, errB)
			}
		}
	}
}
