package core

import (
	"math/rand/v2"
	"testing"
)

// tiePronePoints builds a cloud whose coordinates are snapped to a small
// integer grid, so exact duplicate distances — and exact duplicate
// coordinates under different IDs — are common and the ≺ tie-break is
// genuinely exercised.
func tiePronePoints(r *rand.Rand, count, dim, grid int) []Point {
	pts := make([]Point, count)
	for i := range pts {
		vals := make([]float64, dim)
		for d := range vals {
			vals[d] = float64(r.IntN(grid))
		}
		pts[i] = NewPoint(NodeID(r.IntN(7)), uint32(i), 0, vals...)
	}
	return pts
}

// mixedDimPoints builds a cloud of varying feature dimension, exercising
// the zero-padding convention shared by Point.dist2 and the index.
func mixedDimPoints(r *rand.Rand, count int) []Point {
	pts := make([]Point, count)
	for i := range pts {
		dim := 1 + r.IntN(3)
		vals := make([]float64, dim)
		for d := range vals {
			vals[d] = r.Float64()*4 - 2
		}
		pts[i] = NewPoint(NodeID(i/16), uint32(i), 0, vals...)
	}
	return pts
}

// indexClouds yields the point clouds the differential tests sweep:
// uniform random, tie-prone gridded, duplicate-heavy, and mixed-dim, at
// sizes straddling leaf buckets and the index threshold.
func indexClouds(t *testing.T, visit func(name string, pts []Point)) {
	t.Helper()
	r := rng(0xd1ff)
	for _, n := range []int{0, 1, 2, 7, indexLeafSize, indexLeafSize + 1, 60, 150, 400} {
		visit("uniform", randPoints(r, 3, n, 3, 10))
		visit("ties", tiePronePoints(r, n, 2, 3))
		visit("mixed-dim", mixedDimPoints(r, n))
	}
	// Every point identical: the tree cannot split at all.
	same := make([]Point, 100)
	for i := range same {
		same[i] = NewPoint(NodeID(i%5), uint32(i), 0, 1, 2, 3)
	}
	visit("identical", same)
}

// queriesFor returns in-set queries (own-ID exclusion must apply) plus
// external ones, including a higher-dimensional query than the cloud.
func queriesFor(pts []Point) []Point {
	qs := []Point{
		NewPoint(90, 1, 0, 0.5),
		NewPoint(90, 2, 0, 1.1, 2.2),
		NewPoint(90, 3, 0, -1, 0, 1, 5), // above any indexed dimension
	}
	for i := 0; i < len(pts); i += 1 + len(pts)/7 {
		qs = append(qs, pts[i])
	}
	return qs
}

func samePoints(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Hop != b[i].Hop {
			return false
		}
	}
	return true
}

func TestIndexKNearestMatchesBrute(t *testing.T) {
	indexClouds(t, func(name string, pts []Point) {
		ix := NewIndex(pts)
		if ix.Len() != len(pts) {
			t.Fatalf("%s: index holds %d of %d points", name, ix.Len(), len(pts))
		}
		for _, x := range queriesFor(pts) {
			for _, k := range []int{1, 2, 4, 9, len(pts) + 1} {
				want := kNearest(x, pts, k)
				got := ix.KNearest(x, k)
				if !samePoints(want, got) {
					t.Fatalf("%s n=%d k=%d x=%v:\nbrute %v\nindex %v",
						name, len(pts), k, x, want, got)
				}
			}
		}
	})
}

func TestIndexWithinMatchesBrute(t *testing.T) {
	indexClouds(t, func(name string, pts []Point) {
		ix := NewIndex(pts)
		for _, x := range queriesFor(pts) {
			alphas := []float64{0, 0.5, 2, 1e9}
			if len(pts) > 1 {
				// An exact inter-point distance lands queries on the ≤
				// boundary.
				alphas = append(alphas, x.Dist(pts[len(pts)/2]))
			}
			for _, alpha := range alphas {
				a2 := alpha * alpha
				var want []Point
				for _, p := range pts {
					if p.ID != x.ID && x.dist2(p) <= a2 {
						want = append(want, p)
					}
				}
				got := ix.Within(x, alpha)
				if len(got) != ix.WithinCount(x, alpha) {
					t.Fatalf("%s: Within/WithinCount disagree: %d vs %d",
						name, len(got), ix.WithinCount(x, alpha))
				}
				wantIDs := map[PointID]bool{}
				for _, p := range want {
					wantIDs[p.ID] = true
				}
				if len(got) != len(want) {
					t.Fatalf("%s alpha=%g x=%v: brute %d points, index %d",
						name, alpha, x, len(want), len(got))
				}
				for i, p := range got {
					if !wantIDs[p.ID] {
						t.Fatalf("%s alpha=%g: index returned %v not within", name, alpha, p)
					}
					// The index reports (distance, ≺) order.
					if i > 0 && closer(x.dist2(p), p, distPoint{d2: x.dist2(got[i-1]), p: got[i-1]}) {
						t.Fatalf("%s alpha=%g: Within out of order at %d", name, alpha, i)
					}
				}
			}
		}
	})
}

func TestIndexedRankersMatchBrute(t *testing.T) {
	rankers := []indexedRanker{
		NN(), KNN{K: 4}, KNN{K: 9},
		KthNN{K: 1}, KthNN{K: 5},
		CountWithin{Alpha: 1.5}, CountWithin{Alpha: 0},
	}
	scratch := newBestList(1)
	indexClouds(t, func(name string, pts []Point) {
		ix := NewIndex(pts)
		for _, r := range rankers {
			for _, x := range queriesFor(pts) {
				want := r.Rank(x, pts)
				got := r.rankIndexed(x, ix, scratch)
				if want != got {
					t.Fatalf("%s %s n=%d x=%v: Rank %v != indexed %v",
						name, r.Name(), len(pts), x, want, got)
				}
				ws, gs := r.Support(x, pts), r.supportIndexed(x, ix)
				wantIDs := NewSet(ws...)
				gotIDs := NewSet(gs...)
				if !wantIDs.EqualIDs(gotIDs) {
					t.Fatalf("%s %s x=%v: Support %v != indexed %v",
						name, r.Name(), x, wantIDs, gotIDs)
				}
			}
		}
	})
}

// TestTopNIndexedMatchesBrute drives the full public entry point over a
// set large enough to take the indexed path and checks it against the
// naive reimplementation and against the forced-brute path.
func TestTopNIndexedMatchesBrute(t *testing.T) {
	r := rng(0xcafe)
	for _, ranker := range []Ranker{NN(), KNN{K: 4}, KthNN{K: 3}, CountWithin{Alpha: 2}} {
		set := NewSet()
		for _, p := range randPoints(r, 1, 300, 3, 10) {
			set.Add(p)
		}
		for _, p := range tiePronePoints(r, 100, 3, 4) {
			p.ID.Origin += 10
			set.Add(p)
		}
		if set.Len() < indexMinPoints {
			t.Fatal("test set too small to exercise the index path")
		}
		indexed := TopNRanked(ranker, set, 12)

		saved := indexMinPoints
		indexMinPoints = set.Len() + 1 // force the brute path
		brute := TopNRanked(ranker, set, 12)
		naive := naiveTopN(ranker, set, 12)
		indexMinPoints = saved

		if len(indexed) != len(brute) || len(indexed) != len(naive) {
			t.Fatalf("%s: result sizes differ: %d %d %d",
				ranker.Name(), len(indexed), len(brute), len(naive))
		}
		for i := range indexed {
			if indexed[i].Point.ID != brute[i].Point.ID || indexed[i].Rank != brute[i].Rank {
				t.Fatalf("%s: indexed[%d] = %v/%v, brute = %v/%v", ranker.Name(), i,
					indexed[i].Point.ID, indexed[i].Rank, brute[i].Point.ID, brute[i].Rank)
			}
			if indexed[i].Point.ID != naive[i].ID {
				t.Fatalf("%s: indexed[%d] = %v, naive = %v", ranker.Name(), i,
					indexed[i].Point.ID, naive[i].ID)
			}
		}
	}
}

// TestSupportOfIndexedMatchesBrute checks the batched support-set entry
// point across the threshold.
func TestSupportOfIndexedMatchesBrute(t *testing.T) {
	r := rng(0xbee)
	for _, ranker := range []Ranker{KNN{K: 4}, KthNN{K: 4}, CountWithin{Alpha: 3}} {
		set := NewSet(randPoints(r, 2, 200, 3, 8)...)
		q := append(randPoints(r, 3, 9, 3, 8), set.Points()[:5]...)

		indexed := SupportOf(ranker, set, q)
		saved := indexMinPoints
		indexMinPoints = set.Len() + 1
		brute := SupportOf(ranker, set, q)
		indexMinPoints = saved

		if !indexed.EqualIDs(brute) {
			t.Fatalf("%s: indexed support %v != brute %v", ranker.Name(), indexed, brute)
		}
	}
}

// TestLOFScoresMatchScore checks the memoized, index-backed batch LOF
// against the per-point definitional Score, above and below the index
// threshold and on tie-prone data.
func TestLOFScoresMatchScore(t *testing.T) {
	r := rng(0x10f)
	for _, l := range []LOF{{}, {K: 3}, {K: 7}} {
		for _, count := range []int{0, 1, 5, 40, 200} {
			set := NewSet()
			for _, p := range randPoints(r, 4, count, 2, 6) {
				set.Add(p)
			}
			for _, p := range tiePronePoints(r, count/2, 2, 3) {
				p.ID.Origin += 20
				set.Add(p)
			}
			pts := set.Points()
			got := LOFScores(l, set)
			if len(got) != len(pts) {
				t.Fatalf("LOFScores returned %d of %d points", len(got), len(pts))
			}
			want := make(map[PointID]float64, len(pts))
			for _, x := range pts {
				want[x.ID] = l.Score(x, pts)
			}
			for _, g := range got {
				if w := want[g.Point.ID]; g.Rank != w {
					t.Fatalf("k=%d n=%d: LOFScores(%v) = %v, Score = %v",
						l.k(), set.Len(), g.Point.ID, g.Rank, w)
				}
			}
			for i := 1; i < len(got); i++ {
				a, b := got[i-1], got[i]
				if a.Rank < b.Rank || (a.Rank == b.Rank && Less(b.Point, a.Point)) {
					t.Fatalf("LOFScores out of order at %d: %v then %v", i, a, b)
				}
			}
		}
	}
}
