package core

import (
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	valid := Config{Node: 1, Ranker: NN(), N: 1}
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{name: "valid", mutate: func(*Config) {}, ok: true},
		{name: "nil ranker", mutate: func(c *Config) { c.Ranker = nil }},
		{name: "zero n", mutate: func(c *Config) { c.N = 0 }},
		{name: "negative n", mutate: func(c *Config) { c.N = -3 }},
		{name: "negative hop limit", mutate: func(c *Config) { c.HopLimit = -1 }},
		{name: "huge hop limit", mutate: func(c *Config) { c.HopLimit = 400 }},
		{name: "negative window", mutate: func(c *Config) { c.Window = -time.Second }},
		{name: "semi-global ok", mutate: func(c *Config) { c.HopLimit = 3 }, ok: true},
		{name: "window ok", mutate: func(c *Config) { c.Window = time.Minute }, ok: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := valid
			tt.mutate(&cfg)
			_, err := NewDetector(cfg)
			if (err == nil) != tt.ok {
				t.Fatalf("NewDetector err = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

// example51Data builds the datasets of the paper's §5.1 worked example:
// D_i = {0.5, 3, 6, 10, 11, ..., a}, D_j = {4, 5, 7, 8, 9, a+1, ..., a+b}.
func example51Data(a, b int) (di, dj [][]float64) {
	di = [][]float64{{0.5}, {3}, {6}}
	for v := 10; v <= a; v++ {
		di = append(di, []float64{float64(v)})
	}
	dj = [][]float64{{4}, {5}, {7}, {8}, {9}}
	for v := a + 1; v <= a+b; v++ {
		dj = append(dj, []float64{float64(v)})
	}
	return di, dj
}

// TestExample51SequentialTrace replays §5.1 with the paper's synchronous
// schedule "starting with p_i": p_i reacts, p_j responds, and so on until
// nothing is sent. Exactly 4 points must cross the link in total, both
// sensors must estimate {0.5}, and both must agree on the support {3} —
// against a centralization cost of min{a−6, b+5}.
func TestExample51SequentialTrace(t *testing.T) {
	const (
		a = 20
		b = 5
	)
	di, dj := example51Data(a, b)
	pi, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 1})
	if err != nil {
		t.Fatal(err)
	}
	pj, err := NewDetector(Config{Node: 2, Ranker: NN(), N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, out := pi.ObserveBatch(0, di...); out != nil {
		t.Fatal("no neighbors yet: nothing to send")
	}
	if _, out := pj.ObserveBatch(0, dj...); out != nil {
		t.Fatal("no neighbors yet: nothing to send")
	}

	totalSent := 0
	out := pi.AddNeighbor(2) // the initialization event, starting with p_i
	for step := 0; out != nil; step++ {
		if step > 100 {
			t.Fatal("exchange did not quiesce")
		}
		totalSent += out.PointCount()
		if out.From == pi.Node() {
			out = pj.Receive(1, out.For(2))
		} else {
			out = pi.Receive(2, out.For(1))
		}
	}

	if totalSent != 4 {
		t.Errorf("points sent = %d, want the paper's 4", totalSent)
	}
	if central := min(a-6, b+5); totalSent >= central {
		t.Errorf("distributed cost %d not below centralized %d", totalSent, central)
	}
	for _, det := range []*Detector{pi, pj} {
		est := det.Estimate()
		if len(est) != 1 || est[0].Value[0] != 0.5 {
			t.Fatalf("node %d estimate %v, want {0.5}", det.Node(), idList(est))
		}
		sup := SupportOf(NN(), det.Holdings(), est)
		if sup.Len() != 1 || sup.Points()[0].Value[0] != 3 {
			t.Fatalf("node %d support %v, want {3}", det.Node(), sup)
		}
	}
}

// TestExample51Concurrent runs the same datasets through the concurrent
// SyncNetwork schedule: the trace differs but the outcome (and the
// communication advantage over centralization) must not.
func TestExample51Concurrent(t *testing.T) {
	const (
		a = 20
		b = 5
	)
	di, dj := example51Data(a, b)
	net := NewSyncNetwork()
	for id := NodeID(1); id <= 2; id++ {
		det, err := NewDetector(Config{Node: id, Ranker: NN(), N: 1})
		if err != nil {
			t.Fatal(err)
		}
		net.Add(det)
	}
	net.ObserveBatch(1, 0, di...)
	net.ObserveBatch(2, 0, dj...)
	net.Connect(1, 2)
	if _, err := net.Settle(1000); err != nil {
		t.Fatal(err)
	}

	want := net.GlobalOutliers(NN(), 1)
	if len(want) != 1 || want[0].Value[0] != 0.5 {
		t.Fatalf("ground truth = %v, want {0.5}", idList(want))
	}
	for _, id := range net.Nodes() {
		if got := net.Detector(id).Estimate(); !sameIDs(got, want) {
			t.Fatalf("node %d estimate %v, want %v", id, idList(got), idList(want))
		}
	}
	if central := min(a-6, b+5); net.PointsSent() >= central {
		t.Errorf("distributed cost %d not below centralized %d", net.PointsSent(), central)
	}
}

// TestGlobalConvergence is the paper's Theorems 1 and 2 checked
// empirically: on random connected topologies with random data, once the
// network is quiescent every sensor's estimate equals On(D) and all
// supports agree.
func TestGlobalConvergence(t *testing.T) {
	rankers := []Ranker{NN(), KNN{K: 4}, KthNN{K: 2}, CountWithin{Alpha: 25}}
	for _, rk := range rankers {
		rk := rk
		t.Run(rk.Name(), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 6; seed++ {
				r := rng(seed)
				g := randConnectedGraph(r, 4+r.IntN(10), r.IntN(6))
				net := buildNetwork(t, r, g, Config{Ranker: rk, N: 3}, 6)

				want := net.GlobalOutliers(rk, 3)
				var refSupport *Set
				for _, id := range net.Nodes() {
					det := net.Detector(id)
					got := det.Estimate()
					if !sameIDs(got, want) {
						t.Fatalf("seed %d node %d: estimate %v, want %v",
							seed, id, idList(got), idList(want))
					}
					sup := SupportOf(rk, det.Holdings(), got)
					if refSupport == nil {
						refSupport = sup
					} else if !refSupport.EqualIDs(sup) {
						t.Fatalf("seed %d node %d: support %v, want %v (Theorem 1ii)",
							seed, id, sup, refSupport)
					}
				}
			}
		})
	}
}

// TestGlobalDynamicUpdate feeds new data after convergence — including a
// new extreme outlier — and checks the network re-converges correctly
// (paper: "seamlessly accommodates dynamic updates to data").
func TestGlobalDynamicUpdate(t *testing.T) {
	r := rng(7)
	g := randConnectedGraph(r, 8, 4)
	cfg := Config{Ranker: NN(), N: 2}
	net := buildNetwork(t, r, g, cfg, 5)

	// A wild outlier appears at the node farthest from node 1.
	net.Observe(g.nodes[len(g.nodes)-1], time.Second, 10_000, 10_000)
	if _, err := net.Settle(100000); err != nil {
		t.Fatal(err)
	}
	want := net.GlobalOutliers(NN(), 2)
	found := false
	for _, p := range want {
		if p.Value[0] == 10_000 {
			found = true
		}
	}
	if !found {
		t.Fatal("injected point must be a global outlier")
	}
	for _, id := range net.Nodes() {
		if got := net.Detector(id).Estimate(); !sameIDs(got, want) {
			t.Fatalf("node %d estimate %v, want %v", id, idList(got), idList(want))
		}
	}
}

// TestSlidingWindowEviction ages points out and checks estimates follow
// the surviving data (§5.3).
func TestSlidingWindowEviction(t *testing.T) {
	r := rng(11)
	g := randConnectedGraph(r, 6, 3)
	cfg := Config{Ranker: NN(), N: 2, Window: 10 * time.Second}
	net := NewSyncNetwork()
	for _, id := range g.nodes {
		c := cfg
		c.Node = id
		det, err := NewDetector(c)
		if err != nil {
			t.Fatal(err)
		}
		net.Add(det)
	}
	for _, e := range g.edges {
		net.Connect(e[0], e[1])
	}
	// Old cohort at t=0 including a screaming outlier, fresh cohort at t=8.
	net.Observe(g.nodes[0], 0, 9_999, 9_999)
	for _, id := range g.nodes {
		net.Observe(id, 0, r.Float64()*10, r.Float64()*10)
		net.Observe(id, 8*time.Second, 50+r.Float64()*10, 50+r.Float64()*10)
	}
	if _, err := net.Settle(100000); err != nil {
		t.Fatal(err)
	}

	// Advance past the old cohort's expiry: only t=8 points survive.
	net.AdvanceTo(12 * time.Second)
	if _, err := net.Settle(100000); err != nil {
		t.Fatal(err)
	}
	want := net.GlobalOutliers(NN(), 2)
	for _, p := range want {
		if p.Birth != 8*time.Second {
			t.Fatalf("ground truth contains expired point %v", p)
		}
	}
	for _, id := range net.Nodes() {
		det := net.Detector(id)
		det.Holdings().ForEach(func(p Point) {
			if p.Birth < 2*time.Second {
				t.Errorf("node %d still holds expired point %v", id, p)
			}
		})
		if got := det.Estimate(); !sameIDs(got, want) {
			t.Fatalf("node %d estimate %v, want %v", id, idList(got), idList(want))
		}
	}
}

// TestNodeAddition attaches a new sensor to a converged network (§5.3:
// arrival is just a link-up event) and checks global re-convergence.
func TestNodeAddition(t *testing.T) {
	r := rng(13)
	g := randConnectedGraph(r, 6, 2)
	cfg := Config{Ranker: NN(), N: 2}
	net := buildNetwork(t, r, g, cfg, 5)

	c := cfg
	c.Node = 100
	det, err := NewDetector(c)
	if err != nil {
		t.Fatal(err)
	}
	net.Add(det)
	net.Connect(100, g.nodes[0])
	for s := 0; s < 5; s++ {
		net.Observe(100, 0, -50-r.Float64()*10, -50-r.Float64()*10)
	}
	if _, err := net.Settle(100000); err != nil {
		t.Fatal(err)
	}
	want := net.GlobalOutliers(NN(), 2)
	for _, id := range net.Nodes() {
		if got := net.Detector(id).Estimate(); !sameIDs(got, want) {
			t.Fatalf("node %d estimate %v, want %v", id, idList(got), idList(want))
		}
	}
}

// TestLinkChurn removes one cycle edge (the graph stays connected via the
// spanning tree) and adds a new edge; the network must stay correct.
func TestLinkChurn(t *testing.T) {
	r := rng(17)
	g := randConnectedGraph(r, 8, 5)
	cfg := Config{Ranker: NN(), N: 2}
	net := buildNetwork(t, r, g, cfg, 4)

	// Edges beyond the spanning tree (the first n-1) are removable.
	if len(g.edges) > len(g.nodes)-1 {
		e := g.edges[len(g.edges)-1]
		net.Disconnect(e[0], e[1])
	}
	net.Connect(g.nodes[0], g.nodes[len(g.nodes)-1])
	net.Observe(g.nodes[2], time.Second, 777, 777)
	if _, err := net.Settle(100000); err != nil {
		t.Fatal(err)
	}
	want := net.GlobalOutliers(NN(), 2)
	for _, id := range net.Nodes() {
		if got := net.Detector(id).Estimate(); !sameIDs(got, want) {
			t.Fatalf("node %d estimate %v, want %v", id, idList(got), idList(want))
		}
	}
}

// TestRemoveOrigin checks the eager node-removal variant of §5.3: every
// surviving sensor purges the departed sensor's points and the network
// re-converges on the remaining data.
func TestRemoveOrigin(t *testing.T) {
	r := rng(19)
	g := randConnectedGraph(r, 6, 6)
	cfg := Config{Ranker: NN(), N: 2}
	net := buildNetwork(t, r, g, cfg, 4)

	dead := g.nodes[len(g.nodes)-1]
	// Disconnect the dead node, then purge its points everywhere.
	for _, e := range g.edges {
		if e[0] == dead || e[1] == dead {
			net.Disconnect(e[0], e[1])
		}
	}
	for _, id := range net.Nodes() {
		if id != dead {
			net.enqueue(net.Detector(id).RemoveOrigin(dead))
		}
	}
	if _, err := net.Settle(100000); err != nil {
		t.Fatal(err)
	}

	// Ground truth over the survivors only.
	survivors := NewSet()
	for _, id := range net.Nodes() {
		if id != dead {
			net.Detector(id).OwnPoints().ForEach(func(p Point) { survivors.AddMinHop(p) })
		}
	}
	want := TopN(NN(), survivors, 2)
	for _, id := range net.Nodes() {
		if id == dead {
			continue
		}
		det := net.Detector(id)
		det.Holdings().ForEach(func(p Point) {
			if p.ID.Origin == dead {
				t.Errorf("node %d still holds %v from the removed sensor", id, p.ID)
			}
		})
		if got := det.Estimate(); !sameIDs(got, want) {
			t.Fatalf("node %d estimate %v, want %v", id, idList(got), idList(want))
		}
	}
}

func TestObservePointRejectsForeignOrigin(t *testing.T) {
	det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ObservePoint with a foreign origin must panic")
		}
	}()
	det.ObservePoint(NewPoint(2, 0, 0, 1))
}

func TestObserveAssignsSequences(t *testing.T) {
	det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 1})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := det.Observe(0, 1)
	p2, _ := det.Observe(0, 2)
	if p1.ID.Seq == p2.ID.Seq {
		t.Fatal("observations must get distinct sequence numbers")
	}
	// Pre-built points advance the counter past their own sequence.
	det.ObservePoint(NewPoint(1, 50, 0, 3))
	p3, _ := det.Observe(0, 4)
	if p3.ID.Seq <= 50 {
		t.Fatalf("sequence %d not advanced past explicit 50", p3.ID.Seq)
	}
}

func TestDetectorStats(t *testing.T) {
	det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 1})
	if err != nil {
		t.Fatal(err)
	}
	det.AddNeighbor(2)
	_, out := det.Observe(0, 1)
	_, out2 := det.Observe(0, 100)
	st := det.Stats()
	if st.Events != 3 {
		t.Errorf("Events = %d, want 3", st.Events)
	}
	sent := out.PointCount() + out2.PointCount()
	if st.PointsSent != sent || sent == 0 {
		t.Errorf("PointsSent = %d, packets carried %d", st.PointsSent, sent)
	}
	det.Receive(2, []Point{NewPoint(2, 0, 0, 55)})
	if got := det.Stats().PointsReceived; got != 1 {
		t.Errorf("PointsReceived = %d, want 1", got)
	}
}

func TestReceiveFromUnknownNeighborEstablishesLink(t *testing.T) {
	det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 1})
	if err != nil {
		t.Fatal(err)
	}
	det.Receive(9, []Point{NewPoint(9, 0, 0, 1)})
	found := false
	for _, id := range det.Neighbors() {
		if id == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("sender of a received packet must become a neighbor")
	}
}

func TestAddRemoveNeighborIdempotent(t *testing.T) {
	det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 1})
	if err != nil {
		t.Fatal(err)
	}
	det.AddNeighbor(2)
	if out := det.AddNeighbor(2); out != nil {
		t.Fatal("re-adding a neighbor must be a no-op")
	}
	det.RemoveNeighbor(2)
	if out := det.RemoveNeighbor(2); out != nil {
		t.Fatal("re-removing a neighbor must be a no-op")
	}
	if len(det.Neighbors()) != 0 {
		t.Fatal("neighbor not removed")
	}
}

// TestQuiescenceIsStable verifies that after convergence, re-delivering
// a data-less clock tick produces no further traffic.
func TestQuiescenceIsStable(t *testing.T) {
	r := rng(23)
	g := randConnectedGraph(r, 5, 2)
	net := buildNetwork(t, r, g, Config{Ranker: NN(), N: 2}, 4)
	sent := net.PointsSent()
	net.AdvanceTo(time.Hour) // no window configured: nothing evicts
	if _, err := net.Settle(10); err != nil {
		t.Fatal(err)
	}
	if net.PointsSent() != sent {
		t.Fatal("clock advance without eviction must not cause traffic")
	}
}
