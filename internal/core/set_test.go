package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSetAddContainsGetRemove(t *testing.T) {
	s := NewSet()
	p := NewPoint(1, 1, 0, 3.5)
	if !s.Add(p) {
		t.Fatal("first Add must report a new ID")
	}
	if s.Add(p) {
		t.Fatal("second Add of the same ID must report existing")
	}
	if !s.Contains(p.ID) || s.Len() != 1 {
		t.Fatalf("set should hold exactly the added point, len=%d", s.Len())
	}
	got, ok := s.Get(p.ID)
	if !ok || got.Value[0] != 3.5 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if !s.Remove(p.ID) || s.Remove(p.ID) {
		t.Fatal("Remove must report presence exactly once")
	}
	if s.Len() != 0 {
		t.Fatalf("len after remove = %d", s.Len())
	}
}

func TestSetAddMinHop(t *testing.T) {
	s := NewSet()
	far := NewPoint(1, 1, 0, 1)
	far.Hop = 3
	near := NewPoint(1, 1, 0, 1)
	near.Hop = 1

	added, lowered := s.AddMinHop(far)
	if !added || lowered {
		t.Fatalf("first insert: added=%v lowered=%v", added, lowered)
	}
	added, lowered = s.AddMinHop(near)
	if added || !lowered {
		t.Fatalf("lower hop must replace: added=%v lowered=%v", added, lowered)
	}
	added, lowered = s.AddMinHop(far)
	if added || lowered {
		t.Fatalf("higher hop must be ignored: added=%v lowered=%v", added, lowered)
	}
	got, _ := s.Get(far.ID)
	if got.Hop != 1 {
		t.Fatalf("held hop = %d, want 1", got.Hop)
	}
}

func TestSetSetHop(t *testing.T) {
	s := NewSet()
	p := NewPoint(1, 1, 0, 1)
	p.Hop = 5
	s.Add(p)
	if !s.SetHop(p.ID, 2) {
		t.Fatal("SetHop to a lower value must apply")
	}
	if s.SetHop(p.ID, 4) {
		t.Fatal("SetHop to a higher value must not apply")
	}
	if s.SetHop(PointID{Origin: 9, Seq: 9}, 0) {
		t.Fatal("SetHop on a missing ID must not apply")
	}
	got, _ := s.Get(p.ID)
	if got.Hop != 2 {
		t.Fatalf("hop = %d, want 2", got.Hop)
	}
}

func TestNilSetQueries(t *testing.T) {
	var s *Set
	if s.Len() != 0 {
		t.Fatal("nil set Len")
	}
	if s.Contains(PointID{}) {
		t.Fatal("nil set Contains")
	}
	if _, ok := s.Get(PointID{}); ok {
		t.Fatal("nil set Get")
	}
	if s.Points() != nil || s.IDs() != nil {
		t.Fatal("nil set Points/IDs")
	}
	if !s.SubsetOf(NewSet()) {
		t.Fatal("nil set must be a subset of anything")
	}
	if s.EvictBefore(time.Hour) != 0 || s.EvictOrigin(1) != 0 {
		t.Fatal("nil set evictions")
	}
	s.ForEach(func(Point) { t.Fatal("nil set ForEach must not call") })
	if got := s.Clone(); got.Len() != 0 {
		t.Fatal("nil set Clone must be empty")
	}
	if got := s.Union(NewSet(NewPoint(1, 1, 0, 1))); got.Len() != 1 {
		t.Fatal("nil set Union")
	}
}

func TestSetPointsSortedByID(t *testing.T) {
	s := NewSet(
		NewPoint(2, 0, 0, 1),
		NewPoint(1, 5, 0, 2),
		NewPoint(1, 1, 0, 3),
		NewPoint(3, 0, 0, 4),
	)
	pts := s.Points()
	for i := 1; i < len(pts); i++ {
		if !idLess(pts[i-1].ID, pts[i].ID) {
			t.Fatalf("Points not sorted at %d: %v then %v", i, pts[i-1].ID, pts[i].ID)
		}
	}
}

func TestSetUnionMinMergesHops(t *testing.T) {
	a := NewPoint(1, 1, 0, 1)
	a.Hop = 2
	b := a.Clone()
	b.Hop = 1
	u := NewSet(a).Union(NewSet(b), nil)
	got, _ := u.Get(a.ID)
	if got.Hop != 1 {
		t.Fatalf("union hop = %d, want min 1", got.Hop)
	}
	if u.Len() != 1 {
		t.Fatalf("union len = %d, want 1", u.Len())
	}
}

func TestSetMaxHop(t *testing.T) {
	s := NewSet()
	for h := uint8(0); h < 5; h++ {
		p := NewPoint(1, uint32(h), 0, float64(h))
		p.Hop = h
		s.Add(p)
	}
	for h := uint8(0); h < 5; h++ {
		if got, want := s.MaxHop(h).Len(), int(h)+1; got != want {
			t.Fatalf("MaxHop(%d) len = %d, want %d", h, got, want)
		}
	}
}

func TestSetEvictBefore(t *testing.T) {
	s := NewSet(
		NewPoint(1, 0, 0*time.Second, 1),
		NewPoint(1, 1, 5*time.Second, 2),
		NewPoint(1, 2, 10*time.Second, 3),
	)
	if got := s.EvictBefore(5 * time.Second); got != 1 {
		t.Fatalf("evicted %d, want 1 (cutoff is exclusive)", got)
	}
	if s.Contains(PointID{Origin: 1, Seq: 0}) {
		t.Fatal("expired point still held")
	}
	if !s.Contains(PointID{Origin: 1, Seq: 1}) {
		t.Fatal("point born exactly at cutoff must survive")
	}
}

func TestSetEvictOrigin(t *testing.T) {
	s := NewSet(
		NewPoint(1, 0, 0, 1),
		NewPoint(2, 0, 0, 2),
		NewPoint(1, 1, 0, 3),
	)
	if got := s.EvictOrigin(1); got != 2 {
		t.Fatalf("evicted %d, want 2", got)
	}
	if s.Len() != 1 || !s.Contains(PointID{Origin: 2, Seq: 0}) {
		t.Fatalf("wrong survivors: %v", s)
	}
}

func TestSetSubsetAndEqual(t *testing.T) {
	a := NewSet(NewPoint(1, 0, 0, 1), NewPoint(1, 1, 0, 2))
	b := NewSet(NewPoint(1, 0, 0, 1), NewPoint(1, 1, 0, 2), NewPoint(2, 0, 0, 3))
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("SubsetOf wrong")
	}
	if a.EqualIDs(b) {
		t.Fatal("EqualIDs must compare lengths")
	}
	if !a.EqualIDs(a.Clone()) {
		t.Fatal("clone must compare equal")
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(NewPoint(2, 1, 0, 1), NewPoint(1, 7, 0, 2))
	if got, want := s.String(), "{1#7 2#1}"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestSetCloneIndependence(t *testing.T) {
	s := NewSet(NewPoint(1, 0, 0, 1))
	c := s.Clone()
	c.Add(NewPoint(2, 0, 0, 2))
	if s.Len() != 1 {
		t.Fatal("Clone must not share storage")
	}
}

// Property: for any two random sets, the union contains exactly the IDs
// of both, and filtering splits a set into complementary halves.
func TestSetAlgebraProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed)
		a := NewSet(randPoints(r, 1, r.IntN(20), 2, 10)...)
		b := NewSet(randPoints(r, 2, r.IntN(20), 2, 10)...)
		u := a.Union(b)
		if u.Len() != a.Len()+b.Len() { // disjoint origins
			return false
		}
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		keep := func(p Point) bool { return p.Value[0] < 5 }
		left := u.Filter(keep)
		right := u.Filter(func(p Point) bool { return !keep(p) })
		return left.Len()+right.Len() == u.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
