package core

// LOF is the Local Outlier Factor of Breunig, Kriegel, Ng and Sander
// (SIGMOD 2000), included because the paper names it in §4.1 as a
// popular ranking function that does NOT satisfy the axioms the
// distributed algorithm requires: LOF is neither anti-monotone (adding
// points can raise a score by densifying a point's neighbors' own
// neighborhoods) nor smooth. TestLOFViolatesAntiMonotonicity
// demonstrates a concrete violation.
//
// LOF therefore deliberately does not implement Ranker, so it cannot be
// handed to a Detector at all; it is useful for comparing answers
// offline (LOFScores) and as executable documentation of why the paper's
// axioms matter.
type LOF struct {
	// K is the neighborhood size (MinPts in the original paper). The
	// zero value is treated as 2.
	K int
}

func (l LOF) k() int {
	if l.K < 2 {
		return 2
	}
	return l.K
}

// Name implements the same naming convention as the admissible rankers.
func (l LOF) Name() string { return "LOF" }

// Score returns LOF_k(x) with respect to the dataset (x excluded from
// its own neighborhood). Points with fewer than k neighbors score 0.
func (l LOF) Score(x Point, data []Point) float64 {
	k := l.k()
	neighbors := kNearest(x, data, k)
	if len(neighbors) < k {
		return 0
	}
	lrdX := l.lrd(x, data)
	if lrdX == 0 {
		return 0
	}
	var sum float64
	for _, o := range neighbors {
		sum += l.lrd(o, data) / lrdX
	}
	return sum / float64(len(neighbors))
}

// kDistance is the distance to the k-th nearest neighbor of p in data.
func (l LOF) kDistance(p Point, data []Point) float64 {
	nn := kNearest(p, data, l.k())
	if len(nn) == 0 {
		return 0
	}
	return p.Dist(nn[len(nn)-1])
}

// lrd is the local reachability density of p.
func (l LOF) lrd(p Point, data []Point) float64 {
	neighbors := kNearest(p, data, l.k())
	if len(neighbors) == 0 {
		return 0
	}
	var sum float64
	for _, o := range neighbors {
		reach := p.Dist(o)
		if kd := l.kDistance(o, data); kd > reach {
			reach = kd
		}
		sum += reach
	}
	if sum == 0 {
		return 0
	}
	return float64(len(neighbors)) / sum
}

// LOFScores ranks a whole set by LOF, descending, with the ≺ tie-break —
// the offline comparison counterpart of TopNRanked.
//
// Unlike the per-point Score, the batch computes each point's neighbor
// list once (through a spatial index for large sets) and memoizes the
// k-distances and local reachability densities the naive formulation
// recomputes O(k²) times per point: O(n log n + n·k) total instead of
// Score's O(n²·k) per point. The arithmetic per point is identical to
// Score's, which TestLOFScoresMatchScore verifies.
func LOFScores(l LOF, set *Set) []Ranked {
	pts := set.Points()
	k := l.k()

	// Neighbor lists, identical to kNearest(x, pts, k) for every point.
	neigh := make([][]Point, len(pts))
	if len(pts) >= indexMinPoints {
		ix := NewIndex(pts)
		for i, x := range pts {
			neigh[i] = ix.KNearest(x, k)
		}
	} else {
		for i, x := range pts {
			neigh[i] = kNearest(x, pts, k)
		}
	}

	at := make(map[PointID]int, len(pts))
	for i, p := range pts {
		at[p.ID] = i
	}

	// kdist[i] = kDistance(pts[i], pts); lrds[i] = lrd(pts[i], pts),
	// with the same guard cases and accumulation order as the methods.
	kdist := make([]float64, len(pts))
	for i, nn := range neigh {
		if len(nn) > 0 {
			kdist[i] = pts[i].Dist(nn[len(nn)-1])
		}
	}
	lrds := make([]float64, len(pts))
	for i, nn := range neigh {
		if len(nn) == 0 {
			continue
		}
		var sum float64
		for _, o := range nn {
			reach := pts[i].Dist(o)
			if kd := kdist[at[o.ID]]; kd > reach {
				reach = kd
			}
			sum += reach
		}
		if sum != 0 {
			lrds[i] = float64(len(nn)) / sum
		}
	}

	ranked := make([]Ranked, len(pts))
	for i, x := range pts {
		score := 0.0
		if nn := neigh[i]; len(nn) >= k && lrds[i] != 0 {
			var sum float64
			for _, o := range nn {
				sum += lrds[at[o.ID]] / lrds[i]
			}
			score = sum / float64(len(nn))
		}
		ranked[i] = Ranked{Point: x, Rank: score}
	}
	sortRanked(ranked)
	return ranked
}
