package core

// LOF is the Local Outlier Factor of Breunig, Kriegel, Ng and Sander
// (SIGMOD 2000), included because the paper names it in §4.1 as a
// popular ranking function that does NOT satisfy the axioms the
// distributed algorithm requires: LOF is neither anti-monotone (adding
// points can raise a score by densifying a point's neighbors' own
// neighborhoods) nor smooth. TestLOFViolatesAntiMonotonicity
// demonstrates a concrete violation.
//
// LOF therefore deliberately does not implement Ranker, so it cannot be
// handed to a Detector at all; it is useful for comparing answers
// offline (LOFScores) and as executable documentation of why the paper's
// axioms matter.
type LOF struct {
	// K is the neighborhood size (MinPts in the original paper). The
	// zero value is treated as 2.
	K int
}

func (l LOF) k() int {
	if l.K < 2 {
		return 2
	}
	return l.K
}

// Name implements the same naming convention as the admissible rankers.
func (l LOF) Name() string { return "LOF" }

// Score returns LOF_k(x) with respect to the dataset (x excluded from
// its own neighborhood). Points with fewer than k neighbors score 0.
func (l LOF) Score(x Point, data []Point) float64 {
	k := l.k()
	neighbors := kNearest(x, data, k)
	if len(neighbors) < k {
		return 0
	}
	lrdX := l.lrd(x, data)
	if lrdX == 0 {
		return 0
	}
	var sum float64
	for _, o := range neighbors {
		sum += l.lrd(o, data) / lrdX
	}
	return sum / float64(len(neighbors))
}

// kDistance is the distance to the k-th nearest neighbor of p in data.
func (l LOF) kDistance(p Point, data []Point) float64 {
	nn := kNearest(p, data, l.k())
	if len(nn) == 0 {
		return 0
	}
	return p.Dist(nn[len(nn)-1])
}

// lrd is the local reachability density of p.
func (l LOF) lrd(p Point, data []Point) float64 {
	neighbors := kNearest(p, data, l.k())
	if len(neighbors) == 0 {
		return 0
	}
	var sum float64
	for _, o := range neighbors {
		reach := p.Dist(o)
		if kd := l.kDistance(o, data); kd > reach {
			reach = kd
		}
		sum += reach
	}
	if sum == 0 {
		return 0
	}
	return float64(len(neighbors)) / sum
}

// LOFScores ranks a whole set by LOF, descending, with the ≺ tie-break —
// the offline comparison counterpart of TopNRanked.
func LOFScores(l LOF, set *Set) []Ranked {
	pts := set.Points()
	ranked := make([]Ranked, len(pts))
	for i, x := range pts {
		ranked[i] = Ranked{Point: x, Rank: l.Score(x, pts)}
	}
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0; j-- {
			a, b := ranked[j-1], ranked[j]
			if a.Rank > b.Rank || (a.Rank == b.Rank && Less(a.Point, b.Point)) {
				break
			}
			ranked[j-1], ranked[j] = b, a
		}
	}
	return ranked
}
