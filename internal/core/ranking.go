package core

import "fmt"

// Ranker is the paper's outlier ranking function R. Rank maps a point x
// and a finite dataset to a non-negative real indicating the degree to
// which x is an outlier with respect to that dataset; larger means more
// outlying. Support returns the smallest support set [P|x]: the unique
// minimal subset Q of the neighbors such that R(x, Q) = R(x, P), with
// uniqueness obtained from the ≺ tie-break order (see Less).
//
// The neighbors argument excludes x itself: callers rank x against
// P \ {x}. Both methods must treat neighbors as read-only; the slice is
// sorted by ≺ before the call so implementations are deterministic.
//
// Implementations must satisfy the paper's two axioms:
//
//	anti-monotonicity: Q1 ⊆ Q2 ⇒ R(x, Q1) ≥ R(x, Q2)
//	smoothness:        R(x, Q1) > R(x, Q2) with Q1 ⊆ Q2 ⇒
//	                   ∃ z ∈ Q2\Q1 with R(x, Q1) > R(x, Q1 ∪ {z})
//
// All rankers in this package satisfy both (LOF, famously, does not, and
// is deliberately not provided).
type Ranker interface {
	// Name returns a short identifier used in experiment labels.
	Name() string
	// Rank returns R(x, neighbors ∪ {x}).
	Rank(x Point, neighbors []Point) float64
	// Support returns the smallest support set [P|x] as a subset of
	// neighbors.
	Support(x Point, neighbors []Point) []Point
}

// Compile-time interface compliance checks.
var (
	_ Ranker = KNN{}
	_ Ranker = KthNN{}
	_ Ranker = CountWithin{}
)

// MissingNeighborPenalty is the distance charged for each neighbor a
// k-nearest-neighbor ranker wants but the dataset cannot supply. Using a
// huge finite penalty instead of +Inf keeps both of the paper's axioms
// intact on small datasets: a point with too few neighbors is maximally
// outlying, and every additional neighbor strictly lowers its rank
// (smoothness), which +Inf would violate. Feature-space distances must be
// far below this constant; any realistic sensor data is.
const MissingNeighborPenalty = 1e15

// KNN ranks a point by the average distance to its K nearest neighbors
// (Angiulli & Pizzuti). With K = 1 it degenerates to the distance to the
// nearest neighbor, the paper's "NN" configuration. Each missing neighbor
// (when the dataset holds fewer than K) is charged MissingNeighborPenalty.
type KNN struct {
	// K is the number of nearest neighbors averaged over. The zero
	// value is treated as 1.
	K int
}

// NN returns the paper's "NN" ranking function: distance to the single
// nearest neighbor.
func NN() KNN { return KNN{K: 1} }

func (r KNN) k() int {
	if r.K < 1 {
		return 1
	}
	return r.K
}

// Name implements Ranker.
func (r KNN) Name() string {
	if r.k() == 1 {
		return "NN"
	}
	return fmt.Sprintf("KNN%d", r.k())
}

// Rank implements Ranker: the average distance to the k nearest
// neighbors, with missing neighbors charged MissingNeighborPenalty.
func (r KNN) Rank(x Point, neighbors []Point) float64 {
	k := r.k()
	nearest := kNearest(x, neighbors, k)
	sum := float64(k-len(nearest)) * MissingNeighborPenalty
	for _, p := range nearest {
		sum += x.Dist(p)
	}
	return sum / float64(k)
}

// Support implements Ranker: the k nearest neighbors themselves (all of
// the neighbors when fewer than k exist, since every point then
// constrains the penalized rank).
func (r KNN) Support(x Point, neighbors []Point) []Point {
	return kNearest(x, neighbors, r.k())
}

// KthNN ranks a point by the distance to its K-th nearest neighbor
// (Ramaswamy, Rastogi & Shim); missing neighbors are charged
// MissingNeighborPenalty each. Its smallest support set is the full set
// of K nearest neighbors: dropping any of the closer ones would promote a
// farther point into the k-th slot and change the rank.
type KthNN struct {
	// K selects which nearest neighbor's distance is the rank. The
	// zero value is treated as 1.
	K int
}

func (r KthNN) k() int {
	if r.K < 1 {
		return 1
	}
	return r.K
}

// Name implements Ranker.
func (r KthNN) Name() string { return fmt.Sprintf("%dthNN", r.k()) }

// Rank implements Ranker: distance to the k-th nearest neighbor, with a
// MissingNeighborPenalty charge per missing neighbor so that every added
// point strictly lowers an undersupplied rank (smoothness).
func (r KthNN) Rank(x Point, neighbors []Point) float64 {
	k := r.k()
	nearest := kNearest(x, neighbors, k)
	rank := float64(k-len(nearest)) * MissingNeighborPenalty
	if len(nearest) > 0 {
		rank += x.Dist(nearest[len(nearest)-1])
	}
	return rank
}

// Support implements Ranker.
func (r KthNN) Support(x Point, neighbors []Point) []Point {
	return kNearest(x, neighbors, r.k())
}

// CountWithin ranks a point by the inverse of the number of neighbors
// within distance Alpha (Knorr & Ng's DB(α) outliers): R = 1/(1+c) where
// c = |{p : dist(x,p) ≤ α}|. Fewer close neighbors ⇒ higher rank.
// The smallest support set is exactly the neighbors within α — removing
// any of them changes the count and hence the rank.
type CountWithin struct {
	// Alpha is the neighborhood radius.
	Alpha float64
}

// Name implements Ranker.
func (r CountWithin) Name() string { return fmt.Sprintf("DB(%g)", r.Alpha) }

// Rank implements Ranker.
func (r CountWithin) Rank(x Point, neighbors []Point) float64 {
	a2 := r.Alpha * r.Alpha
	count := 0
	for _, p := range neighbors {
		if p.ID != x.ID && x.dist2(p) <= a2 {
			count++
		}
	}
	return 1 / float64(1+count)
}

// Support implements Ranker.
func (r CountWithin) Support(x Point, neighbors []Point) []Point {
	a2 := r.Alpha * r.Alpha
	var within []Point
	for _, p := range neighbors {
		if p.ID != x.ID && x.dist2(p) <= a2 {
			within = append(within, p)
		}
	}
	return within
}

// kNearest returns the k points of candidates nearest to x, ties broken
// by ≺, in (distance, ≺) order. A candidate carrying x's own ID is
// skipped, so callers may pass sets that still contain x. Selection is
// O(n·k) by bounded insertion over squared distances, which beats a full
// sort (and all the square roots) for the small k the rankers use, even
// on the thousands-of-points sets the centralized baseline ranks.
func kNearest(x Point, candidates []Point, k int) []Point {
	type distPoint struct {
		d2 float64
		p  Point
	}
	closer := func(d2 float64, p Point, than distPoint) bool {
		if d2 != than.d2 {
			return d2 < than.d2
		}
		return Less(p, than.p)
	}
	best := make([]distPoint, 0, k)
	for _, p := range candidates {
		if p.ID == x.ID {
			continue
		}
		d2 := x.dist2(p)
		if len(best) == k && !closer(d2, p, best[k-1]) {
			continue
		}
		i := len(best)
		if i < k {
			best = append(best, distPoint{})
		} else {
			i = k - 1
		}
		for i > 0 && closer(d2, p, best[i-1]) {
			best[i] = best[i-1]
			i--
		}
		best[i] = distPoint{d2: d2, p: p}
	}
	out := make([]Point, len(best))
	for i, dp := range best {
		out[i] = dp.p
	}
	return out
}
