package core

import (
	"fmt"
	"math"
)

// Ranker is the paper's outlier ranking function R. Rank maps a point x
// and a finite dataset to a non-negative real indicating the degree to
// which x is an outlier with respect to that dataset; larger means more
// outlying. Support returns the smallest support set [P|x]: the unique
// minimal subset Q of the neighbors such that R(x, Q) = R(x, P), with
// uniqueness obtained from the ≺ tie-break order (see Less).
//
// The neighbors argument excludes x itself: callers rank x against
// P \ {x}. Both methods must treat neighbors as read-only; the slice is
// sorted by ≺ before the call so implementations are deterministic.
//
// Implementations must satisfy the paper's two axioms:
//
//	anti-monotonicity: Q1 ⊆ Q2 ⇒ R(x, Q1) ≥ R(x, Q2)
//	smoothness:        R(x, Q1) > R(x, Q2) with Q1 ⊆ Q2 ⇒
//	                   ∃ z ∈ Q2\Q1 with R(x, Q1) > R(x, Q1 ∪ {z})
//
// All rankers in this package satisfy both (LOF, famously, does not, and
// is deliberately not provided).
type Ranker interface {
	// Name returns a short identifier used in experiment labels.
	Name() string
	// Rank returns R(x, neighbors ∪ {x}).
	Rank(x Point, neighbors []Point) float64
	// Support returns the smallest support set [P|x] as a subset of
	// neighbors.
	Support(x Point, neighbors []Point) []Point
}

// indexedRanker is implemented by rankers whose neighbor queries can be
// served by a spatial Index instead of a linear scan over the neighbors
// slice. The contract is strict equivalence: for an index built over
// exactly the neighbors slice (x's own ID excluded by the query),
// rankIndexed and supportIndexed must return bit-identical ranks and the
// same support points as Rank and Support. The batch entry points
// (rankSlice, SupportOf, supporter) use this path for large sets.
//
// rankIndexed receives a scratch bestList owned by the calling batch so
// the per-point hot loop allocates nothing; implementations that do not
// need one ignore it.
type indexedRanker interface {
	Ranker
	rankIndexed(x Point, ix *Index, scratch *bestList) float64
	supportIndexed(x Point, ix *Index) []Point
}

// Compile-time interface compliance checks.
var (
	_ indexedRanker = KNN{}
	_ indexedRanker = KthNN{}
	_ indexedRanker = CountWithin{}
)

// MissingNeighborPenalty is the distance charged for each neighbor a
// k-nearest-neighbor ranker wants but the dataset cannot supply. Using a
// huge finite penalty instead of +Inf keeps both of the paper's axioms
// intact on small datasets: a point with too few neighbors is maximally
// outlying, and every additional neighbor strictly lowers its rank
// (smoothness), which +Inf would violate. Feature-space distances must be
// far below this constant; any realistic sensor data is.
const MissingNeighborPenalty = 1e15

// KNN ranks a point by the average distance to its K nearest neighbors
// (Angiulli & Pizzuti). With K = 1 it degenerates to the distance to the
// nearest neighbor, the paper's "NN" configuration. Each missing neighbor
// (when the dataset holds fewer than K) is charged MissingNeighborPenalty.
type KNN struct {
	// K is the number of nearest neighbors averaged over. The zero
	// value is treated as 1.
	K int
}

// NN returns the paper's "NN" ranking function: distance to the single
// nearest neighbor.
func NN() KNN { return KNN{K: 1} }

func (r KNN) k() int {
	if r.K < 1 {
		return 1
	}
	return r.K
}

// Name implements Ranker.
func (r KNN) Name() string {
	if r.k() == 1 {
		return "NN"
	}
	return fmt.Sprintf("KNN%d", r.k())
}

// rankFrom turns the (distance, ≺)-ordered nearest list into the rank.
// Both the brute and indexed paths funnel through it so their float
// accumulation order — and therefore the result bits — are identical.
func (r KNN) rankFrom(x Point, nearest []Point) float64 {
	k := r.k()
	sum := float64(k-len(nearest)) * MissingNeighborPenalty
	for _, p := range nearest {
		sum += x.Dist(p)
	}
	return sum / float64(k)
}

// Rank implements Ranker: the average distance to the k nearest
// neighbors, with missing neighbors charged MissingNeighborPenalty.
func (r KNN) Rank(x Point, neighbors []Point) float64 {
	return r.rankFrom(x, kNearest(x, neighbors, r.k()))
}

// Support implements Ranker: the k nearest neighbors themselves (all of
// the neighbors when fewer than k exist, since every point then
// constrains the penalized rank).
func (r KNN) Support(x Point, neighbors []Point) []Point {
	return kNearest(x, neighbors, r.k())
}

// rankIndexed computes the rank straight from the scratch list's squared
// distances: math.Sqrt(d2) is bit-identical to x.Dist(p) for the same
// pair, so the accumulation matches rankFrom exactly without
// materializing the neighbor points.
func (r KNN) rankIndexed(x Point, ix *Index, scratch *bestList) float64 {
	k := r.k()
	ix.knnInto(x, k, scratch)
	sum := float64(k-len(scratch.best)) * MissingNeighborPenalty
	for _, dp := range scratch.best {
		sum += math.Sqrt(dp.d2)
	}
	return sum / float64(k)
}

func (r KNN) supportIndexed(x Point, ix *Index) []Point {
	return ix.KNearest(x, r.k())
}

// KthNN ranks a point by the distance to its K-th nearest neighbor
// (Ramaswamy, Rastogi & Shim); missing neighbors are charged
// MissingNeighborPenalty each. Its smallest support set is the full set
// of K nearest neighbors: dropping any of the closer ones would promote a
// farther point into the k-th slot and change the rank.
type KthNN struct {
	// K selects which nearest neighbor's distance is the rank. The
	// zero value is treated as 1.
	K int
}

func (r KthNN) k() int {
	if r.K < 1 {
		return 1
	}
	return r.K
}

// Name implements Ranker.
func (r KthNN) Name() string { return fmt.Sprintf("%dthNN", r.k()) }

// rankFrom computes the rank from the (distance, ≺)-ordered nearest
// list; shared by the brute and indexed paths.
func (r KthNN) rankFrom(x Point, nearest []Point) float64 {
	k := r.k()
	rank := float64(k-len(nearest)) * MissingNeighborPenalty
	if len(nearest) > 0 {
		rank += x.Dist(nearest[len(nearest)-1])
	}
	return rank
}

// Rank implements Ranker: distance to the k-th nearest neighbor, with a
// MissingNeighborPenalty charge per missing neighbor so that every added
// point strictly lowers an undersupplied rank (smoothness).
func (r KthNN) Rank(x Point, neighbors []Point) float64 {
	return r.rankFrom(x, kNearest(x, neighbors, r.k()))
}

// Support implements Ranker.
func (r KthNN) Support(x Point, neighbors []Point) []Point {
	return kNearest(x, neighbors, r.k())
}

// rankIndexed mirrors rankFrom's arithmetic on the scratch list's
// squared distances (math.Sqrt(d2) ≡ x.Dist(p) bit-for-bit).
func (r KthNN) rankIndexed(x Point, ix *Index, scratch *bestList) float64 {
	k := r.k()
	ix.knnInto(x, k, scratch)
	rank := float64(k-len(scratch.best)) * MissingNeighborPenalty
	if len(scratch.best) > 0 {
		rank += math.Sqrt(scratch.best[len(scratch.best)-1].d2)
	}
	return rank
}

func (r KthNN) supportIndexed(x Point, ix *Index) []Point {
	return ix.KNearest(x, r.k())
}

// CountWithin ranks a point by the inverse of the number of neighbors
// within distance Alpha (Knorr & Ng's DB(α) outliers): R = 1/(1+c) where
// c = |{p : dist(x,p) ≤ α}|. Fewer close neighbors ⇒ higher rank.
// The smallest support set is exactly the neighbors within α — removing
// any of them changes the count and hence the rank.
type CountWithin struct {
	// Alpha is the neighborhood radius.
	Alpha float64
}

// Name implements Ranker.
func (r CountWithin) Name() string { return fmt.Sprintf("DB(%g)", r.Alpha) }

// Rank implements Ranker.
func (r CountWithin) Rank(x Point, neighbors []Point) float64 {
	a2 := r.Alpha * r.Alpha
	count := 0
	for _, p := range neighbors {
		if p.ID != x.ID && x.dist2(p) <= a2 {
			count++
		}
	}
	return 1 / float64(1+count)
}

// Support implements Ranker.
func (r CountWithin) Support(x Point, neighbors []Point) []Point {
	a2 := r.Alpha * r.Alpha
	var within []Point
	for _, p := range neighbors {
		if p.ID != x.ID && x.dist2(p) <= a2 {
			within = append(within, p)
		}
	}
	return within
}

func (r CountWithin) rankIndexed(x Point, ix *Index, _ *bestList) float64 {
	return 1 / float64(1+ix.WithinCount(x, r.Alpha))
}

// supportIndexed returns the same point set as Support; the order differs
// (the index reports (distance, ≺) order, the scan reports input order),
// which is immaterial to every consumer — support sets are unioned into a
// Set immediately.
func (r CountWithin) supportIndexed(x Point, ix *Index) []Point {
	return ix.Within(x, r.Alpha)
}

// distPoint pairs a candidate with its squared distance to the query.
type distPoint struct {
	d2 float64
	p  Point
}

// bestList selects the k candidates nearest a query point under the total
// (distance², ≺) order, by bounded insertion. It is shared by the brute
// linear scan (kNearest) and the spatial index (Index.KNearest) so that
// both produce identical results for identical candidate multisets — the
// order candidates are offered in does not affect the outcome because the
// comparison order is total.
type bestList struct {
	k    int
	best []distPoint
}

func newBestList(k int) *bestList {
	return &bestList{k: k, best: make([]distPoint, 0, k)}
}

// reset empties the list and retargets it to a new k, keeping the
// backing array so batch queries reuse one allocation.
func (b *bestList) reset(k int) {
	b.k = k
	b.best = b.best[:0]
}

// closer reports whether candidate (d2, p) precedes `than` in the
// (distance², ≺) order.
func closer(d2 float64, p Point, than distPoint) bool {
	if d2 != than.d2 {
		return d2 < than.d2
	}
	return Less(p, than.p)
}

// consider offers one candidate at squared distance d2.
func (b *bestList) consider(d2 float64, p Point) {
	if len(b.best) == b.k && !closer(d2, p, b.best[b.k-1]) {
		return
	}
	i := len(b.best)
	if i < b.k {
		b.best = append(b.best, distPoint{})
	} else {
		i = b.k - 1
	}
	for i > 0 && closer(d2, p, b.best[i-1]) {
		b.best[i] = b.best[i-1]
		i--
	}
	b.best[i] = distPoint{d2: d2, p: p}
}

// bound returns the squared distance a new candidate must not exceed to
// possibly enter the list, or +Inf while the list is not yet full. A
// candidate at exactly the bound can still win its tie by ≺, so pruning
// against bound must be strict (prune only when d2 > bound).
func (b *bestList) bound() float64 {
	if len(b.best) < b.k {
		return math.Inf(1)
	}
	return b.best[b.k-1].d2
}

// points extracts the selected points in (distance², ≺) order.
func (b *bestList) points() []Point {
	out := make([]Point, len(b.best))
	for i, dp := range b.best {
		out[i] = dp.p
	}
	return out
}

// kNearest returns the k points of candidates nearest to x, ties broken
// by ≺, in (distance, ≺) order. A candidate carrying x's own ID is
// skipped, so callers may pass sets that still contain x. Selection is
// O(n·k) by bounded insertion over squared distances, which beats a full
// sort (and all the square roots) for the small k the rankers use; for
// large sets the package routes batched queries through Index instead.
func kNearest(x Point, candidates []Point, k int) []Point {
	best := newBestList(k)
	bound := best.bound()
	for _, p := range candidates {
		if p.ID == x.ID {
			continue
		}
		if d2 := x.dist2(p); d2 <= bound {
			best.consider(d2, p)
			bound = best.bound()
		}
	}
	return best.points()
}
