package core

import (
	"fmt"
	"testing"
)

// starMerge drives the exported sufficient-set exchange the way the
// cluster coordinator does: a data-less center against k parties, rounds
// of center→party deltas and party→center deltas against per-link
// ledgers, until a fully quiet round. It returns the center's final
// estimate and the total number of points exchanged in both directions.
func starMerge(t *testing.T, r Ranker, n int, parts [][]Point, maxRounds int) ([]Point, int) {
	t.Helper()
	links := make([]*MergeLink, len(parts))
	ledgers := make([]*Set, len(parts)) // the center's side of each ledger
	for i, pts := range parts {
		links[i] = NewMergeSource(r, n, pts).NewLink()
		ledgers[i] = NewSet()
	}
	cand := NewSet()
	exchanged := 0
	for round := 0; round < maxRounds; round++ {
		quiet := true
		var center *MergeSource
		if cand.Len() > 0 {
			center = NewMergeSource(r, n, cand.Points())
		}
		for i := range parts {
			// Center → party: the center's sufficient delta on this link.
			if center != nil {
				if down := center.Delta(ledgers[i]); len(down) > 0 {
					quiet = false
					exchanged += len(down)
					for _, p := range down {
						ledgers[i].AddMinHop(p)
					}
					links[i].Absorb(down)
				}
			}
			// Party → center: its sufficient delta against the same link.
			if up := links[i].Delta(); len(up) > 0 {
				quiet = false
				exchanged += len(up)
				for _, p := range up {
					ledgers[i].AddMinHop(p)
					cand.AddMinHop(p)
				}
			}
		}
		if quiet {
			return TopN(r, cand, n), exchanged
		}
	}
	t.Fatalf("star merge did not converge in %d rounds", maxRounds)
	return nil, 0
}

// clusteredParts builds sensor-like datasets: every party's readings
// cluster tightly around a shared operating point (the regime the paper
// targets — neighboring sensors measure the same phenomenon) with two
// planted faults. The compaction claim lives here: estimates and support
// sets are small against such windows, so the exchange ships a fraction
// of the union.
func clusteredParts(seed uint64, parties, per int) ([][]Point, *Set) {
	r := rng(seed)
	union := NewSet()
	parts := make([][]Point, parties)
	for i := range parts {
		pts := make([]Point, 0, per+1)
		for s := 0; s < per; s++ {
			pts = append(pts, NewPoint(NodeID(i+1), uint32(s), 0,
				20+r.NormFloat64(), 50+2*r.NormFloat64()))
		}
		switch i {
		case 0:
			pts = append(pts, NewPoint(1, 1000, 0, 55.3, 50)) // stuck-at-rail
		case 1:
			pts = append(pts, NewPoint(2, 1000, 0, -40, 48)) // frozen battery
		}
		parts[i] = pts
		for _, p := range pts {
			union.AddMinHop(p)
		}
	}
	return parts, union
}

// TestMergeSourceStarExact is the core property behind the cluster's
// compact merge: for sensor-like datasets split across 3 parties — with
// and without overlap, mimicking boundary-sensor replication — the star
// exchange converges, the center's estimate equals On over the union,
// and the exchange ships strictly fewer points than the union holds.
func TestMergeSourceStarExact(t *testing.T) {
	for _, rk := range []Ranker{NN(), KNN{K: 3}, CountWithin{Alpha: 2}} {
		for seed := uint64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", rk.Name(), seed), func(t *testing.T) {
				parts, union := clusteredParts(seed, 3, 150)
				// Replicate a slice of one party onto the next (overlap).
				if seed%2 == 0 {
					parts[1] = append(parts[1], parts[0][:50]...)
				}
				got, exchanged := starMerge(t, rk, 4, parts, 32)
				want := TopN(rk, union, 4)
				if !sameIDs(got, want) {
					t.Fatalf("star merge %s != central %s", idList(got), idList(want))
				}
				if exchanged >= union.Len() {
					t.Fatalf("exchanged %d points ≥ union size %d: no compaction", exchanged, union.Len())
				}
			})
		}
	}
}

// TestMergeSourceStarExactUniform runs the exchange on uniform random
// partitions — the adversarial shape for Algorithm 1, where sparse
// candidate pools inflate ranks and the fixed point drags in far more
// support than clustered data needs. Exactness must hold regardless; no
// compaction is claimed here (the cluster layer's round budget and
// full-window fallback own that regime).
func TestMergeSourceStarExactUniform(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rng(seed)
			union := NewSet()
			parts := make([][]Point, 3)
			for i := range parts {
				pts := randPoints(r, NodeID(i+1), 80, 2, 100)
				parts[i] = pts
				for _, p := range pts {
					union.AddMinHop(p)
				}
			}
			got, _ := starMerge(t, KNN{K: 3}, 4, parts, 64)
			want := TopN(KNN{K: 3}, union, 4)
			if !sameIDs(got, want) {
				t.Fatalf("star merge %s != central %s", idList(got), idList(want))
			}
		})
	}
}

// TestMergeSourceHiddenPair pins the counterexample from DESIGN.md that
// makes one-shot top-k merges wrong: a mutually-close isolated pair that
// never enters its party's local top-1 but contains the global top-1.
// The iterated exchange must surface it.
func TestMergeSourceHiddenPair(t *testing.T) {
	mk := func(origin NodeID, seq uint32, x float64) Point {
		return NewPoint(origin, seq, 0, x)
	}
	partA := []Point{mk(1, 0, 0), mk(1, 1, 0.1), mk(1, 2, 50), mk(1, 3, 50.1), mk(1, 4, 50.2), mk(1, 5, 49.9)}
	partB := []Point{mk(2, 0, 50.05), mk(2, 1, 49.95), mk(2, 2, 50.15), mk(2, 3, 80)}
	union := NewSet()
	for _, p := range append(append([]Point{}, partA...), partB...) {
		union.AddMinHop(p)
	}
	got, _ := starMerge(t, NN(), 1, [][]Point{partA, partB}, 32)
	want := TopN(NN(), union, 1)
	if !sameIDs(got, want) {
		t.Fatalf("hidden pair: merge %s != central %s", idList(got), idList(want))
	}
}

// TestMergeSourceDeltaPure checks the resumability contract: Delta never
// mutates the shared ledger, repeats itself until the ledger advances,
// and goes quiet once the ledger covers its sufficient set.
func TestMergeSourceDeltaPure(t *testing.T) {
	r := rng(9)
	src := NewMergeSource(KNN{K: 2}, 3, randPoints(r, 1, 120, 2, 100))
	shared := NewSet()
	first := src.Delta(shared)
	if len(first) == 0 {
		t.Fatal("non-empty source produced an empty first delta")
	}
	if shared.Len() != 0 {
		t.Fatalf("Delta mutated the shared ledger: %d points", shared.Len())
	}
	if again := src.Delta(shared); !sameIDs(first, again) {
		t.Fatalf("repeat delta %s != first %s", idList(again), idList(first))
	}
	for _, p := range first {
		shared.AddMinHop(p)
	}
	if rest := src.Delta(shared); len(rest) != 0 {
		t.Fatalf("delta after full acknowledgement: %s", idList(rest))
	}
}

// TestMergeSourceEmpty covers the degenerate parties: an empty source
// owes nothing, and a star of empty parties converges to an empty
// estimate immediately.
func TestMergeSourceEmpty(t *testing.T) {
	src := NewMergeSource(NN(), 2, nil)
	if d := src.Delta(NewSet()); len(d) != 0 {
		t.Fatalf("empty source delta: %s", idList(d))
	}
	if est := src.Estimate(); len(est) != 0 {
		t.Fatalf("empty source estimate: %s", idList(est))
	}
	got, exchanged := starMerge(t, NN(), 2, [][]Point{nil, nil}, 4)
	if len(got) != 0 || exchanged != 0 {
		t.Fatalf("empty star: estimate %s, %d exchanged", idList(got), exchanged)
	}
}
