package core

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func sampleOutbound() *Outbound {
	p1 := NewPoint(1, 7, 1500*time.Millisecond, 21.5, 3.25, 9)
	p1.Hop = 2
	p2 := NewPoint(40, 0, 0, -1e6)
	return &Outbound{
		From: 1,
		Groups: []Group{
			{To: 2, Points: []Point{p1, p2}},
			{To: 5, Points: []Point{p1}},
			{To: 9, Points: nil},
		},
	}
}

func TestOutboundRoundTrip(t *testing.T) {
	want := sampleOutbound()
	buf, err := EncodeOutbound(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeOutbound(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != want.From || len(got.Groups) != len(want.Groups) {
		t.Fatalf("frame mismatch: %+v", got)
	}
	for gi, g := range want.Groups {
		dg := got.Groups[gi]
		if dg.To != g.To || len(dg.Points) != len(g.Points) {
			t.Fatalf("group %d mismatch: %+v vs %+v", gi, dg, g)
		}
		for pi, p := range g.Points {
			dp := dg.Points[pi]
			if dp.ID != p.ID || dp.Hop != p.Hop || dp.Birth != p.Birth {
				t.Fatalf("point %d/%d mismatch: %+v vs %+v", gi, pi, dp, p)
			}
			for vi, v := range p.Value {
				if dp.Value[vi] != v {
					t.Fatalf("value %d mismatch: %v vs %v", vi, dp.Value[vi], v)
				}
			}
		}
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	o := sampleOutbound()
	buf, err := EncodeOutbound(o)
	if err != nil {
		t.Fatal(err)
	}
	if o.EncodedSize() != len(buf) {
		t.Fatalf("EncodedSize = %d, encoded %d bytes", o.EncodedSize(), len(buf))
	}
	if (*Outbound)(nil).EncodedSize() != 0 {
		t.Fatal("nil packet size")
	}
}

func TestDecodeTruncated(t *testing.T) {
	buf, err := EncodeOutbound(sampleOutbound())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeOutbound(buf[:cut]); err == nil {
			t.Fatalf("decoding %d/%d bytes succeeded", cut, len(buf))
		} else if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: error %v does not wrap ErrTruncated", cut, err)
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	buf, err := EncodeOutbound(sampleOutbound())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeOutbound(append(buf, 0xFF)); err == nil {
		t.Fatal("trailing bytes must fail decoding")
	}
}

func TestEncodeNil(t *testing.T) {
	if _, err := EncodeOutbound(nil); err == nil {
		t.Fatal("encoding nil must fail")
	}
}

func TestPointsRoundTrip(t *testing.T) {
	pts := []Point{
		NewPoint(1, 1, time.Second, 1, 2),
		NewPoint(2, 9, 0, -5),
	}
	buf, err := EncodePoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePoints(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("len %d, want %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i].ID != pts[i].ID || got[i].Value[0] != pts[i].Value[0] {
			t.Fatalf("point %d mismatch", i)
		}
	}
	// Empty list round-trips too.
	buf, err = EncodePoints(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodePoints(buf); err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
}

func TestBirthMillisecondPrecision(t *testing.T) {
	p := NewPoint(1, 1, 1234567*time.Microsecond, 1)
	buf, err := EncodePoints([]Point{p})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePoints(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Birth != 1234*time.Millisecond {
		t.Fatalf("birth = %v, want truncation to 1.234s", got[0].Birth)
	}
}

// TestOutboundRoundTripProperty round-trips randomly generated packets.
func TestOutboundRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed)
		o := &Outbound{From: NodeID(r.IntN(100))}
		for g := 0; g < r.IntN(4); g++ {
			grp := Group{To: NodeID(r.IntN(100))}
			for p := 0; p < r.IntN(6); p++ {
				pt := randPoint(r, NodeID(r.IntN(100)), uint32(r.IntN(1000)), 1+r.IntN(4), 1000)
				pt.Hop = uint8(r.IntN(5))
				pt.Birth = time.Duration(r.IntN(100000)) * time.Millisecond
				grp.Points = append(grp.Points, pt)
			}
			o.Groups = append(o.Groups, grp)
		}
		buf, err := EncodeOutbound(o)
		if err != nil {
			return false
		}
		got, err := DecodeOutbound(buf)
		if err != nil || got.From != o.From || len(got.Groups) != len(o.Groups) {
			return false
		}
		if got.PointCount() != o.PointCount() {
			return false
		}
		for gi := range o.Groups {
			for pi, p := range o.Groups[gi].Points {
				dp := got.Groups[gi].Points[pi]
				if dp.ID != p.ID || dp.Hop != p.Hop || dp.Birth != p.Birth || len(dp.Value) != len(p.Value) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOutboundFor(t *testing.T) {
	o := sampleOutbound()
	if got := o.For(2); len(got) != 2 {
		t.Fatalf("For(2) = %d points, want 2", len(got))
	}
	if got := o.For(77); got != nil {
		t.Fatalf("For(77) = %v, want nil", got)
	}
	if got := (*Outbound)(nil).For(1); got != nil {
		t.Fatal("nil packet For")
	}
}
