package core

import (
	"bytes"
	"testing"
	"time"
)

// encodeState serializes the parts of a detector that the batch-observe
// equivalence claims cover — holdings, own points, estimate, clock and
// sequence counter — into one byte string, so "byte-identical" is checked
// literally through the wire codec rather than by structural comparison.
func encodeState(t *testing.T, d *Detector) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, group := range []struct {
		to  NodeID
		pts []Point
	}{
		{0, d.Holdings().Points()},
		{1, d.OwnPoints().Points()},
		{2, d.Estimate()},
	} {
		b, err := EncodeOutbound(&Outbound{
			From:   d.Node(),
			Groups: []Group{{To: group.to, Points: group.pts}},
		})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	buf.WriteString(d.Now().String())
	buf.WriteByte(byte(d.nextSeq))
	return buf.Bytes()
}

func batchDetector(t *testing.T, neighbors ...NodeID) *Detector {
	t.Helper()
	d, err := NewDetector(Config{
		Node:   1,
		Ranker: KNN{K: 2},
		N:      2,
		Window: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range neighbors {
		d.AddNeighbor(j)
	}
	return d
}

// TestStepObserveBatchMatchesSingles is the batch-observe fast-path
// contract: a burst fed through StepObserveBatch leaves the detector in a
// byte-identical state to the same readings fed one ObservePoint at a
// time, while spending one event (one ranking pass) instead of N.
func TestStepObserveBatchMatchesSingles(t *testing.T) {
	burst := []Observation{
		{Birth: 10 * time.Second, Value: []float64{20.1}},
		{Birth: 11 * time.Second, Value: []float64{19.8}},
		{Birth: 9 * time.Second, Value: []float64{20.4}}, // out of order within the burst
		{Birth: 12 * time.Second, Value: []float64{55.3}},
		{Birth: 12 * time.Second, Value: []float64{20.0}},
	}
	now := 13 * time.Second

	for _, tc := range []struct {
		name      string
		neighbors []NodeID
	}{
		{"isolated", nil},
		{"with-neighbors", []NodeID{2, 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batched := batchDetector(t, tc.neighbors...)
			pts, _ := batched.StepObserveBatch(now, burst)
			if len(pts) != len(burst) {
				t.Fatalf("StepObserveBatch returned %d points, want %d", len(pts), len(burst))
			}

			single := batchDetector(t, tc.neighbors...)
			single.AdvanceTo(now)
			for i, o := range burst {
				single.ObservePoint(NewPoint(single.Node(), uint32(i), o.Birth, o.Value...))
			}

			got, want := encodeState(t, batched), encodeState(t, single)
			if !bytes.Equal(got, want) {
				t.Fatalf("batched state differs from single-observe state:\n got %x\nwant %x", got, want)
			}

			// The point of the fast path: one event, one ranking pass.
			base := len(tc.neighbors) // AddNeighbor events
			if ev := batched.Stats().Events - base; ev != 1 {
				t.Errorf("batched path processed %d events, want 1 (advance folded into one batch event)", ev)
			}
			if ev := single.Stats().Events - base; ev != len(burst) {
				t.Errorf("single path processed %d events, want %d", ev, len(burst))
			}
		})
	}
}

// TestStepObserveBatchEvicts checks the clock advance inside the batch
// path: readings land and expired window contents leave in one event.
func TestStepObserveBatchEvicts(t *testing.T) {
	d := batchDetector(t)
	d.StepObserveBatch(0, []Observation{{Birth: 0, Value: []float64{20}}})
	// Window is 2 min: advancing to 3 min evicts the first point.
	pts, _ := d.StepObserveBatch(3*time.Minute, []Observation{{Birth: 3 * time.Minute, Value: []float64{21}}})
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	if got := d.Holdings().Len(); got != 1 {
		t.Fatalf("holdings length %d after eviction, want 1", got)
	}
	if d.Stats().Evicted != 1 {
		t.Fatalf("Evicted = %d, want 1", d.Stats().Evicted)
	}
}

// TestStepObserveBatchEmpty checks the degenerate cases: an empty batch
// with nothing to evict is a non-event; with something to evict it
// behaves exactly like AdvanceTo.
func TestStepObserveBatchEmpty(t *testing.T) {
	d := batchDetector(t)
	if pts, out := d.StepObserveBatch(time.Second, nil); pts != nil || out != nil {
		t.Fatalf("empty batch with nothing evicted produced pts=%v out=%v", pts, out)
	}
	if ev := d.Stats().Events; ev != 0 {
		t.Fatalf("empty batch counted %d events, want 0", ev)
	}
	d.StepObserveBatch(time.Second, []Observation{{Birth: time.Second, Value: []float64{20}}})
	d.StepObserveBatch(10*time.Minute, nil) // evicts the point
	if got := d.Holdings().Len(); got != 0 {
		t.Fatalf("holdings length %d after empty-batch eviction, want 0", got)
	}
}
