package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDetectorAccessors(t *testing.T) {
	cfg := Config{Node: 42, Ranker: KNN{K: 2}, N: 3, Window: time.Minute}
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if det.Node() != 42 {
		t.Fatalf("Node() = %d", det.Node())
	}
	if got := det.Config(); got.N != 3 || got.Window != time.Minute {
		t.Fatalf("Config() = %+v", got)
	}
	det.AdvanceTo(30 * time.Second)
	if det.Now() != 30*time.Second {
		t.Fatalf("Now() = %v", det.Now())
	}
	// Clocks never run backwards.
	det.AdvanceTo(10 * time.Second)
	if det.Now() != 30*time.Second {
		t.Fatalf("clock regressed to %v", det.Now())
	}
}

func TestOwnPointsVersusHoldings(t *testing.T) {
	det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 1})
	if err != nil {
		t.Fatal(err)
	}
	det.Observe(0, 5)
	det.Receive(2, []Point{NewPoint(2, 0, 0, 7)})
	if det.OwnPoints().Len() != 1 {
		t.Fatalf("D_i = %d, want only the local sample", det.OwnPoints().Len())
	}
	if det.Holdings().Len() != 2 {
		t.Fatalf("P_i = %d, want local + received", det.Holdings().Len())
	}
	// Accessors return copies: mutating them must not corrupt the
	// detector.
	det.Holdings().Remove(PointID{Origin: 1, Seq: 0})
	if det.Holdings().Len() != 2 {
		t.Fatal("Holdings returned shared state")
	}
}

func TestEstimateRankedOrdering(t *testing.T) {
	det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 3})
	if err != nil {
		t.Fatal(err)
	}
	det.ObserveBatch(0, []float64{0}, []float64{1}, []float64{2}, []float64{50}, []float64{100})
	ranked := det.EstimateRanked()
	if len(ranked) != 3 {
		t.Fatalf("got %d ranked outliers", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Rank > ranked[i-1].Rank {
			t.Fatalf("ranks not descending: %v", ranked)
		}
	}
	if ranked[0].Point.Value[0] != 100 && ranked[0].Point.Value[0] != 50 {
		t.Fatalf("top outlier %v", ranked[0].Point)
	}
}

// Property: a detector fed any random batch always produces an estimate
// of size min(N, |P|) and never panics.
func TestEstimateSizeInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed)
		n := 1 + r.IntN(5)
		det, err := NewDetector(Config{Node: 1, Ranker: KNN{K: 1 + r.IntN(3)}, N: n})
		if err != nil {
			return false
		}
		count := r.IntN(12)
		for i := 0; i < count; i++ {
			det.Observe(0, r.Float64()*100, r.Float64()*100)
		}
		want := n
		if count < n {
			want = count
		}
		return len(det.Estimate()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: receive is idempotent — delivering the same packet twice
// leaves holdings identical.
func TestReceiveIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed)
		det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 2})
		if err != nil {
			return false
		}
		det.Observe(0, r.Float64()*10)
		pts := randPoints(r, 2, 1+r.IntN(8), 2, 100)
		det.Receive(2, pts)
		before := det.Holdings()
		det.Receive(2, pts)
		return det.Holdings().EqualIDs(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestConvergenceTrafficScalesWithOutliersNotData checks the paper's
// headline efficiency claim: doubling the inlier bulk must not double
// the traffic, because communication is proportional to the outcome.
func TestConvergenceTrafficScalesWithOutliersNotData(t *testing.T) {
	run := func(bulk int) int {
		r := rng(99)
		net := NewSyncNetwork()
		for id := NodeID(1); id <= 4; id++ {
			det, err := NewDetector(Config{Node: id, Ranker: NN(), N: 2})
			if err != nil {
				t.Fatal(err)
			}
			net.Add(det)
		}
		for id := NodeID(1); id < 4; id++ {
			net.Connect(id, id+1)
		}
		for id := NodeID(1); id <= 4; id++ {
			// A tight inlier cloud per sensor plus one wild point in
			// the whole network.
			vals := make([][]float64, 0, bulk)
			for i := 0; i < bulk; i++ {
				vals = append(vals, []float64{float64(id)*10 + r.Float64()})
			}
			net.ObserveBatch(id, 0, vals...)
		}
		net.Observe(1, 0, 10_000)
		if _, err := net.Settle(100000); err != nil {
			t.Fatal(err)
		}
		return net.PointsSent()
	}
	small := run(10)
	big := run(40)
	if big > small*2 {
		t.Fatalf("traffic grew with data bulk: %d → %d points for 4× the inliers", small, big)
	}
	t.Logf("traffic: %d points at bulk 10 vs %d at bulk 40 (outcome-proportional)", small, big)
}
