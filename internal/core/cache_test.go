package core

import (
	"testing"
	"time"
)

// TestHeldSupporterCache drives a detector through a mixed event sequence
// and checks after every event that the cached-supporter estimate equals
// a fresh TopN over a clone of the holdings — i.e. the version-keyed
// cache never serves a stale ranking.
func TestHeldSupporterCache(t *testing.T) {
	r := rng(31)
	for _, hop := range []int{0, 2} {
		det, err := NewDetector(Config{
			Node: 1, Ranker: KNN{K: 2}, N: 3,
			Window:   30 * time.Second,
			HopLimit: hop,
		})
		if err != nil {
			t.Fatal(err)
		}
		check := func(step string) {
			t.Helper()
			want := TopN(det.Config().Ranker, det.Holdings(), det.Config().N)
			if got := det.Estimate(); !sameIDs(got, want) {
				t.Fatalf("hop=%d %s: cached estimate %s, fresh %s",
					hop, step, idList(got), idList(want))
			}
			ranked := det.EstimateRanked()
			if len(ranked) != len(want) {
				t.Fatalf("hop=%d %s: EstimateRanked len %d, want %d",
					hop, step, len(ranked), len(want))
			}
		}

		det.Start()
		check("start")
		det.AddNeighbor(2)
		check("add neighbor") // no window change: must reuse, still correct
		for s := 0; s < 40; s++ {
			det.StepObserve(time.Duration(s)*time.Second,
				randPoint(r, 1, uint32(s), 2, 100))
			check("observe")
			if s%5 == 0 {
				det.Receive(2, []Point{randPoint(r, 2, uint32(s), 2, 100)})
				check("receive")
			}
			if s%7 == 0 {
				// Redundant receipt: changes nothing, estimate must hold.
				det.Receive(2, []Point{randPoint(r, 1, uint32(s), 2, 100)})
				check("redundant receive")
			}
		}
		det.RemoveNeighbor(2)
		check("remove neighbor")
		det.RemoveOrigin(2)
		check("remove origin")
		det.AdvanceTo(90 * time.Second) // evicts everything
		check("evict all")
	}
}

// TestStrataCacheMatchesFresh pins the semi-global strata cache: a
// detector that has been through window-preserving events (link churn,
// redundant receipts — all cache hits) must send a new neighbor exactly
// the points a churn-free detector with the same window sends. Observes
// and receives in between force rebuilds, so both hit and miss paths are
// exercised.
func TestStrataCacheMatchesFresh(t *testing.T) {
	r := rng(17)
	mk := func() *Detector {
		det, err := NewDetector(Config{Node: 1, Ranker: KNN{K: 2}, N: 3, HopLimit: 2})
		if err != nil {
			t.Fatal(err)
		}
		return det
	}
	churned, fresh := mk(), mk()
	feed := func(step func(d *Detector) *Outbound) {
		t.Helper()
		step(churned)
		step(fresh)
	}
	for s := 0; s < 30; s++ {
		p := randPoint(r, 1, uint32(s), 2, 100)
		feed(func(d *Detector) *Outbound { return d.ObservePoint(p) })
		if s%4 == 0 {
			in := randPoint(r, 2, uint32(s), 2, 100)
			in.Hop = 1
			feed(func(d *Detector) *Outbound { return d.Receive(2, []Point{in}) })
		}
		// Churn only on one detector: these events leave the window
		// untouched, so the churned detector serves them from the strata
		// cache while the fresh one never builds them at this version.
		churned.AddNeighbor(7)
		churned.RemoveNeighbor(7)
	}
	if !churned.held.EqualIDs(fresh.held) {
		t.Fatal("setup bug: windows diverged")
	}
	co, fo := churned.AddNeighbor(9), fresh.AddNeighbor(9)
	if !sameIDs(co.For(9), fo.For(9)) {
		t.Fatalf("cached strata delta %s != fresh %s", idList(co.For(9)), idList(fo.For(9)))
	}
}

// TestStepObserveBatchAssignedSeq checks that observations carrying a
// caller-assigned sequence number mint exactly that identity, that the
// detector's own counter advances past assigned values, and that
// re-delivery of an assigned reading does not duplicate the point.
func TestStepObserveBatchAssignedSeq(t *testing.T) {
	det, err := NewDetector(Config{Node: 7, Ranker: NN(), N: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts, _ := det.StepObserveBatch(0, []Observation{
		{Birth: 0, Value: []float64{1}, Seq: 10, Assigned: true},
		{Birth: 0, Value: []float64{2}, Seq: 4, Assigned: true},
		{Birth: 0, Value: []float64{3}}, // unassigned: takes nextSeq = 11
	})
	want := []PointID{{Origin: 7, Seq: 10}, {Origin: 7, Seq: 4}, {Origin: 7, Seq: 11}}
	for i, id := range want {
		if pts[i].ID != id {
			t.Fatalf("point %d: got %v, want %v", i, pts[i].ID, id)
		}
	}
	if det.Holdings().Len() != 3 {
		t.Fatalf("holdings %d, want 3", det.Holdings().Len())
	}
	// Re-delivery (e.g. a retried cluster READINGS frame): same identity,
	// no duplicate in the window.
	det.StepObserveBatch(0, []Observation{
		{Birth: 0, Value: []float64{1}, Seq: 10, Assigned: true},
	})
	if det.Holdings().Len() != 3 {
		t.Fatalf("holdings after redelivery %d, want 3", det.Holdings().Len())
	}
}

// TestSetVersion pins the mutation-counter contract the supporter cache
// depends on: every content change bumps it, no-ops do not.
func TestSetVersion(t *testing.T) {
	s := NewSet()
	v := s.Version()
	bump := func(op string, mutated bool) {
		t.Helper()
		next := s.Version()
		if mutated && next == v {
			t.Fatalf("%s: version did not advance", op)
		}
		if !mutated && next != v {
			t.Fatalf("%s: version advanced on a no-op", op)
		}
		v = next
	}
	p := NewPoint(1, 1, 0, 5)
	s.Add(p)
	bump("add", true)
	s.AddMinHop(p)
	bump("addminhop duplicate", false)
	worse := p
	worse.Hop = 3
	s.AddMinHop(worse)
	bump("addminhop worse hop", false)
	s.Add(worse)
	bump("add overwrite", true) // held copy's hop changed
	s.SetHop(p.ID, 1)
	bump("sethop lower", true)
	s.SetHop(p.ID, 5)
	bump("sethop higher", false)
	s.EvictBefore(0)
	bump("evict nothing", false)
	s.Remove(p.ID)
	bump("remove", true)
	s.Remove(p.ID)
	bump("remove missing", false)
	var nilSet *Set
	if nilSet.Version() != 0 {
		t.Fatal("nil set version != 0")
	}
}

// BenchmarkEstimateWindowUnchanged quantifies the saved per-ranking-batch
// rebuild (ROADMAP: incremental index reuse): repeated estimates over an
// unchanged window hit the version-keyed supporter cache instead of
// re-snapshotting, re-indexing and re-ranking 2120 points per call —
// the cost the "rebuild" variant pays, as every call did before the cache.
func BenchmarkEstimateWindowUnchanged(b *testing.B) {
	r := rng(8)
	rk := KNN{K: 4}
	det, err := NewDetector(Config{Node: 1, Ranker: rk, N: 4})
	if err != nil {
		b.Fatal(err)
	}
	vals := make([][]float64, 2120)
	for i := range vals {
		vals[i] = []float64{r.Float64() * 10, r.Float64() * 50, r.Float64() * 50}
	}
	det.ObserveBatch(0, vals...)
	set := det.Holdings()
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			det.Estimate()
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			TopN(rk, set, 4)
		}
	})
}

// BenchmarkSemiGlobalLinkEventWindowUnchanged measures the Algorithm 2
// counterpart of the link-event benchmark: with the strata cache, link
// churn on an unchanged window reuses the per-stratum supporters and
// seeds instead of refiltering and reranking every stratum per event.
func BenchmarkSemiGlobalLinkEventWindowUnchanged(b *testing.B) {
	r := rng(11)
	det, err := NewDetector(Config{Node: 1, Ranker: KNN{K: 4}, N: 4, HopLimit: 2})
	if err != nil {
		b.Fatal(err)
	}
	vals := make([][]float64, 2120)
	for i := range vals {
		vals[i] = []float64{r.Float64() * 10, r.Float64() * 50, r.Float64() * 50}
	}
	det.ObserveBatch(0, vals...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.AddNeighbor(NodeID(2 + i%2))
		det.RemoveNeighbor(NodeID(2 + i%2))
	}
}

// BenchmarkLinkEventWindowUnchanged measures a full link-change reaction
// (seed + per-neighbor fixed point) on an unchanged window, where the
// cache reuses the spatial index and ranking batch across events.
func BenchmarkLinkEventWindowUnchanged(b *testing.B) {
	r := rng(9)
	det, err := NewDetector(Config{Node: 1, Ranker: KNN{K: 4}, N: 4})
	if err != nil {
		b.Fatal(err)
	}
	vals := make([][]float64, 2120)
	for i := range vals {
		vals[i] = []float64{r.Float64() * 10, r.Float64() * 50, r.Float64() * 50}
	}
	det.ObserveBatch(0, vals...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.AddNeighbor(NodeID(2 + i%2))
		det.RemoveNeighbor(NodeID(2 + i%2))
	}
}
