package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// line builds 1-d points at the given coordinates, originating at
// distinct sequence numbers of node 1.
func line(coords ...float64) []Point {
	pts := make([]Point, len(coords))
	for i, c := range coords {
		pts[i] = NewPoint(1, uint32(i), 0, c)
	}
	return pts
}

func TestRankerNames(t *testing.T) {
	tests := []struct {
		r    Ranker
		want string
	}{
		{r: NN(), want: "NN"},
		{r: KNN{}, want: "NN"},
		{r: KNN{K: 4}, want: "KNN4"},
		{r: KthNN{K: 3}, want: "3thNN"},
		{r: KthNN{}, want: "1thNN"},
		{r: CountWithin{Alpha: 2.5}, want: "DB(2.5)"},
	}
	for _, tt := range tests {
		if got := tt.r.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestKNNRankHandComputed(t *testing.T) {
	x := NewPoint(9, 0, 0, 0)
	neighbors := line(1, -2, 4, 8)
	tests := []struct {
		name string
		r    Ranker
		want float64
	}{
		{name: "NN", r: NN(), want: 1},
		{name: "KNN2 avg", r: KNN{K: 2}, want: 1.5},
		{name: "KNN3 avg", r: KNN{K: 3}, want: (1 + 2 + 4) / 3.0},
		{name: "2thNN", r: KthNN{K: 2}, want: 2},
		{name: "4thNN", r: KthNN{K: 4}, want: 8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Rank(x, neighbors); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("Rank = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCountWithinRank(t *testing.T) {
	x := NewPoint(9, 0, 0, 0)
	neighbors := line(1, -1, 3, 10)
	r := CountWithin{Alpha: 2}
	if got, want := r.Rank(x, neighbors), 1.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Rank = %v, want %v", got, want)
	}
	if got := r.Rank(x, nil); got != 1 {
		t.Fatalf("isolated point rank = %v, want 1", got)
	}
}

func TestRankInsufficientNeighbors(t *testing.T) {
	x := NewPoint(9, 0, 0, 0)
	one := line(5)
	// Each missing neighbor is charged MissingNeighborPenalty so that
	// small datasets still satisfy the smoothness axiom.
	if got, want := (KNN{K: 3}).Rank(x, one), (2*MissingNeighborPenalty+5)/3; got != want {
		t.Fatalf("KNN3 with one neighbor = %v, want %v", got, want)
	}
	if got, want := (KthNN{K: 2}).Rank(x, one), MissingNeighborPenalty+5; got != want {
		t.Fatalf("KthNN2 with one neighbor = %v, want %v", got, want)
	}
	if got, want := NN().Rank(x, nil), MissingNeighborPenalty; got != want {
		t.Fatalf("NN with no neighbors = %v, want %v", got, want)
	}
	// An undersupplied rank still dominates any realistic supplied rank.
	if (KNN{K: 3}).Rank(x, one) <= (KNN{K: 3}).Rank(x, line(1, 2, 3)) {
		t.Fatal("undersupplied rank must dominate")
	}
}

func TestSupportHandComputed(t *testing.T) {
	x := NewPoint(9, 0, 0, 0)
	neighbors := line(1, -2, 4, 8)
	tests := []struct {
		name string
		r    Ranker
		want []float64 // coordinates of expected support, in order
	}{
		{name: "NN", r: NN(), want: []float64{1}},
		{name: "KNN2", r: KNN{K: 2}, want: []float64{1, -2}},
		{name: "3thNN", r: KthNN{K: 3}, want: []float64{1, -2, 4}},
		{name: "DB(4)", r: CountWithin{Alpha: 4}, want: []float64{1, -2, 4}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.r.Support(x, neighbors)
			if len(got) != len(tt.want) {
				t.Fatalf("support size %d, want %d: %v", len(got), len(tt.want), got)
			}
			for i, w := range tt.want {
				found := false
				for _, p := range got {
					if p.Value[0] == w {
						found = true
					}
				}
				if !found {
					t.Fatalf("support missing coordinate %v (idx %d): %v", w, i, got)
				}
			}
		})
	}
}

func TestKNearestDeterministicTies(t *testing.T) {
	x := NewPoint(9, 0, 0, 0)
	// Two neighbors at identical distance 1; ≺ must break the tie the
	// same way every time.
	a := NewPoint(1, 0, 0, 1)
	b := NewPoint(2, 0, 0, -1)
	first := kNearest(x, []Point{a, b}, 1)
	second := kNearest(x, []Point{b, a}, 1)
	if first[0].ID != second[0].ID {
		t.Fatalf("tie broken inconsistently: %v vs %v", first[0].ID, second[0].ID)
	}
	// ≺ orders by value: -1 < 1.
	if first[0].ID != b.ID {
		t.Fatalf("tie must resolve to ≺-least point, got %v", first[0].ID)
	}
}

func TestKNearestOrdered(t *testing.T) {
	x := NewPoint(9, 0, 0, 0)
	got := kNearest(x, line(8, 1, -2, 4), 3)
	want := []float64{1, -2, 4}
	for i, w := range want {
		if got[i].Value[0] != w {
			t.Fatalf("kNearest[%d] = %v, want %v", i, got[i].Value[0], w)
		}
	}
}

// rankers enumerated for the axiom properties.
func axiomRankers() []Ranker {
	return []Ranker{NN(), KNN{K: 3}, KthNN{K: 2}, CountWithin{Alpha: 15}}
}

// randSplit generates a random Q2 and a random subset Q1 ⊆ Q2.
func randSplit(r *rand.Rand) (q1, q2 []Point) {
	n := 2 + r.IntN(15)
	q2 = randPoints(r, 1, n, 2, 100)
	for _, p := range q2 {
		if r.Float64() < 0.5 {
			q1 = append(q1, p)
		}
	}
	return q1, q2
}

// TestAntiMonotonicityAxiom checks R(x,Q1) ≥ R(x,Q2) for Q1 ⊆ Q2 on all
// rankers (paper §4.1, axiom 1).
func TestAntiMonotonicityAxiom(t *testing.T) {
	for _, rk := range axiomRankers() {
		rk := rk
		t.Run(rk.Name(), func(t *testing.T) {
			f := func(seed uint64) bool {
				r := rng(seed)
				q1, q2 := randSplit(r)
				x := randPoint(r, 2, 0, 2, 100)
				return rk.Rank(x, q1) >= rk.Rank(x, q2)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSmoothnessAxiom checks that whenever R(x,Q1) > R(x,Q2) for Q1 ⊆ Q2,
// some single point z ∈ Q2\Q1 already lowers the rank (paper §4.1,
// axiom 2).
func TestSmoothnessAxiom(t *testing.T) {
	for _, rk := range axiomRankers() {
		rk := rk
		t.Run(rk.Name(), func(t *testing.T) {
			f := func(seed uint64) bool {
				r := rng(seed)
				q1, q2 := randSplit(r)
				x := randPoint(r, 2, 0, 2, 100)
				r1 := rk.Rank(x, q1)
				if r1 <= rk.Rank(x, q2) {
					return true // premise does not hold
				}
				in1 := make(map[PointID]bool, len(q1))
				for _, p := range q1 {
					in1[p.ID] = true
				}
				for _, z := range q2 {
					if in1[z.ID] {
						continue
					}
					if rk.Rank(x, append(append([]Point(nil), q1...), z)) < r1 {
						return true
					}
				}
				return false
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSupportFixesRank checks the defining property of a support set:
// R(x, [P|x]) = R(x, P).
func TestSupportFixesRank(t *testing.T) {
	for _, rk := range axiomRankers() {
		rk := rk
		t.Run(rk.Name(), func(t *testing.T) {
			f := func(seed uint64) bool {
				r := rng(seed)
				neighbors := randPoints(r, 1, 1+r.IntN(20), 2, 100)
				x := randPoint(r, 2, 0, 2, 100)
				sup := rk.Support(x, neighbors)
				return rk.Rank(x, sup) == rk.Rank(x, neighbors)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSupportMinimal verifies by exhaustive subset enumeration on small
// sets that no strictly smaller subset fixes the rank, i.e. Support
// really is the paper's smallest support set.
func TestSupportMinimal(t *testing.T) {
	for _, rk := range axiomRankers() {
		rk := rk
		t.Run(rk.Name(), func(t *testing.T) {
			for seed := uint64(0); seed < 30; seed++ {
				r := rng(seed)
				neighbors := randPoints(r, 1, 1+r.IntN(7), 2, 100)
				x := randPoint(r, 2, 0, 2, 100)
				want := rk.Rank(x, neighbors)
				supSize := len(rk.Support(x, neighbors))
				// Enumerate all subsets smaller than the support.
				n := len(neighbors)
				for mask := 0; mask < 1<<n; mask++ {
					var sub []Point
					for b := 0; b < n; b++ {
						if mask&(1<<b) != 0 {
							sub = append(sub, neighbors[b])
						}
					}
					if len(sub) >= supSize {
						continue
					}
					if rk.Rank(x, sub) == want {
						t.Fatalf("seed %d: subset %v of size %d < %d fixes rank %v",
							seed, idList(sub), len(sub), supSize, want)
					}
				}
			}
		})
	}
}

func TestSupportDoesNotMutateNeighbors(t *testing.T) {
	x := NewPoint(9, 0, 0, 0)
	neighbors := line(8, 1, -2, 4)
	snapshot := idList(neighbors)
	_ = (KNN{K: 2}).Support(x, neighbors)
	_ = (CountWithin{Alpha: 3}).Support(x, neighbors)
	if idList(neighbors) != snapshot {
		t.Fatal("Support reordered the caller's slice")
	}
}
