package core

import (
	"fmt"
	"testing"
	"time"
)

func benchSet(b *testing.B, n int) *Set {
	b.Helper()
	r := rng(uint64(n))
	return NewSet(randPoints(r, 1, n, 3, 100)...)
}

func BenchmarkTopN100(b *testing.B) {
	set := benchSet(b, 100)
	rk := KNN{K: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopN(rk, set, 4)
	}
}

func BenchmarkTopN1000(b *testing.B) {
	set := benchSet(b, 1000)
	rk := KNN{K: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopN(rk, set, 4)
	}
}

// BenchmarkTopNIndexed measures the spatial-index ranking path against
// the brute-force oracle on the same set: the per-point O(n) neighbor
// scan versus the bucketed k-d tree, at the window sizes the centralized
// sink and the global detectors actually rank (53 sensors × w samples).
func BenchmarkTopNIndexed(b *testing.B) {
	for _, n := range []int{530, 2120} {
		set := benchSet(b, n)
		rk := KNN{K: 4}
		b.Run(fmt.Sprintf("index-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				TopN(rk, set, 4)
			}
		})
		b.Run(fmt.Sprintf("brute-%d", n), func(b *testing.B) {
			saved := indexMinPoints
			indexMinPoints = n + 1
			defer func() { indexMinPoints = saved }()
			for i := 0; i < b.N; i++ {
				TopN(rk, set, 4)
			}
		})
	}
}

// BenchmarkLOFScores measures the batch LOF path (index + memoized
// k-distances and lrds) against the naive per-point Score.
func BenchmarkLOFScores(b *testing.B) {
	set := benchSet(b, 530)
	l := LOF{K: 4}
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LOFScores(l, set)
		}
	})
	b.Run("naive", func(b *testing.B) {
		pts := set.Points()
		for i := 0; i < b.N; i++ {
			for _, x := range pts {
				l.Score(x, pts)
			}
		}
	})
}

// BenchmarkIndexBuild isolates construction cost at detector scale.
func BenchmarkIndexBuild(b *testing.B) {
	pts := benchSet(b, 2120).Points()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIndex(pts)
	}
}

func BenchmarkSufficient(b *testing.B) {
	r := rng(9)
	set := benchSet(b, 300)
	shared := set.Filter(func(Point) bool { return r.Float64() < 0.3 })
	rk := KNN{K: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sufficient(rk, set, shared, 4)
	}
}

func BenchmarkDetectorReceive(b *testing.B) {
	r := rng(5)
	det, err := NewDetector(Config{Node: 1, Ranker: KNN{K: 4}, N: 4})
	if err != nil {
		b.Fatal(err)
	}
	det.AddNeighbor(2)
	det.ObserveBatch(0, vectors(r, 50)...)
	incoming := randPoints(r, 2, 10000, 3, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Receive(2, incoming[i%len(incoming):i%len(incoming)+1])
	}
}

func vectors(r interface{ Float64() float64 }, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
	}
	return out
}

func BenchmarkWireRoundTrip(b *testing.B) {
	r := rng(4)
	out := &Outbound{From: 1, Groups: []Group{
		{To: 2, Points: randPoints(r, 1, 6, 3, 100)},
		{To: 3, Points: randPoints(r, 1, 6, 3, 100)},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := EncodeOutbound(out)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeOutbound(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyncRound53 measures one full sampling round of the reference
// runtime at the paper's network size: 53 sensors observe, then the
// network settles to global agreement (KNN, k=4, n=4, 15-sample window).
func BenchmarkSyncRound53(b *testing.B) {
	r := rng(1)
	net := NewSyncNetwork()
	var ids []NodeID
	for i := 1; i <= 53; i++ {
		id := NodeID(i)
		ids = append(ids, id)
		det, err := NewDetector(Config{
			Node: id, Ranker: KNN{K: 4}, N: 4,
			Window: 15*31*time.Second - 15*time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		net.Add(det)
	}
	for i := 0; i < 53; i++ {
		if (i+1)%8 != 0 && i+1 < 53 {
			net.Connect(ids[i], ids[i+1])
		}
		if i+8 < 53 {
			net.Connect(ids[i], ids[i+8])
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		at := time.Duration(n) * 31 * time.Second
		net.AdvanceTo(at)
		for _, id := range ids {
			net.Observe(id, at, r.Float64()*10+20, r.Float64()*50, r.Float64()*50)
		}
		if _, err := net.Settle(10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
