package core

import (
	"testing"
	"time"
)

// buildSemiNetwork assembles and settles a semi-global network over the
// graph with the given hop limit.
func buildSemiNetwork(t *testing.T, seed uint64, nodes, extraEdges, hopLimit, ptsPerNode int, rk Ranker, n int) (*SyncNetwork, geomGraph) {
	t.Helper()
	r := rng(seed)
	g := randConnectedGraph(r, nodes, extraEdges)
	net := buildNetwork(t, r, g, Config{Ranker: rk, N: n, HopLimit: hopLimit}, ptsPerNode)
	return net, g
}

// checkSemiGlobal asserts that every sensor's estimate equals the
// centrally computed On(D≤d) for that sensor.
func checkSemiGlobal(t *testing.T, net *SyncNetwork, rk Ranker, d, n int, label string) {
	t.Helper()
	for _, id := range net.Nodes() {
		want := net.SemiGlobalOutliers(rk, id, d, n)
		got := net.Detector(id).Estimate()
		if !sameIDs(got, want) {
			t.Fatalf("%s: node %d estimate %v, want On(D≤%d) = %v",
				label, id, idList(got), d, idList(want))
		}
	}
}

// TestSemiGlobalPath checks Algorithm 2 on a 5-node path with d = 1:
// each sensor must find the outliers of exactly its 1-hop union, and data
// must never travel farther than one hop.
func TestSemiGlobalPath(t *testing.T) {
	const d = 1
	net := NewSyncNetwork()
	for id := NodeID(1); id <= 5; id++ {
		det, err := NewDetector(Config{Node: id, Ranker: NN(), N: 2, HopLimit: d})
		if err != nil {
			t.Fatal(err)
		}
		net.Add(det)
	}
	for id := NodeID(1); id < 5; id++ {
		net.Connect(id, id+1)
	}
	r := rng(3)
	for id := NodeID(1); id <= 5; id++ {
		base := float64(id) * 10
		net.ObserveBatch(id, 0,
			[]float64{base}, []float64{base + 1}, []float64{base + 2}, []float64{base + 50})
	}
	if _, err := net.Settle(100000); err != nil {
		t.Fatal(err)
	}
	_ = r
	checkSemiGlobal(t, net, NN(), d, 2, "path d=1")

	// Locality: node 1 must hold nothing originating beyond 1 hop.
	net.Detector(1).Holdings().ForEach(func(p Point) {
		if p.ID.Origin > 2 {
			t.Errorf("node 1 holds %v, which is %d hops away", p.ID, p.ID.Origin-1)
		}
	})
}

// semiGlobalAccuracy returns the fraction of sensors whose estimate
// exactly equals the centrally computed On(D≤d).
func semiGlobalAccuracy(net *SyncNetwork, rk Ranker, d, n int) float64 {
	exact := 0
	for _, id := range net.Nodes() {
		want := net.SemiGlobalOutliers(rk, id, d, n)
		if sameIDs(net.Detector(id).Estimate(), want) {
			exact++
		}
	}
	return float64(exact) / float64(len(net.Nodes()))
}

// TestSemiGlobalRandom checks Algorithm 2 against centrally computed
// ground truth on random topologies for hop diameters 1..3 (the paper's
// epsilon range). Unlike the global algorithm, Algorithm 2 carries no
// exactness theorem — and cannot: a neighbor would have to know how a
// third sensor's (unseeable, locality-bounded) data reranks its own
// points. The paper accordingly reports ≈99% accuracy rather than
// proving convergence. We therefore assert a high accuracy floor per
// configuration rather than exactness.
func TestSemiGlobalRandom(t *testing.T) {
	for d := 1; d <= 3; d++ {
		d := d
		for _, rk := range []Ranker{NN(), KNN{K: 4}} {
			rk := rk
			t.Run(rk.Name()+"_d"+string(rune('0'+d)), func(t *testing.T) {
				t.Parallel()
				var sum float64
				const seeds = 6
				for seed := uint64(1); seed <= seeds; seed++ {
					net, _ := buildSemiNetwork(t, seed*100+uint64(d), 5+int(seed), 3, d, 6, rk, 3)
					sum += semiGlobalAccuracy(net, rk, d, 3)
				}
				acc := sum / seeds
				t.Logf("mean exact-node accuracy d=%d %s: %.3f", d, rk.Name(), acc)
				if acc < 0.80 {
					t.Fatalf("accuracy %.3f below floor 0.80", acc)
				}
			})
		}
	}
}

// TestSemiGlobalHopBound verifies that no point ever travels more than d
// hops: every held copy has Hop ≤ d and the hop field is consistent with
// the true topological distance from the origin (it can never understate
// it).
func TestSemiGlobalHopBound(t *testing.T) {
	const d = 2
	net, _ := buildSemiNetwork(t, 42, 9, 4, d, 5, NN(), 2)
	for _, id := range net.Nodes() {
		dist := net.HopDistances(id)
		net.Detector(id).Holdings().ForEach(func(p Point) {
			if int(p.Hop) > d {
				t.Errorf("node %d holds %v with hop %d > d=%d", id, p.ID, p.Hop, d)
			}
			if int(p.Hop) < dist[p.ID.Origin] {
				t.Errorf("node %d holds %v with hop %d but true distance %d",
					id, p.ID, p.Hop, dist[p.ID.Origin])
			}
		})
	}
}

// TestSemiGlobalMatchesGlobalWhenDiameterCovered: with d at least the
// network diameter, the semi-global answer at every node is the global
// answer.
func TestSemiGlobalMatchesGlobalWhenDiameterCovered(t *testing.T) {
	const d = 8 // far beyond the diameter of an 6-node graph
	net, _ := buildSemiNetwork(t, 5, 6, 4, d, 5, NN(), 2)
	want := net.GlobalOutliers(NN(), 2)
	for _, id := range net.Nodes() {
		if got := net.Detector(id).Estimate(); !sameIDs(got, want) {
			t.Fatalf("node %d estimate %v, want global %v", id, idList(got), idList(want))
		}
	}
}

// TestSemiGlobalMinHopReplacement delivers the same point over a long and
// then a short path and checks the held copy's hop drops.
func TestSemiGlobalMinHopReplacement(t *testing.T) {
	det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 1, HopLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	far := NewPoint(9, 0, 0, 42)
	far.Hop = 3
	near := far.Clone()
	near.Hop = 1
	det.Receive(2, []Point{far})
	if got, _ := det.Holdings().Get(far.ID); got.Hop != 3 {
		t.Fatalf("hop = %d, want 3", got.Hop)
	}
	det.Receive(3, []Point{near})
	if got, _ := det.Holdings().Get(far.ID); got.Hop != 1 {
		t.Fatalf("hop after shorter path = %d, want 1", got.Hop)
	}
	// A later, worse copy must not regress the hop.
	det.Receive(4, []Point{far})
	if got, _ := det.Holdings().Get(far.ID); got.Hop != 1 {
		t.Fatalf("hop regressed to %d", got.Hop)
	}
}

// TestSemiGlobalDynamicUpdate injects a fresh extreme outlier after
// convergence. The new point dominates every d-hop neighborhood that can
// see it, so every sensor within d hops of the origin must pick it up.
func TestSemiGlobalDynamicUpdate(t *testing.T) {
	const d = 2
	net, g := buildSemiNetwork(t, 77, 8, 3, d, 5, NN(), 2)
	injected := net.Observe(g.nodes[0], time.Second, 5_000, 5_000)
	if _, err := net.Settle(100000); err != nil {
		t.Fatal(err)
	}
	dist := net.HopDistances(g.nodes[0])
	for _, id := range net.Nodes() {
		if dist[id] > d {
			continue
		}
		found := false
		for _, p := range net.Detector(id).Estimate() {
			if p.ID == injected.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d (%d hops from origin) missed the injected outlier", id, dist[id])
		}
	}
	if acc := semiGlobalAccuracy(net, NN(), d, 2); acc < 0.80 {
		t.Fatalf("post-update accuracy %.3f below floor", acc)
	}
}

// TestSemiGlobalWindowEviction ages data out under Algorithm 2.
func TestSemiGlobalWindowEviction(t *testing.T) {
	const d = 2
	r := rng(99)
	g := randConnectedGraph(r, 7, 3)
	cfg := Config{Ranker: NN(), N: 2, HopLimit: d, Window: 10 * time.Second}
	net := NewSyncNetwork()
	for _, id := range g.nodes {
		c := cfg
		c.Node = id
		det, err := NewDetector(c)
		if err != nil {
			t.Fatal(err)
		}
		net.Add(det)
	}
	for _, e := range g.edges {
		net.Connect(e[0], e[1])
	}
	for _, id := range g.nodes {
		net.Observe(id, 0, r.Float64()*100, r.Float64()*100)
		net.Observe(id, 8*time.Second, r.Float64()*100, r.Float64()*100)
	}
	if _, err := net.Settle(100000); err != nil {
		t.Fatal(err)
	}
	net.AdvanceTo(15 * time.Second)
	if _, err := net.Settle(100000); err != nil {
		t.Fatal(err)
	}
	for _, id := range net.Nodes() {
		net.Detector(id).Holdings().ForEach(func(p Point) {
			if p.Birth < 5*time.Second {
				t.Errorf("node %d holds expired point %v", id, p.ID)
			}
		})
	}
	checkSemiGlobal(t, net, NN(), d, 2, "after eviction")
}
