package core

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
	"time"
)

// rng returns a deterministic PRNG for the given seed.
func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// randPoint builds a point with a random feature vector of the given
// dimension, coordinates uniform in [0, span).
func randPoint(r *rand.Rand, origin NodeID, seq uint32, dim int, span float64) Point {
	vals := make([]float64, dim)
	for i := range vals {
		vals[i] = r.Float64() * span
	}
	return NewPoint(origin, seq, 0, vals...)
}

// randPoints builds count random points originating at the given node.
func randPoints(r *rand.Rand, origin NodeID, count, dim int, span float64) []Point {
	pts := make([]Point, count)
	for i := range pts {
		pts[i] = randPoint(r, origin, uint32(i), dim, span)
	}
	return pts
}

// naiveTopN is an independent reimplementation of On(D): rank every point
// against the rest with a full sort. Used as ground truth for TopN.
func naiveTopN(r Ranker, set *Set, n int) []Point {
	pts := set.Points()
	type ranked struct {
		p    Point
		rank float64
	}
	all := make([]ranked, 0, len(pts))
	for _, x := range pts {
		var others []Point
		for _, p := range pts {
			if p.ID != x.ID {
				others = append(others, p)
			}
		}
		all = append(all, ranked{p: x, rank: r.Rank(x, others)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].rank != all[j].rank {
			return all[i].rank > all[j].rank
		}
		return Less(all[i].p, all[j].p)
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].p
	}
	return out
}

// sameIDs reports whether two point slices carry the same IDs in the same
// order.
func sameIDs(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

// idList formats point IDs for test failure messages.
func idList(pts []Point) string {
	ids := make([]string, len(pts))
	for i, p := range pts {
		ids[i] = p.ID.String()
	}
	return fmt.Sprint(ids)
}

// geomGraph describes a randomly generated connected topology.
type geomGraph struct {
	nodes []NodeID
	edges [][2]NodeID
}

// randConnectedGraph generates a connected graph over n nodes: a random
// spanning tree plus extra random edges for cycles.
func randConnectedGraph(r *rand.Rand, n, extraEdges int) geomGraph {
	g := geomGraph{nodes: make([]NodeID, n)}
	for i := range g.nodes {
		g.nodes[i] = NodeID(i + 1)
	}
	seen := make(map[[2]NodeID]bool)
	addEdge := func(a, b NodeID) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		key := [2]NodeID{a, b}
		if seen[key] {
			return
		}
		seen[key] = true
		g.edges = append(g.edges, key)
	}
	for i := 1; i < n; i++ {
		addEdge(g.nodes[i], g.nodes[r.IntN(i)])
	}
	for i := 0; i < extraEdges; i++ {
		addEdge(g.nodes[r.IntN(n)], g.nodes[r.IntN(n)])
	}
	return g
}

// buildNetwork assembles a SyncNetwork over the graph with one detector
// per node and ptsPerNode random 2-d observations each, then settles it.
func buildNetwork(t *testing.T, r *rand.Rand, g geomGraph, cfg Config, ptsPerNode int) *SyncNetwork {
	t.Helper()
	net := NewSyncNetwork()
	for _, id := range g.nodes {
		c := cfg
		c.Node = id
		det, err := NewDetector(c)
		if err != nil {
			t.Fatalf("NewDetector(%d): %v", id, err)
		}
		net.Add(det)
	}
	for _, e := range g.edges {
		net.Connect(e[0], e[1])
	}
	for _, id := range g.nodes {
		for s := 0; s < ptsPerNode; s++ {
			net.Observe(id, time.Duration(s)*time.Second, r.Float64()*100, r.Float64()*100)
		}
	}
	if _, err := net.Settle(100000); err != nil {
		t.Fatalf("settle: %v", err)
	}
	return net
}
