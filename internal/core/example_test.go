package core_test

import (
	"fmt"
	"time"

	"innet/internal/core"
)

// ExampleTopN computes the top-2 outliers of a small 1-D dataset under
// the average-distance-to-2-nearest-neighbors ranking: the isolated 200,
// then 51 (the lonelier side of the {50, 51} pair).
func ExampleTopN() {
	set := core.NewSet()
	for i, v := range []float64{1, 2, 3, 50, 51, 200} {
		set.Add(core.NewPoint(1, uint32(i), 0, v))
	}
	for _, p := range core.TopN(core.KNN{K: 2}, set, 2) {
		fmt.Println(p.Value[0])
	}
	// Output:
	// 200
	// 51
}

// ExampleDetector wires two detectors by hand: observe, exchange, agree.
func ExampleDetector() {
	a, _ := core.NewDetector(core.Config{Node: 1, Ranker: core.NN(), N: 1})
	b, _ := core.NewDetector(core.Config{Node: 2, Ranker: core.NN(), N: 1})

	a.ObserveBatch(0, []float64{1}, []float64{2}, []float64{3})
	b.ObserveBatch(0, []float64{4}, []float64{5}, []float64{99})

	// Link up starting with a; relay packets until quiescence.
	out := a.AddNeighbor(2)
	for out != nil {
		if out.From == 1 {
			out = b.Receive(1, out.For(2))
		} else {
			out = a.Receive(2, out.For(1))
		}
	}
	fmt.Println(a.Estimate()[0].Value[0], b.Estimate()[0].Value[0])
	// Output: 99 99
}

// ExampleSyncNetwork runs a three-sensor chain with a sliding window.
func ExampleSyncNetwork() {
	net := core.NewSyncNetwork()
	for id := core.NodeID(1); id <= 3; id++ {
		det, _ := core.NewDetector(core.Config{
			Node:   id,
			Ranker: core.NN(),
			N:      1,
			Window: time.Minute,
		})
		net.Add(det)
	}
	net.Connect(1, 2)
	net.Connect(2, 3)

	net.Observe(1, 0, 20.1)
	net.Observe(2, 0, 20.3)
	net.Observe(3, 0, 47.9) // a stuck sensor
	net.Settle(1000)

	est := net.Detector(1).Estimate()
	fmt.Printf("sensor 1 blames sensor %d (%.1f°C)\n", est[0].ID.Origin, est[0].Value[0])

	// An hour later the reading has aged out everywhere.
	net.AdvanceTo(time.Hour)
	net.Settle(1000)
	fmt.Println("held after expiry:", net.Detector(1).Holdings().Len())
	// Output:
	// sensor 1 blames sensor 3 (47.9°C)
	// held after expiry: 0
}
