package core

import (
	"testing"
	"time"
)

func pathNetwork(t *testing.T, n int) *SyncNetwork {
	t.Helper()
	net := NewSyncNetwork()
	for id := NodeID(1); id <= NodeID(n); id++ {
		det, err := NewDetector(Config{Node: id, Ranker: NN(), N: 1})
		if err != nil {
			t.Fatal(err)
		}
		net.Add(det)
	}
	for id := NodeID(1); id < NodeID(n); id++ {
		net.Connect(id, id+1)
	}
	return net
}

func TestHopDistancesOnPath(t *testing.T) {
	net := pathNetwork(t, 5)
	dist := net.HopDistances(1)
	for id := NodeID(1); id <= 5; id++ {
		if dist[id] != int(id)-1 {
			t.Fatalf("dist[%d] = %d, want %d", id, dist[id], id-1)
		}
	}
	dist = net.HopDistances(3)
	if dist[1] != 2 || dist[5] != 2 {
		t.Fatalf("middle node distances wrong: %v", dist)
	}
}

func TestHopDistancesUnreachable(t *testing.T) {
	net := pathNetwork(t, 4)
	net.Disconnect(2, 3)
	dist := net.HopDistances(1)
	if _, ok := dist[3]; ok {
		t.Fatal("node 3 should be unreachable after the cut")
	}
	if net.Connected() {
		t.Fatal("split network reported connected")
	}
}

func TestWithinHops(t *testing.T) {
	net := pathNetwork(t, 5)
	for id := NodeID(1); id <= 5; id++ {
		net.Observe(id, 0, float64(id))
	}
	if _, err := net.Settle(10000); err != nil {
		t.Fatal(err)
	}
	got := net.WithinHops(3, 1)
	if got.Len() != 3 {
		t.Fatalf("D≤1 of middle node has %d points, want 3", got.Len())
	}
	if got := net.WithinHops(1, 0); got.Len() != 1 {
		t.Fatalf("D≤0 must be the node's own data, got %d", got.Len())
	}
	if got := net.WithinHops(1, 10); got.Len() != 5 {
		t.Fatalf("D≤10 must be everything, got %d", got.Len())
	}
}

func TestConnectedTrivial(t *testing.T) {
	net := NewSyncNetwork()
	if !net.Connected() {
		t.Fatal("empty network is vacuously connected")
	}
	det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 1})
	if err != nil {
		t.Fatal(err)
	}
	net.Add(det)
	if !net.Connected() {
		t.Fatal("singleton network is connected")
	}
}

func TestSettleMaxRoundsGuard(t *testing.T) {
	net := pathNetwork(t, 3)
	net.Observe(1, 0, 1)
	net.Observe(1, 0, 100)
	if _, err := net.Settle(0); err == nil {
		t.Fatal("Settle(0) with traffic in flight must error")
	}
}

func TestDisconnectedLinkDropsTraffic(t *testing.T) {
	net := pathNetwork(t, 2)
	// Cut the link, then generate data: groups tagged for the lost
	// neighbor must be dropped, not delivered.
	net.Disconnect(1, 2)
	net.Observe(1, 0, 1)
	if _, err := net.Settle(100); err != nil {
		t.Fatal(err)
	}
	if net.Detector(2).Holdings().Len() != 0 {
		t.Fatal("data crossed a severed link")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	net := NewSyncNetwork()
	det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 1})
	if err != nil {
		t.Fatal(err)
	}
	net.Add(det)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add must panic")
		}
	}()
	net.Add(det)
}

func TestSelfLinkPanics(t *testing.T) {
	net := pathNetwork(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("self link must panic")
		}
	}()
	net.Connect(1, 1)
}

func TestGlobalOutliersGroundTruth(t *testing.T) {
	net := pathNetwork(t, 3)
	net.Observe(1, 0, 0)
	net.Observe(2, 0, 1)
	net.Observe(3, 0, 100)
	got := net.GlobalOutliers(NN(), 1)
	if len(got) != 1 || got[0].Value[0] != 100 {
		t.Fatalf("ground truth = %v", idList(got))
	}
}

func TestNetworkCountsTraffic(t *testing.T) {
	net := pathNetwork(t, 2)
	net.Observe(1, 0, 1)
	net.Observe(2, 0, 2)
	if _, err := net.Settle(1000); err != nil {
		t.Fatal(err)
	}
	if net.PointsSent() == 0 || net.Broadcasts() == 0 {
		t.Fatal("traffic counters did not move")
	}
	if !net.Quiescent() {
		t.Fatal("settled network must be quiescent")
	}
	_ = time.Second
}
