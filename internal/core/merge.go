package core

// This file exports the building block for running Algorithm 1 *between
// processes* instead of between in-memory detectors: a resumable
// sufficient-set exchange over one fixed dataset P and an explicit
// per-link shared ledger. The cluster coordinator drives one exchange
// against every detector shard to merge estimates with O(estimate +
// support) traffic per round instead of shipping whole windows; see
// internal/cluster for the wire protocol and DESIGN.md § Sharded
// cluster for the payload math.

import "slices"

// MergeSource is one party's fixed dataset P in an iterative pairwise
// sufficient-set exchange — the unit of the paper's Algorithm 1 lifted
// out of the detector so any driver (the cluster coordinator, a shard
// server, a test harness) can run the protocol over its own transport.
//
// Construction snapshots P and computes the neighbor-independent seed
// On(P) ∪ [P|On(P)] once, through one supporter (spatial index +
// memoized ranking batch — the same machinery behind the detector's
// per-window supporter cache). Every subsequent Delta call against any
// link's ledger reuses that work, so a source kept across rounds — or
// shared by several concurrent sessions over the same unchanged window
// — answers from cache. After construction a MergeSource is read-only
// and safe for concurrent use.
type MergeSource struct {
	r    Ranker
	n    int
	sup  *supporter
	seed *Set
	pts  []Point
}

// NewMergeSource snapshots pts (which must be duplicate-free by PointID,
// e.g. Set.Points output) as the exchange's dataset P and precomputes
// the Eq. (2) seed for n outliers. The slice is retained and must not be
// mutated afterwards; input not already in ID order is cloned and sorted
// so membership probes can binary-search it.
func NewMergeSource(r Ranker, n int, pts []Point) *MergeSource {
	if !slices.IsSortedFunc(pts, func(a, b Point) int { return idCompare(a.ID, b.ID) }) {
		pts = slices.Clone(pts)
		slices.SortFunc(pts, func(a, b Point) int { return idCompare(a.ID, b.ID) })
	}
	sup := supporterFor(r, pts)
	// seedFrom ranks the whole batch, which builds the spatial index
	// (when the ranker supports one and P is large enough) and memoizes
	// the ranking — the construction does all the mutating work up
	// front, which is what makes Delta safe for concurrent sessions.
	return &MergeSource{r: r, n: n, sup: sup, seed: seedFrom(sup, n), pts: pts}
}

// Len returns |P|.
func (m *MergeSource) Len() int { return len(m.pts) }

// Estimate returns On(P) in (rank desc, ≺) order.
func (m *MergeSource) Estimate() []Point {
	ranked := m.sup.rankAll()
	n := m.n
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		out[i] = ranked[i].Point
	}
	return out
}

// Delta computes the points this party owes the link's peer: the
// sufficient set Z ⊆ P of Eq. (2) against shared — everything already
// exchanged on the link, in either direction — minus shared itself, in
// ID order. An empty delta means this side is quiescent on the link:
// when every party's delta on every link is empty, all parties'
// estimates over their accumulated points equal the global On(∪P)
// (Lemma 3 on the star topology).
//
// Delta does not mutate shared. Callers append the returned points to
// the ledger once the peer has confirmed receipt, so a lost message is
// simply recomputed — the exchange is resumable and idempotent (points
// carry identities and ledgers deduplicate).
func (m *MergeSource) Delta(shared *Set) []Point {
	z := sufficientFrom(m.r, m.sup, m.seed, shared, m.n)
	var delta []Point
	for _, p := range z.Points() {
		if !shared.Contains(p.ID) {
			delta = append(delta, p)
		}
	}
	return delta
}

// MergeLink is one party's resumable state for a single exchange link:
// the growing dataset P (the source snapshot plus everything absorbed
// from the peer — Algorithm 1 folds receipts into P_i before reacting,
// and the Eq. (2) support lookups must run over the grown set or a
// peer's candidate can never be refuted by local context), the shared
// ledger D(i→j) ∪ D(j→i), and the source rebuilt only when P actually
// grew. Until the first novel absorb, Delta answers straight from the
// shared (possibly cached) base source. MergeLink is not safe for
// concurrent use; drivers serialize per link.
type MergeLink struct {
	src    *MergeSource
	p      *Set // nil until a received point falls outside the base snapshot
	shared *Set
	dirty  bool
}

// NewLink starts a fresh exchange over this source's dataset with an
// empty ledger. Many links may share one base source; each link clones
// the dataset lazily, only if the peer ever contributes a novel point.
func (m *MergeSource) NewLink() *MergeLink {
	return &MergeLink{src: m, shared: NewSet()}
}

// Absorb records points received from the peer into the shared ledger
// and into P, reporting how many were previously unknown to P. It is
// idempotent: re-delivered points change nothing.
func (l *MergeLink) Absorb(pts []Point) int {
	added := 0
	for _, p := range pts {
		l.shared.AddMinHop(p)
		if l.p == nil {
			if l.src.has(p.ID) {
				continue
			}
			l.p = NewSet(l.src.pts...)
		}
		if a, _ := l.p.AddMinHop(p); a {
			added++
		}
	}
	if added > 0 {
		l.dirty = true
	}
	return added
}

// Delta computes the sufficient delta owed to the peer (see
// MergeSource.Delta) over the link's grown dataset and records it in the
// shared ledger. Callers that must reply idempotently under retry cache
// the returned slice per round rather than calling Delta again.
func (l *MergeLink) Delta() []Point {
	if l.dirty {
		l.src = NewMergeSource(l.src.r, l.src.n, l.p.Points())
		l.dirty = false
	}
	delta := l.src.Delta(l.shared)
	for _, p := range delta {
		l.shared.AddMinHop(p)
	}
	return delta
}

// has reports whether the base snapshot holds the given ID. The snapshot
// is in ID order (Set.Points), so a binary search avoids materializing a
// set per link.
func (m *MergeSource) has(id PointID) bool {
	lo, hi := 0, len(m.pts)
	for lo < hi {
		mid := (lo + hi) / 2
		if c := idCompare(m.pts[mid].ID, id); c < 0 {
			lo = mid + 1
		} else if c > 0 {
			hi = mid
		} else {
			return true
		}
	}
	return false
}
