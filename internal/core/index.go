package core

import (
	"slices"
)

// Index is a static spatial index over a snapshot of points: a bucketed
// k-d tree (internal nodes split the widest feature axis at the median,
// leaves hold small buckets that are scanned linearly, so the structure
// behaves like an adaptive grid near the bottom). It answers the two
// neighbor queries every ranker in this package is built from —
// k-nearest (KNN, KthNN, LOF) and fixed-radius (CountWithin) — in
// O(log n + k) expected time instead of the O(n) scan.
//
// Construction never moves Point structs: the tree orders an int32
// permutation over a flat, zero-padded coordinate matrix, which keeps the
// build allocation-light and free of write barriers (sorting []Point
// directly costs ~70 bytes of typedmemmove per swap and dominated the
// profile of an earlier version).
//
// Correctness contract: queries return exactly what the brute-force scan
// over the same snapshot returns, including ties. Candidate selection
// goes through the same bestList comparator as kNearest ((distance², ≺),
// a total order — so the order candidates are visited in cannot matter),
// actual distances are computed with the same Point.dist2, and tree
// pruning is conservative at equal distance (a subtree whose best
// possible distance ties the current bound is still visited, because a
// point there can win the tie under ≺). The index never prunes by
// feature dimensions it did not see at build time: splitting planes only
// exist for axes < dims, and any query coordinate beyond that
// contributes through dist2 directly. Points of mixed dimension are
// handled by the same implicit zero-padding as Point.Dist.
//
// An Index is immutable after construction and safe for concurrent use.
type Index struct {
	pts    []Point   // snapshot (caller order, never reordered)
	order  []int32   // tree-ordered permutation of pts indices
	coords []float64 // zero-padded n×dims coordinate matrix
	nodes  []kdNode  // nodes[0] is the root when len(pts) > 0
	dims   int       // max feature dimension seen at build time
}

// kdNode is one tree node covering order[lo:hi). Leaves have left < 0.
type kdNode struct {
	lo, hi      int32
	left, right int32   // child node indices, -1 for leaves
	axis        int32   // split axis (internal nodes)
	split       float64 // split coordinate (internal nodes)
}

// indexLeafSize is the bucket size below which subtrees stay linear; the
// bounded-insertion scan beats tree bookkeeping on buckets this small.
const indexLeafSize = 16

// NewIndex builds an index over a copy of pts; the input slice is not
// modified and later mutation of it does not affect the index.
func NewIndex(pts []Point) *Index {
	ix := &Index{pts: make([]Point, len(pts))}
	copy(ix.pts, pts)
	for _, p := range ix.pts {
		if len(p.Value) > ix.dims {
			ix.dims = len(p.Value)
		}
	}
	n := len(ix.pts)
	if n == 0 {
		return ix
	}
	ix.coords = make([]float64, n*ix.dims)
	for i, p := range ix.pts {
		copy(ix.coords[i*ix.dims:(i+1)*ix.dims], p.Value)
	}
	ix.order = make([]int32, n)
	for i := range ix.order {
		ix.order[i] = int32(i)
	}
	ix.build(0, int32(n))
	return ix
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pts) }

// at returns the zero-padded coordinate d of point i.
func (ix *Index) at(i int32, d int32) float64 {
	return ix.coords[int(i)*ix.dims+int(d)]
}

// build constructs the subtree over order[lo:hi) and returns its index.
func (ix *Index) build(lo, hi int32) int32 {
	id := int32(len(ix.nodes))
	ix.nodes = append(ix.nodes, kdNode{lo: lo, hi: hi, left: -1, right: -1})
	if hi-lo <= indexLeafSize {
		return id
	}
	// Split the axis with the widest spread at the median.
	axis, spread := int32(0), -1.0
	for d := int32(0); d < int32(ix.dims); d++ {
		min, max := ix.at(ix.order[lo], d), ix.at(ix.order[lo], d)
		for _, i := range ix.order[lo+1 : hi] {
			c := ix.at(i, d)
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if s := max - min; s > spread {
			axis, spread = d, s
		}
	}
	if spread <= 0 {
		// All points coincide on every axis; a split cannot separate
		// anything, so keep an oversized leaf (duplicate-heavy inputs).
		return id
	}
	sub := ix.order[lo:hi]
	slices.SortFunc(sub, func(a, b int32) int {
		ca, cb := ix.at(a, axis), ix.at(b, axis)
		switch {
		case ca < cb:
			return -1
		case ca > cb:
			return 1
		default:
			return 0
		}
	})
	mid := lo + (hi-lo)/2
	// Points equal to the median coordinate may sit on both sides; the
	// search handles that by pruning on plane distance, not membership.
	ix.nodes[id].axis = axis
	ix.nodes[id].split = ix.at(ix.order[mid], axis)
	left := ix.build(lo, mid)
	right := ix.build(mid, hi)
	ix.nodes[id].left = left
	ix.nodes[id].right = right
	return id
}

// KNearest returns the k indexed points nearest to x under the
// (distance, ≺) order, excluding any point carrying x's own ID — exactly
// kNearest(x, snapshot, k).
func (ix *Index) KNearest(x Point, k int) []Point {
	best := newBestList(k)
	ix.knnInto(x, k, best)
	return best.points()
}

// knnInto resets best to k slots and runs the k-nearest traversal into
// it, allocating nothing beyond best's own (reusable) backing array.
func (ix *Index) knnInto(x Point, k int, best *bestList) {
	best.reset(k)
	if k <= 0 || len(ix.pts) == 0 {
		return
	}
	ix.knn(0, x, best)
}

func (ix *Index) knn(node int32, x Point, best *bestList) {
	n := &ix.nodes[node]
	if n.left < 0 {
		// Pre-filtering on the current bound skips the consider call —
		// and its tie-break logic — for the overwhelming majority of
		// candidates. Candidates at d2 == bound still go through
		// consider, which resolves the tie by ≺ exactly as the brute
		// scan does.
		bound := best.bound()
		for _, i := range ix.order[n.lo:n.hi] {
			p := ix.pts[i]
			if p.ID == x.ID {
				continue
			}
			if d2 := x.dist2(p); d2 <= bound {
				best.consider(d2, p)
				bound = best.bound()
			}
		}
		return
	}
	d := coordOf(x, n.axis) - n.split
	near, far := n.left, n.right
	if d > 0 {
		near, far = far, near
	}
	ix.knn(near, x, best)
	// A far-side point is at least |d| from x along the split axis. At
	// exactly the bound it can still win a tie by ≺, hence <=.
	if d*d <= best.bound() {
		ix.knn(far, x, best)
	}
}

// coordOf returns the query point's coordinate under the zero-padding
// convention Point.dist2 uses for mixed dimensions.
func coordOf(x Point, d int32) float64 {
	if int(d) < len(x.Value) {
		return x.Value[d]
	}
	return 0
}

// WithinCount returns |{p : dist(x, p) ≤ alpha}| over the indexed points,
// excluding x's own ID — the count CountWithin.Rank is defined on.
func (ix *Index) WithinCount(x Point, alpha float64) int {
	if len(ix.pts) == 0 || alpha < 0 {
		return 0
	}
	count := 0
	ix.within(0, x, alpha*alpha, func(Point, float64) { count++ })
	return count
}

// Within returns the indexed points with dist(x, p) ≤ alpha, excluding
// x's own ID, in (distance, ≺) order.
func (ix *Index) Within(x Point, alpha float64) []Point {
	if len(ix.pts) == 0 || alpha < 0 {
		return nil
	}
	var hits []distPoint
	ix.within(0, x, alpha*alpha, func(p Point, d2 float64) {
		hits = append(hits, distPoint{d2: d2, p: p})
	})
	slices.SortFunc(hits, func(a, b distPoint) int {
		switch {
		case closer(a.d2, a.p, b):
			return -1
		case closer(b.d2, b.p, a):
			return 1
		default:
			return 0
		}
	})
	out := make([]Point, len(hits))
	for i, h := range hits {
		out[i] = h.p
	}
	return out
}

func (ix *Index) within(node int32, x Point, a2 float64, emit func(Point, float64)) {
	n := &ix.nodes[node]
	if n.left < 0 {
		for _, i := range ix.order[n.lo:n.hi] {
			p := ix.pts[i]
			if p.ID == x.ID {
				continue
			}
			if d2 := x.dist2(p); d2 <= a2 {
				emit(p, d2)
			}
		}
		return
	}
	d := coordOf(x, n.axis) - n.split
	near, far := n.left, n.right
	if d > 0 {
		near, far = far, near
	}
	ix.within(near, x, a2, emit)
	// Points at exactly radius alpha qualify (≤), hence <=.
	if d*d <= a2 {
		ix.within(far, x, a2, emit)
	}
}
