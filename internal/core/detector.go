package core

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Config parameterizes a Detector.
type Config struct {
	// Node is the identifier of the sensor this detector runs on.
	Node NodeID

	// Ranker is the outlier ranking function R. Required.
	Ranker Ranker

	// N is the number of outliers to detect (the paper's n). Required,
	// must be positive.
	N int

	// Window is the length of the time-based sliding window of §5.3.
	// Zero means no window: points are kept forever.
	Window time.Duration

	// HopLimit is the paper's hop diameter d for semi-global detection
	// (Algorithm 2): each sensor detects outliers over the data sampled
	// within HopLimit hops. Zero selects the global algorithm
	// (Algorithm 1), i.e. d = ∞.
	HopLimit int

	// TrackRedundant, when set, records points received from a neighbor
	// in the D(j→i) ledger even when the point is already held. The
	// paper's Algorithm 1 only records previously-unseen points; the
	// extra bookkeeping is sound (the neighbor provably has the point)
	// and suppresses some redundant retransmissions on cyclic
	// topologies. Kept as an option so the ablation benchmark can
	// quantify the difference; off reproduces the paper exactly.
	TrackRedundant bool

	// DisableFixedPoint skips the Eq. (2) fixed-point closure and sends
	// only the naive seed On(P) ∪ [P|On(P)] to each neighbor. This
	// violates Lemma 3 — the network can go quiescent with sensors
	// disagreeing — and exists only so the ablation benchmark can
	// quantify what the fixed point buys.
	DisableFixedPoint bool

	// LiteralHopFilter selects the hop cutoff applied to the per-link
	// ledgers inside the stratum-h fixed point of Algorithm 2. The
	// ledgers store hop fields post-increment (the hop a point has at
	// the receiver), so the paper's literal D^{i,≤h} filter leaves the
	// stratum-0 shared set permanently empty and the Eq. (2) fixed
	// point never adapts to the neighbor's data. By default this
	// implementation therefore filters at ≤ h+1 — the receiver's frame
	// — which makes each stratum behave like the global algorithm run
	// pairwise, as §6.1 describes ("in essence, the global outlier
	// detection algorithm is applied"). Set LiteralHopFilter to follow
	// the pseudo-code to the letter instead; the ablation benchmark
	// quantifies the accuracy difference.
	LiteralHopFilter bool
}

func (c Config) validate() error {
	if c.Ranker == nil {
		return errors.New("core: Config.Ranker is required")
	}
	if c.N < 1 {
		return fmt.Errorf("core: Config.N must be positive, got %d", c.N)
	}
	if c.HopLimit < 0 {
		return fmt.Errorf("core: Config.HopLimit must be non-negative, got %d", c.HopLimit)
	}
	if c.HopLimit > 250 {
		return fmt.Errorf("core: Config.HopLimit %d exceeds the hop-field range", c.HopLimit)
	}
	if c.Window < 0 {
		return fmt.Errorf("core: Config.Window must be non-negative, got %v", c.Window)
	}
	return nil
}

// Group is the portion of a broadcast packet tagged for one recipient.
type Group struct {
	To     NodeID
	Points []Point
}

// Outbound is the single packet M of Algorithm 1: because wireless
// transmission is inherently broadcast, all points destined to all
// immediate neighbors are accumulated into one packet, each tagged with
// its recipient ID. A neighbor that finds no group tagged with its own ID
// does not regard receipt as an event.
type Outbound struct {
	From   NodeID
	Groups []Group
}

// PointCount returns the total number of (recipient, point) pairs carried.
func (o *Outbound) PointCount() int {
	if o == nil {
		return 0
	}
	total := 0
	for _, g := range o.Groups {
		total += len(g.Points)
	}
	return total
}

// For returns the points tagged for the given node, or nil.
func (o *Outbound) For(node NodeID) []Point {
	if o == nil {
		return nil
	}
	for _, g := range o.Groups {
		if g.To == node {
			return g.Points
		}
	}
	return nil
}

// Stats counts detector activity, used by the experiments and the §5.1
// communication-cost comparison.
type Stats struct {
	// Events is the number of events processed (init, data change,
	// receipt, link change, window eviction).
	Events int
	// Broadcasts is the number of non-empty packets produced.
	Broadcasts int
	// PointsSent is the total number of (recipient, point) pairs sent.
	PointsSent int
	// PointsReceived is the total number of points received.
	PointsReceived int
	// Evicted is the number of points aged out of the sliding window.
	Evicted int
}

// Detector implements the per-sensor state machine of the paper's global
// (Algorithm 1) and semi-global (Algorithm 2) in-network outlier
// detection. It is a pure state machine: every event method returns the
// packet to broadcast (nil when there is nothing to send) and performs no
// I/O, no locking and no timekeeping of its own.
//
// Detector is not safe for concurrent use; drivers own synchronization
// (internal/peer wraps it in a single goroutine per sensor).
type Detector struct {
	cfg     Config
	now     time.Duration
	nextSeq uint32

	own  *Set // D_i: points sampled by this sensor
	held *Set // P_i: everything currently held

	sent map[NodeID]*Set // D(i→j): points sent to each neighbor
	recv map[NodeID]*Set // D(j→i): points received from each neighbor

	// heldSup caches the ranking supporter (window snapshot, spatial
	// index, ranking batch) over P_i, keyed on the window's mutation
	// version: events that leave P_i unchanged — link changes, receipts
	// of already-held points, repeated Estimate calls — reuse the index
	// and the ranked batch instead of rebuilding both per ranking pass.
	heldSup  *supporter
	heldSupV uint64

	// strata is the semi-global (HopLimit > 0) counterpart of heldSup:
	// the hop strata P≤h with their supporters and Eq. (2) seeds, keyed
	// on the same window version. The strata are pure derivations of
	// P_i (filter by hop, rank, seed), so any event that leaves the
	// window unchanged reuses them wholesale.
	strata  []stratum
	strataV uint64

	stats Stats
}

// NewDetector validates cfg and returns a detector with no neighbors and
// no data. Call Start to process the paper's initialization event once
// neighbors are configured.
func NewDetector(cfg Config) (*Detector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Detector{
		cfg:  cfg,
		own:  NewSet(),
		held: NewSet(),
		sent: make(map[NodeID]*Set),
		recv: make(map[NodeID]*Set),
	}, nil
}

// Node returns the sensor ID the detector runs on.
func (d *Detector) Node() NodeID { return d.cfg.Node }

// Config returns the configuration the detector was built with.
func (d *Detector) Config() Config { return d.cfg }

// Stats returns a snapshot of the activity counters.
func (d *Detector) Stats() Stats { return d.stats }

// Now returns the detector's current clock reading.
func (d *Detector) Now() time.Duration { return d.now }

// NextSeq returns the sequence number the next unassigned observation
// would mint.
func (d *Detector) NextSeq() uint32 { return d.nextSeq }

// ReserveSeq raises the per-sensor sequence counter so the next
// unassigned observation mints at least seq. A warm restart uses this to
// restore the identity floor past points whose records already aged out
// of the persisted window — without it, a replayed detector could
// re-mint a PointID it issued before the restart. Lowering the counter
// is impossible; a floor at or below the current counter is a no-op.
func (d *Detector) ReserveSeq(seq uint32) {
	if seq > d.nextSeq {
		d.nextSeq = seq
	}
}

// Neighbors returns the current immediate neighborhood Γ_i, sorted.
func (d *Detector) Neighbors() []NodeID {
	ids := make([]NodeID, 0, len(d.sent))
	for id := range d.sent {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Holdings returns a copy of P_i, the set of all points currently held.
func (d *Detector) Holdings() *Set { return d.held.Clone() }

// OwnPoints returns a copy of D_i, the points sampled by this sensor.
func (d *Detector) OwnPoints() *Set { return d.own.Clone() }

// heldSupporter returns the cached supporter over P_i, rebuilding it only
// when the window content has changed since it was built.
func (d *Detector) heldSupporter() *supporter {
	if d.heldSup == nil || d.heldSupV != d.held.Version() {
		d.heldSup = newSupporter(d.cfg.Ranker, d.held)
		d.heldSupV = d.held.Version()
	}
	return d.heldSup
}

// Estimate returns the sensor's current outlier estimate On(P_i) in
// (rank desc, ≺) order.
func (d *Detector) Estimate() []Point {
	ranked := d.heldSupporter().rankAll()
	n := d.cfg.N
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		out[i] = ranked[i].Point
	}
	return out
}

// EstimateRanked returns the current estimate with rank values attached.
func (d *Detector) EstimateRanked() []Ranked {
	ranked := d.heldSupporter().rankAll()
	n := d.cfg.N
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]Ranked, n)
	copy(out, ranked[:n])
	return out
}

// Start processes the paper's event (i): algorithm initialization. It
// must be called after the initial neighborhood is configured.
func (d *Detector) Start() *Outbound {
	d.stats.Events++
	return d.react()
}

// AddNeighbor processes a link-up event for neighbor j (paper event iv).
// Adding an already-present neighbor is a no-op returning nil.
func (d *Detector) AddNeighbor(j NodeID) *Outbound {
	if _, ok := d.sent[j]; ok {
		return nil
	}
	d.sent[j] = NewSet()
	d.recv[j] = NewSet()
	d.stats.Events++
	return d.react()
}

// RemoveNeighbor processes a link-down event for neighbor j (paper event
// iv): the per-link ledgers are dropped, while points already received
// from j remain held and age out of the sliding window as §5.3 suggests.
// Removing an unknown neighbor is a no-op returning nil.
func (d *Detector) RemoveNeighbor(j NodeID) *Outbound {
	if _, ok := d.sent[j]; !ok {
		return nil
	}
	delete(d.sent, j)
	delete(d.recv, j)
	d.stats.Events++
	return d.react()
}

// Observe samples a new data point with the given feature vector at time
// birth, assigning the next per-sensor sequence number (paper event ii:
// D_i changes). It returns the sampled point and the packet to broadcast.
func (d *Detector) Observe(birth time.Duration, value ...float64) (Point, *Outbound) {
	p := NewPoint(d.cfg.Node, d.nextSeq, birth, value...)
	d.nextSeq++
	return p, d.ObservePoint(p)
}

// ObserveBatch samples one point per feature vector, all stamped with the
// same birth time, and processes a single data-change event for the whole
// batch. Loading initial datasets through ObserveBatch matches the
// paper's model, where a change to D_i — of any size — is one event.
func (d *Detector) ObserveBatch(birth time.Duration, values ...[]float64) ([]Point, *Outbound) {
	pts := make([]Point, len(values))
	for i, v := range values {
		p := NewPoint(d.cfg.Node, d.nextSeq, birth, v...)
		d.nextSeq++
		d.own.Add(p)
		d.held.Add(p)
		pts[i] = p
	}
	d.stats.Events++
	return pts, d.react()
}

// ObservePoint adds a pre-built point sampled by this sensor to D_i and
// processes the data-change event. The point's origin must be this node.
func (d *Detector) ObservePoint(p Point) *Outbound {
	if p.ID.Origin != d.cfg.Node {
		panic(fmt.Sprintf("core: ObservePoint origin %d on node %d", p.ID.Origin, d.cfg.Node))
	}
	p.Hop = 0
	if p.ID.Seq >= d.nextSeq {
		d.nextSeq = p.ID.Seq + 1
	}
	d.own.Add(p)
	d.held.Add(p)
	d.stats.Events++
	return d.react()
}

// Receive processes the points tagged for this sensor in a packet from
// neighbor j (paper event iii). Points from unknown neighbors establish
// the link first, mirroring the paper's treatment of sensor addition.
// A receipt that changes no state — every point already held, at an
// equal-or-better hop count — provably produces the identical (empty)
// reaction, so the recomputation is skipped.
func (d *Detector) Receive(from NodeID, pts []Point) *Outbound {
	if len(pts) == 0 {
		return nil
	}
	if _, ok := d.sent[from]; !ok {
		d.sent[from] = NewSet()
		d.recv[from] = NewSet()
	}
	d.stats.Events++
	d.stats.PointsReceived += len(pts)
	var changed bool
	if d.cfg.HopLimit > 0 {
		changed = d.receiveSemiGlobal(from, pts)
	} else {
		changed = d.receiveGlobal(from, pts)
	}
	if !changed {
		return nil
	}
	return d.react()
}

// receiveGlobal is the update step of Algorithm 1: only points not
// already held are added to P_i and recorded in D(j→i). It reports
// whether any state changed.
func (d *Detector) receiveGlobal(from NodeID, pts []Point) bool {
	changed := false
	for _, p := range pts {
		if d.held.Contains(p.ID) {
			if d.cfg.TrackRedundant && d.recv[from].Add(p) {
				changed = true
			}
			continue
		}
		d.held.Add(p)
		d.recv[from].Add(p)
		changed = true
	}
	return changed
}

// receiveSemiGlobal is the update step of Algorithm 2: a point replaces a
// held copy only when it traveled fewer hops, in which case every ledger's
// copy is lowered too ("updating as needed D_i and D(f→i) for each f").
// It reports whether any state changed.
func (d *Detector) receiveSemiGlobal(from NodeID, pts []Point) bool {
	changed := false
	for _, p := range pts {
		held, ok := d.held.Get(p.ID)
		switch {
		case !ok:
			d.held.Add(p)
			d.recv[from].AddMinHop(p)
			changed = true
		case p.Hop < held.Hop:
			d.held.Add(p)
			for _, ledger := range d.recv {
				ledger.SetHop(p.ID, p.Hop)
			}
			d.recv[from].AddMinHop(p)
			changed = true
		case d.cfg.TrackRedundant:
			added, lowered := d.recv[from].AddMinHop(p)
			if added || lowered {
				changed = true
			}
		}
	}
	return changed
}

// AdvanceTo moves the detector clock to now and evicts points that have
// aged out of the sliding window (§5.3). Evictions count as a data-change
// event; with nothing evicted there is nothing to send.
func (d *Detector) AdvanceTo(now time.Duration) *Outbound {
	if !d.advance(now) {
		return nil
	}
	d.stats.Events++
	return d.react()
}

// advance performs the clock move and window eviction, reporting whether
// anything was evicted.
func (d *Detector) advance(now time.Duration) bool {
	if now > d.now {
		d.now = now
	}
	if d.cfg.Window <= 0 {
		return false
	}
	cutoff := d.now - d.cfg.Window
	// P_i holds every point (own included), so its eviction count is
	// the authoritative one; the other books are subsets.
	evicted := d.held.EvictBefore(cutoff)
	d.own.EvictBefore(cutoff)
	for _, s := range d.sent {
		s.EvictBefore(cutoff)
	}
	for _, s := range d.recv {
		s.EvictBefore(cutoff)
	}
	d.stats.Evicted += evicted
	return evicted > 0
}

// StepObserve advances the clock (evicting expired window contents) and
// records one new observation, all as a single data-change event with a
// single reaction. Sensors sampling on a period use this instead of
// AdvanceTo followed by ObservePoint: the paper's event model treats any
// change to D_i as one event, and reacting once to the combined change
// avoids broadcasting an interim estimate that the very next event would
// supersede.
func (d *Detector) StepObserve(now time.Duration, p Point) *Outbound {
	if p.ID.Origin != d.cfg.Node {
		panic(fmt.Sprintf("core: StepObserve origin %d on node %d", p.ID.Origin, d.cfg.Node))
	}
	d.advance(now)
	p.Hop = 0
	if p.ID.Seq >= d.nextSeq {
		d.nextSeq = p.ID.Seq + 1
	}
	d.own.Add(p)
	d.held.Add(p)
	d.stats.Events++
	return d.react()
}

// Observation is one raw reading of a batch: the sample timestamp and the
// feature vector, before a Point identity is assigned. It is the unit the
// streaming ingestion layer (internal/ingest) queues per sensor.
//
// When Assigned is set, the reading carries a caller-chosen sequence
// number instead of taking the detector's next one. The cluster
// coordinator uses this to stamp every reading with a deterministic
// identity before fanning it out, so replica shards — which may see
// different subsets and orderings under UDP loss — still mint identical
// PointIDs for the same reading and the merged estimate deduplicates
// instead of double-counting.
type Observation struct {
	Birth time.Duration
	Value []float64

	Seq      uint32
	Assigned bool
}

// StepObserveBatch advances the clock (evicting expired window contents)
// and records a burst of readings as a single data-change event with a
// single reaction — the ingestion fast path: a burst of b readings costs
// one ranking pass instead of b. Points are assigned consecutive sequence
// numbers in slice order and each keeps its own birth timestamp, so the
// resulting detector state (P_i, D_i, clock, sequence counter, estimate)
// is identical to calling AdvanceTo(now) followed by one ObservePoint per
// reading; only the interim broadcasts — which the very next observation
// would have superseded — are skipped. With an empty batch it degenerates
// to AdvanceTo.
func (d *Detector) StepObserveBatch(now time.Duration, obs []Observation) ([]Point, *Outbound) {
	evicted := d.advance(now)
	if len(obs) == 0 && !evicted {
		return nil, nil
	}
	pts := make([]Point, len(obs))
	for i, o := range obs {
		seq := d.nextSeq
		if o.Assigned {
			seq = o.Seq
		}
		p := NewPoint(d.cfg.Node, seq, o.Birth, o.Value...)
		if seq >= d.nextSeq {
			d.nextSeq = seq + 1
		}
		d.own.Add(p)
		d.held.Add(p)
		pts[i] = p
	}
	d.stats.Events++
	return pts, d.react()
}

// RemoveOrigin explicitly deletes every held point that originated at the
// given (removed) sensor, the eager variant of sensor removal sketched in
// §5.3. The deletion is a data-change event.
func (d *Detector) RemoveOrigin(origin NodeID) *Outbound {
	removed := d.held.EvictOrigin(origin)
	removed += d.own.EvictOrigin(origin)
	for _, s := range d.sent {
		s.EvictOrigin(origin)
	}
	for _, s := range d.recv {
		s.EvictOrigin(origin)
	}
	if removed == 0 {
		return nil
	}
	d.stats.Events++
	return d.react()
}

// react runs the main for-loop of Algorithms 1/2 over every neighbor and
// assembles the broadcast packet M. The estimate-plus-support seed of
// Eq. (2) depends only on P_i (or its hop strata), so it is computed once
// per event and shared across neighbors.
func (d *Detector) react() *Outbound {
	out := &Outbound{From: d.cfg.Node}
	var deltas func(j NodeID) []Point
	if d.cfg.HopLimit > 0 {
		strata := d.hopStrata()
		deltas = func(j NodeID) []Point { return d.semiGlobalDelta(j, strata) }
	} else {
		sup := d.heldSupporter()
		seed := d.prepareSeed(sup)
		deltas = func(j NodeID) []Point { return d.globalDelta(j, sup, seed) }
	}
	for _, j := range d.Neighbors() {
		if delta := deltas(j); len(delta) > 0 {
			out.Groups = append(out.Groups, Group{To: j, Points: delta})
			d.stats.PointsSent += len(delta)
		}
	}
	if len(out.Groups) == 0 {
		return nil
	}
	d.stats.Broadcasts++
	return out
}

// prepareSeed computes On(P) ∪ [P|On(P)], the neighbor-independent part
// of Eq. (2), through the given supporter over P. One supporter serves
// the ranking batch, the support lookups, and the per-neighbor fixed
// points, so the spatial index over P is built at most once — and, via
// the heldSupporter cache, at most once per window change.
func (d *Detector) prepareSeed(sup *supporter) *Set {
	return seedFrom(sup, d.cfg.N)
}

// stratum carries the hop-filtered point set P≤h, its supporter, and its
// Eq. (2) seed.
type stratum struct {
	set  *Set
	sup  *supporter
	seed *Set
}

// hopStrata returns the cached hop strata over P_i, rebuilding them only
// when the window content has changed since they were built — the same
// version-keyed reuse heldSupporter gives the global path. The slice is
// never empty (HopLimit ≥ 1 when this is called), so nil doubles as the
// not-yet-built sentinel.
func (d *Detector) hopStrata() []stratum {
	if d.strata == nil || d.strataV != d.held.Version() {
		d.strata = d.buildStrata()
		d.strataV = d.held.Version()
	}
	return d.strata
}

// buildStrata computes the hop strata P≤h and their seeds for
// h = 0..HopLimit-1.
func (d *Detector) buildStrata() []stratum {
	strata := make([]stratum, d.cfg.HopLimit)
	for h := range strata {
		set := d.held.MaxHop(uint8(h))
		sup := newSupporter(d.cfg.Ranker, set)
		strata[h] = stratum{set: set, sup: sup, seed: d.prepareSeed(sup)}
	}
	return strata
}

// globalDelta computes Z_j \ (D(i→j) ∪ D(j→i)) for one neighbor under
// Algorithm 1 and records the newly sent points in D(i→j).
func (d *Detector) globalDelta(j NodeID, sup *supporter, seed *Set) []Point {
	shared := d.sent[j].Union(d.recv[j])
	z := seed
	if !d.cfg.DisableFixedPoint {
		z = sufficientFrom(d.cfg.Ranker, sup, seed, shared, d.cfg.N)
	}
	var delta []Point
	for _, p := range z.Points() {
		if shared.Contains(p.ID) {
			continue
		}
		delta = append(delta, p)
		d.sent[j].Add(p)
	}
	return delta
}

// semiGlobalDelta computes the per-neighbor send set of Algorithm 2: a
// sufficient set per hop stratum P≤h against the hop-filtered ledgers,
// hop fields incremented, min-merged across strata, then filtered against
// anything the ledgers show the neighbor already has at an equal or
// smaller hop count.
func (d *Detector) semiGlobalDelta(j NodeID, strata []stratum) []Point {
	shared := d.sent[j].Union(d.recv[j])
	merged := NewSet()
	for h, st := range strata {
		if st.set.Len() == 0 {
			continue
		}
		cutoff := uint8(h + 1) // receiver frame; see Config.LiteralHopFilter
		if d.cfg.LiteralHopFilter {
			cutoff = uint8(h)
		}
		sharedH := shared.MaxHop(cutoff)
		z := sufficientFrom(d.cfg.Ranker, st.sup, st.seed, sharedH, d.cfg.N)
		for _, p := range z.Points() {
			p.Hop++
			merged.AddMinHop(p)
		}
	}
	var delta []Point
	for _, p := range merged.Points() {
		if prior, ok := shared.Get(p.ID); ok && prior.Hop <= p.Hop {
			continue
		}
		delta = append(delta, p)
		d.sent[j].AddMinHop(p)
	}
	return delta
}
