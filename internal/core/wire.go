package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Wire format. Multi-byte integers are big-endian.
//
//	packet  := from:uint16  groupCount:uint8  group*
//	group   := to:uint16    pointCount:uint16 point*
//	point   := origin:uint16 seq:uint32 hop:uint8 birthMs:uint32
//	           dim:uint8 value:float64*dim
//
// Birth timestamps are encoded in milliseconds, which comfortably covers
// the simulated deployments (49 days) at far better precision than the
// sampling period.

// ErrTruncated reports a packet shorter than its own framing claims.
var ErrTruncated = errors.New("core: truncated packet")

const (
	pointHeaderSize = 2 + 4 + 1 + 4 + 1
	groupHeaderSize = 2 + 2
	packetHeader    = 2 + 1
)

// EncodedPointSize returns the wire size in bytes of a point with the
// given feature-vector dimension.
func EncodedPointSize(dim int) int { return pointHeaderSize + 8*dim }

// EncodedSize returns the wire size of the packet without encoding it,
// for fast what-if accounting.
func (o *Outbound) EncodedSize() int {
	if o == nil {
		return 0
	}
	size := packetHeader
	for _, g := range o.Groups {
		size += groupHeaderSize
		for _, p := range g.Points {
			size += EncodedPointSize(len(p.Value))
		}
	}
	return size
}

func appendPoint(buf []byte, p Point) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(p.ID.Origin))
	buf = binary.BigEndian.AppendUint32(buf, p.ID.Seq)
	buf = append(buf, p.Hop)
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Birth/time.Millisecond))
	buf = append(buf, uint8(len(p.Value)))
	for _, v := range p.Value {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func parsePoint(buf []byte) (Point, []byte, error) {
	if len(buf) < pointHeaderSize {
		return Point{}, nil, ErrTruncated
	}
	var p Point
	p.ID.Origin = NodeID(binary.BigEndian.Uint16(buf))
	p.ID.Seq = binary.BigEndian.Uint32(buf[2:])
	p.Hop = buf[6]
	p.Birth = time.Duration(binary.BigEndian.Uint32(buf[7:])) * time.Millisecond
	dim := int(buf[11])
	buf = buf[pointHeaderSize:]
	if len(buf) < 8*dim {
		return Point{}, nil, ErrTruncated
	}
	p.Value = make([]float64, dim)
	for i := 0; i < dim; i++ {
		p.Value[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[8*i:]))
	}
	return p, buf[8*dim:], nil
}

// EncodeOutbound serializes the packet M for broadcast.
func EncodeOutbound(o *Outbound) ([]byte, error) {
	if o == nil {
		return nil, errors.New("core: encode nil packet")
	}
	if len(o.Groups) > 255 {
		return nil, fmt.Errorf("core: %d recipient groups exceed the packet format", len(o.Groups))
	}
	buf := make([]byte, 0, o.EncodedSize())
	buf = binary.BigEndian.AppendUint16(buf, uint16(o.From))
	buf = append(buf, uint8(len(o.Groups)))
	for _, g := range o.Groups {
		if len(g.Points) > 65535 {
			return nil, fmt.Errorf("core: %d points in one group exceed the packet format", len(g.Points))
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(g.To))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(g.Points)))
		for _, p := range g.Points {
			buf = appendPoint(buf, p)
		}
	}
	return buf, nil
}

// DecodeOutbound parses a packet produced by EncodeOutbound.
func DecodeOutbound(buf []byte) (*Outbound, error) {
	if len(buf) < packetHeader {
		return nil, ErrTruncated
	}
	out := &Outbound{From: NodeID(binary.BigEndian.Uint16(buf))}
	groups := int(buf[2])
	buf = buf[packetHeader:]
	for gi := 0; gi < groups; gi++ {
		if len(buf) < groupHeaderSize {
			return nil, ErrTruncated
		}
		g := Group{To: NodeID(binary.BigEndian.Uint16(buf))}
		count := int(binary.BigEndian.Uint16(buf[2:]))
		buf = buf[groupHeaderSize:]
		g.Points = make([]Point, 0, count)
		for pi := 0; pi < count; pi++ {
			var (
				p   Point
				err error
			)
			p, buf, err = parsePoint(buf)
			if err != nil {
				return nil, fmt.Errorf("core: group %d point %d: %w", gi, pi, err)
			}
			g.Points = append(g.Points, p)
		}
		out.Groups = append(out.Groups, g)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after packet", len(buf))
	}
	return out, nil
}

// EncodePoints serializes a bare point list (used by the centralized
// baseline to ship window contents to the sink).
func EncodePoints(pts []Point) ([]byte, error) {
	if len(pts) > 65535 {
		return nil, fmt.Errorf("core: %d points exceed the packet format", len(pts))
	}
	size := 2
	for _, p := range pts {
		size += EncodedPointSize(len(p.Value))
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(pts)))
	for _, p := range pts {
		buf = appendPoint(buf, p)
	}
	return buf, nil
}

// DecodePoints parses a point list produced by EncodePoints.
func DecodePoints(buf []byte) ([]Point, error) {
	if len(buf) < 2 {
		return nil, ErrTruncated
	}
	count := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	pts := make([]Point, 0, count)
	for i := 0; i < count; i++ {
		var (
			p   Point
			err error
		)
		p, buf, err = parsePoint(buf)
		if err != nil {
			return nil, fmt.Errorf("core: point %d: %w", i, err)
		}
		pts = append(pts, p)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after point list", len(buf))
	}
	return pts, nil
}
