package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewPointCopiesValue(t *testing.T) {
	vals := []float64{1, 2, 3}
	p := NewPoint(7, 42, time.Second, vals...)
	vals[0] = 99
	if p.Value[0] != 1 {
		t.Fatalf("NewPoint aliased the caller's slice: %v", p.Value)
	}
	if p.ID != (PointID{Origin: 7, Seq: 42}) {
		t.Fatalf("unexpected ID %v", p.ID)
	}
	if p.Birth != time.Second {
		t.Fatalf("unexpected Birth %v", p.Birth)
	}
	if p.Hop != 0 {
		t.Fatalf("new point must have hop 0, got %d", p.Hop)
	}
}

func TestPointClone(t *testing.T) {
	p := NewPoint(1, 1, 0, 5, 6)
	q := p.Clone()
	q.Value[0] = -1
	if p.Value[0] != 5 {
		t.Fatalf("Clone aliased the feature vector")
	}
}

func TestDistHandComputed(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{name: "identical", a: []float64{1, 2}, b: []float64{1, 2}, want: 0},
		{name: "unit x", a: []float64{0, 0}, b: []float64{1, 0}, want: 1},
		{name: "345", a: []float64{0, 0}, b: []float64{3, 4}, want: 5},
		{name: "1d", a: []float64{2}, b: []float64{-1}, want: 3},
		{name: "mixed dims", a: []float64{3}, b: []float64{3, 4}, want: 4},
		{name: "empty vs point", a: nil, b: []float64{3, 4}, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := NewPoint(1, 0, 0, tt.a...)
			b := NewPoint(2, 0, 0, tt.b...)
			if got := a.Dist(b); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("Dist = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed)
		a := randPoint(r, 1, 0, 3, 100)
		b := randPoint(r, 2, 0, 3, 100)
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed)
		a := randPoint(r, 1, 0, 3, 100)
		b := randPoint(r, 2, 0, 3, 100)
		c := randPoint(r, 3, 0, 3, 100)
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLessIsStrictTotalOrder(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed)
		a := randPoint(r, NodeID(r.IntN(4)), uint32(r.IntN(3)), 2, 4)
		b := randPoint(r, NodeID(r.IntN(4)), uint32(r.IntN(3)), 2, 4)
		c := randPoint(r, NodeID(r.IntN(4)), uint32(r.IntN(3)), 2, 4)
		// Irreflexivity.
		if Less(a, a) {
			return false
		}
		// Antisymmetry.
		if Less(a, b) && Less(b, a) {
			return false
		}
		// Transitivity.
		if Less(a, b) && Less(b, c) && !Less(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLessTrichotomyOnDistinctIDs(t *testing.T) {
	a := NewPoint(1, 0, 0, 5, 5)
	b := NewPoint(2, 0, 0, 5, 5) // identical vector, distinct origin
	if Less(a, b) == Less(b, a) {
		t.Fatalf("points with equal vectors must still be strictly ordered by identity")
	}
}

func TestLessOrdersByValueFirst(t *testing.T) {
	low := NewPoint(9, 9, 0, 1, 100)
	high := NewPoint(1, 1, 0, 2, 0)
	if !Less(low, high) {
		t.Fatalf("lexicographic value order must dominate identity")
	}
	shorter := NewPoint(1, 1, 0, 1)
	longer := NewPoint(1, 2, 0, 1, 0)
	if !Less(shorter, longer) {
		t.Fatalf("shorter vector with equal prefix must order first")
	}
}

func TestStringers(t *testing.T) {
	p := NewPoint(3, 14, 0, 1.5)
	if got, want := p.ID.String(), "3#14"; got != want {
		t.Fatalf("PointID.String() = %q, want %q", got, want)
	}
	if p.String() == "" {
		t.Fatal("Point.String() empty")
	}
}
