package core

import (
	"math/rand/v2"
	"testing"
)

func TestLOFFlagsTheLocalOutlier(t *testing.T) {
	// A dense cluster, a sparse cluster, and a point floating between
	// them: the classic case LOF was invented for. The floater must get
	// the highest score.
	var pts []Point
	seq := uint32(0)
	add := func(x, y float64) Point {
		p := NewPoint(1, seq, 0, x, y)
		seq++
		pts = append(pts, p)
		return p
	}
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 10; i++ { // dense cluster at (0,0), radius ~0.5
		add(rng.Float64()*0.5, rng.Float64()*0.5)
	}
	for i := 0; i < 10; i++ { // sparse cluster at (20,20), radius ~6
		add(20+rng.Float64()*6, 20+rng.Float64()*6)
	}
	floater := add(4, 4) // just outside the dense cluster

	l := LOF{K: 3}
	scores := LOFScores(l, NewSet(pts...))
	if scores[0].Point.ID != floater.ID {
		t.Fatalf("top LOF = %v (%.2f), want the floater", scores[0].Point.ID, scores[0].Rank)
	}
	// Deep cluster members score near 1.
	for _, r := range scores[len(scores)-5:] {
		if r.Rank > 1.5 {
			t.Fatalf("cluster member %v scored %.2f", r.Point.ID, r.Rank)
		}
	}
}

// TestLOFViolatesAntiMonotonicity demonstrates why the paper excludes
// LOF: adding points to the dataset can RAISE a point's score (by
// densifying its neighbors' own neighborhoods), violating the
// R(x,Q1) ≥ R(x,Q2) for Q1 ⊆ Q2 axiom the correctness proofs need.
func TestLOFViolatesAntiMonotonicity(t *testing.T) {
	l := LOF{K: 2}
	seq := uint32(0)
	mk := func(x, y float64) Point {
		p := NewPoint(1, seq, 0, x, y)
		seq++
		return p
	}
	// x sits at distance ~3 from a loose pair; its own neighborhood is
	// about as sparse as theirs, so LOF ≈ 1.
	x := mk(0, 0)
	q1 := []Point{mk(3, 0), mk(3, 2), mk(5, 1)}
	before := l.Score(x, q1)

	// Densify the region AROUND x's neighbors (not around x): their
	// lrd soars while x's stays low → x's LOF rises.
	q2 := append(append([]Point(nil), q1...),
		mk(3.1, 0.1), mk(2.9, -0.1), mk(3.05, 2.05), mk(2.95, 1.95))
	after := l.Score(x, q2)

	if after <= before {
		t.Fatalf("expected a violation: LOF went %v → %v under Q1 ⊆ Q2", before, after)
	}
	t.Logf("anti-monotonicity violated as documented: %.3f → %.3f after adding points", before, after)
}

func TestLOFSmallDatasets(t *testing.T) {
	l := LOF{}
	x := NewPoint(1, 0, 0, 0)
	if got := l.Score(x, nil); got != 0 {
		t.Fatalf("empty dataset score = %v", got)
	}
	if got := l.Score(x, []Point{NewPoint(1, 1, 0, 1)}); got != 0 {
		t.Fatalf("undersized dataset score = %v", got)
	}
	if l.Name() != "LOF" || l.k() != 2 {
		t.Fatal("LOF defaults")
	}
	// Identical points: zero distances must not divide by zero.
	same := []Point{NewPoint(1, 1, 0, 0), NewPoint(1, 2, 0, 0)}
	if got := l.Score(x, same); got != 0 {
		t.Fatalf("coincident points score = %v, want 0 (degenerate density)", got)
	}
}
