package core

import (
	"fmt"
	"sort"
	"time"
)

// SyncNetwork wires a set of detectors into an undirected communication
// graph with synchronous, lossless, in-order message delivery. It is the
// reference runtime for the algorithm: the discrete-event simulator
// (internal/wsn) and the goroutine runtime (internal/peer) reproduce the
// same behaviour over lossy asynchronous media. SyncNetwork is used for
// correctness tests, for ground-truth computation, and for API examples;
// it deliberately models no radio, energy, or loss.
type SyncNetwork struct {
	detectors map[NodeID]*Detector
	adj       map[NodeID]map[NodeID]bool
	inbox     map[NodeID][]delivery

	pointsSent int
	broadcasts int
}

type delivery struct {
	from NodeID
	pts  []Point
}

// NewSyncNetwork returns an empty network.
func NewSyncNetwork() *SyncNetwork {
	return &SyncNetwork{
		detectors: make(map[NodeID]*Detector),
		adj:       make(map[NodeID]map[NodeID]bool),
		inbox:     make(map[NodeID][]delivery),
	}
}

// Add registers a detector. Adding two detectors with the same node ID is
// a programming error and panics.
func (n *SyncNetwork) Add(d *Detector) {
	id := d.Node()
	if _, dup := n.detectors[id]; dup {
		panic(fmt.Sprintf("core: duplicate node %d", id))
	}
	n.detectors[id] = d
	n.adj[id] = make(map[NodeID]bool)
}

// Detector returns the detector registered for id, or nil.
func (n *SyncNetwork) Detector(id NodeID) *Detector { return n.detectors[id] }

// Nodes returns the registered node IDs, sorted.
func (n *SyncNetwork) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(n.detectors))
	for id := range n.detectors {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Connect establishes the undirected link a—b, delivering the link-up
// event to both detectors and queueing anything they decide to send.
func (n *SyncNetwork) Connect(a, b NodeID) {
	if a == b {
		panic("core: self link")
	}
	n.mustHave(a)
	n.mustHave(b)
	n.adj[a][b] = true
	n.adj[b][a] = true
	n.enqueue(n.detectors[a].AddNeighbor(b))
	n.enqueue(n.detectors[b].AddNeighbor(a))
}

// Disconnect removes the undirected link a—b and delivers the link-down
// event to both ends.
func (n *SyncNetwork) Disconnect(a, b NodeID) {
	n.mustHave(a)
	n.mustHave(b)
	delete(n.adj[a], b)
	delete(n.adj[b], a)
	n.enqueue(n.detectors[a].RemoveNeighbor(b))
	n.enqueue(n.detectors[b].RemoveNeighbor(a))
}

func (n *SyncNetwork) mustHave(id NodeID) {
	if _, ok := n.detectors[id]; !ok {
		panic(fmt.Sprintf("core: unknown node %d", id))
	}
}

// Observe has the given sensor sample a new point and queues the
// resulting traffic.
func (n *SyncNetwork) Observe(id NodeID, birth time.Duration, value ...float64) Point {
	n.mustHave(id)
	p, out := n.detectors[id].Observe(birth, value...)
	n.enqueue(out)
	return p
}

// ObserveBatch has the given sensor sample one point per feature vector
// as a single data-change event, and queues the resulting traffic.
func (n *SyncNetwork) ObserveBatch(id NodeID, birth time.Duration, values ...[]float64) []Point {
	n.mustHave(id)
	pts, out := n.detectors[id].ObserveBatch(birth, values...)
	n.enqueue(out)
	return pts
}

// AdvanceTo moves every detector's clock, triggering sliding-window
// evictions, and queues the resulting traffic.
func (n *SyncNetwork) AdvanceTo(now time.Duration) {
	for _, id := range n.Nodes() {
		n.enqueue(n.detectors[id].AdvanceTo(now))
	}
}

// enqueue routes a broadcast packet: each tagged group reaches its
// recipient iff the link still exists.
func (n *SyncNetwork) enqueue(out *Outbound) {
	if out == nil {
		return
	}
	n.broadcasts++
	for _, g := range out.Groups {
		n.pointsSent += len(g.Points)
		if n.adj[out.From][g.To] {
			n.inbox[g.To] = append(n.inbox[g.To], delivery{from: out.From, pts: g.Points})
		}
	}
}

// Settle delivers queued messages in deterministic rounds until the
// network is quiescent (no messages in flight), returning the number of
// delivery rounds taken. It stops with an error after maxRounds rounds,
// which guards tests against non-termination bugs.
func (n *SyncNetwork) Settle(maxRounds int) (int, error) {
	for round := 1; ; round++ {
		if round > maxRounds {
			return round - 1, fmt.Errorf("core: network not quiescent after %d rounds", maxRounds)
		}
		pending := n.inbox
		n.inbox = make(map[NodeID][]delivery)
		if len(pending) == 0 {
			return round - 1, nil
		}
		ids := make([]NodeID, 0, len(pending))
		for id := range pending {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			det := n.detectors[id]
			for _, dl := range pending[id] {
				n.enqueue(det.Receive(dl.from, dl.pts))
			}
		}
	}
}

// Quiescent reports whether no messages are in flight.
func (n *SyncNetwork) Quiescent() bool { return len(n.inbox) == 0 }

// PointsSent returns the cumulative number of (recipient, point) pairs
// transmitted, the paper's communication-load measure.
func (n *SyncNetwork) PointsSent() int { return n.pointsSent }

// Broadcasts returns the cumulative number of non-empty packets sent.
func (n *SyncNetwork) Broadcasts() int { return n.broadcasts }

// Union returns ∪_i D_i, the global dataset D.
func (n *SyncNetwork) Union() *Set {
	u := NewSet()
	for _, d := range n.detectors {
		d.OwnPoints().ForEach(func(p Point) { u.AddMinHop(p) })
	}
	return u
}

// GlobalOutliers returns the correct global answer On(D) computed
// centrally with the given ranker, for use as ground truth.
func (n *SyncNetwork) GlobalOutliers(r Ranker, topN int) []Point {
	return TopN(r, n.Union(), topN)
}

// HopDistances returns the hop distance from src to every reachable node
// (BFS over the current links). Unreachable nodes are absent.
func (n *SyncNetwork) HopDistances(src NodeID) map[NodeID]int {
	n.mustHave(src)
	dist := map[NodeID]int{src: 0}
	frontier := []NodeID{src}
	for len(frontier) > 0 {
		var next []NodeID
		for _, u := range frontier {
			nbrs := make([]NodeID, 0, len(n.adj[u]))
			for v := range n.adj[u] {
				nbrs = append(nbrs, v)
			}
			sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
			for _, v := range nbrs {
				if _, seen := dist[v]; !seen {
					dist[v] = dist[u] + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// WithinHops returns D≤d for the given sensor: the union of the own-point
// sets of every sensor within d hops (including the sensor itself).
func (n *SyncNetwork) WithinHops(id NodeID, d int) *Set {
	dist := n.HopDistances(id)
	u := NewSet()
	for other, h := range dist {
		if h <= d {
			n.detectors[other].OwnPoints().ForEach(func(p Point) { u.AddMinHop(p) })
		}
	}
	return u
}

// SemiGlobalOutliers returns the correct semi-global answer On(D≤d) for
// the given sensor, computed centrally for use as ground truth. The hop
// fields of the returned points are zeroed since ranks ignore them.
func (n *SyncNetwork) SemiGlobalOutliers(r Ranker, id NodeID, d, topN int) []Point {
	return TopN(r, n.WithinHops(id, d), topN)
}

// Connected reports whether the current link graph is connected over all
// registered nodes (vacuously true for zero or one node).
func (n *SyncNetwork) Connected() bool {
	ids := n.Nodes()
	if len(ids) <= 1 {
		return true
	}
	return len(n.HopDistances(ids[0])) == len(ids)
}
