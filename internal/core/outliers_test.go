package core

import (
	"testing"
	"testing/quick"
)

func TestTopNMatchesBruteForce(t *testing.T) {
	for _, rk := range axiomRankers() {
		rk := rk
		t.Run(rk.Name(), func(t *testing.T) {
			f := func(seed uint64) bool {
				r := rng(seed)
				set := NewSet(randPoints(r, 1, r.IntN(25), 2, 100)...)
				n := 1 + r.IntN(5)
				return sameIDs(TopN(rk, set, n), naiveTopN(rk, set, n))
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTopNHandComputed(t *testing.T) {
	// 0.5 is far from the rest; 6 is the second loneliest.
	set := NewSet(line(0.5, 3, 4, 5, 6, 10, 11, 12)...)
	got := TopN(NN(), set, 2)
	if len(got) != 2 || got[0].Value[0] != 0.5 {
		t.Fatalf("TopN = %v, want 0.5 first", idList(got))
	}
}

func TestTopNFewerThanN(t *testing.T) {
	set := NewSet(line(1, 2)...)
	if got := TopN(NN(), set, 10); len(got) != 2 {
		t.Fatalf("|On(D)| = %d, want |D| = 2 when |D| < n", len(got))
	}
}

func TestTopNEdgeCases(t *testing.T) {
	if got := TopN(NN(), NewSet(), 3); got != nil {
		t.Fatalf("TopN on empty set = %v, want nil", got)
	}
	if got := TopN(NN(), NewSet(line(1)...), 0); got != nil {
		t.Fatalf("TopN with n=0 = %v, want nil", got)
	}
	if got := TopN(NN(), nil, 3); got != nil {
		t.Fatalf("TopN on nil set = %v, want nil", got)
	}
}

func TestTopNDeterministicUnderInsertionOrder(t *testing.T) {
	pts := line(5, 1, 9, 3, 7, 0.5)
	a := TopN(KNN{K: 2}, NewSet(pts...), 3)
	rev := make([]Point, len(pts))
	for i, p := range pts {
		rev[len(pts)-1-i] = p
	}
	b := TopN(KNN{K: 2}, NewSet(rev...), 3)
	if !sameIDs(a, b) {
		t.Fatalf("insertion order changed the result: %v vs %v", idList(a), idList(b))
	}
}

func TestTopNRankedAttachesRanks(t *testing.T) {
	set := NewSet(line(0, 1, 10)...)
	got := TopNRanked(NN(), set, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Point.Value[0] != 10 || got[0].Rank != 9 {
		t.Fatalf("top = %v rank %v, want 10 rank 9", got[0].Point, got[0].Rank)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Rank > got[i-1].Rank {
			t.Fatalf("ranks not descending: %v", got)
		}
	}
}

func TestSupportOfUnions(t *testing.T) {
	set := NewSet(line(0, 1, 10, 11, 20)...)
	// Supports of 0 and 20 under NN: {1} and {11}.
	q := []Point{set.Points()[0], set.Points()[4]}
	got := SupportOf(NN(), set, q)
	if got.Len() != 2 {
		t.Fatalf("SupportOf len = %d (%v), want 2", got.Len(), got)
	}
}

func TestSupportOfExcludesSelf(t *testing.T) {
	set := NewSet(line(0, 5)...)
	x := set.Points()[0]
	sup := SupportOf(NN(), set, []Point{x})
	if sup.Contains(x.ID) {
		t.Fatal("a point must not support itself")
	}
}

// TestSufficientSatisfiesEq2 is the direct check of the paper's Eq. (2):
// (On(P) ∪ [P|On(P)]) ∪ [P|On(shared ∪ Z)] ⊆ Z.
func TestSufficientSatisfiesEq2(t *testing.T) {
	for _, rk := range axiomRankers() {
		rk := rk
		t.Run(rk.Name(), func(t *testing.T) {
			f := func(seed uint64) bool {
				r := rng(seed)
				set := NewSet(randPoints(r, 1, 3+r.IntN(20), 2, 100)...)
				shared := set.Filter(func(Point) bool { return r.Float64() < 0.3 })
				n := 1 + r.IntN(4)
				z := Sufficient(rk, set, shared, n)

				estimate := TopN(rk, set, n)
				if !NewSet(estimate...).SubsetOf(z) {
					return false
				}
				if !SupportOf(rk, set, estimate).SubsetOf(z) {
					return false
				}
				approx := TopN(rk, shared.Union(z), n)
				if !SupportOf(rk, set, approx).SubsetOf(z) {
					return false
				}
				return z.SubsetOf(set) // Z ⊆ P_i
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSufficientOnTinySets(t *testing.T) {
	set := NewSet(line(1)...)
	z := Sufficient(NN(), set, NewSet(), 1)
	if z.Len() != 1 {
		t.Fatalf("singleton set: Z = %v", z)
	}
}
