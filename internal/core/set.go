package core

import (
	"slices"
	"strings"
	"time"
)

// Set is a collection of points keyed by PointID. The zero value is not
// ready for use; construct sets with NewSet. A nil *Set behaves as an
// empty, read-only set for the query methods (Len, Contains, Get, Points,
// ForEach), which keeps call sites free of nil checks.
//
// Set deduplicates by PointID: at most one copy of a given observation is
// held, and for the semi-global algorithm the copy with the smallest hop
// field wins (AddMinHop), matching the paper's [Q]min operator.
type Set struct {
	m map[PointID]Point

	// version counts content mutations. Every operation that changes
	// what the set holds (insert, replace, hop lowering, removal,
	// eviction) bumps it, so a snapshot taken at version v is valid
	// exactly as long as Version still returns v. The detector keys its
	// cached ranking supporter — and with it the spatial index — on the
	// window's version, skipping the per-event rebuild while the window
	// is unchanged.
	version uint64
}

// Version returns the mutation counter; see the field comment.
func (s *Set) Version() uint64 {
	if s == nil {
		return 0
	}
	return s.version
}

// NewSet returns a set holding the given points. Duplicate IDs keep the
// copy with the smallest hop field.
func NewSet(pts ...Point) *Set {
	s := &Set{m: make(map[PointID]Point, len(pts))}
	for _, p := range pts {
		s.AddMinHop(p)
	}
	return s
}

// Len returns the number of points held.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.m)
}

// Contains reports whether a point with the given ID is held.
func (s *Set) Contains(id PointID) bool {
	if s == nil {
		return false
	}
	_, ok := s.m[id]
	return ok
}

// Get returns the held copy of the point with the given ID.
func (s *Set) Get(id PointID) (Point, bool) {
	if s == nil {
		return Point{}, false
	}
	p, ok := s.m[id]
	return p, ok
}

// Add inserts p, overwriting any held copy with the same ID. It reports
// whether the ID was not previously present.
func (s *Set) Add(p Point) bool {
	_, existed := s.m[p.ID]
	s.m[p.ID] = p
	s.version++ // an overwrite can change the held copy's fields
	return !existed
}

// AddMinHop inserts p unless a copy with the same ID and a hop field no
// larger than p's is already held; an existing copy with a larger hop
// field is replaced. This is the update rule of Algorithm 2 and the
// paper's [Q]min redundancy elimination. added reports that the ID was
// new; lowered reports that an existing copy's hop was reduced.
func (s *Set) AddMinHop(p Point) (added, lowered bool) {
	old, existed := s.m[p.ID]
	if !existed {
		s.m[p.ID] = p
		s.version++
		return true, false
	}
	if p.Hop < old.Hop {
		s.m[p.ID] = p
		s.version++
		return false, true
	}
	return false, false
}

// SetHop lowers the hop field of the held copy of id to hop if the held
// copy's hop is larger. It reports whether a change was made.
func (s *Set) SetHop(id PointID, hop uint8) bool {
	if s == nil {
		return false
	}
	p, ok := s.m[id]
	if !ok || p.Hop <= hop {
		return false
	}
	p.Hop = hop
	s.m[id] = p
	s.version++
	return true
}

// Remove deletes the point with the given ID, reporting whether it was held.
func (s *Set) Remove(id PointID) bool {
	if s == nil {
		return false
	}
	_, ok := s.m[id]
	delete(s.m, id)
	if ok {
		s.version++
	}
	return ok
}

// Points returns the held points sorted by ID, so that iteration order —
// and therefore the whole algorithm — is deterministic. The ordering key
// is unique, so the sort implementation cannot affect the result;
// slices.SortFunc avoids sort.Slice's reflection-based swaps on what is
// one of the hottest allocation sites in the detector.
func (s *Set) Points() []Point {
	if s == nil {
		return nil
	}
	pts := make([]Point, 0, len(s.m))
	for _, p := range s.m {
		pts = append(pts, p)
	}
	slices.SortFunc(pts, func(a, b Point) int { return idCompare(a.ID, b.ID) })
	return pts
}

// IDs returns the held point IDs sorted.
func (s *Set) IDs() []PointID {
	if s == nil {
		return nil
	}
	ids := make([]PointID, 0, len(s.m))
	for id := range s.m {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, idCompare)
	return ids
}

// ForEach calls fn for every held point in unspecified order. Use Points
// when order matters.
func (s *Set) ForEach(fn func(Point)) {
	if s == nil {
		return
	}
	for _, p := range s.m {
		fn(p)
	}
}

// Clone returns a copy of the set sharing the (immutable by convention)
// feature vectors.
func (s *Set) Clone() *Set {
	c := &Set{m: make(map[PointID]Point, s.Len())}
	if s != nil {
		for id, p := range s.m {
			c.m[id] = p
		}
	}
	return c
}

// Union returns a new set holding the points of s and of every other set,
// min-merged on the hop field.
func (s *Set) Union(others ...*Set) *Set {
	u := s.Clone()
	for _, o := range others {
		if o == nil {
			continue
		}
		for _, p := range o.m {
			u.AddMinHop(p)
		}
	}
	return u
}

// Filter returns a new set holding the points for which keep returns true.
func (s *Set) Filter(keep func(Point) bool) *Set {
	f := &Set{m: make(map[PointID]Point)}
	if s == nil {
		return f
	}
	for id, p := range s.m {
		if keep(p) {
			f.m[id] = p
		}
	}
	return f
}

// MaxHop returns the points with hop field at most h — the paper's P≤h
// stratum used by the semi-global algorithm.
func (s *Set) MaxHop(h uint8) *Set {
	return s.Filter(func(p Point) bool { return p.Hop <= h })
}

// EvictBefore removes every point whose Birth is earlier than cutoff,
// implementing the time-based sliding window of §5.3. It returns the
// number of points evicted.
func (s *Set) EvictBefore(cutoff time.Duration) int {
	if s == nil {
		return 0
	}
	evicted := 0
	for id, p := range s.m {
		if p.Birth < cutoff {
			delete(s.m, id)
			evicted++
		}
	}
	if evicted > 0 {
		s.version++
	}
	return evicted
}

// EvictOrigin removes every point that originated at the given sensor,
// supporting the explicit node-removal strategy sketched in §5.3. It
// returns the number of points evicted.
func (s *Set) EvictOrigin(origin NodeID) int {
	if s == nil {
		return 0
	}
	evicted := 0
	for id := range s.m {
		if id.Origin == origin {
			delete(s.m, id)
			evicted++
		}
	}
	if evicted > 0 {
		s.version++
	}
	return evicted
}

// SubsetOf reports whether every ID in s is present in t.
func (s *Set) SubsetOf(t *Set) bool {
	if s == nil {
		return true
	}
	for id := range s.m {
		if !t.Contains(id) {
			return false
		}
	}
	return true
}

// EqualIDs reports whether s and t hold exactly the same point IDs.
func (s *Set) EqualIDs(t *Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	return s.SubsetOf(t)
}

// String implements fmt.Stringer, listing IDs in sorted order.
func (s *Set) String() string {
	ids := s.IDs()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}
