package core

import (
	"testing"
	"time"
)

// TestDisableFixedPointLosesCorrectness pins down what the Eq. (2)
// fixed point buys: without it the network still quiesces, but sensors
// can disagree with the true answer (Lemma 3 no longer holds).
func TestDisableFixedPointLosesCorrectness(t *testing.T) {
	failures := 0
	const trials = 8
	for seed := uint64(1); seed <= trials; seed++ {
		r := rng(seed)
		g := randConnectedGraph(r, 10, 4)
		net := buildNetwork(t, r, g, Config{Ranker: NN(), N: 3, DisableFixedPoint: true}, 6)
		want := net.GlobalOutliers(NN(), 3)
		for _, id := range net.Nodes() {
			if !sameIDs(net.Detector(id).Estimate(), want) {
				failures++
				break
			}
		}
	}
	if failures == 0 {
		t.Skip("naive variant happened to converge on all trials; the ablation benchmark covers the measured gap")
	}
	t.Logf("naive variant wrong on %d/%d random networks (expected)", failures, trials)
}

// TestLiteralHopFilterDegradesAccuracy compares the pseudo-code's
// literal ledger filter (stratum-0 fixed point permanently starved)
// against the receiver-frame default on the same networks.
func TestLiteralHopFilterDegradesAccuracy(t *testing.T) {
	measure := func(literal bool) float64 {
		var sum float64
		const trials = 5
		for seed := uint64(1); seed <= trials; seed++ {
			r := rng(seed * 31)
			g := randConnectedGraph(r, 8, 3)
			cfg := Config{Ranker: NN(), N: 3, HopLimit: 2, LiteralHopFilter: literal}
			net := buildNetwork(t, r, g, cfg, 6)
			sum += semiGlobalAccuracy(net, NN(), 2, 3)
		}
		return sum / trials
	}
	def := measure(false)
	lit := measure(true)
	t.Logf("semi-global accuracy: receiver-frame %.3f vs literal %.3f", def, lit)
	if lit > def {
		t.Fatalf("literal filter (%v) should not beat the receiver-frame default (%v)", lit, def)
	}
}

// TestTrackRedundantPreservesCorrectness: the extra ledger bookkeeping
// must never change the answer, only (slightly) the traffic.
func TestTrackRedundantPreservesCorrectness(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		r := rng(seed * 7)
		g := randConnectedGraph(r, 9, 5)
		net := buildNetwork(t, r, g, Config{Ranker: NN(), N: 3, TrackRedundant: true}, 5)
		want := net.GlobalOutliers(NN(), 3)
		for _, id := range net.Nodes() {
			if got := net.Detector(id).Estimate(); !sameIDs(got, want) {
				t.Fatalf("seed %d node %d: %v want %v", seed, id, idList(got), idList(want))
			}
		}
	}
}

// TestCountWithinConvergesInNetwork runs the third ranking-function
// family (DB(α), Knorr-Ng) through the full distributed algorithm.
func TestCountWithinConvergesInNetwork(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		r := rng(seed * 13)
		g := randConnectedGraph(r, 7, 3)
		rk := CountWithin{Alpha: 30}
		net := buildNetwork(t, r, g, Config{Ranker: rk, N: 2}, 5)
		want := net.GlobalOutliers(rk, 2)
		for _, id := range net.Nodes() {
			if got := net.Detector(id).Estimate(); !sameIDs(got, want) {
				t.Fatalf("seed %d node %d: %v want %v", seed, id, idList(got), idList(want))
			}
		}
	}
}

// TestStepObserveMatchesSeparateEvents: coalescing eviction and
// observation must leave the detector in the same state as processing
// them separately (only the transient traffic differs).
func TestStepObserveMatchesSeparateEvents(t *testing.T) {
	build := func() *Detector {
		det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 2, Window: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		det.AddNeighbor(2)
		for e := 0; e < 4; e++ {
			det.ObservePoint(NewPoint(1, uint32(e), time.Duration(e)*4*time.Second, float64(e)))
		}
		return det
	}
	a := build()
	b := build()
	p := NewPoint(1, 9, 16*time.Second, 99)
	a.AdvanceTo(16 * time.Second)
	a.ObservePoint(p)
	b.StepObserve(16*time.Second, p)
	if !a.Holdings().EqualIDs(b.Holdings()) {
		t.Fatalf("holdings diverge: %v vs %v", a.Holdings(), b.Holdings())
	}
	if !sameIDs(a.Estimate(), b.Estimate()) {
		t.Fatalf("estimates diverge")
	}
	if a.Stats().Events != b.Stats().Events+1 {
		t.Fatalf("StepObserve must save one event: %d vs %d", a.Stats().Events, b.Stats().Events)
	}
}

func TestStepObserveRejectsForeignOrigin(t *testing.T) {
	det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("foreign origin must panic")
		}
	}()
	det.StepObserve(0, NewPoint(2, 0, 0, 1))
}

// TestNoChangeReceiveIsSilent: re-delivering known points must not
// produce traffic (the optimization is provably behavior-preserving).
func TestNoChangeReceiveIsSilent(t *testing.T) {
	det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 1})
	if err != nil {
		t.Fatal(err)
	}
	det.AddNeighbor(2)
	det.ObserveBatch(0, []float64{0}, []float64{10}, []float64{20}, []float64{30})
	// A fresh extreme point: its nearest neighbor (30) was never sent,
	// so the detector must answer with it.
	pts := []Point{NewPoint(2, 0, 0, 1000)}
	first := det.Receive(2, pts)
	if first == nil {
		t.Fatal("fresh points must trigger a reaction")
	}
	if again := det.Receive(2, pts); again != nil {
		t.Fatalf("duplicate delivery reacted: %v", again)
	}
	// Stats still count the event and the received points.
	if det.Stats().PointsReceived != 2 {
		t.Fatalf("PointsReceived = %d, want 2", det.Stats().PointsReceived)
	}
}

// TestEvictionStats: window eviction is counted.
func TestEvictionStats(t *testing.T) {
	det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 1, Window: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	det.Observe(0, 1)
	det.Observe(0, 2)
	det.AdvanceTo(10 * time.Second)
	if got := det.Stats().Evicted; got != 2 {
		t.Fatalf("Evicted = %d, want 2", got)
	}
	if det.Holdings().Len() != 0 {
		t.Fatal("window must be empty")
	}
}

// TestUnwindowedDetectorKeepsEverything: Window == 0 disables eviction.
func TestUnwindowedDetectorKeepsEverything(t *testing.T) {
	det, err := NewDetector(Config{Node: 1, Ranker: NN(), N: 1})
	if err != nil {
		t.Fatal(err)
	}
	det.Observe(0, 1)
	if out := det.AdvanceTo(time.Hour * 24 * 365); out != nil {
		t.Fatal("no window: advancing must not react")
	}
	if det.Holdings().Len() != 1 {
		t.Fatal("point evicted without a window")
	}
}
