package core

import "sort"

// Ranked pairs a point with its rank R(x, P) within the dataset it was
// ranked against.
type Ranked struct {
	Point Point
	Rank  float64
}

// rankSlice ranks every point of pts against pts \ {x} and returns the
// result sorted by descending rank with the ≺ tie-break (higher under ≺
// loses ties, making the ordering total and deterministic). pts must be
// free of duplicate IDs; rankers exclude a point's own ID themselves.
// Rank values are insensitive to slice order, so callers need not sort.
func rankSlice(r Ranker, pts []Point) []Ranked {
	ranked := make([]Ranked, len(pts))
	for i, x := range pts {
		ranked[i] = Ranked{Point: x, Rank: r.Rank(x, pts)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Rank != ranked[j].Rank {
			return ranked[i].Rank > ranked[j].Rank
		}
		return Less(ranked[i].Point, ranked[j].Point)
	})
	return ranked
}

// rankAll ranks every point of a set; see rankSlice.
func rankAll(r Ranker, set *Set) []Ranked {
	return rankSlice(r, set.Points())
}

// topNSlice is TopN over a duplicate-free point slice.
func topNSlice(r Ranker, pts []Point, n int) []Point {
	if n <= 0 || len(pts) == 0 {
		return nil
	}
	ranked := rankSlice(r, pts)
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		out[i] = ranked[i].Point
	}
	return out
}

// TopN computes On(P): the n points of P with the highest outlier rank
// under r, with ties broken by the fixed total order ≺. When P holds
// fewer than n points, all of them are returned, matching §4.1. The
// result is in (rank desc, ≺) order.
func TopN(r Ranker, set *Set, n int) []Point {
	if n <= 0 || set.Len() == 0 {
		return nil
	}
	ranked := rankAll(r, set)
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		out[i] = ranked[i].Point
	}
	return out
}

// TopNRanked is TopN but also reports each outlier's rank value.
func TopNRanked(r Ranker, set *Set, n int) []Ranked {
	if n <= 0 || set.Len() == 0 {
		return nil
	}
	ranked := rankAll(r, set)
	if n > len(ranked) {
		n = len(ranked)
	}
	return ranked[:n]
}

// SupportOf computes [P|Q] = ∪_{x∈Q} [P|x]: the union of the smallest
// support sets over P of every point in q. Points of q need not belong
// to P; each is ranked against P \ {x} as in the paper's definition
// (rankers exclude a point's own ID themselves).
func SupportOf(r Ranker, set *Set, q []Point) *Set {
	support := NewSet()
	pts := set.Points()
	for _, x := range q {
		for _, s := range r.Support(x, pts) {
			support.AddMinHop(s)
		}
	}
	return support
}

// Sufficient computes a set Z ⊆ P satisfying the paper's Eq. (2) for one
// neighbor link, where shared = D(i→j) ∪ D(j→i) is everything sensor i
// knows it has in common with neighbor j:
//
//	(On(P) ∪ [P|On(P)]) ∪ [P | On(shared ∪ Z)] ⊆ Z
//
// It seeds Z with the local estimate and its support, then iterates
// Z ← Z ∪ [P|On(shared ∪ Z)] to a fixed point, exactly the two steps of
// Algorithm 1's inner loop. Z grows monotonically inside the finite P, so
// the iteration terminates. The result is not guaranteed minimal (nor is
// the paper's).
func Sufficient(r Ranker, set, shared *Set, n int) *Set {
	estimate := TopN(r, set, n)
	seed := NewSet(estimate...).Union(SupportOf(r, set, estimate))
	return sufficientFrom(r, set, seed, shared, n)
}

// sufficientFrom closes seed = On(P) ∪ [P|On(P)] under the Eq. (2) fixed
// point against one link's shared ledger. Splitting the seed out lets the
// detector compute it once per event and reuse it for every neighbor.
// The candidate pool shared ∪ Z is maintained as a deduplicated slice so
// the iteration allocates no per-step set unions (rank values ignore the
// hop field, so which duplicate copy survives is immaterial).
func sufficientFrom(r Ranker, set, seed, shared *Set, n int) *Set {
	z := seed.Clone()
	present := make(map[PointID]bool, shared.Len()+z.Len())
	candidates := make([]Point, 0, shared.Len()+z.Len())
	add := func(p Point) {
		if !present[p.ID] {
			present[p.ID] = true
			candidates = append(candidates, p)
		}
	}
	shared.ForEach(add)
	z.ForEach(add)
	for {
		approx := topNSlice(r, candidates, n)
		support := SupportOf(r, set, approx)
		if support.SubsetOf(z) {
			return z
		}
		support.ForEach(func(p Point) {
			z.AddMinHop(p)
			add(p)
		})
	}
}
