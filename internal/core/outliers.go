package core

import "slices"

// Ranked pairs a point with its rank R(x, P) within the dataset it was
// ranked against.
type Ranked struct {
	Point Point
	Rank  float64
}

// indexMinPoints is the set size from which ranking batches build a
// spatial index instead of scanning linearly: index construction is
// O(n log n), so tiny sets (the common fixed-point candidate pools) stay
// on the cheaper brute path. It is a variable so package tests can force
// either path.
var indexMinPoints = 64

// rankSlice ranks every point of pts against pts \ {x} and returns the
// result sorted by descending rank with the ≺ tie-break (higher under ≺
// loses ties, making the ordering total and deterministic). pts must be
// free of duplicate IDs; rankers exclude a point's own ID themselves.
// Rank values are insensitive to slice order, so callers need not sort.
// Large batches are served through a spatial index when the ranker
// supports it; the results are identical by the indexedRanker contract.
func rankSlice(r Ranker, pts []Point) []Ranked {
	return supporterFor(r, pts).rankAll()
}

// rankAll ranks every point of a set; see rankSlice.
func rankAll(r Ranker, set *Set) []Ranked {
	return rankSlice(r, set.Points())
}

// topNSlice is TopN over a duplicate-free point slice.
func topNSlice(r Ranker, pts []Point, n int) []Point {
	if n <= 0 || len(pts) == 0 {
		return nil
	}
	ranked := rankSlice(r, pts)
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		out[i] = ranked[i].Point
	}
	return out
}

// TopN computes On(P): the n points of P with the highest outlier rank
// under r, with ties broken by the fixed total order ≺. When P holds
// fewer than n points, all of them are returned, matching §4.1. The
// result is in (rank desc, ≺) order.
func TopN(r Ranker, set *Set, n int) []Point {
	if n <= 0 || set.Len() == 0 {
		return nil
	}
	ranked := rankAll(r, set)
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		out[i] = ranked[i].Point
	}
	return out
}

// TopNRanked is TopN but also reports each outlier's rank value.
func TopNRanked(r Ranker, set *Set, n int) []Ranked {
	if n <= 0 || set.Len() == 0 {
		return nil
	}
	ranked := rankAll(r, set)
	if n > len(ranked) {
		n = len(ranked)
	}
	return ranked[:n]
}

// supporter answers repeated rank and smallest-support-set queries
// against one fixed dataset P. It snapshots P once and builds the
// spatial index lazily: a full rankAll batch (one query per point of P)
// always amortizes the O(n log n) build, so it indexes eagerly, while
// support lookups for a handful of points stay on the O(n) scan unless
// an index already exists or the caller announces enough volume via
// ensureIndex. An earlier version indexed unconditionally, and the
// per-event builds cost more than the scans they replaced.
type supporter struct {
	r   Ranker
	pts []Point
	ir  indexedRanker // nil when r cannot use an index or P is small
	ix  *Index        // built lazily, see ensureIndex

	ranked []Ranked // memoized rankAll result (the snapshot is immutable)
}

func newSupporter(r Ranker, set *Set) *supporter {
	return supporterFor(r, set.Points())
}

func supporterFor(r Ranker, pts []Point) *supporter {
	s := &supporter{r: r, pts: pts}
	if ir, ok := r.(indexedRanker); ok && len(pts) >= indexMinPoints {
		s.ir = ir
	}
	return s
}

// ensureIndex builds the spatial index if the ranker supports one and P
// is large enough; call it only when the upcoming query volume
// amortizes the build.
func (s *supporter) ensureIndex() {
	if s.ir != nil && s.ix == nil {
		s.ix = NewIndex(s.pts)
	}
}

// rankAll ranks every point of P against P \ {x}, sorted by descending
// rank with the ≺ tie-break — one query per point, so the index always
// pays for itself. The result is memoized (the snapshot never changes),
// so a supporter cached across events answers repeat ranking batches for
// free; callers must treat the returned slice as read-only.
func (s *supporter) rankAll() []Ranked {
	if s.ranked != nil {
		return s.ranked
	}
	s.ensureIndex()
	ranked := make([]Ranked, len(s.pts))
	if s.ix != nil {
		scratch := newBestList(1)
		for i, x := range s.pts {
			ranked[i] = Ranked{Point: x, Rank: s.ir.rankIndexed(x, s.ix, scratch)}
		}
	} else {
		for i, x := range s.pts {
			ranked[i] = Ranked{Point: x, Rank: s.r.Rank(x, s.pts)}
		}
	}
	sortRanked(ranked)
	s.ranked = ranked
	return ranked
}

// sortRanked orders by descending rank with the ≺ tie-break. The order
// is unique (≺ is total and IDs are distinct), so the choice of sort is
// immaterial to the result; slices.SortFunc avoids the reflection-based
// element swaps of sort.Slice on this hot path.
func sortRanked(ranked []Ranked) {
	slices.SortFunc(ranked, func(a, b Ranked) int {
		switch {
		case a.Rank > b.Rank:
			return -1
		case a.Rank < b.Rank:
			return 1
		case Less(a.Point, b.Point):
			return -1
		case Less(b.Point, a.Point):
			return 1
		default:
			return 0
		}
	})
}

// supportOf unions [P|x] over x ∈ q into dst, through the index when one
// has been built.
func (s *supporter) supportOf(dst *Set, q []Point) {
	for _, x := range q {
		var sup []Point
		if s.ix != nil {
			sup = s.ir.supportIndexed(x, s.ix)
		} else {
			sup = s.r.Support(x, s.pts)
		}
		for _, p := range sup {
			dst.AddMinHop(p)
		}
	}
}

// supportIndexMinQueries is the support-query batch size from which
// SupportOf builds an index up front.
const supportIndexMinQueries = 16

// SupportOf computes [P|Q] = ∪_{x∈Q} [P|x]: the union of the smallest
// support sets over P of every point in q. Points of q need not belong
// to P; each is ranked against P \ {x} as in the paper's definition
// (rankers exclude a point's own ID themselves).
func SupportOf(r Ranker, set *Set, q []Point) *Set {
	s := newSupporter(r, set)
	if len(q) >= supportIndexMinQueries {
		s.ensureIndex()
	}
	support := NewSet()
	s.supportOf(support, q)
	return support
}

// Sufficient computes a set Z ⊆ P satisfying the paper's Eq. (2) for one
// neighbor link, where shared = D(i→j) ∪ D(j→i) is everything sensor i
// knows it has in common with neighbor j:
//
//	(On(P) ∪ [P|On(P)]) ∪ [P | On(shared ∪ Z)] ⊆ Z
//
// It seeds Z with the local estimate and its support, then iterates
// Z ← Z ∪ [P|On(shared ∪ Z)] to a fixed point, exactly the two steps of
// Algorithm 1's inner loop. Z grows monotonically inside the finite P, so
// the iteration terminates. The result is not guaranteed minimal (nor is
// the paper's).
func Sufficient(r Ranker, set, shared *Set, n int) *Set {
	sup := newSupporter(r, set)
	return sufficientFrom(r, sup, seedFrom(sup, n), shared, n)
}

// seedFrom computes On(P) ∪ [P|On(P)], the neighbor-independent seed of
// Eq. (2), through one supporter over P — so the ranking batch, the
// support lookups, and the caller's fixed points all share one snapshot
// and at most one spatial index. The detector's per-event reaction and
// the standalone Sufficient both build on this.
func seedFrom(sup *supporter, n int) *Set {
	ranked := sup.rankAll()
	if n > len(ranked) {
		n = len(ranked)
	}
	seed := NewSet()
	estimate := make([]Point, 0, n)
	for _, rk := range ranked[:n] {
		estimate = append(estimate, rk.Point)
		seed.AddMinHop(rk.Point)
	}
	sup.supportOf(seed, estimate)
	return seed
}

// sufficientFrom closes seed = On(P) ∪ [P|On(P)] under the Eq. (2) fixed
// point against one link's shared ledger. Splitting the seed — and the
// supporter over P — out lets the detector compute both once per event
// (or reuse them across events while the window is unchanged) and share
// them across every neighbor. The candidate pool shared ∪ Z is maintained
// as a deduplicated slice so the iteration allocates no per-step set
// unions (rank values ignore the hop field, so which duplicate copy
// survives is immaterial).
func sufficientFrom(r Ranker, sup *supporter, seed, shared *Set, n int) *Set {
	z := seed.Clone()
	present := make(map[PointID]bool, shared.Len()+z.Len())
	candidates := make([]Point, 0, shared.Len()+z.Len())
	add := func(p Point) {
		if !present[p.ID] {
			present[p.ID] = true
			candidates = append(candidates, p)
		}
	}
	shared.ForEach(add)
	z.ForEach(add)
	for {
		approx := topNSlice(r, candidates, n)
		support := NewSet()
		sup.supportOf(support, approx)
		if support.SubsetOf(z) {
			return z
		}
		support.ForEach(func(p Point) {
			z.AddMinHop(p)
			add(p)
		})
	}
}
