package obs

import (
	"net/http"
	"net/http/pprof"
	"runtime"
)

// The -debug-addr endpoint: pprof plus Go runtime gauges, on a listener
// that exists only when the operator asks for it. Keeping it off the
// main API mux means the default deployment exposes no profiler — the
// e2e smokes assert /debug/pprof/ 404s on the API port.

// RuntimeRegistry returns a registry of Go runtime gauges: goroutines,
// heap, and GC work. ReadMemStats runs once per metric per scrape; the
// debug endpoint is scraped by operators, not hot loops.
func RuntimeRegistry() *Registry {
	r := NewRegistry()
	mem := func(read func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return read(&ms)
		}
	}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_gomaxprocs", "GOMAXPROCS setting.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) }))
	r.GaugeFunc("go_heap_sys_bytes", "Bytes of heap obtained from the OS.",
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapSys) }))
	r.GaugeFunc("go_heap_objects", "Number of allocated heap objects.",
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapObjects) }))
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.NumGC) }))
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.PauseTotalNs) / 1e9 }))
	return r
}

// DebugMux returns the handler served on -debug-addr: the pprof suite
// under /debug/pprof/ and the runtime gauges under /metrics. The pprof
// handlers are mounted explicitly — importing net/http/pprof for its
// side effect would register them on http.DefaultServeMux, where an
// unrelated handler could accidentally expose them.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", RuntimeRegistry().Handler())
	return mux
}
