// Package obs is the observability layer shared by every daemon in the
// system: a stdlib-only metrics registry (counters, gauges, fixed-bucket
// histograms — all atomic and allocation-free on the hot path) with
// Prometheus text exposition, a bounded merge-session trace ring for the
// paper's Algorithm 1 exchanges, and the pprof/runtime debug endpoint
// behind -debug-addr.
//
// The registry replaces the hand-rolled /metrics writers that ingest and
// cluster used to carry separately. Metric families render in
// registration order, each as a `# HELP` line, a `# TYPE` line, and its
// samples — so callers control the page layout by registration order and
// every pre-existing metric name survives byte-identical (pinned by
// golden tests in the instrumented packages).
//
// Histograms use fixed upper bounds chosen at registration —
// LatencyBuckets covers 1µs..8.4s in factor-2 steps — with one atomic
// counter per bucket and a CAS-maintained float sum, so Observe is a
// bounded scan over ~24 bounds plus three atomic ops: no locks, no
// allocation, safe under any concurrency. Scrapers derive p50/p95/p99
// from the cumulative `_bucket` series exactly as they would from any
// Prometheus histogram.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ContentType is the Prometheus text exposition content type served by
// Handler, matching what the hand-rolled writers always sent.
const ContentType = "text/plain; version=0.0.4"

// LatencyBuckets returns the standard latency bucket bounds, in seconds:
// factor-2 exponential from 1µs to ~8.4s (24 buckets). One scheme for
// every duration histogram keeps cross-metric comparisons honest and the
// per-observe scan short.
func LatencyBuckets() []float64 {
	bounds := make([]float64, 24)
	b := 1e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// metric is one registered family: it renders its HELP/TYPE header and
// samples into the exposition page.
type metric interface {
	metricName() string
	write(b *strings.Builder)
}

// Registry holds metric families in registration order and renders the
// Prometheus text exposition page. Registration happens at construction
// time (and panics on a duplicate name — a programming error); reads and
// hot-path updates are lock-free thereafter.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := m.metricName()
	if r.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	if err := checkName(name); err != nil {
		panic(fmt.Sprintf("obs: bad metric name %q: %v", name, err))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// checkName enforces the Prometheus metric-name grammar.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("byte %d", i)
		}
	}
	return nil
}

// WriteTo renders the full exposition page.
func (r *Registry) WriteTo(b *strings.Builder) {
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range metrics {
		m.write(b)
	}
}

// Render returns the exposition page as a string.
func (r *Registry) Render() string {
	var b strings.Builder
	r.WriteTo(&b)
	return b.String()
}

// Handler serves the exposition page.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		fmt.Fprint(w, r.Render())
	})
}

// desc is the shared name/help/type header.
type desc struct {
	name string
	help string
	typ  string // counter, gauge, histogram
}

func (d desc) metricName() string { return d.name }

func (d desc) writeHeader(b *strings.Builder) {
	b.WriteString("# HELP ")
	b.WriteString(d.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(d.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(d.name)
	b.WriteByte(' ')
	b.WriteString(d.typ)
	b.WriteByte('\n')
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// appendValue formats a sample value: integers render without a decimal
// point or exponent (so counters keep the exact `%d` output the
// hand-rolled writers produced), everything else as shortest float.
func appendValue(b *strings.Builder, v float64) {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		b.WriteString(strconv.FormatInt(int64(v), 10))
		return
	}
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	appendValue(b, v)
	b.WriteByte('\n')
}

// Counter is a monotone counter with an allocation-free hot path.
type Counter struct {
	desc
	v atomic.Uint64
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{desc: desc{name: name, help: help, typ: "counter"}}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(b *strings.Builder) {
	c.writeHeader(b)
	writeSample(b, c.name, "", float64(c.v.Load()))
}

// funcMetric bridges an existing atomic (or any cheap snapshot) into the
// page: the closure runs at scrape time, so instrumented packages keep
// their counters exactly where they were.
type funcMetric struct {
	desc
	fn func() float64
}

func (m *funcMetric) write(b *strings.Builder) {
	m.writeHeader(b)
	writeSample(b, m.name, "", m.fn())
}

// CounterFunc registers a counter whose value is read at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{desc: desc{name: name, help: help, typ: "counter"}, fn: fn})
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{desc: desc{name: name, help: help, typ: "gauge"}, fn: fn})
}

// labeledFunc is a family of labeled series enumerated at scrape time:
// the collect callback emits each series' rendered label set (e.g.
// `sensor="7"`) and value, in whatever order the caller produces them.
type labeledFunc struct {
	desc
	collect func(emit func(labels string, v float64))
}

func (m *labeledFunc) write(b *strings.Builder) {
	m.writeHeader(b)
	m.collect(func(labels string, v float64) {
		writeSample(b, m.name, labels, v)
	})
}

// LabeledCounterFunc registers a counter family whose labeled series are
// enumerated at scrape time.
func (r *Registry) LabeledCounterFunc(name, help string, collect func(emit func(labels string, v float64))) {
	r.register(&labeledFunc{desc: desc{name: name, help: help, typ: "counter"}, collect: collect})
}

// LabeledGaugeFunc registers a gauge family whose labeled series are
// enumerated at scrape time.
func (r *Registry) LabeledGaugeFunc(name, help string, collect func(emit func(labels string, v float64))) {
	r.register(&labeledFunc{desc: desc{name: name, help: help, typ: "gauge"}, collect: collect})
}

// Label renders one label pair the way the hand-rolled writers did
// (Go-quoted value), for use with the labeled families.
func Label(key, value string) string {
	return key + "=" + strconv.Quote(value)
}

// Histogram is a fixed-bucket histogram. Observe is lock-free and
// allocation-free: a bounded scan over the bucket bounds, three atomic
// updates. Exposition renders cumulative `_bucket` series (including
// +Inf), `_sum` and `_count`, Prometheus-style.
type Histogram struct {
	desc
	bounds []float64 // ascending upper bounds; +Inf implied after
	les    []string  // pre-rendered le label values, len(bounds)
	labels string    // extra rendered labels ("" or `mode="compact"`), for vec children

	counts []atomic.Uint64 // per-bucket (non-cumulative); last entry is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(d desc, bounds []float64, labels string) *Histogram {
	h := &Histogram{
		desc:   d,
		bounds: append([]float64(nil), bounds...),
		les:    make([]string, len(bounds)),
		labels: labels,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	for i, b := range h.bounds {
		if i > 0 && b <= h.bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", d.name))
		}
		h.les[i] = strconv.FormatFloat(b, 'g', -1, 64)
	}
	return h
}

// Histogram registers and returns a new histogram with the given upper
// bounds (seconds for latency metrics; see LatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(desc{name: name, help: help, typ: "histogram"}, bounds, "")
	r.register(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) write(b *strings.Builder) {
	h.writeHeader(b)
	h.writeSeries(b)
}

func (h *Histogram) writeSeries(b *strings.Builder) {
	sep := ""
	if h.labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(b, h.name+"_bucket", h.labels+sep+`le="`+h.les[i]+`"`, float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(b, h.name+"_bucket", h.labels+sep+`le="+Inf"`, float64(cum))
	writeSample(b, h.name+"_sum", h.labels, math.Float64frombits(h.sum.Load()))
	writeSample(b, h.name+"_count", h.labels, float64(cum))
}

// HistogramVec is a histogram family partitioned by one label. Children
// are created on first With and render sorted by label value; With on an
// existing child takes a read lock only.
type HistogramVec struct {
	desc
	label  string
	bounds []float64

	mu       sync.RWMutex
	children map[string]*Histogram
}

// HistogramVec registers and returns a histogram family keyed by the
// given label.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v := &HistogramVec{
		desc:     desc{name: name, help: help, typ: "histogram"},
		label:    label,
		bounds:   bounds,
		children: make(map[string]*Histogram),
	}
	r.register(v)
	return v
}

// With returns the child histogram for the given label value, creating
// it on first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.children[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[value]; h == nil {
		h = newHistogram(v.desc, v.bounds, Label(v.label, value))
		v.children[value] = h
	}
	return h
}

func (v *HistogramVec) write(b *strings.Builder) {
	v.writeHeader(b)
	v.mu.RLock()
	values := make([]string, 0, len(v.children))
	for val := range v.children {
		values = append(values, val)
	}
	children := make([]*Histogram, 0, len(values))
	sort.Strings(values)
	for _, val := range values {
		children = append(children, v.children[val])
	}
	v.mu.RUnlock()
	for _, h := range children {
		h.writeSeries(b)
	}
}
