package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// One handler serves every ring log (/debug/merges, /debug/traces):
// the rings bound what they *hold*, this bounds what they *serve* — a
// curl against a long-lived daemon gets the newest defaultRingLimit
// entries, never an unbounded body, and ?limit= moves the cap only up
// to maxRingLimit.

const (
	defaultRingLimit = 64
	maxRingLimit     = 1024
)

// ringLimit resolves the effective entry cap for one request.
func ringLimit(r *http.Request) int {
	n := defaultRingLimit
	if s := r.URL.Query().Get("limit"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	if n > maxRingLimit {
		n = maxRingLimit
	}
	return n
}

// RingHandler serves {"total": N, <field>: snapshot} as JSON, where
// snapshot receives the request (for filters like ?trace=) and the
// resolved ?limit= cap and returns the newest-first entries to encode.
func RingHandler(field string, total func() uint64, snapshot func(r *http.Request, limit int) any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"total": total(),
			field:   snapshot(r, ringLimit(r)),
		})
	})
}
