package obs

import "testing"

// The hot-path contract: incrementing a counter or observing into a
// histogram must not allocate. These run as tests (not only benchmarks)
// so a regression fails `go test ./...`, not just a bench nobody reruns.

func TestCounterIncZeroAlloc(t *testing.T) {
	c := NewRegistry().Counter("alloc_total", "x")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v per op, want 0", n)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewRegistry().Histogram("alloc_seconds", "x", LatencyBuckets())
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3.7e-4) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op, want 0", n)
	}
}

func TestHistogramVecObserveZeroAlloc(t *testing.T) {
	v := NewRegistry().HistogramVec("alloc_vec_seconds", "x", "mode", LatencyBuckets())
	h := v.With("compact") // resolving the child once is the intended hot-path shape
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3.7e-4) }); n != 0 {
		t.Fatalf("HistogramVec child Observe allocates %v per op, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "x", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench_par_seconds", "x", LatencyBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(2.5e-4)
		}
	})
}

func BenchmarkVecWithObserve(b *testing.B) {
	v := NewRegistry().HistogramVec("bench_vec_seconds", "x", "mode", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("compact").Observe(2.5e-4)
	}
}

func BenchmarkRender(b *testing.B) {
	r := NewRegistry()
	for _, name := range []string{"a_seconds", "b_seconds", "c_seconds"} {
		h := r.Histogram(name, "x", LatencyBuckets())
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i) * 1e-5)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Render()
	}
}
