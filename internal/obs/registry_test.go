package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("demo_events_total", "Events seen.")
	c.Add(5)
	r.GaugeFunc("demo_depth", "Current depth.", func() float64 { return 3 })
	r.LabeledGaugeFunc("demo_queue_depth", "Per-queue depth.", func(emit func(string, float64)) {
		emit(Label("queue", "a"), 1)
		emit(Label("queue", "b"), 2)
	})
	h := r.Histogram("demo_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5) // above every bound: +Inf only

	want := strings.Join([]string{
		"# HELP demo_events_total Events seen.",
		"# TYPE demo_events_total counter",
		"demo_events_total 5",
		"# HELP demo_depth Current depth.",
		"# TYPE demo_depth gauge",
		"demo_depth 3",
		"# HELP demo_queue_depth Per-queue depth.",
		"# TYPE demo_queue_depth gauge",
		`demo_queue_depth{queue="a"} 1`,
		`demo_queue_depth{queue="b"} 2`,
		"# HELP demo_latency_seconds Latency.",
		"# TYPE demo_latency_seconds histogram",
		`demo_latency_seconds_bucket{le="0.001"} 1`,
		`demo_latency_seconds_bucket{le="0.01"} 1`,
		`demo_latency_seconds_bucket{le="0.1"} 2`,
		`demo_latency_seconds_bucket{le="+Inf"} 3`,
		"demo_latency_seconds_sum 5.0505",
		"demo_latency_seconds_count 3",
		"",
	}, "\n")
	if got := r.Render(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("demo_query_seconds", "Query latency.", "mode", []float64{0.01, 1})
	v.With("full").Observe(0.5)
	v.With("compact").Observe(0.005)
	v.With("compact").Observe(0.005)

	want := strings.Join([]string{
		"# HELP demo_query_seconds Query latency.",
		"# TYPE demo_query_seconds histogram",
		`demo_query_seconds_bucket{mode="compact",le="0.01"} 2`,
		`demo_query_seconds_bucket{mode="compact",le="1"} 2`,
		`demo_query_seconds_bucket{mode="compact",le="+Inf"} 2`,
		`demo_query_seconds_sum{mode="compact"} 0.01`,
		`demo_query_seconds_count{mode="compact"} 2`,
		`demo_query_seconds_bucket{mode="full",le="0.01"} 0`,
		`demo_query_seconds_bucket{mode="full",le="1"} 1`,
		`demo_query_seconds_bucket{mode="full",le="+Inf"} 1`,
		`demo_query_seconds_sum{mode="full"} 0.5`,
		`demo_query_seconds_count{mode="full"} 1`,
		"",
	}, "\n")
	if got := r.Render(); got != want {
		t.Fatalf("vec exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.GaugeFunc("dup_total", "y", func() float64 { return 0 })
}

func TestBadNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("bad metric name did not panic")
		}
	}()
	r.Counter("9starts-with-digit", "x")
}

func TestIntegerValueFormatting(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("fmt_total", "x", func() float64 { return 12345678 })
	if !strings.Contains(r.Render(), "fmt_total 12345678\n") {
		t.Fatalf("integer counter not rendered as %%d:\n%s", r.Render())
	}
}

func TestLatencyBuckets(t *testing.T) {
	b := LatencyBuckets()
	if len(b) != 24 {
		t.Fatalf("got %d buckets, want 24", len(b))
	}
	if b[0] != 1e-6 {
		t.Fatalf("first bound %g, want 1e-6", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Fatalf("bound %d: %g is not double %g", i, b[i], b[i-1])
		}
	}
	if b[23] < 8 || b[23] > 9 {
		t.Fatalf("last bound %g out of the expected ~8.4s", b[23])
	}
}

// TestConcurrentObserveScrape races parallel observers and incrementers
// against concurrent scrapes; run under -race it pins the registry's
// lock-free hot path, and the final page must account for every op.
func TestConcurrentObserveScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "x")
	h := r.Histogram("race_seconds", "x", LatencyBuckets())
	v := r.HistogramVec("race_vec_seconds", "x", "mode", LatencyBuckets())

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%100) * 1e-5)
				v.With([]string{"compact", "full"}[i%2]).Observe(1e-4)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = r.Render()
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count %d, want %d", got, workers*perWorker)
	}
	page := r.Render()
	if !strings.Contains(page, "race_seconds_count 16000") {
		t.Fatalf("final page missing the full histogram count:\n%s", page)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("ct_total", "x")
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != ContentType {
		t.Fatalf("Content-Type %q, want %q", got, ContentType)
	}
}
