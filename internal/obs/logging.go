package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the daemons' structured logger from the -log-format
// and -v flags: "text" (the default) or "json" output, Info level
// normally, Debug with -v.
func NewLogger(w io.Writer, format string, verbose bool) (*slog.Logger, error) {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}
