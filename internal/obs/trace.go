package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
)

// Merge-session tracing: the paper's evaluation is about what one
// Algorithm 1 exchange costs — bytes and rounds to converge — so the
// coordinator records every compact-merge session it drives into a
// bounded ring, inspectable per query at /debug/merges instead of only
// as aggregate counters.

// ShardRoundTrace is one shard's side of one merge round.
type ShardRoundTrace struct {
	Shard      string  `json:"shard"`
	SentBytes  int     `json:"sent_bytes"`  // LEDGER chunk payload delivered
	RecvBytes  int     `json:"recv_bytes"`  // SUFFICIENT reply payload received
	SentPoints int     `json:"sent_points"` // coordinator delta points delivered
	RecvPoints int     `json:"recv_points"` // shard delta points received
	RTTMS      float64 `json:"rtt_ms"`      // whole network phase, retries included
	Err        string  `json:"err,omitempty"`
}

// RoundTrace is one compact-merge round across every shard.
type RoundTrace struct {
	Round  int               `json:"round"`
	Bytes  int               `json:"bytes"` // Σ sent+recv, as counted into innetcoord_merge_bytes_total
	Shards []ShardRoundTrace `json:"shards"`
}

// LedgerTrace is one per-link ledger's final size.
type LedgerTrace struct {
	Shard  string `json:"shard"`
	Points int    `json:"points"`
}

// MergeTrace is one recorded Algorithm 1 session. The invariant the e2e
// suites pin: TotalBytes — the sum of the per-round Bytes — equals the
// innetcoord_merge_bytes_total delta the session caused.
type MergeTrace struct {
	Session   string `json:"session"` // session ID, hex (string keeps 64-bit IDs JSON-safe)
	Requested string `json:"requested_mode"`
	Final     string `json:"final_mode"` // after any fallback
	Degraded  bool   `json:"degraded"`

	Rounds   []RoundTrace  `json:"rounds"`
	Quiesced int           `json:"quiesced_round"` // round index that moved nothing; -1 if never
	Ledgers  []LedgerTrace `json:"ledgers,omitempty"`

	Fallback   string  `json:"fallback_reason,omitempty"` // why the session abandoned the compact path
	TotalBytes int     `json:"total_bytes"`               // == merge_bytes_total delta for this session
	FullBytes  int     `json:"full_bytes,omitempty"`      // fallback full-path payload (merge_full_bytes_total delta)
	Outliers   int     `json:"outliers"`
	DurationMS float64 `json:"duration_ms"`
}

// MergeLog is a bounded ring of merge-session traces, optionally teeing
// each record as one JSON line to a sink (-trace-file). Record is
// mutex-guarded but off the ingest hot path — one call per merge query.
type MergeLog struct {
	mu    sync.Mutex
	buf   []MergeTrace
	next  int
	total uint64
	sink  io.Writer
}

// NewMergeLog returns a ring holding the last capacity sessions.
func NewMergeLog(capacity int) *MergeLog {
	if capacity < 1 {
		capacity = 1
	}
	return &MergeLog{buf: make([]MergeTrace, 0, capacity)}
}

// SetSink tees every subsequent Record to w as one JSON line. Write
// errors are silently dropped — tracing must never fail a query.
func (l *MergeLog) SetSink(w io.Writer) {
	l.mu.Lock()
	l.sink = w
	l.mu.Unlock()
}

// Record appends one session trace, evicting the oldest past capacity.
func (l *MergeLog) Record(t MergeTrace) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, t)
	} else {
		l.buf[l.next] = t
		l.next = (l.next + 1) % cap(l.buf)
	}
	l.total++
	if l.sink != nil {
		if line, err := json.Marshal(t); err == nil {
			l.sink.Write(append(line, '\n'))
		}
	}
}

// Snapshot returns the held traces, newest first.
func (l *MergeLog) Snapshot() []MergeTrace {
	return l.SnapshotLimit(0)
}

// SnapshotLimit returns up to limit held traces, newest first; limit
// <= 0 means no cap beyond the ring itself.
func (l *MergeLog) SnapshotLimit(limit int) []MergeTrace {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.buf)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]MergeTrace, 0, n)
	for i := len(l.buf) - 1; i >= len(l.buf)-n; i-- {
		out = append(out, l.buf[(l.next+i)%len(l.buf)])
	}
	return out
}

// Total returns how many sessions have ever been recorded.
func (l *MergeLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Handler serves the ring as JSON: {"total": N, "merges": [newest,
// ...]}, capped by ?limit= like every ring endpoint.
func (l *MergeLog) Handler() http.Handler {
	return RingHandler("merges", l.Total, func(_ *http.Request, limit int) any {
		return l.SnapshotLimit(limit)
	})
}
