package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Build identity: both daemons export who they are — module version,
// Go toolchain, VCS revision — as a conventional build_info gauge
// (value 1, identity in the labels) and in the coordinator's
// /debug/status snapshot, so a mixed-version fleet mid-rolling-upgrade
// is diagnosable from its metrics alone.

// BuildInfo is the resolved build identity of the running binary.
type BuildInfo struct {
	Version  string `json:"version"`  // main module version ("(devel)" for local builds)
	Go       string `json:"go"`       // toolchain that built the binary
	Revision string `json:"revision"` // VCS commit, "" when built outside a checkout
	Modified bool   `json:"modified"` // VCS working tree was dirty at build
}

var readBuildOnce = sync.OnceValue(func() BuildInfo {
	b := BuildInfo{Version: "unknown", Go: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	if info.GoVersion != "" {
		b.Go = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
})

// ReadBuild resolves the running binary's build info (cached after the
// first call; runtime/debug parses the embedded module data each time).
func ReadBuild() BuildInfo {
	return readBuildOnce()
}

// RegisterBuildInfo adds the build_info gauge to r and returns the
// identity it exports. Registered last so existing series keep their
// exposition order.
func RegisterBuildInfo(r *Registry) BuildInfo {
	b := ReadBuild()
	labels := Label("version", b.Version) + "," + Label("go", b.Go) + "," + Label("revision", b.Revision)
	r.LabeledGaugeFunc("build_info", "Build identity of the running binary; the value is always 1.",
		func(emit func(labels string, v float64)) { emit(labels, 1) })
	return b
}
