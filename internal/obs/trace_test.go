package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

func mkTrace(i int) MergeTrace {
	return MergeTrace{
		Session:    fmt.Sprintf("%x", i),
		Requested:  "compact",
		Final:      "compact",
		Quiesced:   2,
		TotalBytes: 100 * i,
		Rounds: []RoundTrace{{
			Round: 0,
			Bytes: 100 * i,
			Shards: []ShardRoundTrace{
				{Shard: "127.0.0.1:9001", SentBytes: 60 * i, RecvBytes: 40 * i, RTTMS: 1.5},
			},
		}},
	}
}

func TestMergeLogRingOrder(t *testing.T) {
	l := NewMergeLog(3)
	for i := 1; i <= 5; i++ {
		l.Record(mkTrace(i))
	}
	if got := l.Total(); got != 5 {
		t.Fatalf("total %d, want 5", got)
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot holds %d, want capacity 3", len(snap))
	}
	// Newest first: sessions 5, 4, 3 survive; 1 and 2 were evicted.
	for i, want := range []string{"5", "4", "3"} {
		if snap[i].Session != want {
			t.Fatalf("snapshot[%d].Session = %q, want %q (full: %+v)", i, snap[i].Session, want, snap)
		}
	}
}

func TestMergeLogPartialFill(t *testing.T) {
	l := NewMergeLog(8)
	l.Record(mkTrace(1))
	l.Record(mkTrace(2))
	snap := l.Snapshot()
	if len(snap) != 2 || snap[0].Session != "2" || snap[1].Session != "1" {
		t.Fatalf("partial-fill snapshot wrong: %+v", snap)
	}
}

func TestMergeLogSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewMergeLog(2)
	l.SetSink(&buf)
	l.Record(mkTrace(1))
	l.Record(mkTrace(2))
	l.Record(mkTrace(3)) // evicts 1 from the ring, but the sink keeps all three

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("sink holds %d lines, want 3:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var tr MergeTrace
		if err := json.Unmarshal([]byte(line), &tr); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if want := fmt.Sprintf("%x", i+1); tr.Session != want {
			t.Fatalf("line %d session %q, want %q", i, tr.Session, want)
		}
		if tr.TotalBytes != 100*(i+1) {
			t.Fatalf("line %d total_bytes %d, want %d", i, tr.TotalBytes, 100*(i+1))
		}
	}
}

func TestMergeLogHandler(t *testing.T) {
	l := NewMergeLog(4)
	l.Record(mkTrace(1))
	l.Record(mkTrace(2))

	srv := httptest.NewServer(l.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	var body struct {
		Total  uint64       `json:"total"`
		Merges []MergeTrace `json:"merges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Total != 2 || len(body.Merges) != 2 {
		t.Fatalf("body total=%d merges=%d, want 2/2", body.Total, len(body.Merges))
	}
	if body.Merges[0].Session != "2" {
		t.Fatalf("newest-first violated: first merge session %q", body.Merges[0].Session)
	}
	if got := body.Merges[0].Rounds[0].Shards[0].SentBytes; got != 120 {
		t.Fatalf("round-trip lost shard detail: sent_bytes %d, want 120", got)
	}
}
