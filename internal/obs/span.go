package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Request-scoped tracing: MergeLog answers "what did compact merges
// cost on average and per session"; the span ring answers "what did
// THIS query do, on both sides of the shard wire". The coordinator
// mints a 64-bit trace ID per query, stamps it into shard-control
// frames (protocol.FlagTraced), and both daemons record fixed-size
// spans into a TraceLog — a flight recorder served at /debug/traces
// and teed to the -trace-file JSONL sink. Recording sits on the ingest
// and merge hot paths, so it follows the histogram contract: no locks
// held across I/O, and zero allocations per Record (pinned by test).

// SpanOp names what a span measured. The set is closed — op strings are
// rendered from this enum, never from caller input — so span vocabulary
// stays as bounded as metric label cardinality.
type SpanOp uint8

// Span operations, both daemons.
const (
	OpQuery         SpanOp = iota + 1 // coordinator: one merged query, end to end
	OpMergeRound                      // coordinator: one compact round against one shard
	OpMergeFallback                   // coordinator: compact session abandoned
	OpMergeFull                       // coordinator: full-window snapshot of one shard
	OpIngestBatch                     // coordinator: one routed ingest batch
	OpWALAppend                       // either: one durable-store append
	OpReadings                        // shard: one routed READINGS frame
	OpSessionCreate                   // shard: merge session opened (Hit = source cache reuse)
	OpSessionRefuse                   // shard: unknown/evicted merge session refused
	OpLedger                          // shard: one LEDGER delivery absorbed
	OpSufficient                      // shard: one SUFFICIENT round served (Hit = replayed)
	OpEnqueue                         // shard: queue wait of a drained batch head
	OpObserve                         // shard: one batch-observe ranking pass
)

// String implements fmt.Stringer.
func (o SpanOp) String() string {
	switch o {
	case OpQuery:
		return "query"
	case OpMergeRound:
		return "merge_round"
	case OpMergeFallback:
		return "merge_fallback"
	case OpMergeFull:
		return "merge_full"
	case OpIngestBatch:
		return "ingest_batch"
	case OpWALAppend:
		return "wal_append"
	case OpReadings:
		return "readings"
	case OpSessionCreate:
		return "session_create"
	case OpSessionRefuse:
		return "session_refuse"
	case OpLedger:
		return "ledger"
	case OpSufficient:
		return "sufficient"
	case OpEnqueue:
		return "enqueue"
	case OpObserve:
		return "observe"
	default:
		return "unknown"
	}
}

// Span is one recorded event of one traced query. Every field is fixed
// size (strings are headers into already-live memory), so passing and
// storing a Span never allocates.
type Span struct {
	Trace   uint64        // query trace ID; 0 = untraced work
	Op      SpanOp        // what happened
	Shard   string        // peer address, "" for local work
	Session uint64        // merge session, 0 if none
	ReqID   uint32        // shard-control reqID, 0 if none
	Round   int32         // merge round, meaningful for merge ops
	Points  int32         // points moved/observed
	Bytes   int32         // payload bytes moved
	Hit     bool          // cache hit / replay, per op docs
	Err     string        // failure, "" on success
	Start   time.Time     // when the spanned work began
	Dur     time.Duration // how long it took
}

// spanWire is the JSON shape of a Span: 64-bit IDs as hex strings
// (JSON numbers lose precision past 2^53), the op by name, and
// durations in float milliseconds like the merge traces.
type spanWire struct {
	Trace   string  `json:"trace"`
	Op      string  `json:"op"`
	Shard   string  `json:"shard,omitempty"`
	Session string  `json:"session,omitempty"`
	ReqID   uint32  `json:"req_id,omitempty"`
	Round   int32   `json:"round"`
	Points  int32   `json:"points,omitempty"`
	Bytes   int32   `json:"bytes,omitempty"`
	Hit     bool    `json:"hit,omitempty"`
	Err     string  `json:"err,omitempty"`
	StartMS int64   `json:"start_unix_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// MarshalJSON implements json.Marshaler.
func (s Span) MarshalJSON() ([]byte, error) {
	w := spanWire{
		Trace:   fmt.Sprintf("%016x", s.Trace),
		Op:      s.Op.String(),
		Shard:   s.Shard,
		ReqID:   s.ReqID,
		Round:   s.Round,
		Points:  s.Points,
		Bytes:   s.Bytes,
		Hit:     s.Hit,
		Err:     s.Err,
		StartMS: s.Start.UnixMilli(),
		DurMS:   float64(s.Dur) / float64(time.Millisecond),
	}
	if s.Session != 0 {
		w.Session = fmt.Sprintf("%016x", s.Session)
	}
	return json.Marshal(w)
}

// dedupeSlots is how many recent (trace, reqID, op) keys the log
// remembers. A compact merge emits at most rounds×shards×2 request-
// driven spans, far under this, so every retry inside one query window
// is reliably recognized.
const dedupeSlots = 256

// TraceLog is a bounded flight-recorder ring of spans, the span-level
// sibling of MergeLog: same eviction, same newest-first snapshot, same
// optional JSONL sink. Spans that carry a reqID are deduplicated — a
// retried shard-control request re-executes (or replays) server-side
// work, and recording it twice would make one logical round look like
// two — by remembering the last dedupeSlots request keys in a fixed
// array, so the dedupe costs no allocation either.
type TraceLog struct {
	mu     sync.Mutex
	buf    []Span
	next   int
	total  uint64
	sink   io.Writer
	dedupe [dedupeSlots]uint64
	dnext  int
}

// NewTraceLog returns a ring holding the last capacity spans.
func NewTraceLog(capacity int) *TraceLog {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceLog{buf: make([]Span, 0, capacity)}
}

// SetSink tees every subsequent Record to w as one JSON line. Write
// errors are silently dropped — tracing must never fail a query. A
// sink takes Record off its zero-allocation path (the JSON encoding
// allocates); the tee is an opt-in flag, the ring is not.
func (l *TraceLog) SetSink(w io.Writer) {
	l.mu.Lock()
	l.sink = w
	l.mu.Unlock()
}

// Record appends one span, evicting the oldest past capacity. A span
// with a nonzero ReqID already recorded under the same (trace, reqID,
// op) recently is dropped as a retry duplicate.
func (l *TraceLog) Record(s Span) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s.ReqID != 0 {
		key := s.Trace ^ uint64(s.ReqID)<<8 ^ uint64(s.Op)
		for _, k := range l.dedupe {
			if k == key {
				return
			}
		}
		l.dedupe[l.dnext] = key
		l.dnext = (l.dnext + 1) % dedupeSlots
	}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, s)
	} else {
		l.buf[l.next] = s
		l.next = (l.next + 1) % cap(l.buf)
	}
	l.total++
	if l.sink != nil {
		if line, err := json.Marshal(s); err == nil {
			l.sink.Write(append(line, '\n'))
		}
	}
}

// Snapshot returns up to limit held spans, newest first, keeping only
// those with the given trace ID when trace is nonzero. limit <= 0
// means no cap beyond the ring itself.
func (l *TraceLog) Snapshot(trace uint64, limit int) []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Span
	for i := len(l.buf) - 1; i >= 0; i-- {
		s := l.buf[(l.next+i)%len(l.buf)]
		if trace != 0 && s.Trace != trace {
			continue
		}
		out = append(out, s)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Total returns how many spans have ever been recorded.
func (l *TraceLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Handler serves the ring as {"total": N, "spans": [newest, ...]},
// filtered to one query with ?trace=<hex id> and capped by ?limit=.
func (l *TraceLog) Handler() http.Handler {
	return RingHandler("spans", l.Total, func(r *http.Request, limit int) any {
		var trace uint64
		if s := r.URL.Query().Get("trace"); s != "" {
			trace, _ = strconv.ParseUint(s, 16, 64)
		}
		return l.Snapshot(trace, limit)
	})
}
