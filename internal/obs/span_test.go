package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceLogRingOrder(t *testing.T) {
	l := NewTraceLog(3)
	for i := 1; i <= 5; i++ {
		l.Record(Span{Trace: uint64(i), Op: OpQuery})
	}
	got := l.Snapshot(0, 0)
	if len(got) != 3 {
		t.Fatalf("snapshot length = %d, want 3", len(got))
	}
	for i, want := range []uint64{5, 4, 3} {
		if got[i].Trace != want {
			t.Fatalf("snapshot[%d].Trace = %d, want %d (newest first)", i, got[i].Trace, want)
		}
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %d, want 5", l.Total())
	}
}

func TestTraceLogFilterAndLimit(t *testing.T) {
	l := NewTraceLog(16)
	for i := 0; i < 6; i++ {
		l.Record(Span{Trace: 0xaaaa, Op: OpMergeRound, Round: int32(i)})
		l.Record(Span{Trace: 0xbbbb, Op: OpMergeRound, Round: int32(i)})
	}
	only := l.Snapshot(0xaaaa, 0)
	if len(only) != 6 {
		t.Fatalf("filtered snapshot length = %d, want 6", len(only))
	}
	for _, s := range only {
		if s.Trace != 0xaaaa {
			t.Fatalf("filter leaked trace %x", s.Trace)
		}
	}
	if got := l.Snapshot(0xaaaa, 2); len(got) != 2 || got[0].Round != 5 {
		t.Fatalf("limited snapshot = %+v, want the 2 newest", got)
	}
}

// TestTraceLogDedupesRetries pins the retry contract: a span carrying a
// reqID records once per (trace, reqID, op) — an ARQ retransmit that
// re-executes server-side work must not double its span — while spans
// without a reqID (local work like enqueue/observe) never dedupe.
func TestTraceLogDedupesRetries(t *testing.T) {
	l := NewTraceLog(16)
	s := Span{Trace: 7, Op: OpLedger, ReqID: 42}
	l.Record(s)
	l.Record(s) // retry duplicate
	if got := l.Snapshot(7, 0); len(got) != 1 {
		t.Fatalf("retried reqID span recorded %d times, want 1", len(got))
	}
	// Same reqID, different op: a different logical event, kept.
	l.Record(Span{Trace: 7, Op: OpSufficient, ReqID: 42})
	// Same op, different trace: kept.
	l.Record(Span{Trace: 8, Op: OpLedger, ReqID: 42})
	if got := l.Snapshot(0, 0); len(got) != 3 {
		t.Fatalf("distinct keys collapsed: %d spans, want 3", len(got))
	}
	// reqID 0 = not request-driven: records every time.
	l.Record(Span{Trace: 7, Op: OpEnqueue})
	l.Record(Span{Trace: 7, Op: OpEnqueue})
	if got := l.Snapshot(0, 0); len(got) != 5 {
		t.Fatalf("reqID-0 spans deduped: %d spans, want 5", len(got))
	}
}

// TestTraceLogRecordZeroAlloc enforces the hot-path contract: without a
// sink, Record allocates nothing — it sits on the ingest drain and the
// per-round merge accounting.
func TestTraceLogRecordZeroAlloc(t *testing.T) {
	l := NewTraceLog(64)
	s := Span{Trace: 9, Op: OpEnqueue, Shard: "127.0.0.1:9101", Points: 12, Start: time.Now(), Dur: time.Millisecond}
	if n := testing.AllocsPerRun(1000, func() { l.Record(s) }); n != 0 {
		t.Fatalf("Record allocates %.1f times per span, want 0", n)
	}
	var req uint32
	if n := testing.AllocsPerRun(1000, func() {
		req++
		l.Record(Span{Trace: 9, Op: OpLedger, ReqID: req})
	}); n != 0 {
		t.Fatalf("deduped Record allocates %.1f times per span, want 0", n)
	}
}

func TestTraceLogSinkJSONL(t *testing.T) {
	var sb strings.Builder
	l := NewTraceLog(4)
	l.SetSink(&sb)
	l.Record(Span{Trace: 0xfeed, Op: OpSufficient, Session: 0xbeef, Round: 2, Hit: true, Err: "late"})
	line := strings.TrimSpace(sb.String())
	var w struct {
		Trace   string `json:"trace"`
		Op      string `json:"op"`
		Session string `json:"session"`
		Round   int32  `json:"round"`
		Hit     bool   `json:"hit"`
		Err     string `json:"err"`
	}
	if err := json.Unmarshal([]byte(line), &w); err != nil {
		t.Fatalf("sink line %q: %v", line, err)
	}
	if w.Trace != "000000000000feed" || w.Op != "sufficient" || w.Session != "000000000000beef" ||
		w.Round != 2 || !w.Hit || w.Err != "late" {
		t.Fatalf("sink line decoded to %+v", w)
	}
}

// TestTraceHandlerLimits pins the shared ring-serving contract both
// /debug/merges and /debug/traces ride on: default cap, ?limit=
// raises it only to the maximum, and ?trace= filters to one query.
func TestTraceHandlerLimits(t *testing.T) {
	l := NewTraceLog(2 * maxRingLimit)
	for i := 0; i < 2*maxRingLimit; i++ {
		l.Record(Span{Trace: uint64(1 + i%2), Op: OpObserve})
	}
	h := l.Handler()
	serve := func(url string) (uint64, []map[string]any) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var body struct {
			Total uint64           `json:"total"`
			Spans []map[string]any `json:"spans"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: %v", url, err)
		}
		return body.Total, body.Spans
	}
	if total, spans := serve("/debug/traces"); total != uint64(2*maxRingLimit) || len(spans) != defaultRingLimit {
		t.Fatalf("default: total=%d spans=%d, want total=%d spans=%d", total, len(spans), 2*maxRingLimit, defaultRingLimit)
	}
	if _, spans := serve("/debug/traces?limit=10"); len(spans) != 10 {
		t.Fatalf("limit=10 served %d spans", len(spans))
	}
	if _, spans := serve("/debug/traces?limit=999999"); len(spans) != maxRingLimit {
		t.Fatalf("oversized limit served %d spans, want the %d cap", len(spans), maxRingLimit)
	}
	_, spans := serve("/debug/traces?trace=0000000000000001&limit=1024")
	if len(spans) != maxRingLimit {
		t.Fatalf("trace filter served %d spans", len(spans))
	}
	for _, s := range spans {
		if s["trace"] != "0000000000000001" {
			t.Fatalf("trace filter leaked %v", s["trace"])
		}
	}
}
