package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"innet/internal/baseline"
	"innet/internal/obs"
	"innet/internal/protocol"
)

// wireSpan is the /debug/traces JSON shape the tests decode.
type wireSpan struct {
	Trace   string `json:"trace"`
	Op      string `json:"op"`
	Shard   string `json:"shard"`
	Session string `json:"session"`
	Err     string `json:"err"`
}

// fetchSpans GETs a /debug/traces URL and decodes the span list.
func fetchSpans(t *testing.T, url string) []wireSpan {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Total uint64     `json:"total"`
		Spans []wireSpan `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
	return body.Spans
}

// opCount tallies spans by op name.
func opCount(spans []wireSpan) map[string]int {
	out := make(map[string]int)
	for _, s := range spans {
		out[s.Op]++
	}
	return out
}

// waitTraced blocks until every shard is up and has negotiated trace
// propagation over a health probe, so the query under test stamps its
// frames instead of racing the first probe.
func waitTraced(t *testing.T, coord *Coordinator) {
	t.Helper()
	waitFor(t, 15*time.Second, "shards traced", func() bool {
		infos := coord.ShardInfos()
		for _, si := range infos {
			if !si.Up || !si.Traced {
				return false
			}
		}
		return len(infos) > 0
	})
}

// TestQueryTraceEndToEnd is the tracing acceptance pin: one compact
// query against a live 2-shard cluster yields, under a single trace ID,
// coordinator-side round spans at its /debug/traces and shard-side
// merge-session spans at each shard's /debug/traces.
func TestQueryTraceEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var shards []*testShard
	var addrs []string
	for i := 0; i < 2; i++ {
		sh := startShard(t, "")
		t.Cleanup(sh.stop)
		shards = append(shards, sh)
		addrs = append(addrs, sh.addr)
	}
	coord, err := New(Config{
		Detector:       clusterDetCfg,
		Shards:         addrs,
		MergeMode:      MergeCompact,
		QueryTimeout:   15 * time.Second,
		HealthInterval: 50 * time.Millisecond,
		HealthMisses:   1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	waitTraced(t, coord)

	for _, err := range coord.IngestBatch(trace(61, sensorRange(10), 4)) {
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	for _, sh := range shards {
		if err := sh.svc.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}

	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()
	resp, err := http.Get(coordSrv.URL + "/v1/outliers")
	if err != nil {
		t.Fatal(err)
	}
	var est WireMergedEstimate
	err = json.NewDecoder(resp.Body).Decode(&est)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if est.MergeMode != MergeCompact {
		t.Fatalf("query served by %q, want compact", est.MergeMode)
	}
	if est.Trace == "" || est.Trace == "0000000000000000" {
		t.Fatalf("query response carries no trace ID: %q", est.Trace)
	}

	spans := fetchSpans(t, coordSrv.URL+"/debug/traces?trace="+est.Trace)
	for _, s := range spans {
		if s.Trace != est.Trace {
			t.Fatalf("coordinator trace filter leaked span %+v", s)
		}
	}
	ops := opCount(spans)
	if ops["query"] != 1 || ops["merge_round"] == 0 {
		t.Fatalf("coordinator spans = %v, want one query span and ≥1 merge_round", ops)
	}

	for _, sh := range shards {
		shardSrv := httptest.NewServer(sh.svc.Handler())
		spans := fetchSpans(t, shardSrv.URL+"/debug/traces?trace="+est.Trace)
		shardSrv.Close()
		ops := opCount(spans)
		if ops["session_create"]+ops["sufficient"] == 0 {
			t.Fatalf("shard %s recorded no session spans for trace %s (got %v)", sh.addr, est.Trace, ops)
		}
		for _, s := range spans {
			if s.Trace != est.Trace {
				t.Fatalf("shard %s trace filter leaked span %+v", sh.addr, s)
			}
		}
	}
}

// TestRetryDoesNotDuplicateSpans injects frame loss that forces a retry
// of every round's first SUFFICIENT response and pins the dedupe
// contract: the retransmit reuses the request's reqID, so neither side
// records a second span for the same logical round.
func TestRetryDoesNotDuplicateSpans(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	coord, single, shards, proxies := mergeCluster(t, 2, MergeCompact)
	waitTraced(t, coord)
	feedBoth(t, ctx, coord, single, shards, trace(71, sensorRange(12), 5))
	snap, err := single.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Compute(clusterDetCfg.Ranker, clusterDetCfg.N, snap)

	for _, px := range proxies {
		seen := make(map[uint64]map[uint16]bool)
		px.setRule(func(f protocol.Frame) bool {
			if f.Kind != protocol.FrameSufficient || !f.Response() {
				return false
			}
			body, err := protocol.DecodeSufficient(f.Body)
			if err != nil {
				return false
			}
			if seen[body.Session] == nil {
				seen[body.Session] = make(map[uint16]bool)
			}
			if !seen[body.Session][body.Round] {
				seen[body.Session][body.Round] = true
				return true // first response of the round: lose it
			}
			return false
		})
	}
	merged, err := coord.MergedEstimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Mode != MergeCompact || !samePoints(merged.Outliers, want) {
		t.Fatalf("retried merge wrong: mode=%q %s != %s", merged.Mode, ids(merged.Outliers), ids(want))
	}

	// Coordinator side: at most one merge_round span per (shard, round).
	rounds := make(map[string]int)
	for _, s := range coord.Traces().Snapshot(merged.Trace, 0) {
		if s.Op != obs.OpMergeRound {
			continue
		}
		key := fmt.Sprintf("%s/%d", s.Shard, s.Round)
		if rounds[key]++; rounds[key] > 1 {
			t.Fatalf("coordinator recorded %d merge_round spans for %s", rounds[key], key)
		}
	}
	if len(rounds) == 0 {
		t.Fatal("no merge_round spans recorded")
	}
	// Shard side: a retried SUFFICIENT must not double its span.
	sawShardSpans := false
	for _, sh := range shards {
		perRound := make(map[string]int)
		for _, s := range sh.svc.Traces().Snapshot(merged.Trace, 0) {
			if s.Op != obs.OpSufficient {
				continue
			}
			sawShardSpans = true
			key := fmt.Sprintf("%x/%d", s.Session, s.Round)
			if perRound[key]++; perRound[key] > 1 {
				t.Fatalf("shard %s recorded %d sufficient spans for session/round %s", sh.addr, perRound[key], key)
			}
		}
	}
	if !sawShardSpans {
		t.Fatal("no shard-side sufficient spans recorded for the query's trace")
	}
}

// TestFallbackSpanSharesTrace kills a shard mid-query (its link goes
// dark after the first SUFFICIENT response) and pins that the fallback
// event lands in the same trace as the compact rounds that failed: one
// /debug/traces lookup tells the whole story of the degraded query.
func TestFallbackSpanSharesTrace(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	coord, single, shards, proxies := mergeCluster(t, 2, MergeCompact)
	waitTraced(t, coord)
	feedBoth(t, ctx, coord, single, shards, trace(83, sensorRange(12), 5))
	snap, err := single.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Compute(clusterDetCfg.Ranker, clusterDetCfg.N, snap)

	dead := false
	proxies[1].setRule(func(f protocol.Frame) bool {
		if dead {
			return true
		}
		if f.Kind == protocol.FrameSufficient && f.Response() {
			dead = true
		}
		return false
	})
	merged, err := coord.MergedEstimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Mode != MergeFull || !samePoints(merged.Outliers, want) {
		t.Fatalf("mid-query kill merge wrong: mode=%q %s != %s", merged.Mode, ids(merged.Outliers), ids(want))
	}

	spans := coord.Traces().Snapshot(merged.Trace, 0)
	var fallbacks, failedRounds, fullSnaps int
	for _, s := range spans {
		switch s.Op {
		case obs.OpMergeFallback:
			fallbacks++
		case obs.OpMergeRound:
			if s.Err != "" {
				failedRounds++
			}
		case obs.OpMergeFull:
			fullSnaps++
		}
	}
	if fallbacks != 1 {
		t.Fatalf("trace %016x holds %d merge_fallback spans, want 1", merged.Trace, fallbacks)
	}
	if failedRounds == 0 {
		t.Fatalf("trace %016x holds no failed merge_round span alongside the fallback", merged.Trace)
	}
	if fullSnaps == 0 {
		t.Fatalf("trace %016x holds no merge_full span for the fallback path", merged.Trace)
	}
}

// TestNonStampingShardCompatibility runs the coordinator against shards
// whose frames never carry the trace field (the proxy strips FlagTraced
// in both directions, so probes land legacy-shaped and nothing is
// echoed). Capability negotiation must leave those links unstamped and
// the merge — compact included — must stay exact.
func TestNonStampingShardCompatibility(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	coord, single, shards, proxies := mergeCluster(t, 1, MergeCompact)
	for _, px := range proxies {
		px.setRewrite(func(f protocol.Frame) *protocol.Frame {
			if !f.Traced() {
				return nil
			}
			f.Flags &^= protocol.FlagTraced
			f.Trace = 0
			return &f
		})
	}
	feedBoth(t, ctx, coord, single, shards, trace(97, sensorRange(12), 5))
	snap, err := single.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Compute(clusterDetCfg.Ranker, clusterDetCfg.N, snap)

	merged, err := coord.MergedEstimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Mode != MergeCompact || !samePoints(merged.Outliers, want) {
		t.Fatalf("non-stamping merge wrong: mode=%q %s != %s", merged.Mode, ids(merged.Outliers), ids(want))
	}
	for _, si := range coord.ShardInfos() {
		if si.Traced {
			t.Fatalf("shard %s marked traced behind a flag-stripping link", si.Addr)
		}
	}
	// The coordinator still owns a trace for the query; the shards,
	// never having seen the ID, must hold nothing under it.
	if merged.Trace == 0 {
		t.Fatal("query against non-stamping shards minted no trace ID")
	}
	if spans := coord.Traces().Snapshot(merged.Trace, 0); len(spans) == 0 {
		t.Fatal("coordinator recorded no spans for the unstamped query")
	}
	for _, sh := range shards {
		if spans := sh.svc.Traces().Snapshot(merged.Trace, 0); len(spans) != 0 {
			t.Fatalf("shard %s holds %d spans for a trace that never crossed its wire", sh.addr, len(spans))
		}
	}
}

// TestStatusEndpoint pins the /debug/status aggregate: shard map +
// health + per-shard probe state, identity/WAL fields, and build info
// in one snapshot.
func TestStatusEndpoint(t *testing.T) {
	coord, _, _, _ := mergeCluster(t, 1, MergeCompact)
	waitTraced(t, coord)
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/status")
	if err != nil {
		t.Fatal(err)
	}
	var st WireStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" || st.ShardsUp != 3 || st.ShardsTotal != 3 || len(st.Shards) != 3 {
		t.Fatalf("status = %+v, want ok with 3/3 shards", st)
	}
	for _, si := range st.Shards {
		if !si.Up || !si.Traced {
			t.Fatalf("shard %s not up+traced in status: %+v", si.Addr, si)
		}
		if si.LastRTTMS <= 0 {
			t.Fatalf("shard %s has no probe RTT: %+v", si.Addr, si)
		}
	}
	if st.IdentitySource != "none" {
		t.Fatalf("identity source = %q, want none (no store configured)", st.IdentitySource)
	}
	if st.Build.Go == "" {
		t.Fatalf("build info missing Go version: %+v", st.Build)
	}
	if st.MergeMode != MergeCompact {
		t.Fatalf("merge mode = %q", st.MergeMode)
	}
}
