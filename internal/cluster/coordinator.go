package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"innet/internal/core"
	"innet/internal/ingest"
	"innet/internal/obs"
	"innet/internal/protocol"
	"innet/internal/store"
)

// Coordinator errors.
var (
	ErrNoHealthyShard = errors.New("cluster: no healthy shard owns the sensor")
	ErrRouteFailed    = errors.New("cluster: no owning shard accepted the reading")
	ErrUnknownShard   = errors.New("cluster: unknown shard")
	ErrClosed         = errors.New("cluster: coordinator closed")
)

// Config parameterizes a Coordinator.
type Config struct {
	// Detector mirrors the shards' detector configuration; Ranker and N
	// drive the estimate merge, Window drives the coordinator-side
	// staleness gate. Required (Node is ignored).
	Detector core.Config

	// Shards lists the initial shard control addresses. At least one is
	// required.
	Shards []string

	// Replicas is how many shards each sensor's readings are routed to
	// (the boundary-sensor replication factor). With Replicas ≥ 2 the
	// merged answer stays exact through any single shard failure,
	// because every point survives on another shard. Default 1.
	Replicas int

	// QueryTimeout bounds the whole estimate fan-out. Default 2s.
	QueryTimeout time.Duration

	// MergeMode selects how MergedEstimate combines the shards:
	// MergeCompact (default) runs the paper's Algorithm 1 iteratively
	// over the shard-control wire — O(estimate + support) payload per
	// round — falling back to MergeFull when a shard cannot play or the
	// round budget runs out; MergeFull ships whole window snapshots.
	// Both are exact.
	MergeMode string

	// MergeRounds bounds one compact merge's iteration count before it
	// falls back to the full-window path. Default 16.
	MergeRounds int

	// HealthInterval is the probe period. Default 500ms.
	HealthInterval time.Duration

	// ProbeTimeout bounds one health probe, independently of the probe
	// period: a short period keeps down-detection snappy without a
	// scheduling hiccup on a loaded host counting as a miss. Default 1s.
	ProbeTimeout time.Duration

	// HealthMisses is how many consecutive probe failures mark a shard
	// down. Default 3.
	HealthMisses int

	// RetryAttempts bounds per-RPC retries on the lossy control wire.
	// Default 3.
	RetryAttempts int

	// MaxFrameBytes is the byte budget for one READINGS/HANDOFF frame's
	// point payload; batches are fragmented to stay under it. Default
	// 60000, under the UDP payload ceiling at any feature dimension.
	MaxFrameBytes int

	// Store, when set, persists the coordinator's per-sensor identity
	// state (next sequence number, newest timestamp): every batch that
	// advances a sensor's counters appends the new floors, and startup
	// recovery reads them back before falling back to the shard-window
	// fan. Nil keeps identity state purely in memory, recovered only
	// from surviving shard windows. The Coordinator uses the store but
	// does not own it; the caller closes it after Close.
	Store store.Store

	// IdentityCompactEvery bounds the identity WAL: after this many
	// appended identity updates the store is compacted down to one
	// record per sensor. Default 4096.
	IdentityCompactEvery int

	// Logger receives structured fleet and query events. Every record
	// that belongs to a query carries its trace ID as a "trace" attr.
	// Nil discards.
	Logger *slog.Logger

	// SlowQuery, when positive, logs every merged-estimate query that
	// takes at least this long through Logger (at Warn, with its trace
	// ID). Zero disables the log.
	SlowQuery time.Duration

	// TraceSink, when set, receives every compact-merge session trace
	// and every query span as one JSON line each (the -trace-file flag);
	// the in-memory /debug/merges and /debug/traces rings record them
	// regardless.
	TraceSink io.Writer

	// TraceCapacity bounds the /debug/merges ring. Default 256.
	TraceCapacity int

	// SpanCapacity bounds the /debug/traces flight-recorder ring.
	// Default 2048.
	SpanCapacity int
}

func (c *Config) applyDefaults() {
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 2 * time.Second
	}
	if c.MergeMode == "" {
		c.MergeMode = MergeCompact
	}
	if c.MergeRounds < 1 {
		c.MergeRounds = 16
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.HealthMisses < 1 {
		c.HealthMisses = 3
	}
	if c.RetryAttempts < 1 {
		c.RetryAttempts = 3
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = defaultFrameBytes
	}
	if c.IdentityCompactEvery < 1 {
		c.IdentityCompactEvery = 4096
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.TraceCapacity < 1 {
		c.TraceCapacity = 256
	}
	if c.SpanCapacity < 1 {
		c.SpanCapacity = 2048
	}
}

// shardState is the coordinator's view of one shard process.
type shardState struct {
	addr    string
	udp     *net.UDPAddr
	up      bool // last probe round reached it (optimistic at birth)
	synced  bool // acknowledged the current map version
	syncing bool // a resync goroutine is in flight
	probing bool // a health probe is in flight
	misses  int
	last    protocol.HealthBody
	lastAt  time.Time
	lastRTT time.Duration // last successful probe's round trip

	// traced is whether the shard echoed FlagTraced on its last health
	// response — the capability negotiation that keeps query frames to a
	// legacy shard byte-identical to the old wire. Read by query fan-out
	// goroutines without c.mu, hence atomic.
	traced atomic.Bool
}

// sensorRoute is the coordinator-side per-sensor ingest state: the next
// sequence number to stamp and the newest timestamp seen (for the same
// staleness gate the shards apply, so identity assignment is
// deterministic no matter which replicas are reachable).
type sensorRoute struct {
	nextSeq uint32
	latest  time.Duration
}

// Stats snapshots the coordinator counters for /metrics.
type Stats struct {
	Routed          uint64 // readings accepted by ≥1 owning shard
	Rejected        uint64 // readings failing validation
	Stale           uint64 // readings older than the window
	Failed          uint64 // readings no owning shard accepted
	Reroutes        uint64 // readings routed past a down owner
	Frames          uint64 // READINGS frames sent
	Merges          uint64 // estimate merges served
	MergesDegraded  uint64 // merges with ≥1 shard missing
	MergesCompact   uint64 // merges served by the compact iterative path
	MergeFallbacks  uint64 // compact merges that fell back to full
	MergeRounds     uint64 // compact-merge rounds driven, total
	MergeBytes      uint64 // compact-merge point payload bytes, both directions
	MergeFullBytes  uint64 // full-path window-snapshot payload bytes received
	Recovered       uint64 // sensors whose identity counters were recovered at startup
	IdentitySource  string // where startup recovery got them: store, shard-fan, none
	WALErrors       uint64 // failed identity-store appends (routing keeps going)
	Assigns         uint64 // ASSIGN epochs acknowledged
	HandoffSensors  uint64 // sensors restored via handoff
	HandoffPoints   uint64 // points moved via handoff
	Flaps           uint64 // up→down transitions observed
	TruncatedFrames uint64 // control datagrams dropped as kernel-truncated
	ShardsUp        int
	ShardsTotal     int
	Sensors         int // distinct sensors routed so far
}

// Coordinator is the cluster front door: it owns the shard map, routes
// identity-stamped readings to owning shards, probes shard health,
// resynchronizes rejoining shards (ASSIGN + window handoff), and serves
// the merged outlier view. All methods are safe for concurrent use.
type Coordinator struct {
	cfg    Config
	client *ctlClient

	mu      sync.Mutex
	smap    *ShardMap
	shards  map[string]*shardState
	sensors map[core.NodeID]*sensorRoute
	closed  bool

	routed, rejected, stale, failed atomic.Uint64
	reroutes, frames                atomic.Uint64
	merges, mergesDegraded          atomic.Uint64
	mergesCompact, mergeFallbacks   atomic.Uint64
	mergeRounds, mergeBytes         atomic.Uint64
	mergeFullBytes, recovered       atomic.Uint64
	assigns, handoffSen, handoffPts atomic.Uint64
	flaps                           atomic.Uint64

	// Identity durability (inert when cfg.Store is nil).
	identitySource atomic.Value  // string: store, shard-fan, none
	idStoreMu      sync.Mutex    // serializes identity appends with snapshot+Compact
	idsSince       atomic.Uint64 // identity updates appended since last compaction
	idCompacting   atomic.Bool   // single-flight guard
	walErrors      atomic.Uint64 // failed store appends

	// sessionIDs mints compact-merge session IDs that cannot collide
	// within this process; see merge.go. traceIDs mints per-query trace
	// IDs the same way — a second generator so neither sequence
	// constrains the other.
	sessionIDs *sessionIDs
	traceIDs   *sessionIDs

	obs      *coordObs     // metrics registry + latency histograms, built in New
	mergeLog *obs.MergeLog // /debug/merges ring of compact-merge session traces
	traceLog *obs.TraceLog // /debug/traces flight-recorder ring of query spans

	ctx        context.Context
	cancel     context.CancelFunc
	healthDone chan struct{}
}

// New validates cfg, binds the control socket, pushes the initial shard
// map, and starts the health loop.
func New(cfg Config) (*Coordinator, error) {
	cfg.applyDefaults()
	probe := cfg.Detector
	probe.Node = 1
	if _, err := core.NewDetector(probe); err != nil {
		return nil, err
	}
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: at least one shard is required")
	}
	client, err := newCtlClient()
	if err != nil {
		return nil, err
	}
	smap := NewShardMap(cfg.Shards)
	shards := make(map[string]*shardState, smap.Len())
	for _, addr := range smap.Shards() {
		udp, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			client.close()
			return nil, fmt.Errorf("cluster: resolve shard %q: %w", addr, err)
		}
		// Optimistic birth: route immediately; the health loop demotes
		// unreachable shards within HealthMisses probes.
		shards[addr] = &shardState{addr: addr, udp: udp, up: true}
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:        cfg,
		client:     client,
		smap:       smap,
		shards:     shards,
		sensors:    make(map[core.NodeID]*sensorRoute),
		sessionIDs: newSessionIDs(),
		traceIDs:   newSessionIDs(),
		ctx:        ctx,
		cancel:     cancel,
		healthDone: make(chan struct{}),
	}
	c.obs = newCoordObs(c)
	c.mergeLog = obs.NewMergeLog(cfg.TraceCapacity)
	c.traceLog = obs.NewTraceLog(cfg.SpanCapacity)
	if cfg.TraceSink != nil {
		c.mergeLog.SetSink(cfg.TraceSink)
		c.traceLog.SetSink(cfg.TraceSink)
	}
	// Install the RPC timing hook before the first exchange — recovery
	// below already talks to shards — so the field is never written
	// concurrently with a read.
	client.onRTT = c.obs.rpcObserve
	if st, ok := cfg.Store.(interface {
		SetTiming(func(op string, d time.Duration))
	}); ok {
		st.SetTiming(c.obs.storeTiming)
	}
	c.recoverIdentities()
	go c.healthLoop()
	return c, nil
}

// MergeTraces returns the recorded compact-merge session traces, newest
// first — the same view /debug/merges serves.
func (c *Coordinator) MergeTraces() []obs.MergeTrace { return c.mergeLog.Snapshot() }

// Traces returns the coordinator's span flight recorder — the ring
// /debug/traces serves.
func (c *Coordinator) Traces() *obs.TraceLog { return c.traceLog }

// recoverIdentities closes the restart hole in coordinator-minted point
// identity: per-sensor sequence counters live in coordinator memory, so
// a coordinator restarted inside a live window used to re-mint in-window
// PointIDs. Recovery reads the coordinator's own identity store first —
// it is authoritative (it covers sensors whose points already aged out
// of every shard window) and does not depend on any shard being up.
// Only without a store, or with an empty one, does it fall back to
// fanning window-snapshot queries to every configured shard and seeding
// each sensor's counter past the largest sequence observed — and its
// staleness clock to the newest birth. The fallback is best-effort by
// design: a shard that is down contributes nothing (its points either
// survive on a replica or age out), and an empty cluster costs one probe
// round trip per shard.
func (c *Coordinator) recoverIdentities() {
	c.identitySource.Store("none")
	if c.cfg.Store != nil {
		st, err := c.cfg.Store.Load()
		if err != nil {
			c.cfg.Logger.Warn("identity store load failed, falling back to shard fan", "err", err)
		} else if len(st.Identities) > 0 {
			c.mu.Lock()
			for _, id := range st.Identities {
				sr := c.sensors[id.Sensor]
				if sr == nil {
					sr = &sensorRoute{}
					c.sensors[id.Sensor] = sr
				}
				if id.NextSeq > sr.nextSeq {
					sr.nextSeq = id.NextSeq
				}
				if id.Latest > sr.latest {
					sr.latest = id.Latest
				}
			}
			n := len(c.sensors)
			c.mu.Unlock()
			c.recovered.Store(uint64(n))
			c.identitySource.Store("store")
			c.cfg.Logger.Info("recovered identity counters", "source", "store", "sensors", n)
			return
		}
	}
	c.mu.Lock()
	targets := make([]*shardState, 0, len(c.shards))
	for _, st := range c.shards {
		targets = append(targets, st)
	}
	c.mu.Unlock()

	snaps := make([][]core.Point, len(targets))
	var wg sync.WaitGroup
	for i, st := range targets {
		wg.Add(1)
		go func(i int, st *shardState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(c.ctx, c.cfg.ProbeTimeout)
			defer cancel()
			pts, _, err := c.client.estimate(ctx, st.udp, 0)
			if err == nil {
				snaps[i] = pts
			}
		}(i, st)
	}
	wg.Wait()

	c.mu.Lock()
	for _, pts := range snaps {
		for _, p := range pts {
			sr := c.sensors[p.ID.Origin]
			if sr == nil {
				sr = &sensorRoute{}
				c.sensors[p.ID.Origin] = sr
			}
			if p.ID.Seq >= sr.nextSeq {
				sr.nextSeq = p.ID.Seq + 1
			}
			if p.Birth > sr.latest {
				sr.latest = p.Birth
			}
		}
	}
	n := len(c.sensors)
	c.mu.Unlock()
	if n > 0 {
		c.recovered.Store(uint64(n))
		c.identitySource.Store("shard-fan")
		c.cfg.Logger.Info("recovered identity counters", "source", "shard-fan", "sensors", n)
		// Seed the store so the next restart recovers without shards.
		c.persistIdentities(0, c.identitySnapshot())
	}
}

// IdentitySource reports where startup recovery found the identity
// counters: "store", "shard-fan", or "none".
func (c *Coordinator) IdentitySource() string {
	if s, ok := c.identitySource.Load().(string); ok {
		return s
	}
	return "none"
}

// identitySnapshot copies the full per-sensor identity state.
func (c *Coordinator) identitySnapshot() []store.Identity {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]store.Identity, 0, len(c.sensors))
	for id, sr := range c.sensors {
		out = append(out, store.Identity{Sensor: id, NextSeq: sr.nextSeq, Latest: sr.latest})
	}
	return out
}

// persistIdentities appends identity-floor updates to the store,
// compacting in the background once the log has grown enough. Append
// failures are counted, not fatal: routing continues, and the floors
// land at the next successful append or compaction. trace is the
// ingest batch that advanced the floors (0 at startup seeding); the
// append lands in the flight recorder either way.
func (c *Coordinator) persistIdentities(trace uint64, ids []store.Identity) {
	if c.cfg.Store == nil || len(ids) == 0 {
		return
	}
	start := time.Now()
	c.idStoreMu.Lock()
	err := c.cfg.Store.PutIdentities(ids)
	c.idStoreMu.Unlock()
	span := obs.Span{
		Trace:  trace,
		Op:     obs.OpWALAppend,
		Points: int32(len(ids)),
		Start:  start,
		Dur:    time.Since(start),
	}
	if err != nil {
		span.Err = err.Error()
	}
	c.traceLog.Record(span)
	if err != nil {
		c.walErrors.Add(1)
		return
	}
	if c.idsSince.Add(uint64(len(ids))) >= uint64(c.cfg.IdentityCompactEvery) {
		if !c.idCompacting.CompareAndSwap(false, true) {
			return
		}
		go func() {
			defer c.idCompacting.Store(false)
			if err := c.compactIdentityStore(); err != nil {
				c.walErrors.Add(1)
				return
			}
			// Reset only on success so a failed compaction retries at the
			// very next append instead of a full IdentityCompactEvery later.
			c.idsSince.Store(0)
		}()
	}
}

// compactIdentityStore snapshots the live identity floors and compacts
// the store down to them. Snapshot and Compact happen under idStoreMu —
// the lock PutIdentities holds — so no floor can be appended to the WAL
// between the snapshot and the truncation: every floor a concurrent
// IngestBatch advances is either already in c.sensors (and therefore in
// the snapshot) or its append lands in the fresh WAL after Compact.
// Without this, Compact could truncate away a newer floor and a crash
// would recover the stale one, re-minting PointIDs shards already hold.
func (c *Coordinator) compactIdentityStore() error {
	c.idStoreMu.Lock()
	defer c.idStoreMu.Unlock()
	return c.cfg.Store.Compact(nil, c.identitySnapshot())
}

// Close stops the health loop and releases the control socket.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.cancel()
	<-c.healthDone
	// Leave the identity store compact: one record per sensor, no WAL
	// suffix for the next start to replay.
	if c.cfg.Store != nil {
		if err := c.compactIdentityStore(); err != nil {
			c.walErrors.Add(1)
		}
	}
	return c.client.close()
}

// ShardMapSnapshot returns the current map (immutable).
func (c *Coordinator) ShardMapSnapshot() *ShardMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.smap
}

// ShardInfo is one shard's externally visible state.
type ShardInfo struct {
	Addr          string    `json:"addr"`
	Up            bool      `json:"up"`
	Synced        bool      `json:"synced"`
	Misses        int       `json:"misses"`
	Sensors       int       `json:"sensors"`     // fleet size the shard last reported
	MapVersion    uint64    `json:"map_version"` // epoch the shard last reported
	LastSeen      time.Time `json:"last_seen,omitzero"`
	LastRTTMS     float64   `json:"last_rtt_ms"`    // last successful health probe's round trip
	Traced        bool      `json:"traced"`         // shard negotiated trace propagation
	MergeSessions int       `json:"merge_sessions"` // merge-session cache occupancy the shard last reported
}

// ShardInfos returns every shard's state, sorted by address.
func (c *Coordinator) ShardInfos() []ShardInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ShardInfo, 0, len(c.shards))
	for _, st := range c.shards {
		out = append(out, ShardInfo{
			Addr:          st.addr,
			Up:            st.up,
			Synced:        st.synced,
			Misses:        st.misses,
			Sensors:       int(st.last.Sensors),
			MapVersion:    st.last.MapVersion,
			LastSeen:      st.lastAt,
			LastRTTMS:     float64(st.lastRTT) / float64(time.Millisecond),
			Traced:        st.traced.Load(),
			MergeSessions: int(st.last.Sessions),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	up, total, sensors := 0, len(c.shards), len(c.sensors)
	for _, st := range c.shards {
		if st.up {
			up++
		}
	}
	c.mu.Unlock()
	return Stats{
		Routed:          c.routed.Load(),
		Rejected:        c.rejected.Load(),
		Stale:           c.stale.Load(),
		Failed:          c.failed.Load(),
		Reroutes:        c.reroutes.Load(),
		Frames:          c.frames.Load(),
		Merges:          c.merges.Load(),
		MergesDegraded:  c.mergesDegraded.Load(),
		MergesCompact:   c.mergesCompact.Load(),
		MergeFallbacks:  c.mergeFallbacks.Load(),
		MergeRounds:     c.mergeRounds.Load(),
		MergeBytes:      c.mergeBytes.Load(),
		MergeFullBytes:  c.mergeFullBytes.Load(),
		Recovered:       c.recovered.Load(),
		IdentitySource:  c.IdentitySource(),
		WALErrors:       c.walErrors.Load(),
		Assigns:         c.assigns.Load(),
		HandoffSensors:  c.handoffSen.Load(),
		HandoffPoints:   c.handoffPts.Load(),
		Flaps:           c.flaps.Load(),
		TruncatedFrames: c.client.truncated.Load(),
		ShardsUp:        up,
		ShardsTotal:     total,
		Sensors:         sensors,
	}
}

// Ingest validates, stamps and routes one reading; see IngestBatch.
func (c *Coordinator) Ingest(r ingest.Reading) error {
	return c.IngestBatch([]ingest.Reading{r})[0]
}

// IngestBatch validates, identity-stamps and routes a batch of readings
// to the healthy shards owning each sensor, one READINGS frame per shard
// chunk. The returned slice has one entry per input reading: nil when at
// least one owning shard accepted it.
func (c *Coordinator) IngestBatch(rs []ingest.Reading) []error {
	errs := make([]error, len(rs))
	// One trace ID covers the whole batch: the UDP and HTTP ingest front
	// doors hand the coordinator batches, not single readings, and the
	// batch is the unit that fans out and persists.
	trace := c.traceIDs.next()
	startBatch := time.Now()

	// Phase 1 (under the lock): gate, stamp, group by shard. Identity
	// assignment must be serialized so replicas agree on sequence
	// numbers; the network sends happen outside the lock.
	type routed struct {
		reading int // index into rs/errs
	}
	perShard := make(map[string][]core.Point)
	perShardIdx := make(map[string][]routed)
	accepted := make([]int, len(rs))            // owning shards that took reading i
	var advanced map[core.NodeID]store.Identity // identity floors moved by this batch

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		for i := range errs {
			errs[i] = ErrClosed
		}
		return errs
	}
	window := c.cfg.Detector.Window
	for i, r := range rs {
		if err := r.Validate(); err != nil {
			errs[i] = err
			c.rejected.Add(1)
			continue
		}
		sr := c.sensors[r.Sensor]
		if sr == nil {
			sr = &sensorRoute{}
			c.sensors[r.Sensor] = sr
		}
		if window > 0 && r.At < sr.latest-window {
			errs[i] = fmt.Errorf("%w: %v is older than %v − %v", ingest.ErrStale, r.At, sr.latest, window)
			c.stale.Add(1)
			continue
		}
		owners, rerouted := c.healthyOwnersLocked(r.Sensor)
		if len(owners) == 0 {
			// Bail before touching the sensor's gate or counter: a
			// reading that goes nowhere must not make the coordinator
			// stricter than the shards (a later reading the shards
			// would accept would be rejected as stale here).
			errs[i] = fmt.Errorf("%w: sensor %d", ErrNoHealthyShard, r.Sensor)
			c.failed.Add(1)
			continue
		}
		if rerouted {
			c.reroutes.Add(1)
		}
		if r.At > sr.latest {
			sr.latest = r.At
		}
		seq := sr.nextSeq
		if r.HasSeq {
			seq = r.Seq
		}
		if seq >= sr.nextSeq {
			sr.nextSeq = seq + 1
		}
		if c.cfg.Store != nil {
			if advanced == nil {
				advanced = make(map[core.NodeID]store.Identity)
			}
			advanced[r.Sensor] = store.Identity{Sensor: r.Sensor, NextSeq: sr.nextSeq, Latest: sr.latest}
		}
		p := core.NewPoint(r.Sensor, seq, r.At, r.Values...)
		for _, addr := range owners {
			perShard[addr] = append(perShard[addr], p)
			perShardIdx[addr] = append(perShardIdx[addr], routed{reading: i})
		}
	}
	c.mu.Unlock()

	// Persist the identity floors this batch advanced BEFORE the fan-out
	// acknowledges anything: once a shard holds a point, a restarted
	// coordinator must never re-mint its identity.
	if len(advanced) > 0 {
		ids := make([]store.Identity, 0, len(advanced))
		for _, id := range advanced {
			ids = append(ids, id)
		}
		c.persistIdentities(trace, ids)
	}

	// Phase 2: fan the per-shard batches out concurrently. A failed
	// send only misses its ack — the health probes own the up/down
	// verdict.
	var (
		wg    sync.WaitGroup
		ackMu sync.Mutex
	)
	for addr, pts := range perShard {
		wg.Add(1)
		go func(addr string, pts []core.Point, idx []routed) {
			defer wg.Done()
			if !c.sendReadings(addr, trace, pts) {
				return
			}
			ackMu.Lock()
			defer ackMu.Unlock()
			for _, rt := range idx {
				accepted[rt.reading]++
			}
		}(addr, pts, perShardIdx[addr])
	}
	wg.Wait()

	routedN, failedN := 0, 0
	for i := range rs {
		if errs[i] != nil {
			if errors.Is(errs[i], ErrNoHealthyShard) {
				failedN++
			}
			continue
		}
		if accepted[i] == 0 {
			errs[i] = ErrRouteFailed
			c.failed.Add(1)
			failedN++
			continue
		}
		c.routed.Add(1)
		routedN++
	}
	span := obs.Span{
		Trace:  trace,
		Op:     obs.OpIngestBatch,
		Points: int32(routedN),
		Start:  startBatch,
		Dur:    time.Since(startBatch),
	}
	if failedN > 0 {
		span.Err = fmt.Sprintf("%d readings unrouted", failedN)
	}
	c.traceLog.Record(span)
	return errs
}

// healthyOwnersLocked returns the first Replicas up shards in the
// sensor's rendezvous order, and whether any down owner was skipped.
// Callers hold c.mu.
func (c *Coordinator) healthyOwnersLocked(sensor core.NodeID) (owners []string, rerouted bool) {
	for _, addr := range c.smap.RendezvousOrder(sensor) {
		if st := c.shards[addr]; st != nil && st.up {
			owners = append(owners, addr)
			if len(owners) == c.cfg.Replicas {
				break
			}
		} else {
			rerouted = true
		}
	}
	return owners, rerouted
}

// sendReadings ships one shard's batch as chunked READINGS frames with
// retries, reporting whether every chunk was acknowledged. trace is
// stamped onto the frames when the shard negotiated tracing.
func (c *Coordinator) sendReadings(addr string, trace uint64, pts []core.Point) bool {
	st := c.shardState(addr)
	if st == nil {
		return false
	}
	if !st.traced.Load() {
		trace = 0
	}
	perAttempt := c.cfg.QueryTimeout / time.Duration(c.cfg.RetryAttempts)
	for _, chunk := range chunkByBytes(pts, c.cfg.MaxFrameBytes) {
		if len(chunk) == 0 {
			continue
		}
		err := retry(c.ctx, c.cfg.RetryAttempts, perAttempt, func(ctx context.Context) error {
			_, err := c.client.readings(ctx, st.udp, trace, chunk)
			return err
		})
		if err != nil {
			return false
		}
		c.frames.Add(1)
	}
	return true
}

func (c *Coordinator) shardState(addr string) *shardState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards[addr]
}

// MergeResult is one merged outlier view.
type MergeResult struct {
	Outliers []core.Point // On over the union of shard windows
	// Window is the point set the answer was computed over: with
	// MergeFull the merged window itself (tests, handoff), with
	// MergeCompact the coordinator's accumulated candidate set C — a
	// provably sufficient subset, not the whole window.
	Window []core.Point

	Mode         string // MergeCompact or MergeFull (after any fallback)
	Rounds       int    // compact rounds driven (0 on the full path)
	PayloadBytes int    // point payload moved for this query
	Trace        uint64 // the query's trace ID (key into /debug/traces)

	MapVersion  uint64
	ShardsTotal int // shards in the map
	ShardsOK    int // shards that answered
	Degraded    bool
}

// MergedEstimate merges the shards' outlier views using the configured
// merge mode; see MergedEstimateMode.
func (c *Coordinator) MergedEstimate(ctx context.Context) (MergeResult, error) {
	return c.MergedEstimateMode(ctx, "")
}

// MergedEstimateMode serves the cluster-wide outlier estimate — by
// construction the same answer baseline.Compute gives over the union of
// all sensor windows. Mode "" uses Config.MergeMode; MergeCompact runs
// the iterative Algorithm 1 exchange (falling back to the full path when
// a shard cannot play or the round budget runs out); MergeFull fans
// ESTIMATE snapshot queries to every up shard and computes On over the
// union.
func (c *Coordinator) MergedEstimateMode(ctx context.Context, mode string) (MergeResult, error) {
	switch mode {
	case "":
		mode = c.cfg.MergeMode
	case MergeCompact, MergeFull:
	default:
		return MergeResult{}, fmt.Errorf("cluster: unknown merge mode %q", mode)
	}
	start := time.Now()
	// Every query gets a trace ID, minted here at the front door. It is
	// returned in the result, stamped onto shard-control frames at shards
	// that negotiated tracing, and keys every span the query emits.
	traceID := c.traceIDs.next()
	// finish stamps the query's service time (observed under the mode
	// that actually served the answer), records the root query span, and
	// applies the slow-query log.
	finish := func(res MergeResult, err error) (MergeResult, error) {
		elapsed := time.Since(start)
		res.Trace = traceID
		if err == nil {
			c.obs.queryLat.With(res.Mode).Observe(elapsed.Seconds())
		}
		span := obs.Span{
			Trace:  traceID,
			Op:     obs.OpQuery,
			Round:  int32(res.Rounds),
			Points: int32(len(res.Outliers)),
			Bytes:  int32(res.PayloadBytes),
			Start:  start,
			Dur:    elapsed,
		}
		if err != nil {
			span.Err = err.Error()
		}
		c.traceLog.Record(span)
		if c.cfg.SlowQuery > 0 && elapsed >= c.cfg.SlowQuery {
			c.cfg.Logger.Warn("slow query",
				"trace", traceHex(traceID), "mode", mode,
				"elapsed", elapsed.Round(time.Microsecond), "threshold", c.cfg.SlowQuery,
				"rounds", res.Rounds, "payload_bytes", res.PayloadBytes)
		}
		return res, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return MergeResult{}, ErrClosed
	}
	version := c.smap.Version()
	total := c.smap.Len()
	var targets []*shardState
	for _, addr := range c.smap.Shards() {
		if st := c.shards[addr]; st != nil && st.up {
			targets = append(targets, st)
		}
	}
	if len(targets) == 0 {
		// Every shard looks down (or the probes are flapping): query
		// them all anyway — a shard that answers is better evidence
		// than a stale verdict, and one that is really down just eats
		// its timeout.
		for _, addr := range c.smap.Shards() {
			if st := c.shards[addr]; st != nil {
				targets = append(targets, st)
			}
		}
	}
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(ctx, c.cfg.QueryTimeout)
	defer cancel()

	// mtrace, non-nil once a compact session ran, is recorded into the
	// /debug/merges ring — on success here, or after the fallback full
	// path below fills in how the session ended. Pure-full queries leave
	// no merge trace: the ring is the Algorithm 1 cost record.
	var mtrace *obs.MergeTrace

	if mode == MergeCompact {
		// The compact path needs every target to answer every round, so
		// give it half the query budget and keep the rest for the
		// full-window fallback should a shard die mid-session.
		compactCtx, ccancel := context.WithTimeout(ctx, c.cfg.QueryTimeout/2)
		cres, err := c.compactMerge(compactCtx, targets, traceID)
		ccancel()
		c.mergeRounds.Add(uint64(cres.rounds))
		c.mergeBytes.Add(uint64(cres.payload))
		mtrace = &obs.MergeTrace{
			Session:    fmt.Sprintf("%016x", cres.session),
			Requested:  MergeCompact,
			Rounds:     cres.trace,
			Quiesced:   cres.quiesced,
			Ledgers:    cres.ledgers,
			TotalBytes: cres.payload,
		}
		if err == nil {
			res := MergeResult{
				Outliers:     cres.outliers,
				Window:       cres.cand.Points(),
				Mode:         MergeCompact,
				Rounds:       cres.rounds,
				PayloadBytes: cres.payload,
				MapVersion:   version,
				ShardsTotal:  total,
				ShardsOK:     len(targets),
				Degraded:     len(targets) < total,
			}
			c.merges.Add(1)
			c.mergesCompact.Add(1)
			if res.Degraded {
				c.mergesDegraded.Add(1)
			}
			mtrace.Final = MergeCompact
			mtrace.Degraded = res.Degraded
			mtrace.Outliers = len(res.Outliers)
			mtrace.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
			c.mergeLog.Record(*mtrace)
			return finish(res, nil)
		}
		mtrace.Fallback = err.Error()
		c.mergeFallbacks.Add(1)
		// The fallback event carries the query's trace ID — the span and
		// the log line tie the abandoned compact rounds to the full-path
		// rescue that follows.
		c.traceLog.Record(obs.Span{
			Trace:   traceID,
			Op:      obs.OpMergeFallback,
			Session: cres.session,
			Round:   int32(cres.rounds),
			Bytes:   int32(cres.payload),
			Err:     err.Error(),
			Start:   start,
			Dur:     time.Since(start),
		})
		c.cfg.Logger.Warn("compact merge falling back to full",
			"trace", traceHex(traceID), "session", traceHex(cres.session),
			"rounds", cres.rounds, "err", err)
	}

	perAttempt := c.cfg.QueryTimeout / time.Duration(c.cfg.RetryAttempts)
	var (
		wg    sync.WaitGroup
		setMu sync.Mutex
		union = core.NewSet()
		ok    int
		bytes int
	)
	for _, st := range targets {
		wg.Add(1)
		go func(st *shardState) {
			defer wg.Done()
			shardTrace := traceID
			if !st.traced.Load() {
				shardTrace = 0
			}
			shardStart := time.Now()
			var pts []core.Point
			var nb int
			err := retry(ctx, c.cfg.RetryAttempts, perAttempt, func(ctx context.Context) error {
				var err error
				pts, nb, err = c.client.estimate(ctx, st.udp, shardTrace)
				return err
			})
			span := obs.Span{
				Trace:  traceID,
				Op:     obs.OpMergeFull,
				Shard:  st.addr,
				Points: int32(len(pts)),
				Bytes:  int32(nb),
				Start:  shardStart,
				Dur:    time.Since(shardStart),
			}
			if err != nil {
				span.Err = err.Error()
			}
			c.traceLog.Record(span)
			if err != nil {
				return
			}
			setMu.Lock()
			defer setMu.Unlock()
			ok++
			bytes += nb
			for _, p := range pts {
				union.AddMinHop(p)
			}
		}(st)
	}
	wg.Wait()

	res := MergeResult{
		Window:       union.Points(),
		Mode:         MergeFull,
		PayloadBytes: bytes,
		MapVersion:   version,
		ShardsTotal:  total,
		ShardsOK:     ok,
		Degraded:     ok < total,
	}
	res.Outliers = core.TopN(c.cfg.Detector.Ranker, union, c.cfg.Detector.N)
	c.merges.Add(1)
	c.mergeFullBytes.Add(uint64(bytes))
	if res.Degraded {
		c.mergesDegraded.Add(1)
	}
	if mtrace != nil {
		// A fallen-back compact session: record how it ended so the ring
		// shows both the abandoned exchange and what the rescue cost.
		mtrace.Final = MergeFull
		mtrace.Degraded = res.Degraded
		mtrace.FullBytes = bytes
		mtrace.Outliers = len(res.Outliers)
		mtrace.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
		c.mergeLog.Record(*mtrace)
	}
	if ok == 0 && total > 0 {
		return finish(res, errors.New("cluster: no shard answered the estimate query"))
	}
	return finish(res, nil)
}

// AddShard registers a new shard and rebalances: the map version
// advances, every shard is re-ASSIGNed, and sensors gaining the new
// shard as an owner are handed off to it by their current owners.
func (c *Coordinator) AddShard(addr string) error {
	udp, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("cluster: resolve shard %q: %w", addr, err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if _, dup := c.shards[addr]; dup {
		c.mu.Unlock()
		return fmt.Errorf("cluster: shard %s already registered", addr)
	}
	// Register the shard and copy the windows it will own BEFORE
	// publishing the new map: once the map version moves, resyncs evict
	// the moved sensors from their old owners, and with Replicas 1 the
	// old owner held the only copy. Routing keeps using the old map
	// during the copy, so no reading is mis-homed meanwhile.
	oldMap := c.smap
	newMap := c.smap.WithShard(addr)
	c.shards[addr] = &shardState{addr: addr, udp: udp, up: true}
	seen := c.seenSensorsLocked()
	c.mu.Unlock()
	c.rebalance(oldMap, newMap, seen)

	c.mu.Lock()
	c.smap = newMap
	for _, st := range c.shards {
		st.synced = false
	}
	c.mu.Unlock()
	c.cfg.Logger.Info("shard added", "shard", addr, "map_version", newMap.Version())
	c.kickResyncs()
	return nil
}

// rebalance hands the window of every sensor that gained an owner under
// the new map off from a surviving old owner to the shards that gained
// it.
func (c *Coordinator) rebalance(oldMap, newMap *ShardMap, seen []core.NodeID) {
	for _, sensor := range seen {
		old := oldMap.Owners(sensor, c.cfg.Replicas)
		var gained []string
		for _, a := range newMap.Owners(sensor, c.cfg.Replicas) {
			if !slices.Contains(old, a) {
				gained = append(gained, a)
			}
		}
		if len(gained) == 0 {
			continue
		}
		var src *shardState
		c.mu.Lock()
		for _, a := range old {
			if st := c.shards[a]; st != nil && st.up {
				src = st
				break
			}
		}
		c.mu.Unlock()
		if src == nil {
			continue
		}
		c.moveSensor(sensor, src, gained)
	}
}

// RemoveShard drains and deregisters a shard: while it is still
// reachable its sensors' windows are handed off to their new owners
// first, then the map version advances and the rest re-ASSIGNs.
func (c *Coordinator) RemoveShard(addr string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	st, ok := c.shards[addr]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownShard, addr)
	}
	oldMap := c.smap
	newMap := c.smap.WithoutShard(addr)
	drainable := st.up && newMap.Len() > 0
	seen := c.seenSensorsLocked()
	c.mu.Unlock()

	if drainable {
		for _, sensor := range oldMap.Owned(addr, seen, c.cfg.Replicas) {
			// Only sensors that would lose their last copy need moving.
			if c.anyUp(remove(oldMap.Owners(sensor, c.cfg.Replicas), addr)) {
				continue
			}
			c.moveSensor(sensor, st, newMap.Owners(sensor, c.cfg.Replicas))
		}
	}

	c.mu.Lock()
	c.smap = newMap
	delete(c.shards, addr)
	for _, other := range c.shards {
		other.synced = false
	}
	c.mu.Unlock()
	c.cfg.Logger.Info("shard removed", "shard", addr, "map_version", newMap.Version())
	c.kickResyncs()
	return nil
}

func remove(addrs []string, addr string) []string {
	out := make([]string, 0, len(addrs))
	for _, a := range addrs {
		if a != addr {
			out = append(out, a)
		}
	}
	return out
}

func (c *Coordinator) anyUp(addrs []string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range addrs {
		if st := c.shards[a]; st != nil && st.up {
			return true
		}
	}
	return false
}

// transferWindow ships one sensor's window points to dst in
// byte-budgeted chunks, each chunk retried independently (re-delivery
// is a no-op: the points carry their identities).
func (c *Coordinator) transferWindow(dst *shardState, sensor core.NodeID, pts []core.Point) error {
	perAttempt := c.cfg.QueryTimeout / time.Duration(c.cfg.RetryAttempts)
	for _, chunk := range chunkByBytes(pts, c.cfg.MaxFrameBytes) {
		if len(chunk) == 0 {
			continue
		}
		err := retry(c.ctx, c.cfg.RetryAttempts, perAttempt, func(ctx context.Context) error {
			_, err := c.client.handoffTransfer(ctx, dst.udp, sensor, chunk)
			return err
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// moveSensor copies one sensor's window from src to each destination.
func (c *Coordinator) moveSensor(sensor core.NodeID, src *shardState, dsts []string) {
	perAttempt := c.cfg.QueryTimeout / time.Duration(c.cfg.RetryAttempts)
	var pts []core.Point
	err := retry(c.ctx, c.cfg.RetryAttempts, perAttempt, func(ctx context.Context) error {
		var err error
		pts, err = c.client.handoffFetch(ctx, src.udp, sensor)
		return err
	})
	if err != nil || len(pts) == 0 {
		return
	}
	moved := false
	for _, dst := range dsts {
		st := c.shardState(dst)
		if st == nil || !st.up {
			continue
		}
		if c.transferWindow(st, sensor, pts) == nil {
			moved = true
		}
	}
	if moved {
		c.handoffSen.Add(1)
		c.handoffPts.Add(uint64(len(pts)))
		c.cfg.Logger.Info("sensor handed off", "sensor", uint64(sensor), "points", len(pts))
	}
}

func (c *Coordinator) seenSensorsLocked() []core.NodeID {
	out := make([]core.NodeID, 0, len(c.sensors))
	for id := range c.sensors {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// healthLoop probes every shard each interval and drives the
// up/down/resync state machine. Probes are fire-and-forget with a
// per-shard in-flight guard: one unreachable shard eating its full
// ProbeTimeout must not stretch the probe period for the healthy ones.
func (c *Coordinator) healthLoop() {
	defer close(c.healthDone)
	ticker := time.NewTicker(c.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-ticker.C:
		}
		c.mu.Lock()
		targets := make([]*shardState, 0, len(c.shards))
		for _, st := range c.shards {
			if !st.probing {
				st.probing = true
				targets = append(targets, st)
			}
		}
		c.mu.Unlock()
		for _, st := range targets {
			go func(st *shardState) {
				ctx, cancel := context.WithTimeout(c.ctx, c.cfg.ProbeTimeout)
				probeStart := time.Now()
				h, traced, err := c.client.health(ctx, st.udp)
				cancel()
				if err != nil {
					c.noteMiss(st)
				} else {
					c.noteUp(st, h, traced, time.Since(probeStart))
				}
				c.mu.Lock()
				st.probing = false
				c.mu.Unlock()
			}(st)
		}
	}
}

func (c *Coordinator) noteMiss(st *shardState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st.misses++
	if st.misses >= c.cfg.HealthMisses && st.up {
		st.up = false
		st.synced = false
		c.flaps.Add(1)
		c.cfg.Logger.Warn("shard marked down", "shard", st.addr, "misses", st.misses)
	}
}

func (c *Coordinator) noteUp(st *shardState, h protocol.HealthBody, traced bool, rtt time.Duration) {
	c.mu.Lock()
	wasDown := !st.up
	st.up = true
	st.misses = 0
	st.last = h
	st.lastAt = time.Now()
	st.lastRTT = rtt
	st.traced.Store(traced)
	version := c.smap.Version()
	needSync := wasDown || !st.synced || h.MapVersion != version
	c.mu.Unlock()
	if wasDown {
		c.cfg.Logger.Info("shard back up",
			"shard", st.addr, "map_version", h.MapVersion, "traced", traced)
	}
	if needSync {
		go c.resync(st)
	}
}

// kickResyncs marks every up shard for resync on the new map without
// waiting for the next health tick.
func (c *Coordinator) kickResyncs() {
	c.mu.Lock()
	targets := make([]*shardState, 0, len(c.shards))
	for _, st := range c.shards {
		if st.up {
			targets = append(targets, st)
		}
	}
	c.mu.Unlock()
	for _, st := range targets {
		go c.resync(st)
	}
}

// resync pushes the current map epoch to one shard (ASSIGN) and, for
// every sensor it owns that has a surviving copy on another up shard,
// restores the window by handoff. It is how a rejoining shard — which
// may have restarted empty — converges back to exact answers instead of
// waiting a full window for refill; with Replicas == 1 there is no
// surviving copy and refill is the only path (the ASSIGN still re-joins
// the sensors so fresh readings land immediately).
func (c *Coordinator) resync(st *shardState) {
	c.mu.Lock()
	if st.syncing || c.closed {
		c.mu.Unlock()
		return
	}
	st.syncing = true
	smap := c.smap
	seen := c.seenSensorsLocked()
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		st.syncing = false
		c.mu.Unlock()
	}()
	if smap.Index(st.addr) < 0 {
		return // mid-AddShard: registered but not published yet
	}

	owned := smap.Owned(st.addr, seen, c.cfg.Replicas)
	isOwned := make(map[core.NodeID]bool, len(owned))
	for _, id := range owned {
		isOwned[id] = true
	}
	var evict []core.NodeID
	for _, id := range seen {
		if !isOwned[id] {
			evict = append(evict, id)
		}
	}
	body := protocol.AssignBody{
		MapVersion: smap.Version(),
		ShardIndex: uint16(smap.Index(st.addr)),
		ShardCount: uint16(smap.Len()),
		Sensors:    owned,
		Evict:      evict,
	}
	perAttempt := c.cfg.QueryTimeout / time.Duration(c.cfg.RetryAttempts)
	err := retry(c.ctx, c.cfg.RetryAttempts, perAttempt, func(ctx context.Context) error {
		_, err := c.client.assign(ctx, st.udp, body)
		return err
	})
	if err != nil {
		return // next health tick retries
	}
	c.assigns.Add(1)

	restored := 0
	for _, sensor := range owned {
		var src *shardState
		c.mu.Lock()
		for _, addr := range remove(smap.Owners(sensor, c.cfg.Replicas), st.addr) {
			if other := c.shards[addr]; other != nil && other.up && addr != st.addr {
				src = other
				break
			}
		}
		c.mu.Unlock()
		if src == nil {
			continue
		}
		var pts []core.Point
		err := retry(c.ctx, c.cfg.RetryAttempts, perAttempt, func(ctx context.Context) error {
			var err error
			pts, err = c.client.handoffFetch(ctx, src.udp, sensor)
			return err
		})
		if err != nil || len(pts) == 0 {
			continue
		}
		if c.transferWindow(st, sensor, pts) == nil {
			restored++
			c.handoffSen.Add(1)
			c.handoffPts.Add(uint64(len(pts)))
		}
	}
	c.mu.Lock()
	// Only mark synced if the map did not move underneath the resync.
	if c.smap.Version() == smap.Version() {
		st.synced = true
	}
	c.mu.Unlock()
	if restored > 0 {
		c.cfg.Logger.Info("shard resynced", "shard", st.addr, "sensors_restored", restored)
	}
}

// traceHex renders a trace or session ID the way every JSON surface
// does — 16 hex digits — so log lines grep against /debug/traces.
func traceHex(id uint64) string { return fmt.Sprintf("%016x", id) }
