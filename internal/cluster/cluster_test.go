package cluster

import (
	"context"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"innet/internal/baseline"
	"innet/internal/core"
	"innet/internal/ingest"
)

// clusterDetCfg is the detector configuration shared by every shard, the
// single-process reference, and the coordinator's merge in these tests.
var clusterDetCfg = core.Config{
	Ranker: core.KNN{K: 2},
	N:      3,
	Window: 10 * time.Minute,
}

// testShard is one in-process detector shard: an ingest fleet plus its
// control listener, reachable at addr.
type testShard struct {
	svc  *ingest.Service
	srv  *ShardServer
	addr string
}

// startShard boots a shard, optionally on a fixed control address (""
// picks a free port).
func startShard(t testing.TB, addr string) *testShard {
	t.Helper()
	svc, err := ingest.New(ingest.Config{Detector: clusterDetCfg, AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv, err := NewShardServer(ShardServerConfig{Service: svc, Addr: addr})
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	go srv.Serve()
	return &testShard{svc: svc, srv: srv, addr: srv.Addr()}
}

func (s *testShard) stop() {
	s.srv.Close()
	s.svc.Close()
}

// trace builds a deterministic multi-round reading trace over the given
// sensors with two planted faults, shuffling within each round so shard
// batches interleave.
func trace(seed uint64, sensors []core.NodeID, rounds int) []ingest.Reading {
	rng := rand.New(rand.NewPCG(seed, seed^0xbf58476d1ce4e5b9))
	var out []ingest.Reading
	for round := 0; round < rounds; round++ {
		order := rng.Perm(len(sensors))
		for _, i := range order {
			id := sensors[i]
			v := 20 + rng.NormFloat64()
			switch {
			case id == 7 && round == rounds-2:
				v = 55.3 // stuck-at-rail fault
			case id == 11 && round == rounds-1:
				v = -40 // frozen-battery fault
			}
			out = append(out, ingest.Reading{
				Sensor: id,
				At:     time.Duration(round) * time.Minute,
				Values: []float64{v},
			})
		}
	}
	return out
}

func sensorRange(n int) []core.NodeID {
	out := make([]core.NodeID, n)
	for i := range out {
		out[i] = core.NodeID(i + 1)
	}
	return out
}

// feedBoth routes the trace through the coordinator and mirrors it into
// the single-process reference service, then flushes everything.
func feedBoth(t *testing.T, ctx context.Context, coord *Coordinator, single *ingest.Service,
	shards []*testShard, rs []ingest.Reading) {
	t.Helper()
	for _, err := range coord.IngestBatch(rs) {
		if err != nil {
			t.Fatalf("coordinator ingest: %v", err)
		}
	}
	for _, r := range rs {
		if err := single.Ingest(r); err != nil {
			t.Fatalf("single ingest: %v", err)
		}
	}
	if err := single.Flush(ctx); err != nil {
		t.Fatalf("single flush: %v", err)
	}
	for _, sh := range shards {
		if err := sh.svc.Flush(ctx); err != nil {
			t.Fatalf("shard %s flush: %v", sh.addr, err)
		}
	}
}

func samePoints(a, b []core.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || len(a[i].Value) != len(b[i].Value) {
			return false
		}
		for d := range a[i].Value {
			if a[i].Value[d] != b[i].Value[d] {
				return false
			}
		}
	}
	return true
}

func ids(pts []core.Point) string {
	out := ""
	for i, p := range pts {
		if i > 0 {
			out += " "
		}
		out += p.ID.String()
	}
	return "[" + out + "]"
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterEquivalence is the acceptance property: for random ingest
// traces over random shard assignments (the rendezvous map changes with
// the OS-assigned ports), the coordinator's merged outlier set over 3
// shards equals the single-process innetd answer and baseline.Compute on
// the same data — with and without boundary-sensor replication, through
// both the compact iterative merge and the full-window path.
func TestClusterEquivalence(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, mode := range []string{MergeCompact, MergeFull} {
		for _, replicas := range []int{1, 2} {
			for seed := uint64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%s/replicas=%d/seed=%d", mode, replicas, seed), func(t *testing.T) {
					var shards []*testShard
					var addrs []string
					for i := 0; i < 3; i++ {
						sh := startShard(t, "")
						defer sh.stop()
						shards = append(shards, sh)
						addrs = append(addrs, sh.addr)
					}
					coord, err := New(Config{
						Detector:       clusterDetCfg,
						Shards:         addrs,
						Replicas:       replicas,
						MergeMode:      mode,
						QueryTimeout:   5 * time.Second,
						HealthInterval: 50 * time.Millisecond,
						HealthMisses:   2,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer coord.Close()
					single, err := ingest.New(ingest.Config{Detector: clusterDetCfg, AutoJoin: true})
					if err != nil {
						t.Fatal(err)
					}
					defer single.Close()

					feedBoth(t, ctx, coord, single, shards, trace(seed, sensorRange(12), 5))

					merged, err := coord.MergedEstimate(ctx)
					if err != nil {
						t.Fatal(err)
					}
					if merged.Degraded {
						t.Fatalf("merge degraded with all shards up: %d/%d", merged.ShardsOK, merged.ShardsTotal)
					}
					if merged.Mode != mode {
						t.Fatalf("merge served by %q, want %q (no fallback expected)", merged.Mode, mode)
					}
					snap, err := single.Snapshot(ctx)
					if err != nil {
						t.Fatal(err)
					}
					want := baseline.Compute(clusterDetCfg.Ranker, clusterDetCfg.N, snap)
					if !samePoints(merged.Outliers, want) {
						t.Fatalf("merged %s != baseline %s", ids(merged.Outliers), ids(want))
					}
					est, err := single.Estimate(1)
					if err != nil {
						t.Fatal(err)
					}
					if !samePoints(est, want) {
						t.Fatalf("single-process estimate %s != baseline %s", ids(est), ids(want))
					}
					if mode == MergeFull {
						// The merged window is the full dataset,
						// deduplicated across replicas.
						if !samePoints(merged.Window, snap) {
							t.Fatalf("merged window %d points != single snapshot %d points",
								len(merged.Window), len(snap))
						}
					} else {
						// The compact path must have iterated — and its
						// candidate set is a subset of the window, which
						// is the whole point.
						if merged.Rounds < 1 || merged.PayloadBytes <= 0 {
							t.Fatalf("compact merge rounds=%d payload=%d", merged.Rounds, merged.PayloadBytes)
						}
						if len(merged.Window) > len(snap) {
							t.Fatalf("compact candidate set %d > window %d", len(merged.Window), len(snap))
						}
					}
				})
			}
		}
	}
}

// TestClusterShardFailure pins the degraded-but-correct claim: with
// boundary replication (Replicas=2) every point survives a single shard
// failure, so the merged answer stays equal to the full-data baseline
// while the view reports itself degraded.
func TestClusterShardFailure(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var shards []*testShard
	var addrs []string
	for i := 0; i < 3; i++ {
		sh := startShard(t, "")
		defer sh.stop()
		shards = append(shards, sh)
		addrs = append(addrs, sh.addr)
	}
	coord, err := New(Config{
		Detector:       clusterDetCfg,
		Shards:         addrs,
		Replicas:       2,
		QueryTimeout:   5 * time.Second,
		HealthInterval: 50 * time.Millisecond,
		HealthMisses:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	single, err := ingest.New(ingest.Config{Detector: clusterDetCfg, AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	feedBoth(t, ctx, coord, single, shards, trace(42, sensorRange(12), 5))
	snap, err := single.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Compute(clusterDetCfg.Ranker, clusterDetCfg.N, snap)

	shards[1].stop()
	waitFor(t, 10*time.Second, "shard marked down", func() bool {
		for _, info := range coord.ShardInfos() {
			if info.Addr == shards[1].addr && !info.Up {
				return true
			}
		}
		return false
	})

	merged, err := coord.MergedEstimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Degraded || merged.ShardsOK != 2 {
		t.Fatalf("expected a degraded 2/3 merge, got %d/%d degraded=%v",
			merged.ShardsOK, merged.ShardsTotal, merged.Degraded)
	}
	if !samePoints(merged.Outliers, want) {
		t.Fatalf("degraded merge %s != baseline %s (replication should cover one failure)",
			ids(merged.Outliers), ids(want))
	}
}

// TestClusterShardRejoin drives the full failure lifecycle: a shard
// dies, ingestion reroutes around it, and when a fresh (empty) process
// rejoins at the same address the coordinator re-ASSIGNs it and restores
// its sensors' windows by handoff from the surviving replicas — the
// merged view converges back to exact and undegraded.
func TestClusterShardRejoin(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var shards []*testShard
	var addrs []string
	for i := 0; i < 3; i++ {
		sh := startShard(t, "")
		defer sh.stop()
		shards = append(shards, sh)
		addrs = append(addrs, sh.addr)
	}
	coord, err := New(Config{
		Detector:       clusterDetCfg,
		Shards:         addrs,
		Replicas:       2,
		QueryTimeout:   2 * time.Second,
		HealthInterval: 50 * time.Millisecond,
		HealthMisses:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	single, err := ingest.New(ingest.Config{Detector: clusterDetCfg, AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	sensors := sensorRange(12)
	full := trace(7, sensors, 5)
	phase1, phase2 := full[:len(full)/2], full[len(full)/2:]
	feedBoth(t, ctx, coord, single, shards, phase1)

	// Kill one shard and wait for the coordinator to notice.
	victim := shards[1]
	victim.stop()
	waitFor(t, 10*time.Second, "shard marked down", func() bool {
		for _, info := range coord.ShardInfos() {
			if info.Addr == victim.addr && !info.Up {
				return true
			}
		}
		return false
	})

	// Ingest while degraded: readings for the victim's sensors reroute
	// to the surviving shards.
	live := []*testShard{shards[0], shards[2]}
	feedBoth(t, ctx, coord, single, live, phase2)
	snap, err := single.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Compute(clusterDetCfg.Ranker, clusterDetCfg.N, snap)
	merged, err := coord.MergedEstimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Degraded || !samePoints(merged.Outliers, want) {
		t.Fatalf("degraded merge wrong: degraded=%v got %s want %s",
			merged.Degraded, ids(merged.Outliers), ids(want))
	}

	// Rejoin: a fresh empty process binds the same control address.
	reborn := startShard(t, victim.addr)
	defer reborn.stop()
	waitFor(t, 15*time.Second, "rejoined shard synced", func() bool {
		for _, info := range coord.ShardInfos() {
			if info.Addr == reborn.addr {
				return info.Up && info.Synced
			}
		}
		return false
	})
	waitFor(t, 15*time.Second, "undegraded exact merge after rejoin", func() bool {
		m, err := coord.MergedEstimate(ctx)
		return err == nil && !m.Degraded && samePoints(m.Outliers, want)
	})

	// The reborn shard really was restored by handoff: it holds window
	// points again for the sensors it owns (it restarted empty, and
	// phase2 data predates its rebirth).
	smap := coord.ShardMapSnapshot()
	owned := smap.Owned(reborn.addr, sensors, 2)
	if len(owned) > 0 {
		waitFor(t, 15*time.Second, "handoff restored the reborn shard's windows", func() bool {
			pts, err := reborn.svc.Snapshot(ctx)
			return err == nil && len(pts) > 0
		})
	}
}

// TestClusterMembershipChange drives dynamic shard join/leave with no
// replication safety net (Replicas=1): after adding a fourth shard the
// moved sensors' windows must follow them (drain-on-gain), and after
// draining and removing one of the original shards the merged answer
// must still equal the full-data baseline — no point may ride on a
// removed or unassigned shard.
func TestClusterMembershipChange(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var shards []*testShard
	var addrs []string
	for i := 0; i < 3; i++ {
		sh := startShard(t, "")
		defer sh.stop()
		shards = append(shards, sh)
		addrs = append(addrs, sh.addr)
	}
	coord, err := New(Config{
		Detector: clusterDetCfg,
		Shards:   addrs,
		Replicas: 1,
		// The full path: this test pins window movement through its
		// Window field, which the compact path does not materialize.
		MergeMode:      MergeFull,
		QueryTimeout:   5 * time.Second,
		HealthInterval: 50 * time.Millisecond,
		HealthMisses:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	single, err := ingest.New(ingest.Config{Detector: clusterDetCfg, AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	feedBoth(t, ctx, coord, single, shards, trace(99, sensorRange(12), 5))
	snap, err := single.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Compute(clusterDetCfg.Ranker, clusterDetCfg.N, snap)

	// Grow: a fourth shard joins; windows must move with ownership.
	fourth := startShard(t, "")
	defer fourth.stop()
	if err := coord.AddShard(fourth.addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "exact merge after shard add", func() bool {
		m, err := coord.MergedEstimate(ctx)
		return err == nil && !m.Degraded && m.ShardsTotal == 4 &&
			samePoints(m.Outliers, want) && samePoints(m.Window, snap)
	})

	// Shrink: remove one of the original shards; its sensors drain to
	// their new owners before it disappears from the query set.
	if err := coord.RemoveShard(shards[0].addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "exact merge after shard removal", func() bool {
		m, err := coord.MergedEstimate(ctx)
		return err == nil && !m.Degraded && m.ShardsTotal == 3 &&
			samePoints(m.Outliers, want) && samePoints(m.Window, snap)
	})
}
