package cluster

import (
	"context"
	"math/rand/v2"
	"testing"
	"time"

	"innet/internal/core"
	"innet/internal/ingest"
)

// BenchmarkClusterMerge compares the two merge paths over a live 3-shard
// cluster holding a sensor-like window (readings clustered around an
// operating point, two planted faults): per-query latency via the usual
// benchmark clock, and per-query point payload via the payload-bytes/op
// metric — the number the compact path exists to shrink.
func BenchmarkClusterMerge(b *testing.B) {
	detCfg := core.Config{
		Ranker: core.KNN{K: 2},
		N:      3,
		Window: time.Hour,
	}
	var addrs []string
	var shards []*testShard
	for i := 0; i < 3; i++ {
		svc, err := ingest.New(ingest.Config{Detector: detCfg, AutoJoin: true})
		if err != nil {
			b.Fatal(err)
		}
		srv, err := NewShardServer(ShardServerConfig{Service: svc, Addr: "127.0.0.1:0"})
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve()
		sh := &testShard{svc: svc, srv: srv, addr: srv.Addr()}
		defer sh.stop()
		shards = append(shards, sh)
		addrs = append(addrs, sh.addr)
	}
	coord, err := New(Config{
		Detector:       detCfg,
		Shards:         addrs,
		Replicas:       2,
		QueryTimeout:   10 * time.Second,
		HealthInterval: 200 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer coord.Close()

	// 24 sensors × 30 rounds ≈ 720 window points, doubled across the
	// cluster by replication.
	rng := rand.New(rand.NewPCG(5, 0x9e3779b97f4a7c15))
	var readings []ingest.Reading
	for round := 0; round < 30; round++ {
		for s := 1; s <= 24; s++ {
			v := 20 + rng.NormFloat64()
			if s == 7 && round == 28 {
				v = 55.3
			}
			readings = append(readings, ingest.Reading{
				Sensor: core.NodeID(s),
				At:     time.Duration(round) * time.Minute,
				Values: []float64{v},
			})
		}
	}
	ctx := context.Background()
	for _, errIngest := range coord.IngestBatch(readings) {
		if errIngest != nil {
			b.Fatal(errIngest)
		}
	}
	for _, sh := range shards {
		if err := sh.svc.Flush(ctx); err != nil {
			b.Fatal(err)
		}
	}

	for _, mode := range []string{MergeCompact, MergeFull} {
		b.Run(mode, func(b *testing.B) {
			var payload, rounds int
			for i := 0; i < b.N; i++ {
				res, err := coord.MergedEstimateMode(ctx, mode)
				if err != nil {
					b.Fatal(err)
				}
				if res.Mode != mode {
					b.Fatalf("served by %q, want %q", res.Mode, mode)
				}
				payload, rounds = res.PayloadBytes, res.Rounds
			}
			b.ReportMetric(float64(payload), "payload-bytes/op")
			b.ReportMetric(float64(rounds), "rounds/op")
		})
	}
}
