package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"innet/internal/core"
	"innet/internal/obs"
)

// Compact cluster merge: the coordinator runs the paper's Algorithm 1
// iteratively against the shards instead of unioning window snapshots.
// The coordinator is a data-less node on a star topology; each shard is
// a node whose dataset is its frozen window snapshot. Rounds exchange
// Eq. (2) sufficient-set deltas against per-link shared ledgers:
//
//	round r: coordinator → shard   LEDGER chunks: Z_c \ ledger_s, the
//	                               coordinator's sufficient delta over
//	                               its candidate set C
//	         coordinator → shard   SUFFICIENT(session, r): "react"
//	         shard → coordinator   the shard's sufficient delta over
//	                               P_s ∪ received, against the ledger
//
// When a full round moves no point in either direction the exchange is
// quiescent, and by the paper's Lemma 3 the coordinator's On(C) equals
// On over the union of all shard windows — the same answer the
// full-window path computes by shipping every window. Per round the
// payload is O(estimate + support), not O(window); see DESIGN.md for
// the regime analysis and the fallback rules.

// Merge modes selectable via Config.MergeMode, the -merge flag and the
// ?merge= query parameter.
const (
	// MergeCompact runs the iterative Algorithm 1 exchange and falls
	// back to MergeFull when a shard cannot play (predates the frames,
	// dies mid-query) or the round budget runs out.
	MergeCompact = "compact"
	// MergeFull ships every shard's window snapshot and computes On
	// over the union.
	MergeFull = "full"
)

// errMergeRounds reports a compact merge that did not converge within
// the round budget.
var errMergeRounds = errors.New("cluster: compact merge round budget exhausted")

// sessionIDs mints compact-merge session IDs. Shards key merge state —
// frozen snapshot link, ledger, per-round reply cache — by the
// coordinator-chosen ID alone, so two concurrent queries that collide
// replay each other's cached rounds and answer over each other's
// snapshots. A bare rand.Uint64() per query makes that collision merely
// improbable; salting a monotone counter makes it impossible within a
// process: the salt is fixed at startup and the counter never repeats,
// so IDs are pairwise distinct for the life of the coordinator (while
// the salt still keeps two coordinators sharing a shard from walking
// the same ID sequence).
type sessionIDs struct {
	salt uint64
	seq  atomic.Uint64
}

func newSessionIDs() *sessionIDs { return &sessionIDs{salt: rand.Uint64()} }

// next returns an ID that never repeats for this generator.
func (g *sessionIDs) next() uint64 { return g.salt ^ g.seq.Add(1) }

// compactResult carries what a compact merge learned, converged or not.
// payload and the trace account identically: the summed RoundTrace.Bytes
// always equal payload, which is what the caller adds to
// innetcoord_merge_bytes_total — so a /debug/merges trace's total_bytes
// matches the counter delta its session caused.
type compactResult struct {
	session  uint64
	outliers []core.Point
	cand     *core.Set // the coordinator's accumulated candidate set C
	rounds   int
	payload  int // point payload bytes exchanged, both directions

	trace    []obs.RoundTrace  // per-round, per-shard exchange record
	quiesced int               // round index that moved nothing; -1 if never
	ledgers  []obs.LedgerTrace // final per-link ledger sizes
}

// compactMerge drives one compact-merge session against the targets. It
// returns an error — and the rounds/payload spent — when any target
// fails an exchange (the caller falls back to the full-window path) or
// the round budget is exhausted. On success the result is exact for the
// union of the targets' windows. trace is the query's trace ID; it is
// stamped onto the merge frames of shards that negotiated tracing, and
// every round records one coordinator-side span per shard.
func (c *Coordinator) compactMerge(ctx context.Context, targets []*shardState, trace uint64) (compactResult, error) {
	session := c.sessionIDs.next()
	cand := core.NewSet()
	ledgers := make([]*core.Set, len(targets))
	for i := range ledgers {
		ledgers[i] = core.NewSet()
	}
	res := compactResult{session: session, cand: cand, quiesced: -1}
	// Merge exchanges are small and fast; a tighter per-attempt timeout
	// than the big transfers use keeps a dead shard from eating the
	// whole query budget before the fallback gets its turn.
	perAttempt := c.cfg.QueryTimeout / time.Duration(2*c.cfg.RetryAttempts)

	for round := 0; round < c.cfg.MergeRounds; round++ {
		res.rounds++
		// The coordinator's side of the round: its sufficient delta over
		// C per link, computed sequentially (C is estimate-sized) so the
		// shared merge source is only read concurrently, never built.
		var src *core.MergeSource
		if cand.Len() > 0 {
			src = core.NewMergeSource(c.cfg.Detector.Ranker, c.cfg.Detector.N, cand.Points())
		}
		deltas := make([][]core.Point, len(targets))
		quiet := true
		for i := range targets {
			if src != nil {
				deltas[i] = src.Delta(ledgers[i])
				if len(deltas[i]) > 0 {
					quiet = false
				}
			}
		}

		// Network phase, fanned out per shard: deliver the delta in
		// byte-budgeted LEDGER chunks, then ask for the shard's round
		// delta. Every exchange is idempotent under retry. A failing
		// shard still reports the bytes it confirmed receiving — they
		// were on the wire, so the cost accounting must include them.
		type reply struct {
			pts        []core.Point
			sent, recv int
			reqID      uint32
			start      time.Time
			rtt        time.Duration
			err        error
		}
		replies := make([]reply, len(targets))
		var wg sync.WaitGroup
		for i, st := range targets {
			wg.Add(1)
			go func(i int, st *shardState) {
				defer wg.Done()
				// Stamp the trace only at shards that negotiated tracing
				// over a HEALTH probe; a zero trace leaves frames in the
				// legacy byte layout.
				shardTrace := trace
				if !st.traced.Load() {
					shardTrace = 0
				}
				start := time.Now()
				sent := 0
				for _, chunk := range chunkByBytes(deltas[i], c.cfg.MaxFrameBytes) {
					if len(chunk) == 0 {
						continue
					}
					// One reqID per logical chunk, reused across retry
					// attempts: the shard's dedupe and replay machinery
					// must see a resend, not a fresh request.
					reqID := c.client.newReqID()
					var nb int
					err := retry(ctx, c.cfg.RetryAttempts, perAttempt, func(ctx context.Context) error {
						var err error
						nb, err = c.client.ledger(ctx, st.udp, reqID, shardTrace, session, chunk)
						return err
					})
					if err != nil {
						replies[i] = reply{sent: sent, reqID: reqID, start: start, rtt: time.Since(start),
							err: fmt.Errorf("ledger to %s: %w", st.addr, err)}
						return
					}
					sent += nb
				}
				reqID := c.client.newReqID()
				var pts []core.Point
				var nb int
				err := retry(ctx, c.cfg.RetryAttempts, perAttempt, func(ctx context.Context) error {
					var err error
					pts, nb, err = c.client.sufficient(ctx, st.udp, reqID, shardTrace, session, uint16(round))
					return err
				})
				if err != nil {
					replies[i] = reply{sent: sent, reqID: reqID, start: start, rtt: time.Since(start),
						err: fmt.Errorf("sufficient from %s: %w", st.addr, err)}
					return
				}
				replies[i] = reply{pts: pts, sent: sent, recv: nb, reqID: reqID, start: start, rtt: time.Since(start)}
			}(i, st)
		}
		wg.Wait()

		// Account the whole round — every shard's bytes, failed or not —
		// before acting on any error, so payload and the trace cover what
		// actually moved.
		rt := obs.RoundTrace{Round: round, Shards: make([]obs.ShardRoundTrace, len(targets))}
		var firstErr error
		for i := range targets {
			rep := &replies[i]
			rt.Shards[i] = obs.ShardRoundTrace{
				Shard:      targets[i].addr,
				SentBytes:  rep.sent,
				RecvBytes:  rep.recv,
				SentPoints: len(deltas[i]),
				RecvPoints: len(rep.pts),
				RTTMS:      float64(rep.rtt) / float64(time.Millisecond),
			}
			rt.Bytes += rep.sent + rep.recv
			res.payload += rep.sent + rep.recv
			span := obs.Span{
				Trace:   trace,
				Op:      obs.OpMergeRound,
				Shard:   targets[i].addr,
				Session: session,
				ReqID:   rep.reqID,
				Round:   int32(round),
				Points:  int32(len(rep.pts)),
				Bytes:   int32(rep.sent + rep.recv),
				Start:   rep.start,
				Dur:     rep.rtt,
			}
			if rep.err != nil {
				span.Err = rep.err.Error()
			}
			c.traceLog.Record(span)
			if rep.err != nil {
				rt.Shards[i].Err = rep.err.Error()
				if firstErr == nil {
					firstErr = rep.err
				}
				continue
			}
			// The shard confirmed receipt of the whole delta: it is now
			// part of the link's shared ledger on both ends.
			for _, p := range deltas[i] {
				ledgers[i].AddMinHop(p)
			}
			if len(rep.pts) > 0 {
				quiet = false
			}
			for _, p := range rep.pts {
				cand.AddMinHop(p)
				ledgers[i].AddMinHop(p)
			}
		}
		res.trace = append(res.trace, rt)
		if firstErr != nil {
			return res, firstErr
		}
		if quiet {
			res.quiesced = round
			res.outliers = core.TopN(c.cfg.Detector.Ranker, cand, c.cfg.Detector.N)
			res.ledgers = make([]obs.LedgerTrace, len(targets))
			for i := range targets {
				res.ledgers[i] = obs.LedgerTrace{Shard: targets[i].addr, Points: ledgers[i].Len()}
			}
			return res, nil
		}
	}
	return res, errMergeRounds
}
