package cluster

import (
	"testing"

	"innet/internal/core"
)

var mapShards = []string{"127.0.0.1:9101", "127.0.0.1:9102", "127.0.0.1:9103"}

func TestShardMapDeterministicAndComplete(t *testing.T) {
	m := NewShardMap(mapShards)
	if m.Version() != 1 {
		t.Fatalf("fresh map version %d, want 1", m.Version())
	}
	counts := map[string]int{}
	for s := core.NodeID(1); s <= 200; s++ {
		owners := m.Owners(s, 2)
		if len(owners) != 2 {
			t.Fatalf("sensor %d: %d owners, want 2", s, len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("sensor %d: duplicate owner %s", s, owners[0])
		}
		again := m.Owners(s, 2)
		if owners[0] != again[0] || owners[1] != again[1] {
			t.Fatalf("sensor %d: assignment not deterministic", s)
		}
		counts[owners[0]]++
	}
	for _, addr := range mapShards {
		if counts[addr] == 0 {
			t.Fatalf("shard %s owns no sensors as primary out of 200", addr)
		}
	}
	if got := m.Owners(1, 99); len(got) != 3 {
		t.Fatalf("replicas above shard count: got %d owners, want 3", len(got))
	}
}

// TestShardMapConsistentUnderChange pins the rendezvous property the
// rebalancer relies on: removing one shard moves only the sensors that
// shard owned; the rest keep their owners.
func TestShardMapConsistentUnderChange(t *testing.T) {
	m := NewShardMap(mapShards)
	removed := mapShards[1]
	next := m.WithoutShard(removed)
	if next.Version() != 2 {
		t.Fatalf("version after removal %d, want 2", next.Version())
	}
	for s := core.NodeID(1); s <= 200; s++ {
		before := m.Owners(s, 1)[0]
		after := next.Owners(s, 1)[0]
		if before != removed && before != after {
			t.Fatalf("sensor %d: owner churned %s → %s though %s was removed",
				s, before, after, removed)
		}
	}
	back := next.WithShard(removed)
	if back.Version() != 3 {
		t.Fatalf("version after re-add %d, want 3", back.Version())
	}
	for s := core.NodeID(1); s <= 200; s++ {
		if back.Owners(s, 1)[0] != m.Owners(s, 1)[0] {
			t.Fatalf("sensor %d: owner differs after remove+re-add", s)
		}
	}
	if got := back.Index(removed); got != m.Index(removed) {
		t.Fatalf("index drifted: %d vs %d", got, m.Index(removed))
	}
}

func TestShardMapOwned(t *testing.T) {
	m := NewShardMap(mapShards)
	sensors := make([]core.NodeID, 0, 50)
	for s := core.NodeID(1); s <= 50; s++ {
		sensors = append(sensors, s)
	}
	total := 0
	for _, addr := range mapShards {
		total += len(m.Owned(addr, sensors, 1))
	}
	if total != len(sensors) {
		t.Fatalf("primary ownership covers %d of %d sensors", total, len(sensors))
	}
}
