package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"innet/internal/core"
	"innet/internal/protocol"
)

// maxCtlDatagram sizes the control-plane receive buffers on both ends
// of the wire. A read that fills the buffer exactly is the kernel's
// truncation sentinel — indistinguishable from a larger datagram cut to
// fit — and the frame codec has no body-length field to notice the
// missing tail, so such reads must be dropped before decoding, not
// handed to the codec as if complete. IPv4 caps UDP payloads at 65507
// bytes, just under this buffer, so today the sentinel cannot fire from
// a well-formed peer; the guard is for the day a transport with bigger
// datagrams (IPv6 jumbograms, a proxy) carries the frames.
const maxCtlDatagram = 64 * 1024

// truncatedDatagram reports whether a read of n bytes into a bufLen
// buffer hit the kernel-truncation sentinel.
func truncatedDatagram(n, bufLen int) bool { return n >= bufLen }

// ctlClient is the coordinator's side of the shard-control wire: one UDP
// socket multiplexing request/response exchanges with every shard,
// correlated by the frames' reqID. UDP loses datagrams by design, so
// every exchange is wrapped in bounded retries by the callers; all
// requests are idempotent (ASSIGN and HANDOFF transfers re-apply
// cleanly, READINGS carry preassigned identities, queries are pure).
type ctlClient struct {
	conn *net.UDPConn

	nextReq atomic.Uint32

	// truncated counts datagrams dropped by the truncation sentinel;
	// surfaced as Stats.TruncatedFrames. The bounded retries around
	// every exchange re-request a frame lost this way.
	truncated atomic.Uint64

	// onRTT, when set, observes each successful exchange's round trip
	// (send to last response frame) with the request's frame kind. Set
	// once before the first exchange; never mutated after.
	onRTT func(kind protocol.FrameKind, d time.Duration)

	mu      sync.Mutex
	pending map[uint32]chan protocol.Frame
	closed  bool

	readerDone chan struct{}
}

// errClientClosed reports an exchange attempted after Close.
var errClientClosed = errors.New("cluster: control client closed")

func newCtlClient() (*ctlClient, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4zero, Port: 0})
	if err != nil {
		return nil, fmt.Errorf("cluster: bind control socket: %w", err)
	}
	c := &ctlClient{
		conn:       conn,
		pending:    make(map[uint32]chan protocol.Frame),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *ctlClient) readLoop() {
	defer close(c.readerDone)
	buf := make([]byte, maxCtlDatagram)
	for {
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if truncatedDatagram(n, len(buf)) {
			c.truncated.Add(1)
			continue // tail lost in the kernel; retry re-requests it
		}
		f, err := protocol.DecodeFrame(buf[:n])
		if err != nil || !f.Response() {
			continue // stray datagram; drop like a corrupt radio frame
		}
		body := make([]byte, len(f.Body))
		copy(body, f.Body)
		f.Body = body
		c.mu.Lock()
		ch := c.pending[f.ReqID]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- f:
			default: // slow collector: shed, the retry path covers it
			}
		}
	}
}

func (c *ctlClient) close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// ctlRequest describes one shard-control request. A zero reqID is
// minted fresh by exchange; callers that retry a logical operation
// mint the reqID once (newReqID) and reuse it across attempts, so a
// shard sees the retry as the same request — its replay caches and the
// span dedupe both key on it. A nonzero trace stamps the frame with
// FlagTraced (only done against shards that proved tracing-aware).
type ctlRequest struct {
	kind  protocol.FrameKind
	flags uint8
	reqID uint32
	trace uint64
	body  []byte
}

// newReqID mints a request ID for a logical operation that will be
// retried (the reqID must survive the attempts, so exchange's
// per-attempt minting cannot own it).
func (c *ctlClient) newReqID() uint32 { return c.nextReq.Add(1) }

// exchange sends one request frame to addr and feeds response frames
// echoing its reqID to collect until collect reports done or ctx expires.
func (c *ctlClient) exchange(ctx context.Context, addr *net.UDPAddr, req ctlRequest,
	collect func(protocol.Frame) (done bool, err error)) error {
	reqID := req.reqID
	if reqID == 0 {
		reqID = c.nextReq.Add(1)
	}
	ch := make(chan protocol.Frame, 64)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errClientClosed
	}
	c.pending[reqID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
	}()

	frame := protocol.EncodeFrame(protocol.Frame{
		Kind: req.kind, Flags: req.flags, ReqID: reqID, Trace: req.trace, Body: req.body,
	})
	start := time.Now()
	if _, err := c.conn.WriteToUDP(frame, addr); err != nil {
		return fmt.Errorf("cluster: send %v to %s: %w", req.kind, addr, err)
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case f := <-ch:
			done, err := collect(f)
			if err != nil {
				return err
			}
			if done {
				// Only completed exchanges are observed: a timeout says
				// nothing about the wire (the retry wrapper owns failure
				// accounting), while a completed one is a true RTT.
				if c.onRTT != nil {
					c.onRTT(req.kind, time.Since(start))
				}
				return nil
			}
		}
	}
}

// one is a collect helper for single-frame responses of the given kind.
func one(kind protocol.FrameKind, into *protocol.Frame) func(protocol.Frame) (bool, error) {
	return func(f protocol.Frame) (bool, error) {
		if f.Kind != kind {
			return false, nil // mismatched stray; keep waiting
		}
		*into = f
		return true, nil
	}
}

// assign pushes one shard-map epoch and returns the version the shard
// acknowledged.
func (c *ctlClient) assign(ctx context.Context, addr *net.UDPAddr, body protocol.AssignBody) (uint64, error) {
	buf, err := body.Encode()
	if err != nil {
		return 0, err
	}
	var resp protocol.Frame
	if err := c.exchange(ctx, addr, ctlRequest{kind: protocol.FrameAssign, body: buf},
		one(protocol.FrameAssign, &resp)); err != nil {
		return 0, err
	}
	ack, err := protocol.DecodeAck(resp.Body)
	if err != nil {
		return 0, err
	}
	return ack.Count, nil
}

// health probes one shard. Probes are always stamped FlagTraced — a
// legacy shard answers HEALTH without decoding the request body, so
// the stamp is safe against any shard version — and traced reports
// whether the response echoed the flag, which is how the coordinator
// learns a shard is tracing-aware before stamping query frames at it.
func (c *ctlClient) health(ctx context.Context, addr *net.UDPAddr) (protocol.HealthBody, bool, error) {
	var resp protocol.Frame
	if err := c.exchange(ctx, addr, ctlRequest{kind: protocol.FrameHealth, flags: protocol.FlagTraced},
		one(protocol.FrameHealth, &resp)); err != nil {
		return protocol.HealthBody{}, false, err
	}
	body, err := protocol.DecodeHealth(resp.Body)
	return body, resp.Traced(), err
}

// readings routes one batch of identity-stamped points and returns the
// count the shard accepted.
func (c *ctlClient) readings(ctx context.Context, addr *net.UDPAddr, trace uint64, pts []core.Point) (uint64, error) {
	buf, err := protocol.ReadingsBody{Points: pts}.Encode()
	if err != nil {
		return 0, err
	}
	var resp protocol.Frame
	if err := c.exchange(ctx, addr, ctlRequest{kind: protocol.FrameReadings, trace: trace, body: buf},
		one(protocol.FrameAck, &resp)); err != nil {
		return 0, err
	}
	ack, err := protocol.DecodeAck(resp.Body)
	if err != nil {
		return 0, err
	}
	return ack.Count, nil
}

// errUnknownSession reports a shard refusing a merge session it no
// longer holds (evicted under concurrent-query pressure, or the shard
// restarted mid-exchange). The compact merge must abandon the session —
// its ledger counts points the shard would no longer know about — and
// fall back to the full-window path.
var errUnknownSession = errors.New("cluster: shard no longer holds the merge session")

// fragmentParse extracts one fragment of a fragmented response: ok=false
// ignores the frame as a stray, a non-nil error aborts the exchange.
type fragmentParse func(f protocol.Frame) (frag, total int, pts []core.Point, ok bool, err error)

// collectFragments runs one request whose response spans FragCount
// frames (ESTIMATE, HANDOFF window fetches, SUFFICIENT rounds),
// reassembling the fragments in index order. bytes reports the summed
// response payload, for the merge-cost metrics.
func (c *ctlClient) collectFragments(ctx context.Context, addr *net.UDPAddr, req ctlRequest,
	parse fragmentParse) (pts []core.Point, bytes int, err error) {
	frags := make(map[int][]core.Point)
	fragBytes := make(map[int]int)
	total := -1
	collect := func(f protocol.Frame) (bool, error) {
		frag, n, fpts, ok, err := parse(f)
		if err != nil || !ok {
			return false, err
		}
		frags[frag] = fpts
		fragBytes[frag] = len(f.Body)
		total = n
		return len(frags) == total, nil
	}
	if err := c.exchange(ctx, addr, req, collect); err != nil {
		return nil, 0, err
	}
	for i := 0; i < total; i++ {
		pts = append(pts, frags[i]...)
		bytes += fragBytes[i]
	}
	return pts, bytes, nil
}

// estimate queries one shard's window snapshot, reassembling however many
// fragments the shard split it into.
func (c *ctlClient) estimate(ctx context.Context, addr *net.UDPAddr, trace uint64) ([]core.Point, int, error) {
	return c.collectFragments(ctx, addr, ctlRequest{kind: protocol.FrameEstimate, trace: trace},
		func(f protocol.Frame) (int, int, []core.Point, bool, error) {
			if f.Kind != protocol.FrameEstimate {
				return 0, 0, nil, false, nil
			}
			body, err := protocol.DecodeEstimate(f.Body)
			if err != nil {
				return 0, 0, nil, false, err
			}
			return int(body.Frag), int(body.FragCount), body.Points, true, nil
		})
}

// ledger delivers one chunk of the coordinator's compact-merge delta to
// a shard's session ledger. bytes reports the request payload size. A
// nonzero reqID pins the request identity across retry attempts.
func (c *ctlClient) ledger(ctx context.Context, addr *net.UDPAddr, reqID uint32, trace uint64,
	session uint64, pts []core.Point) (bytes int, err error) {
	buf, err := protocol.LedgerBody{Session: session, Points: pts}.Encode()
	if err != nil {
		return 0, err
	}
	var resp protocol.Frame
	collect := func(f protocol.Frame) (bool, error) {
		if f.Kind != protocol.FrameAck {
			return false, nil
		}
		if f.Flags&protocol.FlagUnknownSession != 0 {
			return false, errUnknownSession
		}
		resp = f
		return true, nil
	}
	req := ctlRequest{kind: protocol.FrameLedger, reqID: reqID, trace: trace, body: buf}
	if err := c.exchange(ctx, addr, req, collect); err != nil {
		return 0, err
	}
	if _, err := protocol.DecodeAck(resp.Body); err != nil {
		return 0, err
	}
	return len(buf), nil
}

// sufficient runs one compact-merge round against a shard: it returns
// the shard's Eq. (2) sufficient delta for the session, reassembled from
// however many fragments the shard split it into, and the response
// payload size. Retries are safe: the shard replays a computed round,
// and refuses — rather than recreates — a session it no longer holds.
func (c *ctlClient) sufficient(ctx context.Context, addr *net.UDPAddr, reqID uint32, trace uint64,
	session uint64, round uint16) ([]core.Point, int, error) {
	buf, err := protocol.SufficientBody{Session: session, Round: round, FragCount: 1}.Encode()
	if err != nil {
		return nil, 0, err
	}
	req := ctlRequest{kind: protocol.FrameSufficient, reqID: reqID, trace: trace, body: buf}
	return c.collectFragments(ctx, addr, req,
		func(f protocol.Frame) (int, int, []core.Point, bool, error) {
			if f.Kind != protocol.FrameSufficient {
				return 0, 0, nil, false, nil
			}
			if f.Flags&protocol.FlagUnknownSession != 0 {
				return 0, 0, nil, false, errUnknownSession
			}
			body, err := protocol.DecodeSufficient(f.Body)
			if err != nil {
				return 0, 0, nil, false, err
			}
			if body.Session != session || body.Round != round {
				return 0, 0, nil, false, nil
			}
			return int(body.Frag), int(body.FragCount), body.Points, true, nil
		})
}

// handoffFetch asks a shard for one sensor's current window points,
// reassembling the fragmented response.
func (c *ctlClient) handoffFetch(ctx context.Context, addr *net.UDPAddr, sensor core.NodeID) ([]core.Point, error) {
	buf, err := protocol.HandoffBody{Sensor: sensor, FragCount: 1}.Encode()
	if err != nil {
		return nil, err
	}
	pts, _, err := c.collectFragments(ctx, addr, ctlRequest{kind: protocol.FrameHandoff, body: buf},
		func(f protocol.Frame) (int, int, []core.Point, bool, error) {
			if f.Kind != protocol.FrameHandoff {
				return 0, 0, nil, false, nil
			}
			body, err := protocol.DecodeHandoff(f.Body)
			if err != nil {
				return 0, 0, nil, false, err
			}
			if body.Sensor != sensor {
				return 0, 0, nil, false, nil
			}
			return int(body.Frag), int(body.FragCount), body.Points, true, nil
		})
	return pts, err
}

// handoffTransfer delivers one chunk of a sensor's window points to its
// (new) owner; callers split oversized windows with chunkByBytes.
func (c *ctlClient) handoffTransfer(ctx context.Context, addr *net.UDPAddr, sensor core.NodeID, pts []core.Point) (uint64, error) {
	buf, err := protocol.HandoffBody{Sensor: sensor, FragCount: 1, Points: pts}.Encode()
	if err != nil {
		return 0, err
	}
	var resp protocol.Frame
	if err := c.exchange(ctx, addr, ctlRequest{kind: protocol.FrameHandoff, flags: protocol.FlagTransfer, body: buf},
		one(protocol.FrameAck, &resp)); err != nil {
		return 0, err
	}
	ack, err := protocol.DecodeAck(resp.Body)
	if err != nil {
		return 0, err
	}
	return ack.Count, nil
}

// retry runs fn with a fresh per-attempt timeout until it succeeds, the
// attempts are spent, or the parent context dies.
func retry(ctx context.Context, attempts int, timeout time.Duration, fn func(context.Context) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		attemptCtx, cancel := context.WithTimeout(ctx, timeout)
		err = fn(attemptCtx)
		cancel()
		if err == nil || ctx.Err() != nil {
			return err
		}
	}
	return err
}
