package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"innet/internal/core"
	"innet/internal/ingest"
	"innet/internal/obs"
)

// The coordinator speaks the same observation wire format as innetd
// (ingest.WireBatch / ingest.WireBatchResult and the UDP line protocol),
// so producers need no changes when a deployment grows from one process
// to a cluster — only the address they point at.

// WireMergedEstimate is the GET /v1/outliers response body: the merged
// view plus how complete it is and what serving it cost.
type WireMergedEstimate struct {
	Outliers     []ingest.WireOutlier `json:"outliers"`
	ShardsTotal  int                  `json:"shards_total"`
	ShardsOK     int                  `json:"shards_ok"`
	Degraded     bool                 `json:"degraded"`
	MapVersion   uint64               `json:"map_version"`
	MergeMode    string               `json:"merge_mode"`    // compact or full (after any fallback)
	Rounds       int                  `json:"rounds"`        // compact rounds driven
	PayloadBytes int                  `json:"payload_bytes"` // point payload moved for this query
	Trace        string               `json:"trace"`         // this query's trace ID (hex); key for /debug/traces
	// Window, present with ?window=1, is the point set the answer was
	// computed over: the merged window union on the full path, the
	// provably sufficient candidate set C on the compact path. External
	// evaluators query ?merge=full&window=1 and recompute the answer
	// with baseline.Compute over it.
	Window []ingest.WireOutlier `json:"window,omitempty"`
}

// Handler returns the coordinator's HTTP API:
//
//	POST   /v1/observations   ingest a JSON batch (routed to owner shards)
//	GET    /v1/outliers       merged outlier estimate across shards
//	GET    /v1/shards         shard states (up/synced/misses/fleet size)
//	POST   /v1/shards/{addr}  add a shard and rebalance
//	DELETE /v1/shards/{addr}  drain and remove a shard
//	GET    /healthz           liveness + shard counts
//	GET    /metrics           counters + histograms in Prometheus text format
//	GET    /debug/merges      recorded compact-merge session traces (JSON)
//	GET    /debug/traces      recorded query spans (?trace=<hex> filters)
//	GET    /debug/status      one-snapshot cluster view: shards, health,
//	                          identity/WAL state, build info
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/observations", c.handleObservations)
	mux.HandleFunc("GET /v1/outliers", c.handleOutliers)
	mux.HandleFunc("GET /v1/shards", c.handleShards)
	mux.HandleFunc("POST /v1/shards/{addr}", c.handleAddShard)
	mux.HandleFunc("DELETE /v1/shards/{addr}", c.handleRemoveShard)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.Handle("GET /debug/merges", c.mergeLog.Handler())
	mux.Handle("GET /debug/traces", c.traceLog.Handler())
	mux.HandleFunc("GET /debug/status", c.handleStatus)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (c *Coordinator) handleObservations(w http.ResponseWriter, r *http.Request) {
	var batch ingest.WireBatch
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		c.rejected.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad batch: %w", err))
		return
	}
	readings := make([]ingest.Reading, len(batch.Readings))
	for i, wr := range batch.Readings {
		readings[i] = ingest.Reading{
			Sensor: core.NodeID(wr.Sensor),
			At:     time.Duration(wr.AtMS) * time.Millisecond,
			Values: wr.Values,
		}
	}
	errs := c.IngestBatch(readings)
	result := ingest.WireBatchResult{}
	for i, err := range errs {
		if err != nil {
			result.Rejected = append(result.Rejected, ingest.WireRejection{Index: i, Error: err.Error()})
			continue
		}
		result.Accepted++
	}
	status := http.StatusAccepted
	if result.Accepted == 0 && len(result.Rejected) > 0 {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, result)
}

func (c *Coordinator) handleOutliers(w http.ResponseWriter, r *http.Request) {
	mode := r.URL.Query().Get("merge")
	switch mode {
	case "", MergeCompact, MergeFull:
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("cluster: merge=%q (want %q or %q)", mode, MergeCompact, MergeFull))
		return
	}
	res, err := c.MergedEstimateMode(r.Context(), mode)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	resp := WireMergedEstimate{
		Outliers:     make([]ingest.WireOutlier, 0, len(res.Outliers)),
		ShardsTotal:  res.ShardsTotal,
		ShardsOK:     res.ShardsOK,
		Degraded:     res.Degraded,
		MapVersion:   res.MapVersion,
		MergeMode:    res.Mode,
		Rounds:       res.Rounds,
		PayloadBytes: res.PayloadBytes,
		Trace:        traceHex(res.Trace),
	}
	for _, p := range res.Outliers {
		resp.Outliers = append(resp.Outliers, ingest.WireOutlier{
			Sensor: uint16(p.ID.Origin),
			Seq:    p.ID.Seq,
			AtMS:   p.Birth.Milliseconds(),
			Values: p.Value,
		})
	}
	if r.URL.Query().Get("window") == "1" {
		resp.Window = make([]ingest.WireOutlier, 0, len(res.Window))
		for _, p := range res.Window {
			resp.Window = append(resp.Window, ingest.WireOutlier{
				Sensor: uint16(p.ID.Origin),
				Seq:    p.ID.Seq,
				AtMS:   p.Birth.Milliseconds(),
				Values: p.Value,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleShards(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"shards": c.ShardInfos()})
}

func (c *Coordinator) handleAddShard(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	if err := c.AddShard(addr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"added": addr})
}

func (c *Coordinator) handleRemoveShard(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	switch err := c.RemoveShard(addr); {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]any{"removed": addr})
	case errors.Is(err, ErrUnknownShard):
		writeError(w, http.StatusNotFound, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := c.Stats()
	status := "ok"
	if st.ShardsUp < st.ShardsTotal {
		status = "degraded"
	}
	if st.ShardsUp == 0 {
		status = "down"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       status,
		"shards_up":    st.ShardsUp,
		"shards_total": st.ShardsTotal,
		"sensors":      st.Sensors,
	})
}

// WireStatus is the GET /debug/status response body: the whole cluster
// in one JSON snapshot, aggregating what /healthz, /v1/shards, and
// /metrics each show a slice of.
type WireStatus struct {
	Status         string        `json:"status"` // ok, degraded or down
	ShardsUp       int           `json:"shards_up"`
	ShardsTotal    int           `json:"shards_total"`
	Sensors        int           `json:"sensors"`
	MapVersion     uint64        `json:"map_version"`
	MergeMode      string        `json:"merge_mode"`
	Shards         []ShardInfo   `json:"shards"`
	IdentitySource string        `json:"identity_source"` // store, shard-fan or none
	Recovered      uint64        `json:"recovered"`       // identity counters recovered at startup
	WALErrors      uint64        `json:"wal_errors"`
	Traces         uint64        `json:"traces"` // spans recorded so far
	Build          obs.BuildInfo `json:"build_info"`
}

// handleStatus serves the cluster-wide status snapshot: shard map +
// health + probe RTTs + merge-session occupancy (via ShardInfos),
// identity floor / WAL state, and build info.
func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	st := c.Stats()
	status := "ok"
	if st.ShardsUp < st.ShardsTotal {
		status = "degraded"
	}
	if st.ShardsUp == 0 {
		status = "down"
	}
	writeJSON(w, http.StatusOK, WireStatus{
		Status:         status,
		ShardsUp:       st.ShardsUp,
		ShardsTotal:    st.ShardsTotal,
		Sensors:        st.Sensors,
		MapVersion:     c.ShardMapSnapshot().Version(),
		MergeMode:      c.cfg.MergeMode,
		Shards:         c.ShardInfos(),
		IdentitySource: st.IdentitySource,
		Recovered:      st.Recovered,
		WALErrors:      st.WALErrors,
		Traces:         c.traceLog.Total(),
		Build:          obs.ReadBuild(),
	})
}

// handleMetrics serves the obs registry built in New: the same counter
// and gauge series the retired hand-rolled writer printed (names, label
// spellings, and integer formatting preserved) plus the latency
// histograms, now with # HELP/# TYPE metadata.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.obs.reg.Handler().ServeHTTP(w, r)
}

// ServeUDP accepts the innetd line protocol ("<sensor> <at_ms> <v1>
// [v2 ...]" per line) and routes each parsed reading, so firehose
// producers can point at the coordinator unchanged. Best-effort like the
// shard-local listener: rejections are counted, not reported. It returns
// when conn is closed or the coordinator shuts down.
func (c *Coordinator) ServeUDP(conn net.PacketConn) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-c.ctx.Done():
			_ = conn.SetReadDeadline(time.Now())
		case <-done:
		}
	}()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if c.ctx.Err() != nil {
				return ErrClosed
			}
			return err
		}
		payload := buf[:n]
		if n == len(buf) {
			// Kernel-truncation sentinel: the final line may be cut
			// mid-field and must not be parsed as a (wrong) reading.
			// See ingest.ServeUDP, which applies the same rule.
			c.rejected.Add(1)
			if i := bytes.LastIndexByte(payload, '\n'); i >= 0 {
				payload = payload[:i]
			} else {
				payload = nil
			}
		}
		var readings []ingest.Reading
		for _, line := range bytes.Split(payload, []byte{'\n'}) {
			line = bytes.TrimSpace(line)
			if len(line) == 0 {
				continue
			}
			r, err := ingest.ParseLine(line)
			if err != nil {
				c.rejected.Add(1)
				continue
			}
			readings = append(readings, r)
		}
		if len(readings) > 0 {
			c.IngestBatch(readings)
		}
	}
}
