package cluster

import (
	"testing"
	"time"

	"innet/internal/core"
	"innet/internal/protocol"
)

// TestTruncatedControlDatagramDetected pins the truncation sentinel the
// control-plane read loops apply. A UDP read that fills the receive
// buffer exactly is indistinguishable from a larger datagram the kernel
// cut to fit, and the frame codec cannot notice on its own: frames
// carry no body-length field, so DecodeFrame accepts the cut datagram
// as well-formed and hands a silently shortened body to the kind-level
// codec. The only reliable signal is the read size itself — n ==
// len(buf) — which both ctlClient.readLoop and ShardServer.Serve now
// treat as "drop the frame and count it" instead of decoding.
func TestTruncatedControlDatagramDetected(t *testing.T) {
	// Build a SUFFICIENT response whose encoding exceeds the receive
	// buffer — what a mis-budgeted fragmenter, or a future transport
	// with jumbo datagrams, could put on the wire. (IPv4 UDP caps
	// payloads at 65507 bytes, so today this frame cannot even be sent;
	// the sentinel is the guard for when that ceiling moves.)
	per := core.EncodedPointSize(1)
	n := maxCtlDatagram/per + 2
	pts := make([]core.Point, n)
	for i := range pts {
		pts[i] = core.NewPoint(core.NodeID(i%1000+1), uint32(i), time.Duration(i)*time.Millisecond, 20)
	}
	body, err := protocol.SufficientBody{Session: 7, FragCount: 1, Points: pts}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	frame := protocol.EncodeFrame(protocol.Frame{
		Kind:  protocol.FrameSufficient,
		Flags: protocol.FlagResponse,
		ReqID: 1,
		Body:  body,
	})
	if len(frame) <= maxCtlDatagram {
		t.Fatalf("frame is %d bytes, want > %d to overflow the buffer", len(frame), maxCtlDatagram)
	}

	// The kernel delivers exactly buffer-size bytes of it: an
	// exactly-64 KiB datagram from the reader's point of view.
	cut := frame[:maxCtlDatagram]

	// The frame layer accepts it as complete — this is the pre-fix
	// failure mode: the truncated body reaches the kind-level codec as
	// if the datagram were whole.
	f, err := protocol.DecodeFrame(cut)
	if err != nil {
		t.Fatalf("DecodeFrame rejected the truncated datagram (%v); the read-size sentinel would be redundant", err)
	}
	if len(f.Body) != maxCtlDatagram-8 {
		t.Fatalf("decoded body is %d bytes, want the cut %d", len(f.Body), maxCtlDatagram-8)
	}

	// Only the read size can tell. The loops drop exactly this case.
	if !truncatedDatagram(len(cut), maxCtlDatagram) {
		t.Fatal("an exactly-buffer-size read must trip the truncation sentinel")
	}
	if truncatedDatagram(maxCtlDatagram-1, maxCtlDatagram) {
		t.Fatal("a read below the buffer size must not trip the sentinel")
	}
}
