package cluster

import (
	"context"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"innet/internal/core"
	"innet/internal/ingest"
)

// TestSessionIDsNeverRepeat pins the uniqueness guarantee the compact
// merge stands on: shards key merge state by the coordinator-chosen
// session ID alone, so IDs minted by one coordinator must be pairwise
// distinct for the life of the process — not merely unlikely to repeat,
// as the old bare rand.Uint64() made them. The salted monotone counter
// cannot repeat: the salt is fixed and the counter strictly increases.
func TestSessionIDsNeverRepeat(t *testing.T) {
	g := newSessionIDs()
	const workers, perWorker = 16, 4096
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]uint64, perWorker)
			for i := range ids {
				ids[i] = g.next()
			}
			out[w] = ids
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]struct{}, workers*perWorker)
	for _, ids := range out {
		for _, id := range ids {
			if _, dup := seen[id]; dup {
				t.Fatalf("session ID %#x minted twice", id)
			}
			seen[id] = struct{}{}
		}
	}
	// Distinct generators (coordinator restarts, two coordinators on one
	// shard) must not walk the same sequence: their salts differ.
	if g2 := newSessionIDs(); g2.salt == g.salt {
		t.Fatalf("two generators share salt %#x", g.salt)
	}
}

// TestMergeSessionIDCollisionReplaysStaleRound forces the collision path
// the fix closes. Two concurrent compact queries that land on the same
// session ID share one shard-side session: the second query's round 0 is
// answered from the first query's per-round reply cache, computed over
// the first query's frozen snapshot — silently missing every reading
// that arrived in between, an outlier included. With bare rand.Uint64()
// IDs this was possible (if improbable) in production; with the salted
// counter it cannot happen, and this test documents exactly what the
// guarantee buys.
func TestMergeSessionIDCollisionReplaysStaleRound(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	svc, err := ingest.New(ingest.Config{Detector: clusterDetCfg, AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for i := 1; i <= 3; i++ {
		if err := svc.Ingest(ingest.Reading{Sensor: 1, At: time.Duration(i) * time.Second, Values: []float64{float64(20 + i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	srv, err := NewShardServer(ShardServerConfig{Service: svc, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve()

	client, err := newCtlClient()
	if err != nil {
		t.Fatal(err)
	}
	defer client.close()
	addr, err := net.ResolveUDPAddr("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}

	// Query A opens session 7; its round 0 freezes the 3-point window.
	first, _, err := client.sufficient(ctx, addr, 0, 0, 7, 0)
	if err != nil {
		t.Fatalf("session 7 round 0: %v", err)
	}
	if containsValue(first, 55.3) {
		t.Fatalf("round 0 delta already contains the fault: %v", first)
	}

	// An outlier arrives and is fully observed before the next query.
	if err := svc.Ingest(ingest.Reading{Sensor: 9, At: 4 * time.Second, Values: []float64{55.3}}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Query B collides on session 7: its "fresh" round 0 is the replay
	// of A's cached round over A's stale snapshot — the outlier is gone.
	collided, _, err := client.sufficient(ctx, addr, 0, 0, 7, 0)
	if err != nil {
		t.Fatalf("colliding session 7 round 0: %v", err)
	}
	if !samePoints(sorted(first), sorted(collided)) {
		t.Fatalf("colliding round not replayed verbatim:\n  first:   %s\n  collide: %s", ids(first), ids(collided))
	}
	if containsValue(collided, 55.3) {
		t.Fatalf("colliding session unexpectedly saw the new reading: %v", collided)
	}

	// A distinct ID — what the salted counter guarantees every query
	// gets — freezes the current window and surfaces the outlier.
	fresh, _, err := client.sufficient(ctx, addr, 0, 0, 8, 0)
	if err != nil {
		t.Fatalf("session 8 round 0: %v", err)
	}
	if !containsValue(fresh, 55.3) {
		t.Fatalf("fresh session round 0 misses the outlier: %s", ids(fresh))
	}
}

func containsValue(pts []core.Point, v float64) bool {
	for _, p := range pts {
		for _, x := range p.Value {
			if x == v {
				return true
			}
		}
	}
	return false
}

func sorted(pts []core.Point) []core.Point {
	out := append([]core.Point(nil), pts...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID.Origin < out[j].ID.Origin ||
				(out[i].ID.Origin == out[j].ID.Origin && out[i].ID.Seq < out[j].ID.Seq)
		}
		return core.Less(out[i], out[j])
	})
	return out
}
