package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"errors"

	"innet/internal/baseline"
	"innet/internal/core"
	"innet/internal/ingest"
	"innet/internal/protocol"
)

// lossyProxy is a UDP man-in-the-middle between the coordinator's
// control client and one shard: it forwards datagrams both ways,
// consulting a test-set rule on every decodable control frame. The
// coordinator is pointed at the proxy's front address, so from its
// perspective the proxy IS the shard — dropping frames here exercises
// exactly the loss the real wire can inflict, and a rule that drops
// everything is indistinguishable from killing the shard process.
type lossyProxy struct {
	front *net.UDPConn // coordinator-facing listener
	back  *net.UDPConn // shard-facing socket
	shard *net.UDPAddr

	mu      sync.Mutex
	client  *net.UDPAddr
	rule    func(protocol.Frame) bool            // true = drop; nil = pass all
	rewrite func(protocol.Frame) *protocol.Frame // non-nil result replaces the frame
}

func newLossyProxy(t testing.TB, shardAddr string) *lossyProxy {
	t.Helper()
	shard, err := net.ResolveUDPAddr("udp", shardAddr)
	if err != nil {
		t.Fatal(err)
	}
	front, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
	if err != nil {
		t.Fatal(err)
	}
	back, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
	if err != nil {
		front.Close()
		t.Fatal(err)
	}
	p := &lossyProxy{front: front, back: back, shard: shard}
	go p.pump(front, func(buf []byte, from *net.UDPAddr) {
		p.mu.Lock()
		p.client = from
		p.mu.Unlock()
		p.back.WriteToUDP(buf, p.shard)
	})
	go p.pump(back, func(buf []byte, _ *net.UDPAddr) {
		p.mu.Lock()
		client := p.client
		p.mu.Unlock()
		if client != nil {
			p.front.WriteToUDP(buf, client)
		}
	})
	t.Cleanup(p.close)
	return p
}

// pump reads conn until closed, forwarding every datagram the rule lets
// through.
func (p *lossyProxy) pump(conn *net.UDPConn, forward func([]byte, *net.UDPAddr)) {
	buf := make([]byte, 64*1024)
	for {
		n, from, err := conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if f, err := protocol.DecodeFrame(buf[:n]); err == nil {
			p.mu.Lock()
			drop := p.rule != nil && p.rule(f)
			rewrite := p.rewrite
			p.mu.Unlock()
			if drop {
				continue
			}
			if rewrite != nil {
				if nf := rewrite(f); nf != nil {
					forward(protocol.EncodeFrame(*nf), from)
					continue
				}
			}
		}
		out := make([]byte, n)
		copy(out, buf[:n])
		forward(out, from)
	}
}

// setRule installs the drop rule; the rule runs under the proxy mutex,
// so it may keep unsynchronized state.
func (p *lossyProxy) setRule(rule func(protocol.Frame) bool) {
	p.mu.Lock()
	p.rule = rule
	p.mu.Unlock()
}

// setRewrite installs a frame rewriter applied to every decodable
// control frame in both directions; returning non-nil re-encodes and
// forwards the replacement instead of the original bytes.
func (p *lossyProxy) setRewrite(rewrite func(protocol.Frame) *protocol.Frame) {
	p.mu.Lock()
	p.rewrite = rewrite
	p.mu.Unlock()
}

func (p *lossyProxy) addr() string { return p.front.LocalAddr().String() }

func (p *lossyProxy) close() {
	p.front.Close()
	p.back.Close()
}

// mergeCluster boots 3 shards behind lossy proxies plus a coordinator
// routed through them and a single-process reference.
func mergeCluster(t *testing.T, replicas int, mode string) (*Coordinator, *ingest.Service, []*testShard, []*lossyProxy) {
	t.Helper()
	var shards []*testShard
	var proxies []*lossyProxy
	var addrs []string
	for i := 0; i < 3; i++ {
		sh := startShard(t, "")
		t.Cleanup(sh.stop)
		px := newLossyProxy(t, sh.addr)
		shards = append(shards, sh)
		proxies = append(proxies, px)
		addrs = append(addrs, px.addr())
	}
	coord, err := New(Config{
		Detector:      clusterDetCfg,
		Shards:        addrs,
		Replicas:      replicas,
		MergeMode:     mode,
		QueryTimeout:  15 * time.Second,
		RetryAttempts: 4,
		// These tests exercise the merge protocol, not down-detection:
		// a probe flap on a slow CI box would silently shrink the query
		// target set (with replicas=1 that drops data from the merge),
		// so down-marking is effectively disabled.
		HealthInterval: 50 * time.Millisecond,
		HealthMisses:   1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	single, err := ingest.New(ingest.Config{Detector: clusterDetCfg, AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { single.Close() })
	return coord, single, shards, proxies
}

// dropEveryNth drops every n-th merge-carrying frame (LEDGER, SUFFICIENT
// and ESTIMATE, both directions), leaving the health plane alone so loss
// cannot masquerade as shard death.
func dropEveryNth(n int) func(protocol.Frame) bool {
	count := 0
	return func(f protocol.Frame) bool {
		switch f.Kind {
		case protocol.FrameLedger, protocol.FrameSufficient, protocol.FrameEstimate:
			count++
			return count%n == 0
		}
		return false
	}
}

// TestCompactMergeEquivalenceUnderLoss is the acceptance property with
// frame loss injected: for random traces at replicas 1 and 2, with every
// third merge frame dropped on every shard link, the merged answer —
// compact by default, fallback permitted when the loss eats the compact
// budget — always equals the full-window merge and baseline.Compute.
// With loss lifted, the compact path itself must serve exactly.
func TestCompactMergeEquivalenceUnderLoss(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, replicas := range []int{1, 2} {
		t.Run(fmt.Sprintf("replicas=%d", replicas), func(t *testing.T) {
			coord, single, shards, proxies := mergeCluster(t, replicas, MergeCompact)
			for _, px := range proxies {
				px.setRule(dropEveryNth(3))
			}
			// Wide windows (24 sensors × 8 rounds) so the payload
			// comparison at the end has structural headroom: the full
			// path ships every window point, the compact path only
			// estimates and supports.
			feedBoth(t, ctx, coord, single, shards, trace(11*uint64(replicas), sensorRange(24), 8))
			snap, err := single.Snapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			want := baseline.Compute(clusterDetCfg.Ranker, clusterDetCfg.N, snap)

			for q := 0; q < 2; q++ {
				merged, err := coord.MergedEstimate(ctx)
				if err != nil {
					t.Fatalf("query %d: %v", q, err)
				}
				if !samePoints(merged.Outliers, want) {
					t.Fatalf("query %d (%s): merged %s != baseline %s",
						q, merged.Mode, ids(merged.Outliers), ids(want))
				}
			}
			fullLoss, err := coord.MergedEstimateMode(ctx, MergeFull)
			if err != nil {
				t.Fatal(err)
			}
			if !samePoints(fullLoss.Outliers, want) {
				t.Fatalf("full merge under loss %s != baseline %s", ids(fullLoss.Outliers), ids(want))
			}

			// Loss lifted: the compact path must serve, exactly, without
			// falling back — and for strictly less payload than the
			// full-window path moves.
			for _, px := range proxies {
				px.setRule(nil)
			}
			compact, err := coord.MergedEstimateMode(ctx, MergeCompact)
			if err != nil {
				t.Fatal(err)
			}
			if compact.Mode != MergeCompact {
				t.Fatalf("loss-free compact query fell back to %q", compact.Mode)
			}
			if !samePoints(compact.Outliers, want) {
				t.Fatalf("compact %s != baseline %s", ids(compact.Outliers), ids(want))
			}
			full, err := coord.MergedEstimateMode(ctx, MergeFull)
			if err != nil {
				t.Fatal(err)
			}
			if !samePoints(full.Outliers, want) {
				t.Fatalf("full %s != baseline %s", ids(full.Outliers), ids(want))
			}
			if compact.PayloadBytes >= full.PayloadBytes {
				t.Fatalf("compact payload %dB ≥ full payload %dB: no compaction",
					compact.PayloadBytes, full.PayloadBytes)
			}
		})
	}
}

// TestCompactMergeRetryIdempotent forces a retry of every merge round —
// the first SUFFICIENT response of each (session, round) is dropped —
// and requires the compact path to still serve exactly, without falling
// back: the shard must replay the cached round rather than recompute it,
// or the ledgers double-advance and the exchange diverges.
func TestCompactMergeRetryIdempotent(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	coord, single, shards, proxies := mergeCluster(t, 2, MergeCompact)
	feedBoth(t, ctx, coord, single, shards, trace(23, sensorRange(12), 5))
	snap, err := single.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Compute(clusterDetCfg.Ranker, clusterDetCfg.N, snap)

	for _, px := range proxies {
		seen := make(map[uint64]map[uint16]bool)
		px.setRule(func(f protocol.Frame) bool {
			if f.Kind != protocol.FrameSufficient || !f.Response() {
				return false
			}
			body, err := protocol.DecodeSufficient(f.Body)
			if err != nil {
				return false
			}
			if seen[body.Session] == nil {
				seen[body.Session] = make(map[uint16]bool)
			}
			if !seen[body.Session][body.Round] {
				seen[body.Session][body.Round] = true
				return true // first response of the round: lose it
			}
			return false
		})
	}
	merged, err := coord.MergedEstimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Mode != MergeCompact {
		t.Fatalf("retried merge fell back to %q", merged.Mode)
	}
	if !samePoints(merged.Outliers, want) {
		t.Fatalf("retried compact merge %s != baseline %s", ids(merged.Outliers), ids(want))
	}
}

// TestCompactMergeFallbackMidQueryKill emulates a shard dying mid-merge:
// after the victim's first SUFFICIENT response its link goes entirely
// dark (from the coordinator's socket that is exactly a process kill).
// The compact session must abort, fall back to the full-window path, and
// — with Replicas 2 covering the victim's points — still serve the exact
// baseline answer, flagged degraded once health catches up or the
// snapshot query times out on the dead link.
func TestCompactMergeFallbackMidQueryKill(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	coord, single, shards, proxies := mergeCluster(t, 2, MergeCompact)
	feedBoth(t, ctx, coord, single, shards, trace(37, sensorRange(12), 5))
	snap, err := single.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Compute(clusterDetCfg.Ranker, clusterDetCfg.N, snap)

	// Sanity: a healthy compact merge first.
	healthy, err := coord.MergedEstimate(ctx)
	if err != nil || healthy.Mode != MergeCompact || !samePoints(healthy.Outliers, want) {
		t.Fatalf("healthy compact merge wrong: mode=%v err=%v %s", healthy.Mode, err, ids(healthy.Outliers))
	}

	dead := false
	proxies[1].setRule(func(f protocol.Frame) bool {
		if dead {
			return true
		}
		if f.Kind == protocol.FrameSufficient && f.Response() {
			dead = true // this response passes; everything after is void
		}
		return false
	})
	merged, err := coord.MergedEstimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Mode != MergeFull {
		t.Fatalf("mid-query kill served by %q, want full fallback", merged.Mode)
	}
	if !samePoints(merged.Outliers, want) {
		t.Fatalf("fallback merge %s != baseline %s", ids(merged.Outliers), ids(want))
	}
	if got := coord.Stats().MergeFallbacks; got < 1 {
		t.Fatalf("MergeFallbacks = %d, want ≥ 1", got)
	}
}

// TestCompactMergeLegacyShardFallback points the coordinator at a shard
// that predates the merge frames: its decoder rejects the unknown kinds
// silently, exactly like an old binary, while ASSIGN/ESTIMATE/READINGS
// still work. The compact path must fall back to full and stay exact and
// undegraded.
func TestCompactMergeLegacyShardFallback(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	coord, single, shards, proxies := mergeCluster(t, 1, MergeCompact)
	proxies[2].setRule(func(f protocol.Frame) bool {
		return f.Kind == protocol.FrameLedger || f.Kind == protocol.FrameSufficient
	})
	feedBoth(t, ctx, coord, single, shards, trace(53, sensorRange(12), 5))
	snap, err := single.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Compute(clusterDetCfg.Ranker, clusterDetCfg.N, snap)

	merged, err := coord.MergedEstimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Mode != MergeFull {
		t.Fatalf("legacy shard merge served by %q, want full fallback", merged.Mode)
	}
	if merged.Degraded {
		t.Fatal("legacy-shard fallback flagged degraded; the shard is healthy")
	}
	if !samePoints(merged.Outliers, want) {
		t.Fatalf("legacy fallback %s != baseline %s", ids(merged.Outliers), ids(want))
	}
}

// TestMergeSessionEvictionRefused pins the mid-exchange eviction
// contract: merge sessions are created only by a round-0 SUFFICIENT, so
// once a session has been evicted (here forced by MaxMergeSessions=1),
// later frames naming it must be refused — not silently served from a
// recreated session with an empty ledger, which would desynchronize the
// two ends and could let a quiescent-but-wrong compact answer through.
// The refusal surfaces as errUnknownSession, which sends the
// coordinator to the exact full-window fallback.
func TestMergeSessionEvictionRefused(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	svc, err := ingest.New(ingest.Config{Detector: clusterDetCfg, AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for i := 1; i <= 3; i++ {
		if err := svc.Ingest(ingest.Reading{Sensor: 1, At: time.Duration(i) * time.Second, Values: []float64{float64(20 + i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	srv, err := NewShardServer(ShardServerConfig{Service: svc, Addr: "127.0.0.1:0", MaxMergeSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve()

	client, err := newCtlClient()
	if err != nil {
		t.Fatal(err)
	}
	defer client.close()
	addr, err := net.ResolveUDPAddr("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := client.sufficient(ctx, addr, 0, 0, 1, 0); err != nil {
		t.Fatalf("session 1 round 0: %v", err)
	}
	// A second session evicts the first (cap is 1).
	if _, _, err := client.sufficient(ctx, addr, 0, 0, 2, 0); err != nil {
		t.Fatalf("session 2 round 0: %v", err)
	}
	if _, _, err := client.sufficient(ctx, addr, 0, 0, 1, 1); !errors.Is(err, errUnknownSession) {
		t.Fatalf("round 1 on evicted session: err = %v, want errUnknownSession", err)
	}
	pt := []core.Point{core.NewPoint(9, 0, 0, 55.3)}
	if _, err := client.ledger(ctx, addr, 0, 0, 1, pt); !errors.Is(err, errUnknownSession) {
		t.Fatalf("ledger on evicted session: err = %v, want errUnknownSession", err)
	}
	// A fresh round 0 reopens the session cleanly.
	if _, _, err := client.sufficient(ctx, addr, 0, 0, 1, 0); err != nil {
		t.Fatalf("reopened session 1 round 0: %v", err)
	}
}

// TestCoordinatorIdentityRecovery pins the restart hole: a coordinator
// restarted inside a live window must seed its per-sensor sequence
// counters past what the shards hold, so the next reading mints a fresh
// identity instead of colliding with an in-window point (which the
// windows would silently deduplicate, losing the reading).
func TestCoordinatorIdentityRecovery(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var shards []*testShard
	var addrs []string
	for i := 0; i < 3; i++ {
		sh := startShard(t, "")
		defer sh.stop()
		shards = append(shards, sh)
		addrs = append(addrs, sh.addr)
	}
	cfg := Config{
		Detector:       clusterDetCfg,
		Shards:         addrs,
		Replicas:       2,
		QueryTimeout:   5 * time.Second,
		HealthInterval: 50 * time.Millisecond,
		HealthMisses:   2,
	}
	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := ingest.New(ingest.Config{Detector: clusterDetCfg, AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()

	const rounds = 4
	feedBoth(t, ctx, first, single, shards, trace(71, sensorRange(6), rounds))
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh coordinator over the same (live, full) shards.
	second, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if got := second.Stats().Recovered; got != 6 {
		t.Fatalf("recovered %d sensors, want 6", got)
	}

	// A new in-window reading for sensor 3 must extend the identity
	// stream, not re-mint sequence 0 (which the shard windows would
	// deduplicate away).
	if err := second.Ingest(ingest.Reading{
		Sensor: 3,
		At:     rounds * time.Minute,
		Values: []float64{20.7},
	}); err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		if err := sh.svc.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := second.MergedEstimateMode(ctx, MergeFull)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint32
	for _, p := range merged.Window {
		if p.ID.Origin == 3 {
			seqs = append(seqs, p.ID.Seq)
		}
	}
	if len(seqs) != rounds+1 {
		t.Fatalf("sensor 3 holds %d points (%v), want %d — the new reading collided",
			len(seqs), seqs, rounds+1)
	}
	max := seqs[0]
	for _, s := range seqs {
		if s > max {
			max = s
		}
	}
	if max != rounds {
		t.Fatalf("newest sensor-3 sequence %d, want %d (continuation of the stream)", max, rounds)
	}
}
