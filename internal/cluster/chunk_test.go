package cluster

import (
	"testing"

	"innet/internal/core"
)

// TestChunkByBytes pins the fragmentation contract: chunks respect the
// byte budget (counting encoded point size, which grows with feature
// dimension), no point is lost or reordered, and the empty list still
// yields one sendable chunk.
func TestChunkByBytes(t *testing.T) {
	if got := chunkByBytes(nil, 100); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty input: got %v, want one empty chunk", got)
	}

	mk := func(n, dim int) []core.Point {
		pts := make([]core.Point, n)
		vals := make([]float64, dim)
		for i := range pts {
			pts[i] = core.NewPoint(1, uint32(i), 0, vals...)
		}
		return pts
	}
	for _, tc := range []struct {
		n, dim, budget int
	}{
		{n: 100, dim: 1, budget: 100},
		{n: 100, dim: 5, budget: 100},
		{n: 37, dim: 3, budget: 1000},
		{n: 3, dim: 255, budget: 50}, // one max-dim point exceeds any sane budget: 1 per chunk
	} {
		pts := mk(tc.n, tc.dim)
		chunks := chunkByBytes(pts, tc.budget)
		size := core.EncodedPointSize(tc.dim)
		seq := uint32(0)
		for _, chunk := range chunks {
			if len(chunk) > 1 && len(chunk)*size > tc.budget {
				t.Fatalf("n=%d dim=%d: chunk of %d points (%d B) over budget %d",
					tc.n, tc.dim, len(chunk), len(chunk)*size, tc.budget)
			}
			for _, p := range chunk {
				if p.ID.Seq != seq {
					t.Fatalf("n=%d dim=%d: point %d out of order (want seq %d)",
						tc.n, tc.dim, p.ID.Seq, seq)
				}
				seq++
			}
		}
		if int(seq) != tc.n {
			t.Fatalf("n=%d dim=%d: %d points after chunking, want %d", tc.n, tc.dim, seq, tc.n)
		}
	}
}
