package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"innet/internal/core"
	"innet/internal/ingest"
	"innet/internal/obs"
	"innet/internal/protocol"
)

// defaultFrameBytes is the point-payload byte budget per control frame,
// comfortably under the 65507-byte UDP payload ceiling with header room.
const defaultFrameBytes = 60000

// chunkByBytes splits a point list into chunks whose encoded size stays
// within the budget (one max-dimension point is ~2 KiB, so every chunk
// holds at least one point). It always returns at least one — possibly
// empty — chunk, so "send every chunk" also answers an empty query.
func chunkByBytes(pts []core.Point, budget int) [][]core.Point {
	chunks := [][]core.Point{nil}
	bytes := 0
	for _, p := range pts {
		size := core.EncodedPointSize(len(p.Value))
		if last := len(chunks) - 1; len(chunks[last]) > 0 && bytes+size > budget {
			chunks = append(chunks, nil)
			bytes = 0
		}
		chunks[len(chunks)-1] = append(chunks[len(chunks)-1], p)
		bytes += size
	}
	return chunks
}

// ShardServer is the shard-side control plane: a UDP listener that
// bridges shard-control frames into the process's ingest.Service. It is
// what `innetd -shard` runs next to the normal HTTP/UDP front doors, so
// a shard remains a fully functional innetd — the coordinator is an
// additional client, not a replacement interface.
//
// All handlers are idempotent, matching the coordinator's retry policy:
// re-ASSIGN re-joins already-joined sensors, re-delivered READINGS and
// HANDOFF points carry preassigned identities and deduplicate inside the
// detectors' windows, and queries are pure.
type ShardServer struct {
	svc      *ingest.Service
	conn     *net.UDPConn
	log      *slog.Logger
	maxBytes int

	mapVersion atomic.Uint64
	truncated  atomic.Uint64 // datagrams dropped by the truncation sentinel

	// Compact-merge state: live sessions keyed by the coordinator's
	// session ID, plus the last snapshot's merge source keyed by a
	// content fingerprint — sessions over an unchanged window skip the
	// snapshot's index build and ranking batch entirely (the cluster
	// counterpart of the detector's version-keyed supporter cache).
	mergeMu     sync.Mutex
	sessions    map[uint64]*mergeSession
	maxSessions int
	lastSrc     *core.MergeSource
	lastFP      uint64

	// slots bounds concurrent heavy handlers; see Serve.
	slots chan struct{}
	wg    sync.WaitGroup

	ctx    context.Context
	cancel context.CancelFunc
}

// mergeSession is one coordinator merge exchange in flight: the link
// over the window snapshot frozen at session start, and the per-round
// reply cache that makes retried SUFFICIENT queries idempotent.
type mergeSession struct {
	mu      sync.Mutex
	link    *core.MergeLink
	rounds  map[uint16][]core.Point
	touched time.Time
}

// mergeSessionTTL evicts sessions whose coordinator went silent — a
// crashed query must not pin snapshots forever.
const mergeSessionTTL = time.Minute

// ShardServerConfig parameterizes a ShardServer.
type ShardServerConfig struct {
	// Service is the shard's ingest fleet. Required. It should run with
	// AutoJoin so HANDOFF and READINGS for new sensors attach them.
	Service *ingest.Service

	// Addr is the UDP control listen address, e.g. "127.0.0.1:9100".
	// Required; use port 0 to let the kernel pick (see Addr).
	Addr string

	// MaxFrameBytes is the byte budget for one frame's point payload;
	// outgoing point lists are fragmented to stay under it. The default
	// (60000) leaves headroom below the 65507-byte UDP payload ceiling
	// at any feature dimension the wire admits.
	MaxFrameBytes int

	// MaxMergeSessions caps concurrent compact-merge sessions; beyond it
	// the least-recently-touched session is evicted (its coordinator
	// falls back to the full-window path). Default 8.
	MaxMergeSessions int

	// Logger receives structured control-action events. Nil discards.
	Logger *slog.Logger
}

// NewShardServer binds the control listener. Call Serve to start
// handling frames.
func NewShardServer(cfg ShardServerConfig) (*ShardServer, error) {
	if cfg.Service == nil {
		return nil, errors.New("cluster: ShardServerConfig.Service is required")
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = defaultFrameBytes
	}
	if cfg.MaxMergeSessions <= 0 {
		cfg.MaxMergeSessions = 8
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	udpAddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: resolve %q: %w", cfg.Addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %q: %w", cfg.Addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &ShardServer{
		svc:         cfg.Service,
		conn:        conn,
		log:         cfg.Logger,
		maxBytes:    cfg.MaxFrameBytes,
		sessions:    make(map[uint64]*mergeSession),
		maxSessions: cfg.MaxMergeSessions,
		slots:       make(chan struct{}, 8),
		ctx:         ctx,
		cancel:      cancel,
	}, nil
}

// Addr returns the bound control address (useful with port 0).
func (s *ShardServer) Addr() string { return s.conn.LocalAddr().String() }

// MapVersion returns the shard-map epoch last adopted via ASSIGN.
func (s *ShardServer) MapVersion() uint64 { return s.mapVersion.Load() }

// TruncatedFrames returns how many control datagrams Serve dropped
// because they filled the receive buffer exactly — the kernel's
// truncation sentinel; see maxCtlDatagram.
func (s *ShardServer) TruncatedFrames() uint64 { return s.truncated.Load() }

// Close stops the listener; a blocked Serve returns.
func (s *ShardServer) Close() error {
	s.cancel()
	return s.conn.Close()
}

// Serve handles control frames until Close. It always returns a non-nil
// error, net.ErrClosed after a clean Close; in-flight handlers are
// waited for before it returns.
//
// HEALTH is answered inline on the read loop — it must never queue
// behind work, or a shard gets marked down precisely because it is busy
// serving a snapshot. Everything else runs on its own goroutine behind
// a small semaphore: handlers only touch the concurrency-safe
// ingest.Service and the socket, and the coordinator's retries cover a
// frame shed because all slots were busy.
func (s *ShardServer) Serve() error {
	defer s.wg.Wait()
	buf := make([]byte, maxCtlDatagram)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return err
		}
		if truncatedDatagram(n, len(buf)) {
			s.truncated.Add(1)
			s.log.Warn("dropped truncated datagram", "bytes", n, "from", from.String())
			continue // tail lost in the kernel; the peer's retry covers it
		}
		f, err := protocol.DecodeFrame(buf[:n])
		if err != nil || f.Response() {
			continue // not ours / echo: drop
		}
		if f.Kind == protocol.FrameHealth {
			body := protocol.HealthBody{
				MapVersion: s.mapVersion.Load(),
				Sensors:    uint16(len(s.svc.Sensors())),
			}
			enc := body.Encode()
			if f.Traced() {
				// A traced probe is the capability negotiation: echoing
				// FlagTraced (via respond) advertises this shard speaks
				// tracing, and the extended body reports merge-session
				// cache occupancy for /debug/status.
				body.Sessions = uint16(s.sessionCount())
				enc = body.EncodeExtended()
			}
			s.finish(f, from, s.respond(from, f, protocol.FrameHealth, enc))
			continue
		}
		select {
		case s.slots <- struct{}{}:
		default:
			continue // saturated: shed, like a full radio; retries cover it
		}
		body := make([]byte, len(f.Body)) // the read loop reuses buf
		copy(body, f.Body)
		f.Body = body
		s.wg.Add(1)
		go func(f protocol.Frame, from *net.UDPAddr) {
			defer s.wg.Done()
			defer func() { <-s.slots }()
			s.handle(f, from)
		}(f, from)
	}
}

// handle dispatches one request frame and writes its response(s) back to
// the requester. Handler errors are logged, not fatal: the coordinator's
// retry covers transient failures, and a malformed frame must not take
// the control plane down.
func (s *ShardServer) handle(f protocol.Frame, from *net.UDPAddr) {
	var err error
	switch f.Kind {
	case protocol.FrameAssign:
		err = s.handleAssign(f, from)
	case protocol.FrameHandoff:
		if f.Flags&protocol.FlagTransfer != 0 {
			err = s.handleHandoffTransfer(f, from)
		} else {
			err = s.handleHandoffFetch(f, from)
		}
	case protocol.FrameEstimate:
		err = s.handleEstimate(f, from)
	case protocol.FrameReadings:
		err = s.handleReadings(f, from)
	case protocol.FrameLedger:
		err = s.handleLedger(f, from)
	case protocol.FrameSufficient:
		err = s.handleSufficient(f, from)
	}
	s.finish(f, from, err)
}

// finish logs a handler failure.
func (s *ShardServer) finish(f protocol.Frame, from *net.UDPAddr, err error) {
	if err != nil && s.ctx.Err() == nil {
		s.log.Warn("handler failed", "kind", f.Kind.String(), "from", from.String(),
			"trace", traceHex(f.Trace), "err", err)
	}
}

// sessionCount reports live merge-session cache occupancy.
func (s *ShardServer) sessionCount() int {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	return len(s.sessions)
}

// respond echoes the request's trace state: a traced request gets a
// traced response carrying the same trace ID (possibly zero — a bare
// FlagTraced echo is how the HEALTH negotiation says "I speak tracing"),
// an untraced request gets the legacy byte layout.
func (s *ShardServer) respond(to *net.UDPAddr, req protocol.Frame, kind protocol.FrameKind, body []byte) error {
	frame := protocol.EncodeFrame(protocol.Frame{
		Kind:  kind,
		Flags: protocol.FlagResponse | (req.Flags & protocol.FlagTraced),
		ReqID: req.ReqID,
		Trace: req.Trace,
		Body:  body,
	})
	_, err := s.conn.WriteToUDP(frame, to)
	return err
}

// handleAssign adopts a shard-map epoch: the owned sensors are
// pre-joined (so a freshly (re)started shard has its fleet up before
// readings land) and the explicitly evicted ones are detached — a moved
// sensor's peer would otherwise never advance its clock again and serve
// expired points into the merge forever. The departed sensors' points
// still held by remaining peers age out of the sliding windows normally
// (§5.3). Eviction only applies when the epoch is newly adopted, so a
// reordered stale ASSIGN neither rolls the version back nor detaches
// anything.
func (s *ShardServer) handleAssign(f protocol.Frame, from *net.UDPAddr) error {
	body, err := protocol.DecodeAssign(f.Body)
	if err != nil {
		return err
	}
	for _, id := range body.Sensors {
		if err := s.svc.Join(id); err != nil && !errors.Is(err, ingest.ErrAlreadyJoined) {
			return fmt.Errorf("join %d: %w", id, err)
		}
	}
	adopted := false
	for {
		cur := s.mapVersion.Load()
		if body.MapVersion <= cur {
			break
		}
		if s.mapVersion.CompareAndSwap(cur, body.MapVersion) {
			adopted = true
			break
		}
	}
	if adopted {
		for _, id := range body.Evict {
			_ = s.svc.Leave(id) // not-joined is fine: nothing to detach
		}
	}
	s.log.Info("ASSIGN adopted", "map_version", body.MapVersion,
		"slot", body.ShardIndex, "of", body.ShardCount,
		"sensors", len(body.Sensors), "evictions", len(body.Evict))
	return s.respond(from, f, protocol.FrameAssign, protocol.AckBody{Count: s.mapVersion.Load()}.Encode())
}

// ingestPoints feeds identity-stamped points through the normal ingest
// front door (validation, staleness gate, bounded queues) and reports
// how many were admitted. trace propagates the frame's trace ID into
// the readings' queue-wait and observe spans.
func (s *ShardServer) ingestPoints(trace uint64, pts []core.Point) uint64 {
	var accepted uint64
	for _, p := range pts {
		err := s.svc.Ingest(ingest.Reading{
			Sensor: p.ID.Origin,
			At:     p.Birth,
			Values: p.Value,
			Seq:    p.ID.Seq,
			HasSeq: true,
			Trace:  trace,
		})
		if err == nil {
			accepted++
		}
	}
	return accepted
}

func (s *ShardServer) handleReadings(f protocol.Frame, from *net.UDPAddr) error {
	start := time.Now()
	body, err := protocol.DecodeReadings(f.Body)
	if err != nil {
		return err
	}
	accepted := s.ingestPoints(f.Trace, body.Points)
	s.svc.Traces().Record(obs.Span{
		Trace:  f.Trace,
		ReqID:  f.ReqID,
		Op:     obs.OpReadings,
		Points: int32(accepted),
		Bytes:  int32(len(f.Body)),
		Start:  start,
		Dur:    time.Since(start),
	})
	return s.respond(from, f, protocol.FrameAck, protocol.AckBody{Count: accepted}.Encode())
}

// handleHandoffTransfer adopts a sensor's window from another shard.
// Unlike live READINGS — where latest-wins shedding under burst is the
// documented policy — a window restore must not lose points, so the
// batch is fed in sub-batches below the default queue depth with a
// flush-to-quiescence between them.
func (s *ShardServer) handleHandoffTransfer(f protocol.Frame, from *net.UDPAddr) error {
	body, err := protocol.DecodeHandoff(f.Body)
	if err != nil {
		return err
	}
	var accepted uint64
	const sub = 64
	for lo := 0; lo < len(body.Points); lo += sub {
		hi := lo + sub
		if hi > len(body.Points) {
			hi = len(body.Points)
		}
		accepted += s.ingestPoints(f.Trace, body.Points[lo:hi])
		if err := s.svc.Flush(s.ctx); err != nil {
			return err
		}
	}
	s.log.Info("HANDOFF adopted", "sensor", uint64(body.Sensor),
		"accepted", accepted, "points", len(body.Points))
	return s.respond(from, f, protocol.FrameAck, protocol.AckBody{Count: accepted}.Encode())
}

// handleHandoffFetch returns one sensor's current window points, in as
// many fragments as the byte budget requires. The sensor's own peer
// holds every point it originated (plus the exchanged rest), so one
// event-loop round trip suffices; a sensor this shard never attached
// has nothing to hand off.
func (s *ShardServer) handleHandoffFetch(f protocol.Frame, from *net.UDPAddr) error {
	body, err := protocol.DecodeHandoff(f.Body)
	if err != nil {
		return err
	}
	var pts []core.Point
	if held, err := s.svc.HoldingsOf(s.ctx, body.Sensor); err == nil {
		for _, p := range held {
			if p.ID.Origin == body.Sensor {
				pts = append(pts, p)
			}
		}
	}
	chunks := chunkByBytes(pts, s.maxBytes)
	for i, chunk := range chunks {
		resp, err := protocol.HandoffBody{
			Sensor:    body.Sensor,
			Frag:      uint16(i),
			FragCount: uint16(len(chunks)),
			Points:    chunk,
		}.Encode()
		if err != nil {
			return err
		}
		if err := s.respond(from, f, protocol.FrameHandoff, resp); err != nil {
			return err
		}
	}
	return nil
}

// fingerprintPoints hashes a window snapshot's content (IDs and birth
// stamps; values are determined by identity) so merge sessions can tell
// an unchanged window from a changed one without comparing point lists.
func fingerprintPoints(pts []core.Point) uint64 {
	h := fnv.New64a()
	var buf [14]byte
	for _, p := range pts {
		binary.BigEndian.PutUint16(buf[0:], uint16(p.ID.Origin))
		binary.BigEndian.PutUint32(buf[2:], p.ID.Seq)
		binary.BigEndian.PutUint64(buf[6:], uint64(p.Birth))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// mergeSession returns the session with the given ID, creating it — over
// a freshly frozen window snapshot — only when create is set (a round-0
// SUFFICIENT, the exchange's opening move). Any other frame naming an
// unknown session returns nil: the session was evicted or the shard
// restarted, and transparently recreating it with an empty ledger would
// desynchronize the two ends' ledgers — the coordinator would withhold
// candidates it believes delivered, the shard's fixed point would never
// refute them, and a quiescent-but-wrong answer could be served as
// exact. The caller turns nil into a FlagUnknownSession refusal, which
// drives the coordinator to the full-window fallback.
//
// The snapshot's merge source (spatial index, ranking batch, Eq. (2)
// seed) is reused across sessions while the window fingerprint is
// unchanged, so repeated queries over a quiet window skip straight to
// the fixed point.
func (s *ShardServer) mergeSession(id uint64, create bool, trace uint64) (*mergeSession, error) {
	s.mergeMu.Lock()
	if sess := s.sessions[id]; sess != nil {
		sess.touched = time.Now()
		s.mergeMu.Unlock()
		return sess, nil
	}
	s.mergeMu.Unlock()
	if !create {
		return nil, nil
	}

	// Snapshot outside the lock: it round-trips every sensor's event
	// loop and must not stall concurrent merge frames.
	createStart := time.Now()
	snap, err := s.svc.Snapshot(s.ctx)
	if err != nil {
		return nil, err
	}
	fp := fingerprintPoints(snap)

	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	if sess := s.sessions[id]; sess != nil {
		return sess, nil // lost the creation race; use the winner's snapshot
	}
	hit := true // Hit: the cached merge source covered this snapshot
	src := s.lastSrc
	if src == nil || s.lastFP != fp || src.Len() != len(snap) {
		hit = false
		src = core.NewMergeSource(s.svc.DetectorConfig().Ranker, s.svc.DetectorConfig().N, snap)
		s.lastSrc, s.lastFP = src, fp
	}
	s.svc.Traces().Record(obs.Span{
		Trace:   trace,
		Op:      obs.OpSessionCreate,
		Session: id,
		Points:  int32(len(snap)),
		Hit:     hit,
		Start:   createStart,
		Dur:     time.Since(createStart),
	})
	now := time.Now()
	var oldest uint64
	oldestAt := now
	for sid, sess := range s.sessions {
		if now.Sub(sess.touched) > mergeSessionTTL {
			delete(s.sessions, sid)
			continue
		}
		if sess.touched.Before(oldestAt) {
			oldest, oldestAt = sid, sess.touched
		}
	}
	if len(s.sessions) >= s.maxSessions {
		delete(s.sessions, oldest)
	}
	sess := &mergeSession{
		link:    src.NewLink(),
		rounds:  make(map[uint16][]core.Point),
		touched: now,
	}
	s.sessions[id] = sess
	return sess, nil
}

// refuseSession answers a frame naming a merge session this shard no
// longer holds; see mergeSession.
func (s *ShardServer) refuseSession(to *net.UDPAddr, req protocol.Frame, kind protocol.FrameKind, session uint64) error {
	s.svc.Traces().Record(obs.Span{
		Trace:   req.Trace,
		ReqID:   req.ReqID,
		Op:      obs.OpSessionRefuse,
		Session: session,
		Start:   time.Now(),
	})
	frame := protocol.EncodeFrame(protocol.Frame{
		Kind:  kind,
		Flags: protocol.FlagResponse | protocol.FlagUnknownSession | (req.Flags & protocol.FlagTraced),
		ReqID: req.ReqID,
		Trace: req.Trace,
	})
	_, err := s.conn.WriteToUDP(frame, to)
	return err
}

// handleLedger absorbs one chunk of the coordinator's sufficient-set
// delta into the session's shared ledger (and dataset — Algorithm 1
// folds receipts into P before reacting). Redelivery is a no-op; the
// ACK reports how many points were new. Ledger chunks never open a
// session: only a round-0 SUFFICIENT does.
func (s *ShardServer) handleLedger(f protocol.Frame, from *net.UDPAddr) error {
	start := time.Now()
	body, err := protocol.DecodeLedger(f.Body)
	if err != nil {
		return err
	}
	sess, err := s.mergeSession(body.Session, false, f.Trace)
	if err != nil {
		return err
	}
	if sess == nil {
		return s.refuseSession(from, f, protocol.FrameAck, body.Session)
	}
	sess.mu.Lock()
	added := sess.link.Absorb(body.Points)
	sess.mu.Unlock()
	s.svc.Traces().Record(obs.Span{
		Trace:   f.Trace,
		ReqID:   f.ReqID,
		Op:      obs.OpLedger,
		Session: body.Session,
		Points:  int32(added),
		Bytes:   int32(len(f.Body)),
		Start:   start,
		Dur:     time.Since(start),
	})
	return s.respond(from, f, protocol.FrameAck, protocol.AckBody{Count: uint64(added)}.Encode())
}

// handleSufficient answers one compact-merge round: the session's
// Eq. (2) sufficient delta against everything exchanged so far,
// fragmented under the byte budget. A retried round replays the cached
// delta instead of recomputing, so a lost response frame cannot advance
// the ledger twice.
func (s *ShardServer) handleSufficient(f protocol.Frame, from *net.UDPAddr) error {
	start := time.Now()
	body, err := protocol.DecodeSufficient(f.Body)
	if err != nil {
		return err
	}
	sess, err := s.mergeSession(body.Session, body.Round == 0, f.Trace)
	if err != nil {
		return err
	}
	if sess == nil {
		return s.refuseSession(from, f, protocol.FrameSufficient, body.Session)
	}
	sess.mu.Lock()
	delta, ok := sess.rounds[body.Round]
	if !ok {
		delta = sess.link.Delta()
		sess.rounds[body.Round] = delta
	}
	sess.mu.Unlock()
	// Hit marks a replay served from the per-round reply cache (a retried
	// request); the reqID-keyed dedupe in the ring keeps the retry from
	// recording a second span either way.
	s.svc.Traces().Record(obs.Span{
		Trace:   f.Trace,
		ReqID:   f.ReqID,
		Op:      obs.OpSufficient,
		Session: body.Session,
		Round:   int32(body.Round),
		Points:  int32(len(delta)),
		Hit:     ok,
		Start:   start,
		Dur:     time.Since(start),
	})
	chunks := chunkByBytes(delta, s.maxBytes)
	for i, chunk := range chunks {
		resp, err := protocol.SufficientBody{
			Session:   body.Session,
			Round:     body.Round,
			Frag:      uint16(i),
			FragCount: uint16(len(chunks)),
			Points:    chunk,
		}.Encode()
		if err != nil {
			return err
		}
		if err := s.respond(from, f, protocol.FrameSufficient, resp); err != nil {
			return err
		}
	}
	return nil
}

// handleEstimate streams the shard's window snapshot back as however
// many fragments the byte budget requires.
func (s *ShardServer) handleEstimate(f protocol.Frame, from *net.UDPAddr) error {
	snap, err := s.svc.Snapshot(s.ctx)
	if err != nil {
		return err
	}
	chunks := chunkByBytes(snap, s.maxBytes)
	for i, chunk := range chunks {
		body, err := protocol.EstimateBody{
			Frag:      uint16(i),
			FragCount: uint16(len(chunks)),
			Points:    chunk,
		}.Encode()
		if err != nil {
			return err
		}
		if err := s.respond(from, f, protocol.FrameEstimate, body); err != nil {
			return err
		}
	}
	return nil
}
