package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"innet/internal/obs"
)

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelPairRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// lintExposition validates one /metrics page against the Prometheus
// text-format rules the obs registry promises: well-formed names and
// labels, a HELP+TYPE header before every family's samples, contiguous
// families, and no duplicate series.
func lintExposition(t *testing.T, page, body string) {
	t.Helper()
	types := make(map[string]string) // family → declared type
	seenSeries := make(map[string]bool)
	doneFamilies := make(map[string]bool)
	current := ""

	family := func(name string) string {
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, s); base != name && types[base] == "histogram" {
				return base
			}
		}
		return name
	}

	for n, line := range strings.Split(body, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		where := page + " line " + strconv.Itoa(n+1)
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRE.MatchString(name) {
				t.Errorf("%s: malformed HELP: %q", where, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRE.MatchString(name) {
				t.Errorf("%s: malformed TYPE: %q", where, line)
				continue
			}
			switch kind {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("%s: unknown metric type %q", where, kind)
			}
			if _, dup := types[name]; dup {
				t.Errorf("%s: family %s declared twice", where, name)
			}
			types[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}

		// Sample line: name[{labels}] value
		name, rest := line, ""
		var labels []string
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Errorf("%s: unbalanced braces: %q", where, line)
				continue
			}
			name = line[:i]
			labels = strings.Split(line[i+1:j], ",")
			rest = strings.TrimSpace(line[j+1:])
		} else {
			var ok bool
			if name, rest, ok = strings.Cut(line, " "); !ok {
				t.Errorf("%s: sample without value: %q", where, line)
				continue
			}
		}
		if !metricNameRE.MatchString(name) {
			t.Errorf("%s: bad metric name %q", where, name)
		}
		for _, l := range labels {
			if !labelPairRE.MatchString(l) {
				t.Errorf("%s: bad label pair %q", where, l)
			}
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err != nil {
			t.Errorf("%s: bad sample value in %q: %v", where, line, err)
		}

		fam := family(name)
		if _, ok := types[fam]; !ok {
			t.Errorf("%s: series %s has no preceding # TYPE", where, name)
		}
		if fam != current {
			if doneFamilies[fam] {
				t.Errorf("%s: family %s reappears after other families (not contiguous)", where, fam)
			}
			if current != "" {
				doneFamilies[current] = true
			}
			current = fam
		}
		key := name
		if len(labels) > 0 {
			key += "{" + strings.Join(labels, ",") + "}"
		}
		if seenSeries[key] {
			t.Errorf("%s: duplicate series %s", where, key)
		}
		seenSeries[key] = true
	}
	if len(seenSeries) == 0 {
		t.Errorf("%s: no samples at all", page)
	}
}

// TestExpositionLint scrapes both daemons' /metrics in-process — a shard
// innetd and a coordinator that has served a compact merge, so the
// histogram vec children and per-shard labeled series are populated —
// and lint-checks every line.
func TestExpositionLint(t *testing.T) {
	sh := startShard(t, "")
	t.Cleanup(sh.stop)
	coord, err := New(Config{
		Detector:       clusterDetCfg,
		Shards:         []string{sh.addr},
		QueryTimeout:   15 * time.Second,
		HealthInterval: 50 * time.Millisecond,
		HealthMisses:   1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	rs := trace(42, sensorRange(12), 4)
	for _, err := range coord.IngestBatch(rs) {
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	if err := sh.svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.MergedEstimateMode(ctx, MergeCompact); err != nil {
		t.Fatalf("compact merge: %v", err)
	}
	if _, err := coord.MergedEstimateMode(ctx, MergeFull); err != nil {
		t.Fatalf("full merge: %v", err)
	}

	coordSrv := httptest.NewServer(coord.Handler())
	t.Cleanup(coordSrv.Close)
	shardSrv := httptest.NewServer(sh.svc.Handler())
	t.Cleanup(shardSrv.Close)

	for _, tc := range []struct{ page, url string }{
		{"coordinator", coordSrv.URL + "/metrics"},
		{"shard", shardSrv.URL + "/metrics"},
	} {
		resp, err := http.Get(tc.url)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
			t.Errorf("%s: Content-Type = %q, want %q", tc.page, ct, obs.ContentType)
		}
		lintExposition(t, tc.page, string(raw))
	}

	// Both served modes must appear as vec children on the coordinator.
	resp, err := http.Get(coordSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`innetcoord_query_latency_seconds_count{mode="compact"} 1`,
		`innetcoord_query_latency_seconds_count{mode="full"} 1`,
		`innetcoord_rpc_latency_seconds_bucket{op="sufficient",le=`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("coordinator metrics missing %q", want)
		}
	}
}

// TestCompactTraceBytesMatchCounter pins the acceptance invariant: the
// newest /debug/merges trace's total_bytes (and the sum of its per-round
// bytes) equal the innetcoord_merge_bytes_total delta its query caused.
func TestCompactTraceBytesMatchCounter(t *testing.T) {
	var shards []*testShard
	var addrs []string
	for i := 0; i < 2; i++ {
		sh := startShard(t, "")
		t.Cleanup(sh.stop)
		shards = append(shards, sh)
		addrs = append(addrs, sh.addr)
	}
	coord, err := New(Config{
		Detector:       clusterDetCfg,
		Shards:         addrs,
		QueryTimeout:   15 * time.Second,
		HealthInterval: 50 * time.Millisecond,
		HealthMisses:   1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	rs := trace(7, sensorRange(16), 5)
	for _, err := range coord.IngestBatch(rs) {
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	for _, sh := range shards {
		if err := sh.svc.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}

	before := coord.mergeBytes.Load()
	res, err := coord.MergedEstimateMode(ctx, MergeCompact)
	if err != nil {
		t.Fatalf("compact merge: %v", err)
	}
	if res.Mode != MergeCompact {
		t.Fatalf("merge served by %q, want compact", res.Mode)
	}
	delta := int(coord.mergeBytes.Load() - before)

	traces := coord.MergeTraces()
	if len(traces) == 0 {
		t.Fatal("no merge trace recorded")
	}
	tr := traces[0]
	if tr.Final != MergeCompact || tr.Fallback != "" {
		t.Fatalf("newest trace final=%q fallback=%q, want a clean compact session", tr.Final, tr.Fallback)
	}
	summed := 0
	for _, r := range tr.Rounds {
		summed += r.Bytes
	}
	if summed != tr.TotalBytes {
		t.Errorf("sum of per-round bytes = %d, trace total_bytes = %d", summed, tr.TotalBytes)
	}
	if tr.TotalBytes != delta {
		t.Errorf("trace total_bytes = %d, innetcoord_merge_bytes_total delta = %d", tr.TotalBytes, delta)
	}
	if tr.TotalBytes != res.PayloadBytes {
		t.Errorf("trace total_bytes = %d, MergeResult.PayloadBytes = %d", tr.TotalBytes, res.PayloadBytes)
	}
	if tr.Quiesced < 0 || tr.Quiesced != len(tr.Rounds)-1 {
		t.Errorf("quiesced_round = %d with %d rounds, want the last round", tr.Quiesced, len(tr.Rounds))
	}

	// The same record must come back over /debug/merges.
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/debug/merges")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page struct {
		Total  uint64           `json:"total"`
		Merges []obs.MergeTrace `json:"merges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if page.Total == 0 || len(page.Merges) == 0 {
		t.Fatal("/debug/merges empty after a compact query")
	}
	if got := page.Merges[0]; got.Session != tr.Session || got.TotalBytes != tr.TotalBytes {
		t.Errorf("/debug/merges newest = %+v, want session %s with %d bytes", got, tr.Session, tr.TotalBytes)
	}
}
