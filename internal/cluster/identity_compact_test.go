package cluster

import (
	"testing"
	"time"

	"innet/internal/ingest"
	"innet/internal/store"
)

// gateStore wraps a Store and blocks inside Compact until released, so
// the test can land an identity append at exactly the point where the
// snapshot→truncate race used to erase it from durable state.
type gateStore struct {
	store.Store
	entered chan struct{} // signaled (non-blocking) when Compact is entered
	release chan struct{} // Compact proceeds once this is closed
}

func (g *gateStore) Compact(recs []store.Record, ids []store.Identity) error {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.release
	return g.Store.Compact(recs, ids)
}

// An identity floor advanced while the background compaction is
// mid-flight must survive it: compacting the identity store can never
// leave durable state behind the floors the coordinator has already used
// to stamp points that shards hold, or a crash would re-mint them.
func TestIdentityCompactionKeepsConcurrentFloors(t *testing.T) {
	sh := startShard(t, "")
	defer sh.stop()

	mem := store.NewMem()
	gs := &gateStore{Store: mem, entered: make(chan struct{}, 1), release: make(chan struct{})}
	coord, err := New(Config{
		Detector:             clusterDetCfg,
		Shards:               []string{sh.addr},
		Store:                gs,
		IdentityCompactEvery: 1, // every append triggers a background compaction
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// First batch mints 1#0 (floor nextSeq=1) and kicks off a compaction
	// that snapshots that floor, then blocks inside Compact.
	if errs := coord.IngestBatch([]ingest.Reading{{Sensor: 1, At: time.Minute, Values: []float64{20}}}); errs[0] != nil {
		t.Fatalf("batch 1: %v", errs[0])
	}
	select {
	case <-gs.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("identity compaction never reached Compact")
	}

	// Second batch advances the floor to nextSeq=2 while the compaction
	// is still holding its stale nextSeq=1 snapshot.
	batchDone := make(chan error, 1)
	go func() {
		errs := coord.IngestBatch([]ingest.Reading{{Sensor: 1, At: 2 * time.Minute, Values: []float64{21}}})
		batchDone <- errs[0]
	}()
	// Give the batch time to reach its identity append.
	time.Sleep(100 * time.Millisecond)
	close(gs.release)
	if err := <-batchDone; err != nil {
		t.Fatalf("batch 2: %v", err)
	}
	waitFor(t, 5*time.Second, "identity compaction to finish", func() bool {
		return !coord.idCompacting.Load()
	})

	st, err := gs.Load()
	if err != nil {
		t.Fatal(err)
	}
	var next uint32
	for _, id := range st.Identities {
		if id.Sensor == 1 {
			next = id.NextSeq
		}
	}
	if next != 2 {
		t.Fatalf("durable identity floor for sensor 1 is nextSeq=%d, want 2 — compaction erased a concurrently advanced floor", next)
	}
}
