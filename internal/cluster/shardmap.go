// Package cluster turns the single-process innetd deployment into a
// horizontally sharded service: a coordinator process partitions the
// sensor space across N detector shard processes — each an innetd-style
// unit running internal/ingest with an in-process peer mesh — routes
// ingested readings to the shards that own them, monitors shard health,
// and serves a single merged outlier view.
//
// # Shard map
//
// Sensor → shard assignment uses rendezvous (highest-random-weight)
// hashing over the shard control addresses: every (sensor, shard) pair
// hashes to a weight and a sensor is owned by the top-Replicas shards by
// weight. The assignment is consistent — adding or removing one shard
// moves only the sensors that gained or lost that shard in their top set,
// never reshuffles the rest — and needs no state beyond the shard list,
// so coordinator and tests can both derive it. Replicas > 1 is the
// boundary-sensor replication knob: each reading is routed to several
// shards, buying exact answers through single-shard failures at the cost
// of proportional ingest fan-out.
//
// # Merge semantics
//
// The coordinator's outlier query fans ESTIMATE frames to every live
// shard; each returns a snapshot of its union-of-windows, and the
// coordinator computes On over the union of snapshots — the same
// computation baseline.Compute performs over per-sensor windows, so the
// merged answer equals the single-process (and centralized) answer on
// the same data, exactly. Compact alternatives (merging per-shard top-k
// sets, with or without their support sets) are NOT exact for rankers
// with the paper's axioms: a candidate's rank re-evaluated against the
// union of top-k sets can exceed its rank against the full data, and a
// globally-outlying point can hide below its shard's top-k (DESIGN.md
// works a counterexample). Exactness therefore costs shipping windows,
// which stay small by construction — the sliding window bounds them.
//
// # Identity
//
// The coordinator stamps every reading with a per-sensor sequence number
// before fan-out (ingest.Reading.Seq), so replica shards mint identical
// PointIDs for the same datum regardless of delivery order or loss, and
// the merge deduplicates replicas by ID instead of double-counting.
package cluster

import (
	"hash/fnv"
	"slices"
	"sort"
	"strings"

	"innet/internal/core"
)

// ShardMap is one immutable epoch of the sensor→shard assignment: a
// version counter and the sorted shard address list. Mutations return a
// new map with the version advanced; the coordinator publishes the
// version to shards via ASSIGN frames so both sides can tell stale
// assignments from current ones.
type ShardMap struct {
	version uint64
	shards  []string
}

// NewShardMap builds version 1 of the map over the given shard control
// addresses (deduplicated, sorted).
func NewShardMap(shards []string) *ShardMap {
	s := slices.Clone(shards)
	sort.Strings(s)
	s = slices.Compact(s)
	return &ShardMap{version: 1, shards: s}
}

// Version returns the map epoch.
func (m *ShardMap) Version() uint64 { return m.version }

// Shards returns the sorted shard addresses. Callers must not mutate it.
func (m *ShardMap) Shards() []string { return m.shards }

// Len returns the number of shards.
func (m *ShardMap) Len() int { return len(m.shards) }

// Index returns the shard's slot in the sorted list, or -1.
func (m *ShardMap) Index(addr string) int {
	i, ok := slices.BinarySearch(m.shards, addr)
	if !ok {
		return -1
	}
	return i
}

// WithShard returns a new map with the shard added and the version
// advanced; adding a present shard still advances the version (the
// caller decided an epoch boundary happened).
func (m *ShardMap) WithShard(addr string) *ShardMap {
	next := NewShardMap(append(slices.Clone(m.shards), addr))
	next.version = m.version + 1
	return next
}

// WithoutShard returns a new map with the shard removed and the version
// advanced.
func (m *ShardMap) WithoutShard(addr string) *ShardMap {
	kept := make([]string, 0, len(m.shards))
	for _, s := range m.shards {
		if s != addr {
			kept = append(kept, s)
		}
	}
	next := NewShardMap(kept)
	next.version = m.version + 1
	return next
}

// rendezvousWeight hashes one (shard, sensor) pair: FNV-1a over the pair
// followed by a splitmix64 finalizer. Raw FNV is too weak here — shard
// addresses differ in one digit and sensors in the low bytes, and the
// resulting weights can leave a shard winning no sensors at all; the
// finalizer's avalanche restores balance.
func rendezvousWeight(addr string, sensor core.NodeID) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	h.Write([]byte{0, byte(sensor >> 8), byte(sensor)})
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// RendezvousOrder returns every shard ordered by descending rendezvous
// weight for the sensor (ties by address). The first Replicas entries own
// the sensor; the remainder is the deterministic failover order the
// coordinator routes through when owners are down.
func (m *ShardMap) RendezvousOrder(sensor core.NodeID) []string {
	type weighted struct {
		addr string
		w    uint64
	}
	ws := make([]weighted, len(m.shards))
	for i, addr := range m.shards {
		ws[i] = weighted{addr: addr, w: rendezvousWeight(addr, sensor)}
	}
	slices.SortFunc(ws, func(a, b weighted) int {
		switch {
		case a.w > b.w:
			return -1
		case a.w < b.w:
			return 1
		default:
			return strings.Compare(a.addr, b.addr)
		}
	})
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.addr
	}
	return out
}

// Owners returns the replicas shards owning the sensor, in rendezvous
// order (clamped to the shard count).
func (m *ShardMap) Owners(sensor core.NodeID, replicas int) []string {
	order := m.RendezvousOrder(sensor)
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(order) {
		replicas = len(order)
	}
	return order[:replicas]
}

// Owned returns, from the given sensors, those the shard owns under the
// given replication factor, sorted.
func (m *ShardMap) Owned(addr string, sensors []core.NodeID, replicas int) []core.NodeID {
	var out []core.NodeID
	for _, s := range sensors {
		if slices.Contains(m.Owners(s, replicas), addr) {
			out = append(out, s)
		}
	}
	slices.Sort(out)
	return out
}
