package cluster

import (
	"sync/atomic"
	"time"

	"innet/internal/obs"
	"innet/internal/protocol"
)

// coordObs is the coordinator's metrics surface: one obs.Registry whose
// counter and gauge series read the coordinator's existing atomics at
// scrape time (keeping the routing hot path untouched), plus the latency
// histograms the query, RPC, and durability paths observe into.
// Registration order reproduces the series order of the retired
// hand-rolled /metrics writer so dashboards and the smoke scripts' greps
// keep working.
type coordObs struct {
	reg *obs.Registry

	queryLat *obs.HistogramVec // merge-query service time, by served mode
	rpcLat   *obs.HistogramVec // shard-control exchange round trip, by frame kind

	// Identity-WAL durations; nil without a store, like the WAL counters.
	walAppend  *obs.Histogram
	walFsync   *obs.Histogram
	walCompact *obs.Histogram
}

func newCoordObs(c *Coordinator) *coordObs {
	r := obs.NewRegistry()
	m := &coordObs{reg: r}

	counter := func(name, help string, v *atomic.Uint64) {
		r.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter("innetcoord_readings_routed_total", "Readings accepted by at least one owning shard.", &c.routed)
	counter("innetcoord_readings_rejected_total", "Readings failing validation.", &c.rejected)
	counter("innetcoord_readings_stale_total", "Readings older than the sliding window.", &c.stale)
	counter("innetcoord_readings_failed_total", "Readings no owning shard accepted.", &c.failed)
	counter("innetcoord_readings_rerouted_total", "Readings routed past a down owner.", &c.reroutes)
	counter("innetcoord_readings_frames_total", "READINGS frames sent.", &c.frames)
	counter("innetcoord_merges_total", "Estimate merges served.", &c.merges)
	counter("innetcoord_merges_degraded_total", "Merges with at least one shard missing.", &c.mergesDegraded)
	counter("innetcoord_merges_compact_total", "Merges served by the compact iterative path.", &c.mergesCompact)
	counter("innetcoord_merge_fallbacks_total", "Compact merges that fell back to the full path.", &c.mergeFallbacks)
	counter("innetcoord_merge_rounds_total", "Compact-merge rounds driven.", &c.mergeRounds)
	counter("innetcoord_merge_bytes_total", "Compact-merge point payload bytes, both directions.", &c.mergeBytes)
	counter("innetcoord_merge_full_bytes_total", "Full-path window-snapshot payload bytes received.", &c.mergeFullBytes)
	r.GaugeFunc("innetcoord_recovered_sensors", "Sensors whose identity counters were recovered at startup.",
		func() float64 { return float64(c.recovered.Load()) })
	counter("innetcoord_assigns_total", "ASSIGN epochs acknowledged.", &c.assigns)
	counter("innetcoord_handoff_sensors_total", "Sensors restored via handoff.", &c.handoffSen)
	counter("innetcoord_handoff_points_total", "Points moved via handoff.", &c.handoffPts)
	counter("innetcoord_shard_flaps_total", "Up-to-down shard transitions observed.", &c.flaps)
	r.CounterFunc("innetcoord_truncated_frames_total", "Control datagrams dropped as kernel-truncated.",
		func() float64 { return float64(c.client.truncated.Load()) })
	r.GaugeFunc("innetcoord_shards_up", "Shards the health loop currently considers up.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		up := 0
		for _, st := range c.shards {
			if st.up {
				up++
			}
		}
		return float64(up)
	})
	r.GaugeFunc("innetcoord_shards", "Shards in the map.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.shards))
	})
	r.GaugeFunc("innetcoord_sensors", "Distinct sensors routed so far.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.sensors))
	})

	// Identity-recovery provenance: exactly one source label reads 1.
	// The rolling-restart e2e asserts source="store" after a restart
	// with a data dir, and the crash drills assert "shard-fan" without.
	r.LabeledGaugeFunc("innetcoord_identity_recovery_source",
		"Where startup recovery found the identity counters; exactly one source reads 1.",
		func(emit func(string, float64)) {
			got := c.IdentitySource()
			for _, src := range []string{"store", "shard-fan", "none"} {
				v := 0.0
				if got == src {
					v = 1
				}
				emit(obs.Label("source", src), v)
			}
		})

	if c.cfg.Store != nil {
		walCounter := func(name, help string, read func() float64) {
			r.CounterFunc(name, help, read)
		}
		walCounter("innetcoord_wal_bytes_total", "Bytes appended to the identity WAL.",
			func() float64 { return float64(c.cfg.Store.Metrics().WALBytes) })
		walCounter("innetcoord_wal_records_total", "Records appended to the identity WAL.",
			func() float64 { return float64(c.cfg.Store.Metrics().WALRecords) })
		walCounter("innetcoord_wal_fsyncs_total", "Fsync calls issued by the identity store.",
			func() float64 { return float64(c.cfg.Store.Metrics().Fsyncs) })
		walCounter("innetcoord_wal_compactions_total", "Identity-store snapshot rewrites.",
			func() float64 { return float64(c.cfg.Store.Metrics().Compacts) })
		walCounter("innetcoord_snapshot_corrupt_total", "Snapshot files discarded as corrupt at load.",
			func() float64 { return float64(c.cfg.Store.Metrics().SnapCorrupt) })
		walCounter("innetcoord_wal_append_errors_total", "Failed identity-store appends (routing keeps going).",
			func() float64 { return float64(c.walErrors.Load()) })
	}

	r.LabeledGaugeFunc("innetcoord_shard_up", "Per-shard up/down as seen by the health loop.",
		func(emit func(string, float64)) {
			for _, sh := range c.ShardInfos() {
				v := 0.0
				if sh.Up {
					v = 1
				}
				emit(obs.Label("shard", sh.Addr), v)
			}
		})

	b := obs.LatencyBuckets()
	m.queryLat = r.HistogramVec("innetcoord_query_latency_seconds",
		"Merged-estimate service time, labeled by the mode that served the answer.", "mode", b)
	m.rpcLat = r.HistogramVec("innetcoord_rpc_latency_seconds",
		"Shard-control exchange round trip (send to last response frame), by frame kind.", "op", b)
	if c.cfg.Store != nil {
		m.walAppend = r.Histogram("innetcoord_wal_append_seconds",
			"Identity-WAL write+flush duration per append batch.", b)
		m.walFsync = r.Histogram("innetcoord_wal_fsync_seconds",
			"Duration of one fsync (WAL, snapshot, or directory).", b)
		m.walCompact = r.Histogram("innetcoord_wal_compact_seconds",
			"Duration of one whole identity-store snapshot rewrite.", b)
	}
	// Registered last so existing exposition order is undisturbed.
	obs.RegisterBuildInfo(r)
	return m
}

// rpcObserve is the ctlClient's onRTT hook: one observation per
// successful exchange, labeled by the request frame kind.
func (m *coordObs) rpcObserve(kind protocol.FrameKind, d time.Duration) {
	m.rpcLat.With(kind.MetricLabel()).Observe(d.Seconds())
}

// storeTiming routes the identity store's durability-op durations into
// the WAL histograms; installed on stores that expose SetTiming.
func (m *coordObs) storeTiming(op string, d time.Duration) {
	switch op {
	case "append":
		m.walAppend.Observe(d.Seconds())
	case "fsync":
		m.walFsync.Observe(d.Seconds())
	case "compact":
		m.walCompact.Observe(d.Seconds())
	}
}
