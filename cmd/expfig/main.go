// Command expfig regenerates every table and figure of the paper's
// evaluation section (Figs. 4–9, the §7.1 accuracy claim, and the 32-
// vs-53-node scale comparison) and prints them as TSV blocks suitable
// for gnuplot.
//
// Usage:
//
//	expfig [-fig all|fig4|fig5|fig6|fig7|fig8|fig9|accuracy|scale]
//	       [-full] [-seeds n] [-duration d] [-out dir] [-workers n] [-v]
//
// By default a reduced "quick" scale runs (one seed, 400 s); -full
// selects the paper scale (four seeds, 1000 s, full sweeps), which takes
// considerably longer.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"innet/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "expfig:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("expfig", flag.ContinueOnError)
	var (
		figFlag  = fs.String("fig", "all", "figure to regenerate (all, fig4..fig9, accuracy, scale)")
		full     = fs.Bool("full", false, "paper scale: 4 seeds, 1000 s, full sweeps")
		seeds    = fs.Int("seeds", 0, "override the number of seeds")
		duration = fs.Duration("duration", 0, "override the simulated duration")
		outDir   = fs.String("out", "", "also write each figure's TSVs into this directory")
		verbose  = fs.Bool("v", false, "progress output on stderr")
		workers  = fs.Int("workers", 0, "max concurrent seed simulations (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	runner.DefaultWorkers(*workers)

	scale := runner.QuickScale()
	if *full {
		scale = runner.PaperScale()
	}
	if *seeds > 0 {
		scale.Seeds = scale.Seeds[:0]
		for s := 1; s <= *seeds; s++ {
			scale.Seeds = append(scale.Seeds, uint64(s))
		}
	}
	if *duration > 0 {
		scale.Duration = *duration
	}

	session := runner.NewSession()
	if *verbose {
		start := time.Now()
		session.Observer = func(cfg runner.Config, res runner.Result) {
			fmt.Fprintf(os.Stderr, "[%6.0fs] %s %s w=%d n=%d eps=%d: tx=%.5f rx=%.5f acc=%.3f\n",
				time.Since(start).Seconds(), cfg.Algo, cfg.Ranker, cfg.WindowSamples,
				cfg.N, cfg.HopLimit, res.AvgTxJPerRound, res.AvgRxJPerRound, res.Accuracy)
		}
	}

	type metricSpec struct {
		name   string
		metric func(runner.SeriesPoint) float64
	}
	energyPair := []metricSpec{{"tx_J_per_round", runner.MetricTx}, {"rx_J_per_round", runner.MetricRx}}
	figures := []struct {
		id      string
		build   func(runner.Scale) (runner.Figure, error)
		metrics []metricSpec
	}{
		{"fig4", session.Fig4, energyPair},
		{"fig5", session.Fig5, []metricSpec{
			{"avg_total_J", runner.MetricAvgJ},
			{"min_total_J", runner.MetricMinJ},
			{"max_total_J", runner.MetricMaxJ},
		}},
		{"fig6", session.Fig6, []metricSpec{
			{"normalized_min", runner.MetricMinJ},
			{"normalized_avg", runner.MetricAvgJ},
			{"normalized_max", runner.MetricMaxJ},
		}},
		{"fig7", session.Fig7, energyPair},
		{"fig8", session.Fig8, energyPair},
		{"fig9", session.Fig9, energyPair},
		{"accuracy", session.AccuracyTable, []metricSpec{{"accuracy", runner.MetricAccuracy}}},
		{"scale", session.ScaleComparison, energyPair},
	}

	want := strings.ToLower(*figFlag)
	matched := false
	for _, f := range figures {
		if want != "all" && want != f.id {
			continue
		}
		matched = true
		fig, err := f.build(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", f.id, err)
		}
		for _, m := range f.metrics {
			tsv := fig.TSV(m.metric, m.name)
			fmt.Println(tsv)
			if *outDir != "" {
				if err := os.MkdirAll(*outDir, 0o755); err != nil {
					return err
				}
				path := filepath.Join(*outDir, fmt.Sprintf("%s_%s.tsv", f.id, m.name))
				if err := os.WriteFile(path, []byte(tsv), 0o644); err != nil {
					return err
				}
			}
		}
	}
	if !matched {
		return fmt.Errorf("unknown figure %q", *figFlag)
	}
	return nil
}
