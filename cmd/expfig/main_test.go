package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig99"}); err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("unknown figure must fail, got %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag must fail")
	}
}

// TestRunAccuracyReduced exercises the full expfig pipeline on the
// smallest meaningful scale, including TSV file output.
func TestRunAccuracyReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := t.TempDir()
	err := run([]string{"-fig", "accuracy", "-duration", "124s", "-seeds", "1", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "accuracy_accuracy.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Global-NN") {
		t.Fatalf("TSV missing series: %q", data)
	}
}
