// Command innetd is the streaming ingestion daemon: a long-running
// process that accepts live sensor observations over HTTP (JSON batches)
// and UDP (line-protocol firehose), runs the in-network outlier detection
// fleet on them with time-based sliding windows, and serves outlier
// estimates, health and metrics over HTTP. See the README's operations
// guide for endpoints, wire formats and a smoke-test transcript.
//
// Usage:
//
//	innetd [-http addr] [-udp addr] [-shard addr] [-merge-sessions n]
//	       [-sensors list] [-autojoin] [-ranker nn|knn|kthnn|db] [-k n]
//	       [-eps α] [-n outliers] [-window d] [-hop d] [-queue depth]
//	       [-batch max] [-data-dir dir] [-fsync] [-debug-addr addr]
//	       [-slow-query d] [-log-format text|json] [-trace-file path] [-v]
//
// With -data-dir the daemon's sliding windows are durable: every minted
// reading is appended to a write-ahead log under the directory, startup
// replays the persisted windows before serving (so a restart resumes
// with exact answers over the data it held), and periodic snapshots
// bound the log. Without it — the default — state is purely in-memory,
// exactly as before.
//
// With -debug-addr the daemon serves the pprof suite and Go runtime
// gauges on a separate listener, so the profiler never rides on the API
// port. With -slow-query every GET /v1/outliers slower than the
// threshold is logged with its query string and duration.
//
// Logging is structured (log/slog); -log-format selects text (default)
// or json. In cluster mode the shard echoes coordinator trace IDs and
// records spans — ingest queue waits, batch observes, merge-session
// exchanges, WAL appends — into a bounded flight recorder served at
// /debug/traces?trace=<id>; -trace-file additionally tees every span as
// one JSON line.
//
// Example:
//
//	innetd -http :8080 -udp :9971 -sensors 1-9 -ranker knn -k 2 -n 2 -window 10m
//
// With -shard the daemon additionally serves the cluster control plane
// on the given UDP address, so an innet-coord coordinator can route
// readings to it, hand windows off, and fold its estimate into the
// cluster-wide merge (see the README's cluster operations guide):
//
//	innetd -http :8081 -shard 127.0.0.1:9101 -ranker knn -k 2 -n 2 -window 10m
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"innet/internal/cluster"
	"innet/internal/core"
	"innet/internal/ingest"
	"innet/internal/obs"
	"innet/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "innetd:", err)
		os.Exit(1)
	}
}

// options is the parsed flag set, separated from flag.Parse so the
// end-to-end test can drive the daemon in-process.
type options struct {
	httpAddr      string
	udpAddr       string
	shardAddr     string
	mergeSessions int
	sensors       string
	autojoin      bool
	ranker        string
	k             int
	eps           float64
	n             int
	window        time.Duration
	hop           int
	queue         int
	batch         int
	maxSensors    int
	dataDir       string
	fsync         bool
	debugAddr     string
	slowQuery     time.Duration
	logFormat     string
	traceFile     string
	verbose       bool
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("innetd", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.httpAddr, "http", ":8080", "HTTP listen address (API + health + metrics)")
	fs.StringVar(&o.udpAddr, "udp", "", "UDP line-protocol listen address (empty disables)")
	fs.StringVar(&o.shardAddr, "shard", "", "UDP shard-control listen address for cluster mode (empty disables)")
	fs.IntVar(&o.mergeSessions, "merge-sessions", 8, "concurrent compact-merge sessions kept by the shard control plane")
	fs.StringVar(&o.sensors, "sensors", "", "sensors to attach at startup, e.g. \"1-9\" or \"1,2,5\"")
	fs.BoolVar(&o.autojoin, "autojoin", true, "attach unknown sensors on first contact")
	fs.StringVar(&o.ranker, "ranker", "knn", "ranking function: nn, knn, kthnn or db")
	fs.IntVar(&o.k, "k", 2, "neighbor count for knn/kthnn")
	fs.Float64Var(&o.eps, "eps", 2, "neighborhood radius α for the db ranker")
	fs.IntVar(&o.n, "n", 2, "number of outliers to detect")
	fs.DurationVar(&o.window, "window", 10*time.Minute, "time-based sliding window (0 keeps points forever)")
	fs.IntVar(&o.hop, "hop", 0, "hop diameter d for semi-global detection (0 = global)")
	fs.IntVar(&o.queue, "queue", 256, "per-sensor ingest queue depth")
	fs.IntVar(&o.batch, "batch", 64, "max readings coalesced into one batch-observe event")
	fs.IntVar(&o.maxSensors, "max-sensors", 1024, "fleet size cap (joins beyond it are rejected)")
	fs.StringVar(&o.dataDir, "data-dir", "", "durability directory for the window WAL + snapshots (empty = in-memory only)")
	fs.BoolVar(&o.fsync, "fsync", false, "fsync every WAL append batch (survives machine crashes, not just process crashes)")
	fs.StringVar(&o.debugAddr, "debug-addr", "", "debug listen address for pprof + runtime metrics (empty disables)")
	fs.DurationVar(&o.slowQuery, "slow-query", 0, "log outlier queries slower than this threshold (0 disables)")
	fs.StringVar(&o.logFormat, "log-format", "text", "structured log output format: text or json")
	fs.StringVar(&o.traceFile, "trace-file", "", "append every recorded span as one JSON line to this file (empty disables)")
	fs.BoolVar(&o.verbose, "v", false, "log requests and fleet changes")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	return o, nil
}

// buildRanker maps the -ranker/-k/-eps flags to a core.Ranker.
func buildRanker(o options) (core.Ranker, error) {
	switch strings.ToLower(o.ranker) {
	case "nn":
		return core.NN(), nil
	case "knn":
		return core.KNN{K: o.k}, nil
	case "kthnn":
		return core.KthNN{K: o.k}, nil
	case "db":
		return core.CountWithin{Alpha: o.eps}, nil
	default:
		return nil, fmt.Errorf("unknown ranker %q (want nn, knn, kthnn or db)", o.ranker)
	}
}

// parseSensorList expands "1-9", "1,2,5" or a mix ("1-3,7") into IDs.
func parseSensorList(spec string) ([]core.NodeID, error) {
	if spec == "" {
		return nil, nil
	}
	var out []core.NodeID
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		lo, hi, found := strings.Cut(part, "-")
		from, err := strconv.ParseUint(strings.TrimSpace(lo), 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad sensor %q", part)
		}
		to := from
		if found {
			if to, err = strconv.ParseUint(strings.TrimSpace(hi), 10, 16); err != nil || to < from {
				return nil, fmt.Errorf("bad sensor range %q", part)
			}
		}
		for id := from; id <= to; id++ {
			out = append(out, core.NodeID(id))
		}
	}
	return out, nil
}

// daemon bundles the service and its listeners so tests can reach the
// bound addresses.
type daemon struct {
	svc      *ingest.Service
	st       *store.File // nil without -data-dir; closed last
	traceF   *os.File    // nil without -trace-file
	httpLn   net.Listener
	debugLn  net.Listener // nil without -debug-addr
	udpConn  net.PacketConn
	shardSrv *cluster.ShardServer
	log      *slog.Logger
}

// newDaemon builds the service, attaches the initial sensors, and binds
// both listeners (but serves nothing yet; call serve).
func newDaemon(o options, logger *slog.Logger) (*daemon, error) {
	ranker, err := buildRanker(o)
	if err != nil {
		return nil, err
	}
	var st *store.File
	if o.dataDir != "" {
		if st, err = store.Open(store.Config{Dir: o.dataDir, Fsync: o.fsync}); err != nil {
			return nil, err
		}
	}
	var traceF *os.File
	if o.traceFile != "" {
		traceF, err = os.OpenFile(o.traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			if st != nil {
				st.Close()
			}
			return nil, fmt.Errorf("open trace file: %w", err)
		}
	}
	cfg := ingest.Config{
		Detector: core.Config{
			Ranker:   ranker,
			N:        o.n,
			Window:   o.window,
			HopLimit: o.hop,
		},
		QueueDepth: o.queue,
		MaxBatch:   o.batch,
		AutoJoin:   o.autojoin,
		MaxSensors: o.maxSensors,
		SlowQuery:  o.slowQuery,
		Logger:     logger,
	}
	if st != nil {
		cfg.Store = st
	}
	if traceF != nil {
		cfg.TraceSink = traceF
	}
	svc, err := ingest.New(cfg)
	if err != nil {
		if st != nil {
			st.Close()
		}
		if traceF != nil {
			traceF.Close()
		}
		return nil, err
	}
	fail := func(err error) (*daemon, error) {
		svc.Close()
		if st != nil {
			st.Close()
		}
		if traceF != nil {
			traceF.Close()
		}
		return nil, err
	}
	initial, err := parseSensorList(o.sensors)
	if err != nil {
		return fail(err)
	}
	for _, id := range initial {
		if err := svc.Join(id); err != nil {
			return fail(err)
		}
	}
	if st != nil {
		// Replay the persisted windows before any listener binds, so the
		// first request already sees the pre-restart answers.
		warmCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		restored, err := svc.Warm(warmCtx)
		cancel()
		if err != nil {
			return fail(fmt.Errorf("warm replay from %s: %w", o.dataDir, err))
		}
		if restored > 0 {
			logger.Info("replayed records", "records", restored, "dir", o.dataDir)
		}
	}

	d := &daemon{svc: svc, st: st, traceF: traceF, log: logger}
	if d.httpLn, err = net.Listen("tcp", o.httpAddr); err != nil {
		return fail(err)
	}
	if o.udpAddr != "" {
		if d.udpConn, err = net.ListenPacket("udp", o.udpAddr); err != nil {
			d.httpLn.Close()
			return fail(err)
		}
	}
	if o.shardAddr != "" {
		d.shardSrv, err = cluster.NewShardServer(cluster.ShardServerConfig{
			Service:          svc,
			Addr:             o.shardAddr,
			MaxMergeSessions: o.mergeSessions,
			Logger:           logger,
		})
		if err != nil {
			if d.udpConn != nil {
				d.udpConn.Close()
			}
			d.httpLn.Close()
			return fail(err)
		}
	}
	if o.debugAddr != "" {
		if d.debugLn, err = net.Listen("tcp", o.debugAddr); err != nil {
			if d.shardSrv != nil {
				d.shardSrv.Close()
			}
			if d.udpConn != nil {
				d.udpConn.Close()
			}
			d.httpLn.Close()
			return fail(err)
		}
	}
	return d, nil
}

// logRequests is the -v middleware: one record per API call.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		logger.Debug("request", "method", r.Method, "path", r.URL.Path,
			"elapsed", time.Since(start).Round(time.Microsecond))
	})
}

// serve runs both listeners until ctx is canceled, then shuts down in
// order: stop accepting HTTP, close the UDP socket, close the fleet.
func (d *daemon) serve(ctx context.Context, verbose bool) error {
	handler := d.svc.Handler()
	if verbose {
		handler = logRequests(d.log, handler)
	}
	httpSrv := &http.Server{Handler: handler}
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Serve(d.httpLn) }()

	// The debug listener is separate from the API listener on purpose:
	// pprof and runtime internals stay off the operator-facing port.
	var debugSrv *http.Server
	debugDone := make(chan error, 1)
	if d.debugLn != nil {
		debugSrv = &http.Server{Handler: obs.DebugMux()}
		go func() { debugDone <- debugSrv.Serve(d.debugLn) }()
	} else {
		debugDone <- nil
	}

	udpDone := make(chan error, 1)
	if d.udpConn != nil {
		go func() { udpDone <- d.svc.ServeUDP(d.udpConn) }()
	} else {
		udpDone <- nil
	}

	shardDone := make(chan error, 1)
	if d.shardSrv != nil {
		go func() { shardDone <- d.shardSrv.Serve() }()
	} else {
		shardDone <- nil
	}

	d.log.Info("http listening", "addr", d.httpLn.Addr().String())
	if d.debugLn != nil {
		d.log.Info("debug listening (pprof + runtime metrics)", "addr", d.debugLn.Addr().String())
	}
	if d.udpConn != nil {
		d.log.Info("udp firehose listening", "addr", d.udpConn.LocalAddr().String())
	}
	if d.shardSrv != nil {
		d.log.Info("shard control listening", "addr", d.shardSrv.Addr())
	}

	<-ctx.Done()
	d.log.Info("shutting down")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	errShutdown := httpSrv.Shutdown(shutdownCtx)
	if err := <-httpDone; err != nil && !errors.Is(err, http.ErrServerClosed) && errShutdown == nil {
		errShutdown = err
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(shutdownCtx); err != nil && errShutdown == nil {
			errShutdown = err
		}
	}
	if err := <-debugDone; err != nil && !errors.Is(err, http.ErrServerClosed) && errShutdown == nil {
		errShutdown = err
	}
	if d.udpConn != nil {
		d.udpConn.Close()
	}
	if err := <-udpDone; err != nil && !errors.Is(err, net.ErrClosed) && !errors.Is(err, ingest.ErrClosed) && errShutdown == nil {
		errShutdown = err
	}
	if d.shardSrv != nil {
		d.shardSrv.Close()
	}
	if err := <-shardDone; err != nil && !errors.Is(err, net.ErrClosed) && errShutdown == nil {
		errShutdown = err
	}
	if d.st != nil {
		// Compact while the fleet is still up: the snapshot then holds
		// exactly the final windows and identity floors, so the next
		// start replays a minimal, duplicate-free log.
		if err := d.svc.CompactStore(shutdownCtx); err != nil && errShutdown == nil {
			errShutdown = err
		}
	}
	if err := d.svc.Close(); err != nil && errShutdown == nil {
		errShutdown = err
	}
	if d.st != nil {
		if err := d.st.Close(); err != nil && errShutdown == nil {
			errShutdown = err
		}
	}
	if d.traceF != nil {
		if err := d.traceF.Close(); err != nil && errShutdown == nil {
			errShutdown = err
		}
	}
	d.log.Info("fleet drained, bye")
	return errShutdown
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, o.logFormat, o.verbose)
	if err != nil {
		return err
	}
	d, err := newDaemon(o, logger)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return d.serve(ctx, o.verbose)
}
