package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// testLogger routes daemon slog records into the test log.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

func TestParseSensorList(t *testing.T) {
	for spec, want := range map[string]int{
		"":        0,
		"1-9":     9,
		"1,2,5":   3,
		"1-3,7-8": 5,
		" 4 ":     1,
	} {
		ids, err := parseSensorList(spec)
		if err != nil {
			t.Errorf("%q: %v", spec, err)
			continue
		}
		if len(ids) != want {
			t.Errorf("%q: got %v, want %d ids", spec, ids, want)
		}
	}
	for _, bad := range []string{"x", "5-2", "1-", "-3", "1,,2"} {
		if _, err := parseSensorList(bad); err == nil {
			t.Errorf("%q parsed without error", bad)
		}
	}
}

func TestBuildRanker(t *testing.T) {
	for spec, want := range map[string]string{
		"nn": "NN", "knn": "KNN2", "kthnn": "2thNN", "db": "DB(2)",
	} {
		r, err := buildRanker(options{ranker: spec, k: 2, eps: 2})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if r.Name() != want {
			t.Errorf("%s: ranker %s, want %s", spec, r.Name(), want)
		}
	}
	if _, err := buildRanker(options{ranker: "lof"}); err == nil {
		t.Error("lof built without error, want rejection")
	}
}

// TestDaemonEndToEnd is the full smoke path the CI job also exercises
// through the shell: start the daemon, POST a batch over HTTP, fire a
// burst over UDP (auto-joining a new sensor), watch the planted outlier
// surface on the query endpoint, and shut down cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	o, err := parseFlags([]string{
		"-http", "127.0.0.1:0",
		"-udp", "127.0.0.1:0",
		"-sensors", "1-5",
		"-ranker", "nn",
		"-n", "1",
		"-window", "10m",
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(o, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.serve(ctx, true) }()

	base := "http://" + d.httpLn.Addr().String()
	waitOK(t, base+"/healthz")

	// HTTP path: one clean batch across the pre-attached fleet.
	var batch strings.Builder
	batch.WriteString(`{"readings":[`)
	for id := 1; id <= 5; id++ {
		if id > 1 {
			batch.WriteString(",")
		}
		fmt.Fprintf(&batch, `{"sensor":%d,"at_ms":60000,"values":[%0.1f]}`, id, 20+float64(id)*0.1)
	}
	batch.WriteString("]}")
	resp, err := http.Post(base+"/v1/observations", "application/json", strings.NewReader(batch.String()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/observations: %d %s", resp.StatusCode, body)
	}

	// UDP path: a burst of lines, including sensor 7 — not attached yet
	// (auto-join) — reading a stuck-at-rail value.
	conn, err := net.Dial("udp", d.udpConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var lines []string
	for i := 0; i < 20; i++ {
		lines = append(lines, fmt.Sprintf("3 %d 20.%d", 61000+i, i%10))
	}
	lines = append(lines, "7 62000 55.3")
	if _, err := conn.Write([]byte(strings.Join(lines, "\n"))); err != nil {
		t.Fatal(err)
	}

	// The outlier must surface on the query endpoint (UDP is async, so
	// poll — loopback datagrams are not lost, and resending would mint
	// duplicate 55.3 points whose mutual distance of zero erases the
	// very outlier-ness the test asserts).
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			resp, err := http.Get(base + "/metrics")
			if err == nil {
				dump, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Logf("metrics at timeout:\n%s", dump)
			}
			t.Fatal("timed out waiting for the outlier to surface")
		}
		var est struct {
			Outliers []struct {
				Sensor uint16    `json:"sensor"`
				Values []float64 `json:"values"`
			} `json:"outliers"`
		}
		getJSON(t, base+"/v1/outliers?sensor=1", &est)
		if len(est.Outliers) == 1 && est.Outliers[0].Sensor == 7 && est.Outliers[0].Values[0] == 55.3 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Metrics reflect both ingest paths.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"innetd_readings_accepted_total", "innetd_sensors 6"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Clean shutdown: serve returns nil once canceled.
	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func waitOK(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became healthy: %v", url, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
