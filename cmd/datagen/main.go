// Command datagen emits the synthetic Intel-lab-equivalent sensor stream
// as CSV (sensor id, epoch, unix-offset seconds, temperature, x, y,
// missing flag, fault class), for inspection or for feeding external
// tooling.
//
// Usage:
//
//	datagen [-nodes 53] [-seed 1] [-period 31s] [-duration 1000s]
//	        [-missing 0.03] [-spike 0.008] [-stuck 0.0015]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"innet/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 53, "sensor count")
		seed     = fs.Uint64("seed", 1, "generator seed")
		period   = fs.Duration("period", 31*time.Second, "sampling period")
		duration = fs.Duration("duration", 1000*time.Second, "stream length")
		missing  = fs.Float64("missing", 0.03, "probability a reading is lost and imputed")
		spike    = fs.Float64("spike", 0.008, "probability of a transient spike fault")
		stuck    = fs.Float64("stuck", 0.0015, "probability of entering a stuck-at-rail run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stream, err := dataset.Generate(dataset.Config{
		Nodes:       *nodes,
		Seed:        *seed,
		Period:      *period,
		Duration:    *duration,
		MissingProb: *missing,
		SpikeProb:   *spike,
		StuckProb:   *stuck,
	})
	if err != nil {
		return err
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "node,epoch,seconds,temperature,x,y,missing,fault")
	for _, id := range stream.Nodes() {
		for _, s := range stream.Samples(id) {
			fmt.Fprintf(w, "%d,%d,%.0f,%.4f,%.2f,%.2f,%t,%s\n",
				s.Node, s.Epoch, s.At.Seconds(), s.Temp, s.X, s.Y, s.Missing, s.Fault)
		}
	}
	fmt.Fprintf(os.Stderr, "datagen: %d sensors × %d epochs, %d faults, %d missing readings\n",
		len(stream.Nodes()), stream.Epochs(), stream.FaultCount(), stream.MissingCount())
	return nil
}
