package main

import "testing"

func TestRunTinyStream(t *testing.T) {
	if err := run([]string{"-nodes", "4", "-duration", "60s", "-period", "15s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadProbability(t *testing.T) {
	if err := run([]string{"-missing", "2.0", "-nodes", "4"}); err == nil {
		t.Fatal("probability > 1 must fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag must fail")
	}
}
