// Command innetload is the load harness: it fires one JSON scenario's
// synthetic sensor fleet at a live innetd or innet-coord over the UDP
// line protocol, probes query latency per merge mode while the fleet
// streams, freezes ingestion at checkpoint boundaries to prove the
// served answer still equals the centralized baseline, and writes the
// run's BENCH_innetload_<scenario>.json artifact. See the README's
// "Load testing" section and scripts/scenarios/ for the matrix.
//
// Usage:
//
//	innetload -scenario file.json -http URL -udp addr
//	          [-shard-http URL1,URL2,...] [-out dir] [-v]
//
// Example against a two-shard cluster:
//
//	innetload -scenario scripts/scenarios/churnloss.json \
//	          -http http://127.0.0.1:8080 -udp 127.0.0.1:9000 \
//	          -shard-http http://127.0.0.1:8181,http://127.0.0.1:8182
//
// The target is classified automatically (a coordinator's /healthz
// reports shard counts). -shard-http is required for a cluster target:
// the exactness barrier flushes every shard, and throughput/drop
// figures come from the shards' own metrics. innetload exits nonzero
// if any exactness checkpoint fails to match the baseline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"innet/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "innetload:", err)
		os.Exit(1)
	}
}

type options struct {
	scenario  string
	httpURL   string
	udpAddr   string
	shardHTTP string
	out       string
	verbose   bool
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("innetload", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.scenario, "scenario", "", "scenario JSON file (required)")
	fs.StringVar(&o.httpURL, "http", "http://127.0.0.1:8080", "target HTTP base URL (innetd or innet-coord)")
	fs.StringVar(&o.udpAddr, "udp", "127.0.0.1:9000", "target UDP line-protocol address")
	fs.StringVar(&o.shardHTTP, "shard-http", "", "comma-separated shard innetd HTTP base URLs (cluster targets)")
	fs.StringVar(&o.out, "out", ".", "directory the BENCH artifact is written to")
	fs.BoolVar(&o.verbose, "v", false, "log per-segment progress")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.scenario == "" {
		return o, errors.New("-scenario is required")
	}
	return o, nil
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	sc, err := loadgen.Load(o.scenario)
	if err != nil {
		return err
	}

	var shards []string
	if o.shardHTTP != "" {
		for _, s := range strings.Split(o.shardHTTP, ",") {
			if s = strings.TrimSpace(s); s != "" {
				shards = append(shards, s)
			}
		}
	}
	target, err := loadgen.DetectTarget(o.httpURL, o.udpAddr, shards)
	if err != nil {
		return err
	}
	if target.Cluster && len(shards) == 0 {
		return errors.New("target is a cluster: -shard-http is required for the flush barrier and metrics")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logf := func(string, ...any) {}
	if o.verbose {
		logf = log.New(os.Stderr, "innetload: ", log.LstdFlags).Printf
	}
	logf("scenario %s: %d virtual sensors on %d attached IDs, %.0fs, cluster=%v shards=%d",
		sc.Name, sc.Fleet.Sensors, sc.Fleet.Attached, sc.Traffic.DurationS, target.Cluster, target.Shards)

	runner := &loadgen.Runner{Scenario: sc, Target: target, Logf: logf}
	report, err := runner.Run(ctx)
	if err != nil {
		return err
	}
	path, err := report.Write(o.out)
	if err != nil {
		return err
	}
	fmt.Printf("innetload: %s: %.0f readings observed (%.0f/s, %.0f/s/shard), drop rate %.4f, wrote %s\n",
		sc.Name, report.Ingest.Observed, report.Ingest.ReadingsPerSec,
		report.Ingest.ReadingsPerSecPerShard, report.Ingest.EnqueueDropRate, path)
	for mode, mr := range report.Modes {
		fmt.Printf("innetload: %s query latency p50=%.2fms p95=%.2fms p99=%.2fms (%d samples, %d errors)\n",
			mode, mr.Latency.P50MS, mr.Latency.P95MS, mr.Latency.P99MS, mr.Latency.Count, mr.Latency.Errors)
	}
	for i, cp := range report.Checkpoints {
		fmt.Printf("innetload: checkpoint %d: window=%d match=%v\n", i+1, cp.WindowPoints, cp.Match)
	}
	if !report.CheckpointsOK {
		return errors.New("exactness checkpoint mismatch: served answers diverged from the centralized baseline")
	}
	return nil
}
