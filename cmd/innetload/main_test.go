package main

import (
	"os"
	"strings"
	"testing"
)

func TestParseFlagsRequiresScenario(t *testing.T) {
	if _, err := parseFlags(nil); err == nil || !strings.Contains(err.Error(), "-scenario") {
		t.Fatalf("parseFlags(nil) = %v, want missing-scenario error", err)
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags([]string{"-scenario", "x.json"})
	if err != nil {
		t.Fatal(err)
	}
	if o.httpURL != "http://127.0.0.1:8080" || o.udpAddr != "127.0.0.1:9000" || o.out != "." {
		t.Errorf("defaults = %+v", o)
	}
}

func TestRunRejectsMissingScenarioFile(t *testing.T) {
	err := run([]string{"-scenario", "/nonexistent/sc.json"})
	if err == nil {
		t.Fatal("run with a missing scenario file succeeded")
	}
}

func TestRunRejectsInvalidScenario(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bad.json"
	if err := os.WriteFile(path, []byte(`{"name":"bad"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-scenario", path})
	if err == nil || !strings.Contains(err.Error(), "sensors") {
		t.Fatalf("run with an invalid scenario = %v, want validation error", err)
	}
}
