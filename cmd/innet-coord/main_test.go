package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"innet/internal/cluster"
	"innet/internal/core"
	"innet/internal/ingest"
)

func TestParseShardList(t *testing.T) {
	got, err := parseShardList(" 127.0.0.1:9101, 127.0.0.1:9102 ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v, want 2 addresses", got)
	}
	for _, bad := range []string{"", " , ", "no-port:"} {
		if _, err := parseShardList(bad); err == nil {
			t.Errorf("%q parsed without error", bad)
		}
	}
}

func TestBuildRanker(t *testing.T) {
	r, err := buildRanker(options{ranker: "knn", k: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "KNN3" {
		t.Fatalf("ranker %s, want KNN3", r.Name())
	}
	if _, err := buildRanker(options{ranker: "lof"}); err == nil {
		t.Error("lof built without error, want rejection")
	}
}

// startTestShard boots one in-process detector shard (ingest fleet +
// control listener), as `innetd -shard` would out of process.
func startTestShard(t *testing.T, det core.Config) (addr string, stop func()) {
	t.Helper()
	svc, err := ingest.New(ingest.Config{Detector: det, AutoJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cluster.NewShardServer(cluster.ShardServerConfig{Service: svc, Addr: "127.0.0.1:0"})
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	go srv.Serve()
	return srv.Addr(), func() { srv.Close(); svc.Close() }
}

// TestCoordinatorEndToEnd is the cluster smoke path the CI script also
// exercises across real processes: 3 shards, one coordinator, a batch
// over HTTP plus a burst over UDP, the planted outlier surfacing on the
// merged query endpoint, shard states and metrics, clean shutdown.
func TestCoordinatorEndToEnd(t *testing.T) {
	det := core.Config{Ranker: core.NN(), N: 1, Window: 10 * time.Minute}
	var addrs []string
	for i := 0; i < 3; i++ {
		addr, stop := startTestShard(t, det)
		defer stop()
		addrs = append(addrs, addr)
	}

	o, err := parseFlags([]string{
		"-http", "127.0.0.1:0",
		"-udp", "127.0.0.1:0",
		"-shards", strings.Join(addrs, ","),
		"-replicas", "2",
		"-health-interval", "50ms",
		"-ranker", "nn",
		"-n", "1",
		"-window", "10m",
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(o, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.serve(ctx, true) }()

	base := "http://" + d.httpLn.Addr().String()
	waitOK(t, base+"/healthz")

	// HTTP path: a clean batch across five sensors, routed by the
	// rendezvous map.
	var batch strings.Builder
	batch.WriteString(`{"readings":[`)
	for id := 1; id <= 5; id++ {
		if id > 1 {
			batch.WriteString(",")
		}
		fmt.Fprintf(&batch, `{"sensor":%d,"at_ms":60000,"values":[%0.1f]}`, id, 20+float64(id)*0.1)
	}
	batch.WriteString("]}")
	resp, err := http.Post(base+"/v1/observations", "application/json", strings.NewReader(batch.String()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/observations: %d %s", resp.StatusCode, body)
	}

	// UDP path: line-protocol burst, sensor 7 reading a stuck rail.
	conn, err := net.Dial("udp", d.udpConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("3 61000 20.4\n7 62000 55.3")); err != nil {
		t.Fatal(err)
	}

	// The outlier must surface on the merged query endpoint, undegraded.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the merged outlier")
		}
		var est struct {
			Outliers []struct {
				Sensor uint16    `json:"sensor"`
				Values []float64 `json:"values"`
			} `json:"outliers"`
			Degraded  bool   `json:"degraded"`
			ShardsOK  int    `json:"shards_ok"`
			MergeMode string `json:"merge_mode"`
		}
		getJSON(t, base+"/v1/outliers", &est)
		if !est.Degraded && est.ShardsOK == 3 &&
			len(est.Outliers) == 1 && est.Outliers[0].Sensor == 7 && est.Outliers[0].Values[0] == 55.3 {
			if est.MergeMode != cluster.MergeCompact {
				t.Fatalf("default merge served by %q, want compact", est.MergeMode)
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Per-query override: the full path must agree on the answer.
	var full struct {
		Outliers []struct {
			Sensor uint16 `json:"sensor"`
		} `json:"outliers"`
		MergeMode string `json:"merge_mode"`
	}
	getJSON(t, base+"/v1/outliers?merge=full", &full)
	if full.MergeMode != cluster.MergeFull || len(full.Outliers) != 1 || full.Outliers[0].Sensor != 7 {
		t.Fatalf("?merge=full gave mode=%q outliers=%v", full.MergeMode, full.Outliers)
	}

	// Shard states: all three up.
	var shards struct {
		Shards []struct {
			Addr string `json:"addr"`
			Up   bool   `json:"up"`
		} `json:"shards"`
	}
	getJSON(t, base+"/v1/shards", &shards)
	if len(shards.Shards) != 3 {
		t.Fatalf("GET /v1/shards: %d shards, want 3", len(shards.Shards))
	}
	for _, sh := range shards.Shards {
		if !sh.Up {
			t.Fatalf("shard %s not up", sh.Addr)
		}
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"innetcoord_readings_routed_total", "innetcoord_shards 3", "innetcoord_shard_up",
		"innetcoord_merges_compact_total", "innetcoord_merge_rounds_total", "innetcoord_merge_bytes_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("coordinator did not shut down")
	}
}

func waitOK(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became healthy: %v", url, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// testLogger routes daemon slog records into the test log.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}
