// Command innet-coord is the cluster coordinator: the single front door
// of a sharded innetd deployment. It partitions the sensor space across
// detector shard processes (innetd instances started with -shard) via a
// consistent rendezvous shard map, routes HTTP/UDP observation batches
// to the shards owning each sensor — replicating boundary sensors when
// -replicas > 1 — probes shard health, resynchronizes rejoining shards
// (ASSIGN + window handoff), and serves the merged cluster-wide outlier
// view. See the README's "Cluster operations" section.
//
// Usage:
//
//	innet-coord -shards addr1,addr2,... [-http addr] [-udp addr]
//	            [-replicas n] [-merge compact|full] [-merge-rounds n]
//	            [-query-timeout d] [-health-interval d]
//	            [-ranker nn|knn|kthnn|db] [-k n] [-eps α] [-n outliers]
//	            [-window d] [-data-dir dir] [-fsync] [-debug-addr addr]
//	            [-slow-query d] [-log-format text|json] [-trace-file path] [-v]
//
// With -data-dir the coordinator persists its per-sensor identity
// counters (next sequence number, newest timestamp) and recovers them
// from its own store at startup instead of depending on shard windows
// surviving the restart — the piece that keeps identity stamping
// continuous through a full-cluster cold restart.
//
// With -debug-addr the coordinator serves the pprof suite and Go
// runtime gauges on a separate listener. -slow-query logs merged
// queries slower than the threshold (with the query's trace ID), and
// -trace-file appends every compact-merge session trace and every
// recorded span — the same records /debug/merges and /debug/traces
// serve — to a JSONL file for offline analysis.
//
// Logging is structured (log/slog); -log-format selects text (default)
// or json. Every query mints a trace ID that is stamped into shard
// frames (tracing-aware shards echo it and record their own spans) and
// returned in the /v1/outliers response, so one ID follows a query
// across the whole cluster.
//
// Example (matching three `innetd -shard` processes):
//
//	innet-coord -http :8080 -shards 127.0.0.1:9101,127.0.0.1:9102,127.0.0.1:9103 \
//	            -replicas 2 -ranker knn -k 2 -n 2 -window 10m
//
// The detector flags must match the shards': the coordinator uses them
// for the estimate merge and the staleness gate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"innet/internal/cluster"
	"innet/internal/core"
	"innet/internal/obs"
	"innet/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "innet-coord:", err)
		os.Exit(1)
	}
}

// options is the parsed flag set, separated from flag.Parse so the
// end-to-end test can drive the coordinator in-process.
type options struct {
	httpAddr       string
	udpAddr        string
	shards         string
	replicas       int
	merge          string
	mergeRounds    int
	queryTimeout   time.Duration
	healthInterval time.Duration
	ranker         string
	k              int
	eps            float64
	n              int
	window         time.Duration
	dataDir        string
	fsync          bool
	debugAddr      string
	slowQuery      time.Duration
	logFormat      string
	traceFile      string
	verbose        bool
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("innet-coord", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.httpAddr, "http", ":8080", "HTTP listen address (API + health + metrics)")
	fs.StringVar(&o.udpAddr, "udp", "", "UDP line-protocol listen address (empty disables)")
	fs.StringVar(&o.shards, "shards", "", "comma-separated shard control addresses (required)")
	fs.IntVar(&o.replicas, "replicas", 1, "shards each sensor's readings are replicated to (boundary-sensor replication)")
	fs.StringVar(&o.merge, "merge", cluster.MergeCompact, "estimate merge mode: compact (iterative Algorithm 1, O(estimate+support) payload per round) or full (window snapshots)")
	fs.IntVar(&o.mergeRounds, "merge-rounds", 16, "compact-merge round budget before falling back to the full path")
	fs.DurationVar(&o.queryTimeout, "query-timeout", 2*time.Second, "estimate fan-out deadline")
	fs.DurationVar(&o.healthInterval, "health-interval", 500*time.Millisecond, "shard health probe period")
	fs.StringVar(&o.ranker, "ranker", "knn", "ranking function: nn, knn, kthnn or db (must match the shards)")
	fs.IntVar(&o.k, "k", 2, "neighbor count for knn/kthnn")
	fs.Float64Var(&o.eps, "eps", 2, "neighborhood radius α for the db ranker")
	fs.IntVar(&o.n, "n", 2, "number of outliers to detect")
	fs.DurationVar(&o.window, "window", 10*time.Minute, "time-based sliding window (must match the shards)")
	fs.StringVar(&o.dataDir, "data-dir", "", "durability directory for the identity WAL + snapshots (empty = in-memory only)")
	fs.BoolVar(&o.fsync, "fsync", false, "fsync every WAL append batch (survives machine crashes, not just process crashes)")
	fs.StringVar(&o.debugAddr, "debug-addr", "", "debug listen address for pprof + runtime metrics (empty disables)")
	fs.DurationVar(&o.slowQuery, "slow-query", 0, "log merged queries slower than this threshold (0 disables)")
	fs.StringVar(&o.logFormat, "log-format", "text", "structured log output format: text or json")
	fs.StringVar(&o.traceFile, "trace-file", "", "append every merge trace and span to this file as JSONL (empty disables)")
	fs.BoolVar(&o.verbose, "v", false, "log requests and fleet events")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	return o, nil
}

// buildRanker maps the -ranker/-k/-eps flags to a core.Ranker, exactly
// as innetd does, so a coordinator and its shards agree by construction
// when started from the same flag set.
func buildRanker(o options) (core.Ranker, error) {
	switch strings.ToLower(o.ranker) {
	case "nn":
		return core.NN(), nil
	case "knn":
		return core.KNN{K: o.k}, nil
	case "kthnn":
		return core.KthNN{K: o.k}, nil
	case "db":
		return core.CountWithin{Alpha: o.eps}, nil
	default:
		return nil, fmt.Errorf("unknown ranker %q (want nn, knn, kthnn or db)", o.ranker)
	}
}

func parseShardList(spec string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if _, err := net.ResolveUDPAddr("udp", part); err != nil {
			return nil, fmt.Errorf("bad shard address %q: %w", part, err)
		}
		out = append(out, part)
	}
	if len(out) == 0 {
		return nil, errors.New("-shards requires at least one address")
	}
	return out, nil
}

// daemon bundles the coordinator and its listeners so tests can reach
// the bound addresses.
type daemon struct {
	coord   *cluster.Coordinator
	st      *store.File // nil without -data-dir; closed last
	traceF  *os.File    // nil without -trace-file; closed after coord
	httpLn  net.Listener
	debugLn net.Listener // nil without -debug-addr
	udpConn net.PacketConn
	log     *slog.Logger
}

// newDaemon builds the coordinator and binds the listeners (but serves
// nothing yet; call serve).
func newDaemon(o options, logger *slog.Logger) (*daemon, error) {
	ranker, err := buildRanker(o)
	if err != nil {
		return nil, err
	}
	shards, err := parseShardList(o.shards)
	if err != nil {
		return nil, err
	}
	switch o.merge {
	case cluster.MergeCompact, cluster.MergeFull:
	default:
		return nil, fmt.Errorf("unknown -merge mode %q (want %q or %q)",
			o.merge, cluster.MergeCompact, cluster.MergeFull)
	}
	cfg := cluster.Config{
		Detector: core.Config{
			Ranker: ranker,
			N:      o.n,
			Window: o.window,
		},
		Shards:         shards,
		Replicas:       o.replicas,
		MergeMode:      o.merge,
		MergeRounds:    o.mergeRounds,
		QueryTimeout:   o.queryTimeout,
		HealthInterval: o.healthInterval,
		SlowQuery:      o.slowQuery,
		Logger:         logger,
	}
	var traceF *os.File
	if o.traceFile != "" {
		traceF, err = os.OpenFile(o.traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("open -trace-file: %w", err)
		}
		cfg.TraceSink = traceF
	}
	var st *store.File
	if o.dataDir != "" {
		if st, err = store.Open(store.Config{Dir: o.dataDir, Fsync: o.fsync}); err != nil {
			if traceF != nil {
				traceF.Close()
			}
			return nil, err
		}
		cfg.Store = st
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		if st != nil {
			st.Close()
		}
		if traceF != nil {
			traceF.Close()
		}
		return nil, err
	}
	d := &daemon{coord: coord, st: st, traceF: traceF, log: logger}
	fail := func(err error) (*daemon, error) {
		coord.Close()
		if st != nil {
			st.Close()
		}
		if traceF != nil {
			traceF.Close()
		}
		return nil, err
	}
	if d.httpLn, err = net.Listen("tcp", o.httpAddr); err != nil {
		return fail(err)
	}
	if o.udpAddr != "" {
		if d.udpConn, err = net.ListenPacket("udp", o.udpAddr); err != nil {
			d.httpLn.Close()
			return fail(err)
		}
	}
	if o.debugAddr != "" {
		if d.debugLn, err = net.Listen("tcp", o.debugAddr); err != nil {
			if d.udpConn != nil {
				d.udpConn.Close()
			}
			d.httpLn.Close()
			return fail(err)
		}
	}
	return d, nil
}

// logRequests is the -v middleware: one record per API call.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		logger.Debug("request", "method", r.Method, "path", r.URL.Path,
			"elapsed", time.Since(start).Round(time.Microsecond))
	})
}

// serve runs the listeners until ctx is canceled, then shuts down in
// order: stop accepting HTTP, close the UDP socket, close the
// coordinator (health loop and control socket).
func (d *daemon) serve(ctx context.Context, verbose bool) error {
	handler := d.coord.Handler()
	if verbose {
		handler = logRequests(d.log, handler)
	}
	httpSrv := &http.Server{Handler: handler}
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Serve(d.httpLn) }()

	// The debug listener is separate from the API listener on purpose:
	// pprof and runtime internals stay off the operator-facing port.
	var debugSrv *http.Server
	debugDone := make(chan error, 1)
	if d.debugLn != nil {
		debugSrv = &http.Server{Handler: obs.DebugMux()}
		go func() { debugDone <- debugSrv.Serve(d.debugLn) }()
	} else {
		debugDone <- nil
	}

	udpDone := make(chan error, 1)
	if d.udpConn != nil {
		go func() { udpDone <- d.coord.ServeUDP(d.udpConn) }()
	} else {
		udpDone <- nil
	}

	d.log.Info("http listening", "addr", d.httpLn.Addr().String())
	if d.debugLn != nil {
		d.log.Info("debug listening (pprof + runtime metrics)", "addr", d.debugLn.Addr().String())
	}
	if d.udpConn != nil {
		d.log.Info("udp firehose listening", "addr", d.udpConn.LocalAddr().String())
	}
	d.log.Info("coordinating shards", "shards", d.coord.ShardMapSnapshot().Len())

	<-ctx.Done()
	d.log.Info("shutting down")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	errShutdown := httpSrv.Shutdown(shutdownCtx)
	if err := <-httpDone; err != nil && !errors.Is(err, http.ErrServerClosed) && errShutdown == nil {
		errShutdown = err
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(shutdownCtx); err != nil && errShutdown == nil {
			errShutdown = err
		}
	}
	if err := <-debugDone; err != nil && !errors.Is(err, http.ErrServerClosed) && errShutdown == nil {
		errShutdown = err
	}
	if d.udpConn != nil {
		d.udpConn.Close()
	}
	if err := <-udpDone; err != nil && !errors.Is(err, net.ErrClosed) && !errors.Is(err, cluster.ErrClosed) && errShutdown == nil {
		errShutdown = err
	}
	if err := d.coord.Close(); err != nil && errShutdown == nil {
		errShutdown = err
	}
	if d.traceF != nil {
		// After coord.Close: no merge can record into the sink anymore.
		if err := d.traceF.Close(); err != nil && errShutdown == nil {
			errShutdown = err
		}
	}
	if d.st != nil {
		if err := d.st.Close(); err != nil && errShutdown == nil {
			errShutdown = err
		}
	}
	d.log.Info("bye")
	return errShutdown
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, o.logFormat, o.verbose)
	if err != nil {
		return err
	}
	d, err := newDaemon(o, logger)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return d.serve(ctx, o.verbose)
}
