// Command innetsim runs one simulated experiment cell — an algorithm, a
// ranking function, and the paper's parameters — and prints the measured
// metrics.
//
// Usage:
//
//	innetsim [-algo global|semi|central] [-ranker nn|knn] [-k 4] [-n 4]
//	         [-w 20] [-eps 2] [-nodes 53] [-seeds 2] [-loss 0.0]
//	         [-period 31s] [-duration 1000s] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"innet/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "innetsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("innetsim", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "global", "algorithm: global, semi, central")
		ranker   = fs.String("ranker", "nn", "ranking function: nn, knn")
		k        = fs.Int("k", 4, "neighbors for knn")
		n        = fs.Int("n", 4, "outliers to report")
		w        = fs.Int("w", 20, "sliding window, in samples")
		eps      = fs.Int("eps", 2, "hop diameter for semi-global")
		nodes    = fs.Int("nodes", 53, "network size")
		seeds    = fs.Int("seeds", 2, "number of seeds to average")
		loss     = fs.Float64("loss", 0, "radio loss probability")
		period   = fs.Duration("period", 31*time.Second, "sampling period")
		duration = fs.Duration("duration", 1000*time.Second, "simulated run length")
		workers  = fs.Int("workers", 0, "max concurrent seed simulations (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := runner.Config{
		Ranker:        runner.RankerKind(*ranker),
		K:             *k,
		N:             *n,
		WindowSamples: *w,
		HopLimit:      *eps,
		Nodes:         *nodes,
		Period:        *period,
		Duration:      *duration,
		LossProb:      *loss,
		AccuracyEvery: 5,
		Workers:       *workers,
	}
	switch *algo {
	case "global":
		cfg.Algo = runner.AlgoGlobal
		cfg.HopLimit = 0
	case "semi":
		cfg.Algo = runner.AlgoSemiGlobal
	case "central":
		cfg.Algo = runner.AlgoCentralized
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	for s := 1; s <= *seeds; s++ {
		cfg.Seeds = append(cfg.Seeds, uint64(s))
	}

	res, err := runner.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("algorithm           %v (%s", cfg.Algo, cfg.Ranker)
	if cfg.Algo == runner.AlgoSemiGlobal {
		fmt.Printf(", eps=%d", cfg.HopLimit)
	}
	fmt.Printf(")\nnetwork             %d nodes, mean degree %.1f\n", cfg.Nodes, res.MeanDegree)
	fmt.Printf("window / outliers   w=%d samples, n=%d\n", cfg.WindowSamples, cfg.N)
	fmt.Printf("run                 %v at %v per round, %d seed(s), loss %.1f%%\n",
		cfg.Duration, cfg.Period, len(cfg.Seeds), cfg.LossProb*100)
	fmt.Println()
	fmt.Printf("TX energy           %.6f J per node per round\n", res.AvgTxJPerRound)
	fmt.Printf("RX energy           %.6f J per node per round\n", res.AvgRxJPerRound)
	fmt.Printf("total energy        avg %.4f J, min %.4f J, max %.4f J per node\n",
		res.AvgTotalJ, res.MinTotalJ, res.MaxTotalJ)
	fmt.Printf("accuracy            %.4f over %d sensor-round checks\n", res.Accuracy, res.AccuracyCount)
	fmt.Printf("frames sent         %.0f total, busiest node %.0f\n", res.FramesSent, res.SinkFrames)
	if res.PointsSent > 0 {
		fmt.Printf("points transmitted  %.0f (tagged recipient-point pairs)\n", res.PointsSent)
	}
	return nil
}
