package main

import "testing"

func TestRunTinyCell(t *testing.T) {
	err := run([]string{
		"-algo", "global", "-ranker", "nn", "-w", "4", "-n", "2",
		"-nodes", "9", "-seeds", "1",
		"-period", "10s", "-duration", "60s",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSemiCell(t *testing.T) {
	err := run([]string{
		"-algo", "semi", "-eps", "1", "-w", "4", "-n", "2",
		"-nodes", "9", "-seeds", "1",
		"-period", "10s", "-duration", "60s",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownAlgo(t *testing.T) {
	if err := run([]string{"-algo", "quantum"}); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
}

func TestRunRejectsUnknownRanker(t *testing.T) {
	err := run([]string{
		"-algo", "global", "-ranker", "lof",
		"-nodes", "4", "-seeds", "1", "-period", "10s", "-duration", "20s",
	})
	if err == nil {
		t.Fatal("unknown ranker must fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag must fail")
	}
}
