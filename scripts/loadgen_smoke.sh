#!/usr/bin/env bash
# Load-harness smoke test: build innetd, innet-coord and innetload,
# start 1 coordinator + 2 detector shards, fire the checked-in smoke
# scenario (10^3 virtual sensors over the UDP line protocol) at the
# cluster, and assert the run's BENCH_innetload_smoke.json artifact
# exists, carries the required throughput/latency/merge-cost fields,
# and that its exactness checkpoint matched the centralized baseline
# (innetload exits nonzero on any checkpoint mismatch).
#
# Needs: go, curl, bash. CI runs this and uploads the artifact; it is
# also runnable locally: scripts/loadgen_smoke.sh [outdir]
set -euo pipefail

HOST=127.0.0.1
SHARD_HTTP=("$HOST:18181" "$HOST:18182")
SHARD_CTL=("$HOST:19181" "$HOST:19182")
COORD_HTTP=$HOST:18180
COORD_UDP=$HOST:19980
OUTDIR=${1:-$(mktemp -d)}
BINDIR=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

# Must match scripts/scenarios/smoke.json's detector block: the harness
# recomputes expected answers with these parameters.
DETFLAGS=(-ranker knn -k 2 -n 3 -window 600s)

echo "== build"
go build -o "$BINDIR/innetd" ./cmd/innetd
go build -o "$BINDIR/innet-coord" ./cmd/innet-coord
go build -o "$BINDIR/innetload" ./cmd/innetload

echo "== start 2 detector shards"
for i in 0 1; do
  "$BINDIR/innetd" -http "${SHARD_HTTP[$i]}" -shard "${SHARD_CTL[$i]}" "${DETFLAGS[@]}" &
  PIDS+=($!)
done

echo "== start the coordinator"
"$BINDIR/innet-coord" -http "$COORD_HTTP" -udp "$COORD_UDP" \
  -shards "$(IFS=,; echo "${SHARD_CTL[*]}")" -merge compact \
  -health-interval 100ms "${DETFLAGS[@]}" &
PIDS+=($!)

wait_ok() {
  for _ in $(seq 1 100); do
    curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "no health from $1" >&2
  return 1
}

echo "== wait for health"
for addr in "${SHARD_HTTP[@]}"; do wait_ok "$addr"; done
wait_ok "$COORD_HTTP"

echo "== run the smoke scenario"
"$BINDIR/innetload" -scenario scripts/scenarios/smoke.json \
  -http "http://$COORD_HTTP" -udp "$COORD_UDP" \
  -shard-http "$(printf 'http://%s,' "${SHARD_HTTP[@]}" | sed 's/,$//')" \
  -out "$OUTDIR" -v

BENCH=$OUTDIR/BENCH_innetload_smoke.json
echo "== check the artifact: $BENCH"
[[ -s "$BENCH" ]] || { echo "missing artifact $BENCH" >&2; exit 1; }
for field in readings_per_sec readings_per_sec_per_shard enqueue_drop_rate \
             p50_ms p95_ms p99_ms avg_payload_bytes_per_round \
             '"checkpoints_ok": true' '"compact"' '"full"'; do
  grep -q -- "$field" "$BENCH" || {
    echo "artifact lacks $field:" >&2
    cat "$BENCH" >&2
    exit 1
  }
done
# The scenario asked for one exactness checkpoint; it must be recorded
# as a match (innetload already exits nonzero otherwise — belt and
# braces for artifact consumers).
grep -q '"match": true' "$BENCH" || { echo "no matching checkpoint in artifact" >&2; cat "$BENCH" >&2; exit 1; }

cat "$BENCH"
echo "loadgen smoke: OK"
