#!/usr/bin/env bash
# End-to-end smoke test for the innetd streaming ingestion daemon:
# start it, POST a batch over HTTP, fire a burst over the UDP line
# protocol (auto-joining a new sensor), assert the planted outlier
# surfaces on the query endpoint, and shut down cleanly on SIGINT.
#
# Needs: go, curl, bash (uses /dev/udp for the firehose). CI runs this;
# it is also runnable locally: scripts/innetd_smoke.sh
set -euo pipefail

HTTP=127.0.0.1:18080
DEBUG=127.0.0.1:18085
UDP_HOST=127.0.0.1
UDP_PORT=19971
BIN=$(mktemp -d)/innetd

cleanup() {
  [[ -n "${DAEMON_PID:-}" ]] && kill "$DAEMON_PID" 2>/dev/null || true
}
trap cleanup EXIT

echo "== build"
go build -o "$BIN" ./cmd/innetd

echo "== start daemon"
"$BIN" -http "$HTTP" -udp "$UDP_HOST:$UDP_PORT" -debug-addr "$DEBUG" -sensors 1-5 -ranker nn -n 1 -window 10m &
DAEMON_PID=$!

echo "== wait for health"
for _ in $(seq 1 100); do
  curl -fsS "http://$HTTP/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "http://$HTTP/healthz"; echo

echo "== POST a batch over HTTP"
curl -fsS -X POST "http://$HTTP/v1/observations" -d '{"readings":[
  {"sensor":1,"at_ms":60000,"values":[20.1]},
  {"sensor":2,"at_ms":60000,"values":[20.2]},
  {"sensor":3,"at_ms":60000,"values":[20.3]},
  {"sensor":4,"at_ms":60000,"values":[20.4]},
  {"sensor":5,"at_ms":60000,"values":[20.5]}
]}'; echo

echo "== UDP-fire a burst (sensor 7 auto-joins with a stuck-at-rail fault)"
for i in $(seq 0 19); do
  echo "3 $((61000 + i)) 20.$((i % 10))" > "/dev/udp/$UDP_HOST/$UDP_PORT"
done
echo "7 62000 55.3" > "/dev/udp/$UDP_HOST/$UDP_PORT"

echo "== poll the query endpoint for the outlier"
FOUND=
for _ in $(seq 1 100); do
  EST=$(curl -fsS "http://$HTTP/v1/outliers?sensor=1")
  if grep -q '"sensor":7' <<<"$EST" && grep -q '55.3' <<<"$EST"; then
    FOUND=1
    echo "$EST"
    break
  fi
  sleep 0.1
done
[[ -n "$FOUND" ]] || { echo "outlier never surfaced: $EST" >&2; exit 1; }

echo "== metrics"
METRICS=$(curl -fsS "http://$HTTP/metrics")
echo "$METRICS"

echo "== metrics carry HELP/TYPE metadata and the latency histograms"
for WANT in \
  "# TYPE innetd_readings_accepted_total counter" \
  "# TYPE innetd_sensors gauge" \
  "# TYPE innetd_queue_latency_seconds histogram" \
  "# TYPE innetd_observe_batch_seconds histogram" \
  "# TYPE innetd_query_latency_seconds histogram" \
  'innetd_queue_latency_seconds_bucket{le="+Inf"}'; do
  grep -qF "$WANT" <<<"$METRICS" || { echo "metrics missing: $WANT" >&2; exit 1; }
done
# The query polls above must have landed in the query histogram.
QCOUNT=$(awk '$1 == "innetd_query_latency_seconds_count" {print $2}' <<<"$METRICS")
[[ "${QCOUNT:-0}" -gt 0 ]] || { echo "query latency histogram empty after queries" >&2; exit 1; }

echo "== pprof stays off the API port, on the -debug-addr listener"
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$HTTP/debug/pprof/")
[[ "$CODE" == 404 ]] || { echo "/debug/pprof/ on the API port returned $CODE, want 404" >&2; exit 1; }
curl -fsS "http://$DEBUG/debug/pprof/" >/dev/null || { echo "pprof index unreachable on $DEBUG" >&2; exit 1; }
curl -fsS "http://$DEBUG/metrics" | grep -q '^go_goroutines ' \
  || { echo "runtime gauges missing on $DEBUG/metrics" >&2; exit 1; }

echo "== clean shutdown"
kill -INT "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=
echo "innetd smoke: OK"
