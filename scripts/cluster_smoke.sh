#!/usr/bin/env bash
# Multi-process cluster end-to-end smoke test: build innetd and
# innet-coord, start 1 coordinator + 3 detector shards (plus a
# single-process reference innetd), ingest the same burst into both the
# cluster and the reference over HTTP and the UDP line protocol, and
# assert the coordinator's merged outlier set — served by the compact
# iterative merge — equals the single-process answer, for strictly less
# payload than a full-window merge of the same data moves. Then kill one
# shard and assert the merged answer survives (replicas=2) while the
# view reports itself degraded.
#
# Needs: go, curl, bash (uses /dev/udp). CI runs this; it is also
# runnable locally: scripts/cluster_smoke.sh
set -euo pipefail

HOST=127.0.0.1
SINGLE_HTTP=$HOST:18090
SHARD_HTTP=("$HOST:18091" "$HOST:18092" "$HOST:18093")
SHARD_CTL=("$HOST:19101" "$HOST:19102" "$HOST:19103")
COORD_HTTP=$HOST:18094
COORD_UDP_PORT=19971
BINDIR=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

DETFLAGS=(-ranker nn -n 1 -window 10m)

echo "== build"
go build -o "$BINDIR/innetd" ./cmd/innetd
go build -o "$BINDIR/innet-coord" ./cmd/innet-coord

echo "== start the single-process reference"
"$BINDIR/innetd" -http "$SINGLE_HTTP" "${DETFLAGS[@]}" &
PIDS+=($!)

echo "== start 3 detector shards"
for i in 0 1 2; do
  "$BINDIR/innetd" -http "${SHARD_HTTP[$i]}" -shard "${SHARD_CTL[$i]}" "${DETFLAGS[@]}" &
  PIDS+=($!)
done

echo "== start the coordinator (replicas=2, compact merge)"
TRACE_FILE=$BINDIR/merges.jsonl
"$BINDIR/innet-coord" -http "$COORD_HTTP" -udp "$HOST:$COORD_UDP_PORT" \
  -shards "$(IFS=,; echo "${SHARD_CTL[*]}")" -replicas 2 -merge compact \
  -health-interval 100ms -trace-file "$TRACE_FILE" "${DETFLAGS[@]}" &
COORD_PID=$!
PIDS+=("$COORD_PID")

wait_ok() {
  for _ in $(seq 1 100); do
    curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "no health from $1" >&2
  return 1
}

echo "== wait for health"
wait_ok "$SINGLE_HTTP"
for addr in "${SHARD_HTTP[@]}"; do wait_ok "$addr"; done
wait_ok "$COORD_HTTP"

BATCH='{"readings":[
  {"sensor":1,"at_ms":60000,"values":[20.1]},
  {"sensor":2,"at_ms":60000,"values":[20.2]},
  {"sensor":3,"at_ms":60000,"values":[20.3]},
  {"sensor":4,"at_ms":60000,"values":[20.4]},
  {"sensor":5,"at_ms":60000,"values":[20.5]},
  {"sensor":6,"at_ms":60000,"values":[20.6]}
]}'

echo "== POST the same batch to the cluster and the reference"
curl -fsS -X POST "http://$COORD_HTTP/v1/observations" -d "$BATCH"; echo
curl -fsS -X POST "http://$SINGLE_HTTP/v1/observations" -d "$BATCH"; echo

echo "== widen the windows so the payload comparison is meaningful"
# 8 more rounds per sensor, all inside the 10m window: the full-window
# merge must ship every point of every shard window per query, the
# compact merge only estimates and supports.
FILL='{"readings":['
for ROUND in $(seq 1 8); do
  for S in 1 2 3 4 5 6; do
    FILL+="{\"sensor\":$S,\"at_ms\":$((60000 + ROUND * 60000)),\"values\":[20.$((S + ROUND))]},"
  done
done
FILL="${FILL%,}]}"
curl -fsS -X POST "http://$COORD_HTTP/v1/observations" -d "$FILL" >/dev/null
curl -fsS -X POST "http://$SINGLE_HTTP/v1/observations" -d "$FILL" >/dev/null

echo "== UDP-fire the same burst at both (sensor 9 has a stuck-at-rail fault)"
for LINE in "3 61000 20.35" "9 62000 55.3"; do
  echo "$LINE" > "/dev/udp/$HOST/$COORD_UDP_PORT"
  # The reference has no UDP listener configured; use its HTTP door.
  SENSOR=${LINE%% *}; REST=${LINE#* }; AT=${REST%% *}; VAL=${REST#* }
  curl -fsS -X POST "http://$SINGLE_HTTP/v1/observations" \
    -d "{\"readings\":[{\"sensor\":$SENSOR,\"at_ms\":$AT,\"values\":[$VAL]}]}" >/dev/null
done

outliers() { # extract the outlier array from a query response
  grep -o '"outliers":\[[^]]*\]' <<<"$1"
}

echo "== poll until the compact merged answer is complete and matches the reference"
MATCH=
for _ in $(seq 1 150); do
  MERGED=$(curl -fsS "http://$COORD_HTTP/v1/outliers")
  SINGLE=$(curl -fsS "http://$SINGLE_HTTP/v1/outliers?sensor=1")
  if grep -q '"degraded":false' <<<"$MERGED" && grep -q '"shards_ok":3' <<<"$MERGED" \
     && grep -q '"merge_mode":"compact"' <<<"$MERGED" \
     && grep -q '"sensor":9' <<<"$MERGED" \
     && [[ "$(outliers "$MERGED")" == "$(outliers "$SINGLE")" ]]; then
    MATCH=1
    echo "compact merged == single-process: $(outliers "$MERGED")"
    break
  fi
  sleep 0.1
done
[[ -n "$MATCH" ]] || {
  echo "merged answer never matched:" >&2
  echo "  merged: ${MERGED:-}" >&2
  echo "  single: ${SINGLE:-}" >&2
  exit 1
}

metric() { # extract one counter from the coordinator's /metrics
  curl -fsS "http://$COORD_HTTP/metrics" | awk -v m="$1" '$1 == m {print $2}'
}

echo "== compare per-query payload: compact vs full-window merge"
B0=$(metric innetcoord_merge_bytes_total)
COMPACT=$(curl -fsS "http://$COORD_HTTP/v1/outliers")
B1=$(metric innetcoord_merge_bytes_total)
F0=$(metric innetcoord_merge_full_bytes_total)
FULL=$(curl -fsS "http://$COORD_HTTP/v1/outliers?merge=full")
F1=$(metric innetcoord_merge_full_bytes_total)
grep -q '"merge_mode":"compact"' <<<"$COMPACT" || { echo "compact query fell back: $COMPACT" >&2; exit 1; }
grep -q '"merge_mode":"full"' <<<"$FULL" || { echo "full query not full: $FULL" >&2; exit 1; }
[[ "$(outliers "$COMPACT")" == "$(outliers "$FULL")" ]] || {
  echo "compact and full merges disagree: $COMPACT vs $FULL" >&2; exit 1; }
COMPACT_BYTES=$((B1 - B0))
FULL_BYTES=$((F1 - F0))
echo "compact payload: ${COMPACT_BYTES}B/query, full-window payload: ${FULL_BYTES}B/query"
[[ "$COMPACT_BYTES" -gt 0 && "$COMPACT_BYTES" -lt "$FULL_BYTES" ]] || {
  echo "compact merge payload ${COMPACT_BYTES}B not below full ${FULL_BYTES}B" >&2; exit 1; }

echo "== merge trace agrees with the payload counter"
# The newest /debug/merges entry is the compact query just measured:
# its total_bytes must equal the innetcoord_merge_bytes_total delta.
MERGES=$(curl -fsS "http://$COORD_HTTP/debug/merges")
grep -q '"total":' <<<"$MERGES" || { echo "/debug/merges malformed: $MERGES" >&2; exit 1; }
TRACE_BYTES=$(grep -o '"total_bytes":[0-9]*' <<<"$MERGES" | head -1 | cut -d: -f2)
[[ "${TRACE_BYTES:-}" == "$COMPACT_BYTES" ]] || {
  echo "newest trace total_bytes=${TRACE_BYTES:-missing}, counter delta=$COMPACT_BYTES" >&2; exit 1; }
grep -q '"quiesced_round":' <<<"$MERGES" || { echo "trace missing quiesced_round: $MERGES" >&2; exit 1; }
echo "newest compact session moved ${TRACE_BYTES}B, matching the counter"

echo "== coordinator metrics carry HELP/TYPE and histograms; pprof off by default"
CMETRICS=$(curl -fsS "http://$COORD_HTTP/metrics")
for WANT in \
  "# TYPE innetcoord_merge_bytes_total counter" \
  "# TYPE innetcoord_query_latency_seconds histogram" \
  "# TYPE innetcoord_rpc_latency_seconds histogram" \
  'innetcoord_query_latency_seconds_count{mode="compact"}'; do
  grep -qF "$WANT" <<<"$CMETRICS" || { echo "coordinator metrics missing: $WANT" >&2; exit 1; }
done
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$COORD_HTTP/debug/pprof/")
[[ "$CODE" == 404 ]] || { echo "/debug/pprof/ on the API port returned $CODE, want 404" >&2; exit 1; }

echo "== shard states"
curl -fsS "http://$COORD_HTTP/v1/shards"; echo

echo "== /debug/status aggregates the cluster in one snapshot"
STATUS=$(curl -fsS "http://$COORD_HTTP/debug/status")
for WANT in '"status":"ok"' '"shards_total":3' '"shards_up":3' '"identity_source":"none"'; do
  grep -q "$WANT" <<<"$STATUS" || { echo "/debug/status missing $WANT: $STATUS" >&2; exit 1; }
done
[[ "$(grep -o '"addr":' <<<"$STATUS" | wc -l)" -eq 3 ]] || {
  echo "/debug/status does not list 3 shards: $STATUS" >&2; exit 1; }
grep -q '"build_info":{"version":' <<<"$STATUS" || {
  echo "/debug/status missing build_info: $STATUS" >&2; exit 1; }
grep -q '"go":"go' <<<"$STATUS" || { echo "build_info lacks a Go version: $STATUS" >&2; exit 1; }
grep -q '"traced":true' <<<"$STATUS" || { echo "no shard negotiated tracing: $STATUS" >&2; exit 1; }
echo "status ok: 3/3 shards, build info present"

echo "== one trace ID follows the query across coordinator and shard"
TRACE_ID=$(grep -o '"trace":"[0-9a-f]*"' <<<"$COMPACT" | head -1 | cut -d'"' -f4)
[[ -n "$TRACE_ID" && "$TRACE_ID" != 0000000000000000 ]] || {
  echo "query response carries no trace ID: $COMPACT" >&2; exit 1; }
CSPANS=$(curl -fsS "http://$COORD_HTTP/debug/traces?trace=$TRACE_ID")
grep -q '"op":"query"' <<<"$CSPANS" || { echo "coordinator trace lacks a query span: $CSPANS" >&2; exit 1; }
grep -q '"op":"merge_round"' <<<"$CSPANS" || { echo "coordinator trace lacks round spans: $CSPANS" >&2; exit 1; }
SHARD_SPANS=0
for addr in "${SHARD_HTTP[@]}"; do
  SSPANS=$(curl -fsS "http://$addr/debug/traces?trace=$TRACE_ID")
  if grep -q '"op":"session_create"\|"op":"sufficient"' <<<"$SSPANS"; then
    SHARD_SPANS=$((SHARD_SPANS + 1))
    grep -q "\"trace\":\"$TRACE_ID\"" <<<"$SSPANS" || {
      echo "shard $addr span trace mismatch: $SSPANS" >&2; exit 1; }
  fi
done
[[ "$SHARD_SPANS" -ge 1 ]] || { echo "no shard recorded session spans for trace $TRACE_ID" >&2; exit 1; }
echo "trace $TRACE_ID spans both sides ($SHARD_SPANS shards)"

echo "== /debug/traces caps its response size"
ONE=$(curl -fsS "http://$COORD_HTTP/debug/traces?limit=1")
[[ "$(grep -o '"op":' <<<"$ONE" | wc -l)" -eq 1 ]] || {
  echo "?limit=1 served more than one span: $ONE" >&2; exit 1; }

echo "== kill shard 2 and expect a degraded but still-correct merge"
kill "${PIDS[2]}" 2>/dev/null || true
DEGRADED=
for _ in $(seq 1 150); do
  MERGED=$(curl -fsS "http://$COORD_HTTP/v1/outliers")
  if grep -q '"degraded":true' <<<"$MERGED" \
     && [[ "$(outliers "$MERGED")" == "$(outliers "$SINGLE")" ]]; then
    DEGRADED=1
    echo "degraded merge still exact: $(outliers "$MERGED")"
    break
  fi
  sleep 0.1
done
[[ -n "$DEGRADED" ]] || { echo "degraded merge never matched: ${MERGED:-}" >&2; exit 1; }

echo "== coordinator metrics"
curl -fsS "http://$COORD_HTTP/metrics"

echo "== clean shutdown"
kill -INT "$COORD_PID"
wait "$COORD_PID"

echo "== -trace-file captured the sessions and spans as JSONL"
[[ -s "$TRACE_FILE" ]] || { echo "trace file $TRACE_FILE empty" >&2; exit 1; }
grep -q '"session":' "$TRACE_FILE" || { echo "trace file lines lack session IDs" >&2; exit 1; }
grep -q '"op":' "$TRACE_FILE" || { echo "trace file lines lack spans" >&2; exit 1; }
echo "$(wc -l < "$TRACE_FILE") records traced to $TRACE_FILE"
echo "cluster smoke: OK"
